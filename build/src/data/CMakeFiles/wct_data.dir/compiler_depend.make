# Empty compiler generated dependencies file for wct_data.
# This may be replaced when dependencies are built.
