file(REMOVE_RECURSE
  "libwct_data.a"
)
