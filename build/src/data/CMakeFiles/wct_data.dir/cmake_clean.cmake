file(REMOVE_RECURSE
  "CMakeFiles/wct_data.dir/csv.cc.o"
  "CMakeFiles/wct_data.dir/csv.cc.o.d"
  "CMakeFiles/wct_data.dir/dataset.cc.o"
  "CMakeFiles/wct_data.dir/dataset.cc.o.d"
  "CMakeFiles/wct_data.dir/filter.cc.o"
  "CMakeFiles/wct_data.dir/filter.cc.o.d"
  "CMakeFiles/wct_data.dir/split.cc.o"
  "CMakeFiles/wct_data.dir/split.cc.o.d"
  "libwct_data.a"
  "libwct_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wct_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
