
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/collect.cc" "src/core/CMakeFiles/wct_core.dir/collect.cc.o" "gcc" "src/core/CMakeFiles/wct_core.dir/collect.cc.o.d"
  "/root/repo/src/core/phase_report.cc" "src/core/CMakeFiles/wct_core.dir/phase_report.cc.o" "gcc" "src/core/CMakeFiles/wct_core.dir/phase_report.cc.o.d"
  "/root/repo/src/core/profile_table.cc" "src/core/CMakeFiles/wct_core.dir/profile_table.cc.o" "gcc" "src/core/CMakeFiles/wct_core.dir/profile_table.cc.o.d"
  "/root/repo/src/core/similarity.cc" "src/core/CMakeFiles/wct_core.dir/similarity.cc.o" "gcc" "src/core/CMakeFiles/wct_core.dir/similarity.cc.o.d"
  "/root/repo/src/core/subset.cc" "src/core/CMakeFiles/wct_core.dir/subset.cc.o" "gcc" "src/core/CMakeFiles/wct_core.dir/subset.cc.o.d"
  "/root/repo/src/core/suite_model.cc" "src/core/CMakeFiles/wct_core.dir/suite_model.cc.o" "gcc" "src/core/CMakeFiles/wct_core.dir/suite_model.cc.o.d"
  "/root/repo/src/core/transferability.cc" "src/core/CMakeFiles/wct_core.dir/transferability.cc.o" "gcc" "src/core/CMakeFiles/wct_core.dir/transferability.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mtree/CMakeFiles/wct_mtree.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/wct_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/pmu/CMakeFiles/wct_pmu.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/wct_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/wct_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/wct_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wct_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
