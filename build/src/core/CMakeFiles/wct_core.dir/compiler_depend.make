# Empty compiler generated dependencies file for wct_core.
# This may be replaced when dependencies are built.
