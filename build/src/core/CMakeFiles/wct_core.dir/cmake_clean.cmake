file(REMOVE_RECURSE
  "CMakeFiles/wct_core.dir/collect.cc.o"
  "CMakeFiles/wct_core.dir/collect.cc.o.d"
  "CMakeFiles/wct_core.dir/phase_report.cc.o"
  "CMakeFiles/wct_core.dir/phase_report.cc.o.d"
  "CMakeFiles/wct_core.dir/profile_table.cc.o"
  "CMakeFiles/wct_core.dir/profile_table.cc.o.d"
  "CMakeFiles/wct_core.dir/similarity.cc.o"
  "CMakeFiles/wct_core.dir/similarity.cc.o.d"
  "CMakeFiles/wct_core.dir/subset.cc.o"
  "CMakeFiles/wct_core.dir/subset.cc.o.d"
  "CMakeFiles/wct_core.dir/suite_model.cc.o"
  "CMakeFiles/wct_core.dir/suite_model.cc.o.d"
  "CMakeFiles/wct_core.dir/transferability.cc.o"
  "CMakeFiles/wct_core.dir/transferability.cc.o.d"
  "libwct_core.a"
  "libwct_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wct_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
