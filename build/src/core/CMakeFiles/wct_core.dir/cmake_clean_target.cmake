file(REMOVE_RECURSE
  "libwct_core.a"
)
