file(REMOVE_RECURSE
  "CMakeFiles/wct_util.dir/logging.cc.o"
  "CMakeFiles/wct_util.dir/logging.cc.o.d"
  "CMakeFiles/wct_util.dir/rng.cc.o"
  "CMakeFiles/wct_util.dir/rng.cc.o.d"
  "CMakeFiles/wct_util.dir/string_utils.cc.o"
  "CMakeFiles/wct_util.dir/string_utils.cc.o.d"
  "CMakeFiles/wct_util.dir/text_table.cc.o"
  "CMakeFiles/wct_util.dir/text_table.cc.o.d"
  "libwct_util.a"
  "libwct_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wct_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
