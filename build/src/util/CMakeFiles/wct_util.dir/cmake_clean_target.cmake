file(REMOVE_RECURSE
  "libwct_util.a"
)
