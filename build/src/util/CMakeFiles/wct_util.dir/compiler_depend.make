# Empty compiler generated dependencies file for wct_util.
# This may be replaced when dependencies are built.
