# Empty dependencies file for wct_pmu.
# This may be replaced when dependencies are built.
