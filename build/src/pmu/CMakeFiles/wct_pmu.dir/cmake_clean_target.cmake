file(REMOVE_RECURSE
  "libwct_pmu.a"
)
