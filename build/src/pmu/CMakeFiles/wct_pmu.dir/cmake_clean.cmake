file(REMOVE_RECURSE
  "CMakeFiles/wct_pmu.dir/collector.cc.o"
  "CMakeFiles/wct_pmu.dir/collector.cc.o.d"
  "CMakeFiles/wct_pmu.dir/events.cc.o"
  "CMakeFiles/wct_pmu.dir/events.cc.o.d"
  "libwct_pmu.a"
  "libwct_pmu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wct_pmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
