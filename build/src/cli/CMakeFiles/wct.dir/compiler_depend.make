# Empty compiler generated dependencies file for wct.
# This may be replaced when dependencies are built.
