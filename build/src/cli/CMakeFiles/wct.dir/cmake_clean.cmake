file(REMOVE_RECURSE
  "CMakeFiles/wct.dir/main.cc.o"
  "CMakeFiles/wct.dir/main.cc.o.d"
  "wct"
  "wct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
