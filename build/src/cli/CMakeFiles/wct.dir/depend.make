# Empty dependencies file for wct.
# This may be replaced when dependencies are built.
