file(REMOVE_RECURSE
  "libwct_cli.a"
)
