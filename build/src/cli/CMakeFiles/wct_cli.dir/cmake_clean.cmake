file(REMOVE_RECURSE
  "CMakeFiles/wct_cli.dir/cli.cc.o"
  "CMakeFiles/wct_cli.dir/cli.cc.o.d"
  "libwct_cli.a"
  "libwct_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wct_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
