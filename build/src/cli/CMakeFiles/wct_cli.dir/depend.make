# Empty dependencies file for wct_cli.
# This may be replaced when dependencies are built.
