file(REMOVE_RECURSE
  "CMakeFiles/wct_stats.dir/bootstrap.cc.o"
  "CMakeFiles/wct_stats.dir/bootstrap.cc.o.d"
  "CMakeFiles/wct_stats.dir/cluster.cc.o"
  "CMakeFiles/wct_stats.dir/cluster.cc.o.d"
  "CMakeFiles/wct_stats.dir/descriptive.cc.o"
  "CMakeFiles/wct_stats.dir/descriptive.cc.o.d"
  "CMakeFiles/wct_stats.dir/distributions.cc.o"
  "CMakeFiles/wct_stats.dir/distributions.cc.o.d"
  "CMakeFiles/wct_stats.dir/metrics.cc.o"
  "CMakeFiles/wct_stats.dir/metrics.cc.o.d"
  "CMakeFiles/wct_stats.dir/ols.cc.o"
  "CMakeFiles/wct_stats.dir/ols.cc.o.d"
  "CMakeFiles/wct_stats.dir/pca.cc.o"
  "CMakeFiles/wct_stats.dir/pca.cc.o.d"
  "CMakeFiles/wct_stats.dir/tests.cc.o"
  "CMakeFiles/wct_stats.dir/tests.cc.o.d"
  "libwct_stats.a"
  "libwct_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wct_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
