file(REMOVE_RECURSE
  "libwct_stats.a"
)
