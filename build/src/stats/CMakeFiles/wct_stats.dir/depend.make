# Empty dependencies file for wct_stats.
# This may be replaced when dependencies are built.
