
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/bootstrap.cc" "src/stats/CMakeFiles/wct_stats.dir/bootstrap.cc.o" "gcc" "src/stats/CMakeFiles/wct_stats.dir/bootstrap.cc.o.d"
  "/root/repo/src/stats/cluster.cc" "src/stats/CMakeFiles/wct_stats.dir/cluster.cc.o" "gcc" "src/stats/CMakeFiles/wct_stats.dir/cluster.cc.o.d"
  "/root/repo/src/stats/descriptive.cc" "src/stats/CMakeFiles/wct_stats.dir/descriptive.cc.o" "gcc" "src/stats/CMakeFiles/wct_stats.dir/descriptive.cc.o.d"
  "/root/repo/src/stats/distributions.cc" "src/stats/CMakeFiles/wct_stats.dir/distributions.cc.o" "gcc" "src/stats/CMakeFiles/wct_stats.dir/distributions.cc.o.d"
  "/root/repo/src/stats/metrics.cc" "src/stats/CMakeFiles/wct_stats.dir/metrics.cc.o" "gcc" "src/stats/CMakeFiles/wct_stats.dir/metrics.cc.o.d"
  "/root/repo/src/stats/ols.cc" "src/stats/CMakeFiles/wct_stats.dir/ols.cc.o" "gcc" "src/stats/CMakeFiles/wct_stats.dir/ols.cc.o.d"
  "/root/repo/src/stats/pca.cc" "src/stats/CMakeFiles/wct_stats.dir/pca.cc.o" "gcc" "src/stats/CMakeFiles/wct_stats.dir/pca.cc.o.d"
  "/root/repo/src/stats/tests.cc" "src/stats/CMakeFiles/wct_stats.dir/tests.cc.o" "gcc" "src/stats/CMakeFiles/wct_stats.dir/tests.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/wct_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wct_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
