# Empty compiler generated dependencies file for wct_mtree.
# This may be replaced when dependencies are built.
