file(REMOVE_RECURSE
  "CMakeFiles/wct_mtree.dir/baselines.cc.o"
  "CMakeFiles/wct_mtree.dir/baselines.cc.o.d"
  "CMakeFiles/wct_mtree.dir/linear_model.cc.o"
  "CMakeFiles/wct_mtree.dir/linear_model.cc.o.d"
  "CMakeFiles/wct_mtree.dir/model_tree.cc.o"
  "CMakeFiles/wct_mtree.dir/model_tree.cc.o.d"
  "CMakeFiles/wct_mtree.dir/regressor.cc.o"
  "CMakeFiles/wct_mtree.dir/regressor.cc.o.d"
  "CMakeFiles/wct_mtree.dir/serialize.cc.o"
  "CMakeFiles/wct_mtree.dir/serialize.cc.o.d"
  "libwct_mtree.a"
  "libwct_mtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wct_mtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
