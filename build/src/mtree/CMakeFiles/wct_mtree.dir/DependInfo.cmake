
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mtree/baselines.cc" "src/mtree/CMakeFiles/wct_mtree.dir/baselines.cc.o" "gcc" "src/mtree/CMakeFiles/wct_mtree.dir/baselines.cc.o.d"
  "/root/repo/src/mtree/linear_model.cc" "src/mtree/CMakeFiles/wct_mtree.dir/linear_model.cc.o" "gcc" "src/mtree/CMakeFiles/wct_mtree.dir/linear_model.cc.o.d"
  "/root/repo/src/mtree/model_tree.cc" "src/mtree/CMakeFiles/wct_mtree.dir/model_tree.cc.o" "gcc" "src/mtree/CMakeFiles/wct_mtree.dir/model_tree.cc.o.d"
  "/root/repo/src/mtree/regressor.cc" "src/mtree/CMakeFiles/wct_mtree.dir/regressor.cc.o" "gcc" "src/mtree/CMakeFiles/wct_mtree.dir/regressor.cc.o.d"
  "/root/repo/src/mtree/serialize.cc" "src/mtree/CMakeFiles/wct_mtree.dir/serialize.cc.o" "gcc" "src/mtree/CMakeFiles/wct_mtree.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/wct_data.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/wct_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wct_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
