file(REMOVE_RECURSE
  "libwct_mtree.a"
)
