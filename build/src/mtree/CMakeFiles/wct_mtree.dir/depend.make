# Empty dependencies file for wct_mtree.
# This may be replaced when dependencies are built.
