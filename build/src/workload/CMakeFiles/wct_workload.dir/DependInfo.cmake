
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/cpu2006.cc" "src/workload/CMakeFiles/wct_workload.dir/cpu2006.cc.o" "gcc" "src/workload/CMakeFiles/wct_workload.dir/cpu2006.cc.o.d"
  "/root/repo/src/workload/omp2001.cc" "src/workload/CMakeFiles/wct_workload.dir/omp2001.cc.o" "gcc" "src/workload/CMakeFiles/wct_workload.dir/omp2001.cc.o.d"
  "/root/repo/src/workload/profile.cc" "src/workload/CMakeFiles/wct_workload.dir/profile.cc.o" "gcc" "src/workload/CMakeFiles/wct_workload.dir/profile.cc.o.d"
  "/root/repo/src/workload/source.cc" "src/workload/CMakeFiles/wct_workload.dir/source.cc.o" "gcc" "src/workload/CMakeFiles/wct_workload.dir/source.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/uarch/CMakeFiles/wct_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wct_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
