file(REMOVE_RECURSE
  "libwct_workload.a"
)
