file(REMOVE_RECURSE
  "CMakeFiles/wct_workload.dir/cpu2006.cc.o"
  "CMakeFiles/wct_workload.dir/cpu2006.cc.o.d"
  "CMakeFiles/wct_workload.dir/omp2001.cc.o"
  "CMakeFiles/wct_workload.dir/omp2001.cc.o.d"
  "CMakeFiles/wct_workload.dir/profile.cc.o"
  "CMakeFiles/wct_workload.dir/profile.cc.o.d"
  "CMakeFiles/wct_workload.dir/source.cc.o"
  "CMakeFiles/wct_workload.dir/source.cc.o.d"
  "libwct_workload.a"
  "libwct_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wct_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
