# Empty compiler generated dependencies file for wct_workload.
# This may be replaced when dependencies are built.
