# Empty dependencies file for wct_uarch.
# This may be replaced when dependencies are built.
