
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uarch/branch.cc" "src/uarch/CMakeFiles/wct_uarch.dir/branch.cc.o" "gcc" "src/uarch/CMakeFiles/wct_uarch.dir/branch.cc.o.d"
  "/root/repo/src/uarch/cache.cc" "src/uarch/CMakeFiles/wct_uarch.dir/cache.cc.o" "gcc" "src/uarch/CMakeFiles/wct_uarch.dir/cache.cc.o.d"
  "/root/repo/src/uarch/core.cc" "src/uarch/CMakeFiles/wct_uarch.dir/core.cc.o" "gcc" "src/uarch/CMakeFiles/wct_uarch.dir/core.cc.o.d"
  "/root/repo/src/uarch/store_buffer.cc" "src/uarch/CMakeFiles/wct_uarch.dir/store_buffer.cc.o" "gcc" "src/uarch/CMakeFiles/wct_uarch.dir/store_buffer.cc.o.d"
  "/root/repo/src/uarch/tlb.cc" "src/uarch/CMakeFiles/wct_uarch.dir/tlb.cc.o" "gcc" "src/uarch/CMakeFiles/wct_uarch.dir/tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wct_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
