file(REMOVE_RECURSE
  "libwct_uarch.a"
)
