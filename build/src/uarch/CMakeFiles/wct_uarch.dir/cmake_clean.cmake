file(REMOVE_RECURSE
  "CMakeFiles/wct_uarch.dir/branch.cc.o"
  "CMakeFiles/wct_uarch.dir/branch.cc.o.d"
  "CMakeFiles/wct_uarch.dir/cache.cc.o"
  "CMakeFiles/wct_uarch.dir/cache.cc.o.d"
  "CMakeFiles/wct_uarch.dir/core.cc.o"
  "CMakeFiles/wct_uarch.dir/core.cc.o.d"
  "CMakeFiles/wct_uarch.dir/store_buffer.cc.o"
  "CMakeFiles/wct_uarch.dir/store_buffer.cc.o.d"
  "CMakeFiles/wct_uarch.dir/tlb.cc.o"
  "CMakeFiles/wct_uarch.dir/tlb.cc.o.d"
  "libwct_uarch.a"
  "libwct_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wct_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
