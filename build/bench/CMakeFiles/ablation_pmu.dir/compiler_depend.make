# Empty compiler generated dependencies file for ablation_pmu.
# This may be replaced when dependencies are built.
