file(REMOVE_RECURSE
  "CMakeFiles/ablation_pmu.dir/ablation_pmu.cc.o"
  "CMakeFiles/ablation_pmu.dir/ablation_pmu.cc.o.d"
  "ablation_pmu"
  "ablation_pmu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
