# Empty dependencies file for ablation_subsetting.
# This may be replaced when dependencies are built.
