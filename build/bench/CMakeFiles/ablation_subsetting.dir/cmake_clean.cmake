file(REMOVE_RECURSE
  "CMakeFiles/ablation_subsetting.dir/ablation_subsetting.cc.o"
  "CMakeFiles/ablation_subsetting.dir/ablation_subsetting.cc.o.d"
  "ablation_subsetting"
  "ablation_subsetting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_subsetting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
