# Empty dependencies file for perf_mtree.
# This may be replaced when dependencies are built.
