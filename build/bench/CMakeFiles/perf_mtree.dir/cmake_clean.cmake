file(REMOVE_RECURSE
  "CMakeFiles/perf_mtree.dir/perf_mtree.cc.o"
  "CMakeFiles/perf_mtree.dir/perf_mtree.cc.o.d"
  "perf_mtree"
  "perf_mtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_mtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
