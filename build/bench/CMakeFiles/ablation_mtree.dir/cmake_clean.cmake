file(REMOVE_RECURSE
  "CMakeFiles/ablation_mtree.dir/ablation_mtree.cc.o"
  "CMakeFiles/ablation_mtree.dir/ablation_mtree.cc.o.d"
  "ablation_mtree"
  "ablation_mtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
