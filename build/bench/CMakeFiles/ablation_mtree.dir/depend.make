# Empty dependencies file for ablation_mtree.
# This may be replaced when dependencies are built.
