# Empty dependencies file for fig2_omp2001_tree.
# This may be replaced when dependencies are built.
