file(REMOVE_RECURSE
  "CMakeFiles/fig2_omp2001_tree.dir/fig2_omp2001_tree.cc.o"
  "CMakeFiles/fig2_omp2001_tree.dir/fig2_omp2001_tree.cc.o.d"
  "fig2_omp2001_tree"
  "fig2_omp2001_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_omp2001_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
