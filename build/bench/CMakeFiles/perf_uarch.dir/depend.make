# Empty dependencies file for perf_uarch.
# This may be replaced when dependencies are built.
