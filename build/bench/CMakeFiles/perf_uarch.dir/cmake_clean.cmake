file(REMOVE_RECURSE
  "CMakeFiles/perf_uarch.dir/perf_uarch.cc.o"
  "CMakeFiles/perf_uarch.dir/perf_uarch.cc.o.d"
  "perf_uarch"
  "perf_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
