# Empty dependencies file for fig1_cpu2006_tree.
# This may be replaced when dependencies are built.
