file(REMOVE_RECURSE
  "CMakeFiles/table5_transferability_ttests.dir/table5_transferability_ttests.cc.o"
  "CMakeFiles/table5_transferability_ttests.dir/table5_transferability_ttests.cc.o.d"
  "table5_transferability_ttests"
  "table5_transferability_ttests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_transferability_ttests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
