# Empty dependencies file for table5_transferability_ttests.
# This may be replaced when dependencies are built.
