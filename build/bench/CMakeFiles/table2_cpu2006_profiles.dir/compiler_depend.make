# Empty compiler generated dependencies file for table2_cpu2006_profiles.
# This may be replaced when dependencies are built.
