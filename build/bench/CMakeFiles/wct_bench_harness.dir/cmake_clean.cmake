file(REMOVE_RECURSE
  "../lib/libwct_bench_harness.a"
  "../lib/libwct_bench_harness.pdb"
  "CMakeFiles/wct_bench_harness.dir/harness.cc.o"
  "CMakeFiles/wct_bench_harness.dir/harness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wct_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
