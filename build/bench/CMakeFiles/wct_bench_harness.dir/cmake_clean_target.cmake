file(REMOVE_RECURSE
  "../lib/libwct_bench_harness.a"
)
