# Empty compiler generated dependencies file for wct_bench_harness.
# This may be replaced when dependencies are built.
