# Empty dependencies file for table6_transferability_accuracy.
# This may be replaced when dependencies are built.
