file(REMOVE_RECURSE
  "CMakeFiles/table4_omp2001_profiles.dir/table4_omp2001_profiles.cc.o"
  "CMakeFiles/table4_omp2001_profiles.dir/table4_omp2001_profiles.cc.o.d"
  "table4_omp2001_profiles"
  "table4_omp2001_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_omp2001_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
