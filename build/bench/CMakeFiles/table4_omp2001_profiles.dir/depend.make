# Empty dependencies file for table4_omp2001_profiles.
# This may be replaced when dependencies are built.
