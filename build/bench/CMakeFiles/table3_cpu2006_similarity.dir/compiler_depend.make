# Empty compiler generated dependencies file for table3_cpu2006_similarity.
# This may be replaced when dependencies are built.
