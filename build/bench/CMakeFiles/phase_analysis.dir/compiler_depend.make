# Empty compiler generated dependencies file for phase_analysis.
# This may be replaced when dependencies are built.
