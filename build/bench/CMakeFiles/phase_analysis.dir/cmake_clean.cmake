file(REMOVE_RECURSE
  "CMakeFiles/phase_analysis.dir/phase_analysis.cc.o"
  "CMakeFiles/phase_analysis.dir/phase_analysis.cc.o.d"
  "phase_analysis"
  "phase_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
