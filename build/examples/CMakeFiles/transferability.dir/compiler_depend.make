# Empty compiler generated dependencies file for transferability.
# This may be replaced when dependencies are built.
