file(REMOVE_RECURSE
  "CMakeFiles/transferability.dir/transferability.cpp.o"
  "CMakeFiles/transferability.dir/transferability.cpp.o.d"
  "transferability"
  "transferability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transferability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
