file(REMOVE_RECURSE
  "CMakeFiles/workload_source_test.dir/workload/source_test.cc.o"
  "CMakeFiles/workload_source_test.dir/workload/source_test.cc.o.d"
  "workload_source_test"
  "workload_source_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_source_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
