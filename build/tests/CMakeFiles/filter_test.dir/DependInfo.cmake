
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/data/filter_test.cc" "tests/CMakeFiles/filter_test.dir/data/filter_test.cc.o" "gcc" "tests/CMakeFiles/filter_test.dir/data/filter_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cli/CMakeFiles/wct_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wct_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mtree/CMakeFiles/wct_mtree.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/wct_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/pmu/CMakeFiles/wct_pmu.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/wct_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/wct_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/wct_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wct_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
