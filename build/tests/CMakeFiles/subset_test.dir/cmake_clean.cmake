file(REMOVE_RECURSE
  "CMakeFiles/subset_test.dir/core/subset_test.cc.o"
  "CMakeFiles/subset_test.dir/core/subset_test.cc.o.d"
  "subset_test"
  "subset_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
