file(REMOVE_RECURSE
  "CMakeFiles/hypothesis_tests_test.dir/stats/tests_test.cc.o"
  "CMakeFiles/hypothesis_tests_test.dir/stats/tests_test.cc.o.d"
  "hypothesis_tests_test"
  "hypothesis_tests_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypothesis_tests_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
