# Empty dependencies file for transferability_test.
# This may be replaced when dependencies are built.
