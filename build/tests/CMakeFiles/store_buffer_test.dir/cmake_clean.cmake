file(REMOVE_RECURSE
  "CMakeFiles/store_buffer_test.dir/uarch/store_buffer_test.cc.o"
  "CMakeFiles/store_buffer_test.dir/uarch/store_buffer_test.cc.o.d"
  "store_buffer_test"
  "store_buffer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
