# Empty compiler generated dependencies file for model_tree_test.
# This may be replaced when dependencies are built.
