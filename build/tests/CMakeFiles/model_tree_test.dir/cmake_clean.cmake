file(REMOVE_RECURSE
  "CMakeFiles/model_tree_test.dir/mtree/model_tree_test.cc.o"
  "CMakeFiles/model_tree_test.dir/mtree/model_tree_test.cc.o.d"
  "model_tree_test"
  "model_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
