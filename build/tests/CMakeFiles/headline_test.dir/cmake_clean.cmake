file(REMOVE_RECURSE
  "CMakeFiles/headline_test.dir/integration/headline_test.cc.o"
  "CMakeFiles/headline_test.dir/integration/headline_test.cc.o.d"
  "headline_test"
  "headline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/headline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
