file(REMOVE_RECURSE
  "CMakeFiles/profile_table_test.dir/core/profile_table_test.cc.o"
  "CMakeFiles/profile_table_test.dir/core/profile_table_test.cc.o.d"
  "profile_table_test"
  "profile_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
