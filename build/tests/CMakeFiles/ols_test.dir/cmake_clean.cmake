file(REMOVE_RECURSE
  "CMakeFiles/ols_test.dir/stats/ols_test.cc.o"
  "CMakeFiles/ols_test.dir/stats/ols_test.cc.o.d"
  "ols_test"
  "ols_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ols_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
