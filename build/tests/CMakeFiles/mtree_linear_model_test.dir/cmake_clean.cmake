file(REMOVE_RECURSE
  "CMakeFiles/mtree_linear_model_test.dir/mtree/linear_model_test.cc.o"
  "CMakeFiles/mtree_linear_model_test.dir/mtree/linear_model_test.cc.o.d"
  "mtree_linear_model_test"
  "mtree_linear_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtree_linear_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
