# Empty compiler generated dependencies file for mtree_linear_model_test.
# This may be replaced when dependencies are built.
