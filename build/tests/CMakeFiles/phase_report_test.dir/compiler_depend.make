# Empty compiler generated dependencies file for phase_report_test.
# This may be replaced when dependencies are built.
