file(REMOVE_RECURSE
  "CMakeFiles/phase_report_test.dir/core/phase_report_test.cc.o"
  "CMakeFiles/phase_report_test.dir/core/phase_report_test.cc.o.d"
  "phase_report_test"
  "phase_report_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
