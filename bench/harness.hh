/**
 * @file
 * Shared configuration for the experiment-reproduction binaries: one
 * place defines the collection scale and tree hyper-parameters so
 * every table/figure is regenerated from the same data protocol.
 */

#ifndef WCT_BENCH_HARNESS_HH
#define WCT_BENCH_HARNESS_HH

#include <string>

#include "core/collect.hh"
#include "core/suite_model.hh"

namespace wct
{
namespace bench
{

/**
 * Standard collection protocol. The paper samples 2 M-instruction
 * intervals over full reference runs; here the interval is scaled to
 * 8192 instructions and the per-suite sample counts to O(10^4) so a
 * full reproduction finishes in seconds (densities are normalised
 * per instruction, so models are scale-insensitive; see DESIGN.md).
 */
CollectionConfig standardCollection();

/** Standard suite-model protocol (train on a random 10%). */
SuiteModelConfig standardModelConfig();

/** Collect a built-in suite ("cpu2006" or "omp2001") once. */
const SuiteData &collectedSuite(const std::string &name);

/** Suite model built from collectedSuite with the standard config. */
const SuiteModel &suiteModel(const std::string &name);

/** Print a section header for bench output. */
void banner(const std::string &title);

} // namespace bench
} // namespace wct

#endif // WCT_BENCH_HARNESS_HH
