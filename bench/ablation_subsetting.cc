/**
 * @file
 * Benchmark subsetting study: the application the paper's related
 * work ([11]-[14]) builds on benchmark characterization. Compares
 * three selectors — greedy profile matching (this paper's LM-profile
 * machinery), k-medoids on the Table III distances, and the PCA +
 * clustering baseline of [12]/[13] — at several subset sizes, scored
 * by how closely the weighted subset reproduces the full suite's
 * behaviour profile and mean CPI.
 */

#include <cstdio>

#include "bench/harness.hh"
#include "core/subset.hh"
#include "util/rng.hh"
#include "util/string_utils.hh"
#include "util/text_table.hh"

int
main()
{
    using namespace wct;
    const SuiteData &data = bench::collectedSuite("cpu2006");
    const SuiteModel &model = bench::suiteModel("cpu2006");
    const ProfileTable table(data, model.tree);

    bench::banner("Ablation G: SPEC CPU2006 subsetting — profile "
                  "distance to the full suite (percent) and mean-CPI "
                  "error, by selector and subset size");

    TextTable results({"k", "selector", "distance", "CPI error",
                       "selected"});
    for (std::size_t k : {2, 4, 6, 8, 12}) {
        struct Entry
        {
            const char *name;
            SubsetResult result;
        };
        Rng rng(0x5e1);
        Entry entries[] = {
            {"greedy profile", selectGreedyProfile(table, data, k)},
            {"k-medoids", selectByMedoids(table, data, k)},
            {"PCA + k-means",
             selectByPcaClustering(table, data, k, rng)},
        };
        for (const Entry &entry : entries) {
            std::string names;
            for (std::size_t i = 0;
                 i < std::min<std::size_t>(4, entry.result.selected
                                                  .size());
                 ++i) {
                if (i)
                    names += ", ";
                names += entry.result.selected[i];
            }
            if (entry.result.selected.size() > 4)
                names += ", ...";
            results.addRow({std::to_string(k), entry.name,
                            formatDouble(
                                entry.result.profileDistance, 1),
                            formatDouble(entry.result.cpiError, 3),
                            names});
        }
        results.addRule();
    }
    std::printf("%s", results.render().c_str());
    std::printf("\nreference: a random single benchmark sits %.1f%% "
                "from the suite profile on average (Table III Suite "
                "row)\n",
                [&] {
                    double total = 0.0;
                    for (const auto &row : table.rows())
                        total += ProfileTable::distance(
                            row, table.suiteRow());
                    return total /
                        static_cast<double>(table.rows().size());
                }());
    return 0;
}
