/**
 * @file
 * Ablation of the measurement methodology: round-robin counter
 * multiplexing (what the paper's 5-counter PMU forces) versus exact
 * whole-interval counting — estimate noise per event, and the effect
 * on downstream model accuracy.
 */

#include <cmath>
#include <cstdio>

#include "bench/harness.hh"
#include "core/suite_model.hh"
#include "workload/suites.hh"
#include "stats/metrics.hh"
#include "util/string_utils.hh"
#include "util/text_table.hh"

int
main()
{
    using namespace wct;

    // Collect a reduced CPU2006 twice: exact and multiplexed, from
    // identical instruction streams.
    CollectionConfig exact_config = bench::standardCollection();
    exact_config.baseIntervals = 150;
    exact_config.multiplexed = false;
    CollectionConfig mux_config = exact_config;
    mux_config.multiplexed = true;

    const auto &suite = suiteByName("cpu2006");
    std::fprintf(stderr, "[ablation_pmu] collecting exact + "
                         "multiplexed runs ...\n");
    const SuiteData exact = collectSuite(suite, exact_config);
    const SuiteData mux = collectSuite(suite, mux_config);

    bench::banner("Ablation E: multiplexing noise per event "
                  "(suite-pooled mean and sd of densities)");
    const Dataset exact_pooled = exact.pooled();
    const Dataset mux_pooled = mux.pooled();
    TextTable table({"metric", "exact mean", "mux mean", "exact sd",
                     "mux sd", "sd inflation"});
    for (std::size_t c = 0; c < exact_pooled.numColumns(); ++c) {
        const auto e = exact_pooled.summarize(c);
        const auto m = mux_pooled.summarize(c);
        const double inflation =
            e.stddev > 0.0 ? m.stddev / e.stddev : 0.0;
        table.addRow({exact_pooled.columnNames()[c],
                      formatCompact(e.mean), formatCompact(m.mean),
                      formatCompact(e.stddev),
                      formatCompact(m.stddev),
                      formatDouble(inflation, 2)});
    }
    std::printf("%s", table.render().c_str());

    bench::banner("Ablation F: model accuracy trained on exact vs "
                  "multiplexed samples");
    SuiteModelConfig mconfig = bench::standardModelConfig();
    const SuiteModel exact_model = buildSuiteModel(exact, mconfig);
    const SuiteModel mux_model = buildSuiteModel(mux, mconfig);

    TextTable acc({"collection", "leaves", "C", "MAE"});
    for (const auto *entry : {&exact_model, &mux_model}) {
        const auto metrics = computeAccuracy(
            entry->tree.predictAll(entry->test),
            entry->test.column("CPI"));
        acc.addRow({entry == &exact_model ? "exact" : "multiplexed",
                    std::to_string(entry->tree.numLeaves()),
                    formatDouble(metrics.correlation, 4),
                    formatDouble(metrics.meanAbsoluteError, 4)});
    }
    std::printf("%s", acc.render().c_str());
    std::printf("(the paper's hardware multiplexes 19 events over 2 "
                "programmable counters in 2M-instruction windows)\n");
    return 0;
}
