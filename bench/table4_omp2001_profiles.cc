/**
 * @file
 * Table IV: sample distribution across the SPEC OMP2001 tree's linear
 * models by benchmark (Section V-B), with the per-benchmark
 * observations the paper walks through.
 */

#include <algorithm>
#include <cstdio>

#include "bench/harness.hh"
#include "core/profile_table.hh"

int
main()
{
    using namespace wct;
    const SuiteData &data = bench::collectedSuite("omp2001");
    const SuiteModel &model = bench::suiteModel("omp2001");
    const ProfileTable table(data, model.tree);

    bench::banner("Table IV: SPEC OMP2001 sample distribution across "
                  "linear models by benchmark (percent)");
    std::printf("%s", table.render().c_str());

    bench::banner("Observations (Section V-B/V-C analogues)");
    // Concentration of each benchmark's samples (paper: fma3d_m and
    // galgel_m nearly single-leaf; art_m in the low-CPI leaves).
    for (const auto &row : table.rows()) {
        const std::size_t peak = static_cast<std::size_t>(
            std::max_element(row.percent.begin(), row.percent.end()) -
            row.percent.begin());
        std::printf("%-15s peak LM%-3zu %5.1f%%   mean CPI %.2f\n",
                    row.name.c_str(), peak + 1, row.percent[peak],
                    row.meanCpi);
    }

    // Do the overlap-dominated benchmarks share their peak leaves?
    const auto &fma = table.row("328.fma3d_m").percent;
    const auto &galgel = table.row("318.galgel_m").percent;
    double shared = 0.0;
    for (std::size_t i = 0; i < fma.size(); ++i)
        shared += std::min(fma[i], galgel[i]);
    std::printf("\nprofile overlap of 328.fma3d_m and 318.galgel_m "
                "(the two store+overlap extremes): %.1f%%\n",
                shared);
    std::printf("L1 distance fma3d_m vs galgel_m: %.1f%%   "
                "fma3d_m vs 330.art_m: %.1f%%\n",
                ProfileTable::distance(table.row("328.fma3d_m"),
                                       table.row("318.galgel_m")),
                ProfileTable::distance(table.row("328.fma3d_m"),
                                       table.row("330.art_m")));
    return 0;
}
