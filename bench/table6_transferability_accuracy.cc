/**
 * @file
 * Section VI-B: prediction-accuracy assessment of transferability —
 * correlation coefficient C and MAE of each suite model on its own
 * test set and on the other suite, against the acceptance thresholds
 * C > 0.85 and MAE < 0.15.
 */

#include <cstdio>

#include "bench/harness.hh"
#include "core/transferability.hh"
#include "util/text_table.hh"
#include "util/string_utils.hh"

int
main()
{
    using namespace wct;
    const SuiteModel &cpu = bench::suiteModel("cpu2006");
    const SuiteModel &omp = bench::suiteModel("omp2001");

    bench::banner("Section VI-B: prediction accuracy metrics for "
                  "transferability (thresholds: C > 0.85, "
                  "MAE < 0.15)");

    struct Case
    {
        const char *title;
        const SuiteModel *model;
        const Dataset *target;
        const char *paper;
    };
    const Case cases[] = {
        {"CPU2006 -> CPU2006 test", &cpu, &cpu.test,
         "C=0.9214 MAE=0.0988 (transferable)"},
        {"CPU2006 -> OMP2001", &cpu, &omp.test,
         "C=0.4337 MAE=0.3721 (not transferable)"},
        {"OMP2001 -> OMP2001 test", &omp, &omp.test,
         "transferable (paper reports symmetric finding)"},
        {"OMP2001 -> CPU2006", &omp, &cpu.test,
         "not transferable (paper reports symmetric finding)"},
    };

    TextTable table({"Direction", "C", "MAE", "RMSE", "RAE", "Verdict",
                     "Paper"});
    TransferabilityConfig config;
    config.bootstrapReplicates = 500; // 95% CIs on C and MAE
    for (const Case &c : cases) {
        const auto report = assessTransferability(
            c.model->tree, c.model->train, *c.target, config);
        table.addRow({
            c.title,
            formatDouble(report.accuracy.correlation, 4) + " [" +
                formatDouble(report.correlationCi.lower, 3) + "," +
                formatDouble(report.correlationCi.upper, 3) + "]",
            formatDouble(report.accuracy.meanAbsoluteError, 4) +
                " [" + formatDouble(report.maeCi.lower, 3) + "," +
                formatDouble(report.maeCi.upper, 3) + "]",
            formatDouble(report.accuracy.rootMeanSquaredError, 4),
            formatDouble(report.accuracy.relativeAbsoluteError, 3),
            std::string(report.transferableByAccuracy()
                            ? "transferable"
                            : "NOT transferable") +
                (report.accuracyVerdictUnstable() ? " (unstable)"
                                                  : ""),
            c.paper,
        });
    }
    std::printf("%s", table.render().c_str());
    return 0;
}
