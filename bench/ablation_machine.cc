/**
 * @file
 * Machine-sensitivity study. Section III of the paper cautions that
 * its models are "specific to the architecture, platform, and
 * compiler used"; this ablation quantifies that by re-running the
 * same workloads on perturbed machines (smaller L2, no prefetcher,
 * smaller DTLB, random-replacement caches) and asking the paper's own
 * transferability question across *machines* instead of across
 * workload suites: does the baseline-machine model still predict CPI
 * measured on the changed machine?
 */

#include <cstdio>

#include "bench/harness.hh"
#include "core/suite_model.hh"
#include "core/transferability.hh"
#include "stats/metrics.hh"
#include "util/string_utils.hh"
#include "util/text_table.hh"
#include "workload/suites.hh"

namespace
{

using namespace wct;

CollectionConfig
reducedCollection()
{
    CollectionConfig config;
    config.intervalInstructions = 4096;
    config.baseIntervals = 150;
    config.warmupInstructions = 1'000'000;
    // Exact counting: this ablation studies machine effects, so
    // multiplexing noise is turned off to isolate them.
    config.multiplexed = false;
    return config;
}

struct Variant
{
    const char *name;
    CoreConfig machine;
};

std::vector<Variant>
variants()
{
    std::vector<Variant> out;
    out.push_back({"baseline (Core2-like)", CoreConfig{}});

    CoreConfig half_l2;
    half_l2.l2.sizeBytes = 1 * 1024 * 1024;
    out.push_back({"1 MB L2 (vs 4 MB)", half_l2});

    CoreConfig no_prefetch;
    no_prefetch.prefetchEnabled = false;
    out.push_back({"no L2 stream prefetcher", no_prefetch});

    CoreConfig small_tlb;
    small_tlb.dtlb.entries = 64;
    out.push_back({"64-entry DTLB (vs 256)", small_tlb});

    CoreConfig random_caches;
    random_caches.l1d.policy = ReplacementPolicy::Random;
    random_caches.l2.policy = ReplacementPolicy::Random;
    out.push_back({"random-replacement L1D/L2", random_caches});

    CoreConfig plru;
    plru.l1d.policy = ReplacementPolicy::TreePlru;
    plru.l2.policy = ReplacementPolicy::TreePlru;
    out.push_back({"tree-PLRU L1D/L2", plru});
    return out;
}

} // namespace

int
main()
{
    using namespace wct;
    bench::banner("Ablation H: machine sensitivity — retrain on each "
                  "machine, and transfer the baseline model across "
                  "machines");

    const SuiteProfile &suite = suiteByName("cpu2006");
    SuiteModelConfig mconfig = bench::standardModelConfig();

    // Collect + model per machine variant.
    struct Entry
    {
        const Variant *variant;
        SuiteModel model;
    };
    const auto all = variants();
    std::vector<Entry> entries;
    for (const Variant &variant : all) {
        CollectionConfig config = reducedCollection();
        config.machine = variant.machine;
        std::fprintf(stderr, "[ablation_machine] collecting on %s\n",
                     variant.name);
        const SuiteData data = collectSuite(suite, config);
        entries.push_back(
            {&variant, buildSuiteModel(data, mconfig)});
    }

    TextTable table({"machine", "mean CPI", "leaves", "self C",
                     "self MAE", "baseline->here C",
                     "baseline->here MAE", "transfers?"});
    const SuiteModel &baseline = entries.front().model;
    for (const Entry &entry : entries) {
        const auto self = computeAccuracy(
            entry.model.tree.predictAll(entry.model.test),
            entry.model.test.column("CPI"));
        const auto report = assessTransferability(
            baseline.tree, baseline.train, entry.model.test);
        table.addRow({
            entry.variant->name,
            formatDouble(entry.model.meanCpi, 3),
            std::to_string(entry.model.tree.numLeaves()),
            formatDouble(self.correlation, 3),
            formatDouble(self.meanAbsoluteError, 3),
            formatDouble(report.accuracy.correlation, 3),
            formatDouble(report.accuracy.meanAbsoluteError, 3),
            report.transferableByAccuracy() ? "yes" : "NO",
        });
    }
    std::printf("%s", table.render().c_str());
    std::printf("\n(the baseline row transfers to itself by "
                "construction; rows where the perturbation shifts "
                "miss costs materially should fail, echoing the "
                "paper's architecture-specificity caveat)\n");
    return 0;
}
