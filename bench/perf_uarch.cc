/**
 * @file
 * google-benchmark microbenchmarks of the simulation substrate:
 * whole-core instruction throughput on representative workloads, and
 * the individual structural models (cache, TLB, predictor, store
 * buffer, PMU interval collection).
 */

#include <benchmark/benchmark.h>

#include "pmu/collector.hh"
#include "uarch/core.hh"
#include "workload/source.hh"
#include "workload/suites.hh"

namespace
{

using namespace wct;

void
BM_CoreRunBenchmark(benchmark::State &state,
                    const std::string &suite_name,
                    const std::string &bench_name)
{
    const auto &profile =
        suiteByName(suite_name).benchmark(bench_name);
    CoreModel core{CoreConfig{}};
    WorkloadSource source(profile, 42);
    core.run(source, 100000); // warm
    for (auto _ : state)
        core.run(source, 10000);
    state.SetItemsProcessed(state.iterations() * 10000);
}

void
BM_CoreHmmer(benchmark::State &state)
{
    BM_CoreRunBenchmark(state, "cpu2006", "456.hmmer");
}
BENCHMARK(BM_CoreHmmer);

void
BM_CoreMcf(benchmark::State &state)
{
    BM_CoreRunBenchmark(state, "cpu2006", "429.mcf");
}
BENCHMARK(BM_CoreMcf);

void
BM_CoreFma3d(benchmark::State &state)
{
    BM_CoreRunBenchmark(state, "omp2001", "328.fma3d_m");
}
BENCHMARK(BM_CoreFma3d);

void
BM_CacheAccess(benchmark::State &state)
{
    CacheModel cache(CacheConfig{32 * 1024, 64, 8});
    Rng rng(1);
    std::vector<std::uint64_t> addrs;
    for (int i = 0; i < 4096; ++i)
        addrs.push_back(rng.uniformInt(1 << 20));
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addrs[i]));
        i = (i + 1) % addrs.size();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_TlbAccess(benchmark::State &state)
{
    TlbModel tlb(TlbConfig{});
    Rng rng(2);
    std::vector<std::uint64_t> addrs;
    for (int i = 0; i < 4096; ++i)
        addrs.push_back(rng.uniformInt(1ull << 30));
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tlb.access(addrs[i]).miss);
        i = (i + 1) % addrs.size();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TlbAccess);

void
BM_BranchPredict(benchmark::State &state)
{
    BranchPredictor bp(BranchPredictorConfig{});
    Rng rng(3);
    std::uint64_t pc = 0x400;
    for (auto _ : state) {
        benchmark::DoNotOptimize(bp.predict(pc, rng.bernoulli(0.7)));
        pc = 0x400 + (pc + 4) % 1024;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BranchPredict);

void
BM_WorkloadGeneration(benchmark::State &state)
{
    const auto &profile =
        suiteByName("cpu2006").benchmark("464.h264ref");
    WorkloadSource source(profile, 7);
    for (auto _ : state)
        benchmark::DoNotOptimize(source.next().addr);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WorkloadGeneration);

void
BM_IntervalCollection(benchmark::State &state)
{
    const auto &profile =
        suiteByName("cpu2006").benchmark("401.bzip2");
    CoreModel core{CoreConfig{}};
    CollectorConfig config;
    config.intervalInstructions = 4096;
    IntervalCollector collector(core, config);
    WorkloadSource source(profile, 9);
    core.run(source, 100000);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            collector.collectInterval(source).front());
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_IntervalCollection);

} // namespace

BENCHMARK_MAIN();
