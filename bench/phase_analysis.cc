/**
 * @file
 * Temporal phase structure of representative SPEC CPU2006 stand-ins
 * through the suite model's behaviour classes — the introduction's
 * "dissimilar parts of the same workload" observation made visible.
 * Single-kernel benchmarks (456.hmmer) should show near-zero phase
 * entropy; multi-phase benchmarks (401.bzip2, 471.omnetpp) should
 * alternate between behaviour classes with long runs.
 */

#include <algorithm>
#include <cstdio>

#include "bench/harness.hh"
#include "core/phase_report.hh"

int
main()
{
    using namespace wct;
    const SuiteData &data = bench::collectedSuite("cpu2006");
    const SuiteModel &model = bench::suiteModel("cpu2006");

    bench::banner("Phase analysis: interval-by-interval behaviour "
                  "classes (letter k = leaf LM(k - 'A' + 1))");

    for (const char *name :
         {"456.hmmer", "444.namd", "401.bzip2", "471.omnetpp",
          "482.sphinx3", "429.mcf", "481.wrf"}) {
        const PhaseReport report(model.tree,
                                 data.benchmark(name).samples);
        std::printf("%s\n%s\n", name, report.render().c_str());
    }

    bench::banner("Suite-wide phase heterogeneity ranking");
    struct Entry
    {
        std::string name;
        double entropy;
        double mean_run;
    };
    std::vector<Entry> entries;
    for (const auto &bench_data : data.benchmarks) {
        const PhaseReport report(model.tree, bench_data.samples);
        entries.push_back({bench_data.name, report.leafEntropy(),
                           report.meanRunLength()});
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.entropy > b.entropy;
              });
    std::printf("%-18s %8s %10s\n", "benchmark", "entropy",
                "mean run");
    for (const Entry &entry : entries)
        std::printf("%-18s %8.2f %10.1f\n", entry.name.c_str(),
                    entry.entropy, entry.mean_run);
    return 0;
}
