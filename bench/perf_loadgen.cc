/**
 * @file
 * Perf smoke of the event-driven serving core under open-loop load
 * (docs/serving.md, "Event loop and admission").
 *
 * Two scenarios against a live in-process server behind the real
 * epoll transport on a Unix socket:
 *
 *   sustained  `wct loadgen`'s open-loop generator offers a fixed
 *              mixed predict/classify/stats rate; the completion
 *              ratio (completed / offered) is the gated metric.
 *   slo-drift  the server gets an impossibly tight predict p99 SLO
 *              while classify has none; once the sliding window
 *              fills, new predicts must be shed while classify keeps
 *              serving — admission is per op class, not global.
 *
 * Writes BENCH_loadgen.json. With --baseline, the run fails (exit 1)
 * when sustained_ratio drops below 75% of the checked-in (derated)
 * baseline's, when any response was malformed, or when the SLO-drift
 * scenario fails to shed predicts / starves classify. The ratio is
 * offered-vs-completed on the same host, so the gate transfers
 * across machines and CI load.
 *
 *   perf_loadgen [--rate=R] [--duration=S] [--connections=C]
 *                [--reps=K] [--soak] [--out=FILE] [--baseline=FILE]
 *
 * --soak scales the run up (longer, more connections) for the
 * sanitizer jobs under the serve-stress label; gates stay the same.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>

#include <unistd.h>

#include "bench/run_meta.hh"
#include "data/dataset.hh"
#include "mtree/model_tree.hh"
#include "mtree/serialize.hh"
#include "serve/loadgen.hh"
#include "serve/server.hh"
#include "serve/socket.hh"
#include "util/rng.hh"

namespace
{

using namespace wct;
using namespace wct::serve;

Dataset
syntheticData(std::size_t n, std::uint64_t seed)
{
    Dataset d({"x0", "x1", "x2", "y"});
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
        const double x0 = rng.uniform(0.0, 1.0);
        const double x1 = rng.uniform(0.0, 1.0);
        const double x2 = rng.uniform(0.0, 1.0);
        const double y = (x0 <= 0.5 ? 3.0 : 0.0) +
                         (x1 <= 0.5 ? 2.0 : 0.0) + 0.5 * x2 +
                         rng.normal(0.0, 0.05);
        d.addRow({x0, x1, x2, y});
    }
    return d;
}

/** A served model + epoll transport on a fresh Unix socket. */
struct Fixture
{
    ServerConfig config;
    std::string socketPath;
    std::string modelPath;

    std::unique_ptr<Server> server;
    std::unique_ptr<SocketServer> transport;

    bool
    start()
    {
        server = std::make_unique<Server>(config);
        std::string err;
        if (!server->loadModel(modelPath, "bench", nullptr, &err)) {
            std::cerr << "perf_loadgen: " << err << "\n";
            return false;
        }
        SocketConfig socket_config;
        socket_config.unixPath = socketPath;
        SocketServer *raw = new SocketServer(*server, socket_config);
        transport.reset(raw);
        if (!transport->start(&err)) {
            std::cerr << "perf_loadgen: " << err << "\n";
            return false;
        }
        return true;
    }

    void
    stop()
    {
        if (transport)
            transport->stop();
        if (server) {
            server->beginShutdown();
            server->drain();
        }
        transport.reset();
        server.reset();
    }
};

double
jsonNumber(const std::string &text, const std::string &key)
{
    const std::string quoted = "\"" + key + "\"";
    const std::size_t pos = text.find(quoted);
    if (pos == std::string::npos)
        return std::nan("");
    const std::size_t colon = text.find(':', pos + quoted.size());
    if (colon == std::string::npos)
        return std::nan("");
    return std::strtod(text.c_str() + colon + 1, nullptr);
}

} // namespace

int
main(int argc, char **argv)
{
    double rate = 400.0;
    double duration = 1.5;
    std::size_t connections = 4;
    int reps = 2;
    bool soak = false;
    std::string out_path = "BENCH_loadgen.json";
    std::string baseline_path;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg.rfind("--rate=", 0) == 0)
            rate = std::strtod(arg.data() + 7, nullptr);
        else if (arg.rfind("--duration=", 0) == 0)
            duration = std::strtod(arg.data() + 11, nullptr);
        else if (arg.rfind("--connections=", 0) == 0)
            connections = std::max<std::size_t>(
                1, std::strtoul(arg.data() + 14, nullptr, 10));
        else if (arg.rfind("--reps=", 0) == 0)
            reps = std::max(
                1, static_cast<int>(
                       std::strtol(arg.data() + 7, nullptr, 10)));
        else if (arg == "--soak")
            soak = true;
        else if (arg.rfind("--out=", 0) == 0)
            out_path = std::string(arg.substr(6));
        else if (arg.rfind("--baseline=", 0) == 0)
            baseline_path = std::string(arg.substr(11));
        else {
            std::cerr << "perf_loadgen: unknown option " << arg
                      << "\n";
            return 1;
        }
    }
    if (soak) {
        rate *= 2;
        duration = std::max(duration, 6.0);
        connections = std::max<std::size_t>(connections, 8);
    }

    // Shared fixture material: a small trained model on disk and a
    // probe row pool for the generator.
    const Dataset training = syntheticData(4000, 1);
    const ModelTree tree = ModelTree::train(training, "y");
    const std::string model_path = out_path + ".mtree";
    writeModelTreeFile(tree, model_path);
    const Dataset probe = syntheticData(256, 2);

    LoadgenConfig gen;
    gen.ratePerSec = rate;
    gen.durationSec = duration;
    gen.connections = connections;
    gen.rowsPerRequest = 16;
    gen.schema = probe.columnNames();
    gen.pool.reserve(probe.numRows() * probe.numColumns());
    for (std::size_t r = 0; r < probe.numRows(); ++r) {
        const auto row = probe.row(r);
        gen.pool.insert(gen.pool.end(), row.begin(), row.end());
    }

    const std::string sock_base =
        (std::filesystem::temp_directory_path() /
         ("wct_perf_loadgen_" + std::to_string(::getpid())))
            .string();

    // --- Scenario 1: sustained mixed open-loop rate. ---
    double sustained_ratio = 0.0;
    double achieved_rps = 0.0;
    double p50 = 0.0, p95 = 0.0, p99 = 0.0;
    std::uint64_t malformed = 0;
    std::uint64_t transport_errors = 0;
    for (int rep = 0; rep < reps; ++rep) {
        Fixture fx;
        fx.modelPath = model_path;
        fx.socketPath = sock_base + ".sustained.sock";
        if (!fx.start())
            return 1;
        LoadgenConfig cfg = gen;
        cfg.unixPath = fx.socketPath;
        std::string err;
        const auto report = runLoadgen(cfg, &err);
        fx.stop();
        if (!report) {
            std::cerr << "perf_loadgen: " << err << "\n";
            return 1;
        }
        const double ratio =
            static_cast<double>(report->completed) /
            static_cast<double>(report->offered);
        if (ratio > sustained_ratio) {
            sustained_ratio = ratio;
            achieved_rps = report->achievedRps;
            p50 = report->p50Us;
            p95 = report->p95Us;
            p99 = report->p99Us;
        }
        malformed += report->malformed();
        transport_errors += report->transportErrors;
    }

    // --- Scenario 2: SLO drift sheds one class, not the other. ---
    std::uint64_t shed_predict = 0;
    std::uint64_t ok_classify = 0;
    std::uint64_t drift_malformed = 0;
    {
        Fixture fx;
        fx.modelPath = model_path;
        fx.socketPath = sock_base + ".drift.sock";
        // 1us predict p99 is unmeetable: after sloMinSamples
        // predicts land in the window, every further predict must
        // shed while classify (no SLO) keeps serving.
        fx.config.sloPredictP99Us = 1;
        fx.config.sloMinSamples = 8;
        if (!fx.start())
            return 1;
        LoadgenConfig cfg = gen;
        cfg.unixPath = fx.socketPath;
        cfg.predictWeight = 5;
        cfg.classifyWeight = 5;
        cfg.statsWeight = 0;
        cfg.durationSec = std::min(duration, 1.5);
        std::string err;
        const auto report = runLoadgen(cfg, &err);
        fx.stop();
        if (!report) {
            std::cerr << "perf_loadgen: " << err << "\n";
            return 1;
        }
        shed_predict = report->byStatus[static_cast<std::size_t>(
            Status::Shed)];
        ok_classify = report->byStatus[static_cast<std::size_t>(
            Status::Ok)];
        drift_malformed = report->malformed();
    }
    std::remove(model_path.c_str());

    std::ostringstream json;
    json << "{\n"
         << "  \"benchmark\": \"perf_loadgen\",\n"
         << bench::runMetadataJson("  ") << ",\n"
         << "  \"rate_per_s\": " << rate << ",\n"
         << "  \"duration_s\": " << duration << ",\n"
         << "  \"connections\": " << connections << ",\n"
         << "  \"reps\": " << reps << ",\n"
         << "  \"soak\": " << (soak ? "true" : "false") << ",\n"
         << "  \"achieved_rps\": " << achieved_rps << ",\n"
         << "  \"sustained_ratio\": " << sustained_ratio << ",\n"
         << "  \"latency_p50_us\": " << p50 << ",\n"
         << "  \"latency_p95_us\": " << p95 << ",\n"
         << "  \"latency_p99_us\": " << p99 << ",\n"
         << "  \"malformed\": " << (malformed + drift_malformed)
         << ",\n"
         << "  \"transport_errors\": " << transport_errors << ",\n"
         << "  \"drift_shed_predict\": " << shed_predict << ",\n"
         << "  \"drift_ok_classify\": " << ok_classify << "\n"
         << "}\n";
    std::ofstream out(out_path);
    out << json.str();
    out.close();
    std::cout << json.str();

    if (malformed + drift_malformed > 0) {
        std::cerr << "perf_loadgen: FAIL: " << malformed
                  << " malformed responses under load\n";
        return 1;
    }
    if (shed_predict == 0 || ok_classify == 0) {
        std::cerr << "perf_loadgen: FAIL: SLO drift did not shed "
                     "predicts ("
                  << shed_predict
                  << ") while classify kept serving ("
                  << ok_classify << ")\n";
        return 1;
    }
    std::cout << "perf_loadgen: slo-drift gate OK (" << shed_predict
              << " predicts shed, " << ok_classify
              << " classifies served)\n";

    if (!baseline_path.empty()) {
        std::ifstream in(baseline_path);
        if (!in) {
            std::cerr << "perf_loadgen: cannot read baseline "
                      << baseline_path << "\n";
            return 1;
        }
        std::stringstream buf;
        buf << in.rdbuf();
        const double base =
            jsonNumber(buf.str(), "sustained_ratio");
        if (std::isnan(base) || base <= 0.0) {
            std::cerr << "perf_loadgen: baseline has no usable "
                         "sustained_ratio\n";
            return 1;
        }
        // Ratio gate (completed/offered at the same offered rate,
        // both measured on this host): transfers across machines.
        const double floor = 0.75 * base;
        if (sustained_ratio < floor) {
            std::cerr << "perf_loadgen: FAIL: sustained completion "
                         "ratio "
                      << sustained_ratio << " fell below 75% of the "
                      << "baseline " << base << " (floor " << floor
                      << ")\n";
            return 1;
        }
        std::cout << "perf_loadgen: sustained-rate gate OK ("
                  << sustained_ratio << " >= " << floor
                  << " floor)\n";
    }
    return 0;
}
