/**
 * @file
 * Perf smoke of the fleet-shared artifact store.
 *
 * Starts an in-process `wct store serve` daemon (StoreService behind
 * a SocketServer speaking WCTSTOR on a Unix socket), then runs a plan
 * through it twice from the point of view of a cluster:
 *
 *   cold cluster  — empty daemon, fresh worker cache: every stage
 *                   computes and publishes through the daemon;
 *   warm cluster  — warm daemon, a *fresh* worker cache per rep, so
 *                   every hit is served over the wire, not from the
 *                   local read-through cache.
 *
 * Writes BENCH_store.json:
 *
 *   perf_store [--plan=NAME] [--intervals=N] [--reps=R]
 *              [--dir=DIR] [--out=FILE] [--baseline=FILE]
 *
 * Three correctness gates always apply: the warm run must be 100%
 * store hits, cold and warm plan outputs must be byte-identical, and
 * the warm-over-cold speedup must clear the 5x floor (a warm worker
 * fetches and decodes artifacts instead of simulating; anything near
 * 1x means the daemon is not actually serving). With --baseline, the
 * speedup must additionally stay within 75% of the checked-in
 * baseline ratio — machine-independent, since both numbers come from
 * the same host. Wired into ctest under the perf-smoke label.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <string_view>

#include <unistd.h>

#include "bench/run_meta.hh"
#include "data/remote_store.hh"
#include "data/store_wire.hh"
#include "pipeline/plans.hh"
#include "serve/socket.hh"
#include "serve/store_service.hh"

namespace
{

using namespace wct;
namespace fs = std::filesystem;

struct TimedRun
{
    double ms = 0.0;
    std::string output;    ///< rendered plan results
    bool allCached = false;
    std::size_t stages = 0;
    std::size_t hits = 0;
};

/** Run the plan as one worker with its own read-through cache. */
TimedRun
timePlan(const std::string &plan,
         const pipeline::PlanProtocol &protocol,
         const std::string &url, const std::string &cache_dir)
{
    RemoteStoreConfig remote;
    remote.url = url;
    remote.cacheDir = cache_dir;

    TimedRun result;
    std::ostringstream out;
    pipeline::Pipeline pipe{makeRemoteStore(remote)};
    const auto start = std::chrono::steady_clock::now();
    pipeline::runPlan(pipe, plan, protocol, out);
    const auto stop = std::chrono::steady_clock::now();
    result.ms =
        std::chrono::duration<double, std::milli>(stop - start)
            .count();
    result.output = out.str();
    result.allCached = pipe.allCached();
    result.stages = pipe.runs().size();
    result.hits = pipe.cachedCount();
    return result;
}

/** Value of the first `"key": <number>` in a (flat) JSON text. */
double
jsonNumber(const std::string &text, const std::string &key)
{
    const std::string quoted = "\"" + key + "\"";
    const std::size_t pos = text.find(quoted);
    if (pos == std::string::npos)
        return std::nan("");
    const std::size_t colon = text.find(':', pos + quoted.size());
    if (colon == std::string::npos)
        return std::nan("");
    return std::strtod(text.c_str() + colon + 1, nullptr);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string plan = "cpu2006";
    std::size_t intervals = 40;
    int reps = 2;
    std::string work_dir;
    std::string out_path = "BENCH_store.json";
    std::string baseline_path;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg.rfind("--plan=", 0) == 0)
            plan = std::string(arg.substr(7));
        else if (arg.rfind("--intervals=", 0) == 0)
            intervals = static_cast<std::size_t>(
                std::strtoul(arg.data() + 12, nullptr, 10));
        else if (arg.rfind("--reps=", 0) == 0)
            reps = std::max(
                1, static_cast<int>(
                       std::strtol(arg.data() + 7, nullptr, 10)));
        else if (arg.rfind("--dir=", 0) == 0)
            work_dir = std::string(arg.substr(6));
        else if (arg.rfind("--out=", 0) == 0)
            out_path = std::string(arg.substr(6));
        else if (arg.rfind("--baseline=", 0) == 0)
            baseline_path = std::string(arg.substr(11));
        else {
            std::cerr << "perf_store: unknown option " << arg
                      << "\n";
            return 1;
        }
    }
    if (!pipeline::isPlanName(plan)) {
        std::cerr << "perf_store: unknown plan " << plan << "\n";
        return 1;
    }

    // Reduced-scale protocol, same rationale as perf_pipeline: the
    // real stage graph end to end, inside ctest budgets.
    pipeline::PlanProtocol protocol;
    protocol.collection.intervalInstructions = 2048;
    protocol.collection.baseIntervals = intervals;
    protocol.collection.warmupInstructions = 100'000;

    if (work_dir.empty())
        work_dir =
            (fs::temp_directory_path() /
             ("wct_perf_store_" + std::to_string(::getpid())))
                .string();
    fs::remove_all(work_dir);
    fs::create_directories(fs::path(work_dir) / "daemon");

    // In-process daemon: same StoreService + SocketServer stack as
    // `wct store serve`, minus the process boundary.
    serve::SocketConfig socket_config;
    socket_config.unixPath =
        (fs::path(work_dir) / "store.sock").string();
    socket_config.frameMagic = std::string(kStoreWireMagic, 8);
    socket_config.frameVersion = kStoreWireFormatVersion;
    socket_config.maxFramePayload = kMaxStoreFramePayload;
    serve::StoreService service(
        ArtifactStore((fs::path(work_dir) / "daemon").string()));
    serve::SocketServer transport(service, socket_config);
    std::string err;
    if (!transport.start(&err)) {
        std::cerr << "perf_store: daemon start failed: " << err
                  << "\n";
        return 1;
    }
    const std::string url = "unix:" + socket_config.unixPath;

    // Cold cluster: empty daemon, fresh worker.
    const TimedRun cold =
        timePlan(plan, protocol, url,
                 (fs::path(work_dir) / "cold-cache").string());

    // Warm cluster: each rep is a brand-new worker joining a warm
    // fleet — a fresh cache directory forces every hit over the wire.
    TimedRun warm;
    warm.ms = std::numeric_limits<double>::infinity();
    bool warm_all_cached = true;
    bool identical = true;
    for (int rep = 0; rep < reps; ++rep) {
        const std::string cache =
            (fs::path(work_dir) /
             ("warm-cache-" + std::to_string(rep)))
                .string();
        const TimedRun run = timePlan(plan, protocol, url, cache);
        warm_all_cached = warm_all_cached && run.allCached;
        identical = identical && run.output == cold.output;
        if (run.ms < warm.ms)
            warm = run;
    }
    transport.stop();
    fs::remove_all(work_dir);

    const double speedup = cold.ms / warm.ms;
    std::ostringstream json;
    json << "{\n"
         << "  \"benchmark\": \"perf_store\",\n"
         << bench::runMetadataJson("  ") << ",\n"
         << "  \"plan\": \"" << plan << "\",\n"
         << "  \"base_intervals\": " << intervals << ",\n"
         << "  \"stages\": " << cold.stages << ",\n"
         << "  \"reps\": " << reps << ",\n"
         << "  \"cold_ms\": " << cold.ms << ",\n"
         << "  \"warm_ms\": " << warm.ms << ",\n"
         << "  \"speedup\": " << speedup << ",\n"
         << "  \"warm_hits\": " << warm.hits << ",\n"
         << "  \"warm_all_cached\": "
         << (warm_all_cached ? "true" : "false") << ",\n"
         << "  \"byte_identical\": "
         << (identical ? "true" : "false") << "\n"
         << "}\n";
    std::ofstream out(out_path);
    out << json.str();
    out.close();
    std::cout << json.str();

    if (!warm_all_cached) {
        std::cerr << "perf_store: FAIL: a warm worker missed the "
                     "store (" << warm.hits << "/" << warm.stages
                  << " hits)\n";
        return 1;
    }
    if (!identical) {
        std::cerr << "perf_store: FAIL: warm plan output differs "
                     "from the cold run\n";
        return 1;
    }
    if (speedup < 5.0) {
        std::cerr << "perf_store: FAIL: warm cluster only " << speedup
                  << "x faster than cold; the shared store is not "
                     "paying for itself\n";
        return 1;
    }
    if (!baseline_path.empty()) {
        std::ifstream in(baseline_path);
        if (!in) {
            std::cerr << "perf_store: cannot read baseline "
                      << baseline_path << "\n";
            return 1;
        }
        std::stringstream buf;
        buf << in.rdbuf();
        const double base = jsonNumber(buf.str(), "speedup");
        if (std::isnan(base) || base <= 0.0) {
            std::cerr << "perf_store: baseline has no usable "
                         "speedup\n";
            return 1;
        }
        // Gate on the ratio, not absolute times: both numbers come
        // from this host, so the check transfers across machines.
        const double floor = 0.75 * base;
        if (speedup < floor) {
            std::cerr << "perf_store: FAIL: warm speedup " << speedup
                      << "x fell below 75% of the baseline " << base
                      << "x (floor " << floor << "x)\n";
            return 1;
        }
        std::cout << "perf_store: speedup gate OK (" << speedup
                  << "x >= " << floor << "x floor)\n";
    }
    return 0;
}
