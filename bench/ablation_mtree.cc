/**
 * @file
 * Ablations of the modeling choices (DESIGN.md per-experiment index):
 *  - training fraction sweep (the paper's 10% finding in context),
 *  - smoothing and pruning on/off,
 *  - minimum leaf size (tree size vs accuracy),
 *  - learner comparison: M5' vs constant-leaf tree vs global OLS
 *    (the comparison motivating model trees in related work [15]).
 */

#include <cstdio>

#include "bench/harness.hh"
#include "data/split.hh"
#include "mtree/baselines.hh"
#include "stats/metrics.hh"
#include "util/string_utils.hh"
#include "util/text_table.hh"

namespace
{

using namespace wct;

AccuracyMetrics
evaluate(const Regressor &model, const Dataset &test)
{
    return computeAccuracy(model.predictAll(test),
                           test.column("CPI"));
}

void
trainingFractionSweep(const Dataset &pooled)
{
    bench::banner("Ablation A: training fraction vs accuracy "
                  "(fixed held-out 25% test set)");
    Rng rng(0x7ab1);
    auto split = randomSplit(pooled, 0.75, rng);
    const Dataset &reservoir = split.train;
    const Dataset &test = split.test;

    TextTable table({"train fraction", "train samples", "leaves", "C",
                     "MAE"});
    for (double fraction : {0.01, 0.02, 0.05, 0.10, 0.25, 0.50, 1.0}) {
        Rng draw_rng(0x1234);
        const Dataset train =
            sampleFraction(reservoir, fraction, draw_rng);
        const ModelTree tree = ModelTree::train(
            train, "CPI", bench::standardModelConfig().tree);
        const auto metrics = evaluate(tree, test);
        table.addRow({formatDouble(fraction, 2),
                      std::to_string(train.numRows()),
                      std::to_string(tree.numLeaves()),
                      formatDouble(metrics.correlation, 4),
                      formatDouble(metrics.meanAbsoluteError, 4)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("(the paper trains on 10%% and finds it sufficient "
                "for transferability to the remainder)\n");
}

void
smoothingPruningAblation(const Dataset &train, const Dataset &test)
{
    bench::banner("Ablation B: smoothing and pruning");
    TextTable table({"smooth", "prune", "leaves", "C", "MAE"});
    for (bool smooth : {true, false}) {
        for (bool prune : {true, false}) {
            ModelTreeConfig config = bench::standardModelConfig().tree;
            config.smooth = smooth;
            config.prune = prune;
            const ModelTree tree =
                ModelTree::train(train, "CPI", config);
            const auto metrics = evaluate(tree, test);
            table.addRow({smooth ? "on" : "off",
                          prune ? "on" : "off",
                          std::to_string(tree.numLeaves()),
                          formatDouble(metrics.correlation, 4),
                          formatDouble(metrics.meanAbsoluteError, 4)});
        }
    }
    std::printf("%s", table.render().c_str());
}

void
leafSizeSweep(const Dataset &train, const Dataset &test)
{
    bench::banner("Ablation C: minimum leaf fraction (tree size vs "
                  "accuracy; the paper tunes for 'tractable model "
                  "size and good prediction accuracy')");
    TextTable table({"min leaf fraction", "leaves", "C", "MAE"});
    for (double fraction : {0.001, 0.005, 0.01, 0.025, 0.05, 0.10,
                            0.25}) {
        ModelTreeConfig config = bench::standardModelConfig().tree;
        config.minLeafFraction = fraction;
        const ModelTree tree = ModelTree::train(train, "CPI", config);
        const auto metrics = evaluate(tree, test);
        table.addRow({formatDouble(fraction, 3),
                      std::to_string(tree.numLeaves()),
                      formatDouble(metrics.correlation, 4),
                      formatDouble(metrics.meanAbsoluteError, 4)});
    }
    std::printf("%s", table.render().c_str());
}

void
learnerComparison(const Dataset &train, const Dataset &test)
{
    bench::banner("Ablation D: learner comparison on identical data");
    TextTable table({"learner", "models/leaves", "C", "MAE", "RAE"});

    const ModelTree m5 = ModelTree::train(
        train, "CPI", bench::standardModelConfig().tree);
    const auto m5_metrics = evaluate(m5, test);
    table.addRow({"M5' model tree", std::to_string(m5.numLeaves()),
                  formatDouble(m5_metrics.correlation, 4),
                  formatDouble(m5_metrics.meanAbsoluteError, 4),
                  formatDouble(m5_metrics.relativeAbsoluteError, 3)});

    const ModelTree cart = trainRegressionTree(
        train, "CPI", bench::standardModelConfig().tree);
    const auto cart_metrics = evaluate(cart, test);
    table.addRow({"regression tree (constant leaves)",
                  std::to_string(cart.numLeaves()),
                  formatDouble(cart_metrics.correlation, 4),
                  formatDouble(cart_metrics.meanAbsoluteError, 4),
                  formatDouble(cart_metrics.relativeAbsoluteError,
                               3)});

    const auto ols = GlobalLinearRegression::train(train, "CPI");
    const auto ols_metrics = evaluate(ols, test);
    table.addRow({"global linear regression", "1",
                  formatDouble(ols_metrics.correlation, 4),
                  formatDouble(ols_metrics.meanAbsoluteError, 4),
                  formatDouble(ols_metrics.relativeAbsoluteError, 3)});

    std::printf("%s", table.render().c_str());
}

} // namespace

int
main()
{
    using namespace wct;
    const SuiteModel &model = bench::suiteModel("cpu2006");
    const Dataset pooled = bench::collectedSuite("cpu2006").pooled();

    trainingFractionSweep(pooled);
    smoothingPruningAblation(model.train, model.test);
    leafSizeSweep(model.train, model.test);
    learnerComparison(model.train, model.test);
    return 0;
}
