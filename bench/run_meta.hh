/**
 * @file
 * Run metadata stamped into every BENCH_*.json: which compiler built
 * the binary, which git revision it came from, and how many threads
 * the run actually used. A checked-in baseline or a CI artifact is
 * only interpretable when the numbers carry their provenance — two
 * BENCH files that disagree should first be compared on this block.
 */

#ifndef WCT_BENCH_RUN_META_HH
#define WCT_BENCH_RUN_META_HH

#include <string>

namespace wct::bench
{

/**
 * One JSON object member, `"run_meta": {...}`, ready to splice into a
 * BENCH_*.json (no trailing comma or newline). Each inner line is
 * prefixed with `indent`. Contents: toolkit version, git revision the
 * build was configured at (WCT_GIT_REV, "unknown" outside a
 * checkout), compiler id from __VERSION__, effective worker-thread
 * count of the global pool at call time (so call it *after* any
 * resetGlobalForTest), and host CPU count.
 */
std::string runMetadataJson(const std::string &indent);

} // namespace wct::bench

#endif // WCT_BENCH_RUN_META_HH
