/**
 * @file
 * Figure 2: the SPEC OMP2001 model tree (Section V), printed with the
 * same structure as Figure 1.
 */

#include <cstdio>

#include "bench/harness.hh"
#include "stats/metrics.hh"

int
main()
{
    using namespace wct;
    const SuiteModel &model = bench::suiteModel("omp2001");

    bench::banner("Figure 2: SPEC OMP2001 model tree (M5', trained "
                  "on a random 10% of samples)");
    std::printf("training samples: %zu   leaves (linear models): %zu"
                "   suite mean CPI: %.3f\n\n",
                model.train.numRows(), model.tree.numLeaves(),
                model.meanCpi);
    std::printf("%s", model.tree.describe().c_str());

    std::printf("\nsplit variables in the tree:");
    for (std::size_t attr : model.tree.splitAttributes())
        std::printf(" %s", model.tree.schema()[attr].c_str());
    std::printf("\n");

    const auto metrics = computeAccuracy(
        model.tree.predictAll(model.test), model.test.column("CPI"));
    std::printf("\nfit on the held-out 10%% test set: C = %.4f, "
                "MAE = %.4f CPI\n",
                metrics.correlation, metrics.meanAbsoluteError);

    std::printf("\nGraphviz rendering (pipe into `dot -Tpng`):\n%s",
                model.tree.toDot().c_str());
    return 0;
}
