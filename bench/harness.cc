#include "bench/harness.hh"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <sstream>

#include "data/csv.hh"
#include "workload/suites.hh"

namespace wct
{
namespace bench
{

namespace
{

/**
 * Collection runs are cached as one CSV per benchmark under
 * $WCT_BENCH_CACHE (default .wct_cache), keyed by the collection
 * parameters, so the ten table/figure binaries share one simulation
 * pass. Delete the directory to force re-simulation.
 */
std::filesystem::path
cacheDir(const std::string &suite_name, const CollectionConfig &config)
{
    const char *base = std::getenv("WCT_BENCH_CACHE");
    std::ostringstream key;
    key << suite_name << "-i" << config.intervalInstructions << "-b"
        << config.baseIntervals << "-w" << config.warmupInstructions
        << "-m" << (config.multiplexed ? 1 : 0) << "-s" << std::hex
        << config.seed;
    return std::filesystem::path(base ? base : ".wct_cache") /
        key.str();
}

bool
loadCached(const std::filesystem::path &dir, const SuiteProfile &suite,
           SuiteData &out)
{
    if (!std::filesystem::is_directory(dir))
        return false;
    out.suiteName = suite.name;
    out.benchmarks.clear();
    for (const BenchmarkProfile &bench : suite.benchmarks) {
        const auto file = dir / (bench.name + ".csv");
        if (!std::filesystem::is_regular_file(file))
            return false;
        BenchmarkData data;
        data.name = bench.name;
        data.instructionWeight = bench.instructionWeight;
        data.samples = readCsvFile(file.string());
        if (data.samples.columnNames() != metricColumnNames())
            return false; // stale format
        out.benchmarks.push_back(std::move(data));
    }
    return true;
}

void
storeCache(const std::filesystem::path &dir, const SuiteData &data)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        std::fprintf(stderr, "[harness] cannot create cache %s: %s\n",
                     dir.string().c_str(), ec.message().c_str());
        return;
    }
    for (const BenchmarkData &bench : data.benchmarks)
        writeCsvFile(bench.samples,
                     (dir / (bench.name + ".csv")).string());
}

} // namespace

CollectionConfig
standardCollection()
{
    CollectionConfig config;
    config.intervalInstructions = 8192;
    config.baseIntervals = 700;
    config.warmupInstructions = 1'500'000;
    config.multiplexed = true;
    config.seed = 0x5eed;
    return config;
}

SuiteModelConfig
standardModelConfig()
{
    SuiteModelConfig config;
    config.trainFraction = 0.10;
    config.tree.minLeafInstances = 25;
    config.tree.minLeafFraction = 0.025;
    config.tree.sdThresholdFraction = 0.05;
    config.seed = 0xcafe;
    return config;
}

const SuiteData &
collectedSuite(const std::string &name)
{
    static std::map<std::string, SuiteData> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        const SuiteProfile &suite = suiteByName(name);
        const CollectionConfig config = standardCollection();
        const auto dir = cacheDir(name, config);

        SuiteData data;
        if (loadCached(dir, suite, data)) {
            std::fprintf(stderr, "[harness] %s: %zu samples from "
                                 "cache %s\n",
                         name.c_str(), data.totalSamples(),
                         dir.string().c_str());
        } else {
            std::fprintf(stderr, "[harness] collecting %s ...\n",
                         name.c_str());
            data = collectSuite(suite, config);
            storeCache(dir, data);
            std::fprintf(stderr, "[harness] %s: %zu samples "
                                 "(cached to %s)\n",
                         name.c_str(), data.totalSamples(),
                         dir.string().c_str());
        }
        it = cache.emplace(name, std::move(data)).first;
    }
    return it->second;
}

const SuiteModel &
suiteModel(const std::string &name)
{
    static std::map<std::string, SuiteModel> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        it = cache
                 .emplace(name, buildSuiteModel(collectedSuite(name),
                                                standardModelConfig()))
                 .first;
    }
    return it->second;
}

void
banner(const std::string &title)
{
    std::printf("\n================================================="
                "=============\n%s\n============================="
                "=================================\n\n",
                title.c_str());
}

} // namespace bench
} // namespace wct
