#include "bench/harness.hh"

#include <cstdio>
#include <cstdlib>
#include <map>

#include "pipeline/plans.hh"
#include "pipeline/stages.hh"
#include "workload/suites.hh"

namespace wct
{
namespace bench
{

namespace
{

/**
 * The experiment binaries share one artifact store under
 * $WCT_BENCH_CACHE (default .wct_cache) — the same content-addressed
 * store `wct run`/`wct cache` operate on, so the ten table/figure
 * binaries and the CLI plans share one simulation pass. Delete the
 * directory (or `wct cache gc` it) to force re-simulation.
 */
ArtifactStore
benchStore()
{
    const char *base = std::getenv("WCT_BENCH_CACHE");
    return ArtifactStore(base ? base : ".wct_cache");
}

} // namespace

CollectionConfig
standardCollection()
{
    return pipeline::standardCollection();
}

SuiteModelConfig
standardModelConfig()
{
    return pipeline::standardModelConfig();
}

const SuiteData &
collectedSuite(const std::string &name)
{
    static std::map<std::string, SuiteData> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        pipeline::Pipeline pipe{benchStore()};
        SuiteData data = pipeline::collectStage(
            pipe, suiteByName(name), standardCollection());
        std::fprintf(stderr, "[harness] %s: %zu samples (%s)\n",
                     name.c_str(), data.totalSamples(),
                     pipe.runs().back().cached ? "from cache"
                                               : "collected");
        it = cache.emplace(name, std::move(data)).first;
    }
    return it->second;
}

const SuiteModel &
suiteModel(const std::string &name)
{
    static std::map<std::string, SuiteModel> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        const SuiteData &data = collectedSuite(name);
        const std::uint64_t collect_key = pipeline::collectStageKey(
            suiteByName(name), standardCollection());
        pipeline::Pipeline pipe{benchStore()};
        it = cache
                 .emplace(name,
                          pipeline::trainStage(pipe, data, collect_key,
                                               standardModelConfig()))
                 .first;
    }
    return it->second;
}

void
banner(const std::string &title)
{
    std::printf("\n================================================="
                "=============\n%s\n============================="
                "=================================\n\n",
                title.c_str());
}

} // namespace bench
} // namespace wct
