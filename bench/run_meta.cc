#include "bench/run_meta.hh"

#include <sstream>
#include <thread>

#include "util/thread_pool.hh"
#include "util/version.hh"

#ifndef WCT_GIT_REV
#define WCT_GIT_REV "unknown"
#endif

namespace wct::bench
{

namespace
{

/** Minimal JSON string escaping; compiler banners can carry quotes. */
std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) >= 0x20)
                out += c;
        }
    }
    return out;
}

/** Compiler id: family prefix plus the predefined version banner. */
std::string
compilerId()
{
#if defined(__clang__)
    return std::string("clang ") + __VERSION__;
#elif defined(__GNUC__)
    return std::string("gcc ") + __VERSION__;
#else
    return std::string("unknown ") + __VERSION__;
#endif
}

} // namespace

std::string
runMetadataJson(const std::string &indent)
{
    // Worker threads of the pool this run will actually fan out on;
    // +1 for the calling thread matches WCT_THREADS semantics
    // (WCT_THREADS=1 -> zero workers, inline execution).
    const std::size_t wct_threads =
        ThreadPool::global().workerCount() + 1;

    std::ostringstream json;
    json << indent << "\"run_meta\": {\n"
         << indent << "  \"wct_version\": \""
         << jsonEscape(kWctVersion) << "\",\n"
         << indent << "  \"git_rev\": \"" << jsonEscape(WCT_GIT_REV)
         << "\",\n"
         << indent << "  \"compiler\": \""
         << jsonEscape(compilerId()) << "\",\n"
         << indent << "  \"wct_threads\": " << wct_threads << ",\n"
         << indent << "  \"host_cpus\": "
         << std::thread::hardware_concurrency() << "\n"
         << indent << "}";
    return json.str();
}

} // namespace wct::bench
