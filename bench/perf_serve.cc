/**
 * @file
 * Perf smoke of the model-serving subsystem (docs/serving.md).
 *
 * Drives a loopback Server (no sockets: the measurement is admission,
 * coalescing, and batched inference, not kernel I/O) from several
 * client threads under two request shapes over the same total sample
 * count:
 *
 *   batched    rows-per-request samples in each predict frame
 *   singleton  one sample per predict frame
 *
 * and writes BENCH_serve.json with both throughputs and their ratio
 * (batch_speedup), which is what batching buys once per-request
 * overhead — admission lock, promise/future handoff, response
 * encode — is paid per sample instead of amortized.
 *
 *   perf_serve [--rows=R] [--requests=N] [--clients=C] [--threads=T]
 *              [--reps=K] [--out=FILE] [--baseline=FILE]
 *
 * With --baseline, the run fails (exit 1) when batch_speedup drops
 * below 75% of the checked-in baseline's — a machine-independent
 * regression gate (numerator and denominator are measured on the
 * same host), wired into ctest under the perf-smoke label. The run
 * also re-checks the serving determinism contract: every client must
 * read byte-identical response frames for identical request frames.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "data/dataset.hh"
#include "mtree/model_tree.hh"
#include "mtree/serialize.hh"
#include "serve/server.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

namespace
{

using namespace wct;
using namespace wct::serve;

Dataset
syntheticData(std::size_t n, std::uint64_t seed)
{
    Dataset d({"x0", "x1", "x2", "y"});
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
        const double x0 = rng.uniform(0.0, 1.0);
        const double x1 = rng.uniform(0.0, 1.0);
        const double x2 = rng.uniform(0.0, 1.0);
        const double y = x0 <= 0.5 ? 1.0 + 2.0 * x1 + x2
                                   : 8.0 - x1 + 0.5 * x2 +
                                         rng.normal(0.0, 0.05);
        d.addRow({x0, x1, x2, y});
    }
    return d;
}

/** Pre-encoded predict frames, `rows` samples each. */
std::vector<std::string>
buildFrames(const Dataset &probe, std::size_t rows,
            std::size_t count)
{
    std::vector<std::string> frames;
    frames.reserve(count);
    std::size_t cursor = 0;
    for (std::size_t i = 0; i < count; ++i) {
        Request request;
        request.op = Opcode::Predict;
        request.id = i + 1;
        request.schema = probe.columnNames();
        request.rows.reserve(rows * probe.numColumns());
        for (std::size_t r = 0; r < rows; ++r) {
            const auto row = probe.row(cursor);
            cursor = (cursor + 1) % probe.numRows();
            request.rows.insert(request.rows.end(), row.begin(),
                                row.end());
        }
        frames.push_back(encodeRequest(request));
    }
    return frames;
}

struct ScenarioResult
{
    double ms = 0.0; ///< best wall time over the reps
    bool deterministic = true;
};

/**
 * Fan `frames` over `clients` threads against a fresh Server (each
 * thread replays its share of the frames in order) and time the whole
 * burst. Identical request frames must produce identical response
 * frames on every rep — serving determinism re-checked under load.
 */
ScenarioResult
timeScenario(const std::string &model_path,
             const std::vector<std::string> &frames,
             std::size_t clients, int reps)
{
    ScenarioResult result;
    result.ms = std::numeric_limits<double>::infinity();
    std::vector<std::string> reference(frames.size());

    for (int rep = 0; rep < reps; ++rep) {
        ServerConfig config;
        config.queueDepth = 4096;
        config.maxBatch = 64;
        config.batchers = 1;
        Server server(config);
        std::string err;
        if (!server.loadModel(model_path, "bench", nullptr, &err)) {
            std::cerr << "perf_serve: " << err << "\n";
            std::exit(1);
        }

        std::vector<std::string> responses(frames.size());
        std::vector<std::thread> threads;
        const auto start = std::chrono::steady_clock::now();
        for (std::size_t c = 0; c < clients; ++c) {
            threads.emplace_back([&, c] {
                for (std::size_t i = c; i < frames.size();
                     i += clients)
                    responses[i] = server.handleFrame(frames[i]);
            });
        }
        for (std::thread &t : threads)
            t.join();
        const auto stop = std::chrono::steady_clock::now();
        server.beginShutdown();
        server.drain();

        result.ms = std::min(
            result.ms,
            std::chrono::duration<double, std::milli>(stop - start)
                .count());
        if (rep == 0)
            reference = responses;
        else if (responses != reference)
            result.deterministic = false;
    }
    return result;
}

/** Value of the first `"key": <number>` in a (flat) JSON text. */
double
jsonNumber(const std::string &text, const std::string &key)
{
    const std::string quoted = "\"" + key + "\"";
    const std::size_t pos = text.find(quoted);
    if (pos == std::string::npos)
        return std::nan("");
    const std::size_t colon = text.find(':', pos + quoted.size());
    if (colon == std::string::npos)
        return std::nan("");
    return std::strtod(text.c_str() + colon + 1, nullptr);
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t rows = 256;    // samples per batched request
    std::size_t requests = 96; // batched requests per measurement
    std::size_t clients = 4;
    std::size_t threads = 4;
    int reps = 3;
    std::string out_path = "BENCH_serve.json";
    std::string baseline_path;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg.rfind("--rows=", 0) == 0)
            rows = std::max<std::size_t>(
                1, std::strtoul(arg.data() + 7, nullptr, 10));
        else if (arg.rfind("--requests=", 0) == 0)
            requests = std::max<std::size_t>(
                1, std::strtoul(arg.data() + 11, nullptr, 10));
        else if (arg.rfind("--clients=", 0) == 0)
            clients = std::max<std::size_t>(
                1, std::strtoul(arg.data() + 10, nullptr, 10));
        else if (arg.rfind("--threads=", 0) == 0)
            threads = std::strtoul(arg.data() + 10, nullptr, 10);
        else if (arg.rfind("--reps=", 0) == 0)
            reps = std::max(
                1, static_cast<int>(
                       std::strtol(arg.data() + 7, nullptr, 10)));
        else if (arg.rfind("--out=", 0) == 0)
            out_path = std::string(arg.substr(6));
        else if (arg.rfind("--baseline=", 0) == 0)
            baseline_path = std::string(arg.substr(11));
        else {
            std::cerr << "perf_serve: unknown option " << arg
                      << "\n";
            return 1;
        }
    }

    ThreadPool::resetGlobalForTest(threads <= 1 ? 0 : threads);

    // One model on disk (served the way production would) and one
    // probe set reused by both request shapes.
    const Dataset training = syntheticData(4000, 1);
    const ModelTree tree = ModelTree::train(training, "y");
    const std::string model_path = out_path + ".mtree";
    writeModelTreeFile(tree, model_path);
    const Dataset probe = syntheticData(1024, 2);

    const std::size_t total_samples = rows * requests;
    const std::vector<std::string> batched_frames =
        buildFrames(probe, rows, requests);
    const std::vector<std::string> singleton_frames =
        buildFrames(probe, 1, total_samples);

    const ScenarioResult batched =
        timeScenario(model_path, batched_frames, clients, reps);
    const ScenarioResult singleton =
        timeScenario(model_path, singleton_frames, clients, reps);
    std::remove(model_path.c_str());

    const double batched_sps =
        1000.0 * static_cast<double>(total_samples) / batched.ms;
    const double singleton_sps =
        1000.0 * static_cast<double>(total_samples) / singleton.ms;
    const double batch_speedup = batched_sps / singleton_sps;
    const bool deterministic =
        batched.deterministic && singleton.deterministic;

    std::ostringstream json;
    json << "{\n"
         << "  \"benchmark\": \"perf_serve\",\n"
         << "  \"rows_per_request\": " << rows << ",\n"
         << "  \"requests\": " << requests << ",\n"
         << "  \"total_samples\": " << total_samples << ",\n"
         << "  \"clients\": " << clients << ",\n"
         << "  \"threads\": " << threads << ",\n"
         << "  \"host_cpus\": "
         << std::thread::hardware_concurrency() << ",\n"
         << "  \"reps\": " << reps << ",\n"
         << "  \"model_leaves\": " << tree.numLeaves() << ",\n"
         << "  \"batched_ms\": " << batched.ms << ",\n"
         << "  \"singleton_ms\": " << singleton.ms << ",\n"
         << "  \"batched_samples_per_s\": " << batched_sps << ",\n"
         << "  \"singleton_samples_per_s\": " << singleton_sps
         << ",\n"
         << "  \"batch_speedup\": " << batch_speedup << ",\n"
         << "  \"deterministic\": "
         << (deterministic ? "true" : "false") << "\n"
         << "}\n";
    std::ofstream out(out_path);
    out << json.str();
    out.close();
    std::cout << json.str();

    if (!deterministic) {
        std::cerr << "perf_serve: FAIL: identical request frames "
                     "produced different response frames across "
                     "reps\n";
        return 1;
    }
    if (!baseline_path.empty()) {
        std::ifstream in(baseline_path);
        if (!in) {
            std::cerr << "perf_serve: cannot read baseline "
                      << baseline_path << "\n";
            return 1;
        }
        std::stringstream buf;
        buf << in.rdbuf();
        const double base = jsonNumber(buf.str(), "batch_speedup");
        if (std::isnan(base) || base <= 0.0) {
            std::cerr << "perf_serve: baseline has no usable "
                         "batch_speedup\n";
            return 1;
        }
        // Gate on the batched/singleton *ratio*, not absolute
        // throughput: both sides were measured on this host, so the
        // check transfers across machines and CI load.
        const double floor = 0.75 * base;
        if (batch_speedup < floor) {
            std::cerr << "perf_serve: FAIL: batched serving speedup "
                      << batch_speedup
                      << "x fell below 75% of the baseline " << base
                      << "x (floor " << floor << "x)\n";
            return 1;
        }
        std::cout << "perf_serve: batch-speedup gate OK ("
                  << batch_speedup << "x >= " << floor
                  << "x floor)\n";
    }
    return 0;
}
