/**
 * @file
 * Perf smoke of the model-serving subsystem (docs/serving.md).
 *
 * Three measurements over the same trained model:
 *
 *   batched    rows-per-request samples in each predict frame
 *   singleton  one sample per predict frame
 *   raw eval   the inference inner loop alone, single-threaded:
 *              interpreted per-row descent (classify + predict, the
 *              PR 4 hot path) vs the flattened CompiledTree's
 *              branch-free block evaluation (docs/performance.md,
 *              "Compiled evaluation")
 *
 * and writes BENCH_serve.json with the throughputs and two ratios:
 * batch_speedup (what batching buys over per-sample framing) and
 * compiled_speedup (what compiling the tree buys over interpreting
 * it). The batched scenario runs twice — once with the compiled
 * engine, once with EngineConfig::compiledEval=false — and the two
 * servers must produce byte-identical response frames, re-checking
 * the compiled/interpreted equivalence contract end to end.
 *
 *   perf_serve [--rows=R] [--requests=N] [--clients=C] [--threads=T]
 *              [--reps=K] [--out=FILE] [--baseline=FILE]
 *
 * With --baseline, the run fails (exit 1) when batch_speedup drops
 * below 75% of the checked-in baseline's, or when compiled_speedup
 * drops below max(2.0, 75% of baseline) — compiled evaluation must
 * beat interpreted by at least 2x on the smoke size, on any machine.
 * Both ratios are measured numerator-and-denominator on the same
 * host, so the gates transfer across machines and CI load; they are
 * wired into ctest under the perf-smoke label.
 */

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench/run_meta.hh"
#include "data/dataset.hh"
#include "mtree/compiled_tree.hh"
#include "mtree/model_tree.hh"
#include "mtree/serialize.hh"
#include "serve/server.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

namespace
{

using namespace wct;
using namespace wct::serve;

constexpr std::size_t kPredictors = 10;

/**
 * Synthetic serving workload with real tree depth: a nested
 * piecewise structure over ten predictors (1024 regions with
 * distinct offsets, not expressible by one linear model), so the
 * trained tree descends many levels per row — the cost the compiled
 * form exists to cut — instead of the single split a trivially
 * separable target would produce. The shape matches the paper's
 * phase-classification use: a deep tree whose per-row cost is the
 * descent, not the leaf model.
 */
Dataset
syntheticData(std::size_t n, std::uint64_t seed)
{
    std::vector<std::string> names;
    for (std::size_t c = 0; c < kPredictors; ++c)
        names.push_back("x" + std::to_string(c));
    names.push_back("y");
    Dataset d(names);
    Rng rng(seed);
    std::vector<double> row(kPredictors + 1);
    for (std::size_t i = 0; i < n; ++i) {
        double y = 0.0;
        for (std::size_t b = 0; b < kPredictors; ++b) {
            row[b] = rng.uniform(0.0, 1.0);
            // Equal steps keep the residual deviation high until
            // every predictor has been split on, so the SD-based
            // stopping rule materializes the full depth.
            if (row[b] <= 0.5)
                y += 3.0;
        }
        row[kPredictors] = y + rng.normal(0.0, 0.01);
        d.addRow(row);
    }
    return d;
}

/**
 * Deep-tree training config for the serving measurement: fine leaves
 * (so the 1024 synthetic regions all materialize) with pruning and
 * smoothing off — the tree is a deep phase classifier, which is the
 * serving shape the compiled/interpreted ratio is gated on.
 */
ModelTreeConfig
servingModelConfig()
{
    ModelTreeConfig config;
    config.minLeafInstances = 8;
    config.prune = false;
    config.smooth = false;
    return config;
}

/** Pre-encoded predict frames, `rows` samples each. */
std::vector<std::string>
buildFrames(const Dataset &probe, std::size_t rows,
            std::size_t count)
{
    std::vector<std::string> frames;
    frames.reserve(count);
    std::size_t cursor = 0;
    for (std::size_t i = 0; i < count; ++i) {
        Request request;
        request.op = Opcode::Predict;
        request.id = i + 1;
        request.schema = probe.columnNames();
        request.rows.reserve(rows * probe.numColumns());
        for (std::size_t r = 0; r < rows; ++r) {
            const auto row = probe.row(cursor);
            cursor = (cursor + 1) % probe.numRows();
            request.rows.insert(request.rows.end(), row.begin(),
                                row.end());
        }
        frames.push_back(encodeRequest(request));
    }
    return frames;
}

struct ScenarioResult
{
    double ms = 0.0; ///< best wall time over the reps
    bool deterministic = true;
    std::vector<std::string> responses; ///< rep-0 response frames
};

/**
 * Fan `frames` over `clients` threads against a fresh Server (each
 * thread replays its share of the frames in order) and time the whole
 * burst. Identical request frames must produce identical response
 * frames on every rep — serving determinism re-checked under load.
 */
ScenarioResult
timeScenario(const std::string &model_path,
             const std::vector<std::string> &frames,
             std::size_t clients, int reps, bool compiled_eval)
{
    ScenarioResult result;
    result.ms = std::numeric_limits<double>::infinity();

    for (int rep = 0; rep < reps; ++rep) {
        ServerConfig config;
        config.queueDepth = 4096;
        config.maxBatch = 64;
        config.batchers = 1;
        config.compiledEval = compiled_eval;
        Server server(config);
        std::string err;
        if (!server.loadModel(model_path, "bench", nullptr, &err)) {
            std::cerr << "perf_serve: " << err << "\n";
            std::exit(1);
        }

        std::vector<std::string> responses(frames.size());
        std::vector<std::thread> threads;
        const auto start = std::chrono::steady_clock::now();
        for (std::size_t c = 0; c < clients; ++c) {
            threads.emplace_back([&, c] {
                for (std::size_t i = c; i < frames.size();
                     i += clients)
                    responses[i] = server.handleFrame(frames[i]);
            });
        }
        for (std::thread &t : threads)
            t.join();
        const auto stop = std::chrono::steady_clock::now();
        server.beginShutdown();
        server.drain();

        result.ms = std::min(
            result.ms,
            std::chrono::duration<double, std::milli>(stop - start)
                .count());
        if (rep == 0)
            result.responses = std::move(responses);
        else if (responses != result.responses)
            result.deterministic = false;
    }
    return result;
}

struct RawEvalResult
{
    double interpreted_ms = 0.0;
    double compiled_ms = 0.0;
    bool identical = true; ///< bitwise CPI + leaf equality
};

/**
 * The inference inner loop alone, single-threaded over one flat
 * row-major buffer: the interpreted serving loop (one classify and
 * one predict descent per row, as the PR 4 engine ran it) against
 * CompiledTree::evaluateBlock. Outputs are compared bit for bit.
 */
RawEvalResult
timeRawEval(const ModelTree &tree, const Dataset &probe,
            std::size_t total_rows, int reps)
{
    const std::size_t cols = probe.numColumns();
    std::vector<double> rows;
    rows.reserve(total_rows * cols);
    for (std::size_t r = 0; r < total_rows; ++r) {
        const auto row = probe.row(r % probe.numRows());
        rows.insert(rows.end(), row.begin(), row.end());
    }

    RawEvalResult result;
    result.interpreted_ms = std::numeric_limits<double>::infinity();
    result.compiled_ms = std::numeric_limits<double>::infinity();

    std::vector<double> cpi_interp(total_rows);
    std::vector<std::uint64_t> leaf_interp(total_rows);
    std::vector<double> cpi_compiled(total_rows);
    std::vector<std::uint32_t> leaf_compiled(total_rows);
    const CompiledTree &compiled = tree.compiled();

    for (int rep = 0; rep < reps; ++rep) {
        auto start = std::chrono::steady_clock::now();
        for (std::size_t r = 0; r < total_rows; ++r) {
            const std::span<const double> row(
                rows.data() + r * cols, cols);
            leaf_interp[r] = tree.classify(row) + 1;
            cpi_interp[r] = tree.predict(row);
        }
        auto stop = std::chrono::steady_clock::now();
        result.interpreted_ms = std::min(
            result.interpreted_ms,
            std::chrono::duration<double, std::milli>(stop - start)
                .count());

        start = std::chrono::steady_clock::now();
        for (std::size_t base = 0; base < total_rows;
             base += CompiledTree::kBlockRows) {
            const std::size_t m = std::min(CompiledTree::kBlockRows,
                                           total_rows - base);
            compiled.evaluateBlock(rows.data() + base * cols, cols,
                                   m, cpi_compiled.data() + base,
                                   leaf_compiled.data() + base);
        }
        stop = std::chrono::steady_clock::now();
        result.compiled_ms = std::min(
            result.compiled_ms,
            std::chrono::duration<double, std::milli>(stop - start)
                .count());
    }

    for (std::size_t r = 0; r < total_rows; ++r) {
        if (std::bit_cast<std::uint64_t>(cpi_interp[r]) !=
                std::bit_cast<std::uint64_t>(cpi_compiled[r]) ||
            leaf_interp[r] != leaf_compiled[r] + 1)
            result.identical = false;
    }
    return result;
}

/** Value of the first `"key": <number>` in a (flat) JSON text. */
double
jsonNumber(const std::string &text, const std::string &key)
{
    const std::string quoted = "\"" + key + "\"";
    const std::size_t pos = text.find(quoted);
    if (pos == std::string::npos)
        return std::nan("");
    const std::size_t colon = text.find(':', pos + quoted.size());
    if (colon == std::string::npos)
        return std::nan("");
    return std::strtod(text.c_str() + colon + 1, nullptr);
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t rows = 256;    // samples per batched request
    std::size_t requests = 96; // batched requests per measurement
    std::size_t clients = 4;
    std::size_t threads = 4;
    int reps = 3;
    std::string out_path = "BENCH_serve.json";
    std::string baseline_path;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg.rfind("--rows=", 0) == 0)
            rows = std::max<std::size_t>(
                1, std::strtoul(arg.data() + 7, nullptr, 10));
        else if (arg.rfind("--requests=", 0) == 0)
            requests = std::max<std::size_t>(
                1, std::strtoul(arg.data() + 11, nullptr, 10));
        else if (arg.rfind("--clients=", 0) == 0)
            clients = std::max<std::size_t>(
                1, std::strtoul(arg.data() + 10, nullptr, 10));
        else if (arg.rfind("--threads=", 0) == 0)
            threads = std::strtoul(arg.data() + 10, nullptr, 10);
        else if (arg.rfind("--reps=", 0) == 0)
            reps = std::max(
                1, static_cast<int>(
                       std::strtol(arg.data() + 7, nullptr, 10)));
        else if (arg.rfind("--out=", 0) == 0)
            out_path = std::string(arg.substr(6));
        else if (arg.rfind("--baseline=", 0) == 0)
            baseline_path = std::string(arg.substr(11));
        else {
            std::cerr << "perf_serve: unknown option " << arg
                      << "\n";
            return 1;
        }
    }

    ThreadPool::resetGlobalForTest(threads <= 1 ? 0 : threads);

    // One model on disk (served the way production would) and one
    // probe set reused by every scenario.
    const Dataset training = syntheticData(40000, 1);
    const ModelTree tree =
        ModelTree::train(training, "y", servingModelConfig());
    const std::string model_path = out_path + ".mtree";
    writeModelTreeFile(tree, model_path);
    const Dataset probe = syntheticData(1024, 2);

    const std::size_t total_samples = rows * requests;
    const std::vector<std::string> batched_frames =
        buildFrames(probe, rows, requests);
    const std::vector<std::string> singleton_frames =
        buildFrames(probe, 1, total_samples);

    const ScenarioResult batched = timeScenario(
        model_path, batched_frames, clients, reps, true);
    const ScenarioResult batched_interp = timeScenario(
        model_path, batched_frames, clients, reps, false);
    const ScenarioResult singleton = timeScenario(
        model_path, singleton_frames, clients, reps, true);
    const RawEvalResult raw =
        timeRawEval(tree, probe, total_samples, reps);
    std::remove(model_path.c_str());

    const double batched_sps =
        1000.0 * static_cast<double>(total_samples) / batched.ms;
    const double singleton_sps =
        1000.0 * static_cast<double>(total_samples) / singleton.ms;
    const double batch_speedup = batched_sps / singleton_sps;
    const double compiled_speedup =
        raw.interpreted_ms / raw.compiled_ms;
    const double e2e_compiled_speedup =
        batched_interp.ms / batched.ms;
    // The two engine modes must agree byte for byte, frame for frame.
    const bool modes_identical =
        batched.responses == batched_interp.responses;
    const bool deterministic = batched.deterministic &&
        batched_interp.deterministic && singleton.deterministic &&
        raw.identical && modes_identical;

    std::ostringstream json;
    json << "{\n"
         << "  \"benchmark\": \"perf_serve\",\n"
         << bench::runMetadataJson("  ") << ",\n"
         << "  \"rows_per_request\": " << rows << ",\n"
         << "  \"requests\": " << requests << ",\n"
         << "  \"total_samples\": " << total_samples << ",\n"
         << "  \"clients\": " << clients << ",\n"
         << "  \"threads\": " << threads << ",\n"
         << "  \"reps\": " << reps << ",\n"
         << "  \"model_leaves\": " << tree.numLeaves() << ",\n"
         << "  \"compiled_nodes\": " << tree.compiled().numNodes()
         << ",\n"
         << "  \"compiled_depth\": " << tree.compiled().depth()
         << ",\n"
         << "  \"batched_ms\": " << batched.ms << ",\n"
         << "  \"batched_interpreted_ms\": " << batched_interp.ms
         << ",\n"
         << "  \"singleton_ms\": " << singleton.ms << ",\n"
         << "  \"raw_interpreted_ms\": " << raw.interpreted_ms
         << ",\n"
         << "  \"raw_compiled_ms\": " << raw.compiled_ms << ",\n"
         << "  \"batched_samples_per_s\": " << batched_sps << ",\n"
         << "  \"singleton_samples_per_s\": " << singleton_sps
         << ",\n"
         << "  \"batch_speedup\": " << batch_speedup << ",\n"
         << "  \"compiled_speedup\": " << compiled_speedup << ",\n"
         << "  \"e2e_compiled_speedup\": " << e2e_compiled_speedup
         << ",\n"
         << "  \"deterministic\": "
         << (deterministic ? "true" : "false") << "\n"
         << "}\n";
    std::ofstream out(out_path);
    out << json.str();
    out.close();
    std::cout << json.str();

    if (!deterministic) {
        std::cerr << "perf_serve: FAIL: responses were not "
                     "deterministic, or compiled and interpreted "
                     "evaluation disagreed\n";
        return 1;
    }
    if (!baseline_path.empty()) {
        std::ifstream in(baseline_path);
        if (!in) {
            std::cerr << "perf_serve: cannot read baseline "
                      << baseline_path << "\n";
            return 1;
        }
        std::stringstream buf;
        buf << in.rdbuf();
        const double base = jsonNumber(buf.str(), "batch_speedup");
        if (std::isnan(base) || base <= 0.0) {
            std::cerr << "perf_serve: baseline has no usable "
                         "batch_speedup\n";
            return 1;
        }
        // Gate on ratios, not absolute throughput: numerator and
        // denominator of each ratio were measured on this host, so
        // the checks transfer across machines and CI load.
        const double floor = 0.75 * base;
        if (batch_speedup < floor) {
            std::cerr << "perf_serve: FAIL: batched serving speedup "
                      << batch_speedup
                      << "x fell below 75% of the baseline " << base
                      << "x (floor " << floor << "x)\n";
            return 1;
        }
        std::cout << "perf_serve: batch-speedup gate OK ("
                  << batch_speedup << "x >= " << floor
                  << "x floor)\n";

        const double base_compiled =
            jsonNumber(buf.str(), "compiled_speedup");
        if (std::isnan(base_compiled) || base_compiled <= 0.0) {
            std::cerr << "perf_serve: baseline has no usable "
                         "compiled_speedup\n";
            return 1;
        }
        // Compiled evaluation must clear 2x over interpreted on the
        // smoke size regardless of host, and additionally stay
        // within 75% of the checked-in (derated) baseline ratio.
        const double compiled_floor =
            std::max(2.0, 0.75 * base_compiled);
        if (compiled_speedup < compiled_floor) {
            std::cerr << "perf_serve: FAIL: compiled/interpreted "
                         "speedup "
                      << compiled_speedup << "x fell below the "
                      << compiled_floor << "x floor (baseline "
                      << base_compiled << "x)\n";
            return 1;
        }
        std::cout << "perf_serve: compiled-speedup gate OK ("
                  << compiled_speedup << "x >= " << compiled_floor
                  << "x floor)\n";
    }
    return 0;
}
