/**
 * @file
 * Table III: pairwise profile differences (L1 distance, Equation 4)
 * between a subset of SPEC CPU2006 benchmarks, plus each benchmark's
 * distance to the suite profile, and the similar/dissimilar pairs the
 * paper highlights.
 */

#include <cstdio>

#include "bench/harness.hh"
#include "core/similarity.hh"

int
main()
{
    using namespace wct;
    const SuiteData &data = bench::collectedSuite("cpu2006");
    const SuiteModel &model = bench::suiteModel("cpu2006");
    const ProfileTable table(data, model.tree);

    // The subset Table III prints (paper's selection).
    const std::vector<std::string> subset = {
        "429.mcf",      "435.gromacs", "436.cactusADM",
        "444.namd",     "447.dealII",  "454.calculix",
        "456.hmmer",    "459.GemsFDTD", "464.h264ref",
        "470.lbm",      "473.astar",
    };
    const SimilarityMatrix sim(table, subset);

    bench::banner("Table III: pairwise L1 profile distances between "
                  "SPEC CPU2006 benchmarks (percent; 0 = identical)");
    std::printf("%s", sim.render().c_str());

    bench::banner("Highlighted pairs (Section IV-B analogues)");
    auto d = [&](const char *a, const char *b) {
        return ProfileTable::distance(table.row(a), table.row(b));
    };
    // The paper's similar pairs (all members of the LM1 cluster).
    std::printf("similar pairs (paper: 1.6%% - 8.1%%):\n");
    std::printf("  456.hmmer    vs 444.namd      : %5.1f%%\n",
                d("456.hmmer", "444.namd"));
    std::printf("  435.gromacs  vs 444.namd      : %5.1f%%\n",
                d("435.gromacs", "444.namd"));
    std::printf("  435.gromacs  vs 456.hmmer     : %5.1f%%\n",
                d("435.gromacs", "456.hmmer"));
    std::printf("  454.calculix vs 447.dealII    : %5.1f%%\n",
                d("454.calculix", "447.dealII"));
    std::printf("dissimilar pairs (paper: 93.6%% - 97.7%%):\n");
    std::printf("  429.mcf      vs 444.namd      : %5.1f%%\n",
                d("429.mcf", "444.namd"));
    std::printf("  429.mcf      vs 459.GemsFDTD  : %5.1f%%\n",
                d("429.mcf", "459.GemsFDTD"));
    std::printf("  444.namd     vs 459.GemsFDTD  : %5.1f%%\n",
                d("444.namd", "459.GemsFDTD"));

    const auto most_similar = sim.mostSimilarPair();
    const auto most_dissimilar = sim.mostDissimilarPair();
    std::printf("\nmost similar in subset:    %s vs %s (%.1f%%)\n",
                sim.names()[most_similar.first].c_str(),
                sim.names()[most_similar.second].c_str(),
                sim.at(most_similar.first, most_similar.second));
    std::printf("most dissimilar in subset: %s vs %s (%.1f%%)\n",
                sim.names()[most_dissimilar.first].c_str(),
                sim.names()[most_dissimilar.second].c_str(),
                sim.at(most_dissimilar.first, most_dissimilar.second));
    return 0;
}
