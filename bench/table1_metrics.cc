/**
 * @file
 * Table I: the CPU performance metrics used in the study — every PMU
 * event, its short modeling name, counter assignment, and meaning.
 */

#include <cstdio>

#include "bench/harness.hh"
#include "pmu/events.hh"
#include "util/text_table.hh"

int
main()
{
    using namespace wct;
    bench::banner("Table I: CPU performance metrics used in this "
                  "study");

    TextTable table({"Metric", "PMU event", "Counter", "Description"});
    for (const EventInfo &info : eventTable()) {
        table.addRow({info.shortName, info.pmuName,
                      info.dedicated ? "dedicated" : "multiplexed",
                      info.description});
    }
    std::printf("%s", table.render().c_str());

    std::printf("\nModeling columns (per-instruction densities): ");
    const auto names = metricColumnNames();
    for (std::size_t i = 0; i < names.size(); ++i)
        std::printf("%s%s", i ? ", " : "", names[i].c_str());
    std::printf("\nCPI is the predicted target; the %zu remaining "
                "events are the predictors.\n",
                names.size() - 1);
    return 0;
}
