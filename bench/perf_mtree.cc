/**
 * @file
 * google-benchmark microbenchmarks of the modeling stack: tree
 * training across sample counts and engines, prediction and
 * classification throughput, OLS fitting, and the hypothesis tests.
 *
 * Besides the usual google-benchmark CLI, `perf_mtree --smoke` runs a
 * fixed-scale comparison of the three tree-building engines (Serial /
 * Presorted / Parallel) under two configs — the growth phase alone
 * (constant leaves, no prune/smooth: the code the presorted path
 * replaced) and the full default pipeline — checks that all engines
 * serialize byte-identically in both, and writes BENCH_mtree.json:
 *
 *   perf_mtree --smoke [--rows=N] [--reps=R] [--out=FILE]
 *                      [--baseline=FILE]
 *
 * With --baseline, the run fails (exit 1) when the measured
 * growth-phase presorted-over-serial speedup drops below 75% of the
 * baseline's — a machine-independent regression gate (both numbers
 * come from the same host), wired into ctest under the perf-smoke
 * label.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

#include "bench/run_meta.hh"
#include "data/dataset.hh"
#include "mtree/baselines.hh"
#include "mtree/model_tree.hh"
#include "stats/tests.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

namespace
{

using namespace wct;

/** Synthetic piecewise dataset shaped like PMU samples (20 cols). */
Dataset
syntheticSamples(std::size_t n, std::uint64_t seed)
{
    std::vector<std::string> names = {"CPI"};
    for (int i = 1; i < 20; ++i)
        names.push_back("m" + std::to_string(i));
    Dataset d(names);
    Rng rng(seed);
    std::vector<double> row(20);
    for (std::size_t r = 0; r < n; ++r) {
        for (int c = 1; c < 20; ++c)
            row[c] = rng.uniform(0.0, 0.1);
        const double base = row[1] > 0.05 ? 1.2 : 0.4;
        row[0] = base + 8.0 * row[2] + 120.0 * row[3] +
            rng.normal(0.0, 0.05);
        d.addRow(row);
    }
    return d;
}

ModelTreeConfig
trainConfig(TreeBuilderKind builder)
{
    ModelTreeConfig config;
    config.builder = builder;
    config.minLeafFraction = 0.02;
    return config;
}

void
trainBenchmark(benchmark::State &state, TreeBuilderKind builder)
{
    const Dataset data =
        syntheticSamples(static_cast<std::size_t>(state.range(0)), 1);
    const ModelTreeConfig config = trainConfig(builder);
    for (auto _ : state) {
        ModelTree tree = ModelTree::train(data, "CPI", config);
        benchmark::DoNotOptimize(tree.numLeaves());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

void
BM_ModelTreeTrain(benchmark::State &state)
{
    trainBenchmark(state, TreeBuilderKind::Auto);
}
BENCHMARK(BM_ModelTreeTrain)->Arg(1000)->Arg(4000)->Arg(16000);

void
BM_ModelTreeTrainSerial(benchmark::State &state)
{
    trainBenchmark(state, TreeBuilderKind::Serial);
}
BENCHMARK(BM_ModelTreeTrainSerial)->Arg(1000)->Arg(4000)->Arg(16000);

void
BM_ModelTreeTrainPresorted(benchmark::State &state)
{
    trainBenchmark(state, TreeBuilderKind::Presorted);
}
BENCHMARK(BM_ModelTreeTrainPresorted)->Arg(1000)->Arg(4000)->Arg(16000);

void
BM_ModelTreeTrainParallel(benchmark::State &state)
{
    trainBenchmark(state, TreeBuilderKind::Parallel);
}
BENCHMARK(BM_ModelTreeTrainParallel)->Arg(1000)->Arg(4000)->Arg(16000);

void
BM_ModelTreePredict(benchmark::State &state)
{
    const Dataset data = syntheticSamples(8000, 2);
    ModelTreeConfig config;
    config.minLeafFraction = 0.02;
    const ModelTree tree = ModelTree::train(data, "CPI", config);
    std::size_t r = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tree.predict(data.row(r)));
        r = (r + 1) % data.numRows();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ModelTreePredict);

void
BM_ModelTreeClassify(benchmark::State &state)
{
    const Dataset data = syntheticSamples(8000, 3);
    ModelTreeConfig config;
    config.minLeafFraction = 0.02;
    const ModelTree tree = ModelTree::train(data, "CPI", config);
    std::size_t r = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tree.classify(data.row(r)));
        r = (r + 1) % data.numRows();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ModelTreeClassify);

void
BM_GlobalOlsTrain(benchmark::State &state)
{
    const Dataset data =
        syntheticSamples(static_cast<std::size_t>(state.range(0)), 4);
    for (auto _ : state) {
        auto model = GlobalLinearRegression::train(data, "CPI");
        benchmark::DoNotOptimize(model.model().intercept);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GlobalOlsTrain)->Arg(4000)->Arg(16000);

void
BM_PooledTTest(benchmark::State &state)
{
    Rng rng(5);
    std::vector<double> xs, ys;
    for (int i = 0; i < state.range(0); ++i) {
        xs.push_back(rng.normal(1.0, 0.5));
        ys.push_back(rng.normal(1.1, 0.5));
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(pooledTTest(xs, ys).pValue);
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PooledTTest)->Arg(10000)->Arg(100000);

void
BM_MannWhitney(benchmark::State &state)
{
    Rng rng(6);
    std::vector<double> xs, ys;
    for (int i = 0; i < state.range(0); ++i) {
        xs.push_back(rng.normal(1.0, 0.5));
        ys.push_back(rng.normal(1.1, 0.5));
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(mannWhitneyUTest(xs, ys).pValue);
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MannWhitney)->Arg(10000)->Arg(100000);

// ---- Smoke mode (the perf-smoke ctest gate). ----

struct SmokeResult
{
    double ms = 0.0;       ///< best wall time over the reps
    std::string serialized; ///< save() output (identity check)
};

/**
 * The growth-phase config: constant leaves with pruning and
 * smoothing off isolates exactly what the presorted engine rebuilt —
 * node moments, split search, and partitioning — from the
 * engine-independent leaf-model linear algebra (greedy subset
 * selection costs the same per node in every engine and would only
 * dilute the ratio the gate watches).
 */
ModelTreeConfig
growthConfig(TreeBuilderKind builder)
{
    ModelTreeConfig config = trainConfig(builder);
    config.constantLeaves = true;
    config.smooth = false;
    config.prune = false;
    return config;
}

SmokeResult
timeEngine(const Dataset &data, const ModelTreeConfig &config,
           int reps)
{
    SmokeResult result;
    result.ms = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < reps; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        const ModelTree tree = ModelTree::train(data, "CPI", config);
        const auto stop = std::chrono::steady_clock::now();
        result.ms = std::min(
            result.ms,
            std::chrono::duration<double, std::milli>(stop - start)
                .count());
        if (result.serialized.empty()) {
            std::ostringstream out;
            tree.save(out);
            result.serialized = out.str();
        }
    }
    return result;
}

struct EngineComparison
{
    double serial_ms = 0.0;
    double presorted_ms = 0.0;
    double parallel_ms = 0.0;
    bool identical = false;
};

template <typename MakeConfig>
EngineComparison
compareEngines(const Dataset &data, MakeConfig make_config, int reps)
{
    const SmokeResult serial =
        timeEngine(data, make_config(TreeBuilderKind::Serial), reps);
    const SmokeResult presorted = timeEngine(
        data, make_config(TreeBuilderKind::Presorted), reps);
    const SmokeResult parallel = timeEngine(
        data, make_config(TreeBuilderKind::Parallel), reps);
    EngineComparison cmp;
    cmp.serial_ms = serial.ms;
    cmp.presorted_ms = presorted.ms;
    cmp.parallel_ms = parallel.ms;
    cmp.identical = serial.serialized == presorted.serialized &&
        serial.serialized == parallel.serialized;
    return cmp;
}

/** Value of the first `"key": <number>` in a (flat) JSON text. */
double
jsonNumber(const std::string &text, const std::string &key)
{
    const std::string quoted = "\"" + key + "\"";
    const std::size_t pos = text.find(quoted);
    if (pos == std::string::npos)
        return std::nan("");
    const std::size_t colon = text.find(':', pos + quoted.size());
    if (colon == std::string::npos)
        return std::nan("");
    return std::strtod(text.c_str() + colon + 1, nullptr);
}

int
runSmoke(int argc, char **argv)
{
    std::size_t rows = 8000;
    int reps = 3;
    std::string out_path = "BENCH_mtree.json";
    std::string baseline_path;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--smoke")
            continue;
        if (arg.rfind("--rows=", 0) == 0)
            rows = static_cast<std::size_t>(
                std::strtoul(arg.data() + 7, nullptr, 10));
        else if (arg.rfind("--reps=", 0) == 0)
            reps = std::max(
                1, static_cast<int>(std::strtol(arg.data() + 7,
                                                nullptr, 10)));
        else if (arg.rfind("--out=", 0) == 0)
            out_path = std::string(arg.substr(6));
        else if (arg.rfind("--baseline=", 0) == 0)
            baseline_path = std::string(arg.substr(11));
        else {
            std::cerr << "perf_mtree: unknown smoke option " << arg
                      << "\n";
            return 1;
        }
    }

    const Dataset data = syntheticSamples(rows, 1);
    const std::size_t threads = ThreadPool::configuredThreads();

    // Two measurements per engine: the growth phase (what the
    // presorted path replaced — the headline gated number) and the
    // full default pipeline (prune + smooth + simplified leaf
    // models), whose engine-independent linear algebra dilutes the
    // end-to-end ratio but is what users actually run.
    const EngineComparison growth =
        compareEngines(data, growthConfig, reps);
    const EngineComparison full =
        compareEngines(data, trainConfig, reps);

    const bool identical = growth.identical && full.identical;
    const double growth_speedup_presorted =
        growth.serial_ms / growth.presorted_ms;
    const double growth_speedup_parallel =
        growth.serial_ms / growth.parallel_ms;
    const double full_speedup_presorted =
        full.serial_ms / full.presorted_ms;
    const double full_speedup_parallel =
        full.serial_ms / full.parallel_ms;

    std::ostringstream json;
    json << "{\n"
         << "  \"benchmark\": \"perf_mtree --smoke\",\n"
         << bench::runMetadataJson("  ") << ",\n"
         << "  \"rows\": " << rows << ",\n"
         << "  \"cols\": " << data.numColumns() << ",\n"
         << "  \"threads\": " << threads << ",\n"
         << "  \"reps\": " << reps << ",\n"
         << "  \"growth_serial_ms\": " << growth.serial_ms << ",\n"
         << "  \"growth_presorted_ms\": " << growth.presorted_ms
         << ",\n"
         << "  \"growth_parallel_ms\": " << growth.parallel_ms
         << ",\n"
         << "  \"growth_speedup_presorted\": "
         << growth_speedup_presorted << ",\n"
         << "  \"growth_speedup_parallel\": "
         << growth_speedup_parallel << ",\n"
         << "  \"full_serial_ms\": " << full.serial_ms << ",\n"
         << "  \"full_presorted_ms\": " << full.presorted_ms << ",\n"
         << "  \"full_parallel_ms\": " << full.parallel_ms << ",\n"
         << "  \"full_speedup_presorted\": "
         << full_speedup_presorted << ",\n"
         << "  \"full_speedup_parallel\": " << full_speedup_parallel
         << ",\n"
         << "  \"trees_identical\": "
         << (identical ? "true" : "false") << "\n"
         << "}\n";
    std::ofstream out(out_path);
    out << json.str();
    out.close();
    std::cout << json.str();

    if (!identical) {
        std::cerr << "perf_mtree: FAIL: the three engines serialized "
                     "different trees\n";
        return 1;
    }
    if (!baseline_path.empty()) {
        std::ifstream in(baseline_path);
        if (!in) {
            std::cerr << "perf_mtree: cannot read baseline "
                      << baseline_path << "\n";
            return 1;
        }
        std::stringstream buf;
        buf << in.rdbuf();
        const double base =
            jsonNumber(buf.str(), "growth_speedup_presorted");
        if (std::isnan(base) || base <= 0.0) {
            std::cerr << "perf_mtree: baseline has no usable "
                         "growth_speedup_presorted\n";
            return 1;
        }
        // Gate on the speedup *ratio*, not absolute times: both the
        // numerator and denominator were measured on this host, so
        // the check transfers across machines and CI load.
        const double floor = 0.75 * base;
        if (growth_speedup_presorted < floor) {
            std::cerr << "perf_mtree: FAIL: growth-phase presorted "
                      << "speedup " << growth_speedup_presorted
                      << "x fell below 75% of the baseline " << base
                      << "x (floor " << floor << "x)\n";
            return 1;
        }
        std::cout << "perf_mtree: speedup gate OK ("
                  << growth_speedup_presorted << "x >= " << floor
                  << "x floor)\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (std::string_view(argv[i]) == "--smoke")
            return runSmoke(argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
