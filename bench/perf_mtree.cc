/**
 * @file
 * google-benchmark microbenchmarks of the modeling stack: tree
 * training across sample counts, prediction/classification
 * throughput, OLS fitting, and the hypothesis tests.
 */

#include <benchmark/benchmark.h>

#include "data/dataset.hh"
#include "mtree/baselines.hh"
#include "mtree/model_tree.hh"
#include "stats/tests.hh"
#include "util/rng.hh"

namespace
{

using namespace wct;

/** Synthetic piecewise dataset shaped like PMU samples (20 cols). */
Dataset
syntheticSamples(std::size_t n, std::uint64_t seed)
{
    std::vector<std::string> names = {"CPI"};
    for (int i = 1; i < 20; ++i)
        names.push_back("m" + std::to_string(i));
    Dataset d(names);
    Rng rng(seed);
    std::vector<double> row(20);
    for (std::size_t r = 0; r < n; ++r) {
        for (int c = 1; c < 20; ++c)
            row[c] = rng.uniform(0.0, 0.1);
        const double base = row[1] > 0.05 ? 1.2 : 0.4;
        row[0] = base + 8.0 * row[2] + 120.0 * row[3] +
            rng.normal(0.0, 0.05);
        d.addRow(row);
    }
    return d;
}

void
BM_ModelTreeTrain(benchmark::State &state)
{
    const Dataset data =
        syntheticSamples(static_cast<std::size_t>(state.range(0)), 1);
    ModelTreeConfig config;
    config.minLeafFraction = 0.02;
    for (auto _ : state) {
        ModelTree tree = ModelTree::train(data, "CPI", config);
        benchmark::DoNotOptimize(tree.numLeaves());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ModelTreeTrain)->Arg(1000)->Arg(4000)->Arg(16000);

void
BM_ModelTreePredict(benchmark::State &state)
{
    const Dataset data = syntheticSamples(8000, 2);
    ModelTreeConfig config;
    config.minLeafFraction = 0.02;
    const ModelTree tree = ModelTree::train(data, "CPI", config);
    std::size_t r = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tree.predict(data.row(r)));
        r = (r + 1) % data.numRows();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ModelTreePredict);

void
BM_ModelTreeClassify(benchmark::State &state)
{
    const Dataset data = syntheticSamples(8000, 3);
    ModelTreeConfig config;
    config.minLeafFraction = 0.02;
    const ModelTree tree = ModelTree::train(data, "CPI", config);
    std::size_t r = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tree.classify(data.row(r)));
        r = (r + 1) % data.numRows();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ModelTreeClassify);

void
BM_GlobalOlsTrain(benchmark::State &state)
{
    const Dataset data =
        syntheticSamples(static_cast<std::size_t>(state.range(0)), 4);
    for (auto _ : state) {
        auto model = GlobalLinearRegression::train(data, "CPI");
        benchmark::DoNotOptimize(model.model().intercept);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GlobalOlsTrain)->Arg(4000)->Arg(16000);

void
BM_PooledTTest(benchmark::State &state)
{
    Rng rng(5);
    std::vector<double> xs, ys;
    for (int i = 0; i < state.range(0); ++i) {
        xs.push_back(rng.normal(1.0, 0.5));
        ys.push_back(rng.normal(1.1, 0.5));
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(pooledTTest(xs, ys).pValue);
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PooledTTest)->Arg(10000)->Arg(100000);

void
BM_MannWhitney(benchmark::State &state)
{
    Rng rng(6);
    std::vector<double> xs, ys;
    for (int i = 0; i < state.range(0); ++i) {
        xs.push_back(rng.normal(1.0, 0.5));
        ys.push_back(rng.normal(1.1, 0.5));
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(mannWhitneyUTest(xs, ys).pValue);
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MannWhitney)->Arg(10000)->Arg(100000);

} // namespace

BENCHMARK_MAIN();
