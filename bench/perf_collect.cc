/**
 * @file
 * Perf smoke of the parallel suite-collection pipeline.
 *
 * Collects a reduced-scale CPU2006 suite twice — once on an inline
 * (serial) pool and once with worker threads — checks the two
 * SuiteData serialize byte-identically (the determinism contract of
 * collectSuite), and writes BENCH_collect.json:
 *
 *   perf_collect [--intervals=N] [--shards=S] [--threads=T]
 *                [--reps=R] [--out=FILE] [--baseline=FILE]
 *
 * With --baseline, the run fails (exit 1) when the measured
 * parallel-over-serial speedup drops below 75% of the baseline's — a
 * machine-independent regression gate (both numbers come from the
 * same host), wired into ctest under the perf-smoke label. On a
 * multi-core host the speedup approaches the worker count (the
 * (benchmark, shard) tasks are embarrassingly parallel); on a
 * single-core host it hovers near 1x and the gate only watches for
 * the parallel path regressing against the serial one.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>

#include "bench/run_meta.hh"
#include "core/collect.hh"
#include "core/suite_io.hh"
#include "util/thread_pool.hh"
#include "workload/suites.hh"

namespace
{

using namespace wct;

struct TimedCollection
{
    double ms = 0.0;        ///< best wall time over the reps
    std::string serialized; ///< writeSuiteData bytes (identity check)
};

TimedCollection
timeCollection(const SuiteProfile &suite, const CollectionConfig &config,
               std::size_t workers, int reps)
{
    ThreadPool::resetGlobalForTest(workers);
    TimedCollection result;
    result.ms = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < reps; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        const SuiteData data = collectSuite(suite, config);
        const auto stop = std::chrono::steady_clock::now();
        result.ms = std::min(
            result.ms,
            std::chrono::duration<double, std::milli>(stop - start)
                .count());
        if (result.serialized.empty()) {
            std::ostringstream bytes;
            writeSuiteData(bytes, data);
            result.serialized = bytes.str();
        }
    }
    return result;
}

/** Value of the first `"key": <number>` in a (flat) JSON text. */
double
jsonNumber(const std::string &text, const std::string &key)
{
    const std::string quoted = "\"" + key + "\"";
    const std::size_t pos = text.find(quoted);
    if (pos == std::string::npos)
        return std::nan("");
    const std::size_t colon = text.find(':', pos + quoted.size());
    if (colon == std::string::npos)
        return std::nan("");
    return std::strtod(text.c_str() + colon + 1, nullptr);
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t intervals = 40;
    std::size_t shards = 4;
    std::size_t threads = 4;
    int reps = 2;
    std::string out_path = "BENCH_collect.json";
    std::string baseline_path;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg.rfind("--intervals=", 0) == 0)
            intervals = static_cast<std::size_t>(
                std::strtoul(arg.data() + 12, nullptr, 10));
        else if (arg.rfind("--shards=", 0) == 0)
            shards = std::max<std::size_t>(
                1, std::strtoul(arg.data() + 9, nullptr, 10));
        else if (arg.rfind("--threads=", 0) == 0)
            threads = std::max<std::size_t>(
                1, std::strtoul(arg.data() + 10, nullptr, 10));
        else if (arg.rfind("--reps=", 0) == 0)
            reps = std::max(
                1, static_cast<int>(
                       std::strtol(arg.data() + 7, nullptr, 10)));
        else if (arg.rfind("--out=", 0) == 0)
            out_path = std::string(arg.substr(6));
        else if (arg.rfind("--baseline=", 0) == 0)
            baseline_path = std::string(arg.substr(11));
        else {
            std::cerr << "perf_collect: unknown option " << arg
                      << "\n";
            return 1;
        }
    }

    // Reduced-scale measurement protocol: short warmup and few
    // intervals keep the smoke test in ctest time budgets while
    // exercising every benchmark of the real suite.
    const SuiteProfile &suite = specCpu2006();
    CollectionConfig config;
    config.intervalInstructions = 2048;
    config.baseIntervals = intervals;
    config.warmupInstructions = 100'000;
    config.shards = shards;

    const TimedCollection serial =
        timeCollection(suite, config, 0, reps);
    const TimedCollection parallel =
        timeCollection(suite, config, threads, reps);
    ThreadPool::resetGlobalForTest(
        ThreadPool::configuredThreads() <= 1
            ? 0
            : ThreadPool::configuredThreads());

    const bool identical = serial.serialized == parallel.serialized;
    const double speedup = serial.ms / parallel.ms;

    std::ostringstream json;
    json << "{\n"
         << "  \"benchmark\": \"perf_collect\",\n"
         << bench::runMetadataJson("  ") << ",\n"
         << "  \"suite\": \"" << suite.name << "\",\n"
         << "  \"benchmarks\": " << suite.benchmarks.size() << ",\n"
         << "  \"base_intervals\": " << intervals << ",\n"
         << "  \"shards\": " << shards << ",\n"
         << "  \"threads\": " << threads << ",\n"
         << "  \"host_cpus\": "
         << std::thread::hardware_concurrency() << ",\n"
         << "  \"reps\": " << reps << ",\n"
         << "  \"serial_ms\": " << serial.ms << ",\n"
         << "  \"parallel_ms\": " << parallel.ms << ",\n"
         << "  \"speedup\": " << speedup << ",\n"
         << "  \"byte_identical\": "
         << (identical ? "true" : "false") << "\n"
         << "}\n";
    std::ofstream out(out_path);
    out << json.str();
    out.close();
    std::cout << json.str();

    if (!identical) {
        std::cerr << "perf_collect: FAIL: serial and parallel "
                     "collection serialized different suites\n";
        return 1;
    }
    if (!baseline_path.empty()) {
        std::ifstream in(baseline_path);
        if (!in) {
            std::cerr << "perf_collect: cannot read baseline "
                      << baseline_path << "\n";
            return 1;
        }
        std::stringstream buf;
        buf << in.rdbuf();
        const double base = jsonNumber(buf.str(), "speedup");
        if (std::isnan(base) || base <= 0.0) {
            std::cerr << "perf_collect: baseline has no usable "
                         "speedup\n";
            return 1;
        }
        // Gate on the speedup *ratio*, not absolute times: both the
        // numerator and denominator were measured on this host, so
        // the check transfers across machines and CI load.
        const double floor = 0.75 * base;
        if (speedup < floor) {
            std::cerr << "perf_collect: FAIL: parallel collection "
                      << "speedup " << speedup
                      << "x fell below 75% of the baseline " << base
                      << "x (floor " << floor << "x)\n";
            return 1;
        }
        std::cout << "perf_collect: speedup gate OK (" << speedup
                  << "x >= " << floor << "x floor)\n";
    }
    return 0;
}
