/**
 * @file
 * Table II: sample distribution across the SPEC CPU2006 tree's linear
 * models, per benchmark, with the instruction-weighted Suite row and
 * the equal-weight Average row. Dominant contributions (>= 20%) are
 * starred, standing in for the paper's bold.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/harness.hh"
#include "core/profile_table.hh"

int
main()
{
    using namespace wct;
    const SuiteData &data = bench::collectedSuite("cpu2006");
    const SuiteModel &model = bench::suiteModel("cpu2006");
    const ProfileTable table(data, model.tree);

    bench::banner("Table II: SPEC CPU2006 sample distribution across "
                  "linear models by benchmark (percent)");
    std::printf("%s", table.render().c_str());

    // The observations Section IV-B highlights.
    bench::banner("Observations (Section IV-B analogues)");
    std::size_t dominant_lm1 = 0;
    std::size_t over90_lm1 = 0;
    // Identify the largest suite leaf (the LM1 analogue).
    const auto &suite_row = table.suiteRow().percent;
    const std::size_t lm1 = static_cast<std::size_t>(
        std::max_element(suite_row.begin(), suite_row.end()) -
        suite_row.begin());
    for (const auto &row : table.rows()) {
        dominant_lm1 += row.percent[lm1] > 50.0;
        over90_lm1 += row.percent[lm1] > 90.0;
    }
    std::printf("largest suite leaf: LM%zu holding %.1f%% of all "
                "samples (avg CPI %.2f across the suite)\n",
                lm1 + 1, suite_row[lm1], table.suiteRow().meanCpi);
    std::printf("benchmarks with > 50%% of samples in LM%zu: %zu; "
                "with > 90%%: %zu\n",
                lm1 + 1, dominant_lm1, over90_lm1);

    // Benchmarks the paper singles out for concentrated profiles.
    for (const char *name :
         {"482.sphinx3", "471.omnetpp", "470.lbm", "436.cactusADM",
          "429.mcf"}) {
        const auto &row = table.row(name);
        const std::size_t peak = static_cast<std::size_t>(
            std::max_element(row.percent.begin(), row.percent.end()) -
            row.percent.begin());
        std::printf("%-15s peak leaf LM%-3zu with %5.1f%%  "
                    "(mean CPI %.2f)\n",
                    name, peak + 1, row.percent[peak], row.meanCpi);
    }
    return 0;
}
