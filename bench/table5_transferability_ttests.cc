/**
 * @file
 * Section VI-A: two-sample t-tests assessing model transferability —
 * each suite model against its own held-out test set (expected:
 * accept H0, transferable) and against the other suite (expected:
 * reject H0, not transferable). Mann-Whitney and Levene results are
 * reported alongside, as the paper's named non-parametric options.
 */

#include <cstdio>

#include "bench/harness.hh"
#include "core/transferability.hh"

int
main()
{
    using namespace wct;
    const SuiteModel &cpu = bench::suiteModel("cpu2006");
    const SuiteModel &omp = bench::suiteModel("omp2001");

    bench::banner("Section VI-A: two-sample hypothesis tests of "
                  "model transferability");

    struct Case
    {
        const char *title;
        const SuiteModel *model;
        const Dataset *target;
    };
    const Case cases[] = {
        {"CPU2006 model -> random CPU2006 test set", &cpu, &cpu.test},
        {"CPU2006 model -> SPEC OMP2001 data", &cpu, &omp.test},
        {"OMP2001 model -> random OMP2001 test set", &omp, &omp.test},
        {"OMP2001 model -> SPEC CPU2006 data", &omp, &cpu.test},
    };

    for (const Case &c : cases) {
        auto report = assessTransferability(c.model->tree,
                                            c.model->train, *c.target);
        report.modelName = c.model->suiteName;
        report.targetName = c.title;
        std::printf("---- %s ----\n%s\n", c.title,
                    report.render().c_str());
    }

    std::printf("paper reference: same-suite tests accept H0 "
                "(|t| < 1.960 at 95%%); cross-suite tests reject "
                "(t = 125.4 for CPU2006 vs OMP2001 CPI means, "
                "t = 32.6 for predicted vs actual).\n");
    return 0;
}
