/**
 * @file
 * Suite characterization: the paper's Section IV workflow on the
 * built-in SPEC CPU2006 stand-in suite — collect every benchmark,
 * train the suite model tree, print the per-benchmark linear-model
 * profiles (Table II) and the similarity matrix (Table III).
 *
 * Uses reduced sampling so it finishes in a few seconds; the bench/
 * binaries regenerate the full-scale tables.
 */

#include <cstdio>

#include "core/profile_table.hh"
#include "core/similarity.hh"
#include "core/suite_model.hh"
#include "workload/suites.hh"

int
main()
{
    using namespace wct;

    CollectionConfig collection;
    collection.intervalInstructions = 4096;
    collection.baseIntervals = 120;
    collection.warmupInstructions = 800'000;

    std::printf("collecting SPEC CPU2006 stand-in suite (29 "
                "benchmarks)...\n");
    const SuiteData data = collectSuite(specCpu2006(), collection);
    std::printf("%zu samples total\n\n", data.totalSamples());

    SuiteModelConfig model_config;
    model_config.trainFraction = 0.25;
    model_config.tree.minLeafInstances = 20;
    model_config.tree.minLeafFraction = 0.03;
    const SuiteModel model = buildSuiteModel(data, model_config);

    std::printf("suite model tree (%zu leaves, trained on %zu "
                "samples):\n\n%s\n",
                model.tree.numLeaves(), model.train.numRows(),
                model.tree.describe().c_str());

    const ProfileTable profiles(data, model.tree);
    std::printf("per-benchmark linear-model distribution "
                "(percent):\n\n%s\n",
                profiles.render().c_str());

    const SimilarityMatrix similarity(
        profiles, {"429.mcf", "456.hmmer", "444.namd", "470.lbm",
                   "482.sphinx3", "459.GemsFDTD"});
    std::printf("similarity (L1 profile distance, percent):\n\n%s\n",
                similarity.render().c_str());

    const auto close = similarity.mostSimilarPair();
    const auto far = similarity.mostDissimilarPair();
    std::printf("most similar:    %s vs %s (%.1f%%)\n",
                similarity.names()[close.first].c_str(),
                similarity.names()[close.second].c_str(),
                similarity.at(close.first, close.second));
    std::printf("most dissimilar: %s vs %s (%.1f%%)\n",
                similarity.names()[far.first].c_str(),
                similarity.names()[far.second].c_str(),
                similarity.at(far.first, far.second));
    return 0;
}
