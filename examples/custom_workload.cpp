/**
 * @file
 * Characterizing a new workload against an existing suite model:
 * define a custom benchmark profile, collect its PMU samples, then
 * (a) classify it into the suite tree's behaviour classes, (b) find
 * its nearest neighbours in the suite, and (c) check whether the
 * suite model transfers to it — the workflow a performance engineer
 * would use to decide if an existing model covers a new application.
 */

#include <algorithm>
#include <cstdio>

#include "core/profile_table.hh"
#include "core/suite_model.hh"
#include "core/transferability.hh"
#include "workload/suites.hh"

int
main()
{
    using namespace wct;

    // A made-up "in-memory database" workload: hash probes over a
    // large heap plus a write-heavy logging phase.
    BenchmarkProfile custom;
    custom.name = "900.memdb";
    custom.phaseRunLength = 25000;

    PhaseProfile probe;
    probe.name = "probe";
    probe.weight = 0.7;
    probe.loadFrac = 0.34;
    probe.storeFrac = 0.06;
    probe.branchFrac = 0.16;
    probe.dataFootprint = 192ull << 20;
    probe.hotBytes = 48 << 10;
    probe.hotFrac = 0.97;
    probe.pointerChaseFrac = 0.35;
    probe.branchEntropy = 0.15;

    PhaseProfile log;
    log.name = "log";
    log.weight = 0.3;
    log.loadFrac = 0.20;
    log.storeFrac = 0.22;
    log.streamFrac = 0.8;
    log.dataFootprint = 64ull << 20;
    custom.phases = {probe, log};

    // Collect the CPU2006 stand-in suite and the custom workload
    // under the identical measurement protocol.
    CollectionConfig collection;
    collection.intervalInstructions = 4096;
    collection.baseIntervals = 150;
    collection.warmupInstructions = 800'000;
    std::printf("collecting the reference suite...\n");
    SuiteData data = collectSuite(specCpu2006(), collection);

    std::printf("collecting %s...\n", custom.name.c_str());
    BenchmarkData custom_data = collectBenchmark(custom, collection);

    SuiteModelConfig model_config;
    model_config.trainFraction = 0.25;
    model_config.tree.minLeafInstances = 20;
    model_config.tree.minLeafFraction = 0.03;
    const SuiteModel model = buildSuiteModel(data, model_config);

    // (a) Classify the new workload through the suite tree by adding
    // it to a profile table.
    SuiteData combined = data;
    combined.benchmarks.push_back(custom_data);
    const ProfileTable profiles(combined, model.tree);
    const auto &row = profiles.row(custom.name);
    std::printf("\n%s distribution over the suite's behaviour "
                "classes:\n",
                custom.name.c_str());
    for (std::size_t i = 0; i < row.percent.size(); ++i)
        if (row.percent[i] >= 5.0)
            std::printf("  LM%-3zu %5.1f%%\n", i + 1, row.percent[i]);
    std::printf("  mean CPI %.2f (suite mean %.2f)\n", row.meanCpi,
                profiles.suiteRow().meanCpi);

    // (b) Nearest suite benchmarks by profile distance.
    struct Neighbour
    {
        std::string name;
        double distance;
    };
    std::vector<Neighbour> neighbours;
    for (const auto &bench : profiles.rows()) {
        if (bench.name == custom.name)
            continue;
        neighbours.push_back(
            {bench.name, ProfileTable::distance(row, bench)});
    }
    std::sort(neighbours.begin(), neighbours.end(),
              [](const Neighbour &a, const Neighbour &b) {
                  return a.distance < b.distance;
              });
    std::printf("\nnearest suite benchmarks:\n");
    for (std::size_t i = 0; i < 3 && i < neighbours.size(); ++i)
        std::printf("  %-16s %5.1f%%\n", neighbours[i].name.c_str(),
                    neighbours[i].distance);

    // (c) Does the suite model transfer to the new workload?
    TransferabilityConfig transfer_config;
    transfer_config.modelName = model.suiteName;
    transfer_config.targetName = custom.name;
    const auto report = assessTransferability(
        model.tree, model.train, custom_data.samples, transfer_config);
    std::printf("\n%s\n", report.render().c_str());
    return 0;
}
