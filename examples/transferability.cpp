/**
 * @file
 * Transferability study (the paper's Section VI workflow): build
 * models for the two built-in suites from 10% training fractions,
 * then assess every model-to-target direction with both
 * methodologies — two-sample t-tests and prediction accuracy.
 *
 * Uses reduced sampling so it finishes in a few seconds; the bench/
 * binaries regenerate the full-scale results.
 */

#include <cstdio>

#include "core/suite_model.hh"
#include "core/transferability.hh"
#include "workload/suites.hh"

int
main()
{
    using namespace wct;

    CollectionConfig collection;
    collection.intervalInstructions = 8192;
    collection.baseIntervals = 350;
    collection.warmupInstructions = 1'000'000;

    std::printf("collecting both suites...\n");
    const SuiteData cpu_data = collectSuite(specCpu2006(), collection);
    collection.seed = 0x0317; // independent streams for the 2nd suite
    const SuiteData omp_data = collectSuite(specOmp2001(), collection);

    SuiteModelConfig model_config;
    model_config.trainFraction = 0.10;
    model_config.tree.minLeafInstances = 25;
    model_config.tree.minLeafFraction = 0.025;
    model_config.seed = 0xbee5;
    const SuiteModel cpu = buildSuiteModel(cpu_data, model_config);
    const SuiteModel omp = buildSuiteModel(omp_data, model_config);
    std::printf("CPU2006 model: %zu leaves from %zu samples\n",
                cpu.tree.numLeaves(), cpu.train.numRows());
    std::printf("OMP2001 model: %zu leaves from %zu samples\n\n",
                omp.tree.numLeaves(), omp.train.numRows());

    struct Direction
    {
        const char *title;
        const SuiteModel *model;
        const Dataset *target;
    };
    const Direction directions[] = {
        {"CPU2006 -> its own held-out data", &cpu, &cpu.test},
        {"CPU2006 -> OMP2001", &cpu, &omp.test},
        {"OMP2001 -> its own held-out data", &omp, &omp.test},
        {"OMP2001 -> CPU2006", &omp, &cpu.test},
    };

    for (const Direction &dir : directions) {
        auto report = assessTransferability(
            dir.model->tree, dir.model->train, *dir.target);
        report.modelName = dir.model->suiteName;
        report.targetName = dir.title;
        std::printf("%s\n", report.render().c_str());
    }

    std::printf("expected shape (paper Section VI): models transfer "
                "to held-out data of their own suite but not across "
                "suites, in either direction.\n");
    return 0;
}
