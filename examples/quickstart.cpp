/**
 * @file
 * Quickstart: the minimal end-to-end flow.
 *
 *   1. Describe a synthetic workload (instruction mix + locality).
 *   2. Run it on the simulated Core2-like machine and collect PMU
 *      samples over fixed instruction intervals.
 *   3. Train an M5' model tree predicting CPI from the event
 *      densities, print it, and use it for prediction.
 *
 * Build and run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "data/split.hh"
#include "mtree/model_tree.hh"
#include "pmu/collector.hh"
#include "stats/metrics.hh"
#include "uarch/core.hh"
#include "util/rng.hh"
#include "workload/source.hh"

int
main()
{
    using namespace wct;

    // 1. A workload with two phases: a cache-friendly compute loop
    //    and a memory-hungry pointer chase.
    BenchmarkProfile bench;
    bench.name = "demo.workload";
    bench.phaseRunLength = 30000;

    PhaseProfile compute;
    compute.name = "compute";
    compute.weight = 0.7;
    compute.loadFrac = 0.28;
    compute.storeFrac = 0.10;
    compute.branchFrac = 0.12;
    compute.mulFrac = 0.04;
    compute.dataFootprint = 1 << 20;
    compute.hotBytes = 24 << 10;
    compute.hotFrac = 0.98;

    PhaseProfile chase;
    chase.name = "chase";
    chase.weight = 0.3;
    chase.loadFrac = 0.35;
    chase.pointerChaseFrac = 0.5;
    chase.dataFootprint = 128ull << 20;
    chase.hotBytes = 32 << 10;
    chase.hotFrac = 0.95;
    bench.phases = {compute, chase};

    // 2. Simulate and sample: a Core2-like machine, five PMU counters
    //    with round-robin multiplexing, 4096-instruction intervals.
    CoreModel core{CoreConfig{}};
    WorkloadSource source(bench, /*seed=*/42);
    core.run(source, 1'000'000); // warm caches and predictors

    CollectorConfig pmu;
    pmu.intervalInstructions = 4096;
    IntervalCollector collector(core, pmu);
    const Dataset samples = collector.collect(source, 3000);
    std::printf("collected %zu samples x %zu metrics\n",
                samples.numRows(), samples.numColumns());

    // 3. Train on half, evaluate on the other half.
    Rng rng(7);
    const auto split = randomSplit(samples, 0.5, rng);
    ModelTreeConfig config;
    config.minLeafFraction = 0.05;
    const ModelTree tree =
        ModelTree::train(split.train, "CPI", config);

    std::printf("\nmodel tree (%zu leaves):\n%s\n", tree.numLeaves(),
                tree.describe().c_str());

    const auto metrics = computeAccuracy(
        tree.predictAll(split.test), split.test.column("CPI"));
    std::printf("held-out accuracy: C = %.4f, MAE = %.4f CPI\n",
                metrics.correlation, metrics.meanAbsoluteError);

    // Single-row prediction: classify one sample and predict its CPI.
    const auto row = split.test.row(0);
    std::printf("sample 0: leaf LM%zu, predicted CPI %.3f, actual "
                "%.3f\n",
                tree.classify(row) + 1, tree.predict(row), row[0]);
    return 0;
}
