/**
 * @file
 * Golden-file regression tests: a reduced-scale, fully pinned-seed
 * run of the Table II / III / VI pipeline whose rendered output (and
 * the serialized suite tree) is diffed against checked-in text files.
 *
 * Any intentional change to collection, tree induction, or the
 * renderers shows up as a readable text diff. Regenerate with
 *
 *     WCT_UPDATE_GOLDEN=1 ctest --test-dir build -R golden
 *
 * or tests/golden/update_goldens.sh. The comparison assumes the
 * same-toolchain floating-point determinism documented in
 * docs/testing.md.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/profile_table.hh"
#include "core/similarity.hh"
#include "core/suite_model.hh"
#include "core/transferability.hh"
#include "workload/suites.hh"

namespace wct
{
namespace
{

/** Source-tree directory holding the golden files (from CMake). */
std::string
goldenDir()
{
    return std::string(WCT_GOLDEN_DIR);
}

/**
 * Compare `actual` against the named golden file; in update mode
 * (WCT_UPDATE_GOLDEN set and non-empty) rewrite the file instead.
 */
void
expectMatchesGolden(const std::string &name, const std::string &actual)
{
    const std::string path = goldenDir() + "/" + name;
    const char *update = std::getenv("WCT_UPDATE_GOLDEN");
    if (update != nullptr && *update != '\0') {
        std::ofstream out(path);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << actual;
        SUCCEED() << "updated " << path;
        return;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in) << "missing golden file " << path
                    << " (regenerate with WCT_UPDATE_GOLDEN=1)";
    std::stringstream want;
    want << in.rdbuf();
    EXPECT_EQ(actual, want.str())
        << "output diverges from " << path
        << "; if intentional, regenerate with WCT_UPDATE_GOLDEN=1 "
           "and review the diff";
}

/** A pinned subset of a built-in suite. */
SuiteProfile
subsetSuite(const SuiteProfile &full, const std::string &name,
            const std::vector<std::string> &members)
{
    SuiteProfile suite;
    suite.name = name;
    for (const std::string &member : members)
        suite.benchmarks.push_back(full.benchmark(member));
    return suite;
}

struct Fixture
{
    SuiteData cpu_data;
    SuiteData omp_data;
    SuiteModel cpu;
    SuiteModel omp;

    Fixture()
    {
        // Every seed and knob below is pinned; nothing may depend on
        // time, environment, or host.
        CollectionConfig config;
        config.intervalInstructions = 4096;
        config.baseIntervals = 80;
        config.warmupInstructions = 200'000;
        config.multiplexed = true;
        config.seed = 0x5eed;

        // Extremes plus the compute cluster: the subset keeps every
        // qualitative contrast of Tables II/III at toy scale.
        cpu_data = collectSuite(
            subsetSuite(specCpu2006(), "cpu2006-mini",
                        {"429.mcf", "444.namd", "456.hmmer",
                         "459.GemsFDTD", "470.lbm"}),
            config);
        config.seed = 0x0317;
        omp_data = collectSuite(
            subsetSuite(specOmp2001(), "omp2001-mini",
                        {"330.art_m", "328.fma3d_m", "318.galgel_m"}),
            config);

        SuiteModelConfig mconfig;
        mconfig.trainFraction = 0.25;
        mconfig.tree.minLeafInstances = 25;
        mconfig.tree.minLeafFraction = 0.025;
        mconfig.seed = 0xcafe;
        cpu = buildSuiteModel(cpu_data, mconfig);
        omp = buildSuiteModel(omp_data, mconfig);
    }
};

const Fixture &
fixture()
{
    static const Fixture f;
    return f;
}

TEST(GoldenTest, SerializedCpuTree)
{
    std::ostringstream out;
    fixture().cpu.tree.save(out);
    expectMatchesGolden("tree_cpu_mini.txt", out.str());
}

TEST(GoldenTest, TableIIProfileDistribution)
{
    const ProfileTable table(fixture().cpu_data, fixture().cpu.tree);
    expectMatchesGolden("table2_profiles_cpu_mini.txt",
                        table.render());
}

TEST(GoldenTest, TableIIISimilarityMatrix)
{
    const ProfileTable table(fixture().cpu_data, fixture().cpu.tree);
    const SimilarityMatrix matrix(table);
    expectMatchesGolden("table3_similarity_cpu_mini.txt",
                        matrix.render());
}

TEST(GoldenTest, TableVITransferability)
{
    // Same-suite (transfers) and cross-suite (does not) directions,
    // mirroring the Table VI methodology at mini scale.
    const auto same = assessTransferability(
        fixture().cpu.tree, fixture().cpu.train, fixture().cpu.test);
    const auto cross = assessTransferability(
        fixture().cpu.tree, fixture().cpu.train, fixture().omp.test);
    std::ostringstream out;
    out << "== cpu2006-mini -> cpu2006-mini ==\n"
        << same.render() << "\n== cpu2006-mini -> omp2001-mini ==\n"
        << cross.render();
    expectMatchesGolden("table6_transferability_mini.txt", out.str());
}

} // namespace
} // namespace wct
