#!/bin/sh
# Regenerate the golden files under tests/golden/ from the current
# build, then show what changed. Run from the repository root:
#
#     tests/golden/update_goldens.sh [build-dir]
#
# Review the git diff before committing: every hunk is a deliberate
# behaviour change you are signing off on.
set -eu

build_dir="${1:-build}"

cmake --build "$build_dir" -j --target golden_test
WCT_UPDATE_GOLDEN=1 ctest --test-dir "$build_dir" -R '^golden_test$' \
    --output-on-failure
git -P diff --stat -- tests/golden || true
