/**
 * @file
 * Differential properties of the Cholesky/normal-equation OLS solver
 * (stats/ols) against closed-form Cramer's-rule oracles, plus the
 * intercept/residual identities every least-squares fit must satisfy.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/ols.hh"
#include "tests/support/oracles.hh"
#include "tests/support/prop.hh"

namespace wct
{
namespace
{

using prop::CheckResult;
using prop::Config;

prop::DatasetGenConfig
shapeWithPredictors(std::size_t predictors)
{
    prop::DatasetGenConfig shape;
    shape.minRows = 8;
    shape.maxRows = 120;
    shape.minPredictors = predictors;
    shape.maxPredictors = predictors;
    shape.noise = 0.5;
    return shape;
}

bool
close(double a, double b, double rel)
{
    return std::abs(a - b) <=
        rel * std::max({1.0, std::abs(a), std::abs(b)});
}

TEST(OlsProp, OnePredictorMatchesClosedForm)
{
    const Config config = Config::fromEnv(0x0151, 100);
    const CheckResult result = prop::check<Dataset>(
        config, prop::datasets(shapeWithPredictors(1)),
        [](const Dataset &data) -> std::optional<std::string> {
            const std::vector<double> x = data.column("x0");
            const std::vector<double> y = data.column("y");
            const auto want = oracle::ols1(x, y);
            if (!want)
                return std::nullopt; // constant predictor
            // Explicit ridge 0: on well-conditioned data the solver
            // must not need stabilisation, so the comparison is
            // against the exact least-squares solution.
            const OlsFit got = fitOlsColumns({x}, y, 0.0);
            if (!close(got.intercept, want->b0, 1e-6))
                return "intercept " + prop::showDouble(got.intercept) +
                    " vs oracle " + prop::showDouble(want->b0);
            if (got.coefficients.size() != 1 ||
                !close(got.coefficients[0], want->b1, 1e-6))
                return "slope " +
                    prop::showDouble(got.coefficients[0]) +
                    " vs oracle " + prop::showDouble(want->b1);
            return std::nullopt;
        });
    WCT_EXPECT_PROP(result, config);
}

TEST(OlsProp, TwoPredictorsMatchClosedForm)
{
    const Config config = Config::fromEnv(0x0152, 100);
    const CheckResult result = prop::check<Dataset>(
        config, prop::datasets(shapeWithPredictors(2)),
        [](const Dataset &data) -> std::optional<std::string> {
            const std::vector<double> x1 = data.column("x0");
            const std::vector<double> x2 = data.column("x1");
            const std::vector<double> y = data.column("y");
            const auto want = oracle::ols2(x1, x2, y);
            if (!want)
                return std::nullopt; // near-singular system
            const OlsFit got = fitOlsColumns({x1, x2}, y, 0.0);
            if (!close(got.intercept, want->b0, 1e-6))
                return "intercept " + prop::showDouble(got.intercept) +
                    " vs oracle " + prop::showDouble(want->b0);
            if (!close(got.coefficients[0], want->b1, 1e-6) ||
                !close(got.coefficients[1], want->b2, 1e-6))
                return "coefficients (" +
                    prop::showDouble(got.coefficients[0]) + ", " +
                    prop::showDouble(got.coefficients[1]) +
                    ") vs oracle (" + prop::showDouble(want->b1) +
                    ", " + prop::showDouble(want->b2) + ")";
            return std::nullopt;
        });
    WCT_EXPECT_PROP(result, config);
}

TEST(OlsProp, FitPassesThroughCentroidWithZeroResidualSum)
{
    // With an intercept, least squares forces sum(residuals) = 0 and
    // therefore predict(mean(x)) = mean(y).
    const Config config = Config::fromEnv(0xce7d, 100);
    prop::DatasetGenConfig shape;
    shape.minRows = 8;
    shape.maxRows = 120;
    shape.minPredictors = 1;
    shape.maxPredictors = 4;
    shape.noise = 0.5;
    const CheckResult result = prop::check<Dataset>(
        config, prop::datasets(shape),
        [](const Dataset &data) -> std::optional<std::string> {
            const std::size_t p = data.numColumns() - 1;
            std::vector<std::vector<double>> columns;
            for (std::size_t c = 0; c < p; ++c)
                columns.push_back(data.column(c));
            const std::vector<double> y = data.column("y");
            const OlsFit fit = fitOlsColumns(columns, y, 0.0);

            if (fit.residualSumSquares < 0.0)
                return "negative RSS " +
                    prop::showDouble(fit.residualSumSquares);
            if (fit.rSquared > 1.0 + 1e-9)
                return "R^2 " + prop::showDouble(fit.rSquared);

            std::vector<double> centroid(p);
            for (std::size_t c = 0; c < p; ++c)
                centroid[c] = oracle::meanTwoPass(columns[c]);
            const double at_centroid = fit.predict(centroid);
            const double y_mean = oracle::meanTwoPass(y);
            if (!close(at_centroid, y_mean, 1e-6))
                return "predict(centroid) " +
                    prop::showDouble(at_centroid) + " vs mean(y) " +
                    prop::showDouble(y_mean);

            double residual_sum = 0.0;
            for (std::size_t r = 0; r < data.numRows(); ++r) {
                std::vector<double> row(p);
                for (std::size_t c = 0; c < p; ++c)
                    row[c] = data.at(r, c);
                residual_sum += y[r] - fit.predict(row);
            }
            if (std::abs(residual_sum) >
                1e-6 * static_cast<double>(data.numRows()))
                return "residual sum " +
                    prop::showDouble(residual_sum);
            return std::nullopt;
        });
    WCT_EXPECT_PROP(result, config);
}

TEST(OlsProp, PredictionInvariantUnderPredictorOrder)
{
    // Swapping the two predictor columns permutes the coefficients
    // but must leave fitted values unchanged (metamorphic).
    const Config config = Config::fromEnv(0x0dd0, 100);
    const CheckResult result = prop::check<Dataset>(
        config, prop::datasets(shapeWithPredictors(2)),
        [](const Dataset &data) -> std::optional<std::string> {
            const std::vector<double> x1 = data.column("x0");
            const std::vector<double> x2 = data.column("x1");
            const std::vector<double> y = data.column("y");
            const OlsFit forward = fitOlsColumns({x1, x2}, y, 0.0);
            const OlsFit swapped = fitOlsColumns({x2, x1}, y, 0.0);
            for (std::size_t r = 0; r < y.size(); ++r) {
                const double a =
                    forward.predict(std::vector<double>{x1[r], x2[r]});
                const double b =
                    swapped.predict(std::vector<double>{x2[r], x1[r]});
                if (!close(a, b, 1e-6))
                    return "row " + std::to_string(r) +
                        " prediction " + prop::showDouble(a) +
                        " vs swapped " + prop::showDouble(b);
            }
            return std::nullopt;
        });
    WCT_EXPECT_PROP(result, config);
}

} // namespace
} // namespace wct
