/**
 * @file
 * Differential properties of stats/descriptive against the two-pass
 * textbook oracles, including the Welford accumulator and its merge,
 * plus the NaN/empty-input contract documented in descriptive.hh.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/descriptive.hh"
#include "tests/support/oracles.hh"
#include "tests/support/prop.hh"

namespace wct
{
namespace
{

using prop::CheckResult;
using prop::Config;

/** Scale-aware tolerance for moment comparisons. */
double
momentTol(const std::vector<double> &xs, double rel)
{
    double scale = 1.0;
    for (double x : xs)
        scale = std::max(scale, std::abs(x));
    return rel * scale * scale;
}

TEST(DescriptiveProp, MeanMatchesTwoPassOracle)
{
    const Config config = Config::fromEnv(0x3ea0, 100);
    const CheckResult result = prop::check<std::vector<double>>(
        config, prop::vectorOf(prop::interestingDouble(1e6), 1, 200),
        [](const std::vector<double> &xs)
            -> std::optional<std::string> {
            const double got = mean(xs);
            const double want = oracle::meanTwoPass(xs);
            if (std::abs(got - want) >
                1e-9 * std::max(1.0, std::abs(want)))
                return "mean " + prop::showDouble(got) +
                    " vs oracle " + prop::showDouble(want);
            return std::nullopt;
        });
    WCT_EXPECT_PROP(result, config);
}

TEST(DescriptiveProp, RunningStatsMatchesTwoPassOracle)
{
    const Config config = Config::fromEnv(0x3e1f, 100);
    const CheckResult result = prop::check<std::vector<double>>(
        config, prop::vectorOf(prop::interestingDouble(1e6), 1, 200),
        [](const std::vector<double> &xs)
            -> std::optional<std::string> {
            RunningStats stats;
            for (double x : xs)
                stats.add(x);
            if (stats.count() != xs.size())
                return "count mismatch";

            const double tol = momentTol(xs, 1e-9);
            const double want_mean = oracle::meanTwoPass(xs);
            if (std::abs(stats.mean() - want_mean) >
                1e-9 * std::max(1.0, std::abs(want_mean)))
                return "mean " + prop::showDouble(stats.mean()) +
                    " vs oracle " + prop::showDouble(want_mean);

            const double want_var = oracle::sampleVarianceTwoPass(xs);
            if (std::abs(stats.sampleVariance() - want_var) > tol)
                return "variance " +
                    prop::showDouble(stats.sampleVariance()) +
                    " vs oracle " + prop::showDouble(want_var);

            const double want_min =
                *std::min_element(xs.begin(), xs.end());
            const double want_max =
                *std::max_element(xs.begin(), xs.end());
            if (stats.min() != want_min || stats.max() != want_max)
                return "min/max mismatch";
            return std::nullopt;
        });
    WCT_EXPECT_PROP(result, config);
}

TEST(DescriptiveProp, MergeEqualsSequentialAccumulation)
{
    const Config config = Config::fromEnv(0x3e53, 100);
    const CheckResult result = prop::check<std::vector<double>>(
        config, prop::vectorOf(prop::interestingDouble(1e3), 2, 200),
        [](const std::vector<double> &xs)
            -> std::optional<std::string> {
            RunningStats whole;
            for (double x : xs)
                whole.add(x);

            // Split at a third to exercise unequal partitions.
            const std::size_t cut = xs.size() / 3;
            RunningStats left;
            RunningStats right;
            for (std::size_t i = 0; i < xs.size(); ++i)
                (i < cut ? left : right).add(xs[i]);
            left.merge(right);

            if (left.count() != whole.count())
                return "count mismatch after merge";
            const double tol = momentTol(xs, 1e-9);
            if (std::abs(left.mean() - whole.mean()) > tol)
                return "merged mean " + prop::showDouble(left.mean()) +
                    " vs sequential " + prop::showDouble(whole.mean());
            if (std::abs(left.sampleVariance() -
                         whole.sampleVariance()) > tol)
                return "merged variance " +
                    prop::showDouble(left.sampleVariance()) +
                    " vs sequential " +
                    prop::showDouble(whole.sampleVariance());
            if (left.min() != whole.min() ||
                left.max() != whole.max())
                return "merged min/max mismatch";
            return std::nullopt;
        });
    WCT_EXPECT_PROP(result, config);
}

TEST(DescriptiveProp, QuantilesAreMonotoneAndBracketedByExtremes)
{
    const Config config = Config::fromEnv(0x9a41, 100);
    const CheckResult result = prop::check<std::vector<double>>(
        config, prop::vectorOf(prop::uniformDouble(-50.0, 50.0), 1, 100),
        [](const std::vector<double> &xs)
            -> std::optional<std::string> {
            const double lo = *std::min_element(xs.begin(), xs.end());
            const double hi = *std::max_element(xs.begin(), xs.end());
            if (quantile(xs, 0.0) != lo || quantile(xs, 1.0) != hi)
                return "extreme quantiles disagree with min/max";
            if (median(xs) != quantile(xs, 0.5))
                return "median disagrees with quantile(0.5)";
            double prev = lo;
            for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
                const double value = quantile(xs, q);
                if (value < prev)
                    return "quantile not monotone at q=" +
                        prop::showDouble(q);
                prev = value;
            }
            return std::nullopt;
        });
    WCT_EXPECT_PROP(result, config);
}

TEST(DescriptiveProp, PearsonStaysInUnitIntervalOnCollinearData)
{
    // Near-collinear columns drive cov/(sx*sy) toward +-1; rounding
    // must never push the result outside [-1, 1] (it feeds threshold
    // rules like C > 0.85).
    const Config config = Config::fromEnv(0xc033, 100);
    const CheckResult result = prop::check<std::vector<double>>(
        config, prop::vectorOf(prop::uniformDouble(-8.0, 8.0), 2, 100),
        [](const std::vector<double> &xs)
            -> std::optional<std::string> {
            std::vector<double> ys(xs.size());
            for (std::size_t i = 0; i < xs.size(); ++i)
                ys[i] = 3.0 * xs[i] - 1.0;
            const double r = pearsonCorrelation(xs, ys);
            if (std::abs(r) > 1.0)
                return "|r| = " + prop::showDouble(std::abs(r)) +
                    " > 1";
            // Exactly collinear input with spread must give r = 1.
            const double sx = sampleStddev(xs);
            if (sx > 1e-6 && r < 0.999999)
                return "collinear r = " + prop::showDouble(r);
            return std::nullopt;
        });
    WCT_EXPECT_PROP(result, config);
}

// ---- The documented NaN/empty contract. ----

TEST(DescriptiveContractDeathTest, EmptyInputPanics)
{
    const std::vector<double> empty;
    EXPECT_DEATH(mean(empty), "");
    EXPECT_DEATH(median(empty), "");
    EXPECT_DEATH(quantile(empty, 0.5), "");
}

TEST(DescriptiveContractDeathTest, OrderStatisticsRejectNaN)
{
    const std::vector<double> poisoned{
        1.0, std::numeric_limits<double>::quiet_NaN(), 3.0};
    EXPECT_DEATH(quantile(poisoned, 0.5), "NaN");
}

TEST(DescriptiveContract, MomentsPropagateNaN)
{
    const std::vector<double> poisoned{
        1.0, std::numeric_limits<double>::quiet_NaN(), 3.0};
    EXPECT_TRUE(std::isnan(mean(poisoned)));
    EXPECT_TRUE(std::isnan(sampleVariance(poisoned)));

    RunningStats stats;
    for (double x : poisoned)
        stats.add(x);
    EXPECT_TRUE(std::isnan(stats.mean()));
    EXPECT_TRUE(std::isnan(stats.sampleVariance()));
}

TEST(DescriptiveContract, DegenerateSizesGiveZeroVariance)
{
    const std::vector<double> one{5.0};
    EXPECT_EQ(sampleVariance(one), 0.0);
    EXPECT_EQ(populationVariance(std::vector<double>{}), 0.0);

    RunningStats stats;
    stats.add(5.0);
    EXPECT_EQ(stats.sampleVariance(), 0.0);
}

TEST(DescriptiveContractDeathTest, EmptyRunningStatsExtremesPanic)
{
    RunningStats stats;
    EXPECT_DEATH(stats.min(), "");
    EXPECT_DEATH(stats.max(), "");
}

} // namespace
} // namespace wct
