/**
 * @file
 * Differential and metamorphic properties of the two-sample t-tests
 * (stats/tests) against a textbook Welch oracle whose p-value comes
 * from direct Simpson integration rather than the incomplete beta.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "stats/tests.hh"
#include "tests/support/oracles.hh"
#include "tests/support/prop.hh"

namespace wct
{
namespace
{

using prop::CheckResult;
using prop::Config;
using prop::Gen;

struct TwoSamples
{
    std::vector<double> xs;
    std::vector<double> ys;
};

/** Two samples with a random location shift between them. */
Gen<TwoSamples>
twoSamples()
{
    Gen<TwoSamples> gen;
    gen.generate = [](Rng &rng) {
        TwoSamples samples;
        const std::size_t n1 = 2 + rng.uniformInt(59);
        const std::size_t n2 = 2 + rng.uniformInt(59);
        const double shift = rng.uniform(-2.0, 2.0);
        const double spread1 = rng.uniform(0.1, 3.0);
        const double spread2 = rng.uniform(0.1, 3.0);
        for (std::size_t i = 0; i < n1; ++i)
            samples.xs.push_back(rng.normal(0.0, spread1));
        for (std::size_t i = 0; i < n2; ++i)
            samples.ys.push_back(rng.normal(shift, spread2));
        return samples;
    };
    gen.show = [](const TwoSamples &samples) {
        return "xs=" + prop::showVector(samples.xs) +
            "\n    ys=" + prop::showVector(samples.ys);
    };
    return gen;
}

bool
close(double a, double b, double rel)
{
    return std::abs(a - b) <=
        rel * std::max({1.0, std::abs(a), std::abs(b)});
}

TEST(TTestProp, WelchMatchesTextbookOracle)
{
    const Config config = Config::fromEnv(0x7357, 100);
    const CheckResult result = prop::check<TwoSamples>(
        config, twoSamples(),
        [](const TwoSamples &samples) -> std::optional<std::string> {
            const TestResult got =
                welchTTest(samples.xs, samples.ys);
            const oracle::WelchResult want =
                oracle::welch(samples.xs, samples.ys);
            if (!close(got.statistic, want.statistic, 1e-9))
                return "statistic " + prop::showDouble(got.statistic) +
                    " vs oracle " + prop::showDouble(want.statistic);
            if (!close(got.df, want.df, 1e-9))
                return "df " + prop::showDouble(got.df) +
                    " vs oracle " + prop::showDouble(want.df);
            // The oracle integrates the t density numerically; its
            // error is well under this absolute tolerance.
            if (std::abs(got.pValue - want.pValue) > 5e-6)
                return "p " + prop::showDouble(got.pValue) +
                    " vs oracle " + prop::showDouble(want.pValue);
            return std::nullopt;
        });
    WCT_EXPECT_PROP(result, config);
}

TEST(TTestProp, SwappingSamplesNegatesStatistic)
{
    const Config config = Config::fromEnv(0x5a9b, 100);
    const CheckResult result = prop::check<TwoSamples>(
        config, twoSamples(),
        [](const TwoSamples &samples) -> std::optional<std::string> {
            const TestResult forward =
                welchTTest(samples.xs, samples.ys);
            const TestResult reverse =
                welchTTest(samples.ys, samples.xs);
            if (!close(forward.statistic, -reverse.statistic, 1e-12))
                return "statistic not antisymmetric";
            if (!close(forward.pValue, reverse.pValue, 1e-12))
                return "p-value not symmetric";
            if (!close(forward.df, reverse.df, 1e-12))
                return "df not symmetric";
            return std::nullopt;
        });
    WCT_EXPECT_PROP(result, config);
}

TEST(TTestProp, ShiftAndScaleInvariance)
{
    // Applying the same affine map a*x + c (a > 0) to both samples
    // must leave the t statistic and p-value unchanged.
    const Config config = Config::fromEnv(0xaff1, 100);
    const CheckResult result = prop::check<TwoSamples>(
        config, twoSamples(),
        [](const TwoSamples &samples) -> std::optional<std::string> {
            const double a = 2.5;
            const double c = -17.0;
            TwoSamples mapped = samples;
            for (double &x : mapped.xs)
                x = a * x + c;
            for (double &y : mapped.ys)
                y = a * y + c;
            const TestResult base =
                welchTTest(samples.xs, samples.ys);
            const TestResult moved =
                welchTTest(mapped.xs, mapped.ys);
            if (!close(base.statistic, moved.statistic, 1e-6))
                return "statistic moved: " +
                    prop::showDouble(base.statistic) + " vs " +
                    prop::showDouble(moved.statistic);
            if (std::abs(base.pValue - moved.pValue) > 1e-6)
                return "p moved: " + prop::showDouble(base.pValue) +
                    " vs " + prop::showDouble(moved.pValue);
            return std::nullopt;
        });
    WCT_EXPECT_PROP(result, config);
}

TEST(TTestProp, PooledMomentsFormMatchesSampleForm)
{
    const Config config = Config::fromEnv(0x900c, 100);
    const CheckResult result = prop::check<TwoSamples>(
        config, twoSamples(),
        [](const TwoSamples &samples) -> std::optional<std::string> {
            const TestResult direct =
                pooledTTest(samples.xs, samples.ys);
            const TestResult moments = pooledTTestFromMoments(
                oracle::meanTwoPass(samples.xs),
                oracle::sampleVarianceTwoPass(samples.xs),
                samples.xs.size(),
                oracle::meanTwoPass(samples.ys),
                oracle::sampleVarianceTwoPass(samples.ys),
                samples.ys.size());
            if (!close(direct.statistic, moments.statistic, 1e-9))
                return "statistic " +
                    prop::showDouble(direct.statistic) +
                    " vs moments form " +
                    prop::showDouble(moments.statistic);
            if (std::abs(direct.pValue - moments.pValue) > 1e-9)
                return "p " + prop::showDouble(direct.pValue) +
                    " vs moments form " +
                    prop::showDouble(moments.pValue);
            return std::nullopt;
        });
    WCT_EXPECT_PROP(result, config);
}

TEST(TTestProp, PValueShrinksAsTheShiftGrows)
{
    // Growing the separation between fixed-noise samples must not
    // increase the p-value (checked on a deterministic ladder).
    Rng rng(0x51a7);
    std::vector<double> base1;
    std::vector<double> base2;
    for (std::size_t i = 0; i < 40; ++i) {
        base1.push_back(rng.normal(0.0, 1.0));
        base2.push_back(rng.normal(0.0, 1.0));
    }
    double previous = 1.1;
    for (double shift : {1.0, 2.0, 4.0}) {
        std::vector<double> moved = base2;
        for (double &y : moved)
            y += shift;
        const double p = welchTTest(base1, moved).pValue;
        EXPECT_LE(p, previous + 1e-12) << "shift " << shift;
        previous = p;
    }
}

TEST(TTestProp, IdenticalSamplesDoNotReject)
{
    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
    const TestResult result = welchTTest(xs, xs);
    EXPECT_NEAR(result.statistic, 0.0, 1e-12);
    EXPECT_NEAR(result.pValue, 1.0, 1e-9);
    EXPECT_FALSE(result.rejectAt(0.05));
}

} // namespace
} // namespace wct
