/**
 * @file
 * Differential and metamorphic properties of the prefix-sum SDR split
 * search (mtree/split_search) against the exhaustive O(n^2) oracle.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "mtree/split_search.hh"
#include "tests/support/oracles.hh"
#include "tests/support/prop.hh"

namespace wct
{
namespace
{

using prop::CheckResult;
using prop::Config;
using prop::Gen;

/** Population sd of the targets, the node_sd input of the search. */
double
targetSd(const std::vector<SplitObservation> &observations)
{
    if (observations.empty())
        return 0.0;
    double sum = 0.0;
    for (const SplitObservation &obs : observations)
        sum += obs.target;
    const double mean = sum / static_cast<double>(observations.size());
    double ss = 0.0;
    for (const SplitObservation &obs : observations)
        ss += (obs.target - mean) * (obs.target - mean);
    return std::sqrt(ss / static_cast<double>(observations.size()));
}

/**
 * Observations with realistic structure: half the trials use a small
 * value grid (duplicate attribute values, the case the boundary scan
 * must skip), and targets follow a noisy step so there is a split
 * worth finding.
 */
Gen<std::vector<SplitObservation>>
observationLists()
{
    Gen<std::vector<SplitObservation>> gen;
    gen.generate = [](Rng &rng) {
        const std::size_t n = 2 + rng.uniformInt(119);
        const bool grid = rng.bernoulli(0.5);
        const double step_at = rng.uniform(-4.0, 4.0);
        const double low = rng.uniform(-4.0, 4.0);
        const double high = low + rng.uniform(-4.0, 4.0);
        std::vector<SplitObservation> observations(n);
        for (SplitObservation &obs : observations) {
            double value = rng.uniform(-8.0, 8.0);
            if (grid)
                value = std::round(value);
            obs.value = value;
            obs.target = (value <= step_at ? low : high) +
                rng.normal(0.0, 0.2);
        }
        return observations;
    };
    gen.shrink = [](const std::vector<SplitObservation> &observations) {
        std::vector<std::vector<SplitObservation>> candidates;
        const std::size_t n = observations.size();
        if (n >= 4) {
            candidates.emplace_back(observations.begin() + n / 2,
                                    observations.end());
            candidates.emplace_back(observations.begin(),
                                    observations.begin() + (n + 1) / 2);
        }
        if (n > 2 && n <= 24) {
            for (std::size_t i = 0; i < n; ++i) {
                std::vector<SplitObservation> fewer = observations;
                fewer.erase(fewer.begin() +
                            static_cast<std::ptrdiff_t>(i));
                candidates.push_back(std::move(fewer));
            }
        }
        return candidates;
    };
    gen.show = [](const std::vector<SplitObservation> &observations) {
        std::string out =
            "[" + std::to_string(observations.size()) + "]{";
        const std::size_t shown =
            std::min<std::size_t>(observations.size(), 24);
        for (std::size_t i = 0; i < shown; ++i) {
            if (i > 0)
                out += ", ";
            out += "(" + prop::showDouble(observations[i].value) +
                " -> " + prop::showDouble(observations[i].target) + ")";
        }
        if (shown < observations.size())
            out += ", ...";
        return out + "}";
    };
    return gen;
}

/** One differential trial at a given min_leaf. */
std::optional<std::string>
differential(const std::vector<SplitObservation> &observations,
             std::size_t min_leaf)
{
    const double node_sd = targetSd(observations);
    std::vector<SplitObservation> scratch = observations;
    const SplitCandidate fast =
        findBestSdrSplit(scratch, node_sd, min_leaf);
    const SplitCandidate slow =
        oracle::bestSdrSplitExhaustive(observations, node_sd, min_leaf);

    if (fast.valid != slow.valid)
        return std::string("validity mismatch: fast ") +
            (fast.valid ? "valid" : "invalid") + ", oracle " +
            (slow.valid ? "valid" : "invalid");
    if (!fast.valid)
        return std::nullopt;

    // SDR values from the two formulations must agree up to the
    // inherent error of the prefix-sum form: subtracting prefix from
    // total sums leaves an O(eps * y^2) residue in a child variance,
    // and sqrt turns that into an O(sqrt(eps) * |y|) error in the
    // child sd. On an exact tie between boundaries both sides keep
    // the lowest value, so a differing split value is only acceptable
    // for an FP near-tie, which the SDR comparison already bounds.
    double max_abs_target = 0.0;
    for (const SplitObservation &obs : observations)
        max_abs_target = std::max(max_abs_target,
                                  std::abs(obs.target));
    const double tol = 1e-7 * (1.0 + max_abs_target);
    if (std::abs(fast.sdr - slow.sdr) > tol)
        return "sdr mismatch: fast " + prop::showDouble(fast.sdr) +
            " vs oracle " + prop::showDouble(slow.sdr);
    return std::nullopt;
}

TEST(SplitSearchProp, MatchesExhaustiveOracle)
{
    const Config config = Config::fromEnv(0x5d50, 100);
    for (const std::size_t min_leaf : {std::size_t{1}, std::size_t{2},
                                       std::size_t{5}}) {
        const CheckResult result =
            prop::check<std::vector<SplitObservation>>(
                config, observationLists(),
                [min_leaf](const std::vector<SplitObservation> &obs) {
                    return differential(obs, min_leaf);
                });
        WCT_EXPECT_PROP(result, config);
    }
}

TEST(SplitSearchProp, SdrBoundedByNodeSd)
{
    const Config config = Config::fromEnv(0xb0d5, 100);
    const CheckResult result =
        prop::check<std::vector<SplitObservation>>(
            config, observationLists(),
            [](const std::vector<SplitObservation> &observations)
                -> std::optional<std::string> {
                const double node_sd = targetSd(observations);
                std::vector<SplitObservation> scratch = observations;
                const SplitCandidate cand =
                    findBestSdrSplit(scratch, node_sd, 1);
                if (!cand.valid)
                    return std::nullopt;
                if (cand.sdr < -1e-12)
                    return "negative sdr " +
                        prop::showDouble(cand.sdr);
                if (cand.sdr > node_sd + 1e-9)
                    return "sdr " + prop::showDouble(cand.sdr) +
                        " exceeds node sd " +
                        prop::showDouble(node_sd);
                return std::nullopt;
            });
    WCT_EXPECT_PROP(result, config);
}

TEST(SplitSearchProp, RespectsMinLeaf)
{
    const Config config = Config::fromEnv(0x1eaf, 100);
    const CheckResult result =
        prop::check<std::vector<SplitObservation>>(
            config, observationLists(),
            [](const std::vector<SplitObservation> &observations)
                -> std::optional<std::string> {
                const std::size_t min_leaf = 3;
                const double node_sd = targetSd(observations);
                std::vector<SplitObservation> scratch = observations;
                const SplitCandidate cand =
                    findBestSdrSplit(scratch, node_sd, min_leaf);
                if (!cand.valid)
                    return std::nullopt;
                std::size_t left = 0;
                for (const SplitObservation &obs : observations)
                    left += obs.value <= cand.value;
                if (left != cand.leftCount)
                    return "leftCount " +
                        std::to_string(cand.leftCount) +
                        " but split puts " + std::to_string(left) +
                        " rows left";
                if (left < min_leaf ||
                    observations.size() - left < min_leaf)
                    return "split violates min_leaf: " +
                        std::to_string(left) + "/" +
                        std::to_string(observations.size() - left);
                return std::nullopt;
            });
    WCT_EXPECT_PROP(result, config);
}

TEST(SplitSearchProp, TargetShiftLeavesSplitInvariant)
{
    // SDR depends on deviations only: shifting every target by a
    // constant must keep the chosen split and its SDR (metamorphic).
    const Config config = Config::fromEnv(0x5417, 100);
    const CheckResult result =
        prop::check<std::vector<SplitObservation>>(
            config, observationLists(),
            [](const std::vector<SplitObservation> &observations)
                -> std::optional<std::string> {
                const double node_sd = targetSd(observations);
                std::vector<SplitObservation> scratch = observations;
                const SplitCandidate base =
                    findBestSdrSplit(scratch, node_sd, 1);

                std::vector<SplitObservation> shifted = observations;
                for (SplitObservation &obs : shifted)
                    obs.target += 100.0;
                const SplitCandidate moved =
                    findBestSdrSplit(shifted, node_sd, 1);

                if (base.valid != moved.valid)
                    return "validity changed under target shift";
                if (!base.valid)
                    return std::nullopt;
                // The shift perturbs the E[y^2] - mean^2 form, so
                // allow a loose absolute tolerance.
                if (std::abs(base.sdr - moved.sdr) >
                    1e-6 * std::max(1.0, node_sd))
                    return "sdr moved from " +
                        prop::showDouble(base.sdr) + " to " +
                        prop::showDouble(moved.sdr);
                if (base.value != moved.value)
                    return "split moved from " +
                        prop::showDouble(base.value) + " to " +
                        prop::showDouble(moved.value);
                return std::nullopt;
            });
    WCT_EXPECT_PROP(result, config);
}

TEST(SplitSearchProp, DegenerateInputsAreInvalid)
{
    std::vector<SplitObservation> empty;
    EXPECT_FALSE(findBestSdrSplit(empty, 1.0, 1).valid);

    std::vector<SplitObservation> single{{1.0, 2.0}};
    EXPECT_FALSE(findBestSdrSplit(single, 1.0, 1).valid);

    // A constant attribute offers no boundary.
    std::vector<SplitObservation> constant{
        {3.0, 1.0}, {3.0, 5.0}, {3.0, 9.0}};
    EXPECT_FALSE(findBestSdrSplit(constant, 1.0, 1).valid);

    // min_leaf too large for any admissible boundary.
    std::vector<SplitObservation> small{
        {0.0, 1.0}, {1.0, 2.0}, {2.0, 3.0}};
    EXPECT_FALSE(findBestSdrSplit(small, 1.0, 2).valid);
}

} // namespace
} // namespace wct
