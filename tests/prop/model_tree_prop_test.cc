/**
 * @file
 * Metamorphic and structural properties of M5' model-tree training
 * over randomized datasets: column-permutation invariance, label
 * scaling equivariance, piecewise linearity inside a leaf, serialize
 * round-trips, and training determinism.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "mtree/model_tree.hh"
#include "mtree/serialize.hh"
#include "tests/support/prop.hh"

namespace wct
{
namespace
{

using prop::CheckResult;
using prop::Config;

/** Small-leaf config so modest random datasets still grow trees. */
ModelTreeConfig
smallTreeConfig()
{
    ModelTreeConfig config;
    config.minLeafInstances = 6;
    return config;
}

prop::DatasetGenConfig
defaultShape()
{
    prop::DatasetGenConfig shape;
    shape.minRows = 30;
    shape.maxRows = 160;
    shape.noise = 0.1;
    return shape;
}

double
targetRange(const Dataset &data)
{
    const std::vector<double> y = data.column("y");
    const auto [lo, hi] = std::minmax_element(y.begin(), y.end());
    return std::max(1.0, *hi - *lo);
}

TEST(ModelTreeProp, LeavesPartitionTheTrainingSet)
{
    const Config config = Config::fromEnv(0x7e4f, 100);
    const CheckResult result = prop::check<Dataset>(
        config, prop::datasets(defaultShape()),
        [](const Dataset &data) -> std::optional<std::string> {
            const ModelTree tree =
                ModelTree::train(data, "y", smallTreeConfig());
            std::size_t count_total = 0;
            double fraction_total = 0.0;
            for (const LeafInfo &leaf : tree.leaves()) {
                count_total += leaf.count;
                fraction_total += leaf.fraction;
            }
            if (count_total != data.numRows())
                return "leaf counts sum to " +
                    std::to_string(count_total) + " of " +
                    std::to_string(data.numRows()) + " rows";
            if (std::abs(fraction_total - 1.0) > 1e-9)
                return "leaf fractions sum to " +
                    prop::showDouble(fraction_total);
            for (std::size_t r = 0; r < data.numRows(); ++r) {
                if (tree.classify(data.row(r)) >= tree.numLeaves())
                    return "classify out of range on row " +
                        std::to_string(r);
                if (!std::isfinite(tree.predict(data.row(r))))
                    return "non-finite prediction on row " +
                        std::to_string(r);
            }
            return std::nullopt;
        });
    WCT_EXPECT_PROP(result, config);
}

TEST(ModelTreeProp, SerializeRoundTripPreservesPredictions)
{
    const Config config = Config::fromEnv(0x53f1, 100);
    const CheckResult result = prop::check<Dataset>(
        config, prop::datasets(defaultShape()),
        [](const Dataset &data) -> std::optional<std::string> {
            const ModelTree tree =
                ModelTree::train(data, "y", smallTreeConfig());
            std::stringstream buffer;
            tree.save(buffer);
            const ModelTree loaded = ModelTree::load(buffer);
            if (loaded.numLeaves() != tree.numLeaves())
                return "leaf count changed across round-trip";
            for (std::size_t r = 0; r < data.numRows(); ++r) {
                const double before = tree.predict(data.row(r));
                const double after = loaded.predict(data.row(r));
                // %.17g serialization round-trips doubles exactly.
                if (std::abs(before - after) >
                    1e-12 * std::max(1.0, std::abs(before)))
                    return "row " + std::to_string(r) +
                        " prediction " + prop::showDouble(before) +
                        " became " + prop::showDouble(after);
            }
            return std::nullopt;
        });
    WCT_EXPECT_PROP(result, config);
}

TEST(ModelTreeProp, TrainingIsDeterministic)
{
    const Config config = Config::fromEnv(0xde7e, 100);
    const CheckResult result = prop::check<Dataset>(
        config, prop::datasets(defaultShape()),
        [](const Dataset &data) -> std::optional<std::string> {
            const ModelTree first =
                ModelTree::train(data, "y", smallTreeConfig());
            const ModelTree second =
                ModelTree::train(data, "y", smallTreeConfig());
            if (first.describe() != second.describe())
                return "two trainings on identical data disagree";
            return std::nullopt;
        });
    WCT_EXPECT_PROP(result, config);
}

TEST(ModelTreeProp, PredictorPermutationLeavesPredictionsInvariant)
{
    // Reordering predictor columns relabels attributes but must not
    // change what the tree computes. Model simplification is disabled
    // because its greedy elimination compares nearly equal errors
    // whose rounding depends on attribute order.
    const Config config = Config::fromEnv(0x9e2a, 100);
    prop::DatasetGenConfig shape = defaultShape();
    shape.minPredictors = 2;
    const CheckResult result = prop::check<Dataset>(
        config, prop::datasets(shape),
        [](const Dataset &data) -> std::optional<std::string> {
            ModelTreeConfig tree_config = smallTreeConfig();
            tree_config.simplifyModels = false;
            tree_config.smooth = false;
            const ModelTree base =
                ModelTree::train(data, "y", tree_config);

            // Reverse the predictors; keep the target in place.
            std::vector<std::string> order(
                data.columnNames().begin(),
                data.columnNames().end() - 1);
            std::reverse(order.begin(), order.end());
            order.push_back("y");
            const Dataset permuted = data.selectColumns(order);
            const ModelTree moved =
                ModelTree::train(permuted, "y", tree_config);

            if (base.numLeaves() != moved.numLeaves())
                return "leaf count changed under permutation: " +
                    std::to_string(base.numLeaves()) + " vs " +
                    std::to_string(moved.numLeaves());
            const double tol = 1e-6 * targetRange(data);
            for (std::size_t r = 0; r < data.numRows(); ++r) {
                const double want = base.predict(data.row(r));
                const double got = moved.predict(permuted.row(r));
                if (std::abs(want - got) > tol)
                    return "row " + std::to_string(r) +
                        " prediction " + prop::showDouble(want) +
                        " vs permuted " + prop::showDouble(got);
            }
            return std::nullopt;
        });
    WCT_EXPECT_PROP(result, config);
}

TEST(ModelTreeProp, LabelScalingIsEquivariant)
{
    // Training on a*y (a > 0) must scale every prediction by a: SDR,
    // OLS, and pruning errors all scale uniformly. Requires
    // clampPredictions off (the clamp range scales, but its margin
    // arithmetic need not commute exactly) and no simplification
    // (near-tie eliminations flip under scaled rounding).
    const Config config = Config::fromEnv(0x5ca1, 100);
    const CheckResult result = prop::check<Dataset>(
        config, prop::datasets(defaultShape()),
        [](const Dataset &data) -> std::optional<std::string> {
            ModelTreeConfig tree_config = smallTreeConfig();
            tree_config.clampPredictions = false;
            tree_config.simplifyModels = false;
            tree_config.smooth = false;
            const double a = 3.0;

            Dataset scaled = data;
            const std::size_t target_col = data.numColumns() - 1;
            for (std::size_t r = 0; r < scaled.numRows(); ++r)
                scaled.at(r, target_col) *= a;

            const ModelTree base =
                ModelTree::train(data, "y", tree_config);
            const ModelTree stretched =
                ModelTree::train(scaled, "y", tree_config);

            if (base.numLeaves() != stretched.numLeaves())
                return "leaf count changed under scaling: " +
                    std::to_string(base.numLeaves()) + " vs " +
                    std::to_string(stretched.numLeaves());
            const double tol = 1e-6 * a * targetRange(data);
            for (std::size_t r = 0; r < data.numRows(); ++r) {
                const double want = a * base.predict(data.row(r));
                const double got = stretched.predict(data.row(r));
                if (std::abs(want - got) > tol)
                    return "row " + std::to_string(r) + ": a*f(x) " +
                        prop::showDouble(want) + " vs f_scaled(x) " +
                        prop::showDouble(got);
            }
            return std::nullopt;
        });
    WCT_EXPECT_PROP(result, config);
}

TEST(ModelTreeProp, PredictionsAreAffineWithinALeaf)
{
    // A (smoothed) leaf carries one linear model, so prediction must
    // be affine on any segment that stays inside the leaf:
    // f((u+v)/2) = (f(u)+f(v))/2.
    const Config config = Config::fromEnv(0xaf1e, 100);
    const CheckResult result = prop::check<Dataset>(
        config, prop::datasets(defaultShape()),
        [](const Dataset &data) -> std::optional<std::string> {
            ModelTreeConfig tree_config = smallTreeConfig();
            tree_config.clampPredictions = false;
            const ModelTree tree =
                ModelTree::train(data, "y", tree_config);
            const std::size_t p = data.numColumns() - 1;
            std::size_t checked = 0;
            for (std::size_t r = 0;
                 r < data.numRows() && checked < 8; ++r) {
                std::vector<double> u(data.row(r).begin(),
                                      data.row(r).end());
                std::vector<double> v = u;
                std::vector<double> mid = u;
                for (std::size_t c = 0; c < p; ++c) {
                    v[c] += 1e-4;
                    mid[c] += 0.5e-4;
                }
                const std::size_t leaf = tree.classify(u);
                if (tree.classify(v) != leaf ||
                    tree.classify(mid) != leaf)
                    continue; // straddles a split boundary
                ++checked;
                const double expect =
                    0.5 * (tree.predict(u) + tree.predict(v));
                const double got = tree.predict(mid);
                if (std::abs(got - expect) >
                    1e-9 * std::max(1.0, std::abs(expect)))
                    return "midpoint " + prop::showDouble(got) +
                        " vs chord " + prop::showDouble(expect) +
                        " at row " + std::to_string(r);
            }
            return std::nullopt;
        });
    WCT_EXPECT_PROP(result, config);
}

} // namespace
} // namespace wct
