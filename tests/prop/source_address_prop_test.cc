/**
 * @file
 * Property tests of the workload source's address perturbations: a
 * split access must actually cross a 64-byte line, a misaligned
 * access must actually be misaligned, and neither perturbation may
 * push an access outside the phase's data footprint. (The original
 * code added `+ 64 - align/2` without folding back at the footprint
 * edge and degenerated to a no-op for narrow accesses.)
 */

#include <gtest/gtest.h>

#include <optional>
#include <sstream>

#include "tests/support/prop.hh"
#include "workload/source.hh"

namespace wct
{
namespace
{

/**
 * Single-phase benchmark tuned so every load/store draws a fresh
 * address from dataAddress(): alias/overlap redirections off, memory
 * ops dominant. All regions then start at kDataBase and the phase's
 * footprint bounds every access.
 */
prop::Gen<BenchmarkProfile>
addressBenches()
{
    prop::Gen<BenchmarkProfile> gen;
    gen.generate = [](Rng &rng) {
        BenchmarkProfile b;
        b.name = "prop.addr";
        PhaseProfile p;
        p.name = "only";
        p.loadFrac = 0.45;
        p.storeFrac = 0.25;
        p.branchFrac = 0.05;
        p.aliasFrac = 0.0;
        p.overlapFrac = 0.0;
        p.accessSize = static_cast<std::uint8_t>(
            4 << rng.uniformInt(3)); // 4, 8, or 16
        p.streamFrac = rng.uniform();
        p.hotFrac = rng.uniform();
        // Footprints from one line up to a few MB; hot subset at
        // least two lines so a split can always fold back inside.
        p.hotBytes = std::uint64_t(128) << rng.uniformInt(8);
        p.dataFootprint = p.hotBytes << rng.uniformInt(6);
        b.phases = {p};
        return b;
    };
    gen.show = [](const BenchmarkProfile &b) {
        const PhaseProfile &p = b.phases[0];
        std::ostringstream out;
        out << "accessSize=" << int(p.accessSize)
            << " dataFootprint=" << p.dataFootprint
            << " hotBytes=" << p.hotBytes
            << " streamFrac=" << prop::showDouble(p.streamFrac)
            << " hotFrac=" << prop::showDouble(p.hotFrac);
        return out.str();
    };
    return gen;
}

bool
isMemoryOp(const Inst &inst)
{
    return inst.cls == InstClass::Load ||
        inst.cls == InstClass::Store;
}

TEST(SourceAddressProp, SplitAccessesCrossALineAndStayInFootprint)
{
    const auto config = prop::Config::fromEnv(0x5411f, 60);
    const auto gen = addressBenches();
    const auto result = prop::check<BenchmarkProfile>(
        config, gen,
        [](const BenchmarkProfile &bench)
            -> std::optional<std::string> {
            BenchmarkProfile b = bench;
            b.phases[0].splitFrac = 1.0;
            b.phases[0].misalignFrac = 0.0;
            WorkloadSource source(b, 0xfeed);
            const std::uint64_t size = b.phases[0].accessSize;
            const std::uint64_t footprint =
                b.phases[0].dataFootprint;
            for (int i = 0; i < 4000; ++i) {
                const Inst inst = source.next();
                if (!isMemoryOp(inst))
                    continue;
                const std::uint64_t first = inst.addr / 64;
                const std::uint64_t last =
                    (inst.addr + size - 1) / 64;
                if (first == last) {
                    std::ostringstream msg;
                    msg << "access at " << std::hex << inst.addr
                        << " of " << std::dec << size
                        << " bytes does not cross a line";
                    return msg.str();
                }
                if (inst.addr < WorkloadSource::kDataBase ||
                    inst.addr + size >
                        WorkloadSource::kDataBase + footprint) {
                    std::ostringstream msg;
                    msg << "access at " << std::hex << inst.addr
                        << " escapes the " << std::dec << footprint
                        << "-byte footprint";
                    return msg.str();
                }
            }
            return std::nullopt;
        });
    WCT_EXPECT_PROP(result, config);
}

TEST(SourceAddressProp, MisalignedAccessesAreMisalignedAndBounded)
{
    const auto config = prop::Config::fromEnv(0x3154l, 60);
    const auto gen = addressBenches();
    const auto result = prop::check<BenchmarkProfile>(
        config, gen,
        [](const BenchmarkProfile &bench)
            -> std::optional<std::string> {
            BenchmarkProfile b = bench;
            b.phases[0].splitFrac = 0.0;
            b.phases[0].misalignFrac = 1.0;
            WorkloadSource source(b, 0xfeed);
            const std::uint64_t size = b.phases[0].accessSize;
            const std::uint64_t footprint =
                b.phases[0].dataFootprint;
            for (int i = 0; i < 4000; ++i) {
                const Inst inst = source.next();
                if (!isMemoryOp(inst))
                    continue;
                if (inst.addr % size == 0) {
                    std::ostringstream msg;
                    msg << "access at " << std::hex << inst.addr
                        << " is still " << std::dec << size
                        << "-byte aligned";
                    return msg.str();
                }
                if (inst.addr < WorkloadSource::kDataBase ||
                    inst.addr + size >
                        WorkloadSource::kDataBase + footprint) {
                    std::ostringstream msg;
                    msg << "access at " << std::hex << inst.addr
                        << " escapes the " << std::dec << footprint
                        << "-byte footprint";
                    return msg.str();
                }
            }
            return std::nullopt;
        });
    WCT_EXPECT_PROP(result, config);
}

TEST(SourceAddressProp, UnperturbedAccessesStayAligned)
{
    // With both perturbation fractions at zero, every address is a
    // multiple of the access size and inside the footprint — and the
    // perturbation code must not consume any RNG draws (covered by
    // the determinism suite via byte-identity).
    const auto config = prop::Config::fromEnv(0xa113, 40);
    const auto gen = addressBenches();
    const auto result = prop::check<BenchmarkProfile>(
        config, gen,
        [](const BenchmarkProfile &bench)
            -> std::optional<std::string> {
            BenchmarkProfile b = bench;
            b.phases[0].splitFrac = 0.0;
            b.phases[0].misalignFrac = 0.0;
            WorkloadSource source(b, 0xfeed);
            const std::uint64_t size = b.phases[0].accessSize;
            for (int i = 0; i < 2000; ++i) {
                const Inst inst = source.next();
                if (!isMemoryOp(inst))
                    continue;
                if (inst.addr % size != 0)
                    return "unperturbed access is misaligned";
            }
            return std::nullopt;
        });
    WCT_EXPECT_PROP(result, config);
}

} // namespace
} // namespace wct
