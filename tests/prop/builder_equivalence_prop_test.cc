/**
 * @file
 * Differential property: the three tree-building engines (Serial
 * reference, Presorted, Parallel work-stealing) must produce
 * byte-identical trees — compared via the %.17g serialize format, so
 * "identical" means every count, split threshold, mean, sd, and model
 * coefficient agrees to the last bit. This is the determinism
 * guarantee docs/performance.md promises and the perf-smoke gate
 * assumes.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "mtree/model_tree.hh"
#include "tests/support/prop.hh"
#include "util/thread_pool.hh"

namespace wct
{
namespace
{

using prop::CheckResult;
using prop::Config;

/** Small-leaf config so modest random datasets still grow trees. */
ModelTreeConfig
smallTreeConfig()
{
    ModelTreeConfig config;
    config.minLeafInstances = 6;
    return config;
}

prop::DatasetGenConfig
defaultShape()
{
    prop::DatasetGenConfig shape;
    shape.minRows = 30;
    shape.maxRows = 160;
    shape.noise = 0.1;
    return shape;
}

std::string
serialized(const Dataset &data, const ModelTreeConfig &base,
           TreeBuilderKind builder)
{
    ModelTreeConfig config = base;
    config.builder = builder;
    const ModelTree tree = ModelTree::train(data, "y", config);
    std::ostringstream out;
    tree.save(out);
    return out.str();
}

std::optional<std::string>
checkEngines(const Dataset &data, const ModelTreeConfig &config)
{
    const std::string serial =
        serialized(data, config, TreeBuilderKind::Serial);
    const std::string presorted =
        serialized(data, config, TreeBuilderKind::Presorted);
    const std::string parallel =
        serialized(data, config, TreeBuilderKind::Parallel);
    if (serial != presorted)
        return "presorted tree differs from the serial reference";
    if (serial != parallel)
        return "parallel tree differs from the serial reference";
    return std::nullopt;
}

TEST(BuilderEquivalenceProp, EnginesSerializeIdenticallyDefaults)
{
    // Pin 4 workers regardless of the host so the Parallel engine
    // actually runs concurrently even on a single-core CI box.
    ThreadPool::resetGlobalForTest(4);
    const Config config = Config::fromEnv(0xb11d, 100);
    const CheckResult result = prop::check<Dataset>(
        config, prop::datasets(defaultShape()),
        [](const Dataset &data) {
            return checkEngines(data, smallTreeConfig());
        });
    WCT_EXPECT_PROP(result, config);
}

TEST(BuilderEquivalenceProp, EnginesSerializeIdenticallyUnsmoothed)
{
    // No smoothing / no simplification / constant leaves exercise the
    // other fit paths; duplicate-heavy attributes stress the stable
    // tie handling in the split kernels.
    ThreadPool::resetGlobalForTest(4);
    const Config config = Config::fromEnv(0xec01, 60);
    const CheckResult result = prop::check<Dataset>(
        config, prop::datasets(defaultShape()),
        [](const Dataset &raw) -> std::optional<std::string> {
            // Quantize the predictors to a coarse grid so that most
            // attribute values repeat: ties are where stable ordering
            // between the engines could diverge.
            Dataset data = raw;
            for (std::size_t r = 0; r < data.numRows(); ++r)
                for (std::size_t c = 0; c + 1 < data.numColumns();
                     ++c)
                    data.at(r, c) = std::round(data.at(r, c));

            ModelTreeConfig plain = smallTreeConfig();
            plain.smooth = false;
            plain.simplifyModels = false;
            if (auto fail = checkEngines(data, plain))
                return "unsmoothed: " + *fail;

            ModelTreeConfig constant = smallTreeConfig();
            constant.constantLeaves = true;
            if (auto fail = checkEngines(data, constant))
                return "constant-leaves: " + *fail;
            return std::nullopt;
        });
    WCT_EXPECT_PROP(result, config);
}

TEST(BuilderEquivalenceProp, ParallelDegradesToPresortedWithoutWorkers)
{
    // WCT_THREADS=1 semantics: a thread-less global pool must leave
    // the Parallel engine bit-identical too (it runs the presorted
    // path inline).
    ThreadPool::resetGlobalForTest(0);
    const Config config = Config::fromEnv(0x1e55, 40);
    const CheckResult result = prop::check<Dataset>(
        config, prop::datasets(defaultShape()),
        [](const Dataset &data) {
            return checkEngines(data, smallTreeConfig());
        });
    ThreadPool::resetGlobalForTest(
        ThreadPool::configuredThreads() <= 1
            ? 0
            : ThreadPool::configuredThreads());
    WCT_EXPECT_PROP(result, config);
}

} // namespace
} // namespace wct
