/**
 * @file
 * The compiled-evaluation contract, checked over randomized trees and
 * datasets: CompiledTree — scalar, block, and through the parallel
 * predictAll/classifyAll fronts at several pool sizes — must be
 * *bit-identical* to the interpreted ModelTree walk. Not "close":
 * identical. The serving determinism guarantee (docs/serving.md) and
 * the artifact-store reproducibility story both stand on this, so the
 * comparison is on std::bit_cast'd payloads, never on |a - b|.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mtree/compiled_tree.hh"
#include "mtree/model_tree.hh"
#include "tests/support/prop.hh"
#include "util/thread_pool.hh"

namespace wct
{
namespace
{

using prop::CheckResult;
using prop::Config;

/** Small-leaf config so modest random datasets still grow trees. */
ModelTreeConfig
smallTreeConfig()
{
    ModelTreeConfig config;
    config.minLeafInstances = 6;
    return config;
}

prop::DatasetGenConfig
defaultShape()
{
    prop::DatasetGenConfig shape;
    shape.minRows = 30;
    shape.maxRows = 160;
    shape.noise = 0.1;
    return shape;
}

bool
sameBits(double a, double b)
{
    return std::bit_cast<std::uint64_t>(a) ==
        std::bit_cast<std::uint64_t>(b);
}

/**
 * Probe rows: the training rows plus deterministic perturbations
 * that push rows across split boundaries and outside the training
 * range (where the clamp engages).
 */
Dataset
probeRows(const Dataset &data)
{
    Dataset probe = data;
    const std::size_t p = data.numColumns() - 1;
    for (std::size_t r = 0; r < data.numRows(); ++r) {
        std::vector<double> shifted(data.row(r).begin(),
                                    data.row(r).end());
        std::vector<double> extreme = shifted;
        for (std::size_t c = 0; c < p; ++c) {
            shifted[c] += 0.37 * (c % 2 == 0 ? 1.0 : -1.0);
            extreme[c] *= 100.0;
        }
        probe.addRow(shifted);
        probe.addRow(extreme);
    }
    return probe;
}

TEST(CompiledTreeProp, ScalarAndBlockMatchInterpretedBitForBit)
{
    const Config config = Config::fromEnv(0xc0de, 100);
    const CheckResult result = prop::check<Dataset>(
        config, prop::datasets(defaultShape()),
        [](const Dataset &data) -> std::optional<std::string> {
            const ModelTree tree =
                ModelTree::train(data, "y", smallTreeConfig());
            const CompiledTree &compiled = tree.compiled();
            const Dataset probe = probeRows(data);
            const std::size_t n = probe.numRows();
            const std::size_t cols = probe.numColumns();

            // Scalar front.
            for (std::size_t r = 0; r < n; ++r) {
                const auto row = probe.row(r);
                if (!sameBits(tree.predict(row),
                              compiled.predict(row)))
                    return "scalar predict differs on row " +
                        std::to_string(r) + ": interpreted " +
                        prop::showDouble(tree.predict(row)) +
                        " vs compiled " +
                        prop::showDouble(compiled.predict(row));
                if (tree.classify(row) != compiled.classify(row))
                    return "scalar classify differs on row " +
                        std::to_string(r);
            }

            // Block front, in one call spanning several tiles.
            std::vector<double> cpi(n);
            std::vector<std::uint32_t> leaf(n);
            compiled.evaluateBlock(probe.row(0).data(), cols, n,
                                   cpi.data(), leaf.data());
            for (std::size_t r = 0; r < n; ++r) {
                const auto row = probe.row(r);
                if (!sameBits(cpi[r], tree.predict(row)))
                    return "block predict differs on row " +
                        std::to_string(r);
                if (leaf[r] != tree.classify(row))
                    return "block classify differs on row " +
                        std::to_string(r);
            }
            return std::nullopt;
        });
    WCT_EXPECT_PROP(result, config);
}

TEST(CompiledTreeProp, ParallelFrontsAreThreadCountInvariant)
{
    // predictAll/classifyAll fan blocks over the global pool; the
    // result must be the interpreted per-row answer bit for bit at
    // *any* worker count (WCT_THREADS 1, 4, and the configured
    // value), because every row writes a pre-sized slot of its own.
    const Config config = Config::fromEnv(0xb10c, 60);
    const CheckResult result = prop::check<Dataset>(
        config, prop::datasets(defaultShape()),
        [](const Dataset &data) -> std::optional<std::string> {
            const ModelTree tree =
                ModelTree::train(data, "y", smallTreeConfig());
            const Dataset probe = probeRows(data);

            std::vector<double> want(probe.numRows());
            std::vector<std::size_t> want_leaf(probe.numRows());
            for (std::size_t r = 0; r < probe.numRows(); ++r) {
                want[r] = tree.predict(probe.row(r));
                want_leaf[r] = tree.classify(probe.row(r));
            }

            const std::size_t pool_sizes[] = {
                0, 4, ThreadPool::configuredThreads()};
            for (const std::size_t workers : pool_sizes) {
                ThreadPool::resetGlobalForTest(workers);
                const std::vector<double> got =
                    tree.predictAll(probe);
                const std::vector<std::size_t> got_leaf =
                    tree.classifyAll(probe);
                for (std::size_t r = 0; r < probe.numRows(); ++r) {
                    if (!sameBits(got[r], want[r]))
                        return "predictAll differs at " +
                            std::to_string(workers) +
                            " workers on row " + std::to_string(r) +
                            ": " + prop::showDouble(want[r]) +
                            " vs " + prop::showDouble(got[r]);
                    if (got_leaf[r] != want_leaf[r])
                        return "classifyAll differs at " +
                            std::to_string(workers) +
                            " workers on row " + std::to_string(r);
                }
            }
            return std::nullopt;
        });
    // Leave the pool the way other tests expect to find it.
    ThreadPool::resetGlobalForTest(
        ThreadPool::configuredThreads() <= 1
            ? 0
            : ThreadPool::configuredThreads());
    WCT_EXPECT_PROP(result, config);
}

} // namespace
} // namespace wct
