/**
 * @file
 * Metric properties of the L1 profile distance (Equation 4): the
 * differential check against the brute-force oracle plus the
 * symmetry, identity, range, and triangle-inequality laws a distance
 * must satisfy.
 */

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <string>
#include <vector>

#include "core/profile_table.hh"
#include "tests/support/oracles.hh"
#include "tests/support/prop.hh"

namespace wct
{
namespace
{

using prop::CheckResult;
using prop::Config;
using prop::Gen;

constexpr std::size_t kLeaves = 8;

BenchmarkProfileRow
makeRow(const std::vector<double> &percent)
{
    BenchmarkProfileRow row;
    row.name = "bench";
    row.percent = percent;
    return row;
}

/** A triple of leaf distributions over the same leaf set. */
Gen<std::array<std::vector<double>, 3>>
profileTriples()
{
    const Gen<std::vector<double>> one = prop::leafDistribution(kLeaves);
    Gen<std::array<std::vector<double>, 3>> gen;
    gen.generate = [one](Rng &rng) {
        return std::array<std::vector<double>, 3>{
            one.generate(rng), one.generate(rng), one.generate(rng)};
    };
    gen.show = [](const std::array<std::vector<double>, 3> &triple) {
        return "a=" + prop::showVector(triple[0]) +
            "\n    b=" + prop::showVector(triple[1]) +
            "\n    c=" + prop::showVector(triple[2]);
    };
    return gen;
}

TEST(SimilarityProp, DistanceMatchesBruteForceOracle)
{
    const Config config = Config::fromEnv(0xd157, 100);
    const CheckResult result =
        prop::check<std::array<std::vector<double>, 3>>(
            config, profileTriples(),
            [](const std::array<std::vector<double>, 3> &triple)
                -> std::optional<std::string> {
                const double got = ProfileTable::distance(
                    makeRow(triple[0]), makeRow(triple[1]));
                const double want =
                    oracle::l1ProfileDistance(triple[0], triple[1]);
                if (std::abs(got - want) > 1e-9)
                    return "distance " + prop::showDouble(got) +
                        " vs oracle " + prop::showDouble(want);
                return std::nullopt;
            });
    WCT_EXPECT_PROP(result, config);
}

TEST(SimilarityProp, DistanceIsAMetricOnProfiles)
{
    const Config config = Config::fromEnv(0x3371, 100);
    const CheckResult result =
        prop::check<std::array<std::vector<double>, 3>>(
            config, profileTriples(),
            [](const std::array<std::vector<double>, 3> &triple)
                -> std::optional<std::string> {
                const auto row_a = makeRow(triple[0]);
                const auto row_b = makeRow(triple[1]);
                const auto row_c = makeRow(triple[2]);
                const double ab = ProfileTable::distance(row_a, row_b);
                const double ba = ProfileTable::distance(row_b, row_a);
                const double bc = ProfileTable::distance(row_b, row_c);
                const double ac = ProfileTable::distance(row_a, row_c);

                if (ab != ba)
                    return "asymmetric: " + prop::showDouble(ab) +
                        " vs " + prop::showDouble(ba);
                if (ProfileTable::distance(row_a, row_a) != 0.0)
                    return "self-distance nonzero";
                // Profiles sum to 100, so the half-L1 distance lives
                // in [0, 100].
                if (ab < 0.0 || ab > 100.0 + 1e-9)
                    return "out of range: " + prop::showDouble(ab);
                if (ac > ab + bc + 1e-9)
                    return "triangle violated: d(a,c)=" +
                        prop::showDouble(ac) + " > " +
                        prop::showDouble(ab) + " + " +
                        prop::showDouble(bc);
                return std::nullopt;
            });
    WCT_EXPECT_PROP(result, config);
}

TEST(SimilarityProp, DisjointProfilesAreMaximallyDistant)
{
    // Mass on disjoint leaf sets gives the paper's 100% dissimilarity.
    std::vector<double> left(kLeaves, 0.0);
    std::vector<double> right(kLeaves, 0.0);
    left[0] = 60.0;
    left[1] = 40.0;
    right[6] = 25.0;
    right[7] = 75.0;
    EXPECT_NEAR(
        ProfileTable::distance(makeRow(left), makeRow(right)), 100.0,
        1e-12);
}

} // namespace
} // namespace wct
