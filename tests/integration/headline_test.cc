/**
 * @file
 * End-to-end headline reproduction test: runs the real built-in
 * suites at reduced scale through the full pipeline and pins the
 * qualitative findings of the paper (see EXPERIMENTS.md). If a
 * refactor breaks the shape of the reproduction — not just a unit —
 * this is the test that catches it.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/profile_table.hh"
#include "core/suite_model.hh"
#include "core/transferability.hh"
#include "stats/metrics.hh"
#include "workload/suites.hh"

namespace wct
{
namespace
{

struct Fixture
{
    SuiteData cpu_data;
    SuiteData omp_data;
    SuiteModel cpu;
    SuiteModel omp;

    Fixture()
    {
        CollectionConfig config;
        config.intervalInstructions = 8192;
        config.baseIntervals = 250;
        config.warmupInstructions = 1'000'000;
        // Multiplexed, like the paper's five-counter PMU: the noise
        // structure of the measurement is part of the reproduced
        // shape (e.g., which variable wins the OMP tree root).
        config.multiplexed = true;

        cpu_data = collectSuite(specCpu2006(), config);
        config.seed = 0x0317;
        omp_data = collectSuite(specOmp2001(), config);

        SuiteModelConfig mconfig;
        mconfig.trainFraction = 0.25;
        mconfig.tree.minLeafInstances = 25;
        mconfig.tree.minLeafFraction = 0.025;
        cpu = buildSuiteModel(cpu_data, mconfig);
        omp = buildSuiteModel(omp_data, mconfig);
    }
};

const Fixture &
fixture()
{
    static const Fixture f;
    return f;
}

TEST(HeadlineTest, SuiteCpiScales)
{
    // Paper: CPU2006 mean CPI 0.96; OMP2001 1.27 (ours ~15% higher).
    EXPECT_GT(fixture().cpu.meanCpi, 0.75);
    EXPECT_LT(fixture().cpu.meanCpi, 1.35);
    EXPECT_GT(fixture().omp.meanCpi, 1.15);
    EXPECT_LT(fixture().omp.meanCpi, 1.95);
    // OMP runs hotter than CPU2006, as in the paper.
    EXPECT_GT(fixture().omp.meanCpi, fixture().cpu.meanCpi);
}

TEST(HeadlineTest, TreesAreTractable)
{
    // Paper: 24 LMs for CPU2006, 18 for OMP2001.
    EXPECT_GE(fixture().cpu.tree.numLeaves(), 8u);
    EXPECT_LE(fixture().cpu.tree.numLeaves(), 40u);
    EXPECT_GE(fixture().omp.tree.numLeaves(), 6u);
    EXPECT_LE(fixture().omp.tree.numLeaves(), 30u);
}

TEST(HeadlineTest, OmpTreeLeadsWithLoadBlockOverlap)
{
    // Figure 2's root: load blocked by overlapping store. At reduced
    // scale the exact root can shuffle within the top of the tree, so
    // assert LdBlkOlp appears within the first two split levels of
    // some leaf path.
    const auto &tree = fixture().omp.tree;
    bool found = false;
    for (std::size_t leaf = 0; leaf < tree.numLeaves(); ++leaf) {
        const auto path = tree.leafPath(leaf);
        for (std::size_t d = 0; d < std::min<std::size_t>(2,
                                                          path.size());
             ++d) {
            found |= tree.schema()[path[d].attribute] == "LdBlkOlp";
        }
    }
    EXPECT_TRUE(found);
}

TEST(HeadlineTest, CpuTreeDominatedByMemoryHierarchy)
{
    // Figure 1: memory-hierarchy events dominate the split set.
    const auto &tree = fixture().cpu.tree;
    const auto attrs = tree.splitAttributes();
    int memory_events = 0;
    for (std::size_t a : attrs) {
        const std::string &name = tree.schema()[a];
        memory_events += name == "L2Miss" || name == "L1DMiss" ||
            name == "DtlbMiss" || name == "PageWalk" ||
            name == "L1IMiss" || name == "LdBlkOlp" ||
            name == "LdBlkStA" || name == "LdBlkStD";
    }
    EXPECT_GE(memory_events, 2);
    // The root itself is a cache/TLB-pressure event.
    const auto root = tree.leafPath(0)[0];
    const std::string &root_name = tree.schema()[root.attribute];
    EXPECT_TRUE(root_name == "L2Miss" || root_name == "DtlbMiss" ||
                root_name == "L1DMiss")
        << "root split on " << root_name;
}

TEST(HeadlineTest, ComputeClusterIsMutuallySimilar)
{
    // Table III: hmmer/namd/gromacs/calculix/dealII nearly identical.
    const ProfileTable table(fixture().cpu_data, fixture().cpu.tree);
    const std::vector<std::string> cluster = {
        "456.hmmer", "444.namd", "435.gromacs", "454.calculix",
        "447.dealII"};
    // At reduced scale a member can straddle a leaf boundary, so the
    // robust invariant is relative: the cluster is far tighter
    // internally than any member is to the DTLB/L2 extreme.
    double intra_total = 0.0;
    std::size_t pairs = 0;
    for (std::size_t i = 0; i < cluster.size(); ++i) {
        for (std::size_t j = i + 1; j < cluster.size(); ++j) {
            const double d = ProfileTable::distance(
                table.row(cluster[i]), table.row(cluster[j]));
            EXPECT_LT(d, 80.0)
                << cluster[i] << " vs " << cluster[j];
            intra_total += d;
            ++pairs;
        }
    }
    const double intra_mean =
        intra_total / static_cast<double>(pairs);
    double to_mcf_min = 1e9;
    for (const auto &name : cluster)
        to_mcf_min = std::min(
            to_mcf_min, ProfileTable::distance(
                            table.row(name), table.row("429.mcf")));
    EXPECT_LT(intra_mean, 45.0);
    EXPECT_LT(intra_mean, 0.6 * to_mcf_min);
}

TEST(HeadlineTest, ExtremesAreMutuallyDissimilar)
{
    // Table III: mcf / namd / GemsFDTD mutually ~95-100% apart.
    const ProfileTable table(fixture().cpu_data, fixture().cpu.tree);
    EXPECT_GT(ProfileTable::distance(table.row("429.mcf"),
                                     table.row("444.namd")),
              80.0);
    EXPECT_GT(ProfileTable::distance(table.row("429.mcf"),
                                     table.row("459.GemsFDTD")),
              80.0);
    EXPECT_GT(ProfileTable::distance(table.row("444.namd"),
                                     table.row("459.GemsFDTD")),
              80.0);
}

TEST(HeadlineTest, OmpExtremesMatchTableIV)
{
    const ProfileTable table(fixture().omp_data, fixture().omp.tree);
    // art_m is the low-CPI outlier; fma3d_m the overlap+store extreme.
    EXPECT_LT(table.row("330.art_m").meanCpi,
              table.suiteRow().meanCpi * 0.6);
    EXPECT_GT(table.row("328.fma3d_m").meanCpi,
              table.suiteRow().meanCpi * 1.2);
    // fma3d and galgel share the high-CPI leaf family.
    EXPECT_LT(ProfileTable::distance(table.row("328.fma3d_m"),
                                     table.row("318.galgel_m")),
              75.0);
    EXPECT_GT(ProfileTable::distance(table.row("328.fma3d_m"),
                                     table.row("330.art_m")),
              90.0);
}

TEST(HeadlineTest, SameSuiteTransfers)
{
    for (const SuiteModel *model : {&fixture().cpu, &fixture().omp}) {
        const auto report = assessTransferability(
            model->tree, model->train, model->test);
        EXPECT_GT(report.accuracy.correlation, 0.85)
            << model->suiteName;
        EXPECT_FALSE(report.predictionTest.rejectAt(0.01))
            << model->suiteName;
    }
}

TEST(HeadlineTest, CrossSuiteDoesNotTransfer)
{
    const auto cpu_to_omp = assessTransferability(
        fixture().cpu.tree, fixture().cpu.train, fixture().omp.test);
    EXPECT_FALSE(cpu_to_omp.transferableByAccuracy());
    EXPECT_TRUE(cpu_to_omp.cpiTest.rejectAt(0.05));

    const auto omp_to_cpu = assessTransferability(
        fixture().omp.tree, fixture().omp.train, fixture().cpu.test);
    EXPECT_FALSE(omp_to_cpu.transferableByAccuracy());
    EXPECT_TRUE(omp_to_cpu.cpiTest.rejectAt(0.05));
}

TEST(HeadlineTest, LmOneClubConcentration)
{
    // Table II: the five compute benchmarks concentrate (> 60% at
    // this reduced scale) in a shared largest leaf.
    const ProfileTable table(fixture().cpu_data, fixture().cpu.tree);
    for (const char *name :
         {"456.hmmer", "444.namd", "435.gromacs"}) {
        const auto &row = table.row(name);
        const double peak =
            *std::max_element(row.percent.begin(), row.percent.end());
        EXPECT_GT(peak, 60.0) << name;
    }
}

} // namespace
} // namespace wct
