/**
 * @file
 * Tests for row filtering, outlier removal, and winsorising.
 */

#include <gtest/gtest.h>

#include "data/filter.hh"
#include "util/rng.hh"

namespace wct
{
namespace
{

Dataset
withOutliers()
{
    Dataset d({"x", "y"});
    Rng rng(1);
    for (int i = 0; i < 500; ++i)
        d.addRow({rng.normal(10.0, 1.0), static_cast<double>(i)});
    d.addRow({1000.0, 500.0}); // gross outlier
    d.addRow({-990.0, 501.0});
    return d;
}

TEST(FilterTest, PredicateKeepsMatchingRows)
{
    Dataset d({"v"});
    for (int i = 0; i < 10; ++i)
        d.addRow({static_cast<double>(i)});
    const Dataset even = filterRows(
        d, [](std::span<const double> row) {
            return static_cast<int>(row[0]) % 2 == 0;
        });
    EXPECT_EQ(even.numRows(), 5u);
    EXPECT_DOUBLE_EQ(even.at(2, 0), 4.0);
}

TEST(FilterTest, PredicateOrderPreserved)
{
    Dataset d({"v"});
    for (double x : {5.0, 1.0, 7.0, 3.0})
        d.addRow({x});
    const Dataset big = filterRows(
        d, [](std::span<const double> row) { return row[0] > 2.0; });
    ASSERT_EQ(big.numRows(), 3u);
    EXPECT_DOUBLE_EQ(big.at(0, 0), 5.0);
    EXPECT_DOUBLE_EQ(big.at(1, 0), 7.0);
    EXPECT_DOUBLE_EQ(big.at(2, 0), 3.0);
}

TEST(FilterTest, RemoveOutliersDropsExtremes)
{
    const Dataset d = withOutliers();
    const Dataset clean = removeOutliers(d, "x", 4.0);
    EXPECT_EQ(clean.numRows(), d.numRows() - 2);
    const auto summary = clean.summarize(0);
    EXPECT_NEAR(summary.mean, 10.0, 0.3);
    EXPECT_LT(summary.max, 20.0);
    EXPECT_GT(summary.min, 0.0);
}

TEST(FilterTest, RemoveOutliersKeepsCleanData)
{
    Dataset d({"x"});
    Rng rng(2);
    for (int i = 0; i < 300; ++i)
        d.addRow({rng.normal(0.0, 1.0)});
    // At z = 6 nothing in 300 normal draws should fall out.
    EXPECT_EQ(removeOutliers(d, "x", 6.0).numRows(), 300u);
}

TEST(FilterTest, ConstantColumnUntouched)
{
    Dataset d({"k"});
    for (int i = 0; i < 20; ++i)
        d.addRow({7.0});
    EXPECT_EQ(removeOutliers(d, "k", 1.0).numRows(), 20u);
}

TEST(FilterTest, ClampColumnWinsorises)
{
    const Dataset d = withOutliers();
    const Dataset clipped = clampColumn(d, "x", 5.0, 15.0);
    EXPECT_EQ(clipped.numRows(), d.numRows()); // rows preserved
    const auto summary = clipped.summarize(0);
    EXPECT_DOUBLE_EQ(summary.max, 15.0);
    EXPECT_DOUBLE_EQ(summary.min, 5.0);
    // Other columns untouched.
    EXPECT_DOUBLE_EQ(clipped.at(clipped.numRows() - 1, 1), 501.0);
}

TEST(FilterDeathTest, BadArguments)
{
    const Dataset d = withOutliers();
    EXPECT_DEATH(removeOutliers(d, "x", 0.0), "threshold");
    EXPECT_DEATH(clampColumn(d, "x", 2.0, 1.0), "inverted");
    EXPECT_EXIT(removeOutliers(d, "zzz", 1.0),
                ::testing::ExitedWithCode(1), "no column");
}

} // namespace
} // namespace wct
