/**
 * @file
 * Unit tests for Dataset, CSV round-tripping, and splitting.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "data/csv.hh"
#include "data/dataset.hh"
#include "data/split.hh"
#include "util/rng.hh"

namespace wct
{
namespace
{

Dataset
makeSample(std::size_t rows)
{
    Dataset d({"x", "y", "z"});
    for (std::size_t i = 0; i < rows; ++i) {
        d.addRow({static_cast<double>(i), static_cast<double>(i) * 2.0,
                  static_cast<double>(i) * 0.5});
    }
    return d;
}

TEST(DatasetTest, SchemaAndShape)
{
    Dataset d = makeSample(5);
    EXPECT_EQ(d.numColumns(), 3u);
    EXPECT_EQ(d.numRows(), 5u);
    EXPECT_FALSE(d.empty());
    EXPECT_TRUE(d.hasColumn("y"));
    EXPECT_FALSE(d.hasColumn("w"));
    EXPECT_EQ(d.columnIndex("z"), 2u);
}

TEST(DatasetTest, CellAccess)
{
    Dataset d = makeSample(4);
    EXPECT_DOUBLE_EQ(d.at(3, 1), 6.0);
    d.at(3, 1) = 9.0;
    EXPECT_DOUBLE_EQ(d.at(3, 1), 9.0);
    auto row = d.row(2);
    ASSERT_EQ(row.size(), 3u);
    EXPECT_DOUBLE_EQ(row[0], 2.0);
}

TEST(DatasetTest, ColumnExtraction)
{
    Dataset d = makeSample(3);
    const auto y = d.column("y");
    ASSERT_EQ(y.size(), 3u);
    EXPECT_DOUBLE_EQ(y[2], 4.0);
}

TEST(DatasetTest, SelectRowsPreservesOrder)
{
    Dataset d = makeSample(10);
    Dataset s = d.selectRows({7, 2, 2});
    ASSERT_EQ(s.numRows(), 3u);
    EXPECT_DOUBLE_EQ(s.at(0, 0), 7.0);
    EXPECT_DOUBLE_EQ(s.at(1, 0), 2.0);
    EXPECT_DOUBLE_EQ(s.at(2, 0), 2.0);
}

TEST(DatasetTest, SelectColumnsReorders)
{
    Dataset d = makeSample(2);
    Dataset s = d.selectColumns({"z", "x"});
    EXPECT_EQ(s.columnNames(), (std::vector<std::string>{"z", "x"}));
    EXPECT_DOUBLE_EQ(s.at(1, 0), 0.5);
    EXPECT_DOUBLE_EQ(s.at(1, 1), 1.0);
}

TEST(DatasetTest, AppendSameSchema)
{
    Dataset a = makeSample(3);
    Dataset b = makeSample(2);
    a.append(b);
    EXPECT_EQ(a.numRows(), 5u);
    EXPECT_DOUBLE_EQ(a.at(3, 0), 0.0);
}

TEST(DatasetDeathTest, AppendMismatchedSchemaPanics)
{
    Dataset a = makeSample(1);
    Dataset b(std::vector<std::string>{"p"});
    EXPECT_DEATH(a.append(b), "schema");
}

TEST(DatasetDeathTest, DuplicateColumnNamePanics)
{
    EXPECT_DEATH(Dataset({"a", "a"}), "duplicate");
}

TEST(DatasetDeathTest, RowArityPanics)
{
    Dataset d = makeSample(0);
    EXPECT_DEATH(d.addRow({1.0}), "arity");
}

TEST(DatasetTest, SummaryStatistics)
{
    Dataset d({"v"});
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        d.addRow({x});
    const auto s = d.summarize(0);
    EXPECT_EQ(s.count, 8u);
    EXPECT_DOUBLE_EQ(s.mean, 5.0);
    EXPECT_DOUBLE_EQ(s.min, 2.0);
    EXPECT_DOUBLE_EQ(s.max, 9.0);
    EXPECT_NEAR(s.stddev, 2.1380899, 1e-6);
}

TEST(DatasetTest, SummaryOfEmpty)
{
    Dataset d({"v"});
    const auto s = d.summarize(0);
    EXPECT_EQ(s.count, 0u);
    EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(CsvTest, RoundTrip)
{
    Dataset d = makeSample(4);
    std::ostringstream out;
    writeCsv(d, out);
    std::istringstream in(out.str());
    Dataset back = readCsv(in);
    ASSERT_EQ(back.numRows(), d.numRows());
    ASSERT_EQ(back.columnNames(), d.columnNames());
    for (std::size_t r = 0; r < d.numRows(); ++r)
        for (std::size_t c = 0; c < d.numColumns(); ++c)
            EXPECT_DOUBLE_EQ(back.at(r, c), d.at(r, c));
}

TEST(CsvTest, SkipsBlankLines)
{
    std::istringstream in("a,b\n1,2\n\n3,4\n");
    Dataset d = readCsv(in);
    EXPECT_EQ(d.numRows(), 2u);
}

TEST(CsvTest, TrimsWhitespace)
{
    std::istringstream in(" a , b \n 1 , 2 \n");
    Dataset d = readCsv(in);
    EXPECT_EQ(d.columnNames()[0], "a");
    EXPECT_DOUBLE_EQ(d.at(0, 1), 2.0);
}

TEST(CsvDeathTest, NonNumericCellIsFatal)
{
    std::istringstream in("a\nnot_a_number\n");
    EXPECT_EXIT(readCsv(in), ::testing::ExitedWithCode(1), "not a number");
}

TEST(CsvDeathTest, RaggedRowIsFatal)
{
    std::istringstream in("a,b\n1\n");
    EXPECT_EXIT(readCsv(in), ::testing::ExitedWithCode(1), "fields");
}

TEST(SplitTest, SampleIndicesUniqueAndInRange)
{
    Rng rng(5);
    const auto idx = sampleIndices(100, 30, rng);
    EXPECT_EQ(idx.size(), 30u);
    std::set<std::size_t> unique(idx.begin(), idx.end());
    EXPECT_EQ(unique.size(), 30u);
    for (auto i : idx)
        EXPECT_LT(i, 100u);
}

TEST(SplitTest, RandomSplitPartitions)
{
    Dataset d = makeSample(100);
    Rng rng(9);
    const auto split = randomSplit(d, 0.3, rng);
    EXPECT_EQ(split.train.numRows(), 30u);
    EXPECT_EQ(split.test.numRows(), 70u);

    // Every original row id appears exactly once across both parts.
    std::multiset<double> ids;
    for (std::size_t r = 0; r < split.train.numRows(); ++r)
        ids.insert(split.train.at(r, 0));
    for (std::size_t r = 0; r < split.test.numRows(); ++r)
        ids.insert(split.test.at(r, 0));
    EXPECT_EQ(ids.size(), 100u);
    for (std::size_t i = 0; i < 100; ++i)
        EXPECT_EQ(ids.count(static_cast<double>(i)), 1u);
}

TEST(SplitTest, DisjointFractionsAreDisjoint)
{
    Dataset d = makeSample(200);
    Rng rng(11);
    const auto split = disjointFractions(d, 0.1, rng);
    EXPECT_EQ(split.train.numRows(), 20u);
    EXPECT_EQ(split.test.numRows(), 20u);
    std::set<double> train_ids;
    for (std::size_t r = 0; r < split.train.numRows(); ++r)
        train_ids.insert(split.train.at(r, 0));
    for (std::size_t r = 0; r < split.test.numRows(); ++r)
        EXPECT_EQ(train_ids.count(split.test.at(r, 0)), 0u);
}

TEST(SplitTest, SampleFractionClampsToOneRow)
{
    Dataset d = makeSample(3);
    Rng rng(13);
    const Dataset s = sampleFraction(d, 0.01, rng);
    EXPECT_EQ(s.numRows(), 1u);
}

TEST(SplitTest, KFoldCoversAllRows)
{
    Dataset d = makeSample(53);
    Rng rng(17);
    const auto folds = kFold(d, 5, rng);
    ASSERT_EQ(folds.size(), 5u);
    std::size_t total = 0;
    std::set<double> seen;
    for (const auto &fold : folds) {
        total += fold.numRows();
        for (std::size_t r = 0; r < fold.numRows(); ++r)
            seen.insert(fold.at(r, 0));
        // Balanced within one row.
        EXPECT_GE(fold.numRows(), 10u);
        EXPECT_LE(fold.numRows(), 11u);
    }
    EXPECT_EQ(total, 53u);
    EXPECT_EQ(seen.size(), 53u);
}

TEST(SplitTest, DeterministicUnderSeed)
{
    Dataset d = makeSample(40);
    Rng rng1(21);
    Rng rng2(21);
    const auto s1 = randomSplit(d, 0.5, rng1);
    const auto s2 = randomSplit(d, 0.5, rng2);
    ASSERT_EQ(s1.train.numRows(), s2.train.numRows());
    for (std::size_t r = 0; r < s1.train.numRows(); ++r)
        EXPECT_DOUBLE_EQ(s1.train.at(r, 0), s2.train.at(r, 0));
}

} // namespace
} // namespace wct
