/**
 * @file
 * Tests of the WCTSTOR store wire codec (data/store_wire): request
 * and response round trips for every opcode, malformed-payload
 * rejection at each decode guard, and the frame reader's behavior on
 * truncation, corruption, and hostile claimed sizes.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "data/binary_io.hh"
#include "data/store_wire.hh"

namespace wct
{
namespace
{

/** Unwrap one encoded frame back to its payload via the frame
 * reader, asserting the envelope is intact. */
std::string
framePayload(const std::string &frame)
{
    std::istringstream in(frame);
    const auto payload = readStoreFrame(in);
    EXPECT_TRUE(payload.has_value());
    return payload.value_or("");
}

TEST(StoreWireTest, RequestRoundTripsEveryOpcode)
{
    for (const StoreOp op :
         {StoreOp::Load, StoreOp::Store, StoreOp::Stat, StoreOp::List,
          StoreOp::Gc, StoreOp::Ping, StoreOp::Shutdown,
          StoreOp::Remove}) {
        StoreRequest request;
        request.op = op;
        request.id = 0x0123456789abcdefull;
        request.artifact = {"collect-shard", 42};
        request.payload = std::string("artifact bytes \x00\x01", 17);
        request.live = {{"train", 1}, {"mtree", 2}};
        request.graceSeconds = 3600;

        const auto decoded =
            decodeStoreRequest(framePayload(encodeStoreRequest(request)));
        ASSERT_TRUE(decoded.has_value()) << storeOpName(op);
        EXPECT_EQ(decoded->op, op);
        EXPECT_EQ(decoded->id, request.id);
        switch (op) {
          case StoreOp::Load:
          case StoreOp::Stat:
          case StoreOp::Remove:
            EXPECT_EQ(decoded->artifact.kind, "collect-shard");
            EXPECT_EQ(decoded->artifact.key, 42u);
            break;
          case StoreOp::Store:
            EXPECT_EQ(decoded->artifact.kind, "collect-shard");
            EXPECT_EQ(decoded->payload, request.payload);
            break;
          case StoreOp::Gc:
            ASSERT_EQ(decoded->live.size(), 2u);
            EXPECT_EQ(decoded->live[0].kind, "train");
            EXPECT_EQ(decoded->live[1].key, 2u);
            EXPECT_EQ(decoded->graceSeconds, 3600u);
            break;
          default: // Ping / Shutdown / List carry no body.
            break;
        }
    }
}

TEST(StoreWireTest, ResponseRoundTripsBodiesAndErrors)
{
    {
        StoreResponse response;
        response.op = StoreOp::Load;
        response.id = 7;
        response.payload = "the artifact";
        const auto decoded = decodeStoreResponse(
            framePayload(encodeStoreResponse(response)));
        ASSERT_TRUE(decoded.has_value());
        EXPECT_EQ(decoded->status, StoreStatus::Ok);
        EXPECT_EQ(decoded->payload, "the artifact");
    }
    {
        StoreResponse response;
        response.op = StoreOp::Stat;
        response.fileBytes = 123456;
        const auto decoded = decodeStoreResponse(
            framePayload(encodeStoreResponse(response)));
        ASSERT_TRUE(decoded.has_value());
        EXPECT_EQ(decoded->fileBytes, 123456u);
    }
    {
        StoreResponse response;
        response.op = StoreOp::List;
        ArtifactInfo info;
        info.id = {"train", 9};
        info.fileBytes = 77;
        response.artifacts.push_back(info);
        const auto decoded = decodeStoreResponse(
            framePayload(encodeStoreResponse(response)));
        ASSERT_TRUE(decoded.has_value());
        ASSERT_EQ(decoded->artifacts.size(), 1u);
        EXPECT_EQ(decoded->artifacts[0].id.kind, "train");
        EXPECT_EQ(decoded->artifacts[0].fileBytes, 77u);
    }
    {
        StoreResponse response;
        response.op = StoreOp::Gc;
        response.removed = {{"profile", 3}};
        const auto decoded = decodeStoreResponse(
            framePayload(encodeStoreResponse(response)));
        ASSERT_TRUE(decoded.has_value());
        ASSERT_EQ(decoded->removed.size(), 1u);
        EXPECT_EQ(decoded->removed[0].kind, "profile");
    }
    {
        StoreResponse response;
        response.op = StoreOp::Load;
        response.status = StoreStatus::NotFound;
        response.error = "no such artifact";
        const auto decoded = decodeStoreResponse(
            framePayload(encodeStoreResponse(response)));
        ASSERT_TRUE(decoded.has_value());
        EXPECT_EQ(decoded->status, StoreStatus::NotFound);
        EXPECT_EQ(decoded->error, "no such artifact");
        EXPECT_TRUE(decoded->payload.empty());
    }
}

TEST(StoreWireTest, MalformedPayloadsAreRejectedNotFatal)
{
    std::string err;

    // Empty payload / unknown opcode byte.
    EXPECT_FALSE(decodeStoreRequest("", &err).has_value());
    EXPECT_FALSE(decodeStoreRequest(std::string(1, '\x00'), &err)
                     .has_value());
    EXPECT_FALSE(decodeStoreRequest(std::string(1, '\x63'), &err)
                     .has_value());

    // A valid frame truncated at every strict prefix must never
    // decode (no partial request can be mistaken for a full one).
    StoreRequest request;
    request.op = StoreOp::Store;
    request.id = 5;
    request.artifact = {"mtree", 11};
    request.payload = "payload";
    const std::string good =
        framePayload(encodeStoreRequest(request));
    ASSERT_TRUE(decodeStoreRequest(good).has_value());
    for (std::size_t cut = 0; cut < good.size(); ++cut)
        EXPECT_FALSE(decodeStoreRequest(good.substr(0, cut))
                         .has_value())
            << "prefix length " << cut;

    // Trailing garbage after a complete request is hostile too.
    EXPECT_FALSE(decodeStoreRequest(good + "x").has_value());
}

TEST(StoreWireTest, HostileArtifactKindsRejectedAtDecode)
{
    // Kinds become file-name components on the daemon: anything that
    // could escape the store directory dies at the trust boundary.
    for (const std::string &kind : std::vector<std::string>{
             "../../etc/passwd", "a/b", "", std::string(65, 'k'),
             std::string("evil\x01", 5)}) {
        StoreRequest request;
        request.op = StoreOp::Load;
        request.id = 1;
        request.artifact = {kind, 1};
        const std::string payload =
            framePayload(encodeStoreRequest(request));
        EXPECT_FALSE(decodeStoreRequest(payload).has_value())
            << "kind '" << kind << "'";
    }

    // The same guard covers gc live lists.
    StoreRequest gc;
    gc.op = StoreOp::Gc;
    gc.id = 2;
    gc.live = {{"../escape", 1}};
    EXPECT_FALSE(
        decodeStoreRequest(framePayload(encodeStoreRequest(gc)))
            .has_value());
}

TEST(StoreWireTest, HugeClaimedCountsRejectedBeforeAllocation)
{
    // Hand-build a gc request whose claimed live count dwarfs the
    // bytes actually present; the decoder must bound-check the count
    // against remaining() before sizing any vector.
    ByteSink sink;
    sink.putU8(static_cast<std::uint8_t>(StoreOp::Gc));
    sink.putU64(1);              // id
    sink.putU64(0);              // grace
    sink.putU64(1ull << 60);     // claimed live count
    EXPECT_FALSE(decodeStoreRequest(sink.bytes()).has_value());

    ByteSink list;
    list.putU8(static_cast<std::uint8_t>(StoreOp::List));
    list.putU64(1);
    list.putU8(static_cast<std::uint8_t>(StoreStatus::Ok));
    list.putU64(1ull << 60); // claimed artifact count
    EXPECT_FALSE(decodeStoreResponse(list.bytes()).has_value());
}

TEST(StoreWireTest, FrameReaderRejectsTruncationAndCorruption)
{
    StoreRequest request;
    request.op = StoreOp::Ping;
    request.id = 3;
    const std::string frame = encodeStoreRequest(request);

    // Every strict byte prefix of the frame fails to read.
    for (std::size_t cut = 0; cut < frame.size(); ++cut) {
        std::istringstream in(frame.substr(0, cut));
        EXPECT_FALSE(readStoreFrame(in).has_value())
            << "prefix length " << cut;
    }

    // A flipped payload bit breaks the checksum.
    std::string corrupt = frame;
    corrupt.back() = static_cast<char>(corrupt.back() ^ 0x01);
    std::istringstream in(corrupt);
    EXPECT_FALSE(readStoreFrame(in).has_value());

    // Wrong magic: a serving frame is not a store frame.
    std::string wrong_magic = frame;
    wrong_magic[3] = 'X';
    std::istringstream in2(wrong_magic);
    EXPECT_FALSE(readStoreFrame(in2).has_value());
}

TEST(StoreWireTest, OversizedClaimedPayloadRefusedBeforeAllocation)
{
    // Envelope layout: magic8 + version4 + payloadSize8. Claim a
    // payload just past the cap; the reader must refuse before
    // attempting a quarter-GiB allocation.
    StoreRequest request;
    request.op = StoreOp::Ping;
    request.id = 4;
    std::string frame = encodeStoreRequest(request);
    const std::uint64_t claimed = kMaxStoreFramePayload + 1;
    for (int i = 0; i < 8; ++i)
        frame[12 + i] =
            static_cast<char>((claimed >> (8 * i)) & 0xff);
    std::istringstream in(frame);
    EXPECT_FALSE(readStoreFrame(in).has_value());
}

TEST(StoreWireTest, NamesAreStableForLogs)
{
    EXPECT_STREQ(storeOpName(StoreOp::Load), "load");
    EXPECT_STREQ(storeOpName(StoreOp::Gc), "gc");
    EXPECT_STREQ(storeStatusName(StoreStatus::Ok), "ok");
    EXPECT_STREQ(storeStatusName(StoreStatus::MalformedFrame),
                 "malformed-frame");
}

} // namespace
} // namespace wct
