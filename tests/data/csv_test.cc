/**
 * @file
 * Unit tests of the CSV import/export: round-trips through streams
 * and files, whitespace/blank-line handling, and the fatal-error
 * contract on malformed input (user error, exit code 1).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>

#include "data/csv.hh"

namespace wct
{
namespace
{

Dataset
sampleData()
{
    Dataset data({"CPI", "L1DMiss", "BrMiss"});
    data.addRow({0.96, 0.0123, 0.004});
    data.addRow({1.27, 0.0, -3.5});
    data.addRow({2.0, 1e-6, 123456.75});
    return data;
}

TEST(CsvTest, StreamRoundTripPreservesSchemaAndValues)
{
    const Dataset data = sampleData();
    std::stringstream buffer;
    writeCsv(data, buffer);
    const Dataset reloaded = readCsv(buffer);

    ASSERT_EQ(reloaded.columnNames(), data.columnNames());
    ASSERT_EQ(reloaded.numRows(), data.numRows());
    for (std::size_t r = 0; r < data.numRows(); ++r)
        for (std::size_t c = 0; c < data.numColumns(); ++c)
            // Cells are written with 12 significant digits.
            EXPECT_NEAR(reloaded.at(r, c), data.at(r, c),
                        1e-9 * std::max(1.0, std::abs(data.at(r, c))))
                << "cell (" << r << ", " << c << ")";
}

TEST(CsvTest, FileRoundTripPreservesData)
{
    const Dataset data = sampleData();
    const std::string path =
        testing::TempDir() + "wct_csv_test_roundtrip.csv";
    writeCsvFile(data, path);
    const Dataset reloaded = readCsvFile(path);
    ASSERT_EQ(reloaded.columnNames(), data.columnNames());
    ASSERT_EQ(reloaded.numRows(), data.numRows());
    std::remove(path.c_str());
}

TEST(CsvTest, ReaderAcceptsPaddingAndBlankLines)
{
    std::stringstream in(
        "CPI , L1DMiss\n"
        " 1.5 , 0.25 \n"
        "\n"
        "2.5,0.5\n");
    const Dataset data = readCsv(in);
    ASSERT_EQ(data.numRows(), 2u);
    EXPECT_EQ(data.columnNames()[0], "CPI");
    EXPECT_EQ(data.columnNames()[1], "L1DMiss");
    EXPECT_DOUBLE_EQ(data.at(0, 0), 1.5);
    EXPECT_DOUBLE_EQ(data.at(1, 1), 0.5);
}

TEST(CsvTest, HeaderOnlyInputGivesEmptyDataset)
{
    std::stringstream in("CPI,L1DMiss\n");
    const Dataset data = readCsv(in);
    EXPECT_EQ(data.numColumns(), 2u);
    EXPECT_EQ(data.numRows(), 0u);
}

TEST(CsvDeathTest, EmptyInputIsFatal)
{
    std::stringstream in("");
    EXPECT_EXIT(readCsv(in), testing::ExitedWithCode(1),
                "missing header");
}

TEST(CsvDeathTest, WrongFieldCountIsFatal)
{
    std::stringstream in(
        "CPI,L1DMiss\n"
        "1.5,0.25\n"
        "2.5,0.5,0.1\n");
    EXPECT_EXIT(readCsv(in), testing::ExitedWithCode(1),
                "line 3 has 3 fields, expected 2");
}

TEST(CsvDeathTest, NonNumericCellIsFatal)
{
    std::stringstream in(
        "CPI,L1DMiss\n"
        "1.5,fast\n");
    EXPECT_EXIT(readCsv(in), testing::ExitedWithCode(1),
                "is not a number");
}

TEST(CsvDeathTest, TrailingGarbageInCellIsFatal)
{
    std::stringstream in(
        "CPI,L1DMiss\n"
        "1.5,0.25x\n");
    EXPECT_EXIT(readCsv(in), testing::ExitedWithCode(1),
                "is not a number");
}

TEST(CsvDeathTest, UnreadablePathIsFatal)
{
    EXPECT_EXIT(readCsvFile("/nonexistent/wct.csv"),
                testing::ExitedWithCode(1), "cannot open");
}

} // namespace
} // namespace wct
