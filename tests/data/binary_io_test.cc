/**
 * @file
 * Tests for the binary serialization primitives: sink/parser round
 * trips, envelope integrity checking, and the on-disk Dataset format.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "data/binary_io.hh"

namespace wct
{
namespace
{

TEST(ByteSinkParserTest, ScalarsRoundTrip)
{
    ByteSink sink;
    sink.putU8(0xab);
    sink.putU32(0xdeadbeef);
    sink.putU64(0x0123456789abcdefull);
    sink.putDouble(-1.5);
    sink.putDouble(std::numeric_limits<double>::denorm_min());
    sink.putString(std::string("hi\0there", 8)); // embedded NUL kept
    sink.putString("");

    ByteParser parser(sink.bytes());
    std::uint8_t u8 = 0;
    std::uint32_t u32 = 0;
    std::uint64_t u64 = 0;
    double d1 = 0.0, d2 = 0.0;
    std::string s1, s2;
    EXPECT_TRUE(parser.getU8(u8));
    EXPECT_TRUE(parser.getU32(u32));
    EXPECT_TRUE(parser.getU64(u64));
    EXPECT_TRUE(parser.getDouble(d1));
    EXPECT_TRUE(parser.getDouble(d2));
    EXPECT_TRUE(parser.getString(s1));
    EXPECT_TRUE(parser.getString(s2));
    EXPECT_TRUE(parser.atEnd());

    EXPECT_EQ(u8, 0xab);
    EXPECT_EQ(u32, 0xdeadbeefu);
    EXPECT_EQ(u64, 0x0123456789abcdefull);
    EXPECT_EQ(d1, -1.5);
    EXPECT_EQ(d2, std::numeric_limits<double>::denorm_min());
    EXPECT_EQ(s1, std::string("hi\0there", 8));
    EXPECT_EQ(s2, "");
}

TEST(ByteSinkParserTest, NanBitPatternSurvives)
{
    ByteSink sink;
    sink.putDouble(std::nan(""));
    ByteParser parser(sink.bytes());
    double v = 0.0;
    EXPECT_TRUE(parser.getDouble(v));
    EXPECT_TRUE(std::isnan(v));
}

TEST(ByteSinkParserTest, TruncatedReadLatchesFailure)
{
    ByteSink sink;
    sink.putU32(7);
    ByteParser parser(sink.bytes());
    std::uint64_t v = 99;
    EXPECT_FALSE(parser.getU64(v)); // only 4 bytes available
    EXPECT_EQ(v, 0u);
    EXPECT_FALSE(parser.ok());
    // Failure is sticky even for reads that would otherwise fit.
    std::uint8_t b = 0;
    EXPECT_FALSE(parser.getU8(b));
    EXPECT_FALSE(parser.atEnd());
}

TEST(ByteSinkParserTest, HugeStringLengthRejected)
{
    ByteSink sink;
    sink.putU64(~std::uint64_t(0)); // absurd length, no bytes
    ByteParser parser(sink.bytes());
    std::string s;
    EXPECT_FALSE(parser.getString(s));
    EXPECT_FALSE(parser.ok());
}

Dataset
sampleDataset()
{
    Dataset d({"CPI", "Load", "L2"});
    d.addRow({1.25, 0.25, 0.001953125});
    d.addRow({7.5, 0.3, 0.125});
    d.addRow({0.0, 0.0, 0.0});
    return d;
}

TEST(DatasetBinaryTest, RoundTripIsExact)
{
    const Dataset original = sampleDataset();
    std::stringstream stream;
    writeDatasetBinary(stream, original);
    const auto loaded = readDatasetBinary(stream);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->columnNames(), original.columnNames());
    ASSERT_EQ(loaded->numRows(), original.numRows());
    for (std::size_t r = 0; r < original.numRows(); ++r) {
        const auto expect = original.row(r);
        const auto got = loaded->row(r);
        for (std::size_t c = 0; c < original.numColumns(); ++c)
            EXPECT_EQ(got[c], expect[c]) << r << "," << c;
    }
}

TEST(DatasetBinaryTest, EmptyDatasetRoundTrips)
{
    Dataset empty({"CPI"});
    std::stringstream stream;
    writeDatasetBinary(stream, empty);
    const auto loaded = readDatasetBinary(stream);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->numRows(), 0u);
    EXPECT_EQ(loaded->columnNames(), empty.columnNames());
}

TEST(DatasetBinaryTest, BadMagicRejected)
{
    std::stringstream stream;
    writeDatasetBinary(stream, sampleDataset());
    std::string bytes = stream.str();
    bytes[0] ^= 0xff;
    std::istringstream corrupted(bytes);
    EXPECT_FALSE(readDatasetBinary(corrupted).has_value());
}

TEST(DatasetBinaryTest, VersionMismatchRejected)
{
    std::stringstream stream;
    writeDatasetBinary(stream, sampleDataset());
    std::string bytes = stream.str();
    bytes[8] ^= 0x01; // first byte of the little-endian version
    std::istringstream corrupted(bytes);
    EXPECT_FALSE(readDatasetBinary(corrupted).has_value());
}

TEST(DatasetBinaryTest, PayloadBitFlipFailsChecksum)
{
    std::stringstream stream;
    writeDatasetBinary(stream, sampleDataset());
    std::string bytes = stream.str();
    // Flip one payload bit (past the 20-byte header, before the
    // 8-byte trailing checksum).
    bytes[bytes.size() / 2] ^= 0x10;
    std::istringstream corrupted(bytes);
    EXPECT_FALSE(readDatasetBinary(corrupted).has_value());
}

TEST(DatasetBinaryTest, TruncationRejected)
{
    std::stringstream stream;
    writeDatasetBinary(stream, sampleDataset());
    const std::string bytes = stream.str();
    for (const std::size_t keep :
         {std::size_t(4), std::size_t(19), bytes.size() - 1}) {
        std::istringstream truncated(bytes.substr(0, keep));
        EXPECT_FALSE(readDatasetBinary(truncated).has_value())
            << "kept " << keep << " bytes";
    }
}

TEST(DatasetBinaryTest, EveryStrictPrefixRejected)
{
    // Exhaustive truncation sweep across the whole envelope: magic,
    // version, size, payload, and trailing checksum. No strict
    // prefix of a sealed stream may parse.
    std::stringstream stream;
    writeDatasetBinary(stream, sampleDataset());
    const std::string bytes = stream.str();
    for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
        std::istringstream truncated(bytes.substr(0, keep));
        EXPECT_FALSE(readDatasetBinary(truncated).has_value())
            << "kept " << keep << " bytes";
    }
}

TEST(DatasetBinaryTest, OversizedClaimRejected)
{
    // A 20-byte header claiming a payload past kMaxFilePayload must
    // be refused before any buffer is sized to the claim.
    for (const std::uint64_t claimed :
         {kMaxFilePayload + 1, std::uint64_t(1) << 40,
          ~std::uint64_t(0)}) {
        std::ostringstream hostile;
        hostile.write(kDatasetMagic, 8);
        hostile.write(
            reinterpret_cast<const char *>(&kDatasetFormatVersion),
            sizeof kDatasetFormatVersion);
        hostile.write(reinterpret_cast<const char *>(&claimed),
                      sizeof claimed);
        std::istringstream in(hostile.str());
        EXPECT_FALSE(readDatasetBinary(in).has_value())
            << "claimed=" << claimed;
    }
}

TEST(EnvelopeTest, PayloadCapBoundaryIsExact)
{
    // readEnvelope accepts a payload exactly at the caller's cap and
    // refuses one a single byte past it — the budget is a bound on
    // accepted sizes, not a fuzzy threshold.
    const std::string payload(64, 'p');
    std::ostringstream sealed;
    writeEnvelope(sealed, std::string_view(kDatasetMagic, 8),
                  kDatasetFormatVersion, payload);
    const std::string bytes = sealed.str();
    {
        std::istringstream in(bytes);
        const auto atCap =
            readEnvelope(in, std::string_view(kDatasetMagic, 8),
                         kDatasetFormatVersion, payload.size());
        ASSERT_TRUE(atCap.has_value());
        EXPECT_EQ(*atCap, payload);
    }
    {
        std::istringstream in(bytes);
        EXPECT_FALSE(
            readEnvelope(in, std::string_view(kDatasetMagic, 8),
                         kDatasetFormatVersion, payload.size() - 1)
                .has_value());
    }
}

TEST(DatasetBinaryTest, HostileRowCountRejected)
{
    // A checksummed envelope whose payload claims 2^59 rows it does
    // not carry: the row-count bound must fire before reserveRows
    // turns the claim into a giant allocation.
    ByteSink sink;
    sink.putU64(2); // columns
    sink.putString("CPI");
    sink.putString("IPC");
    sink.putU64(std::uint64_t(1) << 59); // rows (none present)
    std::ostringstream sealed;
    writeEnvelope(sealed, std::string_view(kDatasetMagic, 8),
                  kDatasetFormatVersion, sink.bytes());
    std::istringstream in(sealed.str());
    EXPECT_FALSE(readDatasetBinary(in).has_value());
}

TEST(FnvHashTest, KnownVectorsAndChaining)
{
    // Standard FNV-1a 64-bit test vectors.
    EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
    EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
    // Chaining is equivalent to hashing the concatenation.
    EXPECT_EQ(fnv1a64("bc", fnv1a64("a")), fnv1a64("abc"));
}

} // namespace
} // namespace wct
