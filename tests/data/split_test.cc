/**
 * @file
 * Unit tests of data/split: sampling without replacement, the
 * train/test protocols of Section VI (including disjointness, checked
 * via a unique-id column), fold partitioning, and determinism.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "data/split.hh"

namespace wct
{
namespace
{

/** Rows labelled 0..n-1 in an Id column so subsets can be compared. */
Dataset
labelledData(std::size_t n)
{
    Dataset data({"Id", "X"});
    for (std::size_t r = 0; r < n; ++r)
        data.addRow({static_cast<double>(r),
                     static_cast<double>(r % 7)});
    return data;
}

std::set<double>
ids(const Dataset &data)
{
    std::set<double> seen;
    const std::size_t col = data.columnIndex("Id");
    for (std::size_t r = 0; r < data.numRows(); ++r)
        seen.insert(data.at(r, col));
    return seen;
}

TEST(SplitTest, SampleIndicesAreUniqueAndInRange)
{
    Rng rng(0x1d5);
    const auto indices = sampleIndices(100, 30, rng);
    EXPECT_EQ(indices.size(), 30u);
    std::set<std::size_t> unique(indices.begin(), indices.end());
    EXPECT_EQ(unique.size(), 30u);
    for (std::size_t index : indices)
        EXPECT_LT(index, 100u);
}

TEST(SplitTest, SampleFractionRoundsAndNeverReturnsEmpty)
{
    const Dataset data = labelledData(101);
    Rng rng(0xfac);
    EXPECT_EQ(sampleFraction(data, 0.1, rng).numRows(), 10u);
    EXPECT_EQ(sampleFraction(data, 1.0, rng).numRows(), 101u);
    // Tiny fractions are clamped to one row for non-empty input.
    EXPECT_EQ(sampleFraction(data, 1e-6, rng).numRows(), 1u);
}

TEST(SplitTest, RandomSplitPartitionsEveryRow)
{
    const Dataset data = labelledData(100);
    Rng rng(0x9a57);
    const TrainTestSplit split = randomSplit(data, 0.3, rng);
    EXPECT_EQ(split.train.numRows(), 30u);
    EXPECT_EQ(split.test.numRows(), 70u);

    std::set<double> all = ids(split.train);
    for (double id : ids(split.test))
        EXPECT_TRUE(all.insert(id).second)
            << "row " << id << " in both parts";
    EXPECT_EQ(all.size(), 100u);
}

TEST(SplitTest, DisjointFractionsAreDisjointAndEquallySized)
{
    const Dataset data = labelledData(200);
    Rng rng(0xd15);
    const TrainTestSplit split = disjointFractions(data, 0.1, rng);
    EXPECT_EQ(split.train.numRows(), 20u);
    EXPECT_EQ(split.test.numRows(), 20u);

    const std::set<double> train_ids = ids(split.train);
    EXPECT_EQ(train_ids.size(), 20u);
    for (double id : ids(split.test))
        EXPECT_EQ(train_ids.count(id), 0u)
            << "row " << id << " in both fractions";
}

TEST(SplitTest, KFoldPartitionsAllRowsEvenly)
{
    const Dataset data = labelledData(100);
    Rng rng(0xf01d);
    const std::vector<Dataset> folds = kFold(data, 4, rng);
    ASSERT_EQ(folds.size(), 4u);
    std::set<double> all;
    for (const Dataset &fold : folds) {
        EXPECT_EQ(fold.numRows(), 25u);
        for (double id : ids(fold))
            EXPECT_TRUE(all.insert(id).second)
                << "row " << id << " in two folds";
    }
    EXPECT_EQ(all.size(), 100u);
}

TEST(SplitTest, SameSeedIsDeterministicDifferentSeedIsNot)
{
    const Dataset data = labelledData(120);
    Rng first(0xabc);
    Rng second(0xabc);
    Rng third(0xdef);
    const auto split_a = disjointFractions(data, 0.25, first);
    const auto split_b = disjointFractions(data, 0.25, second);
    const auto split_c = disjointFractions(data, 0.25, third);
    EXPECT_EQ(ids(split_a.train), ids(split_b.train));
    EXPECT_NE(ids(split_a.train), ids(split_c.train));
}

TEST(SplitDeathTest, OverlappingFractionsAreRejected)
{
    const Dataset data = labelledData(50);
    Rng rng(0xbad);
    EXPECT_DEATH(disjointFractions(data, 0.6, rng), "");
}

} // namespace
} // namespace wct
