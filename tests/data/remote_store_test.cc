/**
 * @file
 * Tests of the remote artifact store (data/remote_store) against a
 * live `wct store serve` daemon: URL parsing, fleet sharing through
 * one daemon, read-through caching, content re-hash rejection of a
 * tampered payload, LRU eviction under --store-cache-bytes with
 * concurrent readers, daemon-down degradation, cold-cluster vs
 * warm-cluster byte-identity at any WCT_THREADS, and shard-granular
 * invalidation of a single-benchmark config change.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "data/binary_io.hh"
#include "data/remote_store.hh"
#include "data/store_wire.hh"
#include "pipeline/stages.hh"
#include "serve/socket.hh"
#include "serve/store_service.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace wct
{
namespace
{

namespace fs = std::filesystem;

/** Fresh scratch directory, removed on scope exit. */
struct TempDir
{
    fs::path path;

    explicit TempDir(const std::string &tag)
        : path(fs::temp_directory_path() /
               ("wct_remote_test_" + tag + "_" +
                std::to_string(::getpid())))
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }

    ~TempDir() { fs::remove_all(path); }

    std::string file(const std::string &name) const
    {
        return (path / name).string();
    }
};

/** One live store daemon on a Unix socket for a test's duration. */
struct LiveDaemon
{
    serve::StoreService service;
    serve::SocketServer transport;
    std::string url;

    explicit LiveDaemon(const std::string &dir,
                        const std::string &sock,
                        serve::StoreServiceConfig config = {})
        : service(ArtifactStore(dir), config),
          transport(service, socketConfig(sock)), url("unix:" + sock)
    {
        std::string err;
        if (!transport.start(&err))
            ADD_FAILURE() << err;
    }

    ~LiveDaemon() { transport.stop(); }

    static serve::SocketConfig socketConfig(const std::string &sock)
    {
        serve::SocketConfig config;
        config.unixPath = sock;
        config.frameMagic = std::string(kStoreWireMagic, 8);
        config.frameVersion = kStoreWireFormatVersion;
        config.maxFramePayload = kMaxStoreFramePayload;
        return config;
    }
};

/** Remote handle with its own read-through cache directory. */
ArtifactStore
workerStore(const LiveDaemon &daemon, const std::string &cache_dir,
            std::uint64_t cache_bytes = 0)
{
    RemoteStoreConfig config;
    config.url = daemon.url;
    config.cacheDir = cache_dir;
    config.cacheBytes = cache_bytes;
    return makeRemoteStore(config);
}

/** Total .wctart bytes under a cache directory. */
std::uintmax_t
cacheBytesUsed(const fs::path &dir)
{
    std::uintmax_t total = 0;
    for (const auto &entry : fs::directory_iterator(dir))
        if (entry.path().extension() == ".wctart")
            total += fs::file_size(entry.path());
    return total;
}

SuiteProfile
miniSuite()
{
    SuiteProfile suite;
    suite.name = "mini";
    for (int i = 0; i < 3; ++i) {
        BenchmarkProfile b;
        b.name = "mini." + std::to_string(i);
        b.instructionWeight = 0.5 + 0.5 * i;
        PhaseProfile p;
        p.loadFrac = 0.2 + 0.04 * i;
        p.dataFootprint = 1u << (18 + i);
        b.phases.push_back(p);
        suite.benchmarks.push_back(b);
    }
    return suite;
}

CollectionConfig
miniConfig()
{
    CollectionConfig config;
    config.intervalInstructions = 2048;
    config.baseIntervals = 40;
    config.warmupInstructions = 20'000;
    return config;
}

TEST(StoreUrlTest, ParsesUnixAndTcpAndRejectsJunk)
{
    std::string err;
    const auto unix_ep = parseStoreUrl("unix:/tmp/wct.sock", &err);
    ASSERT_TRUE(unix_ep.has_value()) << err;
    EXPECT_EQ(unix_ep->unixPath, "/tmp/wct.sock");
    EXPECT_EQ(unix_ep->tcpPort, 0);

    const auto tcp_ep = parseStoreUrl("tcp:5117", &err);
    ASSERT_TRUE(tcp_ep.has_value()) << err;
    EXPECT_TRUE(tcp_ep->unixPath.empty());
    EXPECT_EQ(tcp_ep->tcpPort, 5117);

    for (const char *bad :
         {"", "unix:", "tcp:", "tcp:0", "tcp:65536", "tcp:12ab",
          "http://host", "tcp:-1", "/just/a/path"})
        EXPECT_FALSE(parseStoreUrl(bad, &err).has_value()) << bad;
}

TEST(RemoteStoreTest, TwoWorkersShareOneDaemon)
{
    const TempDir dir("share");
    fs::create_directories(dir.path / "daemon");
    fs::create_directories(dir.path / "a");
    fs::create_directories(dir.path / "b");
    LiveDaemon daemon(dir.file("daemon"), dir.file("store.sock"));

    const ArtifactId id{"collect-shard", 0xabcdef12u};
    const std::string payload = "shard bytes from worker A";

    // Worker A publishes; the daemon's directory holds the artifact.
    const ArtifactStore a = workerStore(daemon, dir.file("a"));
    ASSERT_TRUE(a.store(id, payload));
    EXPECT_TRUE(
        daemon.service.store().contains(id)); // uploaded, not local

    // Worker B — empty cache — reads it through the daemon.
    const ArtifactStore b = workerStore(daemon, dir.file("b"));
    const auto fetched = b.load(id);
    ASSERT_TRUE(fetched.has_value());
    EXPECT_EQ(*fetched, payload);

    // The fetch landed in B's read-through cache: a second load is
    // served locally even with the daemon gone.
    EXPECT_TRUE(fs::exists(fs::path(b.path(id))));
    const bool quiet = setLogQuiet(true);
    daemon.service.beginShutdown();
    const auto cached = b.load(id);
    setLogQuiet(quiet);
    ASSERT_TRUE(cached.has_value());
    EXPECT_EQ(*cached, payload);
}

TEST(RemoteStoreTest, MissIsNotFoundNotAnError)
{
    const TempDir dir("miss");
    fs::create_directories(dir.path / "daemon");
    fs::create_directories(dir.path / "cache");
    const LiveDaemon daemon(dir.file("daemon"), dir.file("store.sock"));
    const ArtifactStore store = workerStore(daemon, dir.file("cache"));
    EXPECT_FALSE(store.load({"train", 0x404}).has_value());
    EXPECT_FALSE(store.contains({"train", 0x404}));
}

TEST(RemoteStoreTest, TamperedContentPayloadIsRejectedOnFetch)
{
    // A lying daemon serves bytes whose FNV-1a hash does not match
    // the content key of an "mtree" artifact: the fetch must warn and
    // miss (the pipeline recomputes), never return wrong bytes.
    const TempDir dir("tamper");
    fs::create_directories(dir.path / "daemon");
    fs::create_directories(dir.path / "cache");
    const LiveDaemon daemon(dir.file("daemon"), dir.file("store.sock"));

    const std::string genuine = "M5 tree text";
    const ArtifactId id{"mtree", fnv1a64(genuine)};
    // Plant a *different* payload under the genuine content key,
    // directly into the daemon's backing store.
    ASSERT_TRUE(
        daemon.service.store().store(id, "tampered tree text"));

    const ArtifactStore store = workerStore(daemon, dir.file("cache"));
    const bool quiet = setLogQuiet(true);
    const auto fetched = store.load(id);
    setLogQuiet(quiet);
    EXPECT_FALSE(fetched.has_value());
    // The poisoned payload must not have been cached locally.
    EXPECT_FALSE(fs::exists(fs::path(store.path(id))));

    // A non-content kind round-trips untouched: stage-keyed payloads
    // hash inputs, not outputs, so no re-hash applies.
    const ArtifactId stage_id{"collect-shard", 7};
    ASSERT_TRUE(
        daemon.service.store().store(stage_id, "stage payload"));
    EXPECT_TRUE(store.load(stage_id).has_value());

    // And an honest content artifact passes verification.
    const ArtifactId honest{"mtree", fnv1a64(genuine)};
    ASSERT_TRUE(daemon.service.store().remove(honest));
    ASSERT_TRUE(daemon.service.store().store(honest, genuine));
    const auto ok = store.load(honest);
    ASSERT_TRUE(ok.has_value());
    EXPECT_EQ(*ok, genuine);
}

TEST(RemoteStoreTest, LruCacheStaysUnderBoundWithConcurrentReaders)
{
    const TempDir dir("lru");
    fs::create_directories(dir.path / "daemon");
    fs::create_directories(dir.path / "cache");
    const LiveDaemon daemon(dir.file("daemon"), dir.file("store.sock"));

    // Each artifact is ~4 KiB of payload plus envelope overhead; the
    // bound holds roughly four of them.
    constexpr std::uint64_t kBound = 20'000;
    const ArtifactStore store =
        workerStore(daemon, dir.file("cache"), kBound);

    const std::string payload(4096, 'p');
    constexpr int kArtifacts = 16;
    for (int i = 0; i < kArtifacts; ++i)
        ASSERT_TRUE(store.store(
            {"collect-shard", static_cast<std::uint64_t>(i)},
            payload));
    EXPECT_LE(cacheBytesUsed(dir.path / "cache"), kBound);

    // Every artifact survived on the daemon even though the local
    // cache evicted most of them.
    EXPECT_EQ(daemon.service.store().list().size(),
              static_cast<std::size_t>(kArtifacts));

    // Concurrent readers refetch evicted artifacts (each refetch
    // re-caches and may evict others); the bound holds throughout
    // and every read returns the right bytes.
    std::vector<std::thread> readers;
    for (int t = 0; t < 4; ++t)
        readers.emplace_back([&, t] {
            for (int rep = 0; rep < 3; ++rep)
                for (int i = t; i < kArtifacts; i += 4) {
                    const auto loaded = store.load(
                        {"collect-shard",
                         static_cast<std::uint64_t>(i)});
                    ASSERT_TRUE(loaded.has_value()) << i;
                    EXPECT_EQ(*loaded, payload);
                }
        });
    for (std::thread &reader : readers)
        reader.join();
    EXPECT_LE(cacheBytesUsed(dir.path / "cache"), kBound);
}

TEST(RemoteStoreTest, DaemonDownDegradesToLocalCache)
{
    const TempDir dir("down");
    fs::create_directories(dir.path / "cache");
    RemoteStoreConfig config;
    config.url = "unix:" + dir.file("nobody-home.sock");
    config.cacheDir = dir.file("cache");
    const ArtifactStore store = makeRemoteStore(config);

    const ArtifactId id{"train", 321};
    const bool quiet = setLogQuiet(true);
    // Store succeeds locally (the upload is best-effort)...
    EXPECT_TRUE(store.store(id, "local only"));
    // ...and load serves it from the cache.
    const auto loaded = store.load(id);
    // A genuinely missing artifact is a plain miss, not a crash.
    const auto missing = store.load({"train", 99});
    setLogQuiet(quiet);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(*loaded, "local only");
    EXPECT_FALSE(missing.has_value());
}

TEST(RemoteStoreTest, RemoveListAndGcReachTheDaemon)
{
    const TempDir dir("ops");
    fs::create_directories(dir.path / "daemon");
    fs::create_directories(dir.path / "cache");
    const LiveDaemon daemon(dir.file("daemon"), dir.file("store.sock"));
    const ArtifactStore store = workerStore(daemon, dir.file("cache"));

    ASSERT_TRUE(store.store({"collect-shard", 1}, "one"));
    ASSERT_TRUE(store.store({"collect-shard", 2}, "two"));
    ASSERT_TRUE(store.store({"train", 3}, "three"));

    // list merges the daemon's view (all three artifacts).
    EXPECT_EQ(store.list().size(), 3u);

    // remove deletes on both sides.
    EXPECT_TRUE(store.remove({"collect-shard", 2}));
    EXPECT_FALSE(daemon.service.store().contains({"collect-shard", 2}));
    EXPECT_FALSE(store.load({"collect-shard", 2}).has_value());

    // gc against a live set sweeps the daemon too.
    const std::vector<ArtifactId> live = {{"collect-shard", 1}};
    const auto removed = store.gc(live);
    ASSERT_EQ(removed.size(), 1u);
    EXPECT_EQ(removed[0].kind, "train");
    EXPECT_FALSE(daemon.service.store().contains({"train", 3}));
    EXPECT_TRUE(daemon.service.store().contains({"collect-shard", 1}));
}

TEST(RemoteStoreTest, ColdAndWarmClusterRunsAreByteIdentical)
{
    // Worker A collects cold through the daemon; workers B and C
    // start with empty caches (a "warm cluster" from their point of
    // view) at different thread counts. Everything must be a store
    // hit and byte-identical to the cold run.
    const TempDir dir("cluster");
    fs::create_directories(dir.path / "daemon");
    const LiveDaemon daemon(dir.file("daemon"), dir.file("store.sock"));
    const SuiteProfile suite = miniSuite();
    CollectionConfig config = miniConfig();
    config.shards = 2;

    std::string cold_bytes;
    {
        fs::create_directories(dir.path / "a");
        pipeline::Pipeline pipe{workerStore(daemon, dir.file("a"))};
        const SuiteData data =
            pipeline::collectStage(pipe, suite, config);
        EXPECT_EQ(pipe.cachedCount(), 0u);
        cold_bytes = pipeline::encodeSuiteData(data);
    }

    int worker = 0;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        ThreadPool::resetGlobalForTest(threads);
        const std::string cache =
            dir.file("w" + std::to_string(worker++));
        fs::create_directories(cache);
        pipeline::Pipeline pipe{workerStore(daemon, cache)};
        const SuiteData data =
            pipeline::collectStage(pipe, suite, config);
        EXPECT_TRUE(pipe.allCached()) << "threads=" << threads;
        EXPECT_EQ(pipeline::encodeSuiteData(data), cold_bytes)
            << "threads=" << threads;
    }
    ThreadPool::resetGlobalForTest(0);
}

TEST(RemoteStoreTest, SingleBenchmarkChangeInvalidatesOnlyItsShards)
{
    // The acceptance criterion of shard-granular keys: perturbing one
    // benchmark's profile recomputes exactly that benchmark's shard
    // artifacts; every other shard stays a store hit.
    const TempDir dir("invalidate");
    fs::create_directories(dir.path / "daemon");
    fs::create_directories(dir.path / "warm");
    const LiveDaemon daemon(dir.file("daemon"), dir.file("store.sock"));
    SuiteProfile suite = miniSuite();
    CollectionConfig config = miniConfig();
    config.shards = 2;

    {
        pipeline::Pipeline pipe{workerStore(daemon, dir.file("warm"))};
        pipeline::collectStage(pipe, suite, config);
    }

    // Perturb one benchmark; a fresh worker re-runs the plan.
    suite.benchmarks[1].instructionWeight += 0.25;
    fs::create_directories(dir.path / "fresh");
    pipeline::Pipeline pipe{workerStore(daemon, dir.file("fresh"))};
    pipeline::collectStage(pipe, suite, config);

    const std::size_t total = pipe.runs().size();
    EXPECT_EQ(total, 6u); // 3 benchmarks x 2 shards
    std::size_t misses = 0;
    for (const pipeline::StageRun &run : pipe.runs())
        if (!run.cached) {
            ++misses;
            EXPECT_NE(run.label.find("mini.1"), std::string::npos)
                << run.label;
        }
    EXPECT_EQ(misses, 2u); // both shards of mini.1, nothing else
}

} // namespace
} // namespace wct
