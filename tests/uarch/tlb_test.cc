/**
 * @file
 * Unit tests for the DTLB and page-walk model.
 */

#include <gtest/gtest.h>

#include "uarch/tlb.hh"

namespace wct
{
namespace
{

TlbConfig
smallTlb()
{
    TlbConfig config;
    config.entries = 16;
    config.ways = 4;
    config.pdeEntries = 4;
    return config;
}

TEST(TlbTest, FirstTouchMissesAndWalks)
{
    TlbModel tlb(smallTlb());
    const auto r = tlb.access(0x1000);
    EXPECT_TRUE(r.miss);
    EXPECT_TRUE(r.walk);
    EXPECT_GT(r.walkLatency, 0.0);
}

TEST(TlbTest, SamePageHits)
{
    TlbModel tlb(smallTlb());
    tlb.access(0x1000);
    const auto r = tlb.access(0x1FFF); // same 4 KB page
    EXPECT_FALSE(r.miss);
    EXPECT_FALSE(r.walk);
    EXPECT_DOUBLE_EQ(r.walkLatency, 0.0);
    EXPECT_EQ(tlb.misses(), 1u);
    EXPECT_EQ(tlb.accesses(), 2u);
}

TEST(TlbTest, DistinctPagesMissSeparately)
{
    TlbModel tlb(smallTlb());
    EXPECT_TRUE(tlb.access(0x0000).miss);
    EXPECT_TRUE(tlb.access(0x1000).miss);
    EXPECT_TRUE(tlb.access(0x2000).miss);
    EXPECT_FALSE(tlb.access(0x0000).miss);
}

TEST(TlbTest, PdeCacheShortensNearbyWalks)
{
    TlbModel tlb(smallTlb());
    // First walk in a 2 MB region: long.
    const auto first = tlb.access(0x0000);
    EXPECT_DOUBLE_EQ(first.walkLatency, tlb.config().walkCycles);
    // Second walk in the same 2 MB region: short.
    const auto second = tlb.access(0x1000);
    EXPECT_DOUBLE_EQ(second.walkLatency,
                     tlb.config().shortWalkCycles);
    // A walk in a distant region: long again.
    const auto distant = tlb.access(0x40000000);
    EXPECT_DOUBLE_EQ(distant.walkLatency, tlb.config().walkCycles);
}

TEST(TlbTest, CapacityEviction)
{
    // 16 entries, 4-way, 4 sets: walking 33 pages then returning to
    // the first must miss again.
    TlbModel tlb(smallTlb());
    for (std::uint64_t p = 0; p < 33; ++p)
        tlb.access(p * 4096);
    EXPECT_TRUE(tlb.access(0).miss);
}

TEST(TlbTest, WorkingSetWithinCapacityStaysResident)
{
    TlbModel tlb(smallTlb());
    for (int sweep = 0; sweep < 3; ++sweep)
        for (std::uint64_t p = 0; p < 16; ++p)
            tlb.access(p * 4096);
    EXPECT_EQ(tlb.misses(), 16u);
    EXPECT_NEAR(tlb.missRate(), 16.0 / 48.0, 1e-12);
}

TEST(TlbTest, ResetForgetsTranslations)
{
    TlbModel tlb(smallTlb());
    tlb.access(0x5000);
    tlb.reset();
    EXPECT_EQ(tlb.accesses(), 0u);
    EXPECT_TRUE(tlb.access(0x5000).miss);
}

TEST(TlbDeathTest, BadGeometryPanics)
{
    TlbConfig config;
    config.entries = 10;
    config.ways = 4;
    EXPECT_DEATH(TlbModel{config}, "divisible");
}

} // namespace
} // namespace wct
