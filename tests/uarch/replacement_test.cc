/**
 * @file
 * Tests for the non-LRU replacement policies (FIFO, Random,
 * Tree-PLRU) and cross-policy properties.
 */

#include <gtest/gtest.h>

#include "uarch/cache.hh"
#include "util/rng.hh"

namespace wct
{
namespace
{

CacheConfig
twoWay(ReplacementPolicy policy)
{
    // 2-way, 8 sets.
    return CacheConfig{1024, 64, 2, policy};
}

// Addresses mapping to set 0 of the 8-set cache.
constexpr std::uint64_t kSetStride = 8 * 64;

TEST(FifoTest, HitsDoNotPromote)
{
    CacheModel c(twoWay(ReplacementPolicy::Fifo));
    const std::uint64_t a = 0 * kSetStride;
    const std::uint64_t b = 1 * kSetStride;
    const std::uint64_t d = 2 * kSetStride;

    EXPECT_FALSE(c.access(a)); // fill order: a then b
    EXPECT_FALSE(c.access(b));
    EXPECT_TRUE(c.access(a)); // hit must NOT refresh a's age
    EXPECT_FALSE(c.access(d)); // evicts a (oldest fill), not b
    EXPECT_TRUE(c.access(b));
    EXPECT_FALSE(c.access(a)); // a is gone
}

TEST(LruVsFifoDiverge, PromotionMatters)
{
    // The same sequence where LRU keeps the re-touched line.
    CacheModel lru(twoWay(ReplacementPolicy::Lru));
    const std::uint64_t a = 0 * kSetStride;
    const std::uint64_t b = 1 * kSetStride;
    const std::uint64_t d = 2 * kSetStride;
    lru.access(a);
    lru.access(b);
    lru.access(a);
    lru.access(d); // evicts b under LRU
    EXPECT_TRUE(lru.access(a));
    EXPECT_FALSE(lru.access(b));
}

TEST(RandomTest, DeterministicAcrossRuns)
{
    auto run = [] {
        CacheModel c(twoWay(ReplacementPolicy::Random));
        std::uint64_t misses = 0;
        for (int i = 0; i < 2000; ++i)
            misses += !c.access((i % 5) * kSetStride);
        return misses;
    };
    EXPECT_EQ(run(), run());
}

TEST(RandomTest, EventuallyEvictsEverything)
{
    CacheModel c(twoWay(ReplacementPolicy::Random));
    c.access(0 * kSetStride);
    // Stream many conflicting lines; line 0 must eventually go.
    for (int i = 1; i <= 64; ++i)
        c.access(static_cast<std::uint64_t>(i) * kSetStride);
    EXPECT_FALSE(c.contains(0));
}

TEST(TreePlruTest, SingleSetBehavesLikeLruForTwoWays)
{
    // With 2 ways the PLRU tree is exact LRU.
    CacheModel plru(twoWay(ReplacementPolicy::TreePlru));
    const std::uint64_t a = 0 * kSetStride;
    const std::uint64_t b = 1 * kSetStride;
    const std::uint64_t d = 2 * kSetStride;
    plru.access(a);
    plru.access(b);
    plru.access(a); // a most recent
    plru.access(d); // must evict b
    EXPECT_TRUE(plru.contains(a));
    EXPECT_FALSE(plru.contains(b));
}

TEST(TreePlruTest, NeverEvictsJustTouchedWay)
{
    CacheModel c(CacheConfig{2048, 64, 8, ReplacementPolicy::TreePlru});
    // 4 sets; hammer set 0 with 9 distinct lines.
    const std::uint64_t stride = 4 * 64;
    for (int i = 0; i < 8; ++i)
        c.access(static_cast<std::uint64_t>(i) * stride);
    for (int round = 0; round < 100; ++round) {
        const std::uint64_t fresh =
            static_cast<std::uint64_t>(100 + round) * stride;
        EXPECT_FALSE(c.access(fresh));
        // The line just filled must still be resident.
        EXPECT_TRUE(c.contains(fresh));
    }
}

TEST(TreePlruTest, RejectsNonPowerOfTwoWays)
{
    EXPECT_DEATH(CacheModel(CacheConfig{192 * 64, 64, 3,
                                        ReplacementPolicy::TreePlru}),
                 "power-of-two");
}

// Property sweep: for a looping stream that fits the cache, every
// policy converges to all-hits after the first pass.
class PolicyFitSweep
    : public ::testing::TestWithParam<ReplacementPolicy>
{
};

TEST_P(PolicyFitSweep, ResidentLoopAlwaysHitsAfterWarmup)
{
    CacheModel c(CacheConfig{4096, 64, 4, GetParam()});
    std::uint64_t late_misses = 0;
    for (int pass = 0; pass < 4; ++pass) {
        for (std::uint64_t addr = 0; addr < 4096; addr += 64) {
            const bool hit = c.access(addr);
            if (pass >= 1 && !hit)
                ++late_misses;
        }
    }
    EXPECT_EQ(late_misses, 0u);
}

TEST_P(PolicyFitSweep, StatsConsistent)
{
    CacheModel c(CacheConfig{1024, 64, 2, GetParam()});
    Rng rng(5);
    for (int i = 0; i < 5000; ++i)
        c.access(rng.uniformInt(1 << 16));
    EXPECT_EQ(c.accesses(), 5000u);
    EXPECT_LE(c.misses(), c.accesses());
    EXPECT_GT(c.misses(), 0u);
    c.reset();
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_EQ(c.missRate(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Policies, PolicyFitSweep,
                         ::testing::Values(ReplacementPolicy::Lru,
                                           ReplacementPolicy::Fifo,
                                           ReplacementPolicy::Random,
                                           ReplacementPolicy::TreePlru));

// Thrash property: for a cyclic over-capacity stream, LRU and FIFO
// miss always; Random does strictly better.
TEST(PolicyComparison, RandomBeatsLruOnCyclicThrash)
{
    CacheModel lru(twoWay(ReplacementPolicy::Lru));
    CacheModel rnd(twoWay(ReplacementPolicy::Random));
    std::uint64_t lru_miss = 0;
    std::uint64_t rnd_miss = 0;
    for (int pass = 0; pass < 200; ++pass) {
        for (int i = 0; i < 3; ++i) { // 3 lines in a 2-way set
            const std::uint64_t addr =
                static_cast<std::uint64_t>(i) * kSetStride;
            lru_miss += !lru.access(addr);
            rnd_miss += !rnd.access(addr);
        }
    }
    EXPECT_EQ(lru_miss, 600u); // classic LRU worst case
    EXPECT_LT(rnd_miss, 550u);
}

} // namespace
} // namespace wct
