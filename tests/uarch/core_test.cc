/**
 * @file
 * Integration-style tests for the core timing model: event counting,
 * cycle charging, and the miss-overlap behaviour that produces
 * phase-dependent per-event costs.
 */

#include <gtest/gtest.h>

#include <vector>

#include "uarch/core.hh"

namespace wct
{
namespace
{

/** Replays a fixed vector of instructions, looping. */
class VectorSource : public InstSource
{
  public:
    explicit VectorSource(std::vector<Inst> insts)
        : insts_(std::move(insts))
    {
    }

    Inst
    next() override
    {
        const Inst inst = insts_[pos_];
        pos_ = (pos_ + 1) % insts_.size();
        return inst;
    }

  private:
    std::vector<Inst> insts_;
    std::size_t pos_ = 0;
};

Inst
alu(std::uint64_t pc)
{
    Inst inst;
    inst.pc = pc;
    inst.cls = InstClass::Alu;
    return inst;
}

Inst
load(std::uint64_t pc, std::uint64_t addr, std::uint8_t size = 8,
     std::uint8_t flags = 0)
{
    Inst inst;
    inst.pc = pc;
    inst.addr = addr;
    inst.size = size;
    inst.cls = InstClass::Load;
    inst.flags = flags;
    return inst;
}

TEST(CoreTest, AluOnlyReachesIssueWidthCpi)
{
    CoreModel core{CoreConfig{}};
    // Tiny loop: all in one I-cache line after warmup.
    VectorSource src({alu(0x400), alu(0x404), alu(0x408), alu(0x40c)});
    core.run(src, 10000);
    // One cold L1I miss, otherwise pure issue: CPI -> 1/4.
    EXPECT_NEAR(core.cpi(), 0.25, 0.02);
    EXPECT_EQ(countOf(core.counts(), Event::Instructions), 10000u);
    EXPECT_EQ(countOf(core.counts(), Event::L1IMiss), 1u);
    EXPECT_EQ(countOf(core.counts(), Event::Load), 0u);
}

TEST(CoreTest, EventCountsMatchInstructionMix)
{
    CoreModel core{CoreConfig{}};
    std::vector<Inst> insts;
    for (int i = 0; i < 10; ++i) {
        Inst inst;
        inst.pc = 0x400 + i * 4;
        switch (i % 5) {
          case 0:
            inst.cls = InstClass::Mul;
            break;
          case 1:
            inst.cls = InstClass::Div;
            break;
          case 2:
            inst.cls = InstClass::Simd;
            break;
          case 3:
            inst.cls = InstClass::Branch;
            inst.flags = kFlagTaken;
            break;
          default:
            inst.cls = InstClass::Alu;
        }
        insts.push_back(inst);
    }
    VectorSource src(insts);
    core.run(src, 1000);
    EXPECT_EQ(countOf(core.counts(), Event::Mul), 200u);
    EXPECT_EQ(countOf(core.counts(), Event::Div), 200u);
    EXPECT_EQ(countOf(core.counts(), Event::Simd), 200u);
    EXPECT_EQ(countOf(core.counts(), Event::Br), 200u);
}

TEST(CoreTest, DivsAreExpensive)
{
    CoreModel core{CoreConfig{}};
    VectorSource alu_src({alu(0x400)});
    core.run(alu_src, 5000);
    const double alu_cpi = core.cpi();

    CoreModel div_core{CoreConfig{}};
    Inst div = alu(0x400);
    div.cls = InstClass::Div;
    VectorSource div_src({div});
    div_core.run(div_src, 5000);
    EXPECT_GT(div_core.cpi(), alu_cpi + 10.0);
}

TEST(CoreTest, CacheResidentLoadsAreCheap)
{
    CoreModel core{CoreConfig{}};
    // 8 loads over one cache line.
    std::vector<Inst> insts;
    for (int i = 0; i < 8; ++i)
        insts.push_back(load(0x400 + i * 4, 0x10000 + i * 8));
    VectorSource src(insts);
    core.run(src, 8000);
    EXPECT_LE(countOf(core.counts(), Event::L1DMiss), 1u);
    EXPECT_LE(countOf(core.counts(), Event::DtlbMiss), 1u);
    EXPECT_LT(core.cpi(), 0.3);
}

TEST(CoreTest, DependentL2MissesCostFullLatency)
{
    CoreConfig config;
    CoreModel core(config);
    // Strided dependent loads over a huge footprint: every load
    // misses L1 and L2 and serialises.
    std::vector<Inst> insts;
    constexpr int n = 64;
    for (int i = 0; i < n; ++i) {
        insts.push_back(load(0x400 + (i % 16) * 4,
                             0x1000000 + std::uint64_t(i) * 8209 * 64,
                             8, kFlagDependent));
    }
    // Do not loop: use enough distinct addresses up front.
    VectorSource src(insts);
    core.run(src, n);
    const auto l2 = countOf(core.counts(), Event::L2Miss);
    EXPECT_GT(l2, 50u);
    // Each dependent L2 miss costs ~l2MissCycles: CPI near 180+.
    EXPECT_GT(core.cpi(), config.l2MissCycles * 0.8);
}

TEST(CoreTest, IndependentMissesOverlap)
{
    CoreConfig config;
    CoreModel dependent_core(config);
    CoreModel independent_core(config);

    auto make = [](bool dep, int i) {
        return load(0x400 + (i % 16) * 4,
                    0x1000000 + std::uint64_t(i) * 8209 * 64, 8,
                    dep ? kFlagDependent : 0);
    };
    constexpr int n = 256;
    std::vector<Inst> dep_insts, ind_insts;
    for (int i = 0; i < n; ++i) {
        dep_insts.push_back(make(true, i));
        ind_insts.push_back(make(false, i));
    }
    VectorSource dep_src(dep_insts), ind_src(ind_insts);
    dependent_core.run(dep_src, n);
    independent_core.run(ind_src, n);

    // Same miss counts, very different time: the MLP effect.
    EXPECT_EQ(countOf(dependent_core.counts(), Event::L2Miss),
              countOf(independent_core.counts(), Event::L2Miss));
    EXPECT_GT(dependent_core.cpi(), 3.0 * independent_core.cpi());
}

TEST(CoreTest, MispredictsChargePenalty)
{
    CoreConfig config;
    CoreModel core(config);
    // Alternating unpredictable-ish pattern with period beyond the
    // history: use pseudo-random outcomes baked into the stream.
    std::vector<Inst> insts;
    std::uint64_t lcg = 12345;
    for (int i = 0; i < 4096; ++i) {
        Inst inst;
        inst.pc = 0x400;
        inst.cls = InstClass::Branch;
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        if ((lcg >> 62) & 1)
            inst.flags = kFlagTaken;
        insts.push_back(inst);
    }
    VectorSource src(insts);
    core.run(src, 4096);
    const auto mispred = countOf(core.counts(), Event::BrMispred);
    EXPECT_GT(mispred, 1000u);
    EXPECT_NEAR(core.cpi(),
                0.25 + config.mispredictCycles * mispred / 4096.0,
                0.2);
}

TEST(CoreTest, SplitLoadsCountedAndCharged)
{
    CoreModel core{CoreConfig{}};
    // Loads at line-crossing addresses.
    VectorSource src({load(0x400, 0x1003C, 8)});
    core.run(src, 100);
    EXPECT_EQ(countOf(core.counts(), Event::SplitLoad), 100u);
    EXPECT_EQ(countOf(core.counts(), Event::Misalign), 100u);
}

TEST(CoreTest, MisalignedNonSplitLoads)
{
    CoreModel core{CoreConfig{}};
    VectorSource src({load(0x400, 0x10004, 8)}); // 4-mod-8, within line
    core.run(src, 100);
    EXPECT_EQ(countOf(core.counts(), Event::SplitLoad), 0u);
    EXPECT_EQ(countOf(core.counts(), Event::Misalign), 100u);
}

TEST(CoreTest, StoreThenOverlappedLoadCountsBlock)
{
    CoreModel core{CoreConfig{}};
    Inst store;
    store.pc = 0x400;
    store.cls = InstClass::Store;
    store.addr = 0x20000;
    store.size = 4;
    // Load partially overlapping the store.
    std::vector<Inst> insts = {store, load(0x404, 0x20000, 8)};
    VectorSource src(insts);
    core.run(src, 1000);
    EXPECT_EQ(countOf(core.counts(), Event::LdBlkOlp), 500u);
}

TEST(CoreTest, FpAssistChargedOnFlag)
{
    CoreConfig config;
    CoreModel core(config);
    Inst inst = alu(0x400);
    inst.flags = kFlagFpAssist;
    VectorSource src({inst});
    core.run(src, 64);
    EXPECT_EQ(countOf(core.counts(), Event::FpAssist), 64u);
    EXPECT_GT(core.cpi(), config.fpAssistCycles * 0.9);
}

TEST(CoreTest, ResetCountsKeepsWarmState)
{
    CoreModel core{CoreConfig{}};
    VectorSource src({load(0x400, 0x30000)});
    core.run(src, 10);
    core.resetCounts();
    EXPECT_EQ(countOf(core.counts(), Event::Instructions), 0u);
    EXPECT_DOUBLE_EQ(core.cycles(), 0.0);
    // The line is still cached: no new misses.
    core.run(src, 10);
    EXPECT_EQ(countOf(core.counts(), Event::L1DMiss), 0u);
}

TEST(CoreTest, ResetAllColdMissesAgain)
{
    CoreModel core{CoreConfig{}};
    VectorSource src({load(0x400, 0x30000)});
    core.run(src, 10);
    core.resetAll();
    core.run(src, 10);
    EXPECT_EQ(countOf(core.counts(), Event::L1DMiss), 1u);
}

TEST(CoreTest, CyclesEventTracksAccumulator)
{
    CoreModel core{CoreConfig{}};
    VectorSource src({alu(0x400)});
    core.run(src, 1000);
    EXPECT_EQ(countOf(core.counts(), Event::Cycles),
              static_cast<std::uint64_t>(core.cycles()));
    EXPECT_EQ(countOf(core.counts(), Event::Cycles),
              countOf(core.counts(), Event::CyclesRef));
}

TEST(CoreTest, DtlbMissesWalkAndCharge)
{
    CoreConfig config;
    CoreModel core(config);
    // Stride of one page over a large footprint: every access a new
    // page until the TLB wraps, then steady-state misses.
    std::vector<Inst> insts;
    for (int i = 0; i < 512; ++i)
        insts.push_back(load(0x400, 0x100000 + std::uint64_t(i) * 4096,
                             8));
    VectorSource src(insts);
    core.run(src, 512);
    EXPECT_EQ(countOf(core.counts(), Event::DtlbMiss), 512u);
    // 512 data walks plus one ITLB walk for the single code page.
    EXPECT_EQ(countOf(core.counts(), Event::PageWalk), 513u);
}

TEST(CoreTest, ItlbWalksAreNotDtlbMisses)
{
    CoreModel core{CoreConfig{}};
    // Instructions spread over many code pages, no data accesses.
    std::vector<Inst> insts;
    for (int i = 0; i < 256; ++i)
        insts.push_back(alu(0x400000 + std::uint64_t(i) * 4096));
    VectorSource src(insts);
    core.run(src, 256);
    EXPECT_EQ(countOf(core.counts(), Event::DtlbMiss), 0u);
    // Every new code page triggers an ITLB walk.
    EXPECT_EQ(countOf(core.counts(), Event::PageWalk), 256u);
}

TEST(CoreTest, StreamPrefetcherHidesSequentialL2Misses)
{
    // Two cores, same number of distinct lines touched: sequential
    // vs. large-stride. The prefetcher should eliminate most demand
    // L2 misses only for the sequential stream.
    CoreConfig config;
    CoreModel seq_core(config);
    CoreModel stride_core(config);
    constexpr int n = 2048;
    std::vector<Inst> seq, stride;
    for (int i = 0; i < n; ++i) {
        seq.push_back(load(0x400, 0x10000000 + std::uint64_t(i) * 64));
        stride.push_back(
            load(0x400, 0x10000000 + std::uint64_t(i) * 64 * 131));
    }
    VectorSource seq_src(seq), stride_src(stride);
    seq_core.run(seq_src, n);
    stride_core.run(stride_src, n);

    const auto seq_l2 = countOf(seq_core.counts(), Event::L2Miss);
    const auto stride_l2 =
        countOf(stride_core.counts(), Event::L2Miss);
    EXPECT_LT(seq_l2, stride_l2 / 10);
    EXPECT_LT(seq_core.cpi(), stride_core.cpi());
}

TEST(CoreTest, PrefetcherCanBeDisabled)
{
    CoreConfig config;
    config.prefetchEnabled = false;
    CoreModel core(config);
    constexpr int n = 2048;
    std::vector<Inst> seq;
    for (int i = 0; i < n; ++i)
        seq.push_back(load(0x400, 0x10000000 + std::uint64_t(i) * 64));
    VectorSource src(seq);
    core.run(src, n);
    // Without prefetch every new line is a demand L2 miss.
    EXPECT_EQ(countOf(core.counts(), Event::L2Miss),
              static_cast<std::uint64_t>(n));
}

} // namespace
} // namespace wct
