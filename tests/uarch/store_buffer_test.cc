/**
 * @file
 * Unit tests for the store buffer's load-block detection.
 */

#include <gtest/gtest.h>

#include "uarch/store_buffer.hh"

namespace wct
{
namespace
{

Inst
makeStore(std::uint64_t addr, std::uint8_t size,
          std::uint8_t extra_flags = 0)
{
    Inst inst;
    inst.cls = InstClass::Store;
    inst.addr = addr;
    inst.size = size;
    inst.flags = extra_flags;
    return inst;
}

Inst
makeLoad(std::uint64_t addr, std::uint8_t size)
{
    Inst inst;
    inst.cls = InstClass::Load;
    inst.addr = addr;
    inst.size = size;
    return inst;
}

StoreBufferConfig
config()
{
    StoreBufferConfig c;
    c.entries = 8;
    c.lifetime = 16;
    c.staResolveAge = 4;
    c.stdResolveAge = 10;
    return c;
}

TEST(StoreBufferTest, NoStoresNoBlock)
{
    StoreBuffer sb(config());
    EXPECT_EQ(sb.checkLoad(makeLoad(0x1000, 8), 5), LoadBlock::None);
}

TEST(StoreBufferTest, FullCoverForwards)
{
    StoreBuffer sb(config());
    sb.recordStore(makeStore(0x1000, 8), 0);
    EXPECT_EQ(sb.checkLoad(makeLoad(0x1000, 8), 2),
              LoadBlock::Forwarded);
    // A narrower load inside the store also forwards.
    EXPECT_EQ(sb.checkLoad(makeLoad(0x1004, 4), 2),
              LoadBlock::Forwarded);
}

TEST(StoreBufferTest, PartialOverlapBlocks)
{
    StoreBuffer sb(config());
    sb.recordStore(makeStore(0x1000, 4), 0);
    // Load spans beyond the store: cannot forward.
    EXPECT_EQ(sb.checkLoad(makeLoad(0x1000, 8), 2),
              LoadBlock::Overlap);
    EXPECT_EQ(sb.checkLoad(makeLoad(0x0FFC, 8), 2),
              LoadBlock::Overlap);
}

TEST(StoreBufferTest, FourKAliasBlocks)
{
    StoreBuffer sb(config());
    sb.recordStore(makeStore(0x1234, 4), 0);
    // Same page offset 0x234, different page.
    EXPECT_EQ(sb.checkLoad(makeLoad(0x5234, 4), 2),
              LoadBlock::Overlap);
    // Different offset: no interaction.
    EXPECT_EQ(sb.checkLoad(makeLoad(0x5238, 4), 2), LoadBlock::None);
}

TEST(StoreBufferTest, SlowAddressBlocksMatchingOffsets)
{
    StoreBuffer sb(config());
    sb.recordStore(makeStore(0x1230, 4, kFlagSlowAddress), 0);
    // Within the STA resolution window and offsets collide.
    EXPECT_EQ(sb.checkLoad(makeLoad(0x1230, 4), 2), LoadBlock::Sta);
    EXPECT_EQ(sb.checkLoad(makeLoad(0x9234, 4), 2), LoadBlock::Sta);
    // Clearly different offset bits: the disambiguator lets it pass.
    EXPECT_EQ(sb.checkLoad(makeLoad(0x1650, 4), 2), LoadBlock::None);
}

TEST(StoreBufferTest, SlowAddressResolvesWithAge)
{
    StoreBuffer sb(config());
    sb.recordStore(makeStore(0x1230, 4, kFlagSlowAddress), 0);
    // After staResolveAge the address is known: normal forwarding.
    EXPECT_EQ(sb.checkLoad(makeLoad(0x1230, 4), 6),
              LoadBlock::Forwarded);
}

TEST(StoreBufferTest, SlowDataBlocksForwarding)
{
    StoreBuffer sb(config());
    sb.recordStore(makeStore(0x1000, 8, kFlagSlowData), 0);
    EXPECT_EQ(sb.checkLoad(makeLoad(0x1000, 8), 2), LoadBlock::Std);
    // Data becomes ready after stdResolveAge.
    EXPECT_EQ(sb.checkLoad(makeLoad(0x1000, 8), 12),
              LoadBlock::Forwarded);
}

TEST(StoreBufferTest, RetiredStoresAreInvisible)
{
    StoreBuffer sb(config());
    sb.recordStore(makeStore(0x1000, 4), 0);
    // Past the lifetime, the partial overlap is gone.
    EXPECT_EQ(sb.checkLoad(makeLoad(0x1000, 8), 17), LoadBlock::None);
}

TEST(StoreBufferTest, YoungestConflictWins)
{
    StoreBuffer sb(config());
    sb.recordStore(makeStore(0x1000, 4), 0);        // partial source
    sb.recordStore(makeStore(0x1000, 8), 1);        // full cover
    EXPECT_EQ(sb.checkLoad(makeLoad(0x1000, 8), 2),
              LoadBlock::Forwarded);
}

TEST(StoreBufferTest, RingCapacityDropsOldest)
{
    StoreBuffer sb(config()); // 8 entries
    sb.recordStore(makeStore(0x1000, 4), 0);
    // Offsets chosen to avoid 4 KB aliasing with the probe load.
    for (std::uint64_t i = 0; i < 8; ++i)
        sb.recordStore(makeStore(0x8010 + i * 64, 4), 1 + i);
    // The first store was pushed out of the ring.
    EXPECT_EQ(sb.checkLoad(makeLoad(0x1000, 8), 9), LoadBlock::None);
}

TEST(StoreBufferTest, ResetClears)
{
    StoreBuffer sb(config());
    sb.recordStore(makeStore(0x1000, 8), 0);
    sb.reset();
    EXPECT_EQ(sb.checkLoad(makeLoad(0x1000, 8), 1), LoadBlock::None);
}

TEST(StoreBufferDeathTest, WrongClassPanics)
{
    StoreBuffer sb(config());
    EXPECT_DEATH(sb.recordStore(makeLoad(0x1000, 8), 0), "non-store");
    EXPECT_DEATH(sb.checkLoad(makeStore(0x1000, 8), 0), "non-load");
}

} // namespace
} // namespace wct
