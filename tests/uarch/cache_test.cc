/**
 * @file
 * Unit and property tests for the set-associative LRU cache model.
 */

#include <gtest/gtest.h>

#include "uarch/cache.hh"
#include "util/rng.hh"

namespace wct
{
namespace
{

CacheConfig
smallCache(std::uint64_t size = 1024, std::uint32_t line = 64,
           std::uint32_t ways = 2)
{
    return CacheConfig{size, line, ways};
}

TEST(CacheTest, GeometryDerivation)
{
    CacheModel c(smallCache(1024, 64, 2));
    EXPECT_EQ(c.numSets(), 8u);
    CacheModel l1(CacheConfig{32 * 1024, 64, 8});
    EXPECT_EQ(l1.numSets(), 64u);
    CacheModel l2(CacheConfig{4 * 1024 * 1024, 64, 16});
    EXPECT_EQ(l2.numSets(), 4096u);
}

TEST(CacheTest, ColdMissThenHit)
{
    CacheModel c(smallCache());
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1038)); // same 64-byte line
    EXPECT_FALSE(c.access(0x1040)); // next line
    EXPECT_EQ(c.accesses(), 4u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(CacheTest, LruEviction)
{
    // 2-way: lines A, B fill a set; touching A then adding C must
    // evict B, the least recently used.
    CacheModel c(smallCache(1024, 64, 2));
    const std::uint64_t set_stride = 8 * 64; // 8 sets
    const std::uint64_t a = 0x0;
    const std::uint64_t b = a + set_stride;
    const std::uint64_t d = a + 2 * set_stride;

    EXPECT_FALSE(c.access(a));
    EXPECT_FALSE(c.access(b));
    EXPECT_TRUE(c.access(a));  // A most recent
    EXPECT_FALSE(c.access(d)); // evicts B
    EXPECT_TRUE(c.access(a));
    EXPECT_FALSE(c.access(b)); // B was evicted
}

TEST(CacheTest, ContainsDoesNotMutate)
{
    CacheModel c(smallCache());
    c.access(0x2000);
    const std::uint64_t misses = c.misses();
    EXPECT_TRUE(c.contains(0x2000));
    EXPECT_FALSE(c.contains(0x4000));
    EXPECT_EQ(c.misses(), misses);
    EXPECT_EQ(c.accesses(), 1u);
}

TEST(CacheTest, ResetClearsState)
{
    CacheModel c(smallCache());
    c.access(0x2000);
    c.reset();
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_EQ(c.misses(), 0u);
    EXPECT_FALSE(c.contains(0x2000));
}

TEST(CacheTest, WorkingSetWithinCapacityHasNoCapacityMisses)
{
    // Sequential working set smaller than capacity: after the first
    // sweep every subsequent sweep hits.
    CacheModel c(smallCache(4096, 64, 4));
    for (int sweep = 0; sweep < 3; ++sweep)
        for (std::uint64_t addr = 0; addr < 4096; addr += 64)
            c.access(addr);
    EXPECT_EQ(c.misses(), 64u); // cold misses only
}

TEST(CacheTest, ThrashingWorkingSetMissesEverySweep)
{
    // Working set 2x capacity with LRU and sequential access: every
    // access misses after warmup.
    CacheModel c(smallCache(1024, 64, 2));
    std::uint64_t late_misses = 0;
    for (int sweep = 0; sweep < 4; ++sweep) {
        for (std::uint64_t addr = 0; addr < 2048; addr += 64) {
            const bool hit = c.access(addr);
            if (sweep >= 2 && !hit)
                ++late_misses;
        }
    }
    EXPECT_EQ(late_misses, 64u); // all accesses in sweeps 2-3 miss
}

TEST(CacheTest, SplitsLineDetection)
{
    CacheModel c(smallCache());
    EXPECT_FALSE(c.splitsLine(0x100, 8));
    EXPECT_FALSE(c.splitsLine(0x138, 8)); // bytes 0x138..0x13f
    EXPECT_TRUE(c.splitsLine(0x13c, 8));  // crosses 0x140
    EXPECT_TRUE(c.splitsLine(0x13f, 2));
    EXPECT_FALSE(c.splitsLine(0x140, 64));
    EXPECT_TRUE(c.splitsLine(0x141, 64));
    EXPECT_FALSE(c.splitsLine(0x100, 0));
}

TEST(CacheDeathTest, BadGeometryPanics)
{
    EXPECT_DEATH(CacheModel(CacheConfig{1000, 64, 2}), "divisible");
    EXPECT_DEATH(CacheModel(CacheConfig{1024, 48, 2}), "power of two");
    EXPECT_DEATH(CacheModel(CacheConfig{1024, 64, 0}), "way");
}

/**
 * Property: for an LRU cache and a fixed access stream, increasing
 * associativity (at equal capacity) never increases misses for
 * stack-friendly (reuse-based) streams.
 */
class CacheAssocSweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(CacheAssocSweep, RandomZipfStreamMissRateReasonable)
{
    const std::uint32_t ways = GetParam();
    CacheModel c(CacheConfig{8192, 64, ways});
    Rng rng(1234); // same stream for every associativity
    std::uint64_t misses = 0;
    constexpr int n = 20000;
    for (int i = 0; i < n; ++i) {
        const std::uint64_t line = rng.zipf(512, 1.1);
        misses += !c.access(line * 64);
    }
    // 512-line footprint vs 128-line cache: neither trivially small
    // nor total thrash.
    const double rate = misses / double(n);
    EXPECT_GT(rate, 0.02);
    EXPECT_LT(rate, 0.8);
}

INSTANTIATE_TEST_SUITE_P(Assoc, CacheAssocSweep,
                         ::testing::Values(1, 2, 4, 8));

TEST(CacheTest, FullyAssociativeSingleSet)
{
    CacheModel c(CacheConfig{512, 64, 8});
    EXPECT_EQ(c.numSets(), 1u);
    for (std::uint64_t i = 0; i < 8; ++i)
        EXPECT_FALSE(c.access(i * 4096));
    for (std::uint64_t i = 0; i < 8; ++i)
        EXPECT_TRUE(c.access(i * 4096));
    // Ninth distinct line evicts the LRU (line 0).
    EXPECT_FALSE(c.access(9 * 4096));
    EXPECT_TRUE(c.access(1 * 4096));
    EXPECT_FALSE(c.access(0));
}

} // namespace
} // namespace wct
