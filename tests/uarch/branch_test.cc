/**
 * @file
 * Unit tests for the gshare branch predictor.
 */

#include <gtest/gtest.h>

#include "uarch/branch.hh"
#include "util/rng.hh"

namespace wct
{
namespace
{

BranchPredictorConfig
smallPredictor()
{
    BranchPredictorConfig config;
    config.tableBits = 10;
    config.historyBits = 8;
    return config;
}

TEST(BranchTest, LearnsAlwaysTaken)
{
    BranchPredictor bp(smallPredictor());
    // Counters initialise weakly-taken, so always-taken converges
    // immediately; allow a couple of warmup mistakes.
    int wrong = 0;
    for (int i = 0; i < 1000; ++i)
        wrong += !bp.predict(0x400, true);
    EXPECT_LE(wrong, 2);
}

TEST(BranchTest, LearnsAlwaysNotTaken)
{
    BranchPredictor bp(smallPredictor());
    int wrong = 0;
    for (int i = 0; i < 1000; ++i)
        wrong += !bp.predict(0x400, false);
    EXPECT_LE(wrong, 4);
    EXPECT_LT(bp.mispredictRate(), 0.01);
}

TEST(BranchTest, LearnsShortPeriodicPattern)
{
    // Pattern TTNTTN... is captured by 8 bits of history.
    BranchPredictor bp(smallPredictor());
    int late_wrong = 0;
    for (int i = 0; i < 3000; ++i) {
        const bool taken = (i % 3) != 2;
        const bool correct = bp.predict(0x400, taken);
        if (i > 500)
            late_wrong += !correct;
    }
    EXPECT_LT(late_wrong / 2500.0, 0.02);
}

TEST(BranchTest, RandomBranchesNearFiftyPercent)
{
    BranchPredictor bp(smallPredictor());
    Rng rng(77);
    for (int i = 0; i < 20000; ++i)
        bp.predict(0x400, rng.bernoulli(0.5));
    EXPECT_NEAR(bp.mispredictRate(), 0.5, 0.05);
}

TEST(BranchTest, BiasedRandomBranchesBeatBias)
{
    // 90%-taken random branches: a counter-based predictor should
    // approach the 10% floor.
    BranchPredictor bp(smallPredictor());
    Rng rng(78);
    std::uint64_t wrong = 0;
    constexpr int n = 40000;
    for (int i = 0; i < n; ++i)
        wrong += !bp.predict(0x1234, rng.bernoulli(0.9));
    const double rate = wrong / double(n);
    EXPECT_LT(rate, 0.22);
    EXPECT_GT(rate, 0.05);
}

TEST(BranchTest, DistinctPcsTrackedIndependently)
{
    BranchPredictor bp(smallPredictor());
    int wrong = 0;
    for (int i = 0; i < 2000; ++i) {
        wrong += !bp.predict(0x1000, true);
        wrong += !bp.predict(0x2000, false);
    }
    // Aliasing through history xor can cause some noise but both
    // static branches should be predictable overall.
    EXPECT_LT(wrong / 4000.0, 0.15);
}

TEST(BranchTest, ResetRestoresColdState)
{
    BranchPredictor bp(smallPredictor());
    for (int i = 0; i < 100; ++i)
        bp.predict(0x400, true);
    bp.reset();
    EXPECT_EQ(bp.branches(), 0u);
    EXPECT_EQ(bp.mispredicts(), 0u);
    EXPECT_DOUBLE_EQ(bp.mispredictRate(), 0.0);
}

TEST(BranchDeathTest, BadConfigPanics)
{
    BranchPredictorConfig config;
    config.tableBits = 2;
    EXPECT_DEATH(BranchPredictor{config}, "table bits");
    config.tableBits = 10;
    config.historyBits = 20;
    EXPECT_DEATH(BranchPredictor{config}, "exceed");
}

// Sweep: bigger tables should never be much worse on a mixed stream.
class BranchTableSweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(BranchTableSweep, MixedStreamRateBounded)
{
    BranchPredictorConfig config;
    config.tableBits = GetParam();
    config.historyBits = std::min<std::uint32_t>(8, GetParam());
    BranchPredictor bp(config);
    Rng rng(90);
    for (int i = 0; i < 30000; ++i) {
        const std::uint64_t pc = 0x400 + (i % 16) * 4;
        const bool taken = (i % 16) < 12 || rng.bernoulli(0.5);
        bp.predict(pc, taken);
    }
    EXPECT_LT(bp.mispredictRate(), 0.3);
}

INSTANTIATE_TEST_SUITE_P(Tables, BranchTableSweep,
                         ::testing::Values(8, 10, 12, 14, 16));

} // namespace
} // namespace wct
