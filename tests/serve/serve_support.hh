/**
 * @file
 * Shared fixtures for the serving-subsystem tests: a small trained
 * tree, a temp workspace, and request builders.
 */

#ifndef WCT_TESTS_SERVE_SERVE_SUPPORT_HH
#define WCT_TESTS_SERVE_SERVE_SUPPORT_HH

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "data/dataset.hh"
#include "mtree/model_tree.hh"
#include "mtree/serialize.hh"
#include "serve/wire.hh"
#include "util/rng.hh"

namespace wct::serve::test
{

/** Temp workspace, removed on destruction. */
struct TempDir
{
    std::filesystem::path path;

    explicit TempDir(const std::string &name)
        : path(std::filesystem::temp_directory_path() / name)
    {
        std::filesystem::remove_all(path);
        std::filesystem::create_directories(path);
    }

    ~TempDir() { std::filesystem::remove_all(path); }

    std::string
    file(const std::string &name) const
    {
        return (path / name).string();
    }
};

/** Two-regime synthetic dataset with schema {x0, x1, y}. */
inline Dataset
trainingData(std::size_t n, std::uint64_t seed)
{
    Dataset d({"x0", "x1", "y"});
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
        const double x0 = rng.uniform(0.0, 1.0);
        const double x1 = rng.uniform(0.0, 1.0);
        const double y = x0 <= 0.5 ? 1.0 + 2.0 * x1
                                   : 8.0 - x1 + rng.normal(0.0, 0.05);
        d.addRow({x0, x1, y});
    }
    return d;
}

/** Train a small tree on trainingData(n, seed). */
inline ModelTree
trainedTree(std::size_t n = 1200, std::uint64_t seed = 1)
{
    return ModelTree::train(trainingData(n, seed), "y");
}

/** Serialize `tree` to `path`. */
inline void
writeTree(const ModelTree &tree, const std::string &path)
{
    writeModelTreeFile(tree, path);
}

/** Overwrite `path` with bytes that are not a model tree. */
inline void
writeGarbage(const std::string &path)
{
    std::ofstream out(path);
    out << "definitely not a model tree\n";
}

/** Predict/classify request over the first `nrows` of `data`. */
inline Request
inferenceRequest(Opcode op, const Dataset &data, std::size_t nrows,
                 std::uint64_t id, const std::string &model_key = "")
{
    Request request;
    request.op = op;
    request.id = id;
    request.modelKey = model_key;
    request.schema = data.columnNames();
    for (std::size_t r = 0; r < nrows; ++r) {
        const auto row = data.row(r);
        request.rows.insert(request.rows.end(), row.begin(),
                            row.end());
    }
    return request;
}

} // namespace wct::serve::test

#endif // WCT_TESTS_SERVE_SERVE_SUPPORT_HH
