/**
 * @file
 * Socket-transport tests: the same request/response session over a
 * Unix-domain socket and over loopback TCP, the connection cap, raw
 * garbage on a connection, and client-initiated shutdown.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/server.hh"
#include "serve/socket.hh"
#include "tests/serve/serve_support.hh"

namespace wct::serve
{
namespace
{

using test::TempDir;

/** One full client session against an already-started transport. */
void
runClientSession(ServeClient &client, const ModelTree &tree,
                 const Dataset &probe)
{
    std::string err;

    const Request predict = test::inferenceRequest(
        Opcode::Predict, probe, probe.numRows(), 1);
    const auto predicted = client.call(predict, &err);
    ASSERT_TRUE(predicted.has_value()) << err;
    ASSERT_EQ(predicted->status, Status::Ok);
    ASSERT_EQ(predicted->cpi.size(), probe.numRows());
    for (std::size_t r = 0; r < probe.numRows(); ++r) {
        EXPECT_DOUBLE_EQ(predicted->cpi[r],
                         tree.predict(probe.row(r)));
        EXPECT_EQ(predicted->leaf[r], tree.classify(probe.row(r)) + 1);
    }

    const Request classify = test::inferenceRequest(
        Opcode::Classify, probe, probe.numRows(), 2);
    const auto classified = client.call(classify, &err);
    ASSERT_TRUE(classified.has_value()) << err;
    EXPECT_EQ(classified->status, Status::Ok);
    EXPECT_TRUE(classified->cpi.empty());
    EXPECT_EQ(classified->leaf, predicted->leaf);

    Request stats;
    stats.op = Opcode::Stats;
    stats.id = 3;
    const auto counted = client.call(stats, &err);
    ASSERT_TRUE(counted.has_value()) << err;
    EXPECT_EQ(counted->status, Status::Ok);
    EXPECT_GE(counted->stats.requestsByOp[0], 1u);
    EXPECT_EQ(counted->stats.samplesPredicted, 2 * probe.numRows());

    Request shutdown;
    shutdown.op = Opcode::Shutdown;
    shutdown.id = 4;
    const auto ack = client.call(shutdown, &err);
    ASSERT_TRUE(ack.has_value()) << err;
    EXPECT_EQ(ack->status, Status::Ok);
}

TEST(SocketTest, UnixSocketSessionRoundTrips)
{
    TempDir dir("wct_socket_unix");
    const ModelTree tree = test::trainedTree();
    const std::string model_path = dir.file("m.mtree");
    test::writeTree(tree, model_path);
    const Dataset probe = test::trainingData(16, 5);

    Server server;
    std::string err;
    ASSERT_TRUE(server.loadModel(model_path, "", nullptr, &err))
        << err;

    SocketConfig config;
    config.unixPath = dir.file("serve.sock");
    SocketServer transport(server, config);
    ASSERT_TRUE(transport.start(&err)) << err;

    auto client = ServeClient::connectUnix(config.unixPath, &err);
    ASSERT_TRUE(client.has_value()) << err;
    runClientSession(*client, tree, probe);

    // The shutdown frame ends the serving loop: the operator-side
    // wait returns promptly and the drain completes.
    transport.waitForShutdown();
    server.drain();
    EXPECT_TRUE(server.shuttingDown());

    // The socket file was removed on stop.
    EXPECT_FALSE(std::filesystem::exists(config.unixPath));
}

TEST(SocketTest, TcpSocketSessionRoundTrips)
{
    TempDir dir("wct_socket_tcp");
    const ModelTree tree = test::trainedTree();
    const std::string model_path = dir.file("m.mtree");
    test::writeTree(tree, model_path);
    const Dataset probe = test::trainingData(16, 6);

    Server server;
    std::string err;
    ASSERT_TRUE(server.loadModel(model_path, "", nullptr, &err))
        << err;

    SocketConfig config;
    config.tcpPort = 0; // ephemeral
    SocketServer transport(server, config);
    ASSERT_TRUE(transport.start(&err)) << err;
    ASSERT_GT(transport.boundPort(), 0);

    auto client = ServeClient::connectTcp(transport.boundPort(), &err);
    ASSERT_TRUE(client.has_value()) << err;
    runClientSession(*client, tree, probe);
    transport.waitForShutdown();
    server.drain();
}

TEST(SocketTest, RemoteLoadThenPredictOverTcp)
{
    TempDir dir("wct_socket_load");
    const ModelTree tree = test::trainedTree();
    const std::string model_path = dir.file("m.mtree");
    test::writeTree(tree, model_path);
    const Dataset probe = test::trainingData(8, 9);

    Server server; // no model yet: the client uploads one
    SocketConfig config;
    SocketServer transport(server, config);
    std::string err;
    ASSERT_TRUE(transport.start(&err)) << err;

    auto client = ServeClient::connectTcp(transport.boundPort(), &err);
    ASSERT_TRUE(client.has_value()) << err;

    Request load;
    load.op = Opcode::LoadModel;
    load.id = 1;
    load.path = model_path;
    load.alias = "uploaded";
    const auto loaded = client->call(load, &err);
    ASSERT_TRUE(loaded.has_value()) << err;
    ASSERT_EQ(loaded->status, Status::Ok);
    EXPECT_EQ(loaded->numLeaves, tree.numLeaves());

    const Request predict = test::inferenceRequest(
        Opcode::Predict, probe, probe.numRows(), 2, "uploaded");
    const auto predicted = client->call(predict, &err);
    ASSERT_TRUE(predicted.has_value()) << err;
    ASSERT_EQ(predicted->status, Status::Ok);
    for (std::size_t r = 0; r < probe.numRows(); ++r)
        EXPECT_DOUBLE_EQ(predicted->cpi[r],
                         tree.predict(probe.row(r)));

    client.reset(); // disconnect
    transport.stop();
    server.beginShutdown();
    server.drain();
}

TEST(SocketTest, ConnectionCapShowsUpAsEof)
{
    TempDir dir("wct_socket_cap");
    const std::string model_path = dir.file("m.mtree");
    test::writeTree(test::trainedTree(), model_path);

    Server server;
    std::string err;
    ASSERT_TRUE(server.loadModel(model_path, "", nullptr, &err))
        << err;

    SocketConfig config;
    config.unixPath = dir.file("serve.sock");
    config.maxConnections = 1;
    SocketServer transport(server, config);
    ASSERT_TRUE(transport.start(&err)) << err;

    // First connection occupies the only slot (a completed call
    // guarantees its worker thread is registered).
    auto first = ServeClient::connectUnix(config.unixPath, &err);
    ASSERT_TRUE(first.has_value()) << err;
    Request stats;
    stats.op = Opcode::Stats;
    ASSERT_TRUE(first->call(stats, &err).has_value()) << err;

    // The second is accepted then immediately closed: its call fails
    // with EOF instead of hanging.
    auto second = ServeClient::connectUnix(config.unixPath, &err);
    ASSERT_TRUE(second.has_value()) << err;
    EXPECT_FALSE(second->call(stats, &err).has_value());

    second.reset();
    first.reset();
    transport.stop();
    server.beginShutdown();
    server.drain();
}

TEST(SocketTest, RawGarbageGetsOneMalformedResponseThenEof)
{
    TempDir dir("wct_socket_garbage");
    Server server;
    SocketConfig config;
    config.unixPath = dir.file("serve.sock");
    SocketServer transport(server, config);
    std::string err;
    ASSERT_TRUE(transport.start(&err)) << err;

    // A raw client that speaks no protocol at all.
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, config.unixPath.c_str(),
                config.unixPath.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::connect(fd,
                        reinterpret_cast<const sockaddr *>(&addr),
                        sizeof addr),
              0);
    const char junk[] = "GET / HTTP/1.1\r\n\r\n";
    ASSERT_GT(::write(fd, junk, sizeof junk - 1), 0);
    ::shutdown(fd, SHUT_WR);

    // The server answers with exactly one MalformedFrame frame and
    // closes; drain the connection to EOF and decode what it sent.
    std::string received;
    char buffer[4096];
    ssize_t n;
    while ((n = ::read(fd, buffer, sizeof buffer)) > 0)
        received.append(buffer, static_cast<std::size_t>(n));
    ::close(fd);

    std::istringstream in(received);
    const auto payload = readFrame(in);
    ASSERT_TRUE(payload.has_value());
    const auto response = decodeResponse(*payload);
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, Status::MalformedFrame);
    EXPECT_FALSE(readFrame(in).has_value()); // nothing else followed

    // The server survived and serves a well-behaved client.
    auto client = ServeClient::connectUnix(config.unixPath, &err);
    ASSERT_TRUE(client.has_value()) << err;
    Request stats;
    stats.op = Opcode::Stats;
    const auto counted = client->call(stats, &err);
    ASSERT_TRUE(counted.has_value()) << err;
    EXPECT_EQ(counted->stats.malformedFrames, 1u);

    client.reset();
    transport.stop();
    server.beginShutdown();
    server.drain();
}

} // namespace
} // namespace wct::serve
