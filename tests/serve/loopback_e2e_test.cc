/**
 * @file
 * Loopback end-to-end tests of the serving stack: the full
 * load -> predict -> classify -> stats -> shutdown -> drain sequence
 * through Server::handleFrame, with the inference responses required
 * to be byte-identical whatever WCT_THREADS says — determinism by
 * construction, per-row results never depend on batch composition or
 * pool scheduling.
 *
 * Also the failure policy: corrupt model files, unknown models,
 * schema mismatches and malformed frames must each produce an error
 * *response* and leave the server serving.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "data/binary_io.hh"
#include "serve/server.hh"
#include "tests/serve/serve_support.hh"
#include "util/thread_pool.hh"

namespace wct::serve
{
namespace
{

using test::TempDir;

/** Decode a response frame produced by handleFrame. */
Response
decode(const std::string &frame)
{
    std::istringstream in(frame);
    const auto payload = readFrame(in);
    EXPECT_TRUE(payload.has_value());
    auto response = decodeResponse(payload.value_or(""));
    EXPECT_TRUE(response.has_value());
    return response.value_or(Response{});
}

/**
 * Run the whole client session against a fresh Server and return the
 * raw inference response frames (whose bytes we compare across pool
 * sizes) plus the decoded stats.
 */
struct SessionResult
{
    std::vector<std::string> inferenceFrames;
    MetricsSnapshot stats;
};

SessionResult
runSession(const std::string &model_path, const Dataset &probe)
{
    Server server;

    Request load;
    load.op = Opcode::LoadModel;
    load.id = 1;
    load.path = model_path;
    load.alias = "prod";
    const Response load_response =
        decode(server.handleFrame(encodeRequest(load)));
    EXPECT_EQ(load_response.status, Status::Ok);
    EXPECT_EQ(load_response.target, "y");
    EXPECT_GT(load_response.numLeaves, 0u);
    EXPECT_EQ(load_response.modelKey.size(), 16u);

    SessionResult result;
    for (std::uint64_t i = 0; i < 4; ++i) {
        const Opcode op =
            i % 2 == 0 ? Opcode::Predict : Opcode::Classify;
        const Request request = test::inferenceRequest(
            op, probe, probe.numRows(), 10 + i, "prod");
        result.inferenceFrames.push_back(
            server.handleFrame(encodeRequest(request)));
        EXPECT_EQ(decode(result.inferenceFrames.back()).status,
                  Status::Ok);
    }

    Request stats;
    stats.op = Opcode::Stats;
    stats.id = 90;
    result.stats =
        decode(server.handleFrame(encodeRequest(stats))).stats;

    Request shutdown;
    shutdown.op = Opcode::Shutdown;
    shutdown.id = 91;
    const Response ack =
        decode(server.handleFrame(encodeRequest(shutdown)));
    EXPECT_EQ(ack.status, Status::Ok);
    EXPECT_TRUE(server.shuttingDown());
    server.drain();

    // Post-shutdown inference is refused, not served.
    const Request late = test::inferenceRequest(
        Opcode::Predict, probe, 1, 92, "prod");
    EXPECT_EQ(decode(server.handleFrame(encodeRequest(late))).status,
              Status::ShuttingDown);
    return result;
}

TEST(LoopbackE2eTest, FullSessionIsByteDeterministicAcrossThreads)
{
    TempDir dir("wct_loopback_e2e");
    const ModelTree tree = test::trainedTree();
    const std::string path = dir.file("m.mtree");
    test::writeTree(tree, path);
    const Dataset probe = test::trainingData(64, 17);

    // Serial pool, then a 4-worker pool: same frames, byte for byte.
    ThreadPool::resetGlobalForTest(0);
    const SessionResult serial = runSession(path, probe);
    ThreadPool::resetGlobalForTest(4);
    const SessionResult parallel = runSession(path, probe);
    ThreadPool::resetGlobalForTest(0);

    ASSERT_EQ(serial.inferenceFrames.size(),
              parallel.inferenceFrames.size());
    for (std::size_t i = 0; i < serial.inferenceFrames.size(); ++i)
        EXPECT_EQ(serial.inferenceFrames[i],
                  parallel.inferenceFrames[i])
            << "inference frame " << i
            << " differs between WCT_THREADS=1 and 4";

    // Responses also match the offline tree exactly.
    const Response predict = decode(serial.inferenceFrames[0]);
    ASSERT_EQ(predict.cpi.size(), probe.numRows());
    ASSERT_EQ(predict.leaf.size(), probe.numRows());
    for (std::size_t r = 0; r < probe.numRows(); ++r) {
        EXPECT_DOUBLE_EQ(predict.cpi[r], tree.predict(probe.row(r)));
        EXPECT_EQ(predict.leaf[r], tree.classify(probe.row(r)) + 1);
    }

    // Counter-style stats are deterministic too (latency buckets are
    // timing-dependent, so only the counters are compared).
    EXPECT_EQ(serial.stats.requestsByOp, parallel.stats.requestsByOp);
    EXPECT_EQ(serial.stats.samplesPredicted,
              parallel.stats.samplesPredicted);
    EXPECT_EQ(serial.stats.samplesPredicted, 4 * probe.numRows());
    EXPECT_EQ(serial.stats.requestsByOp[0], 2u); // predict
    EXPECT_EQ(serial.stats.requestsByOp[1], 2u); // classify
    EXPECT_EQ(serial.stats.modelLoads, 1u);
    EXPECT_EQ(serial.stats.requestLatencyUs.total(), 4u);
}

TEST(LoopbackE2eTest, CorruptModelFileIsAnErrorResponseNotACrash)
{
    TempDir dir("wct_loopback_corrupt");
    const std::string good = dir.file("good.mtree");
    const std::string bad = dir.file("bad.mtree");
    test::writeTree(test::trainedTree(), good);
    test::writeGarbage(bad);

    Server server;
    Request load;
    load.op = Opcode::LoadModel;
    load.id = 1;
    load.path = bad;
    const Response refused =
        decode(server.handleFrame(encodeRequest(load)));
    EXPECT_EQ(refused.status, Status::Error);
    EXPECT_FALSE(refused.error.empty());

    // The server is still alive and loads the good file next.
    load.id = 2;
    load.path = good;
    EXPECT_EQ(decode(server.handleFrame(encodeRequest(load))).status,
              Status::Ok);
    EXPECT_EQ(server.stats().modelLoadFailures, 1u);
    EXPECT_EQ(server.stats().modelLoads, 1u);
}

TEST(LoopbackE2eTest, MalformedFramesGetMalformedFrameResponses)
{
    Server server;
    for (const std::string &junk :
         {std::string("not a frame at all"), std::string(),
          std::string(200, '\xff')}) {
        const Response response = decode(server.handleFrame(junk));
        EXPECT_EQ(response.status, Status::MalformedFrame);
        EXPECT_FALSE(response.error.empty());
    }

    // A valid envelope around an undecodable payload is also refused
    // at the payload layer.
    std::ostringstream sealed;
    writeEnvelope(sealed, std::string_view(kWireMagic, 8),
                  kWireFormatVersion, "\x63junk");
    EXPECT_EQ(decode(server.handleFrame(sealed.str())).status,
              Status::MalformedFrame);
    EXPECT_EQ(server.stats().malformedFrames, 4u);

    // The server still answers a well-formed stats request.
    Request stats;
    stats.op = Opcode::Stats;
    EXPECT_EQ(decode(server.handleFrame(encodeRequest(stats))).status,
              Status::Ok);
}

TEST(LoopbackE2eTest, UnknownModelAndSchemaMismatchAreErrors)
{
    TempDir dir("wct_loopback_errors");
    const std::string path = dir.file("m.mtree");
    test::writeTree(test::trainedTree(), path);
    const Dataset probe = test::trainingData(4, 3);

    Server server;

    // Inference before any model is loaded.
    const Request early = test::inferenceRequest(
        Opcode::Predict, probe, probe.numRows(), 1);
    Response response =
        decode(server.handleFrame(encodeRequest(early)));
    EXPECT_EQ(response.status, Status::Error);
    EXPECT_NE(response.error.find("no model"), std::string::npos);

    std::string err;
    ASSERT_TRUE(server.loadModel(path, "prod", nullptr, &err)) << err;

    // Unknown key.
    const Request unknown = test::inferenceRequest(
        Opcode::Predict, probe, probe.numRows(), 2, "nope");
    response = decode(server.handleFrame(encodeRequest(unknown)));
    EXPECT_EQ(response.status, Status::Error);
    EXPECT_NE(response.error.find("nope"), std::string::npos);

    // Wrong schema (column renamed relative to training).
    Request mismatched = test::inferenceRequest(
        Opcode::Predict, probe, probe.numRows(), 3, "prod");
    mismatched.schema[0] = "renamed";
    response = decode(server.handleFrame(encodeRequest(mismatched)));
    EXPECT_EQ(response.status, Status::Error);
    EXPECT_NE(response.error.find("schema"), std::string::npos);

    // And a correct request still succeeds afterwards.
    const Request fine = test::inferenceRequest(
        Opcode::Predict, probe, probe.numRows(), 4, "prod");
    EXPECT_EQ(decode(server.handleFrame(encodeRequest(fine))).status,
              Status::Ok);
}

TEST(LoopbackE2eTest, PolicyKnobsRefuseRemoteLoadAndShutdown)
{
    TempDir dir("wct_loopback_policy");
    const std::string path = dir.file("m.mtree");
    test::writeTree(test::trainedTree(), path);

    ServerConfig config;
    config.allowRemoteLoad = false;
    config.allowRemoteShutdown = false;
    Server server(config);

    Request load;
    load.op = Opcode::LoadModel;
    load.path = path;
    EXPECT_EQ(decode(server.handleFrame(encodeRequest(load))).status,
              Status::Error);
    EXPECT_EQ(server.registry().size(), 0u);

    Request shutdown;
    shutdown.op = Opcode::Shutdown;
    EXPECT_EQ(
        decode(server.handleFrame(encodeRequest(shutdown))).status,
        Status::Error);
    EXPECT_FALSE(server.shuttingDown());

    // Local (operator) loading still works.
    std::string err;
    EXPECT_TRUE(server.loadModel(path, "", nullptr, &err)) << err;
}

TEST(LoopbackE2eTest, HotReloadChangesServedPredictions)
{
    TempDir dir("wct_loopback_reload");
    const ModelTree v1 = test::trainedTree(1200, 1);
    const ModelTree v2 = test::trainedTree(1200, 99);
    const std::string path = dir.file("m.mtree");
    const Dataset probe = test::trainingData(8, 21);

    Server server;
    std::string err;
    test::writeTree(v1, path);
    ASSERT_TRUE(server.loadModel(path, "prod", nullptr, &err)) << err;

    const Request request = test::inferenceRequest(
        Opcode::Predict, probe, probe.numRows(), 1, "prod");
    Response before =
        decode(server.handleFrame(encodeRequest(request)));
    ASSERT_EQ(before.status, Status::Ok);
    for (std::size_t r = 0; r < probe.numRows(); ++r)
        EXPECT_DOUBLE_EQ(before.cpi[r], v1.predict(probe.row(r)));

    test::writeTree(v2, path);
    ASSERT_TRUE(server.loadModel(path, "prod", nullptr, &err)) << err;
    Response after =
        decode(server.handleFrame(encodeRequest(request)));
    ASSERT_EQ(after.status, Status::Ok);
    for (std::size_t r = 0; r < probe.numRows(); ++r)
        EXPECT_DOUBLE_EQ(after.cpi[r], v2.predict(probe.row(r)));
}

} // namespace
} // namespace wct::serve
