/**
 * @file
 * Admission-queue tests: explicit overload, batch coalescing, and the
 * close-then-drain shutdown contract.
 */

#include <gtest/gtest.h>

#include <thread>

#include "serve/queue.hh"

namespace wct::serve
{
namespace
{

Job
job(std::uint64_t id)
{
    Job j;
    j.request.id = id;
    j.admitted = std::chrono::steady_clock::now();
    return j;
}

TEST(QueueTest, PushThenPop)
{
    RequestQueue queue(4);
    EXPECT_EQ(queue.depth(), 0u);
    EXPECT_EQ(queue.push(job(1)), PushResult::Ok);
    EXPECT_EQ(queue.depth(), 1u);

    std::vector<Job> batch;
    EXPECT_TRUE(queue.popBatch(batch, 8));
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0].request.id, 1u);
    EXPECT_EQ(queue.depth(), 0u);
}

TEST(QueueTest, FullQueueRefusesWithOverloaded)
{
    RequestQueue queue(2);
    EXPECT_EQ(queue.push(job(1)), PushResult::Ok);
    EXPECT_EQ(queue.push(job(2)), PushResult::Ok);
    EXPECT_EQ(queue.push(job(3)), PushResult::Overloaded);
    EXPECT_EQ(queue.depth(), 2u); // the refused job was not admitted

    // Popping frees capacity again.
    std::vector<Job> batch;
    EXPECT_TRUE(queue.popBatch(batch, 1));
    EXPECT_EQ(queue.push(job(4)), PushResult::Ok);
}

TEST(QueueTest, PopBatchCoalescesUpToTheCap)
{
    RequestQueue queue(16);
    for (std::uint64_t id = 0; id < 5; ++id)
        ASSERT_EQ(queue.push(job(id)), PushResult::Ok);

    std::vector<Job> batch;
    EXPECT_TRUE(queue.popBatch(batch, 3));
    ASSERT_EQ(batch.size(), 3u); // capped
    for (std::uint64_t id = 0; id < 3; ++id)
        EXPECT_EQ(batch[id].request.id, id); // FIFO

    batch.clear();
    EXPECT_TRUE(queue.popBatch(batch, 3));
    EXPECT_EQ(batch.size(), 2u); // the remainder, no blocking
}

TEST(QueueTest, CloseRefusesNewWorkButDrainsAdmitted)
{
    RequestQueue queue(8);
    ASSERT_EQ(queue.push(job(1)), PushResult::Ok);
    ASSERT_EQ(queue.push(job(2)), PushResult::Ok);
    queue.close();
    EXPECT_TRUE(queue.closed());
    EXPECT_EQ(queue.push(job(3)), PushResult::Closed);

    // Everything admitted before close() is still handed out...
    std::vector<Job> batch;
    EXPECT_TRUE(queue.popBatch(batch, 8));
    EXPECT_EQ(batch.size(), 2u);

    // ...and only then does popBatch signal exit.
    batch.clear();
    EXPECT_FALSE(queue.popBatch(batch, 8));
    EXPECT_TRUE(batch.empty());
}

TEST(QueueTest, CloseWakesABlockedConsumer)
{
    RequestQueue queue(4);
    std::thread consumer([&queue] {
        std::vector<Job> batch;
        // Blocks on the empty queue until close() wakes it.
        EXPECT_FALSE(queue.popBatch(batch, 4));
    });
    // Give the consumer a moment to park; close() must unpark it
    // regardless of whether it had already blocked.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.close();
    consumer.join();
}

TEST(QueueTest, ManyProducersOneConsumerDeliversEverything)
{
    constexpr std::size_t kProducers = 4;
    constexpr std::size_t kPerProducer = 200;
    RequestQueue queue(kProducers * kPerProducer);

    std::vector<std::thread> producers;
    for (std::size_t p = 0; p < kProducers; ++p) {
        producers.emplace_back([&queue, p] {
            for (std::size_t i = 0; i < kPerProducer; ++i)
                ASSERT_EQ(queue.push(job(p * kPerProducer + i)),
                          PushResult::Ok);
        });
    }

    std::size_t received = 0;
    std::vector<bool> seen(kProducers * kPerProducer, false);
    std::thread consumer([&] {
        std::vector<Job> batch;
        while (queue.popBatch(batch, 32)) {
            for (const Job &j : batch) {
                ASSERT_LT(j.request.id, seen.size());
                ASSERT_FALSE(seen[j.request.id]); // no duplication
                seen[j.request.id] = true;
            }
            received += batch.size();
            batch.clear();
        }
    });

    for (std::thread &p : producers)
        p.join();
    queue.close();
    consumer.join();
    EXPECT_EQ(received, kProducers * kPerProducer); // no loss
}

} // namespace
} // namespace wct::serve
