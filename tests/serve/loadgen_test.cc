/**
 * @file
 * `wct loadgen` open-loop generator against a live in-process server
 * on the epoll transport: a short mixed run completes cleanly with
 * zero malformed responses, the offered count follows rate*duration,
 * the op-mix sequence is deterministic per seed, and setup failures
 * come back as errors instead of a zeroed report.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numeric>
#include <string>

#include "serve/loadgen.hh"
#include "serve/server.hh"
#include "serve/socket.hh"
#include "tests/serve/serve_support.hh"

namespace wct::serve
{
namespace
{

using test::TempDir;
using test::trainedTree;
using test::trainingData;
using test::writeTree;

/** A served model behind the epoll transport on a Unix socket. */
struct Fixture
{
    std::unique_ptr<Server> server;
    std::unique_ptr<SocketServer> transport;
    std::string socketPath;

    explicit Fixture(const TempDir &dir)
        : socketPath(dir.file("loadgen.sock"))
    {
        server = std::make_unique<Server>(ServerConfig{});
        const std::string model = dir.file("model.mtree");
        writeTree(trainedTree(), model);
        std::string err;
        if (!server->loadModel(model, "", nullptr, &err))
            ADD_FAILURE() << err;
        SocketConfig socket_config;
        socket_config.unixPath = socketPath;
        transport =
            std::make_unique<SocketServer>(*server, socket_config);
        if (!transport->start(&err))
            ADD_FAILURE() << err;
    }

    ~Fixture()
    {
        transport->stop();
        server->beginShutdown();
        server->drain();
    }
};

/** Config for a short mixed run against `fx`. */
LoadgenConfig
shortRun(const Fixture &fx)
{
    const Dataset probe = trainingData(64, 5);
    LoadgenConfig config;
    config.unixPath = fx.socketPath;
    config.ratePerSec = 200.0;
    config.durationSec = 0.4;
    config.connections = 2;
    config.rowsPerRequest = 4;
    config.schema = probe.columnNames();
    for (std::size_t r = 0; r < probe.numRows(); ++r) {
        const auto row = probe.row(r);
        config.pool.insert(config.pool.end(), row.begin(),
                           row.end());
    }
    return config;
}

TEST(LoadgenTest, ShortMixedRunCompletesCleanly)
{
    const TempDir dir("wct_loadgen_run");
    Fixture fx(dir);
    const LoadgenConfig config = shortRun(fx);

    std::string err;
    const auto report = runLoadgen(config, &err);
    ASSERT_TRUE(report.has_value()) << err;

    const auto offered = static_cast<std::uint64_t>(std::llround(
        config.ratePerSec * config.durationSec));
    EXPECT_EQ(report->offered, offered);
    EXPECT_EQ(report->completed, offered); // nothing dropped
    EXPECT_EQ(report->transportErrors, 0u);
    EXPECT_EQ(report->malformed(), 0u);
    EXPECT_EQ(
        report->byStatus[static_cast<std::size_t>(Status::Ok)],
        offered);
    EXPECT_GT(report->achievedRps, 0.0);
    EXPECT_GT(report->p99Us, 0.0);
    EXPECT_GE(report->p99Us, report->p50Us);

    // Every scheduled request was sent exactly once, and the default
    // mix exercises predict, classify, and stats (weights 6:2:0:1).
    const std::uint64_t sent =
        std::accumulate(report->sentByOp.begin(),
                        report->sentByOp.end(), std::uint64_t{0});
    EXPECT_EQ(sent, offered);
    EXPECT_GT(report->sentByOp[0], 0u); // predict
    EXPECT_GT(report->sentByOp[1], 0u); // classify
    EXPECT_EQ(report->sentByOp[2], 0u); // load (weight 0)
    EXPECT_GT(report->sentByOp[3], 0u); // stats

    // The summary the CLI prints mentions the headline numbers.
    const std::string text = report->renderText();
    EXPECT_NE(text.find("offered"), std::string::npos);
    EXPECT_NE(text.find("p99"), std::string::npos);
}

TEST(LoadgenTest, OpMixIsDeterministicPerSeed)
{
    const TempDir dir("wct_loadgen_seed");
    Fixture fx(dir);
    LoadgenConfig config = shortRun(fx);
    config.durationSec = 0.2;

    std::string err;
    const auto first = runLoadgen(config, &err);
    ASSERT_TRUE(first.has_value()) << err;
    const auto second = runLoadgen(config, &err);
    ASSERT_TRUE(second.has_value()) << err;
    EXPECT_EQ(first->sentByOp, second->sentByOp);

    config.seed = 99;
    const auto reseeded = runLoadgen(config, &err);
    ASSERT_TRUE(reseeded.has_value()) << err;
    EXPECT_NE(first->sentByOp, reseeded->sentByOp);
}

TEST(LoadgenTest, SetupFailuresAreErrorsNotEmptyReports)
{
    const TempDir dir("wct_loadgen_bad");

    // No server at the endpoint: the probe connection fails the run
    // up front instead of counting N transport errors.
    {
        Fixture fx(dir);
        LoadgenConfig config = shortRun(fx);
        config.unixPath = dir.file("nobody-home.sock");
        std::string err;
        EXPECT_FALSE(runLoadgen(config, &err).has_value());
        EXPECT_FALSE(err.empty());
    }

    // An inference mix with no schema/pool cannot build requests.
    {
        Fixture fx(dir);
        LoadgenConfig config = shortRun(fx);
        config.schema.clear();
        config.pool.clear();
        std::string err;
        EXPECT_FALSE(runLoadgen(config, &err).has_value());
        EXPECT_FALSE(err.empty());
    }

    // All weights zero: there is nothing to send.
    {
        Fixture fx(dir);
        LoadgenConfig config = shortRun(fx);
        config.predictWeight = 0;
        config.classifyWeight = 0;
        config.statsWeight = 0;
        std::string err;
        EXPECT_FALSE(runLoadgen(config, &err).has_value());
        EXPECT_FALSE(err.empty());
    }
}

} // namespace
} // namespace wct::serve
