/**
 * @file
 * CLI-level tests of the serving commands: `wct version`, the usage
 * text, and a full `wct serve` / `wct query` session over a Unix
 * socket driven entirely through runCli().
 */

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <sstream>
#include <thread>

#include "cli/cli.hh"
#include "data/csv.hh"
#include "tests/serve/serve_support.hh"

namespace wct::serve
{
namespace
{

using test::TempDir;

int
run(const std::vector<std::string> &args,
    std::string *out_text = nullptr, std::string *err_text = nullptr)
{
    std::ostringstream out;
    std::ostringstream err;
    const int code = runCli(args, out, err);
    if (out_text != nullptr)
        *out_text = out.str();
    if (err_text != nullptr)
        *err_text = err.str();
    return code;
}

TEST(ServeCliTest, VersionReportsEveryFormat)
{
    for (const char *spelling : {"version", "--version"}) {
        std::string out;
        EXPECT_EQ(run({spelling}, &out), 0);
        EXPECT_NE(out.find("wct "), std::string::npos);
        EXPECT_NE(out.find("wct-model-tree v1"), std::string::npos);
        EXPECT_NE(out.find("compiled-tree layout: v1"),
                  std::string::npos);
        EXPECT_NE(out.find("WCTDSET"), std::string::npos);
        EXPECT_NE(out.find("WCTSERV"), std::string::npos);
    }
}

TEST(ServeCliTest, UsageMentionsServeAndQuery)
{
    std::string err;
    EXPECT_EQ(run({"help"}, nullptr, &err), 0);
    EXPECT_NE(err.find("serve"), std::string::npos);
    EXPECT_NE(err.find("query"), std::string::npos);
    EXPECT_NE(err.find("version"), std::string::npos);
}

TEST(ServeCliTest, ServeAndQueryRoundTripOverAUnixSocket)
{
    TempDir dir("wct_serve_cli_test");
    const ModelTree tree = test::trainedTree();
    const std::string model_path = dir.file("m.mtree");
    test::writeTree(tree, model_path);

    const Dataset probe = test::trainingData(5, 23);
    const std::string csv_path = dir.file("probe.csv");
    writeCsvFile(probe, csv_path);

    const std::string sock = dir.file("serve.sock");
    std::string serve_out;
    std::string serve_err;
    std::thread server([&] {
        EXPECT_EQ(run({"serve", "--model", model_path, "--unix",
                       sock, "--stats-text"},
                      &serve_out, &serve_err),
                  0);
    });

    // Wait for the listener to come up (the socket file appears
    // before accept() starts, which is all connectUnix needs).
    for (int i = 0; i < 500 && !std::filesystem::exists(sock); ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_TRUE(std::filesystem::exists(sock));

    std::string out;
    ASSERT_EQ(run({"query", "--unix", sock, "--op", "predict",
                   "--data", csv_path},
                  &out),
              0);
    // One "cpi LMk" line per probe row, matching the offline tree.
    std::istringstream lines(out);
    std::string line;
    std::size_t rows = 0;
    while (std::getline(lines, line)) {
        std::istringstream fields(line);
        double cpi = 0.0;
        std::string leaf;
        ASSERT_TRUE(fields >> cpi >> leaf) << line;
        EXPECT_NEAR(cpi, tree.predict(probe.row(rows)), 1e-4);
        EXPECT_EQ(leaf,
                  "LM" + std::to_string(
                             tree.classify(probe.row(rows)) + 1));
        ++rows;
    }
    EXPECT_EQ(rows, probe.numRows());

    // Augmented-CSV output.
    const std::string out_csv = dir.file("augmented.csv");
    ASSERT_EQ(run({"query", "--unix", sock, "--op", "predict",
                   "--data", csv_path, "--out", out_csv},
                  &out),
              0);
    EXPECT_TRUE(std::filesystem::exists(out_csv));
    std::ifstream augmented(out_csv);
    std::string header;
    ASSERT_TRUE(std::getline(augmented, header));
    EXPECT_NE(header.find("PredictedCPI"), std::string::npos);
    EXPECT_NE(header.find("LeafModel"), std::string::npos);

    // classify / stats / shutdown.
    ASSERT_EQ(run({"query", "--unix", sock, "--op", "classify",
                   "--data", csv_path},
                  &out),
              0);
    EXPECT_NE(out.find("LM"), std::string::npos);

    ASSERT_EQ(run({"query", "--unix", sock, "--op", "stats"}, &out),
              0);
    EXPECT_NE(out.find("serving metrics"), std::string::npos);
    EXPECT_NE(out.find("predict=2"), std::string::npos);

    ASSERT_EQ(
        run({"query", "--unix", sock, "--op", "shutdown"}, &out), 0);
    EXPECT_NE(out.find("shutting down"), std::string::npos);

    server.join();
    EXPECT_NE(serve_err.find("serving on"), std::string::npos);
    EXPECT_NE(serve_err.find("server drained"), std::string::npos);
    // --stats-text dumped the final snapshot on stdout.
    EXPECT_NE(serve_out.find("serving metrics"), std::string::npos);
    EXPECT_NE(serve_out.find("shutdown=1"), std::string::npos);
}

TEST(ServeCliTest, QueryAgainstAMissingServerFailsCleanly)
{
    TempDir dir("wct_serve_cli_noserver");
    // wct_fatal exits with code 1; run it in a death-test so the
    // test binary survives.
    EXPECT_EXIT(run({"query", "--unix", dir.file("absent.sock"),
                     "--op", "stats"}),
                ::testing::ExitedWithCode(1), "cannot connect");
}

} // namespace
} // namespace wct::serve
