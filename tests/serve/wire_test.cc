/**
 * @file
 * Wire-protocol codec tests: round-trips for every opcode, plus the
 * rejection paths (truncation, corruption, version mismatch,
 * trailing bytes, hostile counts) that keep a bad client from
 * crashing or ballooning the server.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "data/binary_io.hh"
#include "serve/wire.hh"

namespace wct::serve
{
namespace
{

Request
predictRequest()
{
    Request request;
    request.op = Opcode::Predict;
    request.id = 42;
    request.modelKey = "cpu2006";
    request.schema = {"IPC", "L1D_MISS", "CPI"};
    request.rows = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
    return request;
}

/** Envelope payload of a frame (strips the envelope via readFrame). */
std::string
payloadOf(const std::string &frame)
{
    std::istringstream in(frame);
    const auto payload = readFrame(in);
    EXPECT_TRUE(payload.has_value());
    return payload.value_or("");
}

TEST(WireTest, PredictRequestRoundTrip)
{
    const Request request = predictRequest();
    const std::string frame = encodeRequest(request);
    const auto decoded = decodeRequest(payloadOf(frame));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->op, Opcode::Predict);
    EXPECT_EQ(decoded->id, 42u);
    EXPECT_EQ(decoded->modelKey, "cpu2006");
    EXPECT_EQ(decoded->schema, request.schema);
    EXPECT_EQ(decoded->rows, request.rows);
    EXPECT_EQ(decoded->numRows(), 2u);
}

TEST(WireTest, LoadModelAndControlRequestsRoundTrip)
{
    Request load;
    load.op = Opcode::LoadModel;
    load.id = 7;
    load.path = "/models/tree.mtree";
    load.alias = "prod";
    const auto decoded_load =
        decodeRequest(payloadOf(encodeRequest(load)));
    ASSERT_TRUE(decoded_load.has_value());
    EXPECT_EQ(decoded_load->path, load.path);
    EXPECT_EQ(decoded_load->alias, "prod");

    for (Opcode op : {Opcode::Stats, Opcode::Shutdown}) {
        Request control;
        control.op = op;
        control.id = 9;
        const auto decoded =
            decodeRequest(payloadOf(encodeRequest(control)));
        ASSERT_TRUE(decoded.has_value());
        EXPECT_EQ(decoded->op, op);
        EXPECT_EQ(decoded->id, 9u);
    }
}

TEST(WireTest, PredictResponseRoundTrip)
{
    Response response;
    response.op = Opcode::Predict;
    response.id = 42;
    response.status = Status::Ok;
    response.cpi = {1.25, 2.5};
    response.leaf = {3, 11};
    const auto decoded =
        decodeResponse(payloadOf(encodeResponse(response)));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->cpi, response.cpi);
    EXPECT_EQ(decoded->leaf, response.leaf);
    EXPECT_EQ(decoded->status, Status::Ok);
}

TEST(WireTest, ErrorResponseRoundTrip)
{
    Response response;
    response.op = Opcode::Classify;
    response.id = 5;
    response.status = Status::Overloaded;
    response.error = "admission queue is full; retry";
    const auto decoded =
        decodeResponse(payloadOf(encodeResponse(response)));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->status, Status::Overloaded);
    EXPECT_EQ(decoded->error, response.error);
    EXPECT_TRUE(decoded->cpi.empty());
}

TEST(WireTest, StatsResponseRoundTrip)
{
    Response response;
    response.op = Opcode::Stats;
    response.id = 1;
    response.status = Status::Ok;
    response.stats.requestsByOp[0] = 100;
    response.stats.batches = 12;
    response.stats.samplesPredicted = 3000;
    response.stats.queueDepthPeak = 17;
    response.stats.requestLatencyUs.bounds.assign(
        kLatencyBoundsUs.begin(), kLatencyBoundsUs.end());
    response.stats.requestLatencyUs.counts.assign(
        kLatencyBoundsUs.size() + 1, 0);
    response.stats.requestLatencyUs.counts[2] = 100;
    response.stats.batchSize.bounds.assign(
        kBatchSizeBounds.begin(), kBatchSizeBounds.end());
    response.stats.batchSize.counts.assign(
        kBatchSizeBounds.size() + 1, 0);
    response.stats.batchSize.counts[0] = 12;
    response.stats.shedByOp[0] = 7;
    response.stats.deadlineExpiredByOp[1] = 3;
    for (auto &hist : response.stats.classLatencyUs) {
        hist.bounds.assign(kLatencyBoundsUs.begin(),
                           kLatencyBoundsUs.end());
        hist.counts.assign(kLatencyBoundsUs.size() + 1, 0);
    }
    response.stats.classLatencyUs[0].counts[3] = 42;

    const auto decoded =
        decodeResponse(payloadOf(encodeResponse(response)));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->stats.requestsByOp[0], 100u);
    EXPECT_EQ(decoded->stats.batches, 12u);
    EXPECT_EQ(decoded->stats.samplesPredicted, 3000u);
    EXPECT_EQ(decoded->stats.queueDepthPeak, 17u);
    EXPECT_EQ(decoded->stats.requestLatencyUs.counts[2], 100u);
    EXPECT_DOUBLE_EQ(decoded->stats.requestLatencyUs.quantile(0.5),
                     200.0);
    EXPECT_EQ(decoded->stats.shedByOp[0], 7u);
    EXPECT_EQ(decoded->stats.deadlineExpiredByOp[1], 3u);
    EXPECT_EQ(decoded->stats.classLatencyUs[0].counts[3], 42u);
}

TEST(WireTest, TruncatedFrameIsRejected)
{
    const std::string frame = encodeRequest(predictRequest());
    for (std::size_t keep :
         {std::size_t(0), std::size_t(4), std::size_t(19),
          frame.size() / 2, frame.size() - 1}) {
        std::istringstream in(frame.substr(0, keep));
        EXPECT_FALSE(readFrame(in).has_value())
            << "keep=" << keep;
    }
}

TEST(WireTest, EveryStrictFramePrefixIsRejected)
{
    // Exhaustive truncation sweep: a valid frame cut at *any* byte
    // boundary short of the full length must be refused — there is
    // no prefix of a sealed frame that is itself a sealed frame.
    const std::string frame = encodeRequest(predictRequest());
    ASSERT_GT(frame.size(), 28u); // header + checksum at minimum
    for (std::size_t keep = 0; keep < frame.size(); ++keep) {
        std::istringstream in(frame.substr(0, keep));
        EXPECT_FALSE(readFrame(in).has_value()) << "keep=" << keep;
    }
}

TEST(WireTest, EveryStrictPayloadPrefixIsRejected)
{
    // Same sweep one layer down: every strict prefix of a decoded
    // request/response payload must fail the body decoder (the
    // parser either runs dry mid-field or trips the atEnd check).
    const std::string request =
        payloadOf(encodeRequest(predictRequest()));
    for (std::size_t keep = 0; keep < request.size(); ++keep)
        EXPECT_FALSE(
            decodeRequest(request.substr(0, keep)).has_value())
            << "request keep=" << keep;

    Response ok;
    ok.op = Opcode::Predict;
    ok.id = 9;
    ok.cpi = {1.5, 0.5};
    ok.leaf = {2, 4};
    const std::string response = payloadOf(encodeResponse(ok));
    for (std::size_t keep = 0; keep < response.size(); ++keep)
        EXPECT_FALSE(
            decodeResponse(response.substr(0, keep)).has_value())
            << "response keep=" << keep;
}

TEST(WireTest, CorruptFrameIsRejected)
{
    const std::string frame = encodeRequest(predictRequest());
    // Flip one byte in every region: magic, version, size, payload,
    // checksum. All must fail the envelope checks.
    for (std::size_t pos : {std::size_t(0), std::size_t(9),
                            std::size_t(13), frame.size() / 2,
                            frame.size() - 1}) {
        std::string corrupt = frame;
        corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x40);
        std::istringstream in(corrupt);
        EXPECT_FALSE(readFrame(in).has_value()) << "pos=" << pos;
    }
}

TEST(WireTest, VersionMismatchIsRejected)
{
    // Re-seal the same payload under a future wire version: the
    // reader must refuse it even though the checksum is valid.
    const std::string payload =
        payloadOf(encodeRequest(predictRequest()));
    std::ostringstream future;
    writeEnvelope(future, std::string_view(kWireMagic, 8),
                  kWireFormatVersion + 1, payload);
    std::istringstream in(future.str());
    EXPECT_FALSE(readFrame(in).has_value());
}

TEST(WireTest, TrailingBytesAreRejected)
{
    const std::string payload =
        payloadOf(encodeRequest(predictRequest()));
    EXPECT_FALSE(decodeRequest(payload + "x").has_value());
}

TEST(WireTest, HostileRowCountIsRejected)
{
    // A payload claiming 2^20 rows of 3 columns but carrying none:
    // the decoder must fail fast instead of allocating gigabytes.
    ByteSink sink;
    sink.putU8(static_cast<std::uint8_t>(Opcode::Predict));
    sink.putU64(1);
    sink.putU32(0); // budgetMs (wire v2 header)
    sink.putString("");
    sink.putU64(3);
    for (const char *name : {"a", "b", "c"})
        sink.putString(name);
    sink.putU64(1u << 20);
    std::string err;
    EXPECT_FALSE(decodeRequest(sink.bytes(), &err).has_value());
    EXPECT_NE(err.find("row count"), std::string::npos);
}

TEST(WireTest, OversizedFrameClaimIsRejected)
{
    // A 20-byte header claiming a near-terabyte payload: readFrame
    // must refuse it (before any allocation) instead of zero-filling
    // the claimed size and dying on bad_alloc / the OOM killer.
    for (std::uint64_t claimed :
         {kMaxFramePayload + 1, std::uint64_t(1) << 39}) {
        std::ostringstream hostile;
        hostile.write(kWireMagic, 8);
        hostile.write(
            reinterpret_cast<const char *>(&kWireFormatVersion),
            sizeof kWireFormatVersion);
        hostile.write(reinterpret_cast<const char *>(&claimed),
                      sizeof claimed);
        std::istringstream in(hostile.str());
        EXPECT_FALSE(readFrame(in).has_value())
            << "claimed=" << claimed;
    }
}

TEST(WireTest, BadOpcodeIsRejected)
{
    ByteSink sink;
    sink.putU8(99);
    sink.putU64(1);
    EXPECT_FALSE(decodeRequest(sink.bytes()).has_value());
}

TEST(WireTest, OpcodeAndStatusNames)
{
    EXPECT_STREQ(opcodeName(Opcode::Predict), "predict");
    EXPECT_STREQ(opcodeName(Opcode::Shutdown), "shutdown");
    EXPECT_STREQ(statusName(Status::Ok), "ok");
    EXPECT_STREQ(statusName(Status::MalformedFrame),
                 "malformedFrame");
}

} // namespace
} // namespace wct::serve
