/**
 * @file
 * Serving-metrics tests: counter accumulation, conservative histogram
 * quantiles, wire round-trip of snapshots, and the text rendering.
 */

#include <gtest/gtest.h>

#include "data/binary_io.hh"
#include "serve/metrics.hh"
#include "serve/wire.hh"

namespace wct::serve
{
namespace
{

TEST(ServeMetricsTest, CountersAccumulate)
{
    ServingMetrics metrics;
    metrics.countRequest(static_cast<std::uint8_t>(Opcode::Predict));
    metrics.countRequest(static_cast<std::uint8_t>(Opcode::Predict));
    metrics.countRequest(static_cast<std::uint8_t>(Opcode::Stats));
    metrics.countRequest(0);  // out of range: ignored, not UB
    metrics.countRequest(99); // likewise
    metrics.countResponse(static_cast<std::uint8_t>(Status::Ok));
    metrics.countResponse(
        static_cast<std::uint8_t>(Status::Overloaded));
    metrics.countResponse(99);
    metrics.countBatch(4, 100);
    metrics.countBatch(1, 1);
    metrics.countRejectedOverload();
    metrics.countMalformedFrame();
    metrics.countModelLoad(true);
    metrics.countModelLoad(false);
    metrics.recordRequestLatencyUs(75.0);

    const MetricsSnapshot snap = metrics.snapshot(3);
    EXPECT_EQ(snap.requestsByOp[0], 2u); // predict
    EXPECT_EQ(snap.requestsByOp[3], 1u); // stats
    EXPECT_EQ(snap.responsesByStatus[0], 1u);
    EXPECT_EQ(snap.responsesByStatus[2], 1u);
    EXPECT_EQ(snap.batches, 2u);
    EXPECT_EQ(snap.samplesPredicted, 101u);
    EXPECT_EQ(snap.rejectedOverload, 1u);
    EXPECT_EQ(snap.malformedFrames, 1u);
    EXPECT_EQ(snap.modelLoads, 1u);
    EXPECT_EQ(snap.modelLoadFailures, 1u);
    EXPECT_EQ(snap.queueDepth, 3u);
    EXPECT_EQ(snap.requestLatencyUs.total(), 1u);
    EXPECT_EQ(snap.batchSize.total(), 2u);
}

TEST(ServeMetricsTest, QueueDepthPeakIsAHighWaterMark)
{
    ServingMetrics metrics;
    metrics.recordQueueDepth(3);
    metrics.recordQueueDepth(7);
    metrics.recordQueueDepth(2);
    EXPECT_EQ(metrics.snapshot(0).queueDepthPeak, 7u);
}

TEST(ServeMetricsTest, QuantilesAreConservativeBucketBounds)
{
    HistogramSnapshot snap;
    snap.bounds = {10, 20, 40};
    snap.counts = {5, 3, 1, 1}; // last bucket = overflow

    // Rank math: 10 observations; q=0.5 -> rank 5 -> first bucket.
    EXPECT_DOUBLE_EQ(snap.quantile(0.5), 10.0);
    EXPECT_DOUBLE_EQ(snap.quantile(0.8), 20.0);
    EXPECT_DOUBLE_EQ(snap.quantile(0.9), 40.0);
    // Overflow rank reports the measurement ceiling, never invents a
    // larger number.
    EXPECT_DOUBLE_EQ(snap.quantile(1.0), 40.0);

    const HistogramSnapshot empty{{10, 20}, {0, 0, 0}};
    EXPECT_DOUBLE_EQ(empty.quantile(0.99), 0.0);
    EXPECT_EQ(empty.total(), 0u);
}

TEST(ServeMetricsTest, LatencyHistogramBucketsByBound)
{
    ServingMetrics metrics;
    metrics.recordRequestLatencyUs(40);      // <= 50
    metrics.recordRequestLatencyUs(50);      // boundary: first bucket
    metrics.recordRequestLatencyUs(51);      // second bucket
    metrics.recordRequestLatencyUs(9.9e307); // overflow bucket
    const HistogramSnapshot snap =
        metrics.snapshot(0).requestLatencyUs;
    EXPECT_EQ(snap.counts.front(), 2u);
    EXPECT_EQ(snap.counts[1], 1u);
    EXPECT_EQ(snap.counts.back(), 1u);
    EXPECT_EQ(snap.total(), 4u);
}

TEST(ServeMetricsTest, SnapshotWireRoundTrip)
{
    ServingMetrics metrics;
    for (int i = 0; i < 17; ++i)
        metrics.countRequest(
            static_cast<std::uint8_t>(Opcode::Predict));
    metrics.countBatch(8, 512);
    metrics.recordQueueDepth(12);
    metrics.recordRequestLatencyUs(300);
    const MetricsSnapshot original = metrics.snapshot(5);

    ByteSink sink;
    appendSnapshot(sink, original);
    ByteParser parser(sink.bytes());
    MetricsSnapshot decoded;
    ASSERT_TRUE(parseSnapshot(parser, decoded));
    EXPECT_TRUE(parser.atEnd());

    EXPECT_EQ(decoded.requestsByOp, original.requestsByOp);
    EXPECT_EQ(decoded.responsesByStatus, original.responsesByStatus);
    EXPECT_EQ(decoded.batches, original.batches);
    EXPECT_EQ(decoded.samplesPredicted, original.samplesPredicted);
    EXPECT_EQ(decoded.queueDepth, 5u);
    EXPECT_EQ(decoded.queueDepthPeak, 12u);
    EXPECT_EQ(decoded.requestLatencyUs.counts,
              original.requestLatencyUs.counts);
    EXPECT_EQ(decoded.requestLatencyUs.bounds,
              original.requestLatencyUs.bounds);
    EXPECT_EQ(decoded.batchSize.counts, original.batchSize.counts);
}

TEST(ServeMetricsTest, ParseRejectsForeignBucketCount)
{
    // A peer compiled with different histogram bounds would send a
    // different bucket count; the parser must refuse rather than
    // misalign the remaining fields.
    MetricsSnapshot snapshot;
    snapshot.requestLatencyUs.bounds = {1, 2};
    snapshot.requestLatencyUs.counts = {0, 0, 0};
    snapshot.batchSize.bounds.assign(kBatchSizeBounds.begin(),
                                     kBatchSizeBounds.end());
    snapshot.batchSize.counts.assign(kBatchSizeBounds.size() + 1, 0);
    ByteSink sink;
    appendSnapshot(sink, snapshot);
    ByteParser parser(sink.bytes());
    MetricsSnapshot decoded;
    EXPECT_FALSE(parseSnapshot(parser, decoded));
}

TEST(ServeMetricsTest, ParseRejectsTruncation)
{
    ServingMetrics metrics;
    ByteSink sink;
    appendSnapshot(sink, metrics.snapshot(0));
    const std::string bytes(sink.bytes());
    for (std::size_t keep : {std::size_t(0), std::size_t(8),
                             bytes.size() / 2, bytes.size() - 1}) {
        ByteParser parser(std::string_view(bytes).substr(0, keep));
        MetricsSnapshot decoded;
        EXPECT_FALSE(parseSnapshot(parser, decoded))
            << "keep=" << keep;
    }
}

TEST(ServeMetricsTest, RenderTextShowsTheHeadlineNumbers)
{
    ServingMetrics metrics;
    metrics.countRequest(static_cast<std::uint8_t>(Opcode::Predict));
    metrics.countResponse(static_cast<std::uint8_t>(Status::Ok));
    metrics.countBatch(2, 64);
    metrics.countModelLoad(true);
    const std::string text = metrics.snapshot(1).renderText();
    EXPECT_NE(text.find("predict=1"), std::string::npos);
    EXPECT_NE(text.find("ok=1"), std::string::npos);
    EXPECT_NE(text.find("64 samples"), std::string::npos);
    EXPECT_NE(text.find("model loads: 1 ok"), std::string::npos);
    EXPECT_NE(text.find("p95"), std::string::npos);
    EXPECT_NE(text.find("queue depth: 1 now"), std::string::npos);
}

} // namespace
} // namespace wct::serve
