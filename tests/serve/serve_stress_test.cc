/**
 * @file
 * Concurrency stress of the serving stack, built to run under TSan:
 * many loopback client threads hammering a deliberately tiny
 * admission queue while another thread hot-reloads the model and a
 * third polls stats — then a socket variant with concurrent TCP
 * clients. Checks the accounting invariants (every request answered
 * exactly once, overloads counted, nothing lost) rather than timing.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.hh"
#include "serve/socket.hh"
#include "tests/serve/serve_support.hh"

namespace wct::serve
{
namespace
{

using test::TempDir;

Response
decode(const std::string &frame)
{
    std::istringstream in(frame);
    const auto payload = readFrame(in);
    EXPECT_TRUE(payload.has_value());
    auto response = decodeResponse(payload.value_or(""));
    EXPECT_TRUE(response.has_value());
    return response.value_or(Response{});
}

TEST(ServeStressTest, LoopbackClientsVersusReloadsAndOverload)
{
    constexpr std::size_t kClients = 8;
    constexpr std::size_t kRequestsPerClient = 60;

    TempDir dir("wct_serve_stress");
    const ModelTree v1 = test::trainedTree(1200, 1);
    const ModelTree v2 = test::trainedTree(1200, 99);
    const std::string path = dir.file("m.mtree");
    test::writeTree(v1, path);
    const Dataset probe = test::trainingData(32, 11);

    ServerConfig config;
    config.queueDepth = 4; // tiny on purpose: provoke Overloaded
    config.maxBatch = 8;
    config.batchers = 2;
    Server server(config);
    std::string err;
    ASSERT_TRUE(server.loadModel(path, "prod", nullptr, &err)) << err;

    std::atomic<std::uint64_t> ok{0};
    std::atomic<std::uint64_t> overloaded{0};
    std::atomic<std::uint64_t> other{0};

    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            for (std::size_t i = 0; i < kRequestsPerClient; ++i) {
                const Opcode op = (c + i) % 2 == 0 ? Opcode::Predict
                                                   : Opcode::Classify;
                const Request request = test::inferenceRequest(
                    op, probe, 1 + (c + i) % probe.numRows(),
                    c * kRequestsPerClient + i, "prod");
                const Response response = decode(
                    server.handleFrame(encodeRequest(request)));
                if (response.status == Status::Ok) {
                    ok.fetch_add(1, std::memory_order_relaxed);
                    // Sanity on the payload of every Ok answer.
                    ASSERT_EQ(response.leaf.size(),
                              request.numRows());
                    if (op == Opcode::Predict) {
                        ASSERT_EQ(response.cpi.size(),
                                  request.numRows());
                    }
                    for (std::uint64_t leaf : response.leaf) {
                        ASSERT_GE(leaf, 1u);
                        ASSERT_LE(leaf, std::max(v1.numLeaves(),
                                                 v2.numLeaves()));
                    }
                } else if (response.status == Status::Overloaded) {
                    overloaded.fetch_add(1,
                                         std::memory_order_relaxed);
                } else {
                    other.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }

    // Hot-reload churn while inference traffic is in flight.
    std::atomic<bool> done{false};
    std::thread reloader([&] {
        bool flip = false;
        while (!done.load(std::memory_order_acquire)) {
            test::writeTree(flip ? v2 : v1, path);
            std::string reload_err;
            ASSERT_TRUE(server.loadModel(path, "prod", nullptr,
                                         &reload_err))
                << reload_err;
            flip = !flip;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        }
    });
    std::thread poller([&] {
        while (!done.load(std::memory_order_acquire)) {
            Request stats;
            stats.op = Opcode::Stats;
            EXPECT_EQ(
                decode(server.handleFrame(encodeRequest(stats)))
                    .status,
                Status::Ok);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        }
    });

    for (std::thread &client : clients)
        client.join();
    done.store(true, std::memory_order_release);
    reloader.join();
    poller.join();

    server.beginShutdown();
    server.drain();

    // Every inference request was answered exactly once.
    const std::uint64_t num_ok = ok.load();
    const std::uint64_t num_overloaded = overloaded.load();
    const std::uint64_t num_other = other.load();
    EXPECT_EQ(num_ok + num_overloaded + num_other,
              kClients * kRequestsPerClient);
    EXPECT_EQ(num_other, 0u);
    EXPECT_GT(num_ok, 0u);

    const MetricsSnapshot stats = server.stats();
    EXPECT_EQ(stats.rejectedOverload, num_overloaded);
    EXPECT_EQ(stats.responsesByStatus[static_cast<std::size_t>(
                  Status::Overloaded)],
              num_overloaded);
    EXPECT_EQ(stats.requestsByOp[0] + stats.requestsByOp[1],
              kClients * kRequestsPerClient);
    EXPECT_EQ(stats.requestLatencyUs.total(), num_ok);
    EXPECT_EQ(stats.queueDepth, 0u); // fully drained
    EXPECT_GT(stats.batches, 0u);
}

TEST(ServeStressTest, ConcurrentTcpClients)
{
    constexpr std::size_t kClients = 6;
    constexpr std::size_t kRequestsPerClient = 25;

    TempDir dir("wct_serve_stress_tcp");
    const ModelTree tree = test::trainedTree();
    const std::string path = dir.file("m.mtree");
    test::writeTree(tree, path);
    const Dataset probe = test::trainingData(16, 13);

    Server server;
    std::string err;
    ASSERT_TRUE(server.loadModel(path, "", nullptr, &err)) << err;

    SocketConfig config;
    config.maxConnections = kClients;
    SocketServer transport(server, config);
    ASSERT_TRUE(transport.start(&err)) << err;
    const int port = transport.boundPort();
    ASSERT_GT(port, 0);

    std::atomic<std::uint64_t> ok{0};
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            std::string client_err;
            auto client = ServeClient::connectTcp(port, &client_err);
            ASSERT_TRUE(client.has_value()) << client_err;
            for (std::size_t i = 0; i < kRequestsPerClient; ++i) {
                const Request request = test::inferenceRequest(
                    Opcode::Predict, probe, probe.numRows(),
                    c * kRequestsPerClient + i);
                const auto response =
                    client->call(request, &client_err);
                ASSERT_TRUE(response.has_value()) << client_err;
                ASSERT_EQ(response->status, Status::Ok);
                // Served predictions match the offline tree exactly,
                // on every thread, every time.
                for (std::size_t r = 0; r < probe.numRows(); ++r)
                    ASSERT_DOUBLE_EQ(response->cpi[r],
                                     tree.predict(probe.row(r)));
                ok.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    for (std::thread &client : clients)
        client.join();
    EXPECT_EQ(ok.load(), kClients * kRequestsPerClient);

    transport.stop();
    server.beginShutdown();
    server.drain();
    EXPECT_EQ(server.stats().requestsByOp[0],
              kClients * kRequestsPerClient);
}

} // namespace
} // namespace wct::serve
