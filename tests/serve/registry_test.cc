/**
 * @file
 * Model-registry tests: content-hash keys, alias lookup, hot reload
 * that never disturbs in-flight readers, and the non-fatal rejection
 * of corrupt model files.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "data/artifact_store.hh"
#include "mtree/compiled_tree.hh"
#include "mtree/serialize.hh"
#include "serve/registry.hh"
#include "tests/serve/serve_support.hh"

namespace wct::serve
{
namespace
{

using test::TempDir;

TEST(RegistryTest, LoadFillsInfoAndResolvesEveryWay)
{
    TempDir dir("wct_registry_test_load");
    const ModelTree tree = test::trainedTree();
    const std::string path = dir.file("cpu.mtree");
    test::writeTree(tree, path);

    ModelRegistry registry;
    ModelInfo info;
    std::string err;
    ASSERT_TRUE(registry.loadFile(path, "", &info, &err)) << err;
    EXPECT_EQ(info.alias, "cpu"); // derived from the file stem
    EXPECT_EQ(info.sourcePath, path);
    EXPECT_EQ(info.target, "y");
    EXPECT_EQ(info.numLeaves, tree.numLeaves());
    EXPECT_EQ(info.numColumns, tree.schema().size());
    EXPECT_EQ(info.key.size(), 16u); // fnv1a64 hex
    EXPECT_EQ(registry.size(), 1u);

    // By alias, by content key, and as the default model.
    for (const std::string &key : {info.alias, info.key,
                                   std::string()}) {
        const auto found = registry.find(key);
        ASSERT_NE(found, nullptr) << "key='" << key << "'";
        EXPECT_EQ(found->numLeaves(), tree.numLeaves());
    }
    EXPECT_EQ(registry.find("nonsense"), nullptr);
}

TEST(RegistryTest, CorruptFileIsRejectedNonFatally)
{
    TempDir dir("wct_registry_test_corrupt");
    const std::string path = dir.file("bad.mtree");
    test::writeGarbage(path);

    ModelRegistry registry;
    std::string err;
    EXPECT_FALSE(registry.loadFile(path, "", nullptr, &err));
    EXPECT_FALSE(err.empty());
    EXPECT_EQ(registry.size(), 0u);

    std::string missing_err;
    EXPECT_FALSE(registry.loadFile(dir.file("absent.mtree"), "",
                                   nullptr, &missing_err));
    EXPECT_FALSE(missing_err.empty());
}

TEST(RegistryTest, FailedReloadKeepsPreviousVersionServing)
{
    TempDir dir("wct_registry_test_keep");
    const ModelTree tree = test::trainedTree();
    const std::string path = dir.file("m.mtree");
    test::writeTree(tree, path);

    ModelRegistry registry;
    ModelInfo info;
    std::string err;
    ASSERT_TRUE(registry.loadFile(path, "prod", &info, &err)) << err;

    // The file rots on disk; the reload must fail while the entry
    // loaded from the good bytes keeps serving.
    test::writeGarbage(path);
    EXPECT_FALSE(registry.loadFile(path, "prod", nullptr, &err));
    EXPECT_EQ(registry.size(), 1u);
    const auto still = registry.find("prod");
    ASSERT_NE(still, nullptr);
    EXPECT_EQ(still->numLeaves(), tree.numLeaves());
}

TEST(RegistryTest, HotReloadSwapsEntryWithoutInvalidatingReaders)
{
    TempDir dir("wct_registry_test_reload");
    const ModelTree v1 = test::trainedTree(1200, 1);
    const ModelTree v2 = test::trainedTree(1200, 99);
    const std::string path = dir.file("m.mtree");
    test::writeTree(v1, path);

    ModelRegistry registry;
    ModelInfo info1;
    std::string err;
    ASSERT_TRUE(registry.loadFile(path, "prod", &info1, &err)) << err;

    // An "in-flight batch" holds the old version across the reload.
    const auto held = registry.find("prod");
    ASSERT_NE(held, nullptr);

    test::writeTree(v2, path);
    ModelInfo info2;
    ASSERT_TRUE(registry.loadFile(path, "prod", &info2, &err)) << err;
    EXPECT_EQ(registry.size(), 1u); // replaced, not appended
    EXPECT_NE(info2.key, info1.key);

    const auto fresh = registry.find("prod");
    ASSERT_NE(fresh, nullptr);
    EXPECT_EQ(fresh->numLeaves(), v2.numLeaves());

    // The held pointer still answers with v1's predictions.
    const Dataset probe = test::trainingData(16, 7);
    for (std::size_t r = 0; r < probe.numRows(); ++r) {
        EXPECT_DOUBLE_EQ(held->predict(probe.row(r)),
                         v1.predict(probe.row(r)));
    }

    // The old content key no longer resolves; the new one does.
    EXPECT_EQ(registry.find(info1.key), nullptr);
    EXPECT_NE(registry.find(info2.key), nullptr);
}

TEST(RegistryTest, HotReloadRebuildsTheCompiledForm)
{
    // A reload must swap the flattened evaluator together with the
    // tree: the entry's compiled shape follows the new model, and
    // predictions through the fresh compiled form are the new
    // tree's, bit for bit.
    TempDir dir("wct_registry_test_compiled");
    const ModelTree v1 = test::trainedTree(1200, 1);
    const ModelTree v2 = test::trainedTree(1200, 99);
    ASSERT_NE(v1.numLeaves(), v2.numLeaves());
    const std::string path = dir.file("m.mtree");
    test::writeTree(v1, path);

    ModelRegistry registry;
    ModelInfo info1;
    std::string err;
    ASSERT_TRUE(registry.loadFile(path, "prod", &info1, &err)) << err;
    EXPECT_EQ(info1.compiledNodes, v1.compiled().numNodes());
    EXPECT_EQ(info1.compiledDepth, v1.compiled().depth());

    test::writeTree(v2, path);
    ModelInfo info2;
    ASSERT_TRUE(registry.loadFile(path, "prod", &info2, &err)) << err;
    EXPECT_EQ(info2.compiledNodes, v2.compiled().numNodes());
    EXPECT_EQ(info2.compiledDepth, v2.compiled().depth());
    EXPECT_NE(info2.compiledNodes, info1.compiledNodes);

    const auto fresh = registry.find("prod");
    ASSERT_NE(fresh, nullptr);
    const Dataset probe = test::trainingData(16, 7);
    for (std::size_t r = 0; r < probe.numRows(); ++r) {
        EXPECT_DOUBLE_EQ(fresh->compiled().predict(probe.row(r)),
                         v2.predict(probe.row(r)));
    }
}

TEST(RegistryTest, ReloadingIdenticalBytesKeepsTheSameKey)
{
    TempDir dir("wct_registry_test_same");
    const std::string path = dir.file("m.mtree");
    test::writeTree(test::trainedTree(), path);

    ModelRegistry registry;
    ModelInfo first;
    ModelInfo second;
    std::string err;
    ASSERT_TRUE(registry.loadFile(path, "m", &first, &err)) << err;
    ASSERT_TRUE(registry.loadFile(path, "m", &second, &err)) << err;
    EXPECT_EQ(first.key, second.key); // identity is the content hash
    EXPECT_EQ(registry.size(), 1u);
}

TEST(RegistryTest, EvictForgetsByAliasOrKey)
{
    TempDir dir("wct_registry_test_evict");
    const std::string path_a = dir.file("a.mtree");
    const std::string path_b = dir.file("b.mtree");
    test::writeTree(test::trainedTree(1200, 1), path_a);
    test::writeTree(test::trainedTree(1200, 2), path_b);

    ModelRegistry registry;
    ModelInfo info_a;
    ModelInfo info_b;
    std::string err;
    ASSERT_TRUE(registry.loadFile(path_a, "", &info_a, &err)) << err;
    ASSERT_TRUE(registry.loadFile(path_b, "", &info_b, &err)) << err;
    ASSERT_EQ(registry.size(), 2u);
    EXPECT_EQ(registry.list().size(), 2u);

    EXPECT_TRUE(registry.evict("a"));          // by alias
    EXPECT_FALSE(registry.evict("a"));         // already gone
    EXPECT_TRUE(registry.evict(info_b.key));   // by content key
    EXPECT_EQ(registry.size(), 0u);
    EXPECT_EQ(registry.find(""), nullptr);
}

/** Serialize a tree and publish it in `store` the way the train
 * stage does: under ("mtree", content key of the text). */
std::string
publishTree(const ArtifactStore &store, const ModelTree &tree)
{
    std::ostringstream text;
    writeModelTree(tree, text);
    const std::string hex = modelTreeContentHex(text.str());
    EXPECT_TRUE(store.store(
        {"mtree", modelTreeContentKey(text.str())}, text.str()));
    return hex;
}

TEST(RegistryTest, LoadFromStoreResolvesByContentKey)
{
    TempDir dir("wct_registry_test_store");
    const ArtifactStore store(dir.file("cache"));
    const ModelTree tree = test::trainedTree();
    const std::string hex = publishTree(store, tree);

    ModelRegistry registry;
    ModelInfo info;
    std::string err;
    ASSERT_TRUE(registry.loadFromStore(store, hex, "", &info, &err))
        << err;
    // The registry key IS the store key: one hash implementation.
    EXPECT_EQ(info.key, hex);
    EXPECT_EQ(info.alias, hex); // no alias given
    EXPECT_EQ(info.sourcePath, store.path({"mtree",
                                           *parseKeyHex(hex)}));
    const auto found = registry.find(hex);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->numLeaves(), tree.numLeaves());

    ModelInfo aliased;
    ASSERT_TRUE(
        registry.loadFromStore(store, hex, "prod", &aliased, &err))
        << err;
    EXPECT_EQ(aliased.alias, "prod");
}

TEST(RegistryTest, LoadFromStoreRejectsBadKeysNonFatally)
{
    TempDir dir("wct_registry_test_store_bad");
    const ArtifactStore store(dir.file("cache"));
    ModelRegistry registry;
    std::string err;

    // Not hex at all.
    EXPECT_FALSE(
        registry.loadFromStore(store, "nope", "", nullptr, &err));
    EXPECT_NE(err.find("not a 16-hex-digit"), std::string::npos);

    // Well-formed but absent.
    err.clear();
    EXPECT_FALSE(registry.loadFromStore(
        store, "0123456789abcdef", "", nullptr, &err));
    EXPECT_NE(err.find("no model artifact"), std::string::npos);
    EXPECT_EQ(registry.size(), 0u);
}

TEST(RegistryTest, LoadFromStoreRejectsMismatchedContent)
{
    // An artifact whose bytes do not hash to the requested key (a
    // hand-edited or cross-linked store entry) must be refused even
    // though its envelope checksum is internally consistent.
    TempDir dir("wct_registry_test_store_mismatch");
    const ArtifactStore store(dir.file("cache"));
    std::ostringstream text;
    writeModelTree(test::trainedTree(), text);

    const ArtifactId wrong{"mtree", 0x0123456789abcdefull};
    ASSERT_TRUE(store.store(wrong, text.str()));
    ModelRegistry registry;
    std::string err;
    EXPECT_FALSE(registry.loadFromStore(store, "0123456789abcdef",
                                        "", nullptr, &err));
    EXPECT_NE(err.find("does not hash to its key"),
              std::string::npos);
    EXPECT_EQ(registry.size(), 0u);
}

} // namespace
} // namespace wct::serve
