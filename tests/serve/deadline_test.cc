/**
 * @file
 * Deadline and SLO-shedding semantics (docs/serving.md, "Event loop
 * and admission"):
 *
 *  - a request whose budget expires while queued is answered
 *    Status::DeadlineExceeded and never evaluated — no stale result,
 *    and the engine's sample counters do not move for it;
 *  - live jobs in the same batch as an expired one still complete;
 *  - budgetMs survives the wire round trip (the v2 request header);
 *  - SLO shedding is per op class and its counters are exact under
 *    concurrent load.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "serve/engine.hh"
#include "serve/metrics.hh"
#include "serve/queue.hh"
#include "serve/server.hh"
#include "serve/wire.hh"
#include "tests/serve/serve_support.hh"

namespace wct::serve
{
namespace
{

using test::inferenceRequest;
using test::TempDir;
using test::trainedTree;
using test::trainingData;
using test::writeTree;

/** A server with a loaded model and the engine NOT yet running, so
 * pushed requests sit in the queue until startEngine(). */
std::unique_ptr<Server>
parkedServer(const TempDir &dir, ServerConfig config = {})
{
    config.startEngine = false;
    auto server = std::make_unique<Server>(config);
    const std::string model = dir.file("model.mtree");
    writeTree(trainedTree(), model);
    std::string err;
    if (!server->loadModel(model, "", nullptr, &err))
        ADD_FAILURE() << err;
    return server;
}

TEST(DeadlineTest, InQueueExpiryAnswersDeadlineExceeded)
{
    const TempDir dir("wct_deadline_queue");
    auto server = parkedServer(dir);
    const Dataset data = trainingData(32, 7);

    // The engine is parked, so this request's 1 ms budget expires in
    // the queue; the admitting thread blocks on the future until the
    // engine starts and refuses the job.
    Request request =
        inferenceRequest(Opcode::Predict, data, 8, 42);
    request.budgetMs = 1;
    Response response;
    std::thread client([&] {
        response = server->handleRequest(std::move(request));
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    server->startEngine();
    client.join();

    EXPECT_EQ(response.status, Status::DeadlineExceeded);
    EXPECT_EQ(response.id, 42u);
    EXPECT_TRUE(response.cpi.empty()); // never a stale result

    // The expired job must not have reached evaluation: no samples,
    // no batch, no latency observation — and exactly one expiry.
    const MetricsSnapshot stats = server->stats();
    EXPECT_EQ(stats.samplesPredicted, 0u);
    EXPECT_EQ(stats.batches, 0u);
    EXPECT_EQ(stats.requestLatencyUs.total(), 0u);
    EXPECT_EQ(stats.deadlineExpiredByOp[0], 1u);
    server->beginShutdown();
    server->drain();
}

TEST(DeadlineTest, ServerDefaultBudgetAppliesWhenClientSendsNone)
{
    const TempDir dir("wct_deadline_default");
    ServerConfig config;
    config.defaultDeadlineMs = 1; // server-side default
    auto server = parkedServer(dir, config);
    const Dataset data = trainingData(32, 7);

    Request request =
        inferenceRequest(Opcode::Classify, data, 4, 9);
    ASSERT_EQ(request.budgetMs, 0u);
    Response response;
    std::thread client([&] {
        response = server->handleRequest(std::move(request));
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    server->startEngine();
    client.join();

    EXPECT_EQ(response.status, Status::DeadlineExceeded);
    EXPECT_EQ(server->stats().deadlineExpiredByOp[1], 1u);
    server->beginShutdown();
    server->drain();
}

TEST(DeadlineTest, LiveJobsInTheSameBatchStillComplete)
{
    const TempDir dir("wct_deadline_mixed");
    auto server = parkedServer(dir);
    const Dataset data = trainingData(32, 7);

    Request doomed = inferenceRequest(Opcode::Predict, data, 8, 1);
    doomed.budgetMs = 1;
    Request live = inferenceRequest(Opcode::Predict, data, 8, 2);
    // live carries no budget and no server default exists: immortal.

    Response doomed_response, live_response;
    std::thread t1([&] {
        doomed_response = server->handleRequest(std::move(doomed));
    });
    std::thread t2([&] {
        live_response = server->handleRequest(std::move(live));
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    server->startEngine();
    t1.join();
    t2.join();

    EXPECT_EQ(doomed_response.status, Status::DeadlineExceeded);
    EXPECT_EQ(live_response.status, Status::Ok);
    EXPECT_EQ(live_response.cpi.size(), 8u);

    const MetricsSnapshot stats = server->stats();
    EXPECT_EQ(stats.samplesPredicted, 8u); // live rows only
    EXPECT_EQ(stats.requestLatencyUs.total(), 1u);
    EXPECT_EQ(stats.deadlineExpiredByOp[0], 1u);
    server->beginShutdown();
    server->drain();
}

TEST(DeadlineTest, ExpiredJobNeverReachesEngineDirectly)
{
    // Engine-level version of the contract, no server in the way: a
    // job dequeued past its deadline is refused by the engine itself.
    RequestQueue queue(16);
    ServingMetrics metrics;
    const auto tree =
        std::make_shared<const ModelTree>(trainedTree());
    const Dataset data = trainingData(16, 3);

    Job job;
    job.request = inferenceRequest(Opcode::Predict, data, 4, 77);
    job.tree = tree;
    job.admitted = std::chrono::steady_clock::now();
    job.deadline = job.admitted; // already expired
    auto future = job.result.get_future();
    ASSERT_EQ(queue.push(std::move(job)), PushResult::Ok);

    BatchEngine engine(queue, metrics, EngineConfig{});
    engine.start();
    const Response response = future.get();
    EXPECT_EQ(response.status, Status::DeadlineExceeded);
    EXPECT_EQ(response.id, 77u);
    EXPECT_TRUE(response.cpi.empty());
    engine.stop();
    EXPECT_EQ(metrics.snapshot(0).samplesPredicted, 0u);
}

TEST(DeadlineTest, BudgetSurvivesTheWireRoundTrip)
{
    Request request =
        inferenceRequest(Opcode::Predict, trainingData(8, 1), 2, 5);
    request.budgetMs = 1234;
    const std::string frame = encodeRequest(request);
    // Strip the envelope: header is magic+version+size, trailer the
    // checksum (tested exhaustively in wire_test).
    const std::string payload =
        frame.substr(20, frame.size() - 28);
    const auto decoded = decodeRequest(payload);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->budgetMs, 1234u);
}

TEST(DeadlineTest, ShedCountersExactUnderConcurrentLoad)
{
    const TempDir dir("wct_shed_exact");
    ServerConfig config;
    config.sloPredictP99Us = 1; // unmeetable: every bucket bound > 1
    config.sloMinSamples = 8;
    auto server = std::make_unique<Server>(config);
    const std::string model = dir.file("model.mtree");
    writeTree(trainedTree(), model);
    std::string err;
    ASSERT_TRUE(server->loadModel(model, "", nullptr, &err)) << err;
    const Dataset data = trainingData(32, 7);

    // Prime the predict SLO window past sloMinSamples with slow
    // observations; classify's window stays empty.
    for (int i = 0; i < 32; ++i)
        server->metrics().recordClassLatencyUs(
            static_cast<std::uint8_t>(Opcode::Predict), 10'000.0);

    constexpr std::size_t kThreads = 8;
    constexpr std::size_t kPerThread = 25;
    std::vector<std::thread> threads;
    std::atomic<std::uint64_t> shed_seen{0}, classify_ok{0};
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (std::size_t i = 0; i < kPerThread; ++i) {
                Request predict = inferenceRequest(
                    Opcode::Predict, data, 2, t * 1000 + i);
                const Response r1 =
                    server->handleRequest(std::move(predict));
                if (r1.status == Status::Shed)
                    shed_seen.fetch_add(1);
                Request classify = inferenceRequest(
                    Opcode::Classify, data, 2, t * 1000 + i);
                const Response r2 =
                    server->handleRequest(std::move(classify));
                if (r2.status == Status::Ok)
                    classify_ok.fetch_add(1);
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    // Every predict was shed (the window p99 cannot come back down:
    // shed requests are never evaluated, so nothing refreshes it);
    // every classify served. The counters must agree exactly.
    EXPECT_EQ(shed_seen.load(), kThreads * kPerThread);
    EXPECT_EQ(classify_ok.load(), kThreads * kPerThread);
    const MetricsSnapshot stats = server->stats();
    EXPECT_EQ(stats.shedByOp[0], kThreads * kPerThread);
    EXPECT_EQ(stats.shedByOp[1], 0u);
    EXPECT_EQ(
        stats.responsesByStatus[static_cast<std::size_t>(
            Status::Shed)],
        kThreads * kPerThread);
    EXPECT_EQ(stats.deadlineExpiredByOp[0], 0u);
    server->beginShutdown();
    server->drain();
}

} // namespace
} // namespace wct::serve
