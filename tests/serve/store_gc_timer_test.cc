/**
 * @file
 * Timed gc in the store daemon (`wct store serve --gc-interval`):
 * the timer runs sweeps on its own thread, sweeps honour the
 * configured live set, and — the headline guarantee — an artifact a
 * live plan references survives a timed sweep while unreferenced
 * artifacts are reaped.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "data/artifact_store.hh"
#include "serve/store_service.hh"
#include "tests/serve/serve_support.hh"

namespace wct::serve
{
namespace
{

using test::TempDir;

TEST(StoreGcTimerTest, LivePlanArtifactSurvivesTimedSweep)
{
    const TempDir dir("wct_gc_timer_live");
    {
        const ArtifactStore seed(dir.path.string());
        ASSERT_TRUE(seed.store({"mtree", 1}, "live plan model"));
        ASSERT_TRUE(seed.store({"train", 2}, "orphaned stage"));
    }

    StoreServiceConfig config;
    config.gcIntervalSeconds = 1;
    config.gcGraceSeconds = 0; // sweep everything the plan drops
    config.gcLiveSet = [] {
        return std::vector<ArtifactId>{{"mtree", 1}};
    };
    StoreService service(ArtifactStore(dir.path.string()), config);

    // The first timed sweep fires after ~1s; give it a generous
    // window so a loaded CI host cannot flake the test.
    const auto give_up = std::chrono::steady_clock::now() +
                         std::chrono::seconds(10);
    while (service.gcSweeps() == 0 &&
           std::chrono::steady_clock::now() < give_up)
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_GE(service.gcSweeps(), 1u) << "timed sweep never fired";

    EXPECT_TRUE(service.store().contains({"mtree", 1}))
        << "a live plan artifact was reaped by the timed sweep";
    EXPECT_FALSE(service.store().contains({"train", 2}));
}

TEST(StoreGcTimerTest, SweepNowHonoursLiveSetAndCounts)
{
    const TempDir dir("wct_gc_timer_now");
    {
        const ArtifactStore seed(dir.path.string());
        ASSERT_TRUE(seed.store({"collect", 1}, "pinned"));
        ASSERT_TRUE(seed.store({"collect", 2}, "dead a"));
        ASSERT_TRUE(seed.store({"train", 3}, "dead b"));
    }

    StoreServiceConfig config; // no timer: interval stays 0
    config.gcLiveSet = [] {
        return std::vector<ArtifactId>{{"collect", 1}};
    };
    StoreService service(ArtifactStore(dir.path.string()), config);
    EXPECT_EQ(service.gcSweeps(), 0u);

    EXPECT_EQ(service.gcSweepNow(), 2u);
    EXPECT_EQ(service.gcSweeps(), 1u);
    EXPECT_TRUE(service.store().contains({"collect", 1}));
    EXPECT_FALSE(service.store().contains({"collect", 2}));
    EXPECT_FALSE(service.store().contains({"train", 3}));

    // A second sweep over the already-clean store removes nothing
    // but still counts (the counter tracks sweeps, not removals).
    EXPECT_EQ(service.gcSweepNow(), 0u);
    EXPECT_EQ(service.gcSweeps(), 2u);
}

TEST(StoreGcTimerTest, GraceFloorProtectsFreshArtifactsFromTimer)
{
    // The fleet race the config comment documents: an artifact
    // published after the live set was computed looks dead; the
    // grace floor is what keeps the timed sweep from reaping it.
    const TempDir dir("wct_gc_timer_grace");
    {
        const ArtifactStore seed(dir.path.string());
        ASSERT_TRUE(seed.store({"mtree", 9}, "just published"));
    }

    StoreServiceConfig config;
    config.gcGraceSeconds = 3600; // everything here is seconds old
    StoreService service(ArtifactStore(dir.path.string()), config);

    EXPECT_EQ(service.gcSweepNow(), 0u);
    EXPECT_TRUE(service.store().contains({"mtree", 9}));
}

} // namespace
} // namespace wct::serve
