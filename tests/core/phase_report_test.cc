/**
 * @file
 * Tests for the temporal phase analysis.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/collect.hh"
#include "core/phase_report.hh"
#include "core/suite_model.hh"
#include "workload/suites.hh"

namespace wct
{
namespace
{

/** Benchmark with two alternating, strongly distinct phases. */
BenchmarkProfile
twoPhaseBench()
{
    BenchmarkProfile b;
    b.name = "phases.ab";
    b.phaseRunLength = 200000; // long runs -> many intervals each
    PhaseProfile lean;
    lean.name = "lean";
    PhaseProfile fat;
    fat.name = "fat";
    fat.dataFootprint = 96ull << 20;
    fat.hotFrac = 0.9;
    fat.pointerChaseFrac = 0.5;
    fat.loadFrac = 0.35;
    b.phases = {lean, fat};
    return b;
}

BenchmarkProfile
onePhaseBench()
{
    BenchmarkProfile b;
    b.name = "phases.mono";
    // A genuinely steady phase: the whole working set lives in the
    // L1, so every interval looks alike and lands in few leaves
    // regardless of the stream seed.
    PhaseProfile steady;
    steady.name = "steady";
    steady.dataFootprint = 24 * 1024;
    steady.hotBytes = 16 * 1024;
    steady.hotFrac = 1.0;
    b.phases = {steady};
    return b;
}

struct Fixture
{
    SuiteData data;
    SuiteModel model;

    Fixture()
    {
        SuiteProfile suite;
        suite.name = "phasey";
        suite.benchmarks = {twoPhaseBench(), onePhaseBench()};
        CollectionConfig config;
        config.intervalInstructions = 4096;
        config.baseIntervals = 400;
        config.warmupInstructions = 100000;
        config.multiplexed = false;
        data = collectSuite(suite, config);
        SuiteModelConfig mconfig;
        mconfig.trainFraction = 0.5;
        mconfig.tree.minLeafInstances = 30;
        model = buildSuiteModel(data, mconfig);
    }
};

const Fixture &
fixture()
{
    static const Fixture f;
    return f;
}

TEST(PhaseReportTest, SequenceCoversEveryInterval)
{
    const auto &f = fixture();
    const auto &samples = f.data.benchmark("phases.ab").samples;
    const PhaseReport report(f.model.tree, samples);
    EXPECT_EQ(report.sequence().size(), samples.numRows());
    for (std::size_t leaf : report.sequence())
        EXPECT_LT(leaf, f.model.tree.numLeaves());
}

TEST(PhaseReportTest, RunsPartitionTheSequence)
{
    const auto &f = fixture();
    const PhaseReport report(
        f.model.tree, f.data.benchmark("phases.ab").samples);
    std::size_t covered = 0;
    std::size_t expected_start = 0;
    for (const PhaseRun &run : report.runs()) {
        EXPECT_EQ(run.start, expected_start);
        EXPECT_GT(run.length, 0u);
        // Within a run every interval shares the leaf.
        for (std::size_t i = run.start; i < run.start + run.length;
             ++i)
            EXPECT_EQ(report.sequence()[i], run.leaf);
        covered += run.length;
        expected_start += run.length;
    }
    EXPECT_EQ(covered, report.sequence().size());
    // Adjacent runs use different leaves (maximality).
    for (std::size_t r = 1; r < report.runs().size(); ++r)
        EXPECT_NE(report.runs()[r].leaf, report.runs()[r - 1].leaf);
}

TEST(PhaseReportTest, TwoPhaseWorkloadShowsAlternation)
{
    const auto &f = fixture();
    const PhaseReport report(
        f.model.tree, f.data.benchmark("phases.ab").samples);
    // Both behaviours visible, with long runs (phase run length 200k
    // instructions = ~49 intervals of 4096).
    EXPECT_GE(report.distinctLeaves(), 2u);
    EXPECT_GT(report.meanRunLength(), 5.0);
    EXPECT_GT(report.numTransitions(), 2u);
    EXPECT_GT(report.leafEntropy(), 0.5);
}

TEST(PhaseReportTest, MonophaseWorkloadHasLowEntropy)
{
    const auto &f = fixture();
    const PhaseReport mono(
        f.model.tree, f.data.benchmark("phases.mono").samples);
    const PhaseReport duo(
        f.model.tree, f.data.benchmark("phases.ab").samples);
    EXPECT_LT(mono.leafEntropy(), duo.leafEntropy());
    EXPECT_GT(mono.meanRunLength(), duo.meanRunLength() / 2.0);
}

TEST(PhaseReportTest, TransitionMatrixIsRowStochastic)
{
    const auto &f = fixture();
    const PhaseReport report(
        f.model.tree, f.data.benchmark("phases.ab").samples);
    const auto &matrix = report.transitionMatrix();
    ASSERT_EQ(matrix.size(), report.visitedLeaves().size());
    for (std::size_t i = 0; i < matrix.size(); ++i) {
        double total = 0.0;
        for (double p : matrix[i]) {
            EXPECT_GE(p, 0.0);
            total += p;
        }
        // Rows for leaves with outgoing transitions sum to 1; a
        // terminal leaf row may be all zero.
        EXPECT_TRUE(std::fabs(total - 1.0) < 1e-9 || total == 0.0);
    }
    // Diagonal is zero: runs are maximal, transitions change leaf.
    for (std::size_t i = 0; i < matrix.size(); ++i)
        EXPECT_DOUBLE_EQ(matrix[i][i], 0.0);
}

TEST(PhaseReportTest, RenderMentionsRunsAndTimeline)
{
    const auto &f = fixture();
    const PhaseReport report(
        f.model.tree, f.data.benchmark("phases.ab").samples);
    const std::string text = report.render();
    EXPECT_NE(text.find("timeline:"), std::string::npos);
    EXPECT_NE(text.find("longest run"), std::string::npos);
    EXPECT_NE(text.find("entropy:"), std::string::npos);
}

TEST(PhaseReportDeathTest, EmptySamplesPanic)
{
    const auto &f = fixture();
    Dataset empty(f.model.train.columnNames());
    EXPECT_DEATH(PhaseReport(f.model.tree, empty), "empty");
}

} // namespace
} // namespace wct
