/**
 * @file
 * Tests for the linear-model distribution profiles (Table II/IV
 * machinery) and the similarity matrix (Table III).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/profile_table.hh"
#include "core/similarity.hh"
#include "core/suite_model.hh"
#include "workload/suites.hh"

namespace wct
{
namespace
{

/** A three-benchmark suite with two clearly distinct behaviours. */
SuiteProfile
threeBench()
{
    SuiteProfile suite;
    suite.name = "tri";

    BenchmarkProfile lean;
    lean.name = "lean.a";
    lean.phases.push_back(PhaseProfile{});

    BenchmarkProfile lean2 = lean;
    lean2.name = "lean.b";

    BenchmarkProfile fat;
    fat.name = "fat";
    PhaseProfile p;
    p.dataFootprint = 128 << 20;
    p.hotFrac = 0.85;
    p.pointerChaseFrac = 0.5;
    p.loadFrac = 0.35;
    fat.phases.push_back(p);

    suite.benchmarks = {lean, lean2, fat};
    return suite;
}

struct Fixture
{
    SuiteData data;
    SuiteModel model;

    Fixture()
    {
        CollectionConfig config;
        config.intervalInstructions = 512;
        config.baseIntervals = 150;
        config.warmupInstructions = 20000;
        data = collectSuite(threeBench(), config);

        SuiteModelConfig mconfig;
        mconfig.trainFraction = 0.5;
        model = buildSuiteModel(data, mconfig);
    }
};

const Fixture &
fixture()
{
    static const Fixture f;
    return f;
}

TEST(ProfileTableTest, RowsSumToHundred)
{
    const ProfileTable table(fixture().data, fixture().model.tree);
    for (const auto &row : table.rows()) {
        double total = 0.0;
        for (double p : row.percent)
            total += p;
        EXPECT_NEAR(total, 100.0, 1e-9) << row.name;
    }
    double suite_total = 0.0;
    for (double p : table.suiteRow().percent)
        suite_total += p;
    EXPECT_NEAR(suite_total, 100.0, 1e-9);
}

TEST(ProfileTableTest, AverageIsUnweightedMean)
{
    const ProfileTable table(fixture().data, fixture().model.tree);
    for (std::size_t i = 0; i < table.numModels(); ++i) {
        double manual = 0.0;
        for (const auto &row : table.rows())
            manual += row.percent[i];
        manual /= static_cast<double>(table.rows().size());
        EXPECT_NEAR(table.averageRow().percent[i], manual, 1e-9);
    }
}

TEST(ProfileTableTest, SuiteRowIsSampleWeightedMean)
{
    const ProfileTable table(fixture().data, fixture().model.tree);
    const auto &data = fixture().data;
    const double total =
        static_cast<double>(data.totalSamples());
    for (std::size_t i = 0; i < table.numModels(); ++i) {
        double manual = 0.0;
        for (const auto &row : table.rows()) {
            const double count = static_cast<double>(
                data.benchmark(row.name).samples.numRows());
            manual += row.percent[i] * count;
        }
        manual /= total;
        EXPECT_NEAR(table.suiteRow().percent[i], manual, 1e-9);
    }
}

TEST(ProfileTableTest, SimilarBenchmarksHaveSmallDistance)
{
    const ProfileTable table(fixture().data, fixture().model.tree);
    const double twin_distance = ProfileTable::distance(
        table.row("lean.a"), table.row("lean.b"));
    const double cross_distance = ProfileTable::distance(
        table.row("lean.a"), table.row("fat"));
    EXPECT_LT(twin_distance, 25.0);
    EXPECT_GT(cross_distance, 50.0);
    EXPECT_LT(twin_distance, cross_distance);
}

TEST(ProfileTableTest, DistanceIsAMetric)
{
    const ProfileTable table(fixture().data, fixture().model.tree);
    const auto &a = table.row("lean.a");
    const auto &b = table.row("lean.b");
    const auto &c = table.row("fat");
    // Identity, symmetry, triangle inequality, bounded by 100.
    EXPECT_DOUBLE_EQ(ProfileTable::distance(a, a), 0.0);
    EXPECT_DOUBLE_EQ(ProfileTable::distance(a, b),
                     ProfileTable::distance(b, a));
    EXPECT_LE(ProfileTable::distance(a, c),
              ProfileTable::distance(a, b) +
                  ProfileTable::distance(b, c) + 1e-9);
    EXPECT_LE(ProfileTable::distance(a, c), 100.0 + 1e-9);
}

TEST(ProfileTableTest, RenderContainsAllRows)
{
    const ProfileTable table(fixture().data, fixture().model.tree);
    const std::string text = table.render();
    EXPECT_NE(text.find("lean.a"), std::string::npos);
    EXPECT_NE(text.find("fat"), std::string::npos);
    EXPECT_NE(text.find("Suite"), std::string::npos);
    EXPECT_NE(text.find("Average"), std::string::npos);
    EXPECT_NE(text.find("LM1"), std::string::npos);
    // Dominant contributions are starred (the paper's bold).
    EXPECT_NE(text.find("*"), std::string::npos);
}

TEST(ProfileTableTest, UnknownRowIsFatal)
{
    const ProfileTable table(fixture().data, fixture().model.tree);
    EXPECT_EXIT(table.row("missing"), ::testing::ExitedWithCode(1),
                "no row");
}

TEST(SimilarityTest, MatrixSymmetricWithZeroDiagonal)
{
    const ProfileTable table(fixture().data, fixture().model.tree);
    const SimilarityMatrix sim(table);
    ASSERT_EQ(sim.names().size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_DOUBLE_EQ(sim.at(i, i), 0.0);
        for (std::size_t j = 0; j < 3; ++j)
            EXPECT_DOUBLE_EQ(sim.at(i, j), sim.at(j, i));
    }
}

TEST(SimilarityTest, ExtremePairsIdentified)
{
    const ProfileTable table(fixture().data, fixture().model.tree);
    const SimilarityMatrix sim(table);
    const auto similar = sim.mostSimilarPair();
    EXPECT_EQ(sim.names()[similar.first].substr(0, 4), "lean");
    EXPECT_EQ(sim.names()[similar.second].substr(0, 4), "lean");
    const auto dissimilar = sim.mostDissimilarPair();
    EXPECT_TRUE(sim.names()[dissimilar.first] == "fat" ||
                sim.names()[dissimilar.second] == "fat");
}

TEST(SimilarityTest, SubsetSelection)
{
    const ProfileTable table(fixture().data, fixture().model.tree);
    const SimilarityMatrix sim(table, {"lean.a", "fat"});
    ASSERT_EQ(sim.names().size(), 2u);
    EXPECT_GT(sim.at(0, 1), 0.0);
}

TEST(SimilarityTest, SuiteDistanceMatchesProfileTable)
{
    const ProfileTable table(fixture().data, fixture().model.tree);
    const SimilarityMatrix sim(table);
    for (std::size_t i = 0; i < sim.names().size(); ++i) {
        const double direct = ProfileTable::distance(
            table.row(sim.names()[i]), table.suiteRow());
        EXPECT_DOUBLE_EQ(sim.distanceToSuite(i), direct);
    }
}

TEST(SimilarityTest, RenderHasSuiteRow)
{
    const ProfileTable table(fixture().data, fixture().model.tree);
    const SimilarityMatrix sim(table);
    const std::string text = sim.render();
    EXPECT_NE(text.find("Suite"), std::string::npos);
    EXPECT_NE(text.find("-"), std::string::npos);
}

} // namespace
} // namespace wct
