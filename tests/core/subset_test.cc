/**
 * @file
 * Tests for benchmark suite subsetting.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/subset.hh"
#include "core/suite_model.hh"
#include "workload/suites.hh"

namespace wct
{
namespace
{

/** Suite with two copies of behaviour A and one of behaviour B. */
SuiteProfile
redundantSuite()
{
    SuiteProfile suite;
    suite.name = "redundant";

    BenchmarkProfile a1;
    a1.name = "alpha.1";
    a1.phases.push_back(PhaseProfile{});
    BenchmarkProfile a2 = a1;
    a2.name = "alpha.2";

    BenchmarkProfile b;
    b.name = "beta";
    PhaseProfile heavy;
    heavy.dataFootprint = 96ull << 20;
    heavy.hotFrac = 0.92;
    heavy.pointerChaseFrac = 0.45;
    heavy.loadFrac = 0.35;
    b.phases.push_back(heavy);

    BenchmarkProfile c;
    c.name = "gamma";
    PhaseProfile simd;
    simd.simdFrac = 0.5;
    simd.accessSize = 16;
    simd.loadFrac = 0.2;
    simd.streamFrac = 0.8;
    simd.dataFootprint = 64ull << 20;
    c.phases.push_back(simd);

    suite.benchmarks = {a1, a2, b, c};
    return suite;
}

struct Fixture
{
    SuiteData data;
    SuiteModel model;
    ProfileTable table;

    Fixture()
        : data(collect()), model(buildModel(data)),
          table(data, model.tree)
    {
    }

    static SuiteData
    collect()
    {
        CollectionConfig config;
        config.intervalInstructions = 2048;
        config.baseIntervals = 150;
        config.warmupInstructions = 60000;
        return collectSuite(redundantSuite(), config);
    }

    static SuiteModel
    buildModel(const SuiteData &data)
    {
        SuiteModelConfig config;
        config.trainFraction = 0.5;
        config.tree.minLeafInstances = 15;
        return buildSuiteModel(data, config);
    }
};

const Fixture &
fixture()
{
    static const Fixture f;
    return f;
}

TEST(SubsetTest, CombineOfAllEqualsSuiteRow)
{
    const auto &f = fixture();
    std::vector<std::string> all;
    for (const auto &row : f.table.rows())
        all.push_back(row.name);
    const auto combined = combineProfiles(f.table, f.data, all);
    // Weighted combination of every benchmark is the Suite row
    // (weights equal sample shares here: equal instructionWeight).
    for (std::size_t i = 0; i < combined.percent.size(); ++i)
        EXPECT_NEAR(combined.percent[i],
                    f.table.suiteRow().percent[i], 1e-9);
}

TEST(SubsetTest, FullSubsetHasZeroDistance)
{
    const auto &f = fixture();
    std::vector<std::string> all;
    for (const auto &row : f.table.rows())
        all.push_back(row.name);
    const auto result = evaluateSubset(f.table, f.data, all);
    EXPECT_NEAR(result.profileDistance, 0.0, 1e-9);
    EXPECT_NEAR(result.cpiError, 0.0, 1e-9);
}

TEST(SubsetTest, GreedyDistanceMonotoneInK)
{
    const auto &f = fixture();
    double prev = 1e9;
    for (std::size_t k = 1; k <= 4; ++k) {
        const auto result = selectGreedyProfile(f.table, f.data, k);
        EXPECT_EQ(result.selected.size(), k);
        EXPECT_LE(result.profileDistance, prev + 1e-9);
        prev = result.profileDistance;
    }
    EXPECT_NEAR(prev, 0.0, 1e-9); // k = n reproduces the suite
}

TEST(SubsetTest, GreedySkipsRedundantTwin)
{
    // With k = 3, picking both alpha twins wastes a slot; the greedy
    // selector should cover alpha, beta, and gamma instead.
    const auto &f = fixture();
    const auto result = selectGreedyProfile(f.table, f.data, 3);
    int alphas = 0;
    bool has_beta = false;
    bool has_gamma = false;
    for (const auto &name : result.selected) {
        alphas += name.rfind("alpha", 0) == 0;
        has_beta |= name == "beta";
        has_gamma |= name == "gamma";
    }
    EXPECT_EQ(alphas, 1);
    EXPECT_TRUE(has_beta);
    EXPECT_TRUE(has_gamma);
}

TEST(SubsetTest, MedoidsCoverDistinctBehaviours)
{
    const auto &f = fixture();
    const auto result = selectByMedoids(f.table, f.data, 3);
    EXPECT_EQ(result.selected.size(), 3u);
    int alphas = 0;
    for (const auto &name : result.selected)
        alphas += name.rfind("alpha", 0) == 0;
    EXPECT_EQ(alphas, 1);
}

TEST(SubsetTest, PcaClusteringSelectsKDistinct)
{
    const auto &f = fixture();
    Rng rng(11);
    const auto result =
        selectByPcaClustering(f.table, f.data, 3, rng);
    EXPECT_EQ(result.selected.size(), 3u);
    std::vector<std::string> unique = result.selected;
    std::sort(unique.begin(), unique.end());
    unique.erase(std::unique(unique.begin(), unique.end()),
                 unique.end());
    EXPECT_EQ(unique.size(), 3u);
}

TEST(SubsetTest, SingletonSubsetPicksMostRepresentative)
{
    const auto &f = fixture();
    const auto greedy = selectGreedyProfile(f.table, f.data, 1);
    // Brute force: the chosen one must actually minimise distance.
    double best = 1e18;
    for (const auto &row : f.table.rows()) {
        const auto eval =
            evaluateSubset(f.table, f.data, {row.name});
        best = std::min(best, eval.profileDistance);
    }
    EXPECT_NEAR(greedy.profileDistance, best, 1e-9);
}

TEST(SubsetDeathTest, BadK)
{
    const auto &f = fixture();
    EXPECT_DEATH(selectGreedyProfile(f.table, f.data, 0),
                 "out of range");
    EXPECT_DEATH(selectByMedoids(f.table, f.data, 99),
                 "out of range");
}

} // namespace
} // namespace wct
