/**
 * @file
 * Unit tests of SimilarityMatrix (Table III machinery) on a synthetic
 * three-benchmark suite engineered so the expected distances are
 * known: two benchmarks live in disjoint tree leaves, the third
 * straddles both.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/similarity.hh"
#include "util/rng.hh"

namespace wct
{
namespace
{

/** Rows with A < 0 follow one linear regime, A > 0 another. */
Dataset
makeSamples(Rng &rng, std::size_t rows, double a_lo, double a_hi)
{
    Dataset data({"A", "B", "CPI"});
    for (std::size_t r = 0; r < rows; ++r) {
        const double a = rng.uniform(a_lo, a_hi);
        const double b = rng.uniform(-1.0, 1.0);
        const double cpi = (a <= 0.0 ? 1.0 + 0.1 * b : 3.0 + 0.5 * b) +
            rng.normal(0.0, 0.02);
        data.addRow({a, b, cpi});
    }
    return data;
}

struct Fixture
{
    SuiteData suite;
    ModelTree tree;

    Fixture()
    {
        Rng rng(0x51f1);
        suite.suiteName = "synthetic";
        suite.benchmarks.push_back(
            {"low", 1.0, makeSamples(rng, 120, -2.0, -0.01)});
        suite.benchmarks.push_back(
            {"high", 1.0, makeSamples(rng, 120, 0.01, 2.0)});
        suite.benchmarks.push_back(
            {"mixed", 1.0, makeSamples(rng, 120, -2.0, 2.0)});

        ModelTreeConfig config;
        config.minLeafInstances = 10;
        config.minLeafFraction = 0.1;
        tree = ModelTree::train(suite.pooled(), "CPI", config);
    }
};

const Fixture &
fixture()
{
    static const Fixture f;
    return f;
}

std::size_t
indexOf(const SimilarityMatrix &matrix, const std::string &name)
{
    for (std::size_t i = 0; i < matrix.names().size(); ++i)
        if (matrix.names()[i] == name)
            return i;
    ADD_FAILURE() << "missing benchmark " << name;
    return 0;
}

TEST(SimilarityMatrixTest, DiagonalIsZeroAndMatrixSymmetric)
{
    const ProfileTable table(fixture().suite, fixture().tree);
    const SimilarityMatrix matrix(table);
    ASSERT_EQ(matrix.names().size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(matrix.at(i, i), 0.0);
        for (std::size_t j = 0; j < 3; ++j) {
            EXPECT_EQ(matrix.at(i, j), matrix.at(j, i));
            EXPECT_GE(matrix.at(i, j), 0.0);
            EXPECT_LE(matrix.at(i, j), 100.0 + 1e-9);
        }
    }
}

TEST(SimilarityMatrixTest, DisjointBenchmarksAreMostDissimilar)
{
    const ProfileTable table(fixture().suite, fixture().tree);
    const SimilarityMatrix matrix(table);
    const std::size_t low = indexOf(matrix, "low");
    const std::size_t high = indexOf(matrix, "high");
    const std::size_t mixed = indexOf(matrix, "mixed");

    // "low" and "high" occupy disjoint leaves: ~100% apart. "mixed"
    // shares roughly half its profile with each.
    EXPECT_GT(matrix.at(low, high), 95.0);
    EXPECT_LT(matrix.at(low, mixed), 75.0);
    EXPECT_LT(matrix.at(high, mixed), 75.0);

    const auto far = matrix.mostDissimilarPair();
    EXPECT_EQ(std::minmax(low, high),
              std::minmax(far.first, far.second));
    const auto near = matrix.mostSimilarPair();
    EXPECT_TRUE(near.first == mixed || near.second == mixed);
}

TEST(SimilarityMatrixTest, SuiteDistancesAreBounded)
{
    const ProfileTable table(fixture().suite, fixture().tree);
    const SimilarityMatrix matrix(table);
    const std::size_t low = indexOf(matrix, "low");
    const std::size_t high = indexOf(matrix, "high");
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_GE(matrix.distanceToSuite(i), 0.0);
        EXPECT_LE(matrix.distanceToSuite(i), 100.0 + 1e-9);
    }
    // The one-sided benchmarks sit farther from the pooled profile
    // than the benchmark that mirrors it.
    const std::size_t mixed = indexOf(matrix, "mixed");
    EXPECT_LT(matrix.distanceToSuite(mixed),
              matrix.distanceToSuite(low));
    EXPECT_LT(matrix.distanceToSuite(mixed),
              matrix.distanceToSuite(high));
}

TEST(SimilarityMatrixTest, SubsetSelectsAndPreservesDistances)
{
    const ProfileTable table(fixture().suite, fixture().tree);
    const SimilarityMatrix full(table);
    const SimilarityMatrix pair(table, {"low", "high"});
    ASSERT_EQ(pair.names().size(), 2u);
    const double full_distance =
        full.at(indexOf(full, "low"), indexOf(full, "high"));
    const double pair_distance =
        pair.at(indexOf(pair, "low"), indexOf(pair, "high"));
    EXPECT_DOUBLE_EQ(full_distance, pair_distance);
}

TEST(SimilarityMatrixTest, RenderMentionsEveryBenchmark)
{
    const ProfileTable table(fixture().suite, fixture().tree);
    const SimilarityMatrix matrix(table);
    const std::string text = matrix.render();
    EXPECT_NE(text.find("low"), std::string::npos);
    EXPECT_NE(text.find("high"), std::string::npos);
    EXPECT_NE(text.find("mixed"), std::string::npos);
    EXPECT_NE(text.find("Suite"), std::string::npos);
}

TEST(SimilarityMatrixDeathTest, SingleBenchmarkIsRejected)
{
    const ProfileTable table(fixture().suite, fixture().tree);
    EXPECT_DEATH(SimilarityMatrix(table, {"low"}), "");
}

} // namespace
} // namespace wct
