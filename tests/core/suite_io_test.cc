/**
 * @file
 * Tests for the SuiteData binary serialization (core/suite_io):
 * byte-identical round trips and graceful rejection of corrupt,
 * version-bumped, or truncated streams.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/suite_io.hh"

namespace wct
{
namespace
{

SuiteProfile
miniSuite()
{
    SuiteProfile suite;
    suite.name = "cacheable";
    for (int i = 0; i < 2; ++i) {
        BenchmarkProfile b;
        b.name = "cache." + std::to_string(i);
        PhaseProfile p;
        p.loadFrac = 0.22 + 0.04 * i;
        b.phases.push_back(p);
        suite.benchmarks.push_back(b);
    }
    return suite;
}

CollectionConfig
miniConfig()
{
    CollectionConfig config;
    config.intervalInstructions = 2048;
    config.baseIntervals = 20;
    config.warmupInstructions = 20'000;
    return config;
}

std::string
serialize(const SuiteData &data)
{
    std::ostringstream bytes;
    writeSuiteData(bytes, data);
    return bytes.str();
}

std::optional<SuiteData>
deserialize(const std::string &bytes)
{
    std::istringstream in(bytes);
    return readSuiteData(in);
}

TEST(SuiteIoTest, RoundTripIsByteIdentical)
{
    const SuiteData data = collectSuite(miniSuite(), miniConfig());
    const std::string bytes = serialize(data);
    const auto loaded = deserialize(bytes);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(serialize(*loaded), bytes);
    EXPECT_EQ(loaded->suiteName, data.suiteName);
    ASSERT_EQ(loaded->benchmarks.size(), data.benchmarks.size());
    EXPECT_EQ(loaded->benchmarks[0].instructionWeight,
              data.benchmarks[0].instructionWeight);
}

TEST(SuiteIoTest, CorruptPayloadRejected)
{
    const SuiteData data = collectSuite(miniSuite(), miniConfig());
    std::string bytes = serialize(data);
    bytes[bytes.size() / 2] ^= 0x04;
    EXPECT_FALSE(deserialize(bytes).has_value());
}

TEST(SuiteIoTest, VersionMismatchRejected)
{
    const SuiteData data = collectSuite(miniSuite(), miniConfig());
    std::string bytes = serialize(data);
    bytes[8] ^= 0x01; // LSB of the little-endian format version
    EXPECT_FALSE(deserialize(bytes).has_value());
}

TEST(SuiteIoTest, TruncationRejected)
{
    const SuiteData data = collectSuite(miniSuite(), miniConfig());
    const std::string bytes = serialize(data);
    for (const std::size_t keep :
         {std::size_t{0}, std::size_t{4}, bytes.size() / 2,
          bytes.size() - 1})
        EXPECT_FALSE(deserialize(bytes.substr(0, keep)).has_value())
            << keep << " bytes kept";
}

TEST(SuiteIoTest, EmptyStreamRejected)
{
    EXPECT_FALSE(deserialize("").has_value());
}

TEST(SuiteIoTest, OversizedClaimRejected)
{
    // A bare header claiming a multi-terabyte payload: readSuiteData
    // runs under the kMaxFilePayload budget and must refuse the
    // claim before sizing any buffer to it.
    for (const std::uint64_t claimed :
         {std::uint64_t(1) << 30 | 1, std::uint64_t(1) << 42}) {
        std::ostringstream hostile;
        hostile.write("WCTSUIT\0", 8);
        const std::uint32_t version = kSuiteDataFormatVersion;
        hostile.write(reinterpret_cast<const char *>(&version),
                      sizeof version);
        hostile.write(reinterpret_cast<const char *>(&claimed),
                      sizeof claimed);
        EXPECT_FALSE(deserialize(hostile.str()).has_value())
            << "claimed=" << claimed;
    }
}

TEST(SuiteIoTest, EveryStrictPrefixRejected)
{
    const SuiteData data = collectSuite(miniSuite(), miniConfig());
    const std::string bytes = serialize(data);
    for (std::size_t keep = 0; keep < bytes.size(); ++keep)
        EXPECT_FALSE(deserialize(bytes.substr(0, keep)).has_value())
            << keep << " bytes kept";
}

} // namespace
} // namespace wct
