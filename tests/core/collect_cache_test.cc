/**
 * @file
 * Tests for the content-addressed collection cache: store/load round
 * trips, graceful rejection of corrupt or mismatched files, and key
 * sensitivity to every collection input.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "core/collect_cache.hh"

namespace wct
{
namespace
{

namespace fs = std::filesystem;

/** Fresh scratch directory, removed on scope exit. */
struct TempDir
{
    fs::path path;

    explicit TempDir(const std::string &tag)
        : path(fs::temp_directory_path() /
               ("wct_cache_test_" + tag + "_" +
                std::to_string(::getpid())))
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }

    ~TempDir() { fs::remove_all(path); }
};

SuiteProfile
miniSuite()
{
    SuiteProfile suite;
    suite.name = "cacheable";
    for (int i = 0; i < 2; ++i) {
        BenchmarkProfile b;
        b.name = "cache." + std::to_string(i);
        PhaseProfile p;
        p.loadFrac = 0.22 + 0.04 * i;
        b.phases.push_back(p);
        suite.benchmarks.push_back(b);
    }
    return suite;
}

CollectionConfig
miniConfig()
{
    CollectionConfig config;
    config.intervalInstructions = 2048;
    config.baseIntervals = 20;
    config.warmupInstructions = 20'000;
    return config;
}

std::string
serialize(const SuiteData &data)
{
    std::ostringstream bytes;
    writeSuiteData(bytes, data);
    return bytes.str();
}

TEST(CollectCacheTest, StoreLoadRoundTripIsByteIdentical)
{
    const TempDir dir("roundtrip");
    const SuiteData data = collectSuite(miniSuite(), miniConfig());
    const std::string path = (dir.path / "suite.wctsuite").string();
    storeSuiteData(path, data);
    const auto loaded = loadSuiteData(path);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(serialize(*loaded), serialize(data));
    EXPECT_EQ(loaded->suiteName, data.suiteName);
    ASSERT_EQ(loaded->benchmarks.size(), data.benchmarks.size());
    EXPECT_EQ(loaded->benchmarks[0].instructionWeight,
              data.benchmarks[0].instructionWeight);
}

TEST(CollectCacheTest, SecondCallHitsCacheWithIdenticalData)
{
    const TempDir dir("hit");
    const SuiteProfile suite = miniSuite();
    const CollectionConfig config = miniConfig();

    bool hit = true;
    const SuiteData first =
        collectSuiteCached(suite, config, dir.path.string(), &hit);
    EXPECT_FALSE(hit);
    const SuiteData second =
        collectSuiteCached(suite, config, dir.path.string(), &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(serialize(second), serialize(first));
}

TEST(CollectCacheTest, CorruptFileFallsBackToCollection)
{
    const TempDir dir("corrupt");
    const SuiteProfile suite = miniSuite();
    const CollectionConfig config = miniConfig();

    bool hit = false;
    const SuiteData first =
        collectSuiteCached(suite, config, dir.path.string(), &hit);

    // Flip a payload bit in the cached file.
    const std::string path =
        collectionCachePath(dir.path.string(), suite, config);
    ASSERT_TRUE(fs::exists(path));
    std::string bytes;
    {
        std::ifstream in(path, std::ios::binary);
        std::stringstream buf;
        buf << in.rdbuf();
        bytes = buf.str();
    }
    bytes[bytes.size() / 2] ^= 0x04;
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << bytes;
    }
    EXPECT_FALSE(loadSuiteData(path).has_value());

    // The cached front end re-collects (a miss), repairs the file,
    // and still returns the right data.
    hit = true;
    const SuiteData repaired =
        collectSuiteCached(suite, config, dir.path.string(), &hit);
    EXPECT_FALSE(hit);
    EXPECT_EQ(serialize(repaired), serialize(first));
    EXPECT_TRUE(loadSuiteData(path).has_value());
}

TEST(CollectCacheTest, VersionMismatchRejected)
{
    const TempDir dir("version");
    const SuiteData data = collectSuite(miniSuite(), miniConfig());
    const std::string path = (dir.path / "suite.wctsuite").string();
    storeSuiteData(path, data);

    std::string bytes;
    {
        std::ifstream in(path, std::ios::binary);
        std::stringstream buf;
        buf << in.rdbuf();
        bytes = buf.str();
    }
    bytes[8] ^= 0x01; // LSB of the little-endian format version
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << bytes;
    }
    EXPECT_FALSE(loadSuiteData(path).has_value());
}

TEST(CollectCacheTest, MissingFileIsNotAnError)
{
    const TempDir dir("missing");
    EXPECT_FALSE(
        loadSuiteData((dir.path / "absent.wctsuite").string())
            .has_value());
}

TEST(CollectCacheTest, KeyCoversEveryCollectionInput)
{
    const SuiteProfile suite = miniSuite();
    const CollectionConfig base = miniConfig();
    const std::uint64_t key = collectionCacheKey(suite, base);

    // Same inputs -> same key (the key is a pure function).
    EXPECT_EQ(collectionCacheKey(suite, base), key);

    CollectionConfig changed = base;
    changed.seed ^= 1;
    EXPECT_NE(collectionCacheKey(suite, changed), key);

    changed = base;
    changed.shards = 4;
    EXPECT_NE(collectionCacheKey(suite, changed), key);

    changed = base;
    changed.baseIntervals += 1;
    EXPECT_NE(collectionCacheKey(suite, changed), key);

    changed = base;
    changed.multiplexed = false;
    EXPECT_NE(collectionCacheKey(suite, changed), key);

    changed = base;
    changed.machine.l2MissCycles += 1.0;
    EXPECT_NE(collectionCacheKey(suite, changed), key);

    SuiteProfile renamed = suite;
    renamed.benchmarks[0].name = "cache.renamed";
    EXPECT_NE(collectionCacheKey(renamed, base), key);

    SuiteProfile tweaked = suite;
    tweaked.benchmarks[1].phases[0].loadFrac += 0.01;
    EXPECT_NE(collectionCacheKey(tweaked, base), key);
}

TEST(CollectCacheTest, CachePathEmbedsSuiteNameAndKey)
{
    const SuiteProfile suite = miniSuite();
    const CollectionConfig config = miniConfig();
    const std::string path =
        collectionCachePath("/tmp/cache", suite, config);
    EXPECT_NE(path.find("cacheable-"), std::string::npos);
    EXPECT_NE(path.find(".wctsuite"), std::string::npos);
    // 16 hex digits of the key.
    const std::size_t dash = path.rfind('-');
    const std::size_t dot = path.rfind(".wctsuite");
    ASSERT_NE(dash, std::string::npos);
    ASSERT_EQ(dot - dash - 1, 16u);
}

} // namespace
} // namespace wct
