/**
 * @file
 * Tests for suite collection: shapes, weighting, determinism, and
 * pooling.
 */

#include <gtest/gtest.h>

#include "core/collect.hh"
#include "workload/suites.hh"

namespace wct
{
namespace
{

SuiteProfile
miniSuite()
{
    SuiteProfile suite;
    suite.name = "mini";
    BenchmarkProfile light;
    light.name = "light";
    light.instructionWeight = 1.0;
    light.phases.push_back(PhaseProfile{});
    BenchmarkProfile heavy = light;
    heavy.name = "heavy";
    heavy.instructionWeight = 2.0;
    heavy.phases[0].dataFootprint = 64 << 20;
    heavy.phases[0].hotFrac = 0.9;
    suite.benchmarks = {light, heavy};
    return suite;
}

CollectionConfig
fastConfig()
{
    CollectionConfig config;
    config.intervalInstructions = 512;
    config.baseIntervals = 20;
    config.warmupInstructions = 5000;
    return config;
}

TEST(CollectTest, SampleCountsProportionalToWeight)
{
    const SuiteData data = collectSuite(miniSuite(), fastConfig());
    EXPECT_EQ(data.suiteName, "mini");
    ASSERT_EQ(data.benchmarks.size(), 2u);
    EXPECT_EQ(data.benchmark("light").samples.numRows(), 20u);
    EXPECT_EQ(data.benchmark("heavy").samples.numRows(), 40u);
    EXPECT_EQ(data.totalSamples(), 60u);
}

TEST(CollectTest, PooledConcatenatesEverything)
{
    const SuiteData data = collectSuite(miniSuite(), fastConfig());
    const Dataset pooled = data.pooled();
    EXPECT_EQ(pooled.numRows(), 60u);
    EXPECT_EQ(pooled.columnNames(), metricColumnNames());
}

TEST(CollectTest, DeterministicUnderSeed)
{
    const SuiteData a = collectSuite(miniSuite(), fastConfig());
    const SuiteData b = collectSuite(miniSuite(), fastConfig());
    const Dataset pa = a.pooled();
    const Dataset pb = b.pooled();
    ASSERT_EQ(pa.numRows(), pb.numRows());
    for (std::size_t r = 0; r < pa.numRows(); ++r)
        for (std::size_t c = 0; c < pa.numColumns(); ++c)
            ASSERT_DOUBLE_EQ(pa.at(r, c), pb.at(r, c));
}

TEST(CollectTest, SeedChangesData)
{
    CollectionConfig config = fastConfig();
    const SuiteData a = collectSuite(miniSuite(), config);
    config.seed = 999;
    const SuiteData b = collectSuite(miniSuite(), config);
    const Dataset pa = a.pooled();
    const Dataset pb = b.pooled();
    bool any_diff = false;
    for (std::size_t r = 0; r < pa.numRows() && !any_diff; ++r)
        any_diff = pa.at(r, 0) != pb.at(r, 0);
    EXPECT_TRUE(any_diff);
}

TEST(CollectTest, HeavierFootprintCostsMoreCpi)
{
    const SuiteData data = collectSuite(miniSuite(), fastConfig());
    const auto light = data.benchmark("light").samples.summarize(0);
    const auto heavy = data.benchmark("heavy").samples.summarize(0);
    EXPECT_GT(heavy.mean, light.mean);
}

TEST(CollectTest, CpiColumnPositiveEverywhere)
{
    const SuiteData data = collectSuite(miniSuite(), fastConfig());
    const Dataset pooled = data.pooled();
    const std::size_t cpi = pooled.columnIndex("CPI");
    for (std::size_t r = 0; r < pooled.numRows(); ++r)
        EXPECT_GT(pooled.at(r, cpi), 0.0);
}

TEST(CollectTest, MissingBenchmarkLookupIsFatal)
{
    const SuiteData data = collectSuite(miniSuite(), fastConfig());
    EXPECT_EXIT(data.benchmark("nope"), ::testing::ExitedWithCode(1),
                "no collected data");
}

TEST(CollectTest, AtLeastOneIntervalPerBenchmark)
{
    SuiteProfile suite = miniSuite();
    suite.benchmarks[0].instructionWeight = 0.001;
    CollectionConfig config = fastConfig();
    const SuiteData data = collectSuite(suite, config);
    EXPECT_GE(data.benchmark("light").samples.numRows(), 1u);
}

} // namespace
} // namespace wct
