/**
 * @file
 * Unit tests of buildSuiteModel: the Section VI protocol of training
 * on one random fraction and testing on a disjoint fraction of equal
 * size, checked on a synthetic suite with a known CPI structure.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/suite_model.hh"
#include "util/rng.hh"

namespace wct
{
namespace
{

/** A synthetic suite whose rows carry a unique Id column. */
SuiteData
makeSuite()
{
    Rng rng(0x5017e);
    SuiteData suite;
    suite.suiteName = "synthetic";
    double id = 0.0;
    for (const char *name : {"alpha", "beta"}) {
        BenchmarkData bench;
        bench.name = name;
        bench.samples = Dataset({"Id", "A", "B", "CPI"});
        for (std::size_t r = 0; r < 200; ++r) {
            const double a = rng.uniform(-2.0, 2.0);
            const double b = rng.uniform(-1.0, 1.0);
            const double cpi = (a <= 0.0 ? 1.0 : 2.5) + 0.2 * b +
                rng.normal(0.0, 0.05);
            bench.samples.addRow({id, a, b, cpi});
            id += 1.0;
        }
        suite.benchmarks.push_back(std::move(bench));
    }
    return suite;
}

SuiteModelConfig
smallConfig()
{
    SuiteModelConfig config;
    config.trainFraction = 0.25;
    config.tree.minLeafInstances = 8;
    return config;
}

TEST(SuiteModelTest, FractionsHaveDocumentedSizesAndAreDisjoint)
{
    const SuiteData suite = makeSuite();
    const SuiteModel model = buildSuiteModel(suite, smallConfig());

    const std::size_t n = suite.totalSamples();
    const auto expected =
        static_cast<std::size_t>(std::lround(0.25 * double(n)));
    EXPECT_EQ(model.train.numRows(), expected);
    EXPECT_EQ(model.test.numRows(), expected);

    std::set<double> train_ids;
    const std::size_t id_col = model.train.columnIndex("Id");
    for (std::size_t r = 0; r < model.train.numRows(); ++r)
        train_ids.insert(model.train.at(r, id_col));
    EXPECT_EQ(train_ids.size(), model.train.numRows())
        << "duplicate rows in the training fraction";
    for (std::size_t r = 0; r < model.test.numRows(); ++r)
        EXPECT_EQ(train_ids.count(model.test.at(r, id_col)), 0u)
            << "test row " << r << " also appears in training";
}

TEST(SuiteModelTest, MeanCpiSummarizesThePooledSamples)
{
    const SuiteData suite = makeSuite();
    const SuiteModel model = buildSuiteModel(suite, smallConfig());
    const Dataset pooled = suite.pooled();
    double total = 0.0;
    const std::size_t cpi_col = pooled.columnIndex("CPI");
    for (std::size_t r = 0; r < pooled.numRows(); ++r)
        total += pooled.at(r, cpi_col);
    EXPECT_NEAR(model.meanCpi,
                total / static_cast<double>(pooled.numRows()), 1e-9);
    EXPECT_EQ(model.suiteName, "synthetic");
}

TEST(SuiteModelTest, TreePredictsTheTargetOnHeldOutRows)
{
    const SuiteData suite = makeSuite();
    const SuiteModel model = buildSuiteModel(suite, smallConfig());
    EXPECT_EQ(model.tree.targetName(), "CPI");
    EXPECT_GE(model.tree.numLeaves(), 2u);

    // The planted structure is strong, so the tree must beat a
    // mean-only predictor on the held-out fraction by a wide margin.
    const std::size_t cpi_col = model.test.columnIndex("CPI");
    double tree_abs = 0.0;
    double mean_abs = 0.0;
    for (std::size_t r = 0; r < model.test.numRows(); ++r) {
        const double actual = model.test.at(r, cpi_col);
        tree_abs +=
            std::abs(model.tree.predict(model.test.row(r)) - actual);
        mean_abs += std::abs(model.meanCpi - actual);
    }
    EXPECT_LT(tree_abs, 0.5 * mean_abs);
}

TEST(SuiteModelTest, SameSeedReproducesTheSameSplit)
{
    const SuiteData suite = makeSuite();
    const SuiteModel first = buildSuiteModel(suite, smallConfig());
    const SuiteModel second = buildSuiteModel(suite, smallConfig());
    ASSERT_EQ(first.train.numRows(), second.train.numRows());
    const std::size_t id_col = first.train.columnIndex("Id");
    for (std::size_t r = 0; r < first.train.numRows(); ++r)
        ASSERT_EQ(first.train.at(r, id_col),
                  second.train.at(r, id_col));

    SuiteModelConfig reseeded = smallConfig();
    reseeded.seed = 0x1234;
    const SuiteModel third = buildSuiteModel(suite, reseeded);
    bool any_difference =
        first.train.numRows() != third.train.numRows();
    for (std::size_t r = 0;
         !any_difference && r < first.train.numRows(); ++r)
        any_difference = first.train.at(r, id_col) !=
            third.train.at(r, id_col);
    EXPECT_TRUE(any_difference)
        << "different seeds produced identical splits";
}

TEST(SuiteModelDeathTest, RejectsTrainFractionAboveOneHalf)
{
    const SuiteData suite = makeSuite();
    SuiteModelConfig config = smallConfig();
    config.trainFraction = 0.6;
    EXPECT_DEATH(buildSuiteModel(suite, config), "train fraction");
}

} // namespace
} // namespace wct
