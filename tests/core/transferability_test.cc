/**
 * @file
 * Tests for the transferability methodology (Section VI), including
 * the end-to-end finding: a model trained on 10% of a suite
 * transfers to the rest, and dissimilar suites do not transfer.
 */

#include <gtest/gtest.h>

#include "core/suite_model.hh"
#include "core/transferability.hh"
#include "workload/suites.hh"

namespace wct
{
namespace
{

/** Two deliberately dissimilar mini-suites. */
SuiteProfile
computeSuite()
{
    SuiteProfile suite;
    suite.name = "computeish";
    for (int i = 0; i < 3; ++i) {
        BenchmarkProfile b;
        b.name = "compute." + std::to_string(i);
        PhaseProfile p;
        p.mulFrac = 0.02 + 0.02 * i;
        p.branchEntropy = 0.02 + 0.03 * i;
        b.phases.push_back(p);
        suite.benchmarks.push_back(b);
    }
    return suite;
}

SuiteProfile
memorySuite()
{
    SuiteProfile suite;
    suite.name = "memoryish";
    for (int i = 0; i < 3; ++i) {
        BenchmarkProfile b;
        b.name = "memory." + std::to_string(i);
        PhaseProfile p;
        p.dataFootprint = (64ull + 32 * i) << 20;
        p.hotFrac = 0.9 - 0.02 * i;
        p.pointerChaseFrac = 0.4;
        p.loadFrac = 0.35;
        p.overlapFrac = 0.03;
        b.phases.push_back(p);
        suite.benchmarks.push_back(b);
    }
    return suite;
}

struct Fixture
{
    SuiteModel compute;
    SuiteModel memory;

    Fixture()
    {
        CollectionConfig config;
        // Intervals must be wide enough that the multiplexed
        // sub-window estimates carry signal.
        config.intervalInstructions = 16384;
        config.baseIntervals = 250;
        config.warmupInstructions = 100000;

        SuiteModelConfig mconfig;
        mconfig.trainFraction = 0.10;

        compute = buildSuiteModel(collectSuite(computeSuite(), config),
                                  mconfig);
        config.seed = 0xabcd;
        memory = buildSuiteModel(collectSuite(memorySuite(), config),
                                 mconfig);
    }
};

const Fixture &
fixture()
{
    static const Fixture f;
    return f;
}

TEST(SuiteModelTest, TrainTestDisjointAndSized)
{
    const auto &m = fixture().compute;
    EXPECT_EQ(m.train.numRows(), m.test.numRows());
    EXPECT_EQ(m.train.numRows(), 75u); // 10% of 3 * 250
    EXPECT_GT(m.tree.numLeaves(), 0u);
    EXPECT_GT(m.meanCpi, 0.0);
}

TEST(TransferabilityTest, SameSuiteTransfers)
{
    const auto &m = fixture().compute;
    const auto report =
        assessTransferability(m.tree, m.train, m.test);
    EXPECT_TRUE(report.transferableByAccuracy())
        << "C=" << report.accuracy.correlation
        << " MAE=" << report.accuracy.meanAbsoluteError;
    EXPECT_FALSE(report.cpiTest.rejectAt(0.01));
}

TEST(TransferabilityTest, CrossSuiteFailsAccuracy)
{
    const auto &compute = fixture().compute;
    const auto &memory = fixture().memory;
    const auto report = assessTransferability(
        compute.tree, compute.train, memory.test);
    EXPECT_FALSE(report.transferableByAccuracy());
    EXPECT_TRUE(report.cpiTest.rejectAt(0.05));
    EXPECT_FALSE(report.transferableByTests());
}

TEST(TransferabilityTest, CrossSuiteFailsBothDirections)
{
    const auto &compute = fixture().compute;
    const auto &memory = fixture().memory;
    const auto reverse = assessTransferability(
        memory.tree, memory.train, compute.test);
    EXPECT_FALSE(reverse.transferableByAccuracy());
}

TEST(TransferabilityTest, DescriptiveStatspopulated)
{
    const auto &m = fixture().compute;
    const auto report =
        assessTransferability(m.tree, m.train, m.test);
    EXPECT_EQ(report.trainCount, m.train.numRows());
    EXPECT_EQ(report.targetCount, m.test.numRows());
    EXPECT_GT(report.trainMeanCpi, 0.0);
    EXPECT_GT(report.targetMeanCpi, 0.0);
    EXPECT_GT(report.predictedMeanCpi, 0.0);
    EXPECT_GE(report.trainSdCpi, 0.0);
}

TEST(TransferabilityTest, RenderMentionsVerdicts)
{
    const auto &m = fixture().compute;
    auto report = assessTransferability(m.tree, m.train, m.test);
    report.modelName = "computeish";
    report.targetName = "computeish test";
    const std::string text = report.render();
    EXPECT_NE(text.find("t-test"), std::string::npos);
    EXPECT_NE(text.find("accuracy"), std::string::npos);
    EXPECT_NE(text.find("verdicts"), std::string::npos);
    EXPECT_NE(text.find("transferable"), std::string::npos);
}

TEST(TransferabilityTest, ConfiguredNamesReachTheRenderedReport)
{
    // The names flow through the config into the report header; the
    // old code dropped modelName entirely and pinned targetName to
    // the literal "target" regardless of the caller.
    const auto &m = fixture().compute;
    TransferabilityConfig config;
    config.modelName = "computeish tree";
    config.targetName = "held-out computeish";
    const auto report =
        assessTransferability(m.tree, m.train, m.test, config);
    EXPECT_EQ(report.modelName, "computeish tree");
    EXPECT_EQ(report.targetName, "held-out computeish");
    const std::string text = report.render();
    EXPECT_NE(text.find("transferability of computeish tree -> "
                        "held-out computeish"),
              std::string::npos);
}

TEST(TransferabilityTest, DefaultNamesAreGenericPlaceholders)
{
    const auto &m = fixture().compute;
    const auto report =
        assessTransferability(m.tree, m.train, m.test);
    EXPECT_EQ(report.modelName, "model");
    EXPECT_EQ(report.targetName, "target");
}

TEST(TransferabilityTest, NonParametricTestsAgreeOnCrossSuite)
{
    const auto &compute = fixture().compute;
    const auto &memory = fixture().memory;
    const auto report = assessTransferability(
        compute.tree, compute.train, memory.test);
    // The Mann-Whitney location test must also see the difference.
    EXPECT_TRUE(report.mannWhitney.rejectAt(0.05));
}

TEST(TransferabilityTest, ThresholdConfigRespected)
{
    const auto &m = fixture().compute;
    TransferabilityConfig strict;
    strict.minCorrelation = 0.999999;
    const auto report =
        assessTransferability(m.tree, m.train, m.test, strict);
    EXPECT_FALSE(report.transferableByAccuracy());
}

TEST(SuiteModelDeathTest, BadTrainFraction)
{
    const SuiteData data; // empty is fine, fraction checked first
    SuiteModelConfig config;
    config.trainFraction = 0.9;
    EXPECT_DEATH(buildSuiteModel(data, config), "train fraction");
}

} // namespace
} // namespace wct
