/**
 * @file
 * Determinism contract of the parallel collection pipeline: results
 * are a pure function of (suite, config) — independent of thread
 * count, suite filtering, and the legacy sequential path.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/collect.hh"
#include "core/suite_io.hh"
#include "data/binary_io.hh"
#include "pmu/collector.hh"
#include "uarch/core.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"
#include "workload/source.hh"

namespace wct
{
namespace
{

/** Restore the global pool to its configured size on scope exit. */
struct PoolGuard
{
    ~PoolGuard()
    {
        ThreadPool::resetGlobalForTest(
            ThreadPool::configuredThreads() <= 1
                ? 0
                : ThreadPool::configuredThreads());
    }
};

SuiteProfile
miniSuite()
{
    SuiteProfile suite;
    suite.name = "mini";
    const char *names[] = {"mini.alpha", "mini.beta", "mini.gamma"};
    for (int i = 0; i < 3; ++i) {
        BenchmarkProfile b;
        b.name = names[i];
        b.instructionWeight = 0.5 + 0.5 * i;
        PhaseProfile p;
        p.loadFrac = 0.2 + 0.05 * i;
        p.dataFootprint = 1u << (18 + i);
        p.splitFrac = 0.01 * i;
        b.phases.push_back(p);
        suite.benchmarks.push_back(b);
    }
    return suite;
}

CollectionConfig
miniConfig()
{
    CollectionConfig config;
    config.intervalInstructions = 2048;
    config.baseIntervals = 30;
    config.warmupInstructions = 50'000;
    return config;
}

std::string
serialize(const SuiteData &data)
{
    std::ostringstream bytes;
    writeSuiteData(bytes, data);
    return bytes.str();
}

TEST(CollectDeterminismTest, ByteIdenticalAcrossThreadCounts)
{
    PoolGuard guard;
    const SuiteProfile suite = miniSuite();
    CollectionConfig config = miniConfig();
    config.shards = 4;

    ThreadPool::resetGlobalForTest(0); // inline, no workers
    const std::string inline_bytes =
        serialize(collectSuite(suite, config));
    for (const std::size_t workers : {1u, 4u, 8u}) {
        ThreadPool::resetGlobalForTest(workers);
        EXPECT_EQ(serialize(collectSuite(suite, config)),
                  inline_bytes)
            << workers << " workers";
    }
}

TEST(CollectDeterminismTest, FilteredSuiteReproducesFullSuite)
{
    // Stream seeds derive from benchmark names, so collecting a
    // one-benchmark filtered suite must reproduce that benchmark's
    // slice of the full-suite run exactly. (With positional salts —
    // the old bug — mini.beta would get salt 0 instead of salt 1
    // when collected alone.)
    const SuiteProfile full = miniSuite();
    const CollectionConfig config = miniConfig();
    const SuiteData all = collectSuite(full, config);

    SuiteProfile filtered;
    filtered.name = full.name;
    filtered.benchmarks = {full.benchmarks[1]};
    const SuiteData one = collectSuite(filtered, config);

    ASSERT_EQ(one.benchmarks.size(), 1u);
    const Dataset &got = one.benchmarks[0].samples;
    const Dataset &expect = all.benchmark("mini.beta").samples;
    ASSERT_EQ(got.numRows(), expect.numRows());
    for (std::size_t r = 0; r < expect.numRows(); ++r) {
        const auto e = expect.row(r);
        const auto g = got.row(r);
        for (std::size_t c = 0; c < expect.numColumns(); ++c)
            EXPECT_EQ(g[c], e[c]) << r << "," << c;
    }
}

TEST(CollectDeterminismTest, SingleShardMatchesSequentialReference)
{
    // shards = 1 must reproduce the historical sequential protocol
    // exactly: one machine, one warmup, one uninterrupted stream.
    const SuiteProfile suite = miniSuite();
    const CollectionConfig config = miniConfig();
    const SuiteData collected = collectSuite(suite, config);

    for (const BenchmarkProfile &bench : suite.benchmarks) {
        CoreModel core(config.machine);
        CollectorConfig pmu_config;
        pmu_config.intervalInstructions = config.intervalInstructions;
        pmu_config.multiplexed = config.multiplexed;
        IntervalCollector collector(core, pmu_config);
        WorkloadSource source(
            bench,
            Rng(config.seed).fork(benchmarkStreamSalt(bench.name))());
        core.run(source, config.warmupInstructions);

        const std::size_t intervals =
            collected.benchmark(bench.name).samples.numRows();
        const Dataset reference = collector.collect(source, intervals);
        const Dataset &got = collected.benchmark(bench.name).samples;
        for (std::size_t r = 0; r < reference.numRows(); ++r) {
            const auto e = reference.row(r);
            const auto g = got.row(r);
            for (std::size_t c = 0; c < reference.numColumns(); ++c)
                EXPECT_EQ(g[c], e[c])
                    << bench.name << " " << r << "," << c;
        }
    }
}

TEST(CollectDeterminismTest, ShardCountPreservesSampleBudget)
{
    // Sharding changes which samples are drawn, never how many.
    const SuiteProfile suite = miniSuite();
    CollectionConfig config = miniConfig();
    const std::size_t expected =
        collectSuite(suite, config).totalSamples();
    for (const std::size_t shards : {2u, 4u, 64u}) {
        config.shards = shards;
        EXPECT_EQ(collectSuite(suite, config).totalSamples(),
                  expected)
            << shards << " shards";
    }
}

TEST(CollectDeterminismTest, CollectBenchmarkAgreesWithSuitePath)
{
    const SuiteProfile suite = miniSuite();
    CollectionConfig config = miniConfig();
    config.shards = 3;
    const SuiteData via_suite = collectSuite(suite, config);
    const BenchmarkData direct =
        collectBenchmark(suite.benchmarks[2], config);
    const Dataset &expect = via_suite.benchmark("mini.gamma").samples;
    ASSERT_EQ(direct.samples.numRows(), expect.numRows());
    for (std::size_t r = 0; r < expect.numRows(); ++r) {
        const auto e = expect.row(r);
        const auto g = direct.samples.row(r);
        for (std::size_t c = 0; c < expect.numColumns(); ++c)
            EXPECT_EQ(g[c], e[c]) << r << "," << c;
    }
}

TEST(CollectDeterminismTest, StreamSaltIsStable)
{
    // Pin the salt derivation: FNV-1a of the name, independent of
    // any suite context. A change here invalidates every cached
    // dataset, so it must be deliberate.
    EXPECT_EQ(benchmarkStreamSalt("429.mcf"),
              fnv1a64("429.mcf"));
    EXPECT_NE(benchmarkStreamSalt("429.mcf"),
              benchmarkStreamSalt("470.lbm"));
}

} // namespace
} // namespace wct
