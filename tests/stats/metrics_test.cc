/**
 * @file
 * Unit tests for the prediction accuracy metrics of Section VI-B.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/metrics.hh"
#include "util/rng.hh"

namespace wct
{
namespace
{

TEST(MetricsTest, PerfectPrediction)
{
    const std::vector<double> actual = {1.0, 2.0, 3.0, 4.0};
    const auto m = computeAccuracy(actual, actual);
    EXPECT_NEAR(m.correlation, 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(m.meanAbsoluteError, 0.0);
    EXPECT_DOUBLE_EQ(m.rootMeanSquaredError, 0.0);
    EXPECT_DOUBLE_EQ(m.relativeAbsoluteError, 0.0);
    EXPECT_DOUBLE_EQ(m.rootRelativeSquaredError, 0.0);
    EXPECT_TRUE(m.acceptable());
}

TEST(MetricsTest, ConstantOffset)
{
    const std::vector<double> actual = {1.0, 2.0, 3.0, 4.0};
    std::vector<double> pred;
    for (double a : actual)
        pred.push_back(a + 0.1);
    const auto m = computeAccuracy(pred, actual);
    // Correlation is shift-invariant; MAE sees the offset.
    EXPECT_NEAR(m.correlation, 1.0, 1e-12);
    EXPECT_NEAR(m.meanAbsoluteError, 0.1, 1e-12);
    EXPECT_NEAR(m.rootMeanSquaredError, 0.1, 1e-12);
    EXPECT_TRUE(m.acceptable());
}

TEST(MetricsTest, MeanPredictorHasUnitRelativeErrors)
{
    const std::vector<double> actual = {1.0, 3.0, 5.0, 7.0};
    const std::vector<double> pred(4, 4.0); // the mean of actual
    const auto m = computeAccuracy(pred, actual);
    EXPECT_NEAR(m.relativeAbsoluteError, 1.0, 1e-12);
    EXPECT_NEAR(m.rootRelativeSquaredError, 1.0, 1e-12);
    EXPECT_FALSE(m.acceptable());
}

TEST(MetricsTest, AntiCorrelatedPrediction)
{
    const std::vector<double> actual = {1.0, 2.0, 3.0};
    const std::vector<double> pred = {3.0, 2.0, 1.0};
    const auto m = computeAccuracy(pred, actual);
    EXPECT_NEAR(m.correlation, -1.0, 1e-12);
    EXPECT_FALSE(m.acceptable());
}

TEST(MetricsTest, MaeVsRmseOutlierSensitivity)
{
    const std::vector<double> actual(10, 0.0);
    std::vector<double> pred(10, 0.0);
    pred[0] = 10.0; // single large error
    EXPECT_NEAR(meanAbsoluteError(pred, actual), 1.0, 1e-12);
    EXPECT_NEAR(rootMeanSquaredError(pred, actual),
                std::sqrt(10.0), 1e-12);
}

TEST(MetricsTest, PaperThresholds)
{
    AccuracyMetrics good;
    good.correlation = 0.9214;
    good.meanAbsoluteError = 0.0988;
    EXPECT_TRUE(good.acceptable());

    AccuracyMetrics bad;
    bad.correlation = 0.4337;
    bad.meanAbsoluteError = 0.3721;
    EXPECT_FALSE(bad.acceptable());

    // Boundary behaviour is strict.
    AccuracyMetrics edge;
    edge.correlation = 0.85;
    edge.meanAbsoluteError = 0.10;
    EXPECT_FALSE(edge.acceptable());
    edge.correlation = 0.86;
    edge.meanAbsoluteError = 0.15;
    EXPECT_FALSE(edge.acceptable());
    edge.meanAbsoluteError = 0.149;
    EXPECT_TRUE(edge.acceptable());
}

TEST(MetricsTest, CustomThresholds)
{
    AccuracyMetrics m;
    m.correlation = 0.7;
    m.meanAbsoluteError = 0.2;
    EXPECT_FALSE(m.acceptable());
    EXPECT_TRUE(m.acceptable(0.6, 0.3));
}

TEST(MetricsTest, NoisyButGoodPrediction)
{
    Rng rng(7);
    std::vector<double> actual, pred;
    for (int i = 0; i < 10000; ++i) {
        const double a = rng.uniform(0.5, 2.5);
        actual.push_back(a);
        pred.push_back(a + rng.normal(0.0, 0.05));
    }
    const auto m = computeAccuracy(pred, actual);
    EXPECT_GT(m.correlation, 0.99);
    EXPECT_NEAR(m.meanAbsoluteError, 0.05 * std::sqrt(2.0 / M_PI),
                0.003);
    EXPECT_TRUE(m.acceptable());
}

} // namespace
} // namespace wct
