/**
 * @file
 * Unit tests for the OLS solver: exact recovery, noise behaviour,
 * rank-deficient inputs, and the Cholesky kernel.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/ols.hh"
#include "util/rng.hh"

namespace wct
{
namespace
{

/** Pack row-major data and fit. */
OlsFit
fitRows(const std::vector<std::vector<double>> &rows,
        const std::vector<double> &y, double ridge = 1e-8)
{
    std::vector<std::span<const double>> spans;
    spans.reserve(rows.size());
    for (const auto &r : rows)
        spans.emplace_back(r.data(), r.size());
    return fitOls(spans, y, ridge);
}

TEST(CholeskyTest, SolvesSpdSystem)
{
    // A = [[4, 2], [2, 3]], b = [10, 9] -> x = [1.5, 2].
    std::vector<double> a = {4.0, 2.0, 2.0, 3.0};
    std::vector<double> b = {10.0, 9.0};
    ASSERT_TRUE(choleskySolveInPlace(a, b, 2));
    EXPECT_NEAR(b[0], 1.5, 1e-12);
    EXPECT_NEAR(b[1], 2.0, 1e-12);
}

TEST(CholeskyTest, RejectsIndefiniteMatrix)
{
    std::vector<double> a = {1.0, 2.0, 2.0, 1.0}; // eigenvalues 3, -1
    std::vector<double> b = {1.0, 1.0};
    EXPECT_FALSE(choleskySolveInPlace(a, b, 2));
}

TEST(CholeskyTest, IdentitySolve)
{
    std::vector<double> a = {1.0, 0.0, 0.0, 1.0};
    std::vector<double> b = {7.0, -3.0};
    ASSERT_TRUE(choleskySolveInPlace(a, b, 2));
    EXPECT_DOUBLE_EQ(b[0], 7.0);
    EXPECT_DOUBLE_EQ(b[1], -3.0);
}

TEST(OlsTest, RecoversExactLinearFunction)
{
    // y = 2 + 3*x0 - 5*x1, no noise.
    std::vector<std::vector<double>> rows;
    std::vector<double> y;
    Rng rng(1);
    for (int i = 0; i < 50; ++i) {
        const double x0 = rng.uniform(-2.0, 2.0);
        const double x1 = rng.uniform(0.0, 4.0);
        rows.push_back({x0, x1});
        y.push_back(2.0 + 3.0 * x0 - 5.0 * x1);
    }
    const auto fit = fitRows(rows, y);
    EXPECT_NEAR(fit.intercept, 2.0, 1e-6);
    ASSERT_EQ(fit.coefficients.size(), 2u);
    EXPECT_NEAR(fit.coefficients[0], 3.0, 1e-6);
    EXPECT_NEAR(fit.coefficients[1], -5.0, 1e-6);
    EXPECT_NEAR(fit.rSquared, 1.0, 1e-9);
    EXPECT_LT(fit.meanAbsoluteError, 1e-6);
}

TEST(OlsTest, NoisyRecoveryWithinTolerance)
{
    std::vector<std::vector<double>> rows;
    std::vector<double> y;
    Rng rng(2);
    for (int i = 0; i < 5000; ++i) {
        const double x0 = rng.uniform(0.0, 1.0);
        const double x1 = rng.uniform(0.0, 1.0);
        rows.push_back({x0, x1});
        y.push_back(1.0 + 4.0 * x0 + 0.5 * x1 + rng.normal(0.0, 0.1));
    }
    const auto fit = fitRows(rows, y);
    EXPECT_NEAR(fit.intercept, 1.0, 0.03);
    EXPECT_NEAR(fit.coefficients[0], 4.0, 0.05);
    EXPECT_NEAR(fit.coefficients[1], 0.5, 0.05);
    EXPECT_GT(fit.rSquared, 0.98);
}

TEST(OlsTest, InterceptOnlyFitsMean)
{
    std::vector<std::vector<double>> rows = {{}, {}, {}, {}};
    const std::vector<double> y = {1.0, 2.0, 3.0, 6.0};
    const auto fit = fitRows(rows, y);
    EXPECT_TRUE(fit.coefficients.empty());
    EXPECT_NEAR(fit.intercept, 3.0, 1e-12);
}

TEST(OlsTest, ConstantPredictorHandledByRidge)
{
    // A constant column is collinear with the intercept; the ridge
    // must keep the system solvable and push its weight toward zero.
    std::vector<std::vector<double>> rows;
    std::vector<double> y;
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        const double x = rng.uniform(0.0, 1.0);
        rows.push_back({x, 1.0});
        y.push_back(2.0 * x + 3.0);
    }
    const auto fit = fitRows(rows, y);
    EXPECT_NEAR(fit.coefficients[0], 2.0, 1e-3);
    // intercept + c1*1.0 must combine to 3.
    EXPECT_NEAR(fit.intercept + fit.coefficients[1], 3.0, 1e-3);
}

TEST(OlsTest, DuplicatedPredictorSplitsWeight)
{
    std::vector<std::vector<double>> rows;
    std::vector<double> y;
    Rng rng(4);
    for (int i = 0; i < 200; ++i) {
        const double x = rng.uniform(-1.0, 1.0);
        rows.push_back({x, x});
        y.push_back(6.0 * x);
    }
    const auto fit = fitRows(rows, y);
    // Ridge makes the minimum-norm split unique: 3 + 3.
    EXPECT_NEAR(fit.coefficients[0] + fit.coefficients[1], 6.0, 1e-3);
    EXPECT_NEAR(fit.coefficients[0], fit.coefficients[1], 1e-6);
}

TEST(OlsTest, PredictMatchesManualEvaluation)
{
    OlsFit fit;
    fit.intercept = 0.5;
    fit.coefficients = {2.0, -1.0};
    const std::vector<double> x = {3.0, 4.0};
    EXPECT_DOUBLE_EQ(fit.predict(x), 0.5 + 6.0 - 4.0);
}

TEST(OlsTest, ColumnsOverloadAgreesWithRows)
{
    Rng rng(5);
    std::vector<std::vector<double>> rows;
    std::vector<std::vector<double>> cols(2);
    std::vector<double> y;
    for (int i = 0; i < 64; ++i) {
        const double x0 = rng.normal();
        const double x1 = rng.normal();
        rows.push_back({x0, x1});
        cols[0].push_back(x0);
        cols[1].push_back(x1);
        y.push_back(1.0 - x0 + 2.0 * x1 + rng.normal(0.0, 0.01));
    }
    const auto a = fitRows(rows, y);
    const auto b = fitOlsColumns(cols, y);
    EXPECT_NEAR(a.intercept, b.intercept, 1e-12);
    EXPECT_NEAR(a.coefficients[0], b.coefficients[0], 1e-12);
    EXPECT_NEAR(a.coefficients[1], b.coefficients[1], 1e-12);
}

TEST(OlsTest, RSquaredZeroForPureNoiseNearZero)
{
    Rng rng(6);
    std::vector<std::vector<double>> rows;
    std::vector<double> y;
    for (int i = 0; i < 3000; ++i) {
        rows.push_back({rng.normal()});
        y.push_back(rng.normal());
    }
    const auto fit = fitRows(rows, y);
    EXPECT_LT(fit.rSquared, 0.01);
    EXPECT_NEAR(fit.coefficients[0], 0.0, 0.05);
}

// Parameterised: recovery across predictor counts.
class OlsWidthSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(OlsWidthSweep, RecoversPlantedCoefficients)
{
    const int width = GetParam();
    Rng rng(100 + width);
    std::vector<double> truth;
    for (int j = 0; j < width; ++j)
        truth.push_back(rng.uniform(-3.0, 3.0));

    std::vector<std::vector<double>> rows;
    std::vector<double> y;
    for (int i = 0; i < 400 + 50 * width; ++i) {
        std::vector<double> x;
        double target = 0.7;
        for (int j = 0; j < width; ++j) {
            x.push_back(rng.uniform(0.0, 2.0));
            target += truth[j] * x.back();
        }
        rows.push_back(std::move(x));
        y.push_back(target);
    }
    const auto fit = fitRows(rows, y);
    ASSERT_EQ(fit.coefficients.size(), static_cast<std::size_t>(width));
    for (int j = 0; j < width; ++j)
        EXPECT_NEAR(fit.coefficients[j], truth[j], 1e-5) << "j=" << j;
}

INSTANTIATE_TEST_SUITE_P(Widths, OlsWidthSweep,
                         ::testing::Values(1, 2, 5, 10, 20));

} // namespace
} // namespace wct
