/**
 * @file
 * Unit and property tests for the two-sample hypothesis tests.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/descriptive.hh"
#include "stats/tests.hh"
#include "util/rng.hh"

namespace wct
{
namespace
{

std::vector<double>
normalSample(Rng &rng, std::size_t n, double mean, double sd)
{
    std::vector<double> xs;
    xs.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        xs.push_back(rng.normal(mean, sd));
    return xs;
}

TEST(PooledTTest, AcceptsIdenticalPopulations)
{
    Rng rng(1);
    const auto xs = normalSample(rng, 5000, 1.0, 0.5);
    const auto ys = normalSample(rng, 5000, 1.0, 0.5);
    const auto r = pooledTTest(xs, ys);
    EXPECT_FALSE(r.rejectAt(0.05));
    EXPECT_LT(std::fabs(r.statistic), 1.96);
}

TEST(PooledTTest, RejectsShiftedPopulations)
{
    Rng rng(2);
    const auto xs = normalSample(rng, 5000, 1.0, 0.5);
    const auto ys = normalSample(rng, 5000, 1.25, 0.6);
    const auto r = pooledTTest(xs, ys);
    EXPECT_TRUE(r.rejectAt(0.05));
    EXPECT_GT(std::fabs(r.statistic), 10.0);
}

TEST(PooledTTest, AntisymmetricUnderSwap)
{
    Rng rng(3);
    const auto xs = normalSample(rng, 200, 0.0, 1.0);
    const auto ys = normalSample(rng, 300, 0.3, 1.2);
    const auto ab = pooledTTest(xs, ys);
    const auto ba = pooledTTest(ys, xs);
    EXPECT_NEAR(ab.statistic, -ba.statistic, 1e-12);
    EXPECT_NEAR(ab.pValue, ba.pValue, 1e-12);
    EXPECT_DOUBLE_EQ(ab.df, ba.df);
}

TEST(PooledTTest, MomentsFormMatchesRawForm)
{
    Rng rng(4);
    const auto xs = normalSample(rng, 150, 2.0, 0.7);
    const auto ys = normalSample(rng, 250, 2.1, 0.8);
    const auto raw = pooledTTest(xs, ys);

    double mx = 0.0, my = 0.0;
    for (double x : xs)
        mx += x;
    mx /= xs.size();
    for (double y : ys)
        my += y;
    my /= ys.size();
    double vx = 0.0, vy = 0.0;
    for (double x : xs)
        vx += (x - mx) * (x - mx);
    vx /= (xs.size() - 1);
    for (double y : ys)
        vy += (y - my) * (y - my);
    vy /= (ys.size() - 1);

    const auto mom = pooledTTestFromMoments(mx, vx, xs.size(), my, vy,
                                            ys.size());
    EXPECT_NEAR(raw.statistic, mom.statistic, 1e-10);
    EXPECT_NEAR(raw.pValue, mom.pValue, 1e-10);
}

TEST(PooledTTest, DegenerateConstantSamples)
{
    const std::vector<double> xs = {2.0, 2.0, 2.0};
    const std::vector<double> same = {2.0, 2.0};
    const std::vector<double> other = {3.0, 3.0};
    EXPECT_NEAR(pooledTTest(xs, same).pValue, 1.0, 1e-12);
    EXPECT_NEAR(pooledTTest(xs, other).pValue, 0.0, 1e-12);
}

TEST(WelchTTest, HandlesUnequalVariances)
{
    Rng rng(5);
    const auto xs = normalSample(rng, 4000, 1.0, 0.1);
    const auto ys = normalSample(rng, 4000, 1.0, 2.0);
    const auto r = welchTTest(xs, ys);
    EXPECT_FALSE(r.rejectAt(0.05));
    // Welch df must be far below the pooled n1 + n2 - 2.
    EXPECT_LT(r.df, 5000.0);
}

TEST(WelchTTest, DetectsShift)
{
    Rng rng(6);
    const auto xs = normalSample(rng, 2000, 0.0, 1.0);
    const auto ys = normalSample(rng, 2000, 0.5, 3.0);
    const auto r = welchTTest(xs, ys);
    EXPECT_TRUE(r.rejectAt(0.01));
}

TEST(TTestFalsePositiveRate, NearNominalAlpha)
{
    // Property: under H0 the rejection rate should be ~alpha.
    Rng rng(7);
    int rejections = 0;
    constexpr int trials = 400;
    for (int i = 0; i < trials; ++i) {
        const auto xs = normalSample(rng, 60, 5.0, 1.0);
        const auto ys = normalSample(rng, 60, 5.0, 1.0);
        rejections += pooledTTest(xs, ys).rejectAt(0.05);
    }
    const double rate = rejections / double(trials);
    EXPECT_GT(rate, 0.01);
    EXPECT_LT(rate, 0.11);
}

TEST(MannWhitneyTest, AcceptsIdenticalPopulations)
{
    Rng rng(8);
    const auto xs = normalSample(rng, 1000, 0.0, 1.0);
    const auto ys = normalSample(rng, 1000, 0.0, 1.0);
    EXPECT_FALSE(mannWhitneyUTest(xs, ys).rejectAt(0.05));
}

TEST(MannWhitneyTest, RejectsShiftedPopulations)
{
    Rng rng(9);
    const auto xs = normalSample(rng, 1000, 0.0, 1.0);
    const auto ys = normalSample(rng, 1000, 0.8, 1.0);
    EXPECT_TRUE(mannWhitneyUTest(xs, ys).rejectAt(0.001));
}

TEST(MannWhitneyTest, RobustToOutliers)
{
    // A single enormous outlier should not flip the conclusion, unlike
    // for the mean-based t-test with tiny samples.
    std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0,
                              6.0, 7.0, 8.0, 9.0, 10.0};
    std::vector<double> ys = {1.1, 2.1, 3.1, 4.1, 5.1,
                              6.1, 7.1, 8.1, 9.1, 1e9};
    EXPECT_FALSE(mannWhitneyUTest(xs, ys).rejectAt(0.05));
}

TEST(MannWhitneyTest, AllTiedGivesPValueOne)
{
    const std::vector<double> xs = {5.0, 5.0, 5.0};
    const std::vector<double> ys = {5.0, 5.0};
    EXPECT_DOUBLE_EQ(mannWhitneyUTest(xs, ys).pValue, 1.0);
}

TEST(LeveneTest, AcceptsEqualVariances)
{
    Rng rng(10);
    const auto xs = normalSample(rng, 2000, 0.0, 1.0);
    const auto ys = normalSample(rng, 2000, 5.0, 1.0);
    // Levene tests scale, not location: the mean shift is irrelevant.
    EXPECT_FALSE(leveneTest(xs, ys).rejectAt(0.05));
}

TEST(LeveneTest, RejectsUnequalVariances)
{
    Rng rng(11);
    const auto xs = normalSample(rng, 2000, 0.0, 1.0);
    const auto ys = normalSample(rng, 2000, 0.0, 2.0);
    EXPECT_TRUE(leveneTest(xs, ys).rejectAt(0.001));
}

TEST(LeveneTest, ConstantSamples)
{
    const std::vector<double> xs = {1.0, 1.0, 1.0};
    const std::vector<double> ys = {2.0, 2.0, 2.0};
    EXPECT_NEAR(leveneTest(xs, ys).pValue, 1.0, 1e-12);
}

TEST(KsTest, AcceptsIdenticalPopulations)
{
    Rng rng(20);
    const auto xs = normalSample(rng, 1500, 0.0, 1.0);
    const auto ys = normalSample(rng, 1500, 0.0, 1.0);
    EXPECT_FALSE(ksTest(xs, ys).rejectAt(0.05));
}

TEST(KsTest, RejectsLocationShift)
{
    Rng rng(21);
    const auto xs = normalSample(rng, 1500, 0.0, 1.0);
    const auto ys = normalSample(rng, 1500, 0.4, 1.0);
    EXPECT_TRUE(ksTest(xs, ys).rejectAt(0.001));
}

TEST(KsTest, RejectsShapeChangeWithEqualMeans)
{
    // Same mean and similar variance won't fool KS if shapes differ:
    // normal vs. a two-point mixture.
    Rng rng(22);
    const auto xs = normalSample(rng, 2000, 0.0, 1.0);
    std::vector<double> ys;
    for (int i = 0; i < 2000; ++i)
        ys.push_back(rng.bernoulli(0.5) ? 1.0 : -1.0);
    EXPECT_TRUE(ksTest(xs, ys).rejectAt(0.001));
    // While the mean difference itself is tiny (pure shape change).
    EXPECT_LT(std::fabs(mean(xs) - mean(ys)), 0.1);
}

TEST(KsTest, StatisticIsEcdfGap)
{
    // Disjoint supports: D = 1.
    const std::vector<double> xs = {1.0, 2.0, 3.0};
    const std::vector<double> ys = {10.0, 11.0};
    const auto r = ksTest(xs, ys);
    EXPECT_DOUBLE_EQ(r.statistic, 1.0);
    // Identical samples: D = 0, p = 1.
    const auto same = ksTest(xs, xs);
    EXPECT_DOUBLE_EQ(same.statistic, 0.0);
    EXPECT_NEAR(same.pValue, 1.0, 1e-9);
}

TEST(KsTest, SymmetricUnderSwap)
{
    Rng rng(23);
    const auto xs = normalSample(rng, 300, 0.0, 1.0);
    const auto ys = normalSample(rng, 400, 0.5, 2.0);
    const auto ab = ksTest(xs, ys);
    const auto ba = ksTest(ys, xs);
    EXPECT_DOUBLE_EQ(ab.statistic, ba.statistic);
    EXPECT_DOUBLE_EQ(ab.pValue, ba.pValue);
}

// Parameterised sweep: detection power grows with the mean shift.
class TTestPowerSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(TTestPowerSweep, LargeShiftAlwaysDetected)
{
    const double shift = GetParam();
    Rng rng(12);
    const auto xs = normalSample(rng, 3000, 1.0, 0.5);
    const auto ys = normalSample(rng, 3000, 1.0 + shift, 0.5);
    const auto r = pooledTTest(xs, ys);
    if (shift >= 0.1) {
        EXPECT_TRUE(r.rejectAt(0.05)) << "shift=" << shift;
    } else if (shift == 0.0) {
        EXPECT_FALSE(r.rejectAt(0.0001)) << "shift=" << shift;
    }
}

INSTANTIATE_TEST_SUITE_P(Shifts, TTestPowerSweep,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 1.0));

} // namespace
} // namespace wct
