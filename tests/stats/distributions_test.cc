/**
 * @file
 * Numerical cross-checks of the distribution functions against known
 * reference values (R / standard tables).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/distributions.hh"

namespace wct
{
namespace
{

TEST(IncompleteBetaTest, Endpoints)
{
    EXPECT_DOUBLE_EQ(incompleteBeta(2.0, 3.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(incompleteBeta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBetaTest, SymmetryIdentity)
{
    // I_x(a, b) = 1 - I_{1-x}(b, a).
    for (double x : {0.1, 0.3, 0.5, 0.7, 0.9}) {
        EXPECT_NEAR(incompleteBeta(2.5, 1.5, x),
                    1.0 - incompleteBeta(1.5, 2.5, 1.0 - x), 1e-12);
    }
}

TEST(IncompleteBetaTest, UniformSpecialCase)
{
    // I_x(1, 1) = x.
    for (double x : {0.2, 0.4, 0.6, 0.8})
        EXPECT_NEAR(incompleteBeta(1.0, 1.0, x), x, 1e-12);
}

TEST(IncompleteBetaTest, KnownValue)
{
    // I_0.5(2, 2) = 0.5 by symmetry; I_0.25(2, 2) = 0.15625
    // (CDF of Beta(2,2) is 3x^2 - 2x^3).
    EXPECT_NEAR(incompleteBeta(2.0, 2.0, 0.5), 0.5, 1e-12);
    EXPECT_NEAR(incompleteBeta(2.0, 2.0, 0.25), 0.15625, 1e-12);
}

TEST(NormalCdfTest, StandardValues)
{
    EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-14);
    EXPECT_NEAR(normalCdf(1.959963985), 0.975, 1e-9);
    EXPECT_NEAR(normalCdf(-1.959963985), 0.025, 1e-9);
    EXPECT_NEAR(normalCdf(1.0), 0.8413447461, 1e-9);
    EXPECT_NEAR(normalCdf(-2.326347874), 0.01, 1e-9);
}

TEST(NormalQuantileTest, InvertsCdf)
{
    for (double p : {0.001, 0.01, 0.025, 0.1, 0.5, 0.9, 0.975, 0.999}) {
        const double z = normalQuantile(p);
        EXPECT_NEAR(normalCdf(z), p, 1e-10) << "p=" << p;
    }
}

TEST(NormalQuantileTest, KnownCriticalValues)
{
    EXPECT_NEAR(normalQuantile(0.975), 1.959963985, 1e-8);
    EXPECT_NEAR(normalQuantile(0.5), 0.0, 1e-12);
    EXPECT_NEAR(normalQuantile(0.95), 1.644853627, 1e-8);
}

TEST(StudentTCdfTest, SymmetricAroundZero)
{
    for (double df : {1.0, 5.0, 30.0, 200.0}) {
        EXPECT_NEAR(studentTCdf(0.0, df), 0.5, 1e-12);
        for (double t : {0.5, 1.0, 2.5}) {
            EXPECT_NEAR(studentTCdf(t, df) + studentTCdf(-t, df), 1.0,
                        1e-12);
        }
    }
}

TEST(StudentTCdfTest, CauchySpecialCase)
{
    // df = 1 is the Cauchy distribution: CDF = 1/2 + atan(t)/pi.
    for (double t : {-3.0, -1.0, 0.5, 2.0}) {
        EXPECT_NEAR(studentTCdf(t, 1.0),
                    0.5 + std::atan(t) / M_PI, 1e-10);
    }
}

TEST(StudentTCdfTest, ApproachesNormalForLargeDf)
{
    for (double t : {-2.0, -0.5, 1.0, 2.5}) {
        EXPECT_NEAR(studentTCdf(t, 1e6), normalCdf(t), 1e-5);
    }
}

TEST(StudentTTest, KnownCriticalValues)
{
    // Two-sided 95% critical values from t tables.
    EXPECT_NEAR(studentTQuantile(0.975, 10.0), 2.228138852, 1e-6);
    EXPECT_NEAR(studentTQuantile(0.975, 30.0), 2.042272456, 1e-6);
    // The paper's large-sample threshold of 1.960.
    EXPECT_NEAR(studentTQuantile(0.975, 400000.0), 1.960, 1e-3);
}

TEST(StudentTTest, TwoSidedPValue)
{
    // P(|T_10| > 2.228...) = 0.05.
    EXPECT_NEAR(studentTTwoSidedP(2.228138852, 10.0), 0.05, 1e-6);
    EXPECT_NEAR(studentTTwoSidedP(0.0, 10.0), 1.0, 1e-12);
    EXPECT_LT(studentTTwoSidedP(125.0, 300000.0), 1e-12);
}

TEST(StudentTQuantileTest, InvertsCdf)
{
    for (double df : {3.0, 12.0, 100.0}) {
        for (double p : {0.05, 0.3, 0.5, 0.8, 0.99}) {
            const double t = studentTQuantile(p, df);
            // The x = df/(df + t^2) parametrization flattens to a
            // ~1e-8-wide plateau around t = 0, bounding the invertible
            // precision near p = 0.5.
            EXPECT_NEAR(studentTCdf(t, df), p, 1e-7)
                << "df=" << df << " p=" << p;
        }
    }
}

TEST(FisherFTest, KnownValues)
{
    // F(1, 10) upper 5% critical value is 4.9646.
    EXPECT_NEAR(fisherFCdf(4.9646, 1.0, 10.0), 0.95, 1e-4);
    // F(5, 20) upper 5% critical value is 2.7109.
    EXPECT_NEAR(fisherFCdf(2.7109, 5.0, 20.0), 0.95, 1e-4);
    EXPECT_DOUBLE_EQ(fisherFCdf(0.0, 3.0, 7.0), 0.0);
}

TEST(FisherFTest, RelationToStudentT)
{
    // T_df^2 ~ F(1, df): P(F <= t^2) = P(|T| <= t).
    const double t = 1.7;
    const double df = 14.0;
    EXPECT_NEAR(fisherFCdf(t * t, 1.0, df),
                1.0 - studentTTwoSidedP(t, df), 1e-10);
}

TEST(FisherFTest, UpperPComplement)
{
    EXPECT_NEAR(fisherFUpperP(2.0, 4.0, 9.0) + fisherFCdf(2.0, 4.0, 9.0),
                1.0, 1e-12);
}

} // namespace
} // namespace wct
