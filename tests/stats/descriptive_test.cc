/**
 * @file
 * Unit tests for descriptive statistics and the Welford accumulator.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/descriptive.hh"
#include "util/rng.hh"

namespace wct
{
namespace
{

const std::vector<double> kSample = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0,
                                     9.0};

TEST(MeanTest, KnownValue)
{
    EXPECT_DOUBLE_EQ(mean(kSample), 5.0);
}

TEST(VarianceTest, SampleVsPopulation)
{
    // Sum of squared deviations is 32.
    EXPECT_NEAR(sampleVariance(kSample), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(populationVariance(kSample), 4.0, 1e-12);
    EXPECT_NEAR(sampleStddev(kSample), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(VarianceTest, DegenerateInputs)
{
    const std::vector<double> one = {3.0};
    EXPECT_DOUBLE_EQ(sampleVariance(one), 0.0);
    EXPECT_DOUBLE_EQ(populationVariance(one), 0.0);
    const std::vector<double> constant = {2.0, 2.0, 2.0};
    EXPECT_DOUBLE_EQ(sampleVariance(constant), 0.0);
}

TEST(MedianTest, OddAndEven)
{
    const std::vector<double> odd = {3.0, 1.0, 2.0};
    EXPECT_DOUBLE_EQ(median(odd), 2.0);
    const std::vector<double> even = {4.0, 1.0, 3.0, 2.0};
    EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(QuantileTest, EndpointsAndInterpolation)
{
    const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 40.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 25.0);
    EXPECT_NEAR(quantile(xs, 0.25), 17.5, 1e-12);
}

TEST(CovarianceTest, LinearRelation)
{
    const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    std::vector<double> ys;
    for (double x : xs)
        ys.push_back(3.0 * x + 1.0);
    EXPECT_NEAR(sampleCovariance(xs, ys), 3.0 * sampleVariance(xs),
                1e-12);
    EXPECT_NEAR(pearsonCorrelation(xs, ys), 1.0, 1e-12);
}

TEST(CorrelationTest, PerfectNegative)
{
    const std::vector<double> xs = {1.0, 2.0, 3.0};
    const std::vector<double> ys = {6.0, 4.0, 2.0};
    EXPECT_NEAR(pearsonCorrelation(xs, ys), -1.0, 1e-12);
}

TEST(CorrelationTest, DegenerateSideGivesZero)
{
    const std::vector<double> xs = {1.0, 1.0, 1.0};
    const std::vector<double> ys = {1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(pearsonCorrelation(xs, ys), 0.0);
}

TEST(CorrelationTest, IndependentNearZero)
{
    Rng rng(101);
    std::vector<double> xs, ys;
    for (int i = 0; i < 20000; ++i) {
        xs.push_back(rng.normal());
        ys.push_back(rng.normal());
    }
    EXPECT_NEAR(pearsonCorrelation(xs, ys), 0.0, 0.03);
}

TEST(RunningStatsTest, MatchesBatchComputation)
{
    RunningStats acc;
    for (double x : kSample)
        acc.add(x);
    EXPECT_EQ(acc.count(), kSample.size());
    EXPECT_DOUBLE_EQ(acc.mean(), mean(kSample));
    EXPECT_NEAR(acc.sampleVariance(), sampleVariance(kSample), 1e-12);
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 9.0);
    EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(RunningStatsTest, MergeEqualsConcatenation)
{
    RunningStats left, right, all;
    for (int i = 0; i < 50; ++i) {
        const double x = std::sin(i * 0.7) * 10.0;
        (i < 20 ? left : right).add(x);
        all.add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
    EXPECT_NEAR(left.sampleVariance(), all.sampleVariance(), 1e-9);
    EXPECT_DOUBLE_EQ(left.min(), all.min());
    EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptySides)
{
    RunningStats a;
    RunningStats b;
    b.add(5.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    RunningStats c;
    a.merge(c);
    EXPECT_EQ(a.count(), 1u);
}

TEST(RunningStatsTest, VarianceOfSingleIsZero)
{
    RunningStats acc;
    acc.add(42.0);
    EXPECT_DOUBLE_EQ(acc.sampleVariance(), 0.0);
    EXPECT_DOUBLE_EQ(acc.populationVariance(), 0.0);
}

// Property: merging any split of a stream equals the full stream.
class RunningStatsSplitTest : public ::testing::TestWithParam<int>
{
};

TEST_P(RunningStatsSplitTest, SplitInvariant)
{
    const int split = GetParam();
    Rng rng(300 + split);
    std::vector<double> xs;
    for (int i = 0; i < 200; ++i)
        xs.push_back(rng.normal(3.0, 2.5));

    RunningStats a, b, whole;
    for (int i = 0; i < 200; ++i) {
        (i < split ? a : b).add(xs[i]);
        whole.add(xs[i]);
    }
    a.merge(b);
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-10);
    EXPECT_NEAR(a.sampleVariance(), whole.sampleVariance(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Splits, RunningStatsSplitTest,
                         ::testing::Values(0, 1, 50, 100, 199, 200));

} // namespace
} // namespace wct
