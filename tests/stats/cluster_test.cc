/**
 * @file
 * Tests for k-means and k-medoids clustering.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "stats/cluster.hh"

namespace wct
{
namespace
{

/** Three well-separated 2-D blobs. */
std::vector<std::vector<double>>
threeBlobs(Rng &rng, std::size_t per_blob = 40)
{
    const double centers[3][2] = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
    std::vector<std::vector<double>> points;
    for (int b = 0; b < 3; ++b)
        for (std::size_t i = 0; i < per_blob; ++i)
            points.push_back({centers[b][0] + rng.normal(0.0, 0.5),
                              centers[b][1] + rng.normal(0.0, 0.5)});
    return points;
}

TEST(KMeansTest, RecoversWellSeparatedBlobs)
{
    Rng rng(1);
    const auto points = threeBlobs(rng);
    const KMeansResult result = kMeans(points, 3, rng);

    // Each blob maps to exactly one cluster.
    for (int b = 0; b < 3; ++b) {
        std::set<std::size_t> labels;
        for (std::size_t i = 0; i < 40; ++i)
            labels.insert(result.assignment[b * 40 + i]);
        EXPECT_EQ(labels.size(), 1u) << "blob " << b;
    }
    // And the three clusters are distinct.
    std::set<std::size_t> all(result.assignment.begin(),
                              result.assignment.end());
    EXPECT_EQ(all.size(), 3u);
}

TEST(KMeansTest, CentroidsNearBlobCenters)
{
    Rng rng(2);
    const auto points = threeBlobs(rng);
    const KMeansResult result = kMeans(points, 3, rng);
    int matched = 0;
    for (const auto &center :
         {std::pair{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}}) {
        for (const auto &centroid : result.centroids) {
            const double d =
                std::hypot(centroid[0] - center.first,
                           centroid[1] - center.second);
            if (d < 0.5)
                ++matched;
        }
    }
    EXPECT_EQ(matched, 3);
}

TEST(KMeansTest, InertiaDecreasesWithMoreClusters)
{
    Rng rng(3);
    const auto points = threeBlobs(rng);
    double prev = std::numeric_limits<double>::infinity();
    for (std::size_t k : {1u, 2u, 3u, 6u}) {
        Rng local(99);
        const double inertia = kMeans(points, k, local).inertia;
        EXPECT_LE(inertia, prev + 1e-9) << "k=" << k;
        prev = inertia;
    }
}

TEST(KMeansTest, KEqualsNGivesZeroInertia)
{
    Rng rng(4);
    std::vector<std::vector<double>> points = {
        {0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0}, {5.0, 5.0}};
    const KMeansResult result = kMeans(points, 4, rng);
    EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

TEST(KMeansTest, ExemplarsAreInputPoints)
{
    Rng rng(5);
    const auto points = threeBlobs(rng);
    const KMeansResult result = kMeans(points, 3, rng);
    ASSERT_EQ(result.exemplars.size(), 3u);
    for (std::size_t e : result.exemplars)
        EXPECT_LT(e, points.size());
}

TEST(KMeansTest, SingleCluster)
{
    Rng rng(6);
    const auto points = threeBlobs(rng);
    const KMeansResult result = kMeans(points, 1, rng);
    for (std::size_t a : result.assignment)
        EXPECT_EQ(a, 0u);
}

TEST(KMeansDeathTest, BadK)
{
    Rng rng(7);
    std::vector<std::vector<double>> points = {{0.0}, {1.0}};
    EXPECT_DEATH(kMeans(points, 3, rng), "out of range");
    EXPECT_DEATH(kMeans({}, 1, rng), "empty");
}

/** Distance matrix for points on a line: 0, 1, 2, 10, 11, 12. */
std::vector<double>
lineDistances(std::vector<double> &positions)
{
    positions = {0.0, 1.0, 2.0, 10.0, 11.0, 12.0};
    const std::size_t n = positions.size();
    std::vector<double> d(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            d[i * n + j] = std::fabs(positions[i] - positions[j]);
    return d;
}

TEST(KMedoidsTest, TwoGroupsOnALine)
{
    std::vector<double> positions;
    const auto d = lineDistances(positions);
    const KMedoidsResult result = kMedoids(d, positions.size(), 2);
    ASSERT_EQ(result.medoids.size(), 2u);
    // The optimal medoids are the group middles: indices 1 and 4.
    EXPECT_EQ(result.medoids[0], 1u);
    EXPECT_EQ(result.medoids[1], 4u);
    EXPECT_NEAR(result.cost, 4.0, 1e-12);
    // Assignment splits the line in half.
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(result.assignment[i], 0u);
    for (std::size_t i = 3; i < 6; ++i)
        EXPECT_EQ(result.assignment[i], 1u);
}

TEST(KMedoidsTest, SingleMedoidIsGeometricMedian)
{
    std::vector<double> positions;
    const auto d = lineDistances(positions);
    const KMedoidsResult result = kMedoids(d, positions.size(), 1);
    // Any of the middle points minimises total distance; cost 30 at
    // index 2 (|0-2|+|1-2|+0+8+9+10 = 30) equals index 3's cost.
    const double cost2 = 2 + 1 + 0 + 8 + 9 + 10;
    EXPECT_NEAR(result.cost, cost2, 1e-12);
}

TEST(KMedoidsTest, KEqualsNZeroCost)
{
    std::vector<double> positions;
    const auto d = lineDistances(positions);
    const KMedoidsResult result = kMedoids(d, positions.size(), 6);
    EXPECT_NEAR(result.cost, 0.0, 1e-12);
    std::set<std::size_t> unique(result.medoids.begin(),
                                 result.medoids.end());
    EXPECT_EQ(unique.size(), 6u);
}

TEST(KMedoidsTest, CostMonotoneInK)
{
    std::vector<double> positions;
    const auto d = lineDistances(positions);
    double prev = std::numeric_limits<double>::infinity();
    for (std::size_t k = 1; k <= 6; ++k) {
        const double cost = kMedoids(d, positions.size(), k).cost;
        EXPECT_LE(cost, prev + 1e-12) << "k=" << k;
        prev = cost;
    }
}

TEST(KMedoidsDeathTest, BadMatrix)
{
    EXPECT_DEATH(kMedoids(std::vector<double>(5, 0.0), 2, 1),
                 "size mismatch");
}

} // namespace
} // namespace wct
