/**
 * @file
 * Tests for the bootstrap confidence intervals.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/bootstrap.hh"
#include "stats/descriptive.hh"
#include "stats/metrics.hh"

namespace wct
{
namespace
{

std::vector<double>
normalSample(Rng &rng, std::size_t n, double mean, double sd)
{
    std::vector<double> xs;
    xs.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        xs.push_back(rng.normal(mean, sd));
    return xs;
}

double
meanStat(std::span<const double> xs)
{
    return mean(xs);
}

TEST(BootstrapTest, MeanCiCoversTruth)
{
    Rng rng(1);
    const auto xs = normalSample(rng, 400, 5.0, 1.0);
    const auto ci = bootstrapCi(xs, meanStat, rng, 1000, 0.95);
    EXPECT_LE(ci.lower, 5.1);
    EXPECT_GE(ci.upper, 4.9);
    EXPECT_NEAR(ci.pointEstimate, mean(xs), 1e-12);
    EXPECT_LT(ci.lower, ci.pointEstimate);
    EXPECT_GT(ci.upper, ci.pointEstimate);
}

TEST(BootstrapTest, WidthMatchesClassicStandardError)
{
    // 95% CI width for a mean ~ 2 * 1.96 * sd/sqrt(n).
    Rng rng(2);
    const std::size_t n = 900;
    const auto xs = normalSample(rng, n, 0.0, 3.0);
    const auto ci = bootstrapCi(xs, meanStat, rng, 1500, 0.95);
    const double expected =
        2.0 * 1.96 * 3.0 / std::sqrt(static_cast<double>(n));
    EXPECT_NEAR(ci.width(), expected, 0.30 * expected);
}

TEST(BootstrapTest, WidthShrinksWithSampleSize)
{
    Rng rng(3);
    const auto small = normalSample(rng, 50, 0.0, 1.0);
    const auto large = normalSample(rng, 5000, 0.0, 1.0);
    const auto ci_small = bootstrapCi(small, meanStat, rng, 800);
    const auto ci_large = bootstrapCi(large, meanStat, rng, 800);
    EXPECT_LT(ci_large.width(), ci_small.width() / 3.0);
}

TEST(BootstrapTest, ConfidenceLevelOrdersWidths)
{
    Rng rng(4);
    const auto xs = normalSample(rng, 300, 0.0, 1.0);
    Rng rng_a(9);
    const auto ci90 = bootstrapCi(xs, meanStat, rng_a, 1200, 0.90);
    Rng rng_b(9);
    const auto ci99 = bootstrapCi(xs, meanStat, rng_b, 1200, 0.99);
    EXPECT_LT(ci90.width(), ci99.width());
}

TEST(BootstrapTest, DeterministicGivenSeed)
{
    Rng data_rng(5);
    const auto xs = normalSample(data_rng, 200, 1.0, 0.5);
    Rng a(7);
    Rng b(7);
    const auto ci_a = bootstrapCi(xs, meanStat, a, 500);
    const auto ci_b = bootstrapCi(xs, meanStat, b, 500);
    EXPECT_DOUBLE_EQ(ci_a.lower, ci_b.lower);
    EXPECT_DOUBLE_EQ(ci_a.upper, ci_b.upper);
}

TEST(BootstrapTest, IntervalPredicates)
{
    ConfidenceInterval ci;
    ci.lower = 0.8;
    ci.upper = 0.9;
    EXPECT_TRUE(ci.entirelyAbove(0.7));
    EXPECT_FALSE(ci.entirelyAbove(0.85));
    EXPECT_TRUE(ci.entirelyBelow(0.95));
    EXPECT_FALSE(ci.entirelyBelow(0.85));
    EXPECT_TRUE(ci.contains(0.85));
    EXPECT_FALSE(ci.contains(0.95));
    EXPECT_NEAR(ci.width(), 0.1, 1e-12);
}

TEST(BootstrapPairedTest, CorrelationCiTight)
{
    Rng rng(6);
    std::vector<double> actual;
    std::vector<double> predicted;
    for (int i = 0; i < 2000; ++i) {
        const double a = rng.uniform(0.0, 2.0);
        actual.push_back(a);
        predicted.push_back(a + rng.normal(0.0, 0.1));
    }
    const auto ci = bootstrapPairedCi(
        predicted, actual,
        [](std::span<const double> p, std::span<const double> a) {
            return pearsonCorrelation(p, a);
        },
        rng, 800);
    EXPECT_GT(ci.lower, 0.97);
    EXPECT_LE(ci.upper, 1.0 + 1e-12);
    EXPECT_LT(ci.width(), 0.02);
}

TEST(BootstrapPairedTest, PairingIsPreserved)
{
    // Statistic sensitive to pairing: MAE of a perfect predictor is
    // 0 in every resample only if pairs stay together.
    Rng rng(8);
    std::vector<double> actual;
    for (int i = 0; i < 500; ++i)
        actual.push_back(rng.uniform(0.0, 10.0));
    const auto ci = bootstrapPairedCi(
        actual, actual,
        [](std::span<const double> p, std::span<const double> a) {
            return meanAbsoluteError(p, a);
        },
        rng, 300);
    EXPECT_DOUBLE_EQ(ci.lower, 0.0);
    EXPECT_DOUBLE_EQ(ci.upper, 0.0);
}

TEST(BootstrapDeathTest, InvalidArguments)
{
    Rng rng(9);
    const std::vector<double> xs = {1.0, 2.0};
    EXPECT_DEATH(bootstrapCi({}, meanStat, rng), "empty");
    EXPECT_DEATH(bootstrapCi(xs, meanStat, rng, 5), "replicates");
    EXPECT_DEATH(bootstrapCi(xs, meanStat, rng, 100, 1.5),
                 "confidence");
}

} // namespace
} // namespace wct
