/**
 * @file
 * Tests for the Jacobi eigensolver and PCA.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/pca.hh"
#include "util/rng.hh"

namespace wct
{
namespace
{

TEST(JacobiTest, DiagonalMatrix)
{
    // Eigenvalues of a diagonal matrix are its entries (sorted).
    const std::vector<double> m = {3.0, 0.0, 0.0,
                                   0.0, 7.0, 0.0,
                                   0.0, 0.0, 1.0};
    std::vector<double> values;
    std::vector<std::vector<double>> vectors;
    jacobiEigenSymmetric(m, 3, values, vectors);
    ASSERT_EQ(values.size(), 3u);
    EXPECT_NEAR(values[0], 7.0, 1e-12);
    EXPECT_NEAR(values[1], 3.0, 1e-12);
    EXPECT_NEAR(values[2], 1.0, 1e-12);
    // Leading eigenvector is e2.
    EXPECT_NEAR(std::fabs(vectors[0][1]), 1.0, 1e-10);
}

TEST(JacobiTest, KnownTwoByTwo)
{
    // [[2, 1], [1, 2]] has eigenvalues 3 and 1 with vectors
    // (1,1)/sqrt(2) and (1,-1)/sqrt(2).
    const std::vector<double> m = {2.0, 1.0, 1.0, 2.0};
    std::vector<double> values;
    std::vector<std::vector<double>> vectors;
    jacobiEigenSymmetric(m, 2, values, vectors);
    EXPECT_NEAR(values[0], 3.0, 1e-12);
    EXPECT_NEAR(values[1], 1.0, 1e-12);
    EXPECT_NEAR(std::fabs(vectors[0][0]), 1.0 / std::sqrt(2.0),
                1e-10);
    EXPECT_NEAR(std::fabs(vectors[0][1]), 1.0 / std::sqrt(2.0),
                1e-10);
}

TEST(JacobiTest, EigenEquationHolds)
{
    // Random symmetric matrix: check A v = lambda v for each pair.
    Rng rng(3);
    constexpr std::size_t n = 6;
    std::vector<double> m(n * n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i; j < n; ++j) {
            const double x = rng.normal();
            m[i * n + j] = x;
            m[j * n + i] = x;
        }
    std::vector<double> values;
    std::vector<std::vector<double>> vectors;
    jacobiEigenSymmetric(m, n, values, vectors);
    for (std::size_t e = 0; e < n; ++e) {
        for (std::size_t i = 0; i < n; ++i) {
            double av = 0.0;
            for (std::size_t j = 0; j < n; ++j)
                av += m[i * n + j] * vectors[e][j];
            EXPECT_NEAR(av, values[e] * vectors[e][i], 1e-9)
                << "pair " << e << " row " << i;
        }
        // Unit norm.
        double norm = 0.0;
        for (double x : vectors[e])
            norm += x * x;
        EXPECT_NEAR(norm, 1.0, 1e-10);
    }
    // Eigenvalues descending, trace preserved.
    double trace = 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        trace += m[i * n + i];
        sum += values[i];
        if (i > 0)
            EXPECT_GE(values[i - 1], values[i] - 1e-12);
    }
    EXPECT_NEAR(trace, sum, 1e-9);
}

/** Data concentrated along a planted direction. */
Dataset
plantedData(std::size_t n, std::uint64_t seed)
{
    Dataset d({"a", "b", "c"});
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
        // Strong variance along (1, 2, 0), weak elsewhere.
        const double t = rng.normal(0.0, 3.0);
        d.addRow({t + rng.normal(0.0, 0.1),
                  2.0 * t + rng.normal(0.0, 0.1),
                  rng.normal(0.0, 0.1)});
    }
    return d;
}

TEST(PcaTest, FindsPlantedDirection)
{
    const Dataset d = plantedData(3000, 4);
    const PcaResult pca = computePca(d, {}, /*standardize=*/false);
    ASSERT_EQ(pca.dimension(), 3u);
    // Leading component aligns with (1, 2, 0)/sqrt(5).
    const auto &pc1 = pca.components[0];
    const double sign = pc1[0] >= 0.0 ? 1.0 : -1.0;
    EXPECT_NEAR(sign * pc1[0], 1.0 / std::sqrt(5.0), 0.01);
    EXPECT_NEAR(sign * pc1[1], 2.0 / std::sqrt(5.0), 0.01);
    EXPECT_NEAR(std::fabs(pc1[2]), 0.0, 0.02);
    EXPECT_GT(pca.varianceExplained(1), 0.99);
}

TEST(PcaTest, VarianceExplainedMonotone)
{
    const Dataset d = plantedData(1000, 5);
    const PcaResult pca = computePca(d);
    double prev = 0.0;
    for (std::size_t k = 1; k <= pca.dimension(); ++k) {
        const double v = pca.varianceExplained(k);
        EXPECT_GE(v, prev);
        prev = v;
    }
    EXPECT_NEAR(prev, 1.0, 1e-9);
    EXPECT_EQ(pca.componentsForVariance(prev), pca.dimension());
}

TEST(PcaTest, StandardizationEqualisesScales)
{
    // Two independent variables with wildly different scales; with
    // standardisation each PC explains ~half the variance.
    Dataset d({"big", "small"});
    Rng rng(6);
    for (int i = 0; i < 4000; ++i)
        d.addRow({rng.normal(0.0, 1000.0), rng.normal(0.0, 0.001)});
    const PcaResult raw = computePca(d, {}, false);
    EXPECT_GT(raw.varianceExplained(1), 0.999);
    const PcaResult standardized = computePca(d, {}, true);
    EXPECT_NEAR(standardized.varianceExplained(1), 0.5, 0.05);
}

TEST(PcaTest, ExcludeColumns)
{
    const Dataset d = plantedData(500, 7);
    const PcaResult pca = computePca(d, {"c"});
    EXPECT_EQ(pca.dimension(), 2u);
    EXPECT_EQ(pca.columns,
              (std::vector<std::string>{"a", "b"}));
}

TEST(PcaTest, TransformShapeAndCentering)
{
    const Dataset d = plantedData(2000, 8);
    const PcaResult pca = computePca(d);
    const Dataset scores = pca.transform(d, 2);
    EXPECT_EQ(scores.numRows(), d.numRows());
    EXPECT_EQ(scores.columnNames(),
              (std::vector<std::string>{"PC1", "PC2"}));
    // Scores are centred.
    EXPECT_NEAR(scores.summarize(0).mean, 0.0, 1e-9);
    EXPECT_NEAR(scores.summarize(1).mean, 0.0, 1e-9);
    // PC1 variance >= PC2 variance.
    EXPECT_GE(scores.summarize(0).stddev,
              scores.summarize(1).stddev);
}

TEST(PcaTest, ScoresAreUncorrelated)
{
    const Dataset d = plantedData(3000, 9);
    const PcaResult pca = computePca(d);
    const Dataset scores = pca.transform(d, 3);
    const auto pc1 = scores.column(0);
    const auto pc2 = scores.column(1);
    double dot = 0.0;
    for (std::size_t i = 0; i < pc1.size(); ++i)
        dot += pc1[i] * pc2[i];
    const double corr = dot /
        (scores.summarize(0).stddev * scores.summarize(1).stddev *
         static_cast<double>(pc1.size()));
    EXPECT_NEAR(corr, 0.0, 0.02);
}

TEST(PcaTest, ConstantColumnHandled)
{
    Dataset d({"x", "k"});
    Rng rng(10);
    for (int i = 0; i < 200; ++i)
        d.addRow({rng.normal(), 5.0});
    const PcaResult pca = computePca(d);
    // One informative dimension.
    EXPECT_NEAR(pca.varianceExplained(1), 1.0, 1e-9);
    EXPECT_NEAR(pca.eigenvalues[1], 0.0, 1e-9);
}

TEST(PcaDeathTest, TooFewRows)
{
    Dataset d({"x"});
    d.addRow({1.0});
    EXPECT_EXIT(computePca(d), ::testing::ExitedWithCode(1),
                "at least two rows");
}

} // namespace
} // namespace wct
