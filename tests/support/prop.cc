#include "tests/support/prop.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace wct
{
namespace prop
{

namespace
{

/** Parse a decimal or 0x-hex environment variable. */
std::optional<std::uint64_t>
envUint(const char *name)
{
    const char *text = std::getenv(name);
    if (text == nullptr || *text == '\0')
        return std::nullopt;
    char *end = nullptr;
    const std::uint64_t value = std::strtoull(text, &end, 0);
    if (end == text || *end != '\0')
        return std::nullopt;
    return value;
}

} // namespace

Config
Config::fromEnv(std::uint64_t default_seed, std::size_t default_trials)
{
    Config config;
    config.seed = default_seed;
    config.trials = default_trials;
    if (const auto trials = envUint("WCT_PROP_TRIALS"))
        config.trials = static_cast<std::size_t>(*trials);
    if (const auto seed = envUint("WCT_PROP_SEED"))
        config.seed = *seed;
    return config;
}

std::string
CheckResult::describe(const Config &config) const
{
    if (ok)
        return "property held";
    std::ostringstream out;
    out << "property failed on trial " << failingTrial << " of "
        << config.trials << " (rerun with WCT_PROP_SEED=0x" << std::hex
        << config.seed << std::dec << ")\n  " << message
        << "\n  counterexample (after " << shrinkSteps
        << " shrink steps): " << counterexample;
    return out.str();
}

std::string
showDouble(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
    return buffer;
}

std::string
showVector(const std::vector<double> &values)
{
    std::string out = "[" + std::to_string(values.size()) + "]{";
    const std::size_t shown = std::min<std::size_t>(values.size(), 32);
    for (std::size_t i = 0; i < shown; ++i) {
        if (i > 0)
            out += ", ";
        out += showDouble(values[i]);
    }
    if (shown < values.size())
        out += ", ...";
    return out + "}";
}

std::string
showDataset(const Dataset &data)
{
    std::string out = "Dataset " + std::to_string(data.numRows()) +
        " x " + std::to_string(data.numColumns()) + " (";
    for (std::size_t c = 0; c < data.numColumns(); ++c) {
        if (c > 0)
            out += ",";
        out += data.columnNames()[c];
    }
    out += ")\n";
    const std::size_t shown = std::min<std::size_t>(data.numRows(), 10);
    for (std::size_t r = 0; r < shown; ++r) {
        out += "    ";
        const auto row = data.row(r);
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c > 0)
                out += ", ";
            out += showDouble(row[c]);
        }
        out += "\n";
    }
    if (shown < data.numRows())
        out += "    ... " + std::to_string(data.numRows() - shown) +
            " more rows\n";
    return out;
}

Gen<double>
uniformDouble(double lo, double hi)
{
    Gen<double> gen;
    gen.generate = [lo, hi](Rng &rng) { return rng.uniform(lo, hi); };
    gen.shrink = [lo](const double &value) {
        std::vector<double> candidates;
        const double anchor = (lo <= 0.0) ? 0.0 : lo;
        if (value != anchor) {
            candidates.push_back(anchor);
            candidates.push_back(anchor + (value - anchor) / 2.0);
        }
        return candidates;
    };
    gen.show = [](const double &value) { return showDouble(value); };
    return gen;
}

Gen<double>
interestingDouble(double scale)
{
    Gen<double> gen;
    gen.generate = [scale](Rng &rng) -> double {
        switch (rng.uniformInt(8)) {
        case 0:
            return 0.0;
        case 1:
            return rng.bernoulli(0.5) ? 1.0 : -1.0;
        case 2:
            return rng.uniform(-1e-9, 1e-9); // cancellation fodder
        case 3:
            return rng.uniform(-scale, scale);
        default:
            return rng.uniform(-8.0, 8.0);
        }
    };
    gen.shrink = [](const double &value) {
        std::vector<double> candidates;
        if (value != 0.0) {
            candidates.push_back(0.0);
            candidates.push_back(value / 2.0);
            candidates.push_back(std::trunc(value));
        }
        // Deduplicate while keeping order.
        std::vector<double> unique;
        for (double c : candidates) {
            if (c != value &&
                std::find(unique.begin(), unique.end(), c) ==
                    unique.end())
                unique.push_back(c);
        }
        return unique;
    };
    gen.show = [](const double &value) { return showDouble(value); };
    return gen;
}

Gen<std::vector<double>>
vectorOf(const Gen<double> &element, std::size_t min_n,
         std::size_t max_n)
{
    Gen<std::vector<double>> gen;
    gen.generate = [element, min_n, max_n](Rng &rng) {
        const std::size_t n =
            min_n + rng.uniformInt(max_n - min_n + 1);
        std::vector<double> values;
        values.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            values.push_back(element.generate(rng));
        return values;
    };
    gen.shrink = [element,
                  min_n](const std::vector<double> &values) {
        std::vector<std::vector<double>> candidates;
        const std::size_t n = values.size();
        // Remove the front/back half, then single elements.
        if (n / 2 >= min_n && n >= 2) {
            candidates.emplace_back(values.begin() + n / 2,
                                    values.end());
            candidates.emplace_back(values.begin(),
                                    values.begin() + (n + 1) / 2);
        }
        if (n > min_n && n <= 24) {
            for (std::size_t i = 0; i < n; ++i) {
                std::vector<double> fewer = values;
                fewer.erase(fewer.begin() +
                            static_cast<std::ptrdiff_t>(i));
                candidates.push_back(std::move(fewer));
            }
        }
        // Shrink individual elements (first candidate each).
        if (element.shrink && n <= 24) {
            for (std::size_t i = 0; i < n; ++i) {
                const auto elem_candidates =
                    element.shrink(values[i]);
                if (!elem_candidates.empty()) {
                    std::vector<double> simpler = values;
                    simpler[i] = elem_candidates.front();
                    candidates.push_back(std::move(simpler));
                }
            }
        }
        return candidates;
    };
    gen.show = [](const std::vector<double> &values) {
        return showVector(values);
    };
    return gen;
}

Gen<std::vector<double>>
eventRateVector(std::size_t dim)
{
    Gen<std::vector<double>> gen;
    gen.generate = [dim](Rng &rng) {
        std::vector<double> rates(dim, 0.0);
        for (std::size_t i = 0; i < dim; ++i) {
            if (rng.bernoulli(0.4))
                continue; // silent event
            if (rng.bernoulli(0.1)) {
                rates[i] = rng.uniform(0.9, 1.0); // pathological spike
            } else {
                // Typical per-instruction densities are small.
                rates[i] = rng.exponential(25.0);
                rates[i] = std::min(rates[i], 1.0);
            }
        }
        return rates;
    };
    gen.shrink = [](const std::vector<double> &rates) {
        std::vector<std::vector<double>> candidates;
        for (std::size_t i = 0; i < rates.size(); ++i) {
            if (rates[i] != 0.0) {
                std::vector<double> quieter = rates;
                quieter[i] = 0.0;
                candidates.push_back(std::move(quieter));
            }
        }
        return candidates;
    };
    gen.show = [](const std::vector<double> &rates) {
        return showVector(rates);
    };
    return gen;
}

Gen<std::vector<double>>
leafDistribution(std::size_t k)
{
    Gen<std::vector<double>> gen;
    gen.generate = [k](Rng &rng) {
        std::vector<double> percent(k, 0.0);
        // A few dominant leaves, like real Table II rows.
        const std::size_t active =
            1 + rng.uniformInt(std::min<std::size_t>(k, 5));
        double total = 0.0;
        for (std::size_t i = 0; i < active; ++i) {
            const std::size_t leaf = rng.uniformInt(k);
            percent[leaf] += rng.uniform(0.05, 1.0);
        }
        for (double p : percent)
            total += p;
        for (double &p : percent)
            p *= 100.0 / total;
        return percent;
    };
    gen.shrink = [](const std::vector<double> &percent) {
        std::vector<std::vector<double>> candidates;
        // The simplest valid profile: all mass on the first leaf.
        std::vector<double> point(percent.size(), 0.0);
        point[0] = 100.0;
        if (percent != point)
            candidates.push_back(std::move(point));
        return candidates;
    };
    gen.show = [](const std::vector<double> &percent) {
        return showVector(percent);
    };
    return gen;
}

Gen<Dataset>
datasets(const DatasetGenConfig &config)
{
    Gen<Dataset> gen;
    gen.generate = [config](Rng &rng) {
        const std::size_t p = config.minPredictors +
            rng.uniformInt(config.maxPredictors -
                           config.minPredictors + 1);
        const std::size_t n = config.minRows +
            rng.uniformInt(config.maxRows - config.minRows + 1);

        std::vector<std::string> names;
        for (std::size_t c = 0; c < p; ++c)
            names.push_back("x" + std::to_string(c));
        names.push_back("y");
        Dataset data(names);

        // Planted structure: a split on one predictor with distinct
        // linear models per side, so trees have something to find.
        const std::size_t split_attr = rng.uniformInt(p);
        const double split_at = rng.uniform(config.lo, config.hi);
        std::vector<double> coef_left(p);
        std::vector<double> coef_right(p);
        for (std::size_t c = 0; c < p; ++c) {
            coef_left[c] = rng.uniform(-2.0, 2.0);
            coef_right[c] = rng.uniform(-2.0, 2.0);
        }
        const double bias_left = rng.uniform(-4.0, 4.0);
        const double bias_right = rng.uniform(-4.0, 4.0);

        std::vector<double> row(p + 1);
        for (std::size_t r = 0; r < n; ++r) {
            for (std::size_t c = 0; c < p; ++c)
                row[c] = rng.uniform(config.lo, config.hi);
            double y;
            if (config.plantedStructure) {
                const bool left = row[split_attr] <= split_at;
                const auto &coef = left ? coef_left : coef_right;
                y = left ? bias_left : bias_right;
                for (std::size_t c = 0; c < p; ++c)
                    y += coef[c] * row[c];
            } else {
                y = rng.uniform(config.lo, config.hi);
            }
            if (config.noise > 0.0)
                y += rng.normal(0.0, config.noise);
            row[p] = y;
            data.addRow(row);
        }
        return data;
    };
    gen.shrink = [](const Dataset &data) {
        std::vector<Dataset> candidates;
        const std::size_t n = data.numRows();
        const std::size_t p = data.numColumns() - 1;
        // Halve the rows (front and back halves).
        if (n >= 4) {
            std::vector<std::size_t> front;
            std::vector<std::size_t> back;
            for (std::size_t r = 0; r < n; ++r)
                (r < n / 2 ? front : back).push_back(r);
            candidates.push_back(data.selectRows(front));
            candidates.push_back(data.selectRows(back));
        }
        // Drop single rows once small.
        if (n > 2 && n <= 16) {
            for (std::size_t skip = 0; skip < n; ++skip) {
                std::vector<std::size_t> kept;
                for (std::size_t r = 0; r < n; ++r)
                    if (r != skip)
                        kept.push_back(r);
                candidates.push_back(data.selectRows(kept));
            }
        }
        // Drop a predictor column (keep at least one + target).
        if (p > 1) {
            for (std::size_t skip = 0; skip < p; ++skip) {
                std::vector<std::string> kept;
                for (std::size_t c = 0; c < data.numColumns(); ++c)
                    if (c != skip)
                        kept.push_back(data.columnNames()[c]);
                candidates.push_back(data.selectColumns(kept));
            }
        }
        return candidates;
    };
    gen.show = [](const Dataset &data) { return showDataset(data); };
    return gen;
}

Gen<PhaseProfile>
phaseProfiles()
{
    Gen<PhaseProfile> gen;
    gen.generate = [](Rng &rng) {
        PhaseProfile phase;
        phase.name = "gen-phase";
        phase.weight = rng.uniform(0.1, 4.0);

        // Draw a mix that always sums below one: partition a random
        // budget across the instruction classes.
        const double budget = rng.uniform(0.2, 0.9);
        double remaining = budget;
        auto take = [&](double max_share) {
            const double share =
                rng.uniform(0.0, std::min(max_share, remaining));
            remaining -= share;
            return share;
        };
        phase.loadFrac = take(0.45);
        phase.storeFrac = take(0.25);
        phase.branchFrac = take(0.3);
        phase.mulFrac = take(0.1);
        phase.divFrac = take(0.05);
        phase.simdFrac = take(0.4);

        phase.dataFootprint = std::uint64_t(1)
            << (12 + rng.uniformInt(14)); // 4 KB .. 32 MB
        phase.hotBytes = std::max<std::uint64_t>(
            64, phase.dataFootprint >> rng.uniformInt(8));
        phase.hotFrac = rng.uniform(0.0, 1.0);
        phase.streamFrac = rng.uniform(0.0, 1.0);
        phase.pointerChaseFrac = rng.uniform(0.0, 0.6);
        phase.accessSize = rng.bernoulli(0.2) ? 16 : 8;
        phase.misalignFrac = rng.uniform(0.0, 0.3);
        phase.splitFrac = rng.uniform(0.0, 0.2);
        phase.aliasFrac = rng.uniform(0.0, 0.3);
        phase.overlapFrac = rng.uniform(0.0, 0.3);
        phase.slowStoreAddrFrac = rng.uniform(0.0, 0.3);
        phase.slowStoreDataFrac = rng.uniform(0.0, 0.3);
        phase.branchEntropy = rng.uniform(0.0, 1.0);
        phase.takenBias = rng.uniform(0.0, 1.0);
        phase.codeFootprint = std::uint64_t(1)
            << (10 + rng.uniformInt(8)); // 1 KB .. 128 KB
        phase.hotCodeBytes = std::max<std::uint64_t>(
            64, phase.codeFootprint >> rng.uniformInt(4));
        phase.hotCodeFrac = rng.uniform(0.5, 1.0);
        phase.fpAssistFrac = rng.uniform(0.0, 0.01);
        return phase;
    };
    gen.show = [](const PhaseProfile &phase) {
        std::ostringstream out;
        out << "PhaseProfile{load=" << phase.loadFrac
            << " store=" << phase.storeFrac
            << " branch=" << phase.branchFrac
            << " simd=" << phase.simdFrac
            << " footprint=" << phase.dataFootprint
            << " hot=" << phase.hotBytes << "/" << phase.hotFrac
            << " chase=" << phase.pointerChaseFrac
            << " entropy=" << phase.branchEntropy << "}";
        return out.str();
    };
    return gen;
}

Gen<BenchmarkProfile>
benchmarkProfiles()
{
    const Gen<PhaseProfile> phase_gen = phaseProfiles();
    Gen<BenchmarkProfile> gen;
    gen.generate = [phase_gen](Rng &rng) {
        BenchmarkProfile bench;
        bench.name = "000.generated";
        bench.language = "synthetic";
        bench.integer = rng.bernoulli(0.5);
        bench.instructionWeight = rng.uniform(0.2, 3.0);
        bench.phaseRunLength = 5000 + rng.uniformInt(30000);
        const std::size_t phases = 1 + rng.uniformInt(3);
        for (std::size_t i = 0; i < phases; ++i) {
            PhaseProfile phase = phase_gen.generate(rng);
            phase.name = "phase" + std::to_string(i);
            bench.phases.push_back(std::move(phase));
        }
        return bench;
    };
    gen.shrink = [](const BenchmarkProfile &bench) {
        std::vector<BenchmarkProfile> candidates;
        if (bench.phases.size() > 1) {
            for (std::size_t skip = 0; skip < bench.phases.size();
                 ++skip) {
                BenchmarkProfile fewer = bench;
                fewer.phases.erase(
                    fewer.phases.begin() +
                    static_cast<std::ptrdiff_t>(skip));
                candidates.push_back(std::move(fewer));
            }
        }
        return candidates;
    };
    gen.show = [phase_gen](const BenchmarkProfile &bench) {
        std::string out = bench.name + " (" +
            std::to_string(bench.phases.size()) + " phases)";
        for (const PhaseProfile &phase : bench.phases)
            out += "\n    " + phase_gen.show(phase);
        return out;
    };
    return gen;
}

} // namespace prop
} // namespace wct
