#include "tests/support/oracles.hh"

#include <algorithm>
#include <cmath>
#include <limits>

namespace wct
{
namespace oracle
{

namespace
{

/** Population standard deviation by direct two-pass computation. */
double
populationSd(std::span<const SplitObservation> side)
{
    if (side.empty())
        return 0.0;
    double sum = 0.0;
    for (const SplitObservation &obs : side)
        sum += obs.target;
    const double mean = sum / static_cast<double>(side.size());
    double ss = 0.0;
    for (const SplitObservation &obs : side)
        ss += (obs.target - mean) * (obs.target - mean);
    return std::sqrt(ss / static_cast<double>(side.size()));
}

} // namespace

SplitCandidate
bestSdrSplitExhaustive(std::vector<SplitObservation> observations,
                       double node_sd, std::size_t min_leaf)
{
    SplitCandidate best;
    const std::size_t n = observations.size();
    if (n < 2)
        return best;
    std::sort(observations.begin(), observations.end(),
              [](const SplitObservation &a, const SplitObservation &b) {
                  return a.value < b.value;
              });

    double best_sdr = -1.0;
    const double fn = static_cast<double>(n);
    for (std::size_t i = 0; i + 1 < n; ++i) {
        if (observations[i].value == observations[i + 1].value)
            continue;
        const std::size_t nl = i + 1;
        const std::size_t nr = n - nl;
        if (nl < min_leaf || nr < min_leaf)
            continue;
        const std::span<const SplitObservation> all(observations);
        const double sd_left = populationSd(all.subspan(0, nl));
        const double sd_right = populationSd(all.subspan(nl));
        const double sdr = node_sd -
            (static_cast<double>(nl) / fn) * sd_left -
            (static_cast<double>(nr) / fn) * sd_right;
        if (sdr > best_sdr) {
            best_sdr = sdr;
            best.valid = true;
            best.sdr = sdr;
            best.leftCount = nl;
            best.value = 0.5 * (observations[i].value +
                                observations[i + 1].value);
        }
    }
    return best;
}

double
meanTwoPass(std::span<const double> xs)
{
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
sampleVarianceTwoPass(std::span<const double> xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double mean = meanTwoPass(xs);
    double ss = 0.0;
    for (double x : xs)
        ss += (x - mean) * (x - mean);
    return ss / static_cast<double>(xs.size() - 1);
}

std::optional<Ols1Fit>
ols1(std::span<const double> x, std::span<const double> y)
{
    const double mx = meanTwoPass(x);
    const double my = meanTwoPass(y);
    double sxx = 0.0;
    double sxy = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        sxx += (x[i] - mx) * (x[i] - mx);
        sxy += (x[i] - mx) * (y[i] - my);
    }
    if (sxx == 0.0)
        return std::nullopt;
    Ols1Fit fit;
    fit.b1 = sxy / sxx;
    fit.b0 = my - fit.b1 * mx;
    return fit;
}

std::optional<Ols2Fit>
ols2(std::span<const double> x1, std::span<const double> x2,
     std::span<const double> y)
{
    const double m1 = meanTwoPass(x1);
    const double m2 = meanTwoPass(x2);
    const double my = meanTwoPass(y);
    double s11 = 0.0;
    double s22 = 0.0;
    double s12 = 0.0;
    double s1y = 0.0;
    double s2y = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) {
        const double d1 = x1[i] - m1;
        const double d2 = x2[i] - m2;
        const double dy = y[i] - my;
        s11 += d1 * d1;
        s22 += d2 * d2;
        s12 += d1 * d2;
        s1y += d1 * dy;
        s2y += d2 * dy;
    }
    // Cramer's rule on the centered 2x2 normal system; reject when
    // the determinant is tiny relative to its terms (collinear
    // predictors, where the ridge-stabilised solver and any exact
    // method legitimately diverge).
    const double det = s11 * s22 - s12 * s12;
    if (std::fabs(det) <= 1e-10 * std::max(s11 * s22, s12 * s12))
        return std::nullopt;
    Ols2Fit fit;
    fit.b1 = (s1y * s22 - s2y * s12) / det;
    fit.b2 = (s2y * s11 - s1y * s12) / det;
    fit.b0 = my - fit.b1 * m1 - fit.b2 * m2;
    return fit;
}

double
l1ProfileDistance(std::span<const double> a, std::span<const double> b)
{
    double total = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        total += std::fabs(a[i] - b[i]);
    return 0.5 * total;
}

double
studentTTwoSidedPBySimpson(double t, double df)
{
    const double limit = std::fabs(t);
    if (limit == 0.0)
        return 1.0;
    // Density f(x) = C (1 + x²/df)^{-(df+1)/2} with
    // log C = lgamma((df+1)/2) - lgamma(df/2) - log(df·pi)/2.
    const double log_c = std::lgamma((df + 1.0) / 2.0) -
        std::lgamma(df / 2.0) -
        0.5 * std::log(df * 3.14159265358979323846);
    const auto density = [&](double x) {
        return std::exp(log_c -
                        0.5 * (df + 1.0) * std::log1p(x * x / df));
    };
    // Beyond ~60 deviations every double rounds the tail to zero.
    const double upper = std::min(limit, 60.0 * std::sqrt(df));
    const std::size_t panels = 40000; // even
    const double h = upper / static_cast<double>(panels);
    double integral = density(0.0) + density(upper);
    for (std::size_t k = 1; k < panels; ++k)
        integral += density(h * static_cast<double>(k)) *
            (k % 2 == 1 ? 4.0 : 2.0);
    integral *= h / 3.0;
    return std::clamp(1.0 - 2.0 * integral, 0.0, 1.0);
}

WelchResult
welch(std::span<const double> xs, std::span<const double> ys)
{
    const double n1 = static_cast<double>(xs.size());
    const double n2 = static_cast<double>(ys.size());
    const double v1 = sampleVarianceTwoPass(xs) / n1;
    const double v2 = sampleVarianceTwoPass(ys) / n2;

    WelchResult result;
    const double se = std::sqrt(v1 + v2);
    if (se == 0.0) {
        const bool same = meanTwoPass(xs) == meanTwoPass(ys);
        result.statistic =
            same ? 0.0 : std::numeric_limits<double>::infinity();
        result.df = n1 + n2 - 2.0;
        result.pValue = same ? 1.0 : 0.0;
        return result;
    }
    result.statistic = (meanTwoPass(xs) - meanTwoPass(ys)) / se;
    result.df = (v1 + v2) * (v1 + v2) /
        (v1 * v1 / (n1 - 1.0) + v2 * v2 / (n2 - 1.0));
    result.pValue =
        studentTTwoSidedPBySimpson(result.statistic, result.df);
    return result;
}

} // namespace oracle
} // namespace wct
