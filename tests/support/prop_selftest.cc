/**
 * @file
 * Self-tests of the property-based testing framework: the check loop,
 * shrinking, environment configuration, and the validity of the
 * domain generators every other property test relies on.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "tests/support/prop.hh"
#include "workload/profile.hh"

namespace wct
{
namespace
{

using prop::CheckResult;
using prop::Config;
using prop::Gen;

TEST(PropFramework, PassingPropertyRunsAllTrials)
{
    Config config;
    config.trials = 37;
    const CheckResult result = prop::check<double>(
        config, prop::uniformDouble(0.0, 1.0),
        [](const double &) { return std::nullopt; });
    EXPECT_TRUE(result.ok);
    EXPECT_EQ(result.trialsRun, 37u);
}

TEST(PropFramework, ShrinksScalarTowardThreshold)
{
    // Property: value < 10. uniformDouble shrinks by anchoring at 0
    // and halving toward the anchor, so the minimal counterexample
    // must land in [10, 20): halving it once more would satisfy the
    // property.
    Config config;
    config.trials = 50;
    const CheckResult result = prop::check<double>(
        config, prop::uniformDouble(0.0, 100.0),
        [](const double &value) -> std::optional<std::string> {
            if (value < 10.0)
                return std::nullopt;
            return "value >= 10";
        });
    ASSERT_FALSE(result.ok);
    EXPECT_GT(result.shrinkSteps, 0u);
    const double minimal = std::strtod(result.counterexample.c_str(),
                                       nullptr);
    EXPECT_GE(minimal, 10.0);
    EXPECT_LT(minimal, 20.0);
}

TEST(PropFramework, ShrinksVectorToSingleElement)
{
    // Property: no element >= 10. Element removal keeps the property
    // failing as long as one offender remains, so shrinking must end
    // on a single-element vector.
    Config config;
    config.trials = 50;
    const CheckResult result = prop::check<std::vector<double>>(
        config, prop::vectorOf(prop::uniformDouble(0.0, 100.0), 1, 40),
        [](const std::vector<double> &values)
            -> std::optional<std::string> {
            for (double v : values)
                if (v >= 10.0)
                    return "contains an element >= 10";
            return std::nullopt;
        });
    ASSERT_FALSE(result.ok);
    EXPECT_EQ(result.counterexample.substr(0, 4), "[1]{")
        << result.counterexample;
}

TEST(PropFramework, SameSeedReproducesSameCounterexample)
{
    Config config;
    config.trials = 50;
    const auto property =
        [](const double &value) -> std::optional<std::string> {
        if (value < 50.0)
            return std::nullopt;
        return "value >= 50";
    };
    const CheckResult first = prop::check<double>(
        config, prop::uniformDouble(0.0, 100.0), property);
    const CheckResult second = prop::check<double>(
        config, prop::uniformDouble(0.0, 100.0), property);
    ASSERT_FALSE(first.ok);
    EXPECT_EQ(first.failingTrial, second.failingTrial);
    EXPECT_EQ(first.counterexample, second.counterexample);
}

TEST(PropFramework, TrialsDrawFromIndependentStreams)
{
    Config config;
    config.trials = 16;
    std::set<double> seen;
    prop::check<double>(
        config, prop::uniformDouble(0.0, 1.0),
        [&seen](const double &value) -> std::optional<std::string> {
            seen.insert(value);
            return std::nullopt;
        });
    EXPECT_GT(seen.size(), 8u);
}

TEST(PropFramework, ConfigFromEnvOverridesDefaults)
{
    ASSERT_EQ(setenv("WCT_PROP_TRIALS", "7", 1), 0);
    ASSERT_EQ(setenv("WCT_PROP_SEED", "0x123", 1), 0);
    const Config config = Config::fromEnv(42, 100);
    EXPECT_EQ(config.trials, 7u);
    EXPECT_EQ(config.seed, 0x123u);
    unsetenv("WCT_PROP_TRIALS");
    unsetenv("WCT_PROP_SEED");
}

TEST(PropFramework, ConfigFromEnvIgnoresMalformedValues)
{
    ASSERT_EQ(setenv("WCT_PROP_TRIALS", "lots", 1), 0);
    const Config config = Config::fromEnv(42, 100);
    EXPECT_EQ(config.trials, 100u);
    EXPECT_EQ(config.seed, 42u);
    unsetenv("WCT_PROP_TRIALS");
}

TEST(PropFramework, DescribeMentionsReproductionSeed)
{
    Config config;
    config.trials = 10;
    config.seed = 0xabcd;
    const CheckResult result = prop::check<double>(
        config, prop::uniformDouble(0.0, 1.0),
        [](const double &) { return std::optional<std::string>("no"); });
    ASSERT_FALSE(result.ok);
    EXPECT_NE(result.describe(config).find("WCT_PROP_SEED=0xabcd"),
              std::string::npos);
}

// ---- Generator validity: every domain generator must only produce
// values the library accepts, otherwise property failures would blame
// the code under test for generator bugs. ----

TEST(PropGenerators, LeafDistributionsSumToOneHundred)
{
    const Config config = Config::fromEnv(0x1ead, 100);
    const CheckResult result = prop::check<std::vector<double>>(
        config, prop::leafDistribution(12),
        [](const std::vector<double> &percent)
            -> std::optional<std::string> {
            double total = 0.0;
            for (double p : percent) {
                if (p < 0.0)
                    return "negative percentage";
                total += p;
            }
            if (std::abs(total - 100.0) > 1e-9)
                return "total " + prop::showDouble(total);
            return std::nullopt;
        });
    WCT_EXPECT_PROP(result, config);
}

TEST(PropGenerators, EventRatesStayInUnitInterval)
{
    const Config config = Config::fromEnv(0x0e0e, 100);
    const CheckResult result = prop::check<std::vector<double>>(
        config, prop::eventRateVector(20),
        [](const std::vector<double> &rates)
            -> std::optional<std::string> {
            for (double r : rates)
                if (r < 0.0 || r > 1.0)
                    return "rate " + prop::showDouble(r);
            return std::nullopt;
        });
    WCT_EXPECT_PROP(result, config);
}

TEST(PropGenerators, DatasetsMatchConfiguredShape)
{
    prop::DatasetGenConfig shape;
    shape.minRows = 10;
    shape.maxRows = 50;
    shape.minPredictors = 2;
    shape.maxPredictors = 3;
    const Config config = Config::fromEnv(0xda7a, 100);
    const CheckResult result = prop::check<Dataset>(
        config, prop::datasets(shape),
        [&shape](const Dataset &data) -> std::optional<std::string> {
            if (data.numRows() < shape.minRows ||
                data.numRows() > shape.maxRows)
                return "rows " + std::to_string(data.numRows());
            const std::size_t p = data.numColumns() - 1;
            if (p < shape.minPredictors || p > shape.maxPredictors)
                return "predictors " + std::to_string(p);
            if (data.columnNames().back() != "y")
                return "target column is not last";
            return std::nullopt;
        });
    WCT_EXPECT_PROP(result, config);
}

TEST(PropGenerators, BenchmarkProfilesAreValid)
{
    // validateProfile is fatal on violation, so surviving the loop is
    // the assertion.
    const Config config = Config::fromEnv(0xbe7c, 100);
    const CheckResult result = prop::check<BenchmarkProfile>(
        config, prop::benchmarkProfiles(),
        [](const BenchmarkProfile &bench)
            -> std::optional<std::string> {
            validateProfile(bench);
            return std::nullopt;
        });
    WCT_EXPECT_PROP(result, config);
}

} // namespace
} // namespace wct
