/**
 * @file
 * Naive reference oracles for differential testing.
 *
 * Every function here is an intentionally simple, obviously-correct
 * (textbook) implementation of something the library computes with a
 * cleverer algorithm: the prefix-sum SDR split search, the
 * Cholesky/Gram OLS solver, the L1 profile distance, and Welch's
 * t-test with its incomplete-beta p-value. The property tests in
 * tests/prop/ drive both implementations over randomized inputs and
 * require agreement within floating-point tolerance; any divergence
 * is a bug in one of the two (and with this much asymmetry in
 * complexity, almost always in the optimized one).
 *
 * These oracles deliberately avoid the production code paths: no
 * prefix sums, no Gram matrices, no incomplete beta — the p-value
 * comes from direct Simpson integration of the t density using only
 * std::lgamma.
 */

#ifndef WCT_TESTS_SUPPORT_ORACLES_HH
#define WCT_TESTS_SUPPORT_ORACLES_HH

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "mtree/split_search.hh"

namespace wct
{
namespace oracle
{

/**
 * Exhaustive O(n²) SDR split search: sort, then for every admissible
 * boundary recompute both side deviations from scratch with two-pass
 * mean/variance. Mirrors the tie-breaking contract of
 * findBestSdrSplit (strict improvement keeps the lowest boundary).
 */
SplitCandidate bestSdrSplitExhaustive(
    std::vector<SplitObservation> observations, double node_sd,
    std::size_t min_leaf);

/** Two-pass arithmetic mean (undefined on empty input). */
double meanTwoPass(std::span<const double> xs);

/** Two-pass unbiased sample variance; 0 for n < 2. */
double sampleVarianceTwoPass(std::span<const double> xs);

/** Closed-form simple regression y = b0 + b1 x (Cramer's rule). */
struct Ols1Fit
{
    double b0 = 0.0;
    double b1 = 0.0;
};

/** Returns nullopt when x is constant (singular system). */
std::optional<Ols1Fit> ols1(std::span<const double> x,
                            std::span<const double> y);

/** Closed-form two-feature regression y = b0 + b1 x1 + b2 x2. */
struct Ols2Fit
{
    double b0 = 0.0;
    double b1 = 0.0;
    double b2 = 0.0;
};

/** Returns nullopt when the 3x3 normal system is near singular. */
std::optional<Ols2Fit> ols2(std::span<const double> x1,
                            std::span<const double> x2,
                            std::span<const double> y);

/** Brute-force L1 profile distance 0.5 * sum |a_i - b_i|. */
double l1ProfileDistance(std::span<const double> a,
                         std::span<const double> b);

/** Textbook Welch t-test computed with two-pass moments. */
struct WelchResult
{
    double statistic = 0.0;
    double df = 0.0;
    double pValue = 1.0;
};

WelchResult welch(std::span<const double> xs,
                  std::span<const double> ys);

/**
 * Two-sided Student-t p-value by Simpson integration of the density
 * (normalization via std::lgamma) — an implementation sharing no
 * code or algorithm with stats/distributions.
 */
double studentTTwoSidedPBySimpson(double t, double df);

} // namespace oracle
} // namespace wct

#endif // WCT_TESTS_SUPPORT_ORACLES_HH
