/**
 * @file
 * Minimal property-based testing framework for the differential
 * oracle suite (see docs/testing.md).
 *
 * A property is checked over many randomized inputs drawn from a
 * typed generator; on failure the input is greedily shrunk to a
 * small counterexample before reporting. The design is deliberately
 * tiny — a Gen<T> is three std::functions (generate, shrink, show) —
 * so tests can compose domain generators (datasets, PMU event-rate
 * vectors, phase profiles) without a combinator library.
 *
 * Trial counts and the root seed honour the WCT_PROP_TRIALS and
 * WCT_PROP_SEED environment variables, which is how the nightly
 * sanitizer job (ctest -L prop) runs the same binaries at 10-50x the
 * default trial count.
 */

#ifndef WCT_TESTS_SUPPORT_PROP_HH
#define WCT_TESTS_SUPPORT_PROP_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "data/dataset.hh"
#include "util/rng.hh"
#include "workload/profile.hh"

namespace wct
{
namespace prop
{

/** Knobs of one property check. */
struct Config
{
    /** Randomized inputs to try (each drawn from a fresh stream). */
    std::size_t trials = 100;

    /** Root seed; trial t uses the forked stream fork(t). */
    std::uint64_t seed = 0x9e3779b97f4a7c15ull;

    /** Cap on accepted shrink steps before reporting as-is. */
    std::size_t maxShrinkSteps = 200;

    /**
     * Defaults overridden by the environment: WCT_PROP_TRIALS and
     * WCT_PROP_SEED (decimal or 0x-hex). Every property test builds
     * its Config through this so one variable rescales the whole
     * suite.
     */
    static Config fromEnv(std::uint64_t default_seed,
                          std::size_t default_trials = 100);
};

/**
 * A typed generator: produce a value from an Rng, optionally propose
 * strictly simpler variants of a failing value, and render a value
 * for the failure report. shrink and show may be left empty.
 */
template <typename T>
struct Gen
{
    std::function<T(Rng &)> generate;
    std::function<std::vector<T>(const T &)> shrink;
    std::function<std::string(const T &)> show;
};

/** Outcome of a property check, renderable as a gtest message. */
struct CheckResult
{
    bool ok = true;
    std::size_t trialsRun = 0;
    std::size_t failingTrial = 0;
    std::size_t shrinkSteps = 0;
    std::string message;        ///< property's failure description
    std::string counterexample; ///< show() of the minimal input

    /** Multi-line failure report with the reproduction recipe. */
    std::string describe(const Config &config) const;
};

/**
 * Check `property` over `config.trials` generated inputs. The
 * property returns std::nullopt on success or a failure description.
 * On the first failure the input is shrunk: every candidate from
 * gen.shrink is tried in order and the first still-failing candidate
 * becomes the new counterexample, until no candidate fails or the
 * step cap is hit.
 */
template <typename T>
CheckResult
check(const Config &config, const Gen<T> &gen,
      const std::function<std::optional<std::string>(const T &)>
          &property)
{
    CheckResult result;
    Rng root(config.seed);
    for (std::size_t trial = 0; trial < config.trials; ++trial) {
        Rng rng = root.fork(trial);
        T value = gen.generate(rng);
        std::optional<std::string> failure = property(value);
        ++result.trialsRun;
        if (!failure)
            continue;

        result.ok = false;
        result.failingTrial = trial;
        if (gen.shrink) {
            bool improved = true;
            while (improved &&
                   result.shrinkSteps < config.maxShrinkSteps) {
                improved = false;
                for (T &candidate : gen.shrink(value)) {
                    std::optional<std::string> cand_failure =
                        property(candidate);
                    if (cand_failure) {
                        value = std::move(candidate);
                        failure = std::move(cand_failure);
                        ++result.shrinkSteps;
                        improved = true;
                        break;
                    }
                }
            }
        }
        result.message = *failure;
        result.counterexample =
            gen.show ? gen.show(value) : "<no show function>";
        return result;
    }
    return result;
}

// ---- Scalar and vector generators. ----

/** Uniform double in [lo, hi); shrinks toward 0 (or lo). */
Gen<double> uniformDouble(double lo, double hi);

/**
 * Adversarial double mixture: uniform values plus mass on 0, ±1,
 * denormal-adjacent tiny values, and large magnitudes. Always
 * finite. Shrinks toward 0.
 */
Gen<double> interestingDouble(double scale = 1e6);

/** Vector of n in [min_n, max_n] elements; shrinks by removing
 * chunks/elements and by shrinking single elements. */
Gen<std::vector<double>> vectorOf(const Gen<double> &element,
                                  std::size_t min_n,
                                  std::size_t max_n);

// ---- Domain generators. ----

/**
 * PMU event-rate vector of fixed dimension: per-instruction event
 * densities in [0, 1] with zero inflation (most events are silent in
 * most intervals) and occasional pathological spikes near 1. Shrinks
 * by zeroing components.
 */
Gen<std::vector<double>> eventRateVector(std::size_t dim);

/**
 * Leaf-distribution profile: `k` nonnegative percentages summing to
 * 100, usually sparse (a few dominant leaves), matching the rows of
 * the paper's Table II. Shrinks by concentrating all mass on the
 * first component (the simplest valid profile).
 */
Gen<std::vector<double>> leafDistribution(std::size_t k);

/** Knobs for the random-dataset generator. */
struct DatasetGenConfig
{
    std::size_t minRows = 24;
    std::size_t maxRows = 240;
    std::size_t minPredictors = 1;
    std::size_t maxPredictors = 4;
    double lo = -8.0;
    double hi = 8.0;

    /**
     * Target structure: with a planted piecewise-linear target the
     * generated data exercises real tree induction; without it the
     * target is an independent uniform draw (pure noise).
     */
    bool plantedStructure = true;

    /** Gaussian noise sd added to the target. */
    double noise = 0.05;
};

/**
 * Random modeling dataset: predictor columns "x0".."x{p-1}" plus a
 * target column "y" (last). Shrinks by halving the row count, then
 * dropping single rows and predictor columns (never below one
 * predictor or two rows).
 */
Gen<Dataset> datasets(const DatasetGenConfig &config = {});

/**
 * Random *valid* phase profile: every fraction within the ranges
 * validateProfile() enforces, instruction mix summing below one, and
 * consistent footprints, so generated profiles can be fed straight
 * into the workload source and collector.
 */
Gen<PhaseProfile> phaseProfiles();

/**
 * Random single-phase-to-three-phase benchmark profile built from
 * phaseProfiles(); always passes validateProfile(). Shrinks by
 * dropping phases down to one.
 */
Gen<BenchmarkProfile> benchmarkProfiles();

// ---- Show helpers shared by custom generators. ----

/** Exact round-trippable rendering of a double (%.17g). */
std::string showDouble(double value);

/** Rendering of a vector of doubles, capped at 32 elements. */
std::string showVector(const std::vector<double> &values);

/** Schema, dimensions, and the first rows of a dataset. */
std::string showDataset(const Dataset &data);

} // namespace prop
} // namespace wct

/** Assert a property-check result inside a gtest test body. */
#define WCT_EXPECT_PROP(result, config) \
    EXPECT_TRUE((result).ok) << (result).describe(config)

#endif // WCT_TESTS_SUPPORT_PROP_HH
