/**
 * @file
 * End-to-end tests of the `wct` command line interface, driving the
 * whole pipeline through runCli(): collect -> train -> show ->
 * predict -> transfer -> profile -> subset.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "cli/cli.hh"

namespace wct
{
namespace
{

namespace fs = std::filesystem;

/** Temp workspace, removed on destruction. */
struct TempDir
{
    fs::path path;

    explicit TempDir(const std::string &name)
        : path(fs::temp_directory_path() / name)
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }

    ~TempDir() { fs::remove_all(path); }

    std::string
    file(const std::string &name) const
    {
        return (path / name).string();
    }
};

int
run(const std::vector<std::string> &args, std::string *out_text = nullptr,
    std::string *err_text = nullptr)
{
    std::ostringstream out;
    std::ostringstream err;
    const int code = runCli(args, out, err);
    if (out_text != nullptr)
        *out_text = out.str();
    if (err_text != nullptr)
        *err_text = err.str();
    return code;
}

/** Shared pipeline state built once (collection is the slow part). */
struct Pipeline
{
    TempDir dir{"wct_cli_test"};
    std::string data_dir;
    std::string model_path;

    Pipeline()
    {
        data_dir = dir.file("omp");
        model_path = dir.file("omp.mtree");
        // A small-but-real collection of the smaller suite.
        EXPECT_EQ(run({"collect", "--suite", "omp2001", "--out",
                       data_dir, "--intervals", "60",
                       "--interval-length", "2048", "--warmup",
                       "200000"}),
                  0);
        EXPECT_EQ(run({"train", "--data", data_dir, "--out",
                       model_path, "--min-leaf", "20"}),
                  0);
    }
};

const Pipeline &
pipeline()
{
    static const Pipeline p;
    return p;
}

TEST(CliTest, HelpAndUnknownCommand)
{
    std::string err;
    EXPECT_EQ(run({"help"}, nullptr, &err), 0);
    EXPECT_NE(err.find("usage:"), std::string::npos);
    EXPECT_EQ(run({"frobnicate"}, nullptr, &err), 2);
    EXPECT_EQ(run({}, nullptr, &err), 2);
}

TEST(CliTest, SuitesListsBothSuites)
{
    std::string out;
    EXPECT_EQ(run({"suites"}, &out), 0);
    EXPECT_NE(out.find("cpu2006"), std::string::npos);
    EXPECT_NE(out.find("omp2001"), std::string::npos);
    EXPECT_NE(out.find("429.mcf"), std::string::npos);
    EXPECT_NE(out.find("328.fma3d_m"), std::string::npos);
}

TEST(CliTest, CollectWritesOneCsvPerBenchmark)
{
    const auto &p = pipeline();
    std::size_t csvs = 0;
    for (const auto &entry : fs::directory_iterator(p.data_dir))
        csvs += entry.path().extension() == ".csv";
    EXPECT_EQ(csvs, 11u); // the OMP2001 stand-in suite
}

TEST(CliTest, CollectSingleBenchmark)
{
    TempDir dir("wct_cli_single");
    EXPECT_EQ(run({"collect", "--suite", "cpu2006", "--benchmark",
                   "456.hmmer", "--out", dir.file("one"),
                   "--intervals", "10", "--interval-length", "1024",
                   "--warmup", "50000"}),
              0);
    EXPECT_TRUE(fs::exists(dir.file("one") + "/456.hmmer.csv"));
    std::size_t csvs = 0;
    for (const auto &entry : fs::directory_iterator(dir.file("one")))
        csvs += entry.is_regular_file();
    EXPECT_EQ(csvs, 1u);
}

/** Read a whole file as bytes (empty if absent). */
std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

TEST(CliTest, CollectCacheDirWarmRunIsByteIdentical)
{
    TempDir dir("wct_cli_cache");
    const std::vector<std::string> args = {
        "collect",          "--suite",    "cpu2006",
        "--benchmark",      "429.mcf",    "--out",
        dir.file("cold"),   "--intervals", "8",
        "--interval-length", "1024",      "--warmup",
        "50000",            "--cache-dir", dir.file("cache")};

    std::string err;
    EXPECT_EQ(run(args, nullptr, &err), 0);
    EXPECT_NE(err.find("cache updated"), std::string::npos);

    // One .wctart artifact appeared in the cache directory.
    std::size_t cached = 0;
    for (const auto &entry :
         fs::directory_iterator(dir.file("cache")))
        cached += entry.path().extension() == ".wctart";
    EXPECT_EQ(cached, 1u);

    // Warm run: loaded from cache, byte-identical CSV output.
    auto warm = args;
    warm[6] = dir.file("warm");
    EXPECT_EQ(run(warm, nullptr, &err), 0);
    EXPECT_NE(err.find("from cache"), std::string::npos);
    const std::string cold_csv =
        slurp(dir.file("cold") + "/429.mcf.csv");
    EXPECT_FALSE(cold_csv.empty());
    EXPECT_EQ(slurp(dir.file("warm") + "/429.mcf.csv"), cold_csv);
}

TEST(CliTest, CollectNoCacheBypassesTheCache)
{
    TempDir dir("wct_cli_nocache");
    std::string err;
    EXPECT_EQ(run({"collect", "--suite", "cpu2006", "--benchmark",
                   "429.mcf", "--out", dir.file("out"),
                   "--intervals", "8", "--interval-length", "1024",
                   "--warmup", "50000", "--cache-dir",
                   dir.file("cache"), "--no-cache"},
                  nullptr, &err),
              0);
    EXPECT_EQ(err.find("cache"), std::string::npos) << err;
    EXPECT_FALSE(fs::exists(dir.file("cache")));
}

TEST(CliTest, CollectCorruptCacheFileFallsBackGracefully)
{
    TempDir dir("wct_cli_corrupt_cache");
    const std::vector<std::string> args = {
        "collect",          "--suite",    "cpu2006",
        "--benchmark",      "429.mcf",    "--out",
        dir.file("a"),      "--intervals", "8",
        "--interval-length", "1024",      "--warmup",
        "50000",            "--cache-dir", dir.file("cache")};
    std::string err;
    EXPECT_EQ(run(args, nullptr, &err), 0);

    // Truncate the cached file; the warm run must warn, re-collect,
    // and still produce identical CSVs.
    fs::path cached;
    for (const auto &entry :
         fs::directory_iterator(dir.file("cache")))
        if (entry.path().extension() == ".wctart")
            cached = entry.path();
    ASSERT_FALSE(cached.empty());
    const std::string bytes = slurp(cached.string());
    {
        std::ofstream out(cached, std::ios::binary | std::ios::trunc);
        out << bytes.substr(0, bytes.size() / 2);
    }

    auto again = args;
    again[6] = dir.file("b");
    EXPECT_EQ(run(again, nullptr, &err), 0);
    EXPECT_NE(err.find("cache updated"), std::string::npos);
    EXPECT_EQ(slurp(dir.file("b") + "/429.mcf.csv"),
              slurp(dir.file("a") + "/429.mcf.csv"));
}

TEST(CliTest, TransferHeaderNamesModelAndTargetFiles)
{
    const auto &p = pipeline();
    std::string out;
    EXPECT_EQ(run({"transfer", "--model", p.model_path, "--train",
                   p.data_dir, "--target", p.data_dir},
                  &out),
              0);
    // Names derive from the file stem and directory name, not the
    // old hardcoded "target" placeholder.
    EXPECT_NE(out.find("transferability of omp -> omp"),
              std::string::npos)
        << out;
}

TEST(CliTest, TrainReportsAndSavesModel)
{
    const auto &p = pipeline();
    EXPECT_TRUE(fs::exists(p.model_path));
    std::ifstream in(p.model_path);
    std::string magic;
    std::getline(in, magic);
    EXPECT_EQ(magic, "wct-model-tree v1");
}

TEST(CliTest, ShowPrintsTreeAndDot)
{
    const auto &p = pipeline();
    std::string out;
    EXPECT_EQ(run({"show", "--model", p.model_path}, &out), 0);
    EXPECT_NE(out.find("LM1"), std::string::npos);
    EXPECT_NE(out.find("CPI ="), std::string::npos);

    EXPECT_EQ(run({"show", "--model", p.model_path, "--dot"}, &out),
              0);
    EXPECT_EQ(out.find("digraph"), 0u);
}

TEST(CliTest, PredictWritesAugmentedCsv)
{
    const auto &p = pipeline();
    const std::string out_csv =
        p.dir.file("predictions.csv");
    std::string out;
    EXPECT_EQ(run({"predict", "--model", p.model_path, "--data",
                   p.data_dir + "/330.art_m.csv", "--out", out_csv},
                  &out),
              0);
    std::ifstream in(out_csv);
    std::string header;
    std::getline(in, header);
    EXPECT_NE(header.find("PredictedCPI"), std::string::npos);
    EXPECT_NE(header.find("LeafModel"), std::string::npos);
}

TEST(CliTest, TransferSameDataIsTransferable)
{
    const auto &p = pipeline();
    std::string out;
    EXPECT_EQ(run({"transfer", "--model", p.model_path, "--train",
                   p.data_dir, "--target", p.data_dir},
                  &out),
              0);
    EXPECT_NE(out.find("accuracy:"), std::string::npos);
    EXPECT_NE(out.find("verdicts"), std::string::npos);
    // Identical train and target populations must accept H0.
    EXPECT_NE(out.find("hypothesis tests -> transferable"),
              std::string::npos);
}

TEST(CliTest, ProfileRendersTable)
{
    const auto &p = pipeline();
    std::string out;
    EXPECT_EQ(run({"profile", "--model", p.model_path, "--data",
                   p.data_dir, "--similarity"},
                  &out),
              0);
    EXPECT_NE(out.find("330.art_m"), std::string::npos);
    EXPECT_NE(out.find("Suite"), std::string::npos);
    EXPECT_NE(out.find("Average"), std::string::npos);
}

TEST(CliTest, SubsetSelectorsRun)
{
    const auto &p = pipeline();
    for (const char *method : {"greedy", "medoids", "pca"}) {
        std::string out;
        EXPECT_EQ(run({"subset", "--model", p.model_path, "--data",
                       p.data_dir, "--k", "3", "--method", method},
                      &out),
                  0)
            << method;
        EXPECT_NE(out.find("profile distance"), std::string::npos)
            << method;
    }
}

TEST(CliTest, PhasesRendersTimeline)
{
    const auto &p = pipeline();
    std::string out;
    EXPECT_EQ(run({"phases", "--model", p.model_path, "--data",
                   p.data_dir + "/328.fma3d_m.csv"},
                  &out),
              0);
    EXPECT_NE(out.find("timeline:"), std::string::npos);
    EXPECT_NE(out.find("entropy:"), std::string::npos);

    // Directory form renders every benchmark.
    EXPECT_EQ(run({"phases", "--model", p.model_path, "--data",
                   p.data_dir},
                  &out),
              0);
    EXPECT_NE(out.find("330.art_m"), std::string::npos);
}

/** Scaled-down plan flags keeping `wct run` inside test budgets. */
std::vector<std::string>
runPlanArgs(const std::string &cache_dir)
{
    return {"run",      "omp2001",           "--cache-dir",
            cache_dir,  "--intervals",       "12",
            "--interval-length", "2048",     "--warmup",
            "20000"};
}

TEST(CliTest, RunPlanColdThenWarmIsByteIdenticalAndAllHits)
{
    TempDir dir("wct_cli_run");
    const auto args = runPlanArgs(dir.file("cache"));

    std::string cold_out, cold_err;
    EXPECT_EQ(run(args, &cold_out, &cold_err), 0);
    EXPECT_NE(cold_out.find("SPEC OMP2001"), std::string::npos);
    EXPECT_NE(cold_err.find("cache hits: 0/"), std::string::npos)
        << cold_err;

    std::string warm_out, warm_err;
    EXPECT_EQ(run(args, &warm_out, &warm_err), 0);
    EXPECT_EQ(warm_out, cold_out); // results identical cold vs warm
    // Every stage served from the store on the warm run: the 11
    // omp2001 per-shard collect stages plus train/profile/similarity.
    EXPECT_NE(warm_err.find("cache hits: 14/14"), std::string::npos)
        << warm_err;
}

TEST(CliTest, CacheLsRmGcManageThePlanArtifacts)
{
    TempDir dir("wct_cli_cachecmd");
    const std::string cache_dir = dir.file("cache");
    EXPECT_EQ(run(runPlanArgs(cache_dir)), 0);

    // ls: the 11 per-shard collect artifacts, the three downstream
    // stage artifacts, and the published model tree.
    std::string ls_out;
    EXPECT_EQ(run({"cache", "ls", "--cache-dir", cache_dir},
                  &ls_out),
              0);
    EXPECT_NE(ls_out.find("15 artifacts"), std::string::npos)
        << ls_out;
    EXPECT_NE(ls_out.find("collect-"), std::string::npos);
    EXPECT_NE(ls_out.find("train-"), std::string::npos);
    EXPECT_NE(ls_out.find("mtree-"), std::string::npos);

    // gc at the same protocol: everything is live, nothing removed.
    std::string gc_out;
    EXPECT_EQ(run({"cache", "gc", "--cache-dir", cache_dir,
                   "--intervals", "12", "--interval-length", "2048",
                   "--warmup", "20000"},
                  &gc_out),
              0);
    EXPECT_NE(gc_out.find("0 artifacts removed"), std::string::npos)
        << gc_out;

    // rm: drop the similarity artifact by its listed name; the next
    // run recomputes just that stage (13/14 hits).
    const std::size_t pos = ls_out.find("similarity-");
    ASSERT_NE(pos, std::string::npos) << ls_out;
    const std::string name = ls_out.substr(pos, 11 + 16);
    std::string rm_out;
    EXPECT_EQ(run({"cache", "rm", name, "--cache-dir", cache_dir},
                  &rm_out),
              0);
    EXPECT_NE(rm_out.find("removed " + name), std::string::npos);
    std::string err;
    EXPECT_EQ(run(runPlanArgs(cache_dir), nullptr, &err), 0);
    EXPECT_NE(err.find("cache hits: 13/14"), std::string::npos)
        << err;

    // gc at the *standard* protocol: the scaled artifacts are dead.
    EXPECT_EQ(run({"cache", "gc", "--cache-dir", cache_dir},
                  &gc_out),
              0);
    EXPECT_EQ(gc_out.find("0 artifacts removed"), std::string::npos)
        << gc_out;
    std::size_t left = 0;
    for (const auto &entry : fs::directory_iterator(cache_dir))
        left += entry.path().extension() == ".wctart";
    EXPECT_EQ(left, 0u);
}

TEST(CliDeathTest, UnknownPlanIsFatal)
{
    std::ostringstream out, err;
    EXPECT_EXIT(runCli({"run", "spec95", "--cache-dir", "/tmp/x"},
                       out, err),
                ::testing::ExitedWithCode(1), "unknown plan");
}

TEST(CliDeathTest, UnknownOptionIsFatal)
{
    std::ostringstream out, err;
    EXPECT_EXIT(runCli({"suites", "--frobnicate"}, out, err),
                ::testing::ExitedWithCode(1), "unknown option");
}

TEST(CliDeathTest, MissingRequiredFlagIsFatal)
{
    std::ostringstream out, err;
    EXPECT_EXIT(runCli({"train", "--out", "/tmp/x"}, out, err),
                ::testing::ExitedWithCode(1), "missing required");
}

TEST(CliDeathTest, UnknownSuiteIsFatal)
{
    std::ostringstream out, err;
    EXPECT_EXIT(runCli({"collect", "--suite", "spec95", "--out",
                        "/tmp/x"},
                       out, err),
                ::testing::ExitedWithCode(1), "unknown suite");
}

TEST(CliDeathTest, BadIntegerFlagIsFatal)
{
    std::ostringstream out, err;
    EXPECT_EXIT(runCli({"collect", "--suite", "cpu2006", "--out",
                        "/tmp/x", "--intervals", "abc"},
                       out, err),
                ::testing::ExitedWithCode(1), "expects an integer");
}

} // namespace
} // namespace wct
