/**
 * @file
 * Tests for the interval collector: normalisation, multiplexing
 * estimation against exact counts, and dataset assembly.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "pmu/collector.hh"
#include "util/rng.hh"

namespace wct
{
namespace
{

/** Stochastic mixed-class source with stable rates. */
class MixSource : public InstSource
{
  public:
    explicit MixSource(std::uint64_t seed) : rng_(seed) {}

    Inst
    next() override
    {
        Inst inst;
        inst.pc = 0x400 + (step_++ % 64) * 4;
        const double u = rng_.uniform();
        if (u < 0.25) {
            inst.cls = InstClass::Load;
            inst.addr = 0x100000 + rng_.uniformInt(1 << 14) * 8;
            inst.size = 8;
        } else if (u < 0.35) {
            inst.cls = InstClass::Store;
            inst.addr = 0x200000 + rng_.uniformInt(1 << 14) * 8;
            inst.size = 8;
        } else if (u < 0.50) {
            inst.cls = InstClass::Branch;
            if (rng_.bernoulli(0.6))
                inst.flags = kFlagTaken;
        } else if (u < 0.55) {
            inst.cls = InstClass::Mul;
        } else if (u < 0.57) {
            inst.cls = InstClass::Div;
        } else if (u < 0.70) {
            inst.cls = InstClass::Simd;
        } else {
            inst.cls = InstClass::Alu;
        }
        return inst;
    }

  private:
    Rng rng_;
    std::uint64_t step_ = 0;
};

TEST(CollectorTest, GroupsCoverAllMultiplexedEventsOnce)
{
    CoreModel core{CoreConfig{}};
    CollectorConfig config;
    IntervalCollector collector(core, config);

    std::vector<int> seen(kNumEvents, 0);
    for (const auto &group : collector.groups()) {
        EXPECT_LE(group.size(), config.programmableCounters);
        for (Event e : group)
            ++seen[static_cast<std::size_t>(e)];
    }
    for (std::size_t i = 0; i < kNumEvents; ++i) {
        const bool multiplexed = i >= kFirstMultiplexedEvent;
        EXPECT_EQ(seen[i], multiplexed ? 1 : 0) << "event " << i;
    }
}

TEST(CollectorTest, ExactModeMatchesCoreCounts)
{
    CoreModel core{CoreConfig{}};
    CollectorConfig config;
    config.multiplexed = false;
    config.intervalInstructions = 2000;
    IntervalCollector collector(core, config);
    MixSource src(42);

    const auto row = collector.collectInterval(src);
    const auto names = metricColumnNames();
    ASSERT_EQ(row.size(), names.size());

    // Densities recomputed straight from the core's counters.
    const auto &counts = core.counts();
    const double insts =
        static_cast<double>(countOf(counts, Event::Instructions));
    EXPECT_DOUBLE_EQ(insts, 2000.0);
    for (std::size_t i = 1; i < names.size(); ++i) {
        const Event e = eventFromShortName(names[i]);
        EXPECT_DOUBLE_EQ(
            row[i],
            static_cast<double>(countOf(counts, e)) / insts)
            << names[i];
    }
    EXPECT_NEAR(row[0], core.cpi(), 1e-12);
}

TEST(CollectorTest, DensitiesAreSane)
{
    CoreModel core{CoreConfig{}};
    CollectorConfig config;
    config.multiplexed = false;
    config.intervalInstructions = 5000;
    IntervalCollector collector(core, config);
    MixSource src(43);
    const auto names = metricColumnNames();

    for (int interval = 0; interval < 5; ++interval) {
        const auto row = collector.collectInterval(src);
        EXPECT_GT(row[0], 0.0);    // CPI positive
        EXPECT_LT(row[0], 1000.0); // and bounded
        for (std::size_t i = 1; i < row.size(); ++i) {
            EXPECT_GE(row[i], 0.0) << names[i];
            EXPECT_LE(row[i], 1.0) << names[i]; // per-instruction
        }
    }
}

TEST(CollectorTest, MixRatesRecovered)
{
    CoreModel core{CoreConfig{}};
    CollectorConfig config;
    config.multiplexed = false;
    config.intervalInstructions = 50000;
    IntervalCollector collector(core, config);
    MixSource src(44);
    const auto row = collector.collectInterval(src);
    const auto names = metricColumnNames();
    auto density = [&](const char *name) {
        for (std::size_t i = 0; i < names.size(); ++i)
            if (names[i] == name)
                return row[i];
        ADD_FAILURE() << "no column " << name;
        return 0.0;
    };
    EXPECT_NEAR(density("Load"), 0.25, 0.02);
    EXPECT_NEAR(density("Store"), 0.10, 0.02);
    EXPECT_NEAR(density("Br"), 0.15, 0.02);
    EXPECT_NEAR(density("Mul"), 0.05, 0.01);
    EXPECT_NEAR(density("Div"), 0.02, 0.01);
    EXPECT_NEAR(density("SIMD"), 0.13, 0.02);
}

TEST(CollectorTest, MultiplexedEstimatesTrackExactCounts)
{
    // Run the same deterministic stream through an exact collector
    // and a multiplexed one; averaged over many intervals the
    // multiplexed estimates must converge to the exact densities.
    CollectorConfig exact_config;
    exact_config.multiplexed = false;
    exact_config.intervalInstructions = 4000;
    CollectorConfig mux_config = exact_config;
    mux_config.multiplexed = true;

    CoreModel exact_core{CoreConfig{}};
    CoreModel mux_core{CoreConfig{}};
    IntervalCollector exact_collector(exact_core, exact_config);
    IntervalCollector mux_collector(mux_core, mux_config);
    MixSource exact_src(45);
    MixSource mux_src(45);

    constexpr int intervals = 200;
    const Dataset exact = exact_collector.collect(exact_src, intervals);
    const Dataset mux = mux_collector.collect(mux_src, intervals);

    for (std::size_t c = 0; c < exact.numColumns(); ++c) {
        const auto e = exact.summarize(c);
        const auto m = mux.summarize(c);
        // Within 10% relative or a small absolute floor.
        const double tolerance = std::max(0.1 * e.mean, 2e-4);
        EXPECT_NEAR(m.mean, e.mean, tolerance)
            << exact.columnNames()[c];
    }
}

TEST(CollectorTest, MultiplexingAddsVariance)
{
    // For a steady-rate event the multiplexed estimator is noisier
    // than exact counting.
    CollectorConfig exact_config;
    exact_config.multiplexed = false;
    exact_config.intervalInstructions = 4000;
    CollectorConfig mux_config = exact_config;
    mux_config.multiplexed = true;

    CoreModel exact_core{CoreConfig{}};
    CoreModel mux_core{CoreConfig{}};
    IntervalCollector exact_collector(exact_core, exact_config);
    IntervalCollector mux_collector(mux_core, mux_config);
    MixSource exact_src(46);
    MixSource mux_src(46);

    const Dataset exact = exact_collector.collect(exact_src, 150);
    const Dataset mux = mux_collector.collect(mux_src, 150);

    const auto load_col = exact.columnIndex("Load");
    EXPECT_GT(mux.summarize(load_col).stddev,
              exact.summarize(load_col).stddev);
}

/** Strictly alternating Load/Alu stream: exact 0.5 load density. */
class AlternatingSource : public InstSource
{
  public:
    Inst
    next() override
    {
        Inst inst;
        inst.pc = 0x400 + (step_ % 64) * 4;
        if (step_++ % 2 == 0) {
            inst.cls = InstClass::Load;
            inst.addr = 0x100000 + (step_ % 512) * 8;
            inst.size = 8;
        } else {
            inst.cls = InstClass::Alu;
        }
        return inst;
    }

  private:
    std::uint64_t step_ = 0;
};

TEST(CollectorTest, MultiplexedEstimateIsUnbiased)
{
    // With 2 programmable counters over the 19 multiplexed events
    // there are 10 groups; a 21-instruction interval gives the Load
    // group a 2-instruction sub-window (duty 2/21) holding exactly
    // one load, so the unbiased scaled estimate is 10.5 loads ->
    // density 0.5. Rounding each sub-window's scaled count to an
    // integer (the old per-group cast) would report 10/21 ~ 0.476.
    CoreModel core{CoreConfig{}};
    CollectorConfig config;
    config.intervalInstructions = 21;
    IntervalCollector collector(core, config);
    ASSERT_EQ(collector.groups().size(), 10u);
    ASSERT_EQ(collector.groups()[0][0], Event::Load);

    AlternatingSource src;
    const auto row = collector.collectInterval(src);
    const auto names = metricColumnNames();
    bool found = false;
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (names[i] == "Load") {
            EXPECT_NEAR(row[i], 0.5, 1e-9);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(CollectorTest, InitialRotationOffsetsTheSchedule)
{
    // Two collectors over identical deterministic streams: one
    // starting at rotation 0 and collecting two intervals, one
    // starting at rotation 1 and collecting the second interval
    // only. The second rows must agree: initialRotation = k
    // reproduces the schedule position of the k-th sequential
    // interval, which is what lets shards stitch seamlessly.
    CollectorConfig config;
    config.intervalInstructions = 4096;

    CoreModel full_core{CoreConfig{}};
    IntervalCollector full(full_core, config);
    MixSource full_src(48);
    full.collectInterval(full_src);
    const auto second = full.collectInterval(full_src);

    CollectorConfig offset_config = config;
    offset_config.initialRotation = 1;
    CoreModel offset_core{CoreConfig{}};
    IntervalCollector offset(offset_core, offset_config);
    MixSource offset_src(48);
    // Advance the stream past the first interval without sampling.
    offset_core.run(offset_src, config.intervalInstructions);
    const auto offset_second = offset.collectInterval(offset_src);

    ASSERT_EQ(second.size(), offset_second.size());
    for (std::size_t i = 1; i < second.size(); ++i)
        EXPECT_DOUBLE_EQ(second[i], offset_second[i]) << i;
}

TEST(CollectorTest, CollectBuildsDatasetShape)
{
    CoreModel core{CoreConfig{}};
    CollectorConfig config;
    config.intervalInstructions = 1000;
    IntervalCollector collector(core, config);
    MixSource src(47);
    const Dataset data = collector.collect(src, 25);
    EXPECT_EQ(data.numRows(), 25u);
    EXPECT_EQ(data.columnNames(), metricColumnNames());
}

TEST(CollectorDeathTest, TinyIntervalRejected)
{
    CoreModel core{CoreConfig{}};
    CollectorConfig config;
    config.intervalInstructions = 3; // fewer than sub-windows
    EXPECT_DEATH(IntervalCollector(core, config), "sub-windows");
}

} // namespace
} // namespace wct
