/**
 * @file
 * Tests for the round-robin multiplexing schedule's rotation across
 * intervals: over a full rotation cycle every event is measured in
 * every sub-window position, as on real hardware.
 */

#include <gtest/gtest.h>

#include "pmu/collector.hh"
#include "workload/source.hh"
#include "workload/suites.hh"

namespace wct
{
namespace
{

TEST(RotationTest, EstimatesUnbiasedOverFullCycles)
{
    // A steady-rate workload measured over exactly one full rotation
    // cycle of intervals: per-event mean estimates converge to the
    // exact densities much faster than any single interval.
    const auto &profile =
        suiteByName("cpu2006").benchmark("456.hmmer");

    CoreModel exact_core{CoreConfig{}};
    CoreModel mux_core{CoreConfig{}};
    CollectorConfig exact_config;
    exact_config.multiplexed = false;
    exact_config.intervalInstructions = 4096;
    CollectorConfig mux_config = exact_config;
    mux_config.multiplexed = true;

    IntervalCollector exact(exact_core, exact_config);
    IntervalCollector mux(mux_core, mux_config);
    const std::size_t cycle = mux.groups().size();

    WorkloadSource exact_src(profile, 7);
    WorkloadSource mux_src(profile, 7);
    exact_core.run(exact_src, 500000);
    mux_core.run(mux_src, 500000);

    const Dataset e = exact.collect(exact_src, 20 * cycle);
    const Dataset m = mux.collect(mux_src, 20 * cycle);
    for (std::size_t c = 0; c < e.numColumns(); ++c) {
        const double em = e.summarize(c).mean;
        const double mm = m.summarize(c).mean;
        EXPECT_NEAR(mm, em, std::max(0.15 * em, 5e-4))
            << e.columnNames()[c];
    }
}

TEST(RotationTest, ScheduleAdvancesBetweenIntervals)
{
    // With rotation, the same event is measured in different
    // sub-window positions on consecutive intervals; for a workload
    // with a strong position-dependent pattern this shows up as
    // interval-to-interval variation. Here we check the mechanism
    // directly: collecting groups().size() intervals and accumulating
    // per-interval estimates of a steady event must not be identical
    // across all intervals (they would be under a frozen schedule
    // only by coincidence).
    const auto &profile =
        suiteByName("cpu2006").benchmark("462.libquantum");
    CoreModel core{CoreConfig{}};
    CollectorConfig config;
    config.intervalInstructions = 2048;
    IntervalCollector collector(core, config);
    WorkloadSource src(profile, 9);
    core.run(src, 200000);

    const Dataset d =
        collector.collect(src, collector.groups().size());
    const auto load = d.column("Load");
    bool varies = false;
    for (std::size_t i = 1; i < load.size(); ++i)
        varies |= load[i] != load[0];
    EXPECT_TRUE(varies);
}

TEST(RotationTest, GroupCountMatchesCounterBudget)
{
    CoreModel core{CoreConfig{}};
    for (std::uint32_t counters : {1u, 2u, 4u}) {
        CollectorConfig config;
        config.programmableCounters = counters;
        IntervalCollector collector(core, config);
        const std::size_t events =
            kNumEvents - kFirstMultiplexedEvent;
        const std::size_t expected =
            (events + counters - 1) / counters;
        EXPECT_EQ(collector.groups().size(), expected)
            << counters << " counters";
    }
}

} // namespace
} // namespace wct
