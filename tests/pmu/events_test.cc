/**
 * @file
 * Unit tests for the Table I event taxonomy.
 */

#include <gtest/gtest.h>

#include <set>

#include "pmu/events.hh"

namespace wct
{
namespace
{

TEST(EventsTest, TableIsCompleteAndOrdered)
{
    const auto &table = eventTable();
    ASSERT_EQ(table.size(), kNumEvents);
    for (std::size_t i = 0; i < table.size(); ++i)
        EXPECT_EQ(static_cast<std::size_t>(table[i].event), i);
}

TEST(EventsTest, ExactlyThreeDedicatedCounters)
{
    int dedicated = 0;
    for (const auto &info : eventTable())
        dedicated += info.dedicated;
    EXPECT_EQ(dedicated, 3);
    EXPECT_TRUE(eventInfo(Event::Cycles).dedicated);
    EXPECT_TRUE(eventInfo(Event::Instructions).dedicated);
    EXPECT_TRUE(eventInfo(Event::CyclesRef).dedicated);
    EXPECT_FALSE(eventInfo(Event::DtlbMiss).dedicated);
}

TEST(EventsTest, ShortNamesUniqueAndRoundTrip)
{
    std::set<std::string> names;
    for (const auto &info : eventTable()) {
        EXPECT_TRUE(names.insert(info.shortName).second)
            << "duplicate " << info.shortName;
        EXPECT_EQ(eventFromShortName(info.shortName), info.event);
    }
}

TEST(EventsTest, PmuNamesMatchTableI)
{
    EXPECT_STREQ(eventInfo(Event::DtlbMiss).pmuName,
                 "DTLB_MISSES.ANY");
    EXPECT_STREQ(eventInfo(Event::LdBlkSta).pmuName,
                 "LOAD_BLOCK.STA");
    EXPECT_STREQ(eventInfo(Event::Simd).pmuName,
                 "SIMD_INST_RETIRED.ANY");
    EXPECT_STREQ(eventInfo(Event::Cycles).pmuName,
                 "CPU_CLK_UNHALTED.CORE");
}

TEST(EventsTest, MetricColumnsStartWithCpi)
{
    const auto names = metricColumnNames();
    ASSERT_FALSE(names.empty());
    EXPECT_EQ(names.front(), "CPI");
    // CPI plus the 19 multiplexed events of Table I.
    EXPECT_EQ(names.size(), kNumEvents - kFirstMultiplexedEvent + 1);
    // The dedicated raw counters are not modeling columns.
    for (const auto &name : names) {
        EXPECT_NE(name, "Cycles");
        EXPECT_NE(name, "Inst");
        EXPECT_NE(name, "CyclesRef");
    }
}

TEST(EventsTest, CountHelpers)
{
    EventCounts counts;
    clearCounts(counts);
    bump(counts, Event::L2Miss);
    bump(counts, Event::L2Miss, 5);
    EXPECT_EQ(countOf(counts, Event::L2Miss), 6u);
    EXPECT_EQ(countOf(counts, Event::Div), 0u);
    clearCounts(counts);
    EXPECT_EQ(countOf(counts, Event::L2Miss), 0u);
}

TEST(EventsDeathTest, UnknownShortNameIsFatal)
{
    EXPECT_EXIT(eventFromShortName("NoSuchEvent"),
                ::testing::ExitedWithCode(1), "unknown event");
}

} // namespace
} // namespace wct
