/**
 * @file
 * Tests for the logging/error discipline: fatal exits with status 1,
 * panic aborts, warn continues.
 */

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace wct
{
namespace
{

TEST(LoggingDeathTest, FatalExitsWithStatusOne)
{
    EXPECT_EXIT(wct_fatal("bad input ", 42),
                ::testing::ExitedWithCode(1), "bad input 42");
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(wct_panic("invariant ", "violated"),
                 "invariant violated");
}

TEST(LoggingDeathTest, AssertPanicsOnFalse)
{
    EXPECT_DEATH(wct_assert(1 == 2, "math is broken"),
                 "assertion '1 == 2' failed: math is broken");
}

TEST(LoggingTest, AssertPassesOnTrue)
{
    wct_assert(1 == 1, "never printed");
    SUCCEED();
}

TEST(LoggingTest, WarnAndInformDoNotTerminate)
{
    wct_warn("suspicious but survivable: ", 3.14);
    wct_inform("status message");
    SUCCEED();
}

TEST(LoggingTest, FormatArgsStreamsAllTypes)
{
    EXPECT_EQ(detail::formatArgs("x=", 1, " y=", 2.5, " z=", "s"),
              "x=1 y=2.5 z=s");
    EXPECT_EQ(detail::formatArgs(), "");
}

} // namespace
} // namespace wct
