/**
 * @file
 * Unit and property tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "util/rng.hh"

namespace wct
{
namespace
{

TEST(Splitmix64Test, KnownSequence)
{
    // Reference values for seed 0 from the splitmix64 reference code.
    std::uint64_t state = 0;
    EXPECT_EQ(splitmix64(state), 0xe220a8397b1dcdafull);
    EXPECT_EQ(splitmix64(state), 0x6e789e6aa1b965f4ull);
    EXPECT_EQ(splitmix64(state), 0x06c45d188009454full);
}

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a() == b());
    EXPECT_LT(same, 4);
}

TEST(RngTest, ForkIndependentOfParentConsumption)
{
    Rng parent(7);
    Rng child1 = parent.fork(3);
    // Forking must not advance or depend on later parent draws.
    Rng parent2(7);
    Rng child2 = parent2.fork(3);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(child1(), child2());
}

TEST(RngTest, ForkSaltsProduceDistinctStreams)
{
    Rng parent(7);
    Rng a = parent.fork(0);
    Rng b = parent.fork(1);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a() == b());
    EXPECT_LT(same, 4);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(RngTest, UniformMeanNearHalf)
{
    Rng rng(13);
    double sum = 0.0;
    constexpr int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntRespectsBound)
{
    Rng rng(17);
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 100000; ++i) {
        const auto v = rng.uniformInt(10);
        ASSERT_LT(v, 10u);
        ++counts[v];
    }
    // Chi-squared-ish sanity: every bucket within 10% of expectation.
    for (int c : counts)
        EXPECT_NEAR(c, 10000, 1000);
}

TEST(RngTest, NormalMomentsMatch)
{
    Rng rng(19);
    constexpr int n = 200000;
    double sum = 0.0;
    double sumsq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sumsq += x * x;
    }
    const double m = sum / n;
    const double var = sumsq / n - m * m;
    EXPECT_NEAR(m, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, NormalScaled)
{
    Rng rng(23);
    constexpr int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(5.0, 2.0);
    EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, BernoulliEdgeCases)
{
    Rng rng(29);
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-1.0));
    EXPECT_TRUE(rng.bernoulli(2.0));
}

TEST(RngTest, BernoulliRate)
{
    Rng rng(31);
    int hits = 0;
    constexpr int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(hits / double(n), 0.3, 0.01);
}

TEST(RngTest, ExponentialMean)
{
    Rng rng(37);
    constexpr int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(4.0);
    EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(RngTest, GeometricMean)
{
    Rng rng(41);
    constexpr int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.geometric(0.25));
    EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(RngTest, GeometricAlwaysPositive)
{
    Rng rng(43);
    for (int i = 0; i < 1000; ++i)
        ASSERT_GE(rng.geometric(0.9), 1u);
}

TEST(RngTest, WeightedChoiceDistribution)
{
    Rng rng(47);
    const std::vector<double> weights = {1.0, 2.0, 7.0};
    std::vector<int> counts(3, 0);
    constexpr int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.weightedChoice(weights)];
    EXPECT_NEAR(counts[0] / double(n), 0.1, 0.01);
    EXPECT_NEAR(counts[1] / double(n), 0.2, 0.01);
    EXPECT_NEAR(counts[2] / double(n), 0.7, 0.01);
}

TEST(RngTest, WeightedChoiceZeroWeightNeverPicked)
{
    Rng rng(53);
    const std::vector<double> weights = {0.0, 1.0, 0.0};
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(rng.weightedChoice(weights), 1u);
}

TEST(RngTest, ZipfSkewsTowardLowIndices)
{
    Rng rng(59);
    std::vector<int> counts(8, 0);
    for (int i = 0; i < 50000; ++i)
        ++counts[rng.zipf(8, 1.2)];
    EXPECT_GT(counts[0], counts[3]);
    EXPECT_GT(counts[3], counts[7]);
}

TEST(RngTest, ZipfZeroExponentIsUniform)
{
    Rng rng(61);
    std::vector<int> counts(4, 0);
    constexpr int n = 80000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.zipf(4, 0.0)];
    for (int c : counts)
        EXPECT_NEAR(c, n / 4, n / 40);
}

TEST(RngTest, ShufflePreservesElements)
{
    Rng rng(67);
    std::vector<int> v(100);
    std::iota(v.begin(), v.end(), 0);
    auto copy = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, copy);
}

TEST(RngTest, ShuffleActuallyPermutes)
{
    Rng rng(71);
    std::vector<int> v(100);
    std::iota(v.begin(), v.end(), 0);
    auto original = v;
    rng.shuffle(v);
    EXPECT_NE(v, original);
}

} // namespace
} // namespace wct
