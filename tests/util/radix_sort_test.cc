/**
 * @file
 * Unit tests of the radix-sort root kernel: the key transform must
 * order exactly like operator< on doubles, and radixSortKeyRows must
 * produce byte-for-byte the permutation std::stable_sort gives
 * (ascending key, ties in input order) — the presorted tree builder's
 * bit-identical guarantee leans on both.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/radix_sort.hh"
#include "util/rng.hh"

namespace wct
{
namespace
{

TEST(RadixSort, KeyTransformMatchesDoubleOrdering)
{
    const std::vector<double> values = {
        -std::numeric_limits<double>::infinity(),
        -1e308,
        -3.5,
        -1.0,
        -1e-308,
        -0.0,
        0.0,
        1e-308,
        0.5,
        1.0,
        3.5,
        1e308,
        std::numeric_limits<double>::infinity(),
    };
    for (std::size_t i = 0; i < values.size(); ++i) {
        for (std::size_t j = 0; j < values.size(); ++j) {
            const bool lt = values[i] < values[j];
            const bool key_lt = orderedKeyFromDouble(values[i]) <
                orderedKeyFromDouble(values[j]);
            EXPECT_EQ(lt, key_lt)
                << values[i] << " vs " << values[j];
        }
    }
    // Zeros of either sign collapse to one key (one tie group).
    EXPECT_EQ(orderedKeyFromDouble(-0.0),
              orderedKeyFromDouble(0.0));
}

std::vector<KeyRow>
stableReference(std::vector<KeyRow> entries)
{
    std::stable_sort(entries.begin(), entries.end(),
                     [](const KeyRow &a, const KeyRow &b) {
                         return a.key < b.key;
                     });
    return entries;
}

void
expectSameOrder(const std::vector<KeyRow> &actual,
                const std::vector<KeyRow> &expected)
{
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < actual.size(); ++i) {
        EXPECT_EQ(actual[i].key, expected[i].key) << "index " << i;
        EXPECT_EQ(actual[i].row, expected[i].row) << "index " << i;
    }
}

TEST(RadixSort, MatchesStableSortOnRandomKeys)
{
    Rng rng(0x5ad1);
    for (int trial = 0; trial < 20; ++trial) {
        const std::size_t n =
            static_cast<std::size_t>(rng.uniformInt(3001));
        std::vector<KeyRow> entries(n);
        for (std::size_t i = 0; i < n; ++i) {
            // Mix full-range keys with a narrow band so some digit
            // passes are constant (exercises the skip) and ties occur.
            const bool narrow = rng.uniformInt(2) == 0;
            const double v = narrow
                ? static_cast<double>(rng.uniformInt(41)) / 8.0
                : rng.normal(0.0, 1e6);
            entries[i] = {orderedKeyFromDouble(v),
                          static_cast<std::uint32_t>(i)};
        }
        const std::vector<KeyRow> expected =
            stableReference(entries);
        std::vector<KeyRow> scratch;
        radixSortKeyRows(entries, scratch);
        expectSameOrder(entries, expected);
    }
}

TEST(RadixSort, HandlesDegenerateInputs)
{
    std::vector<KeyRow> scratch;

    std::vector<KeyRow> empty;
    radixSortKeyRows(empty, scratch);
    EXPECT_TRUE(empty.empty());

    std::vector<KeyRow> single = {{42, 7}};
    radixSortKeyRows(single, scratch);
    EXPECT_EQ(single[0].key, 42u);
    EXPECT_EQ(single[0].row, 7u);

    // All keys equal: ties must stay in input (row) order.
    std::vector<KeyRow> equal(100);
    for (std::size_t i = 0; i < equal.size(); ++i)
        equal[i] = {orderedKeyFromDouble(1.25),
                    static_cast<std::uint32_t>(i)};
    radixSortKeyRows(equal, scratch);
    for (std::size_t i = 0; i < equal.size(); ++i)
        EXPECT_EQ(equal[i].row, i);

    // Already sorted and reverse sorted.
    std::vector<KeyRow> sorted(257);
    for (std::size_t i = 0; i < sorted.size(); ++i)
        sorted[i] = {orderedKeyFromDouble(static_cast<double>(i)),
                     static_cast<std::uint32_t>(i)};
    std::vector<KeyRow> reversed(sorted.rbegin(), sorted.rend());
    const std::vector<KeyRow> expected = sorted;
    radixSortKeyRows(sorted, scratch);
    expectSameOrder(sorted, expected);
    radixSortKeyRows(reversed, scratch);
    expectSameOrder(reversed, expected);
}

} // namespace
} // namespace wct
