/**
 * @file
 * Unit tests of the plain-text table renderer behind the paper-style
 * tables: exact layout on a small table, rule placement, width
 * computation, and the arity assertions.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "util/text_table.hh"

namespace wct
{
namespace
{

std::vector<std::string>
lines(const std::string &text)
{
    std::vector<std::string> out;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        out.push_back(line);
    return out;
}

TEST(TextTableTest, RendersExactSmallTable)
{
    TextTable table({"Bench", "CPI"});
    table.addRow({"mcf", "2.21"});
    table.addRow({"namd", "0.9"});
    // Columns are padded to the widest cell, separated by two spaces,
    // with trailing padding trimmed.
    EXPECT_EQ(table.render(),
              "Bench  CPI\n"
              "-----------\n"
              "mcf    2.21\n"
              "namd   0.9\n");
}

TEST(TextTableTest, CellWiderThanHeaderSetsColumnWidth)
{
    TextTable table({"N", "V"});
    table.addRow({"456.hmmer", "1"});
    const auto rendered = lines(table.render());
    ASSERT_EQ(rendered.size(), 3u);
    EXPECT_EQ(rendered[2], "456.hmmer  1");
    // The header rule spans both padded columns.
    EXPECT_EQ(rendered[1], std::string(12, '-'));
}

TEST(TextTableTest, RuleAppearsBeforeTheNextRow)
{
    TextTable table({"A"});
    table.addRow({"1"});
    table.addRule();
    table.addRow({"2"});
    const auto rendered = lines(table.render());
    ASSERT_EQ(rendered.size(), 5u);
    EXPECT_EQ(rendered[2], "1");
    EXPECT_EQ(rendered[3], rendered[1]); // the separating rule
    EXPECT_EQ(rendered[4], "2");
}

TEST(TextTableTest, TrailingRuleWithoutRowIsDropped)
{
    TextTable table({"A"});
    table.addRow({"1"});
    table.addRule();
    const auto rendered = lines(table.render());
    EXPECT_EQ(rendered.size(), 3u);
}

TEST(TextTableTest, CountsRows)
{
    TextTable table({"A", "B"});
    EXPECT_EQ(table.numRows(), 0u);
    table.addRow({"1", "2"});
    table.addRow({"3", "4"});
    EXPECT_EQ(table.numRows(), 2u);
}

TEST(TextTableDeathTest, ArityMismatchPanics)
{
    TextTable table({"A", "B"});
    EXPECT_DEATH(table.addRow({"only one"}), "arity");
}

TEST(TextTableDeathTest, EmptyHeaderPanics)
{
    EXPECT_DEATH(TextTable(std::vector<std::string>{}), "");
}

} // namespace
} // namespace wct
