/**
 * @file
 * Unit tests for string helpers and the text table renderer.
 */

#include <gtest/gtest.h>

#include "util/string_utils.hh"
#include "util/text_table.hh"

namespace wct
{
namespace
{

TEST(SplitTest, BasicFields)
{
    const auto parts = split("a,b,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "b");
    EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, KeepsEmptyFields)
{
    const auto parts = split(",x,", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "");
    EXPECT_EQ(parts[1], "x");
    EXPECT_EQ(parts[2], "");
}

TEST(SplitTest, NoDelimiterSinglePiece)
{
    const auto parts = split("hello", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "hello");
}

TEST(TrimTest, StripsBothSides)
{
    EXPECT_EQ(trim("  x y  "), "x y");
    EXPECT_EQ(trim("\t\nabc\r "), "abc");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("abc"), "abc");
}

TEST(JoinTest, RoundTripsWithSplit)
{
    const std::vector<std::string> pieces = {"p", "q", "r"};
    EXPECT_EQ(join(pieces, ","), "p,q,r");
    EXPECT_EQ(split(join(pieces, ","), ','), pieces);
}

TEST(JoinTest, EmptyAndSingle)
{
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(CaseTest, ToLower)
{
    EXPECT_EQ(toLower("DtlbMiss"), "dtlbmiss");
    EXPECT_EQ(toLower("already"), "already");
}

TEST(AffixTest, StartsAndEndsWith)
{
    EXPECT_TRUE(startsWith("429.mcf", "429"));
    EXPECT_FALSE(startsWith("429.mcf", "430"));
    EXPECT_TRUE(startsWith("x", ""));
    EXPECT_TRUE(endsWith("fma3d_m", "_m"));
    EXPECT_FALSE(endsWith("mcf", "_m"));
    EXPECT_FALSE(endsWith("m", "_m"));
}

TEST(FormatTest, FixedPrecision)
{
    EXPECT_EQ(formatDouble(1.23456, 2), "1.23");
    EXPECT_EQ(formatDouble(-0.5, 1), "-0.5");
    EXPECT_EQ(formatDouble(2.0, 0), "2");
}

TEST(FormatTest, CompactSwitchesToScientificForTinyValues)
{
    EXPECT_EQ(formatCompact(0.00019), "1.90e-04");
    EXPECT_EQ(formatCompact(0.0), "0.0000");
    EXPECT_EQ(formatCompact(0.96), "0.9600");
    EXPECT_EQ(formatCompact(1172.0), "1172.0");
}

TEST(TextTableTest, RendersAlignedColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Header separator rule present.
    EXPECT_NE(out.find("---"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(TextTableTest, RuleInsertedBetweenRows)
{
    TextTable t({"c"});
    t.addRow({"x"});
    t.addRule();
    t.addRow({"y"});
    const std::string out = t.render();
    // Header rule plus the explicit one.
    std::size_t rules = 0;
    std::size_t pos = 0;
    while ((pos = out.find("-\n", pos)) != std::string::npos) {
        ++rules;
        pos += 2;
    }
    EXPECT_EQ(rules, 2u);
}

TEST(TextTableDeathTest, RowArityMismatchPanics)
{
    TextTable t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "arity");
}

} // namespace
} // namespace wct
