/**
 * @file
 * Unit tests of the work-stealing thread pool: parallelFor slot
 * semantics, fork/join from worker threads (nested tasks must not
 * deadlock the help-while-waiting scheme), exception propagation
 * through TaskGroup::wait, clean shutdown with queued work, and the
 * WCT_THREADS configuration contract.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hh"

namespace wct
{
namespace
{

TEST(ThreadPool, ParallelForFillsEverySlotExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    parallelFor(
        hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); },
        pool);
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "slot " << i;
}

TEST(ThreadPool, ParallelForMatchesSerialResult)
{
    ThreadPool pool(3);
    std::vector<double> parallel_out(257);
    parallelFor(
        parallel_out.size(),
        [&](std::size_t i) {
            parallel_out[i] = static_cast<double>(i) * 1.5;
        },
        pool);

    std::vector<double> serial_out(257);
    for (std::size_t i = 0; i < serial_out.size(); ++i)
        serial_out[i] = static_cast<double>(i) * 1.5;
    EXPECT_EQ(parallel_out, serial_out);
}

TEST(ThreadPool, ZeroWorkerPoolRunsInlineOnTheCaller)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.workerCount(), 0u);
    const std::thread::id self = std::this_thread::get_id();
    std::vector<std::thread::id> ran(8);
    TaskGroup group(pool);
    for (std::size_t i = 0; i < ran.size(); ++i)
        group.run([&ran, i] { ran[i] = std::this_thread::get_id(); });
    group.wait();
    for (const std::thread::id &id : ran)
        EXPECT_EQ(id, self);
}

TEST(ThreadPool, NestedTaskGroupsDoNotDeadlock)
{
    // Each outer task forks its own group from inside the pool — the
    // recursive subtree-build shape. wait() must help execute queued
    // tasks instead of blocking a worker, or this exhausts the pool
    // and hangs.
    ThreadPool pool(2);
    std::atomic<int> leaves{0};
    TaskGroup outer(pool);
    for (int i = 0; i < 8; ++i) {
        outer.run([&pool, &leaves] {
            TaskGroup inner(pool);
            for (int j = 0; j < 8; ++j)
                inner.run([&leaves] { leaves.fetch_add(1); });
            inner.wait();
        });
    }
    outer.wait();
    EXPECT_EQ(leaves.load(), 64);
}

TEST(ThreadPool, WaitRethrowsTheTaskException)
{
    ThreadPool pool(2);
    TaskGroup group(pool);
    std::atomic<int> survivors{0};
    group.run([] { throw std::runtime_error("boom"); });
    for (int i = 0; i < 4; ++i)
        group.run([&survivors] { survivors.fetch_add(1); });
    EXPECT_THROW(group.wait(), std::runtime_error);
    // The failure must not cancel independent siblings.
    EXPECT_EQ(survivors.load(), 4);
}

TEST(ThreadPool, WaitRethrowsInlineExceptionsToo)
{
    ThreadPool pool(0);
    TaskGroup group(pool);
    group.run([] { throw std::logic_error("inline"); });
    EXPECT_THROW(group.wait(), std::logic_error);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks)
{
    std::atomic<int> done{0};
    {
        ThreadPool pool(2);
        TaskGroup group(pool);
        for (int i = 0; i < 32; ++i)
            group.run([&done] { done.fetch_add(1); });
        group.wait();
    } // ~ThreadPool joins the workers
    EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPool, ConfiguredThreadsHonoursTheEnvironment)
{
    // setenv/getenv in a single-threaded test binary.
    ASSERT_EQ(setenv("WCT_THREADS", "3", 1), 0);
    EXPECT_EQ(ThreadPool::configuredThreads(), 3u);

    ASSERT_EQ(setenv("WCT_THREADS", "1", 1), 0);
    EXPECT_EQ(ThreadPool::configuredThreads(), 1u);

    // Invalid values warn and fall back to a sane default.
    ASSERT_EQ(setenv("WCT_THREADS", "zero", 1), 0);
    EXPECT_GE(ThreadPool::configuredThreads(), 1u);
    ASSERT_EQ(setenv("WCT_THREADS", "0", 1), 0);
    EXPECT_GE(ThreadPool::configuredThreads(), 1u);

    ASSERT_EQ(unsetenv("WCT_THREADS"), 0);
    EXPECT_GE(ThreadPool::configuredThreads(), 1u);
}

TEST(ThreadPool, ResetGlobalForTestControlsWorkerCount)
{
    ThreadPool::resetGlobalForTest(2);
    EXPECT_EQ(ThreadPool::global().workerCount(), 2u);
    ThreadPool::resetGlobalForTest(0);
    EXPECT_EQ(ThreadPool::global().workerCount(), 0u);
}

} // namespace
} // namespace wct
