/**
 * @file
 * Unit tests of the flattened CompiledTree (mtree/compiled_tree.hh):
 * structural invariants of the lowering, the degenerate single-leaf
 * tree, clamp and NaN behavior, tiling boundaries, and the rebuild-
 * on-load path. The randomized bit-exactness sweep lives in
 * tests/prop/compiled_tree_prop_test.cc; these are the directed
 * cases.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <vector>

#include "data/dataset.hh"
#include "mtree/compiled_tree.hh"
#include "mtree/model_tree.hh"
#include "util/rng.hh"

namespace wct
{
namespace
{

bool
sameBits(double a, double b)
{
    return std::bit_cast<std::uint64_t>(a) ==
        std::bit_cast<std::uint64_t>(b);
}

/** Piecewise dataset that trains to a multi-leaf tree. */
Dataset
piecewiseData(std::size_t n, std::uint64_t seed)
{
    Dataset d({"x0", "x1", "y"});
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
        const double x0 = rng.uniform(0.0, 1.0);
        const double x1 = rng.uniform(0.0, 1.0);
        const double y = (x0 <= 0.5 ? 2.0 : -3.0) +
            (x1 <= 0.5 ? 5.0 : 0.0) + 0.5 * x1 +
            rng.normal(0.0, 0.05);
        d.addRow({x0, x1, y});
    }
    return d;
}

TEST(CompiledTree, LoweringHasFullBinaryShape)
{
    const Dataset data = piecewiseData(400, 1);
    const ModelTree tree = ModelTree::train(data, "y");
    const CompiledTree &compiled = tree.compiled();

    ASSERT_GT(tree.numLeaves(), 1u);
    EXPECT_EQ(compiled.numLeaves(), tree.numLeaves());
    // An M5' tree is a full binary tree: n leaves, n-1 splits.
    EXPECT_EQ(compiled.numNodes(), 2 * tree.numLeaves() - 1);
    EXPECT_EQ(compiled.numColumns(), tree.schema().size());
    EXPECT_GE(compiled.depth(), 1u);
    EXPECT_TRUE(compiled.clampsPredictions());
}

TEST(CompiledTree, SingleLeafTreeIsDepthZero)
{
    // Constant target: no split ever pays, the tree is one leaf and
    // the compiled form must still answer (descent of zero levels).
    Dataset d({"x", "y"});
    for (int i = 0; i < 32; ++i)
        d.addRow({static_cast<double>(i), 7.0});
    const ModelTree tree = ModelTree::train(d, "y");
    ASSERT_EQ(tree.numLeaves(), 1u);

    const CompiledTree &compiled = tree.compiled();
    EXPECT_EQ(compiled.numNodes(), 1u);
    EXPECT_EQ(compiled.depth(), 0u);

    const std::vector<double> row = {3.0, 0.0};
    EXPECT_TRUE(
        sameBits(compiled.predict(row), tree.predict(row)));
    EXPECT_EQ(compiled.classify(row), 0u);
}

TEST(CompiledTree, LoadedTreeCarriesACompiledForm)
{
    const Dataset data = piecewiseData(400, 2);
    const ModelTree tree = ModelTree::train(data, "y");
    std::stringstream buffer;
    tree.save(buffer);
    const ModelTree loaded = ModelTree::load(buffer);

    // Every load path re-lowers (ModelTree::finalize), so serving
    // hot-reload always swaps tree and compiled form together.
    const CompiledTree &compiled = loaded.compiled();
    EXPECT_EQ(compiled.numNodes(), tree.compiled().numNodes());
    for (std::size_t r = 0; r < data.numRows(); ++r) {
        EXPECT_TRUE(sameBits(compiled.predict(data.row(r)),
                             tree.predict(data.row(r))));
        EXPECT_EQ(compiled.classify(data.row(r)),
                  tree.classify(data.row(r)));
    }
}

TEST(CompiledTree, ClampEngagesOutsideTheTrainingRange)
{
    const Dataset data = piecewiseData(400, 3);
    const ModelTree tree = ModelTree::train(data, "y");
    const CompiledTree &compiled = tree.compiled();

    // Far outside the training box the leaf model extrapolates
    // wildly; both evaluators must clamp to the same envelope.
    const std::vector<double> far = {1e6, -1e6, 0.0};
    const double interpreted = tree.predict(far);
    EXPECT_TRUE(sameBits(compiled.predict(far), interpreted));
    EXPECT_TRUE(std::isfinite(interpreted));
}

TEST(CompiledTree, NanRowsDescendLikeTheInterpreter)
{
    const Dataset data = piecewiseData(400, 4);
    const ModelTree tree = ModelTree::train(data, "y");
    const CompiledTree &compiled = tree.compiled();

    // NaN fails `row[attr] <= threshold` in the interpreter and goes
    // right; the branch-free select must take the same side.
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const std::vector<std::vector<double>> rows = {
        {nan, 0.25, 0.0}, {0.25, nan, 0.0}, {nan, nan, 0.0}};
    for (const auto &row : rows) {
        EXPECT_EQ(compiled.classify(row), tree.classify(row));
        EXPECT_TRUE(
            sameBits(compiled.predict(row), tree.predict(row)));
    }
}

TEST(CompiledTree, BlockEvaluationCrossesTileBoundaries)
{
    const Dataset data = piecewiseData(400, 5);
    const ModelTree tree = ModelTree::train(data, "y");
    const CompiledTree &compiled = tree.compiled();

    // More rows than one tile, not a multiple of the tile size, so
    // the loop exercises full tiles plus a ragged tail.
    const std::size_t n = CompiledTree::kBlockRows * 2 + 37;
    const Dataset probe = piecewiseData(n, 6);
    std::vector<double> cpi(n);
    std::vector<std::uint32_t> leaf(n);
    compiled.evaluateBlock(probe.row(0).data(),
                           probe.numColumns(), n, cpi.data(),
                           leaf.data());
    for (std::size_t r = 0; r < n; ++r) {
        EXPECT_TRUE(sameBits(cpi[r], tree.predict(probe.row(r))))
            << "row " << r;
        EXPECT_EQ(leaf[r], tree.classify(probe.row(r)))
            << "row " << r;
    }
}

TEST(CompiledTree, BlockOutputsAreIndividuallyOptional)
{
    const Dataset data = piecewiseData(400, 7);
    const ModelTree tree = ModelTree::train(data, "y");
    const CompiledTree &compiled = tree.compiled();
    const Dataset probe = piecewiseData(64, 8);
    const std::size_t n = probe.numRows();

    // Classify-only traffic skips the leaf-model arithmetic; predict
    // -only traffic skips the leaf export. Either output pointer may
    // be null (not both), and each must match the dual-output call.
    std::vector<double> cpi_both(n), cpi_only(n);
    std::vector<std::uint32_t> leaf_both(n), leaf_only(n);
    compiled.evaluateBlock(probe.row(0).data(), probe.numColumns(),
                           n, cpi_both.data(), leaf_both.data());
    compiled.evaluateBlock(probe.row(0).data(), probe.numColumns(),
                           n, cpi_only.data(), nullptr);
    compiled.evaluateBlock(probe.row(0).data(), probe.numColumns(),
                           n, nullptr, leaf_only.data());
    for (std::size_t r = 0; r < n; ++r) {
        EXPECT_TRUE(sameBits(cpi_only[r], cpi_both[r]));
        EXPECT_EQ(leaf_only[r], leaf_both[r]);
    }
}

} // namespace
} // namespace wct
