/**
 * @file
 * Tests for sparse linear models and the Gram-based fitting with
 * greedy attribute elimination.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "mtree/linear_model.hh"
#include "util/rng.hh"

namespace wct
{
namespace
{

/** Dataset with columns x0, x1, x2, y where y = f(x). */
Dataset
makeData(std::size_t n, std::uint64_t seed,
         double (*f)(double, double, double, Rng &))
{
    Dataset d({"x0", "x1", "x2", "y"});
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
        const double x0 = rng.uniform(0.0, 2.0);
        const double x1 = rng.uniform(-1.0, 1.0);
        const double x2 = rng.uniform(0.0, 1.0);
        d.addRow({x0, x1, x2, f(x0, x1, x2, rng)});
    }
    return d;
}

std::vector<std::size_t>
allRows(const Dataset &d)
{
    std::vector<std::size_t> rows(d.numRows());
    std::iota(rows.begin(), rows.end(), std::size_t(0));
    return rows;
}

TEST(LinearModelTest, PredictSparse)
{
    LinearModel m;
    m.intercept = 1.0;
    m.attributes = {2, 0};
    m.coefficients = {3.0, -2.0};
    const std::vector<double> row = {10.0, 99.0, 5.0, 0.0};
    EXPECT_DOUBLE_EQ(m.predict(row), 1.0 + 15.0 - 20.0);
}

TEST(LinearModelTest, DescribeFormatsSigns)
{
    LinearModel m;
    m.intercept = 0.53;
    m.attributes = {0, 1};
    m.coefficients = {4.73, -0.198};
    const std::vector<std::string> names = {"L1DMiss", "Store", "y"};
    const std::string text = m.describe(names, "CPI");
    EXPECT_NE(text.find("CPI = 0.5300"), std::string::npos);
    EXPECT_NE(text.find("+ 4.7300 * L1DMiss"), std::string::npos);
    EXPECT_NE(text.find("- 0.1980 * Store"), std::string::npos);
}

TEST(GramTest, CountsAndTargetMoments)
{
    Dataset d = makeData(500, 1, [](double a, double, double, Rng &) {
        return 2.0 * a;
    });
    GramAccumulator gram({0, 1, 2}, 3);
    gram.addRows(d, allRows(d));
    EXPECT_EQ(gram.count(), 500u);
    const auto y = d.column("y");
    double mean = 0.0;
    for (double v : y)
        mean += v;
    mean /= y.size();
    EXPECT_NEAR(gram.targetMean(), mean, 1e-10);
}

TEST(GramTest, FullSubsetRecoversCoefficients)
{
    Dataset d = makeData(2000, 2, [](double a, double b, double c,
                                     Rng &) {
        return 1.5 + 2.0 * a - 3.0 * b + 0.5 * c;
    });
    GramAccumulator gram({0, 1, 2}, 3);
    gram.addRows(d, allRows(d));
    const std::vector<std::size_t> all = {0, 1, 2};
    double rss = 0.0;
    const LinearModel m = gram.fitSubset(all, rss);
    EXPECT_NEAR(m.intercept, 1.5, 1e-6);
    EXPECT_NEAR(m.coefficients[0], 2.0, 1e-6);
    EXPECT_NEAR(m.coefficients[1], -3.0, 1e-6);
    EXPECT_NEAR(m.coefficients[2], 0.5, 1e-6);
    EXPECT_LT(rss, 1e-12 * 2000);
}

TEST(GramTest, SubsetMapsColumnIndices)
{
    Dataset d = makeData(1000, 3, [](double, double b, double, Rng &) {
        return 4.0 * b + 1.0;
    });
    GramAccumulator gram({0, 1, 2}, 3);
    gram.addRows(d, allRows(d));
    const std::vector<std::size_t> only_x1 = {1}; // position of col 1
    double rss = 0.0;
    const LinearModel m = gram.fitSubset(only_x1, rss);
    ASSERT_EQ(m.attributes.size(), 1u);
    EXPECT_EQ(m.attributes[0], 1u); // dataset column index
    EXPECT_NEAR(m.coefficients[0], 4.0, 1e-6);
}

TEST(GramTest, RssMatchesDirectComputation)
{
    Dataset d = makeData(800, 4, [](double a, double b, double,
                                    Rng &rng) {
        return a - b + rng.normal(0.0, 0.2);
    });
    GramAccumulator gram({0, 1, 2}, 3);
    gram.addRows(d, allRows(d));
    const std::vector<std::size_t> subset = {0, 1};
    double rss = 0.0;
    const LinearModel m = gram.fitSubset(subset, rss);

    double direct = 0.0;
    for (std::size_t r = 0; r < d.numRows(); ++r) {
        const double e = m.predict(d.row(r)) - d.at(r, 3);
        direct += e * e;
    }
    EXPECT_NEAR(rss, direct, 1e-6 * std::max(1.0, direct));
}

TEST(GramTest, SimplifiedDropsIrrelevantAttributes)
{
    // y depends only on x0; x1 and x2 are pure noise dimensions.
    Dataset d = makeData(3000, 5, [](double a, double, double,
                                     Rng &rng) {
        return 3.0 * a + rng.normal(0.0, 0.05);
    });
    GramAccumulator gram({0, 1, 2}, 3);
    gram.addRows(d, allRows(d));
    double err = 0.0;
    const LinearModel m = gram.fitSimplified(err);
    // With n = 3000 the (n+v+1)/(n-v-1) compensation is weak, so a
    // noise attribute may survive — but only with a negligible
    // coefficient; the real attribute must be present at full weight.
    bool found_x0 = false;
    for (std::size_t i = 0; i < m.attributes.size(); ++i) {
        if (m.attributes[i] == 0) {
            found_x0 = true;
            EXPECT_NEAR(m.coefficients[i], 3.0, 0.01);
        } else {
            EXPECT_LT(std::fabs(m.coefficients[i]), 0.02);
        }
    }
    EXPECT_TRUE(found_x0);
    EXPECT_GT(err, 0.0);

    // At leaf-like sample counts the compensation does bite and the
    // noise dimensions are eliminated outright.
    Dataset small = makeData(60, 55, [](double a, double, double,
                                        Rng &rng) {
        return 3.0 * a + rng.normal(0.0, 0.05);
    });
    GramAccumulator small_gram({0, 1, 2}, 3);
    small_gram.addRows(small, allRows(small));
    double small_err = 0.0;
    const LinearModel sm = small_gram.fitSimplified(small_err);
    EXPECT_LE(sm.attributes.size(), 2u);
    EXPECT_EQ(sm.attributes.front(), 0u);
}

TEST(GramTest, SimplifiedKeepsAllUsefulAttributes)
{
    Dataset d = makeData(3000, 6, [](double a, double b, double c,
                                     Rng &rng) {
        return a + b + c + rng.normal(0.0, 0.01);
    });
    GramAccumulator gram({0, 1, 2}, 3);
    gram.addRows(d, allRows(d));
    double err = 0.0;
    const LinearModel m = gram.fitSimplified(err);
    EXPECT_EQ(m.attributes.size(), 3u);
}

TEST(GramTest, ConstantTargetCollapsesToIntercept)
{
    Dataset d({"x0", "y"});
    for (int i = 0; i < 100; ++i)
        d.addRow({static_cast<double>(i), 7.0});
    GramAccumulator gram({0}, 1);
    gram.addRows(d, allRows(d));
    double err = 0.0;
    const LinearModel m = gram.fitSimplified(err);
    EXPECT_TRUE(m.attributes.empty());
    EXPECT_NEAR(m.intercept, 7.0, 1e-9);
    EXPECT_NEAR(err, 0.0, 1e-9);
    EXPECT_NEAR(gram.targetStddev(), 0.0, 1e-9);
}

TEST(GramTest, AdjustedErrorPenalisesParameters)
{
    Dataset d = makeData(50, 7, [](double a, double, double, Rng &r) {
        return a + r.normal(0.0, 0.1);
    });
    GramAccumulator gram({0, 1, 2}, 3);
    gram.addRows(d, allRows(d));
    const double rss = 1.0;
    EXPECT_GT(gram.adjustedError(rss, 3), gram.adjustedError(rss, 1));
    EXPECT_GT(gram.adjustedError(rss, 1), gram.adjustedError(rss, 0));
}

TEST(GramTest, TargetStddevMatchesSample)
{
    Dataset d = makeData(400, 8, [](double, double, double, Rng &r) {
        return r.normal(5.0, 2.0);
    });
    GramAccumulator gram({0}, 3);
    gram.addRows(d, allRows(d));
    EXPECT_NEAR(gram.targetStddev(), 2.0, 0.25);
}

} // namespace
} // namespace wct
