/**
 * @file
 * Round-trip tests for model tree serialization.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "mtree/serialize.hh"
#include "util/rng.hh"

namespace wct
{
namespace
{

Dataset
trainingData(std::size_t n, std::uint64_t seed)
{
    Dataset d({"x0", "x1", "y"});
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
        const double x0 = rng.uniform(0.0, 1.0);
        const double x1 = rng.uniform(0.0, 1.0);
        const double y = x0 <= 0.5 ? 1.0 + 2.0 * x1
                                   : 8.0 - x1 + rng.normal(0.0, 0.05);
        d.addRow({x0, x1, y});
    }
    return d;
}

TEST(SerializeTest, RoundTripPredictionsIdentical)
{
    const Dataset d = trainingData(2000, 1);
    const ModelTree original = ModelTree::train(d, "y");

    std::stringstream buffer;
    original.save(buffer);
    const ModelTree restored = ModelTree::load(buffer);

    EXPECT_EQ(restored.numLeaves(), original.numLeaves());
    EXPECT_EQ(restored.targetName(), "y");
    EXPECT_EQ(restored.schema(), original.schema());
    for (std::size_t r = 0; r < d.numRows(); r += 7) {
        const auto row = d.row(r);
        EXPECT_DOUBLE_EQ(restored.predict(row), original.predict(row));
        EXPECT_EQ(restored.classify(row), original.classify(row));
    }
}

TEST(SerializeTest, RoundTripLeafMetadata)
{
    const Dataset d = trainingData(1500, 2);
    const ModelTree original = ModelTree::train(d, "y");
    std::stringstream buffer;
    original.save(buffer);
    const ModelTree restored = ModelTree::load(buffer);

    ASSERT_EQ(restored.leaves().size(), original.leaves().size());
    for (std::size_t i = 0; i < original.leaves().size(); ++i) {
        EXPECT_EQ(restored.leaves()[i].count,
                  original.leaves()[i].count);
        EXPECT_DOUBLE_EQ(restored.leaves()[i].meanTarget,
                         original.leaves()[i].meanTarget);
        EXPECT_DOUBLE_EQ(restored.leaves()[i].fraction,
                         original.leaves()[i].fraction);
    }
}

TEST(SerializeTest, DescribeSurvivesRoundTrip)
{
    const Dataset d = trainingData(1000, 3);
    const ModelTree original = ModelTree::train(d, "y");
    std::stringstream buffer;
    original.save(buffer);
    const ModelTree restored = ModelTree::load(buffer);
    EXPECT_EQ(restored.describe(), original.describe());
    EXPECT_EQ(restored.toDot(), original.toDot());
}

TEST(SerializeTest, DoubleRoundTripIsStable)
{
    const Dataset d = trainingData(1000, 4);
    const ModelTree tree = ModelTree::train(d, "y");
    std::stringstream first;
    tree.save(first);
    const std::string text1 = first.str();
    const ModelTree again = ModelTree::load(first);
    std::stringstream second;
    again.save(second);
    EXPECT_EQ(text1, second.str());
}

TEST(SerializeTest, FileRoundTrip)
{
    const Dataset d = trainingData(800, 5);
    const ModelTree tree = ModelTree::train(d, "y");
    const std::string path = "/tmp/wct_serialize_test.mtree";
    writeModelTreeFile(tree, path);
    const ModelTree restored = readModelTreeFile(path);
    EXPECT_EQ(restored.numLeaves(), tree.numLeaves());
    for (std::size_t r = 0; r < 50; ++r)
        EXPECT_DOUBLE_EQ(restored.predict(d.row(r)),
                         tree.predict(d.row(r)));
}

TEST(SerializeTest, SingleLeafTree)
{
    Dataset d({"x", "y"});
    for (int i = 0; i < 50; ++i)
        d.addRow({static_cast<double>(i), 2.5});
    const ModelTree tree = ModelTree::train(d, "y");
    std::stringstream buffer;
    tree.save(buffer);
    const ModelTree restored = ModelTree::load(buffer);
    EXPECT_EQ(restored.numLeaves(), 1u);
    const std::vector<double> row = {99.0, 0.0};
    EXPECT_NEAR(restored.predict(row), 2.5, 1e-12);
}

TEST(SerializeTest, TryReadRoundTripsWithoutError)
{
    const Dataset d = trainingData(800, 7);
    const ModelTree tree = ModelTree::train(d, "y");
    std::stringstream buffer;
    tree.save(buffer);
    std::string err;
    const auto restored = tryReadModelTree(buffer, &err);
    ASSERT_TRUE(restored.has_value()) << err;
    EXPECT_TRUE(err.empty());
    EXPECT_EQ(restored->numLeaves(), tree.numLeaves());
    for (std::size_t r = 0; r < 50; ++r)
        EXPECT_DOUBLE_EQ(restored->predict(d.row(r)),
                         tree.predict(d.row(r)));
}

TEST(SerializeTest, TryReadRejectsGarbageNonFatally)
{
    std::stringstream buffer("not a model\n");
    std::string err;
    EXPECT_FALSE(tryReadModelTree(buffer, &err).has_value());
    EXPECT_NE(err.find("magic"), std::string::npos);
}

TEST(SerializeTest, TryReadRejectsTruncationNonFatally)
{
    const Dataset d = trainingData(500, 8);
    const ModelTree tree = ModelTree::train(d, "y");
    std::stringstream buffer;
    tree.save(buffer);
    std::string text = buffer.str();
    text.resize(text.size() / 2);
    std::stringstream half(text);
    std::string err;
    EXPECT_FALSE(tryReadModelTree(half, &err).has_value());
    EXPECT_NE(err.find("model tree"), std::string::npos);
}

TEST(SerializeTest, TryReadRejectsOutOfSchemaAttribute)
{
    std::stringstream buffer(
        "wct-model-tree v1\n"
        "target y\n"
        "schema 2 x y\n"
        "range 0 1 0.5 1\n"
        "node leaf 10 0.5 0.5 1 7 2.0\n" // attribute 7 > schema
        "end\n");
    std::string err;
    EXPECT_FALSE(tryReadModelTree(buffer, &err).has_value());
    EXPECT_NE(err.find("outside schema"), std::string::npos);
}

TEST(SerializeTest, TryReadBoundsNestingDepth)
{
    // A hostile input that nests splits forever must be cut off by
    // the recursion bound, not blow the stack.
    std::string text =
        "wct-model-tree v1\n"
        "target y\n"
        "schema 2 x y\n"
        "range 0 1 0.5 1\n";
    for (int i = 0; i < 600; ++i)
        text += "node split 0 0.5 10 0.5\n";
    std::stringstream buffer(text);
    std::string err;
    EXPECT_FALSE(tryReadModelTree(buffer, &err).has_value());
    EXPECT_NE(err.find("nesting too deep"), std::string::npos);
}

/**
 * Left-linear chain of `splits` split nodes, every right child a
 * leaf. The deepest node sits at parse depth == splits, so the text
 * probes the recursion bound exactly.
 */
std::string
chainTreeText(std::size_t splits)
{
    std::string text =
        "wct-model-tree v1\n"
        "target y\n"
        "schema 2 x y\n"
        "range 0 1 0.5 1\n";
    for (std::size_t i = 0; i < splits; ++i)
        text += "node split 0 0.5 10 0.5\n";
    // Pre-order: the terminal left leaf, then every right leaf.
    for (std::size_t i = 0; i < splits + 1; ++i)
        text += "node leaf 5 0.5 0.5 0\n";
    text += "end\n";
    return text;
}

TEST(SerializeTest, NestingDepthBoundIsExact)
{
    // Exactly at the documented bound (512) must parse; one level
    // past it must be refused — the cutoff is a precise contract,
    // not a fuzzy safety margin.
    {
        std::stringstream atCap(chainTreeText(512));
        std::string err;
        const auto tree = tryReadModelTree(atCap, &err);
        ASSERT_TRUE(tree.has_value()) << err;
        EXPECT_EQ(tree->numLeaves(), 513u);
    }
    {
        std::stringstream pastCap(chainTreeText(513));
        std::string err;
        EXPECT_FALSE(tryReadModelTree(pastCap, &err).has_value());
        EXPECT_NE(err.find("nesting too deep"), std::string::npos);
    }
}

TEST(SerializeTest, SchemaSizeCapIsExact)
{
    const auto header = [](std::size_t schemaSize) {
        return "wct-model-tree v1\n"
               "target y\n"
               "schema " +
               std::to_string(schemaSize) + " x y\n";
    };
    // One past the 2^20 cap dies on the cap itself.
    {
        std::stringstream in(header((1u << 20) + 1));
        std::string err;
        EXPECT_FALSE(tryReadModelTree(in, &err).has_value());
        EXPECT_NE(err.find("implausible schema size"),
                  std::string::npos);
    }
    // Exactly at the cap passes the plausibility gate and then fails
    // honestly on the names the stream does not carry.
    {
        std::stringstream in(header(1u << 20));
        std::string err;
        EXPECT_FALSE(tryReadModelTree(in, &err).has_value());
        EXPECT_NE(err.find("truncated schema"), std::string::npos);
    }
}

TEST(SerializeTest, FileByteCapIsExact)
{
    // Sparse files probe the kMaxModelTreeFileBytes gate without
    // writing 256 MiB: one byte past the cap is refused on size
    // alone; exactly at the cap reaches the parser (and then fails
    // on the magic line, proving the size gate let it through).
    namespace fs = std::filesystem;
    const std::string path = "/tmp/wct_tree_cap_test_" +
                             std::to_string(::getpid()) + ".mtree";
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << "not a tree\n";
    }
    std::string err;

    fs::resize_file(path, kMaxModelTreeFileBytes + 1);
    EXPECT_FALSE(tryReadModelTreeFile(path, &err).has_value());
    EXPECT_NE(err.find("too large"), std::string::npos);

    fs::resize_file(path, kMaxModelTreeFileBytes);
    err.clear();
    EXPECT_FALSE(tryReadModelTreeFile(path, &err).has_value());
    EXPECT_NE(err.find("magic"), std::string::npos);

    fs::remove(path);
}

TEST(SerializeTest, TryReadFileVariantReportsOpenFailures)
{
    std::string err;
    EXPECT_FALSE(
        tryReadModelTreeFile("/nonexistent/dir/model.mtree", &err)
            .has_value());
    EXPECT_FALSE(err.empty());

    const Dataset d = trainingData(400, 9);
    const ModelTree tree = ModelTree::train(d, "y");
    const std::string path = "/tmp/wct_tryread_test.mtree";
    writeModelTreeFile(tree, path);
    const auto restored = tryReadModelTreeFile(path, &err);
    ASSERT_TRUE(restored.has_value()) << err;
    EXPECT_EQ(restored->numLeaves(), tree.numLeaves());
}

TEST(SerializeDeathTest, BadMagicIsFatal)
{
    std::stringstream buffer("not a model\n");
    EXPECT_EXIT(ModelTree::load(buffer),
                ::testing::ExitedWithCode(1), "magic");
}

TEST(SerializeDeathTest, TruncatedInputIsFatal)
{
    const Dataset d = trainingData(500, 6);
    const ModelTree tree = ModelTree::train(d, "y");
    std::stringstream buffer;
    tree.save(buffer);
    std::string text = buffer.str();
    text.resize(text.size() / 2);
    std::stringstream half(text);
    EXPECT_EXIT(ModelTree::load(half), ::testing::ExitedWithCode(1),
                "model tree");
}

TEST(SerializeDeathTest, OutOfSchemaAttributeIsFatal)
{
    std::stringstream buffer(
        "wct-model-tree v1\n"
        "target y\n"
        "schema 2 x y\n"
        "range 0 1 0.5 1\n"
        "node leaf 10 0.5 0.5 1 7 2.0\n" // attribute 7 > schema
        "end\n");
    EXPECT_EXIT(ModelTree::load(buffer),
                ::testing::ExitedWithCode(1), "outside schema");
}

} // namespace
} // namespace wct
