/**
 * @file
 * Tests for the M5' model tree: structure discovery, prediction
 * accuracy, classification, pruning, smoothing, printers, and the
 * regression baselines.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "mtree/baselines.hh"
#include "mtree/model_tree.hh"
#include "stats/metrics.hh"
#include "util/rng.hh"

namespace wct
{
namespace
{

/**
 * Piecewise-linear ground truth with an obvious split on x0:
 *   x0 <= 0.5 : y = 1 + 2*x1
 *   x0 >  0.5 : y = 10 - 4*x1 + 3*x2
 */
Dataset
piecewiseData(std::size_t n, std::uint64_t seed, double noise = 0.0)
{
    Dataset d({"x0", "x1", "x2", "y"});
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
        const double x0 = rng.uniform(0.0, 1.0);
        const double x1 = rng.uniform(0.0, 1.0);
        const double x2 = rng.uniform(0.0, 1.0);
        double y = x0 <= 0.5 ? 1.0 + 2.0 * x1
                             : 10.0 - 4.0 * x1 + 3.0 * x2;
        if (noise > 0.0)
            y += rng.normal(0.0, noise);
        d.addRow({x0, x1, x2, y});
    }
    return d;
}

TEST(ModelTreeTest, FindsThePlantedSplit)
{
    const Dataset d = piecewiseData(4000, 1);
    const ModelTree tree = ModelTree::train(d, "y");
    // Root split on x0 near 0.5.
    const auto path = tree.leafPath(0);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(tree.schema()[path[0].attribute], "x0");
    EXPECT_NEAR(path[0].value, 0.5, 0.05);
}

TEST(ModelTreeTest, PredictsPiecewiseFunctionAccurately)
{
    const Dataset train = piecewiseData(4000, 2);
    const Dataset test = piecewiseData(1000, 3);
    const ModelTree tree = ModelTree::train(train, "y");
    const auto pred = tree.predictAll(test);
    const auto metrics = computeAccuracy(pred, test.column("y"));
    EXPECT_GT(metrics.correlation, 0.995);
    EXPECT_LT(metrics.meanAbsoluteError, 0.15);
}

TEST(ModelTreeTest, BeatsGlobalRegressionOnPiecewiseData)
{
    const Dataset train = piecewiseData(4000, 4, 0.05);
    const Dataset test = piecewiseData(1000, 5, 0.05);
    const ModelTree tree = ModelTree::train(train, "y");
    const auto lr = GlobalLinearRegression::train(train, "y");

    const auto tree_metrics =
        computeAccuracy(tree.predictAll(test), test.column("y"));
    const auto lr_metrics =
        computeAccuracy(lr.predictAll(test), test.column("y"));
    EXPECT_LT(tree_metrics.meanAbsoluteError,
              0.5 * lr_metrics.meanAbsoluteError);
}

TEST(ModelTreeTest, BeatsConstantLeafTreeOnLinearLeaves)
{
    const Dataset train = piecewiseData(4000, 6, 0.05);
    const Dataset test = piecewiseData(1000, 7, 0.05);
    ModelTreeConfig config;
    config.minLeafInstances = 40;
    const ModelTree m5 = ModelTree::train(train, "y", config);
    const ModelTree cart = trainRegressionTree(train, "y", config);
    const auto m5_metrics =
        computeAccuracy(m5.predictAll(test), test.column("y"));
    const auto cart_metrics =
        computeAccuracy(cart.predictAll(test), test.column("y"));
    EXPECT_LT(m5_metrics.meanAbsoluteError,
              cart_metrics.meanAbsoluteError);
}

TEST(ModelTreeTest, LinearDataCollapsesToSingleLeaf)
{
    // Pure global linear function: pruning should collapse the tree.
    Dataset d({"x0", "x1", "y"});
    Rng rng(8);
    for (int i = 0; i < 3000; ++i) {
        const double x0 = rng.uniform(0.0, 1.0);
        const double x1 = rng.uniform(0.0, 1.0);
        d.addRow({x0, x1, 2.0 + x0 - 3.0 * x1 +
                          rng.normal(0.0, 0.02)});
    }
    const ModelTree tree = ModelTree::train(d, "y");
    EXPECT_LE(tree.numLeaves(), 3u);
    // And still predicts well.
    const auto pred = tree.predictAll(d);
    EXPECT_GT(computeAccuracy(pred, d.column("y")).correlation, 0.99);
}

TEST(ModelTreeTest, ConstantTargetIsOneLeaf)
{
    Dataset d({"x", "y"});
    for (int i = 0; i < 100; ++i)
        d.addRow({static_cast<double>(i), 3.14});
    const ModelTree tree = ModelTree::train(d, "y");
    EXPECT_EQ(tree.numLeaves(), 1u);
    const std::vector<double> row = {55.0, 0.0};
    EXPECT_NEAR(tree.predict(row), 3.14, 1e-9);
}

TEST(ModelTreeTest, LeafFractionsSumToOne)
{
    const Dataset d = piecewiseData(3000, 9, 0.1);
    const ModelTree tree = ModelTree::train(d, "y");
    double total = 0.0;
    std::size_t count = 0;
    for (const auto &leaf : tree.leaves()) {
        total += leaf.fraction;
        count += leaf.count;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
    EXPECT_EQ(count, d.numRows());
}

TEST(ModelTreeTest, ClassificationMatchesLeafNumbering)
{
    const Dataset d = piecewiseData(3000, 10, 0.1);
    const ModelTree tree = ModelTree::train(d, "y");
    const auto classes = tree.classifyAll(d);
    std::vector<std::size_t> counts(tree.numLeaves(), 0);
    for (std::size_t c : classes) {
        ASSERT_LT(c, tree.numLeaves());
        ++counts[c];
    }
    for (std::size_t i = 0; i < counts.size(); ++i)
        EXPECT_EQ(counts[i], tree.leaves()[i].count) << "leaf " << i;
}

TEST(ModelTreeTest, LeafPathsAreConsistentWithClassification)
{
    const Dataset d = piecewiseData(2000, 11, 0.1);
    const ModelTree tree = ModelTree::train(d, "y");
    for (std::size_t r = 0; r < 200; ++r) {
        const auto row = d.row(r);
        const std::size_t leaf = tree.classify(row);
        for (const auto &cond : tree.leafPath(leaf)) {
            if (cond.lessOrEqual)
                EXPECT_LE(row[cond.attribute], cond.value);
            else
                EXPECT_GT(row[cond.attribute], cond.value);
        }
    }
}

TEST(ModelTreeTest, MinLeafFractionBoundsTreeSize)
{
    const Dataset d = piecewiseData(4000, 12, 0.3);
    ModelTreeConfig config;
    config.minLeafFraction = 0.2; // at most 5 leaves possible
    const ModelTree tree = ModelTree::train(d, "y", config);
    EXPECT_LE(tree.numLeaves(), 5u);
    for (const auto &leaf : tree.leaves())
        EXPECT_GE(leaf.count, 800u);
}

TEST(ModelTreeTest, PruningShrinksNoisyTrees)
{
    const Dataset d = piecewiseData(2000, 13, 1.0); // heavy noise
    ModelTreeConfig no_prune;
    no_prune.prune = false;
    ModelTreeConfig with_prune;
    with_prune.prune = true;
    const ModelTree raw = ModelTree::train(d, "y", no_prune);
    const ModelTree pruned = ModelTree::train(d, "y", with_prune);
    EXPECT_LT(pruned.numLeaves(), raw.numLeaves());
}

TEST(ModelTreeTest, SmoothingKeepsPredictionsExactlyFoldable)
{
    // Smoothed predictions must equal the leaf-model evaluation
    // (smoothing is folded into the printed equations).
    const Dataset d = piecewiseData(2000, 14, 0.2);
    ModelTreeConfig config;
    config.smooth = true;
    const ModelTree tree = ModelTree::train(d, "y", config);
    for (std::size_t r = 0; r < 100; ++r) {
        const auto row = d.row(r);
        const std::size_t leaf = tree.classify(row);
        EXPECT_NEAR(tree.predict(row),
                    tree.leaves()[leaf].model.predict(row), 1e-9);
    }
}

TEST(ModelTreeTest, SmoothingChangesLeafModels)
{
    const Dataset d = piecewiseData(2000, 15, 0.2);
    ModelTreeConfig smooth_on;
    smooth_on.smooth = true;
    ModelTreeConfig smooth_off;
    smooth_off.smooth = false;
    const ModelTree a = ModelTree::train(d, "y", smooth_on);
    const ModelTree b = ModelTree::train(d, "y", smooth_off);
    ASSERT_EQ(a.numLeaves(), b.numLeaves());
    bool any_difference = false;
    for (std::size_t i = 0; i < a.numLeaves(); ++i) {
        if (std::fabs(a.leaves()[i].model.intercept -
                      b.leaves()[i].model.intercept) > 1e-12) {
            any_difference = true;
        }
    }
    EXPECT_TRUE(any_difference);
}

TEST(ModelTreeTest, SplitAttributesReported)
{
    const Dataset d = piecewiseData(4000, 16);
    const ModelTree tree = ModelTree::train(d, "y");
    const auto attrs = tree.splitAttributes();
    ASSERT_FALSE(attrs.empty());
    std::set<std::string> names;
    for (std::size_t a : attrs)
        names.insert(tree.schema()[a]);
    EXPECT_TRUE(names.count("x0"));
    EXPECT_FALSE(names.count("y"));
}

TEST(ModelTreeTest, DescribeContainsLeavesAndEquations)
{
    const Dataset d = piecewiseData(3000, 17, 0.05);
    const ModelTree tree = ModelTree::train(d, "y");
    const std::string text = tree.describe();
    EXPECT_NE(text.find("LM1"), std::string::npos);
    EXPECT_NE(text.find("y ="), std::string::npos);
    EXPECT_NE(text.find("x0"), std::string::npos);
    EXPECT_NE(text.find("% of samples"), std::string::npos);
}

TEST(ModelTreeTest, DotOutputWellFormed)
{
    const Dataset d = piecewiseData(2000, 18, 0.05);
    const ModelTree tree = ModelTree::train(d, "y");
    const std::string dot = tree.toDot();
    EXPECT_EQ(dot.find("digraph"), 0u);
    EXPECT_NE(dot.find("shape=box"), std::string::npos);
    EXPECT_NE(dot.find("shape=oval"), std::string::npos);
    EXPECT_NE(dot.find("}"), std::string::npos);
    // One box per leaf.
    std::size_t boxes = 0;
    std::size_t pos = 0;
    while ((pos = dot.find("shape=box", pos)) != std::string::npos) {
        ++boxes;
        pos += 9;
    }
    EXPECT_EQ(boxes, tree.numLeaves());
}

TEST(ModelTreeTest, DeterministicTraining)
{
    const Dataset d = piecewiseData(2000, 19, 0.1);
    const ModelTree a = ModelTree::train(d, "y");
    const ModelTree b = ModelTree::train(d, "y");
    EXPECT_EQ(a.numLeaves(), b.numLeaves());
    for (std::size_t r = 0; r < 50; ++r)
        EXPECT_DOUBLE_EQ(a.predict(d.row(r)), b.predict(d.row(r)));
}

TEST(ModelTreeDeathTest, EmptyDatasetIsFatal)
{
    Dataset d({"x", "y"});
    EXPECT_EXIT(ModelTree::train(d, "y"),
                ::testing::ExitedWithCode(1), "empty dataset");
}

TEST(ModelTreeDeathTest, SchemaMismatchOnPredictAll)
{
    const Dataset d = piecewiseData(500, 20);
    const ModelTree tree = ModelTree::train(d, "y");
    Dataset other({"a", "b"});
    other.addRow({1.0, 2.0});
    EXPECT_EXIT(tree.predictAll(other), ::testing::ExitedWithCode(1),
                "schema");
}

TEST(BaselineTest, GlobalRegressionRecoversLinearTruth)
{
    Dataset d({"x0", "x1", "y"});
    Rng rng(21);
    for (int i = 0; i < 2000; ++i) {
        const double x0 = rng.uniform(0.0, 1.0);
        const double x1 = rng.uniform(0.0, 1.0);
        d.addRow({x0, x1, 0.5 + 2.0 * x0 - x1});
    }
    const auto lr = GlobalLinearRegression::train(d, "y");
    EXPECT_NEAR(lr.model().intercept, 0.5, 1e-6);
    const auto pred = lr.predictAll(d);
    EXPECT_LT(meanAbsoluteError(pred, d.column("y")), 1e-6);
}

TEST(BaselineTest, ConstantLeafTreePredictsLeafMeans)
{
    const Dataset d = piecewiseData(2000, 22, 0.0);
    ModelTreeConfig config;
    config.minLeafInstances = 50;
    const ModelTree cart = trainRegressionTree(d, "y", config);
    for (const auto &leaf : cart.leaves()) {
        EXPECT_TRUE(leaf.model.attributes.empty());
        EXPECT_NEAR(leaf.model.intercept, leaf.meanTarget, 1e-9);
    }
}

// Hyper-parameter sweep: trees stay valid across configurations.
struct SweepParam
{
    std::size_t min_leaf;
    bool prune;
    bool smooth;
};

class ModelTreeSweep : public ::testing::TestWithParam<SweepParam>
{
};

TEST_P(ModelTreeSweep, TrainsAndPredictsSanely)
{
    const auto param = GetParam();
    const Dataset train = piecewiseData(3000, 23, 0.1);
    const Dataset test = piecewiseData(500, 24, 0.1);
    ModelTreeConfig config;
    config.minLeafInstances = param.min_leaf;
    config.prune = param.prune;
    config.smooth = param.smooth;
    const ModelTree tree = ModelTree::train(train, "y", config);
    EXPECT_GE(tree.numLeaves(), 1u);
    const auto metrics =
        computeAccuracy(tree.predictAll(test), test.column("y"));
    EXPECT_GT(metrics.correlation, 0.97);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ModelTreeSweep,
    ::testing::Values(SweepParam{4, true, true},
                      SweepParam{4, true, false},
                      SweepParam{4, false, true},
                      SweepParam{4, false, false},
                      SweepParam{50, true, true},
                      SweepParam{200, true, true}));

} // namespace
} // namespace wct
