/**
 * @file
 * Tests of the staged pipeline (src/pipeline): stage-key sensitivity
 * to every input, codec round trips, cache hit/miss lifecycle with
 * corrupt-artifact recovery, cold/warm plan byte-identity, and gc
 * liveness from chained plan keys.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "core/suite_model.hh"
#include "mtree/serialize.hh"
#include "pipeline/plans.hh"
#include "pipeline/stages.hh"
#include "workload/suites.hh"

namespace wct
{
namespace
{

namespace fs = std::filesystem;
using namespace pipeline;

/** Fresh scratch directory, removed on scope exit. */
struct TempDir
{
    fs::path path;

    explicit TempDir(const std::string &tag)
        : path(fs::temp_directory_path() /
               ("wct_stage_test_" + tag + "_" +
                std::to_string(::getpid())))
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }

    ~TempDir() { fs::remove_all(path); }
};

SuiteProfile
miniSuite()
{
    SuiteProfile suite;
    suite.name = "mini";
    for (int i = 0; i < 3; ++i) {
        BenchmarkProfile b;
        b.name = "mini." + std::to_string(i);
        b.instructionWeight = 0.5 + 0.5 * i;
        PhaseProfile p;
        p.loadFrac = 0.2 + 0.04 * i;
        p.dataFootprint = 1u << (18 + i);
        b.phases.push_back(p);
        suite.benchmarks.push_back(b);
    }
    return suite;
}

CollectionConfig
miniConfig()
{
    CollectionConfig config;
    config.intervalInstructions = 2048;
    config.baseIntervals = 40;
    config.warmupInstructions = 20'000;
    return config;
}

SuiteModelConfig
miniModelConfig()
{
    SuiteModelConfig config;
    config.trainFraction = 0.5;
    config.tree.minLeafInstances = 10;
    return config;
}

TEST(StageKeyTest, CollectKeyCoversEveryCollectionInput)
{
    const SuiteProfile suite = miniSuite();
    const CollectionConfig base = miniConfig();
    const std::uint64_t key = collectStageKey(suite, base);

    // Same inputs -> same key (the key is a pure function).
    EXPECT_EQ(collectStageKey(suite, base), key);

    CollectionConfig changed = base;
    changed.seed ^= 1;
    EXPECT_NE(collectStageKey(suite, changed), key);

    changed = base;
    changed.shards = 4;
    EXPECT_NE(collectStageKey(suite, changed), key);

    changed = base;
    changed.baseIntervals += 1;
    EXPECT_NE(collectStageKey(suite, changed), key);

    changed = base;
    changed.multiplexed = false;
    EXPECT_NE(collectStageKey(suite, changed), key);

    changed = base;
    changed.machine.l2MissCycles += 1.0;
    EXPECT_NE(collectStageKey(suite, changed), key);

    SuiteProfile renamed = suite;
    renamed.benchmarks[0].name = "mini.renamed";
    EXPECT_NE(collectStageKey(renamed, base), key);

    SuiteProfile tweaked = suite;
    tweaked.benchmarks[1].phases[0].loadFrac += 0.01;
    EXPECT_NE(collectStageKey(tweaked, base), key);
}

TEST(StageKeyTest, DownstreamKeysChainUpstreamKeys)
{
    const SuiteModelConfig model = miniModelConfig();
    const std::uint64_t train_a = trainStageKey(111, model);
    const std::uint64_t train_b = trainStageKey(222, model);
    EXPECT_NE(train_a, train_b); // collect key flows into train

    SuiteModelConfig other_model = model;
    other_model.trainFraction = 0.25;
    EXPECT_NE(trainStageKey(111, other_model), train_a);
    other_model = model;
    other_model.seed ^= 1;
    EXPECT_NE(trainStageKey(111, other_model), train_a);
    other_model = model;
    other_model.tree.minLeafInstances += 1;
    EXPECT_NE(trainStageKey(111, other_model), train_a);

    EXPECT_NE(profileStageKey(train_a), profileStageKey(train_b));
    EXPECT_NE(similarityStageKey(profileStageKey(train_a), {}),
              similarityStageKey(profileStageKey(train_b), {}));
    EXPECT_NE(similarityStageKey(profileStageKey(train_a), {}),
              similarityStageKey(profileStageKey(train_a), {"a"}));

    const std::uint64_t transfer =
        transferStageKey(train_a, train_b, "test", {});
    EXPECT_NE(transferStageKey(train_b, train_a, "test", {}),
              transfer); // direction matters
    EXPECT_NE(transferStageKey(train_a, train_b, "train", {}),
              transfer);
    TransferabilityConfig config;
    config.bootstrapReplicates = 500;
    EXPECT_NE(transferStageKey(train_a, train_b, "test", config),
              transfer);
}

TEST(StageKeyTest, StageKindKeepsKeysApart)
{
    // A train artifact and its profile artifact must never collide in
    // the store even if their numeric keys happened to be close: the
    // kind is part of the key derivation as well as the file name.
    const std::uint64_t collect =
        collectStageKey(miniSuite(), miniConfig());
    EXPECT_NE(trainStageKey(collect, miniModelConfig()), collect);
    EXPECT_NE(profileStageKey(collect), collect);
}

TEST(StageCodecTest, SuiteDataRoundTrip)
{
    const SuiteData data = collectSuite(miniSuite(), miniConfig());
    const std::string payload = encodeSuiteData(data);
    const auto decoded = decodeSuiteData(payload);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(encodeSuiteData(*decoded), payload);
    EXPECT_FALSE(decodeSuiteData("not a suite").has_value());
    EXPECT_FALSE(
        decodeSuiteData(payload.substr(0, payload.size() / 2))
            .has_value());
}

TEST(StageCodecTest, SuiteModelRoundTrip)
{
    const SuiteData data = collectSuite(miniSuite(), miniConfig());
    const SuiteModel model =
        buildSuiteModel(data, miniModelConfig());
    const std::string payload = encodeSuiteModel(model);
    const auto decoded = decodeSuiteModel(payload);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(encodeSuiteModel(*decoded), payload);
    EXPECT_EQ(decoded->suiteName, model.suiteName);
    EXPECT_EQ(decoded->meanCpi, model.meanCpi);
    EXPECT_EQ(decoded->train.numRows(), model.train.numRows());
    std::ostringstream a, b;
    writeModelTree(model.tree, a);
    writeModelTree(decoded->tree, b);
    EXPECT_EQ(a.str(), b.str());
    EXPECT_FALSE(decodeSuiteModel("garbage").has_value());
}

TEST(StageCodecTest, ProfileSimilarityAndTransferRoundTrip)
{
    const SuiteData data = collectSuite(miniSuite(), miniConfig());
    const SuiteModel model =
        buildSuiteModel(data, miniModelConfig());
    const ProfileTable table(data, model.tree);

    const std::string table_payload = encodeProfileTable(table);
    const auto table_decoded = decodeProfileTable(table_payload);
    ASSERT_TRUE(table_decoded.has_value());
    EXPECT_EQ(encodeProfileTable(*table_decoded), table_payload);
    EXPECT_EQ(table_decoded->render(), table.render());

    const SimilarityMatrix sim(table);
    const std::string sim_payload = encodeSimilarity(sim);
    const auto sim_decoded = decodeSimilarity(sim_payload);
    ASSERT_TRUE(sim_decoded.has_value());
    EXPECT_EQ(encodeSimilarity(*sim_decoded), sim_payload);
    EXPECT_EQ(sim_decoded->render(), sim.render());

    TransferabilityConfig config;
    config.bootstrapReplicates = 50;
    config.modelName = "mini";
    config.targetName = "mini.test";
    const auto report = assessTransferability(
        model.tree, model.train, model.test, config);
    const std::string report_payload = encodeTransferReport(report);
    const auto report_decoded =
        decodeTransferReport(report_payload);
    ASSERT_TRUE(report_decoded.has_value());
    EXPECT_EQ(encodeTransferReport(*report_decoded), report_payload);
    EXPECT_EQ(report_decoded->render(), report.render());
    EXPECT_FALSE(decodeTransferReport("junk").has_value());
}

TEST(StageRunTest, WarmStagesHitAndMatchColdBytes)
{
    const TempDir dir("warm");
    const SuiteProfile suite = miniSuite();
    const CollectionConfig config = miniConfig();
    const SuiteModelConfig model_config = miniModelConfig();
    const std::uint64_t collect_key = collectStageKey(suite, config);

    std::string cold_bytes;
    {
        pipeline::Pipeline pipe{ArtifactStore(dir.path.string())};
        const SuiteData data = collectStage(pipe, suite, config);
        const SuiteModel model =
            trainStage(pipe, data, collect_key, model_config);
        EXPECT_FALSE(pipe.allCached());
        EXPECT_EQ(pipe.cachedCount(), 0u);
        cold_bytes = encodeSuiteData(data) + encodeSuiteModel(model);

        // The train stage also publishes the tree text for serving.
        std::ostringstream text;
        writeModelTree(model.tree, text);
        const ArtifactId mtree_id{
            "mtree", modelTreeContentKey(text.str())};
        ASSERT_TRUE(pipe.store().contains(mtree_id));
        const auto stored = pipe.store().load(mtree_id);
        ASSERT_TRUE(stored.has_value());
        EXPECT_EQ(*stored, text.str());
    }
    {
        pipeline::Pipeline pipe{ArtifactStore(dir.path.string())};
        const SuiteData data = collectStage(pipe, suite, config);
        const SuiteModel model =
            trainStage(pipe, data, collect_key, model_config);
        // One run per collect shard (3 benchmarks x 1 shard) + train.
        EXPECT_TRUE(pipe.allCached());
        EXPECT_EQ(pipe.cachedCount(), 4u);
        EXPECT_EQ(encodeSuiteData(data) + encodeSuiteModel(model),
                  cold_bytes);
        const std::string report = pipe.renderReport();
        EXPECT_NE(report.find("cache hits: 4/4"), std::string::npos)
            << report;
    }
}

TEST(StageRunTest, CorruptArtifactRecomputesAndRepairs)
{
    const TempDir dir("repair");
    const SuiteProfile suite = miniSuite();
    const CollectionConfig config = miniConfig();
    const ArtifactStore store(dir.path.string());
    const ArtifactId id = collectShardArtifacts(suite, config)[0];

    std::string first_payload;
    {
        pipeline::Pipeline pipe{store};
        collectStage(pipe, suite, config);
        first_payload = *store.load(id);
    }

    // Flip a payload bit in the cached artifact.
    std::string bytes;
    {
        std::ifstream in(store.path(id), std::ios::binary);
        std::stringstream buf;
        buf << in.rdbuf();
        bytes = buf.str();
    }
    bytes[bytes.size() / 2] ^= 0x04;
    {
        std::ofstream out(store.path(id),
                          std::ios::binary | std::ios::trunc);
        out << bytes;
    }
    EXPECT_FALSE(store.load(id).has_value());

    // The stage re-collects exactly that shard (a miss; the other
    // shards stay hits), repairs the file, and still returns the
    // right data. Shard runs are recorded in deterministic task
    // order, so the corrupted shard is the first run.
    pipeline::Pipeline pipe{store};
    collectStage(pipe, suite, config);
    EXPECT_FALSE(pipe.runs().front().cached);
    EXPECT_EQ(pipe.cachedCount(), pipe.runs().size() - 1);
    const auto repaired = store.load(id);
    ASSERT_TRUE(repaired.has_value());
    EXPECT_EQ(*repaired, first_payload);
}

TEST(StageRunTest, DisabledStoreStillComputes)
{
    pipeline::Pipeline pipe; // no store
    const SuiteData direct = collectSuite(miniSuite(), miniConfig());
    const SuiteData staged =
        collectStage(pipe, miniSuite(), miniConfig());
    EXPECT_EQ(encodeSuiteData(staged), encodeSuiteData(direct));
    EXPECT_FALSE(pipe.runs().empty());
    EXPECT_FALSE(pipe.allCached());
}

/** A scaled-down protocol keeping plan tests inside ctest budgets. */
pipeline::PlanProtocol
tinyProtocol()
{
    pipeline::PlanProtocol protocol;
    protocol.collection.intervalInstructions = 2048;
    protocol.collection.baseIntervals = 12;
    protocol.collection.warmupInstructions = 20'000;
    return protocol;
}

TEST(PlanTest, NamesAreStable)
{
    for (const char *name :
         {"cpu2006", "omp2001", "transfer", "full"})
        EXPECT_TRUE(pipeline::isPlanName(name)) << name;
    EXPECT_FALSE(pipeline::isPlanName("spec95"));
    EXPECT_EQ(pipeline::planNames().size(), 4u);
}

TEST(PlanTest, ColdAndWarmRunsAreByteIdentical)
{
    const TempDir dir("plan");
    const pipeline::PlanProtocol protocol = tinyProtocol();

    std::ostringstream cold;
    pipeline::Pipeline cold_pipe{ArtifactStore(dir.path.string())};
    pipeline::runPlan(cold_pipe, "omp2001", protocol, cold);
    EXPECT_FALSE(cold_pipe.allCached());

    std::ostringstream warm;
    pipeline::Pipeline warm_pipe{ArtifactStore(dir.path.string())};
    pipeline::runPlan(warm_pipe, "omp2001", protocol, warm);
    EXPECT_TRUE(warm_pipe.allCached());
    EXPECT_EQ(warm_pipe.cachedCount(), warm_pipe.runs().size());
    EXPECT_EQ(warm.str(), cold.str());

    // Uncached execution agrees byte-for-byte with both.
    std::ostringstream fresh;
    pipeline::Pipeline fresh_pipe;
    pipeline::runPlan(fresh_pipe, "omp2001", protocol, fresh);
    EXPECT_EQ(fresh.str(), cold.str());
}

TEST(PlanTest, GcFromPlanArtifactsKeepsThePlanWarm)
{
    const TempDir dir("gc");
    const pipeline::PlanProtocol protocol = tinyProtocol();
    const ArtifactStore store(dir.path.string());

    std::ostringstream cold;
    pipeline::Pipeline pipe{store};
    pipeline::runPlan(pipe, "omp2001", protocol, cold);

    // Garbage: an artifact no plan references.
    ASSERT_TRUE(store.store({"train", 0xdead}, "stale"));

    const auto live =
        pipeline::planArtifacts("omp2001", protocol, store);
    EXPECT_GE(live.size(), pipe.runs().size());
    const auto removed = store.gc(live);
    ASSERT_EQ(removed.size(), 1u);
    EXPECT_EQ(removed[0].kind, "train");
    EXPECT_EQ(removed[0].key, 0xdeadu);

    // Everything the plan needs survived: the re-run is all hits and
    // byte-identical.
    std::ostringstream warm;
    pipeline::Pipeline warm_pipe{store};
    pipeline::runPlan(warm_pipe, "omp2001", protocol, warm);
    EXPECT_TRUE(warm_pipe.allCached());
    EXPECT_EQ(warm.str(), cold.str());
}

} // namespace
} // namespace wct
