/**
 * @file
 * Tests of the content-addressed artifact store (data/artifact_store):
 * the key builder, hex round trips, store/load semantics under
 * corruption and mismatch, concurrent writers, and gc liveness.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include <unistd.h>

#include "data/artifact_store.hh"

namespace wct
{
namespace
{

namespace fs = std::filesystem;

/** Fresh scratch directory, removed on scope exit. */
struct TempDir
{
    fs::path path;

    explicit TempDir(const std::string &tag)
        : path(fs::temp_directory_path() /
               ("wct_store_test_" + tag + "_" +
                std::to_string(::getpid())))
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }

    ~TempDir() { fs::remove_all(path); }
};

std::string
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

void
writeFileBytes(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
}

TEST(KeyBuilderTest, EachAppendedFieldChangesTheKey)
{
    const auto base = [] {
        KeyBuilder key;
        key.str("collect").u32(7).u64(42).f64(1.5).u8(1).bytes("xy");
        return key.key();
    }();

    {
        KeyBuilder key;
        key.str("train").u32(7).u64(42).f64(1.5).u8(1).bytes("xy");
        EXPECT_NE(key.key(), base);
    }
    {
        KeyBuilder key;
        key.str("collect").u32(8).u64(42).f64(1.5).u8(1).bytes("xy");
        EXPECT_NE(key.key(), base);
    }
    {
        KeyBuilder key;
        key.str("collect").u32(7).u64(43).f64(1.5).u8(1).bytes("xy");
        EXPECT_NE(key.key(), base);
    }
    {
        KeyBuilder key;
        key.str("collect").u32(7).u64(42).f64(1.5 + 1e-12).u8(1)
            .bytes("xy");
        EXPECT_NE(key.key(), base);
    }
    {
        KeyBuilder key;
        key.str("collect").u32(7).u64(42).f64(1.5).u8(0).bytes("xy");
        EXPECT_NE(key.key(), base);
    }
    {
        KeyBuilder key;
        key.str("collect").u32(7).u64(42).f64(1.5).u8(1).bytes("xz");
        EXPECT_NE(key.key(), base);
    }
    // Same inputs -> same key (a pure function).
    {
        KeyBuilder key;
        key.str("collect").u32(7).u64(42).f64(1.5).u8(1).bytes("xy");
        EXPECT_EQ(key.key(), base);
    }
}

TEST(KeyBuilderTest, NegativeZeroHashesLikePositiveZero)
{
    // f64 canonicalizes -0.0 so equal configs can't key apart.
    KeyBuilder plus, minus;
    plus.f64(0.0);
    minus.f64(-0.0);
    EXPECT_EQ(plus.key(), minus.key());
}

TEST(KeyHexTest, RoundTripsAndRejectsMalformedInput)
{
    for (const std::uint64_t key :
         {0ull, 1ull, 0xdeadbeefcafef00dull, ~0ull}) {
        const std::string hex = keyHex(key);
        EXPECT_EQ(hex.size(), 16u);
        const auto parsed = parseKeyHex(hex);
        ASSERT_TRUE(parsed.has_value()) << hex;
        EXPECT_EQ(*parsed, key);
    }
    EXPECT_FALSE(parseKeyHex("").has_value());
    EXPECT_FALSE(parseKeyHex("abc").has_value());
    EXPECT_FALSE(parseKeyHex("00000000000000000").has_value());
    EXPECT_FALSE(parseKeyHex("000000000000000g").has_value());
    EXPECT_FALSE(parseKeyHex("0X00000000000000").has_value());
}

TEST(ArtifactStoreTest, StoreLoadRoundTrip)
{
    const TempDir dir("roundtrip");
    const ArtifactStore store(dir.path.string());
    const ArtifactId id{"collect", 0x1234abcd5678ef90ull};
    const std::string payload = "suite bytes \x00\x01\x02 end";

    EXPECT_FALSE(store.contains(id));
    EXPECT_FALSE(store.load(id).has_value());
    ASSERT_TRUE(store.store(id, payload));
    EXPECT_TRUE(store.contains(id));
    const auto loaded = store.load(id);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(*loaded, payload);
    EXPECT_EQ(fs::path(store.path(id)).filename().string(),
              "collect-1234abcd5678ef90.wctart");
}

TEST(ArtifactStoreTest, DisabledStoreDropsEverything)
{
    const ArtifactStore store;
    const ArtifactId id{"collect", 7};
    EXPECT_FALSE(store.enabled());
    EXPECT_FALSE(store.store(id, "payload"));
    EXPECT_FALSE(store.load(id).has_value());
    EXPECT_FALSE(store.contains(id));
    EXPECT_TRUE(store.list().empty());
    EXPECT_TRUE(store.gc({}).empty());
}

TEST(ArtifactStoreTest, CorruptArtifactLoadsAsNullopt)
{
    const TempDir dir("corrupt");
    const ArtifactStore store(dir.path.string());
    const ArtifactId id{"train", 99};
    ASSERT_TRUE(store.store(id, "some payload bytes"));

    std::string bytes = readFileBytes(store.path(id));
    bytes[bytes.size() / 2] ^= 0x10;
    writeFileBytes(store.path(id), bytes);

    EXPECT_TRUE(store.contains(id));
    EXPECT_FALSE(store.load(id).has_value());

    // The caller's recompute path overwrites the bad entry.
    ASSERT_TRUE(store.store(id, "some payload bytes"));
    EXPECT_TRUE(store.load(id).has_value());
}

TEST(ArtifactStoreTest, TruncatedArtifactLoadsAsNullopt)
{
    const TempDir dir("truncated");
    const ArtifactStore store(dir.path.string());
    const ArtifactId id{"train", 100};
    ASSERT_TRUE(store.store(id, "a payload long enough to truncate"));
    const std::string bytes = readFileBytes(store.path(id));
    writeFileBytes(store.path(id), bytes.substr(0, bytes.size() / 2));
    EXPECT_FALSE(store.load(id).has_value());
}

TEST(ArtifactStoreTest, RenamedArtifactIsAMismatch)
{
    // The payload embeds its own (kind, key): copying a valid file
    // under another id must not serve the wrong content.
    const TempDir dir("renamed");
    const ArtifactStore store(dir.path.string());
    const ArtifactId id{"profile", 1};
    const ArtifactId other{"profile", 2};
    ASSERT_TRUE(store.store(id, "profile one"));
    fs::copy_file(store.path(id), store.path(other));
    EXPECT_TRUE(store.contains(other));
    EXPECT_FALSE(store.load(other).has_value());

    const ArtifactId cross{"train", 1}; // same key, other kind
    fs::copy_file(store.path(id), store.path(cross));
    EXPECT_FALSE(store.load(cross).has_value());
}

TEST(ArtifactStoreTest, OversizedClaimedPayloadRejected)
{
    // A hostile length prefix must be rejected before any allocation
    // of kMaxFilePayload-scale buffers.
    const TempDir dir("oversize");
    const ArtifactStore store(dir.path.string());
    const ArtifactId id{"collect", 5};
    ASSERT_TRUE(store.store(id, "tiny"));

    std::string bytes = readFileBytes(store.path(id));
    // Envelope layout: magic8 + version4 + payloadSize8 (LE).
    ASSERT_GT(bytes.size(), 20u);
    for (int i = 0; i < 8; ++i)
        bytes[12 + i] = static_cast<char>(0xff);
    writeFileBytes(store.path(id), bytes);
    EXPECT_FALSE(store.load(id).has_value());
}

TEST(ArtifactStoreTest, ConcurrentWritersOfTheSameKeyAreSafe)
{
    const TempDir dir("concurrent");
    const ArtifactStore store(dir.path.string());
    const ArtifactId id{"collect", 0xc0ffee};
    const std::string payload(4096, 'x');

    std::vector<std::thread> writers;
    for (int t = 0; t < 8; ++t)
        writers.emplace_back([&] {
            for (int rep = 0; rep < 20; ++rep)
                EXPECT_TRUE(store.store(id, payload));
        });
    for (std::thread &w : writers)
        w.join();

    const auto loaded = store.load(id);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(*loaded, payload);
    // No stray temp files survive the rename dance.
    EXPECT_EQ(store.list().size(), 1u);
    std::size_t entries = 0;
    for (const auto &entry : fs::directory_iterator(dir.path)) {
        (void)entry;
        ++entries;
    }
    EXPECT_EQ(entries, 1u);
}

TEST(ArtifactStoreTest, ListReportsEveryArtifactSorted)
{
    const TempDir dir("list");
    const ArtifactStore store(dir.path.string());
    ASSERT_TRUE(store.store({"train", 2}, "bb"));
    ASSERT_TRUE(store.store({"collect", 1}, "a"));
    ASSERT_TRUE(store.store({"collect", 3}, "ccc"));

    const auto artifacts = store.list();
    ASSERT_EQ(artifacts.size(), 3u);
    EXPECT_EQ(artifacts[0].id.kind, "collect");
    EXPECT_EQ(artifacts[0].id.key, 1u);
    EXPECT_EQ(artifacts[1].id.kind, "collect");
    EXPECT_EQ(artifacts[1].id.key, 3u);
    EXPECT_EQ(artifacts[2].id.kind, "train");
    EXPECT_EQ(artifacts[2].id.key, 2u);
    for (const ArtifactInfo &info : artifacts)
        EXPECT_GT(info.fileBytes, 0u);
}

TEST(ArtifactStoreTest, RemoveDeletesExactlyOneArtifact)
{
    const TempDir dir("remove");
    const ArtifactStore store(dir.path.string());
    ASSERT_TRUE(store.store({"collect", 1}, "a"));
    ASSERT_TRUE(store.store({"collect", 2}, "b"));
    EXPECT_TRUE(store.remove({"collect", 1}));
    EXPECT_FALSE(store.remove({"collect", 1}));
    EXPECT_FALSE(store.contains({"collect", 1}));
    EXPECT_TRUE(store.contains({"collect", 2}));
}

TEST(ArtifactStoreTest, GcNeverDeletesLiveArtifacts)
{
    const TempDir dir("gc");
    const ArtifactStore store(dir.path.string());
    ASSERT_TRUE(store.store({"collect", 1}, "live collect"));
    ASSERT_TRUE(store.store({"train", 2}, "live train"));
    ASSERT_TRUE(store.store({"train", 3}, "dead train"));
    ASSERT_TRUE(store.store({"mtree", 4}, "dead tree"));
    // A stale temp file from a crashed writer is garbage too.
    writeFileBytes((dir.path / "collect-0000000000000001.wctart.1.2"
                               ".tmp")
                       .string(),
                   "half-written");
    // A non-store file is never touched.
    writeFileBytes((dir.path / "README.txt").string(), "keep me");

    const std::vector<ArtifactId> live = {{"collect", 1},
                                          {"train", 2}};
    const auto removed = store.gc(live);
    EXPECT_EQ(removed.size(), 2u);
    EXPECT_TRUE(store.contains({"collect", 1}));
    EXPECT_TRUE(store.contains({"train", 2}));
    EXPECT_FALSE(store.contains({"train", 3}));
    EXPECT_FALSE(store.contains({"mtree", 4}));
    EXPECT_TRUE(fs::exists(dir.path / "README.txt"));
    bool tmp_left = false;
    for (const auto &entry : fs::directory_iterator(dir.path))
        if (entry.path().extension() == ".tmp")
            tmp_left = true;
    EXPECT_FALSE(tmp_left);

    // gc of an already-clean store removes nothing.
    EXPECT_TRUE(store.gc(live).empty());
}

TEST(ArtifactStoreTest, GcGraceProtectsFreshlyPublishedArtifacts)
{
    // Regression for the fleet race: liveness is computed before the
    // sweep, so an artifact published in between (another worker
    // mid-run) looks dead. With a grace window, anything younger
    // than the window survives even when it is not in the live set.
    const TempDir dir("grace");
    const ArtifactStore store(dir.path.string());
    ASSERT_TRUE(store.store({"collect-shard", 1}, "just published"));
    ASSERT_TRUE(store.store({"train", 2}, "also fresh"));
    // A fresh temp file from an in-flight writer is protected too.
    writeFileBytes(
        (dir.path / "train-0000000000000002.wctart.9.9.tmp").string(),
        "half-written");

    // Everything is seconds old: a one-hour grace removes nothing,
    // even with an empty live set.
    EXPECT_TRUE(store.gc({}, 3600).empty());
    EXPECT_TRUE(store.contains({"collect-shard", 1}));
    EXPECT_TRUE(store.contains({"train", 2}));
    bool tmp_left = false;
    for (const auto &entry : fs::directory_iterator(dir.path))
        if (entry.path().extension() == ".tmp")
            tmp_left = true;
    EXPECT_TRUE(tmp_left);

    // Grace zero still sweeps files written before the call began.
    const auto removed = store.gc({}, 0);
    EXPECT_EQ(removed.size(), 2u);
    EXPECT_FALSE(store.contains({"collect-shard", 1}));
    tmp_left = false;
    for (const auto &entry : fs::directory_iterator(dir.path))
        if (entry.path().extension() == ".tmp")
            tmp_left = true;
    EXPECT_FALSE(tmp_left);
}

TEST(ArtifactStoreTest, HostileKindsNeverBecomeFileNames)
{
    // Kinds become path components: the store refuses anything that
    // could escape its directory, on write and on the helpers alike.
    const TempDir dir("kinds");
    const ArtifactStore store(dir.path.string());
    EXPECT_TRUE(validArtifactKind("collect-shard"));
    EXPECT_TRUE(validArtifactKind("mtree_v2"));
    EXPECT_FALSE(validArtifactKind(""));
    EXPECT_FALSE(validArtifactKind("../../etc/passwd"));
    EXPECT_FALSE(validArtifactKind("a/b"));
    EXPECT_FALSE(validArtifactKind(std::string(65, 'k')));
    EXPECT_FALSE(validArtifactKind(std::string("nul\0byte", 8)));

    EXPECT_FALSE(store.store({"../escape", 1}, "payload"));
    EXPECT_TRUE(fs::is_empty(dir.path));
}

} // namespace
} // namespace wct
