/**
 * @file
 * Tests for the workload source: determinism, mix recovery, flag
 * rates, address structure, and phase switching.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "workload/source.hh"
#include "workload/suites.hh"

namespace wct
{
namespace
{

BenchmarkProfile
simpleBench()
{
    BenchmarkProfile b;
    b.name = "unit.bench";
    PhaseProfile p;
    p.name = "only";
    p.loadFrac = 0.3;
    p.storeFrac = 0.1;
    p.branchFrac = 0.2;
    p.mulFrac = 0.05;
    p.divFrac = 0.02;
    p.simdFrac = 0.08;
    b.phases = {p};
    return b;
}

TEST(SourceTest, DeterministicForSameSeed)
{
    WorkloadSource a(simpleBench(), 99);
    WorkloadSource b(simpleBench(), 99);
    for (int i = 0; i < 5000; ++i) {
        const Inst x = a.next();
        const Inst y = b.next();
        ASSERT_EQ(x.pc, y.pc);
        ASSERT_EQ(x.addr, y.addr);
        ASSERT_EQ(static_cast<int>(x.cls), static_cast<int>(y.cls));
        ASSERT_EQ(x.flags, y.flags);
    }
}

TEST(SourceTest, DifferentSeedsDiffer)
{
    WorkloadSource a(simpleBench(), 1);
    WorkloadSource b(simpleBench(), 2);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += a.next().addr == b.next().addr;
    EXPECT_LT(same, 900);
}

TEST(SourceTest, MixFractionsRecovered)
{
    WorkloadSource src(simpleBench(), 7);
    std::map<InstClass, int> counts;
    constexpr int n = 200000;
    for (int i = 0; i < n; ++i)
        ++counts[src.next().cls];
    EXPECT_NEAR(counts[InstClass::Load] / double(n), 0.30, 0.01);
    EXPECT_NEAR(counts[InstClass::Store] / double(n), 0.10, 0.01);
    EXPECT_NEAR(counts[InstClass::Branch] / double(n), 0.20, 0.01);
    EXPECT_NEAR(counts[InstClass::Mul] / double(n), 0.05, 0.005);
    EXPECT_NEAR(counts[InstClass::Div] / double(n), 0.02, 0.005);
    EXPECT_NEAR(counts[InstClass::Simd] / double(n), 0.08, 0.01);
    EXPECT_NEAR(counts[InstClass::Alu] / double(n), 0.25, 0.01);
}

TEST(SourceTest, MemoryOpsHaveAddressesOthersDoNot)
{
    WorkloadSource src(simpleBench(), 8);
    for (int i = 0; i < 20000; ++i) {
        const Inst inst = src.next();
        if (inst.isMemory()) {
            EXPECT_NE(inst.addr, 0u);
            EXPECT_GT(inst.size, 0);
        } else {
            EXPECT_EQ(inst.addr, 0u);
        }
    }
}

TEST(SourceTest, AddressesStayWithinFootprintRegion)
{
    auto b = simpleBench();
    b.phases[0].dataFootprint = 1 << 20;
    b.phases[0].streamFrac = 0.4;
    b.phases[0].overlapFrac = 0.0;
    b.phases[0].aliasFrac = 0.0;
    b.phases[0].misalignFrac = 0.0;
    b.phases[0].splitFrac = 0.0;
    WorkloadSource src(b, 9);
    for (int i = 0; i < 50000; ++i) {
        const Inst inst = src.next();
        if (!inst.isMemory())
            continue;
        // All addresses land in the benchmark's data segment, within
        // footprint of a phase-local base.
        EXPECT_GE(inst.addr, 0x100000000ull);
        EXPECT_LT(inst.addr, 0x100000000ull + (1ull << 30) + (1 << 20));
    }
}

TEST(SourceTest, PointerChaseFlagRate)
{
    auto b = simpleBench();
    b.phases[0].pointerChaseFrac = 0.5;
    b.phases[0].streamFrac = 0.0;
    WorkloadSource src(b, 10);
    int loads = 0, chases = 0;
    for (int i = 0; i < 100000; ++i) {
        const Inst inst = src.next();
        if (inst.cls == InstClass::Load) {
            ++loads;
            chases += inst.dependent();
        }
    }
    EXPECT_NEAR(chases / double(loads), 0.5, 0.02);
}

TEST(SourceTest, SlowStoreFlagRates)
{
    auto b = simpleBench();
    b.phases[0].slowStoreAddrFrac = 0.3;
    b.phases[0].slowStoreDataFrac = 0.6;
    WorkloadSource src(b, 11);
    int stores = 0, slow_addr = 0, slow_data = 0;
    for (int i = 0; i < 200000; ++i) {
        const Inst inst = src.next();
        if (inst.cls == InstClass::Store) {
            ++stores;
            slow_addr += inst.slowAddress();
            slow_data += inst.slowData();
        }
    }
    EXPECT_NEAR(slow_addr / double(stores), 0.3, 0.02);
    EXPECT_NEAR(slow_data / double(stores), 0.6, 0.02);
}

TEST(SourceTest, OverlapLoadsTargetRecentStores)
{
    auto b = simpleBench();
    b.phases[0].overlapFrac = 1.0; // every load overlaps
    WorkloadSource src(b, 12);
    std::uint64_t last_store = 0;
    int checked = 0;
    for (int i = 0; i < 5000 && checked < 500; ++i) {
        const Inst inst = src.next();
        if (inst.cls == InstClass::Store) {
            last_store = inst.addr;
        } else if (inst.cls == InstClass::Load && last_store != 0) {
            // Overlap loads alias the latest store one page away.
            EXPECT_TRUE(inst.addr == last_store - 4096 ||
                        inst.addr == last_store + 4096);
            EXPECT_EQ(inst.addr & 0xFFF, last_store & 0xFFF);
            ++checked;
        }
    }
    EXPECT_GT(checked, 100);
}

TEST(SourceTest, AliasLoadsShareStoreOffset)
{
    auto b = simpleBench();
    b.phases[0].overlapFrac = 0.0;
    b.phases[0].aliasFrac = 1.0;
    WorkloadSource src(b, 13);
    std::uint64_t last_store = 0;
    int checked = 0;
    for (int i = 0; i < 5000 && checked < 500; ++i) {
        const Inst inst = src.next();
        if (inst.cls == InstClass::Store) {
            last_store = inst.addr;
        } else if (inst.cls == InstClass::Load && last_store != 0) {
            EXPECT_EQ(inst.addr & 0xFFF, last_store & 0xFFF);
            EXPECT_NE(inst.addr, last_store);
            ++checked;
        }
    }
    EXPECT_GT(checked, 100);
}

TEST(SourceTest, SplitFracPlacesLineCrossers)
{
    auto b = simpleBench();
    b.phases[0].splitFrac = 1.0;
    WorkloadSource src(b, 14);
    for (int i = 0; i < 10000; ++i) {
        const Inst inst = src.next();
        if (!inst.isMemory())
            continue;
        const std::uint64_t first_line = inst.addr / 64;
        const std::uint64_t last_line = (inst.addr + inst.size - 1) / 64;
        EXPECT_NE(first_line, last_line);
    }
}

TEST(SourceTest, StreamAddressesAreSequential)
{
    auto b = simpleBench();
    b.phases[0].streamFrac = 1.0;
    b.phases[0].loadFrac = 1.0;
    b.phases[0].storeFrac = 0.0;
    b.phases[0].branchFrac = 0.0;
    b.phases[0].mulFrac = 0.0;
    b.phases[0].divFrac = 0.0;
    b.phases[0].simdFrac = 0.0;
    b.phases[0].overlapFrac = 0.0;
    b.phases[0].aliasFrac = 0.0;
    WorkloadSource src(b, 15);
    std::uint64_t prev = src.next().addr;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t addr = src.next().addr;
        EXPECT_EQ(addr, prev + 8);
        prev = addr;
    }
}

TEST(SourceTest, PhaseSwitchingVisitsAllPhases)
{
    BenchmarkProfile b = simpleBench();
    b.phaseRunLength = 100;
    PhaseProfile second = b.phases[0];
    second.name = "second";
    second.weight = 1.0;
    b.phases.push_back(second);
    WorkloadSource src(b, 16);
    std::set<std::size_t> seen;
    for (int i = 0; i < 20000; ++i) {
        src.next();
        seen.insert(src.currentPhase());
    }
    EXPECT_EQ(seen.size(), 2u);
}

TEST(SourceTest, PhaseWeightsRespected)
{
    BenchmarkProfile b = simpleBench();
    b.phaseRunLength = 50;
    PhaseProfile second = b.phases[0];
    second.name = "second";
    b.phases.push_back(second);
    b.phases[0].weight = 3.0;
    b.phases[1].weight = 1.0;
    WorkloadSource src(b, 17);
    std::map<std::size_t, int> counts;
    constexpr int n = 300000;
    for (int i = 0; i < n; ++i) {
        src.next();
        ++counts[src.currentPhase()];
    }
    EXPECT_NEAR(counts[0] / double(n), 0.75, 0.05);
}

TEST(SourceTest, GeneratedCounterAdvances)
{
    WorkloadSource src(simpleBench(), 18);
    EXPECT_EQ(src.generated(), 0u);
    for (int i = 0; i < 10; ++i)
        src.next();
    EXPECT_EQ(src.generated(), 10u);
}

TEST(SourceTest, BranchTakenRateReasonable)
{
    auto b = simpleBench();
    b.phases[0].branchEntropy = 0.0;
    WorkloadSource src(b, 19);
    int branches = 0, taken = 0;
    for (int i = 0; i < 100000; ++i) {
        const Inst inst = src.next();
        if (inst.cls == InstClass::Branch) {
            ++branches;
            taken += inst.taken();
        }
    }
    // Static sites are biased toward taken (loop back-edges).
    const double rate = taken / double(branches);
    EXPECT_GT(rate, 0.6);
    EXPECT_LT(rate, 0.99);
}

// Sweep all built-in benchmarks through a smoke generation run.
class SuiteSourceSweep
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SuiteSourceSweep, GeneratesValidStream)
{
    const SuiteProfile &suite = GetParam() == "cpu"
        ? specCpu2006() : specOmp2001();
    for (const auto &bench : suite.benchmarks) {
        WorkloadSource src(bench, 42);
        for (int i = 0; i < 5000; ++i) {
            const Inst inst = src.next();
            if (inst.isMemory()) {
                ASSERT_NE(inst.addr, 0u) << bench.name;
                ASSERT_GT(inst.size, 0) << bench.name;
            }
            ASSERT_NE(inst.pc, 0u) << bench.name;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Suites, SuiteSourceSweep,
                         ::testing::Values("cpu", "omp"));

} // namespace
} // namespace wct
