/**
 * @file
 * Unit tests for benchmark profiles, validation, and the suite
 * registry.
 */

#include <gtest/gtest.h>

#include <set>

#include "workload/suites.hh"

namespace wct
{
namespace
{

BenchmarkProfile
minimalProfile()
{
    BenchmarkProfile b;
    b.name = "test.bench";
    b.phases.push_back(PhaseProfile{});
    return b;
}

TEST(ProfileValidationTest, DefaultPhaseIsValid)
{
    validateProfile(minimalProfile());
}

TEST(ProfileValidationTest, RejectsEmptyName)
{
    auto b = minimalProfile();
    b.name.clear();
    EXPECT_EXIT(validateProfile(b), ::testing::ExitedWithCode(1),
                "without a name");
}

TEST(ProfileValidationTest, RejectsNoPhases)
{
    auto b = minimalProfile();
    b.phases.clear();
    EXPECT_EXIT(validateProfile(b), ::testing::ExitedWithCode(1),
                "no phases");
}

TEST(ProfileValidationTest, RejectsOverfullMix)
{
    auto b = minimalProfile();
    b.phases[0].loadFrac = 0.6;
    b.phases[0].storeFrac = 0.6;
    EXPECT_EXIT(validateProfile(b), ::testing::ExitedWithCode(1),
                "mix sums");
}

TEST(ProfileValidationTest, RejectsOutOfRangeFraction)
{
    auto b = minimalProfile();
    b.phases[0].hotFrac = 1.5;
    EXPECT_EXIT(validateProfile(b), ::testing::ExitedWithCode(1),
                "hotFrac");
}

TEST(ProfileValidationTest, RejectsHotLargerThanFootprint)
{
    auto b = minimalProfile();
    b.phases[0].dataFootprint = 1024;
    b.phases[0].hotBytes = 2048;
    EXPECT_EXIT(validateProfile(b), ::testing::ExitedWithCode(1),
                "hotBytes");
}

TEST(ProfileValidationTest, RejectsBadAccessSize)
{
    auto b = minimalProfile();
    b.phases[0].accessSize = 6;
    EXPECT_EXIT(validateProfile(b), ::testing::ExitedWithCode(1),
                "access size");
}

TEST(ProfileValidationTest, RejectsZeroPhaseWeights)
{
    auto b = minimalProfile();
    b.phases[0].weight = 0.0;
    EXPECT_EXIT(validateProfile(b), ::testing::ExitedWithCode(1),
                "weights sum to zero");
}

TEST(SuiteTest, Cpu2006HasTwentyNineBenchmarks)
{
    const SuiteProfile &suite = specCpu2006();
    EXPECT_EQ(suite.name, "SPEC CPU2006");
    EXPECT_EQ(suite.benchmarks.size(), 29u);
}

TEST(SuiteTest, Omp2001HasElevenBenchmarks)
{
    const SuiteProfile &suite = specOmp2001();
    EXPECT_EQ(suite.name, "SPEC OMP2001");
    EXPECT_EQ(suite.benchmarks.size(), 11u);
}

TEST(SuiteTest, AllBenchmarkNamesUnique)
{
    for (const SuiteProfile *suite :
         {&specCpu2006(), &specOmp2001()}) {
        std::set<std::string> names;
        for (const auto &b : suite->benchmarks)
            EXPECT_TRUE(names.insert(b.name).second)
                << "duplicate " << b.name;
    }
}

TEST(SuiteTest, Cpu2006IntegerFloatSplit)
{
    int integer = 0;
    for (const auto &b : specCpu2006().benchmarks)
        integer += b.integer;
    // 12 integer and 17 floating point benchmarks, as released.
    EXPECT_EQ(integer, 12);
}

TEST(SuiteTest, PaperNamedBenchmarksPresent)
{
    const SuiteProfile &cpu = specCpu2006();
    for (const char *name :
         {"429.mcf", "456.hmmer", "444.namd", "435.gromacs",
          "454.calculix", "447.dealII", "482.sphinx3", "471.omnetpp",
          "470.lbm", "436.cactusADM", "459.GemsFDTD", "473.astar",
          "464.h264ref"}) {
        EXPECT_NO_FATAL_FAILURE(cpu.benchmark(name)) << name;
    }
    const SuiteProfile &omp = specOmp2001();
    for (const char *name :
         {"310.wupwise_m", "312.swim_m", "314.mgrid_m", "316.applu_m",
          "318.galgel_m", "320.equake_m", "324.apsi_m", "326.gafort_m",
          "328.fma3d_m", "330.art_m", "332.ammp_m"}) {
        EXPECT_NO_FATAL_FAILURE(omp.benchmark(name)) << name;
    }
}

TEST(SuiteTest, LookupUnknownBenchmarkIsFatal)
{
    EXPECT_EXIT(specCpu2006().benchmark("999.nope"),
                ::testing::ExitedWithCode(1), "no benchmark");
}

TEST(SuiteTest, SuiteByNameAliases)
{
    EXPECT_EQ(&suiteByName("cpu2006"), &specCpu2006());
    EXPECT_EQ(&suiteByName("SPEC CPU2006"), &specCpu2006());
    EXPECT_EQ(&suiteByName("omp2001"), &specOmp2001());
    EXPECT_EXIT(suiteByName("spec95"), ::testing::ExitedWithCode(1),
                "unknown suite");
}

TEST(SuiteTest, AllWeightsPositive)
{
    for (const SuiteProfile *suite :
         {&specCpu2006(), &specOmp2001()}) {
        for (const auto &b : suite->benchmarks)
            EXPECT_GT(b.instructionWeight, 0.0) << b.name;
    }
}

TEST(SuiteTest, CalibrationIntentMarkers)
{
    // Spot-check that the calibration intent survives edits: mcf
    // chases pointers into a huge footprint; sphinx3 is the split
    // benchmark; lbm and cactusADM are SIMD-dense; fma3d_m and
    // galgel_m carry the overlap+store signature.
    const auto &mcf = specCpu2006().benchmark("429.mcf");
    EXPECT_GT(mcf.phases[0].pointerChaseFrac, 0.3);
    EXPECT_GT(mcf.phases[0].dataFootprint, 100ull << 20);

    const auto &sphinx = specCpu2006().benchmark("482.sphinx3");
    EXPECT_GT(sphinx.phases[0].splitFrac, 0.05);

    for (const char *name : {"470.lbm", "436.cactusADM"}) {
        const auto &b = specCpu2006().benchmark(name);
        EXPECT_GT(b.phases[0].simdFrac, 0.5) << name;
    }

    for (const char *name : {"328.fma3d_m", "318.galgel_m"}) {
        const auto &b = specOmp2001().benchmark(name);
        EXPECT_GT(b.phases[0].overlapFrac, 0.08) << name;
        EXPECT_GT(b.phases[0].storeFrac, 0.12) << name;
    }
}

} // namespace
} // namespace wct
