/**
 * @file
 * Behavioural stand-ins for the 11 SPEC OMP2001 (medium) benchmarks.
 *
 * Section V of the paper finds OMP2001 dominated by loads blocked on
 * overlapping stores (the root split of Figure 2), amplified by high
 * store rates (LM18: 328.fma3d_m, 318.galgel_m) or combined with
 * moderate store rates (LM17: 314.mgrid_m, 332.ammp_m, 324.apsi_m),
 * with a SIMD-dense half of the suite (316.applu_m, 312.swim_m,
 * 320.equake_m, 310.wupwise_m) and two low-pressure outliers
 * (330.art_m low CPI; 326.gafort_m dominated by stores/mispredicts).
 * The shared-array access patterns of OpenMP loops (neighbour tiles
 * written by one iteration and read by the next, page-aligned arrays
 * aliasing at 4 KB) are what the alias/overlap knobs model.
 */

#include "workload/suites.hh"

#include "util/logging.hh"
#include "workload/suite_common.hh"

namespace wct
{

using namespace suite_detail;

namespace
{

BenchmarkProfile
bench(const std::string &name, const std::string &language,
      double weight)
{
    BenchmarkProfile b;
    b.name = name;
    b.language = language;
    b.integer = false; // OMP2001 medium is all numeric code
    b.instructionWeight = weight;
    return b;
}

/** Shared-array update loop with store-overlap exposure. */
PhaseProfile
overlapPhase(const std::string &name, double weight, double overlap,
             double store_frac, std::uint64_t footprint)
{
    PhaseProfile p;
    p.name = name;
    p.weight = weight;
    p.loadFrac = 0.30;
    p.storeFrac = store_frac;
    p.branchFrac = 0.08;
    p.overlapFrac = overlap;
    p.aliasFrac = overlap * 0.4;
    p.dataFootprint = footprint;
    p.hotBytes = 28 * kKiB;
    p.hotFrac = 0.975;
    p.streamFrac = 0.50;
    p.branchEntropy = 0.03;
    p.codeFootprint = 10 * kKiB;
    p.hotCodeBytes = 5 * kKiB;
    p.hotCodeFrac = 0.99;
    return p;
}

BenchmarkProfile
wupwise_m()
{
    auto b = bench("310.wupwise_m", "Fortran", 1.4);
    PhaseProfile zgemm = simdPhase("zgemm", 0.45, 0.40, 24 * kMiB);
    zgemm.mulFrac = 0.06;
    zgemm.hotBytes = 96 * kKiB;
    zgemm.hotFrac = 0.85;
    PhaseProfile gamma = overlapPhase("gamma", 0.35, 0.015, 0.12,
                                      24 * kMiB);
    gamma.slowStoreDataFrac = 0.10;
    PhaseProfile comm = computePhase("reduce", 0.20);
    b.phases = {zgemm, gamma, comm};
    return b;
}

BenchmarkProfile
swim_m()
{
    auto b = bench("312.swim_m", "Fortran", 1.5);
    PhaseProfile calc = simdPhase("calc", 1.0, 0.48, 96 * kMiB);
    calc.streamFrac = 0.85;
    calc.hotFrac = 0.97;
    calc.mulFrac = 0.05;
    b.phases = {calc};
    return b;
}

BenchmarkProfile
mgrid_m()
{
    // Multigrid smoother: each relaxation sweep rereads points the
    // previous statement group just wrote -> LM17 archetype (high
    // LdBlkOlp, moderate stores).
    auto b = bench("314.mgrid_m", "Fortran", 1.3);
    PhaseProfile relax = overlapPhase("relax", 0.85, 0.068, 0.065,
                                      56 * kMiB);
    relax.simdFrac = 0.18;
    relax.loadFrac = 0.32;
    PhaseProfile interp = simdPhase("interp", 0.15, 0.22, 56 * kMiB);
    b.phases = {relax, interp};
    return b;
}

BenchmarkProfile
applu_m()
{
    // SSOR solver: SIMD-dense with heavy multiplies and a working set
    // that defeats the L1 -> the LM16 archetype (CPI ~2 with high
    // SIMD and L1D misses).
    auto b = bench("316.applu_m", "Fortran", 1.2);
    PhaseProfile ssor = simdPhase("ssor", 0.8, 0.62, 48 * kMiB);
    ssor.mulFrac = 0.10;
    ssor.loadFrac = 0.16;
    ssor.storeFrac = 0.07;
    ssor.branchFrac = 0.03;
    ssor.hotBytes = 96 * kKiB;
    ssor.hotFrac = 0.97;
    ssor.streamFrac = 0.40;
    PhaseProfile rhs = overlapPhase("rhs", 0.2, 0.03, 0.08, 48 * kMiB);
    rhs.simdFrac = 0.20;
    b.phases = {ssor, rhs};
    return b;
}

BenchmarkProfile
galgel_m()
{
    // Galerkin FEM with dense update kernels writing then rereading
    // coefficient blocks -> LM18 twin of 328.fma3d_m (overlap stalls
    // amplified by a high store rate).
    auto b = bench("318.galgel_m", "Fortran", 1.1);
    PhaseProfile assemble = overlapPhase("assemble", 1.0, 0.09, 0.145,
                                         40 * kMiB);
    assemble.slowStoreDataFrac = 0.22;
    assemble.slowStoreAddrFrac = 0.05;
    assemble.loadFrac = 0.29;
    b.phases = {assemble};
    return b;
}

BenchmarkProfile
equake_m()
{
    // Sparse FEM earthquake model: short vectors, mispredict-prone
    // indexed gathers, moderate overlap -> dominates LM14.
    auto b = bench("320.equake_m", "C", 1.0);
    PhaseProfile smvp = simdPhase("smvp", 0.6, 0.28, 48 * kMiB);
    smvp.branchFrac = 0.12;
    smvp.branchEntropy = 0.15;
    smvp.hotFrac = 0.97;
    smvp.hotBytes = 48 * kKiB;
    smvp.streamFrac = 0.45;
    PhaseProfile time = overlapPhase("timeint", 0.4, 0.035, 0.09,
                                     48 * kMiB);
    time.branchEntropy = 0.18;
    b.phases = {smvp, time};
    return b;
}

BenchmarkProfile
apsi_m()
{
    auto b = bench("324.apsi_m", "Fortran", 1.2);
    PhaseProfile advect = overlapPhase("advect", 0.8, 0.055, 0.05,
                                       48 * kMiB);
    advect.loadFrac = 0.33;
    advect.simdFrac = 0.10;
    PhaseProfile poisson = overlapPhase("poisson", 0.2, 0.035, 0.06,
                                        48 * kMiB);
    poisson.slowStoreAddrFrac = 0.12;
    b.phases = {advect, poisson};
    return b;
}

BenchmarkProfile
gafort_m()
{
    // Genetic algorithm: store-rich shuffles with unpredictable
    // selection branches, no SIMD, no overlap -> the LM5 outlier.
    auto b = bench("326.gafort_m", "Fortran", 1.0);
    PhaseProfile shuffle = computePhase("shuffle", 0.7);
    shuffle.storeFrac = 0.17;
    shuffle.loadFrac = 0.27;
    shuffle.branchFrac = 0.14;
    shuffle.branchEntropy = 0.15;
    shuffle.dataFootprint = 32 * kMiB;
    shuffle.hotBytes = 40 * kKiB;
    shuffle.hotFrac = 0.99;
    PhaseProfile eval = computePhase("fitness", 0.3);
    eval.mulFrac = 0.06;
    b.phases = {shuffle, eval};
    return b;
}

BenchmarkProfile
fma3d_m()
{
    // Explicit crash FEM: element state written then immediately
    // reread by neighbour elements; the highest store rate in the
    // suite -> LM18 with ~98% concentration (Table IV).
    auto b = bench("328.fma3d_m", "Fortran", 1.2);
    PhaseProfile elements = overlapPhase("elements", 1.0, 0.105, 0.16,
                                         64 * kMiB);
    elements.slowStoreDataFrac = 0.25;
    elements.slowStoreAddrFrac = 0.04;
    elements.loadFrac = 0.30;
    b.phases = {elements};
    return b;
}

BenchmarkProfile
art_m()
{
    // Adaptive resonance network scanning a small resident weight
    // matrix: lowest CPI of the suite, all samples in the low-
    // pressure leaves (LM1..LM4 of Figure 2).
    auto b = bench("330.art_m", "C", 0.9);
    PhaseProfile match = computePhase("f1match", 1.0);
    match.loadFrac = 0.31;
    match.storeFrac = 0.07;
    match.branchFrac = 0.12;
    match.branchEntropy = 0.06;
    match.hotBytes = 20 * kKiB;
    match.hotFrac = 0.99;
    match.dataFootprint = 1 * kMiB;
    match.mulFrac = 0.04;
    b.phases = {match};
    return b;
}

BenchmarkProfile
ammp_m()
{
    auto b = bench("332.ammp_m", "C", 1.1);
    PhaseProfile forces = overlapPhase("mmforces", 0.85, 0.064, 0.06,
                                       48 * kMiB);
    forces.loadFrac = 0.33;
    forces.mulFrac = 0.05;
    PhaseProfile lists = computePhase("nblists", 0.15);
    lists.branchEntropy = 0.12;
    b.phases = {forces, lists};
    return b;
}

} // namespace

const SuiteProfile &
specOmp2001()
{
    static const SuiteProfile suite = [] {
        SuiteProfile s;
        s.name = "SPEC OMP2001";
        s.benchmarks = {
            wupwise_m(), swim_m(),   mgrid_m(), applu_m(),
            galgel_m(),  equake_m(), apsi_m(),  gafort_m(),
            fma3d_m(),   art_m(),    ammp_m(),
        };
        for (const auto &bench_profile : s.benchmarks)
            validateProfile(bench_profile);
        return s;
    }();
    return suite;
}

const SuiteProfile &
suiteByName(const std::string &name)
{
    if (name == "SPEC CPU2006" || name == "cpu2006")
        return specCpu2006();
    if (name == "SPEC OMP2001" || name == "omp2001")
        return specOmp2001();
    wct_fatal("unknown suite '", name, "'");
}

} // namespace wct
