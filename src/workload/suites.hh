/**
 * @file
 * Registry of the built-in synthetic benchmark suites.
 *
 * The profiles are hand-calibrated so each synthetic benchmark
 * reproduces the qualitative behaviour the paper attributes to its
 * SPEC namesake (Sections IV-B and V-B); see DESIGN.md for the
 * substitution rationale and EXPERIMENTS.md for the resulting
 * paper-vs-measured comparison.
 */

#ifndef WCT_WORKLOAD_SUITES_HH
#define WCT_WORKLOAD_SUITES_HH

#include "workload/profile.hh"

namespace wct
{

/** The 29-benchmark SPEC CPU2006 stand-in suite. */
const SuiteProfile &specCpu2006();

/** The 11-benchmark SPEC OMP2001 (medium) stand-in suite. */
const SuiteProfile &specOmp2001();

/** Look up one of the built-in suites by name; fatal when unknown. */
const SuiteProfile &suiteByName(const std::string &name);

} // namespace wct

#endif // WCT_WORKLOAD_SUITES_HH
