/**
 * @file
 * Behavioural profiles for synthetic benchmarks.
 *
 * SPEC CPU2006 and SPEC OMP2001 binaries and their reference inputs
 * are proprietary, so the suites are reproduced as *behavioural
 * profiles*: each benchmark is a mixture of execution phases, and each
 * phase specifies an instruction mix, memory locality structure,
 * store-load interaction rates, and control-flow predictability. The
 * workload source expands a profile into a dynamic instruction stream
 * that the Core2-like machine model executes; all PMU event densities
 * then emerge from genuine structural interactions.
 *
 * Profile parameters are tuned so each synthetic benchmark reproduces
 * the qualitative characteristics the paper reports for its namesake
 * (e.g., 429.mcf's pointer-chasing DTLB/L2 pressure, 470.lbm's SIMD
 * density, 328.fma3d_m's store-overlap stalls); see DESIGN.md.
 */

#ifndef WCT_WORKLOAD_PROFILE_HH
#define WCT_WORKLOAD_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace wct
{

/** One steady-state execution phase of a benchmark. */
struct PhaseProfile
{
    std::string name = "phase";

    /** Relative share of dynamic instructions spent in this phase. */
    double weight = 1.0;

    // ---- Instruction mix (fractions of dynamic instructions; the
    // remainder are plain ALU ops). ----
    double loadFrac = 0.25;
    double storeFrac = 0.10;
    double branchFrac = 0.15;
    double mulFrac = 0.02;
    double divFrac = 0.0;
    double simdFrac = 0.0;

    // ---- Data-side memory behaviour. ----
    /** Total data working set in bytes. */
    std::uint64_t dataFootprint = 1 << 20;

    /** Size of the hot subset frequently revisited. */
    std::uint64_t hotBytes = 64 * 1024;

    /** Probability a random access lands in the hot subset. */
    double hotFrac = 0.9;

    /** Fraction of accesses that stream sequentially. */
    double streamFrac = 0.3;

    /** Fraction of loads that chase pointers (dependent misses). */
    double pointerChaseFrac = 0.0;

    /** Typical access width in bytes (16 for packed SIMD data). */
    std::uint8_t accessSize = 8;

    /** Fraction of accesses made misaligned (within a line). */
    double misalignFrac = 0.0;

    /** Fraction of accesses placed to split a cache line. */
    double splitFrac = 0.0;

    // ---- Store-load interaction. ----
    /** Loads aimed at the 4 KB-offset image of a recent store. */
    double aliasFrac = 0.0;

    /** Loads partially overlapping a recent store. */
    double overlapFrac = 0.0;

    /** Stores whose address resolves late (STA exposure). */
    double slowStoreAddrFrac = 0.0;

    /** Stores whose data arrives late (STD exposure). */
    double slowStoreDataFrac = 0.0;

    // ---- Control flow. ----
    /** Probability a branch outcome is random rather than patterned. */
    double branchEntropy = 0.05;

    /** Taken probability for random outcomes. */
    double takenBias = 0.6;

    // ---- Front end. ----
    /** Total instruction working set in bytes. */
    std::uint64_t codeFootprint = 16 * 1024;

    /** Hot loop body size in bytes (resident inner loops). */
    std::uint64_t hotCodeBytes = 6 * 1024;

    /** Probability an instruction fetches from the hot loop body. */
    double hotCodeFrac = 0.97;

    // ---- Rare events. ----
    /** Fraction of SIMD/ALU ops needing a floating point assist. */
    double fpAssistFrac = 0.0;
};

/** A named benchmark: metadata plus its phase mixture. */
struct BenchmarkProfile
{
    /** SPEC-style name, e.g. "429.mcf" or "328.fma3d_m". */
    std::string name;

    /** Source language recorded by the paper (metadata only). */
    std::string language;

    /** True for integer benchmarks, false for floating point. */
    bool integer = false;

    /**
     * Relative dynamic instruction count; Table II's "Suite" row
     * weights each benchmark's samples by this.
     */
    double instructionWeight = 1.0;

    /** Mean phase run length in instructions (geometric switching). */
    std::uint64_t phaseRunLength = 20000;

    std::vector<PhaseProfile> phases;
};

/** A benchmark suite. */
struct SuiteProfile
{
    std::string name;
    std::vector<BenchmarkProfile> benchmarks;

    /** Find a benchmark by name; fatal when absent. */
    const BenchmarkProfile &benchmark(const std::string &name) const;
};

/**
 * Validate a profile: fractions in range, mixes that sum below one,
 * nonzero footprints. Fatal on violations (profiles are user input).
 */
void validateProfile(const BenchmarkProfile &profile);

} // namespace wct

#endif // WCT_WORKLOAD_PROFILE_HH
