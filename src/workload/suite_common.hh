/**
 * @file
 * Internal helpers shared by the suite profile definitions.
 *
 * The helper phases encode four archetypes; per-benchmark code
 * overrides the knobs that matter. Rough density arithmetic used in
 * tuning (0.42 memory ops per instruction typical):
 *  - cold accesses (uniform over a footprint far beyond the L2/TLB
 *    reach) each cost a DTLB walk and an L2 miss, so a cold fraction
 *    f gives ~0.42 f misses per instruction;
 *  - streams touch a new line every lineBytes/accessSize accesses and
 *    a new page every pageBytes/accessSize accesses;
 *  - hot sets below 32 KB stay L1-resident, a few hundred KB produce
 *    L1D misses that the L2 absorbs.
 */

#ifndef WCT_WORKLOAD_SUITE_COMMON_HH
#define WCT_WORKLOAD_SUITE_COMMON_HH

#include <cstdint>
#include <string>

#include "workload/profile.hh"

namespace wct
{
namespace suite_detail
{

constexpr std::uint64_t kKiB = 1024;
constexpr std::uint64_t kMiB = 1024 * 1024;

/**
 * A cache-friendly compute phase: resident data, predictable
 * branches, negligible memory pressure (the LM1 archetype).
 */
inline PhaseProfile
computePhase(const std::string &name, double weight)
{
    PhaseProfile p;
    p.name = name;
    p.weight = weight;
    p.loadFrac = 0.26;
    p.storeFrac = 0.10;
    p.branchFrac = 0.14;
    p.mulFrac = 0.02;
    p.dataFootprint = 1 * kMiB;
    p.hotBytes = 24 * kKiB;
    p.hotFrac = 0.97;
    p.streamFrac = 0.25;
    p.branchEntropy = 0.04;
    p.codeFootprint = 12 * kKiB;
    p.hotCodeBytes = 6 * kKiB;
    p.hotCodeFrac = 0.985;
    return p;
}

/** A streaming phase sweeping a large array working set. */
inline PhaseProfile
streamPhase(const std::string &name, double weight,
            std::uint64_t footprint)
{
    PhaseProfile p;
    p.name = name;
    p.weight = weight;
    p.loadFrac = 0.30;
    p.storeFrac = 0.12;
    p.branchFrac = 0.10;
    p.dataFootprint = footprint;
    p.hotBytes = 16 * kKiB;
    p.hotFrac = 0.97;
    p.streamFrac = 0.85;
    p.branchEntropy = 0.02;
    p.codeFootprint = 8 * kKiB;
    p.hotCodeBytes = 4 * kKiB;
    p.hotCodeFrac = 0.99;
    return p;
}

/** A pointer-chasing phase over a large irregular heap. */
inline PhaseProfile
chasePhase(const std::string &name, double weight,
           std::uint64_t footprint, double chase_frac)
{
    PhaseProfile p;
    p.name = name;
    p.weight = weight;
    p.loadFrac = 0.34;
    p.storeFrac = 0.08;
    p.branchFrac = 0.18;
    p.dataFootprint = footprint;
    p.hotBytes = 28 * kKiB;
    p.hotFrac = 0.975;
    p.streamFrac = 0.02;
    p.pointerChaseFrac = chase_frac;
    p.branchEntropy = 0.18;
    p.codeFootprint = 16 * kKiB;
    p.hotCodeBytes = 8 * kKiB;
    p.hotCodeFrac = 0.97;
    return p;
}

/** A packed-SIMD kernel phase (16-byte operands). */
inline PhaseProfile
simdPhase(const std::string &name, double weight, double simd_frac,
          std::uint64_t footprint)
{
    PhaseProfile p;
    p.name = name;
    p.weight = weight;
    p.simdFrac = simd_frac;
    p.loadFrac = 0.22;
    p.storeFrac = 0.10;
    p.branchFrac = 0.06;
    p.accessSize = 16;
    p.dataFootprint = footprint;
    p.hotBytes = 64 * kKiB;
    p.hotFrac = 0.97;
    p.streamFrac = 0.75;
    p.branchEntropy = 0.02;
    p.codeFootprint = 6 * kKiB;
    p.hotCodeBytes = 4 * kKiB;
    p.hotCodeFrac = 0.99;
    return p;
}

} // namespace suite_detail
} // namespace wct

#endif // WCT_WORKLOAD_SUITE_COMMON_HH
