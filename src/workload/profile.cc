#include "workload/profile.hh"

#include "util/logging.hh"

namespace wct
{

const BenchmarkProfile &
SuiteProfile::benchmark(const std::string &bench_name) const
{
    for (const auto &bench : benchmarks)
        if (bench.name == bench_name)
            return bench;
    wct_fatal("suite '", name, "' has no benchmark '", bench_name, "'");
}

namespace
{

void
checkFraction(const std::string &where, const char *what, double value)
{
    if (value < 0.0 || value > 1.0)
        wct_fatal(where, ": ", what, " = ", value, " outside [0, 1]");
}

} // namespace

void
validateProfile(const BenchmarkProfile &profile)
{
    if (profile.name.empty())
        wct_fatal("benchmark profile without a name");
    if (profile.phases.empty())
        wct_fatal(profile.name, ": no phases");
    if (profile.phaseRunLength == 0)
        wct_fatal(profile.name, ": zero phase run length");
    if (profile.instructionWeight <= 0.0)
        wct_fatal(profile.name, ": non-positive instruction weight");

    double total_weight = 0.0;
    for (const PhaseProfile &phase : profile.phases) {
        const std::string where = profile.name + "/" + phase.name;
        if (phase.weight < 0.0)
            wct_fatal(where, ": negative phase weight");
        total_weight += phase.weight;

        checkFraction(where, "loadFrac", phase.loadFrac);
        checkFraction(where, "storeFrac", phase.storeFrac);
        checkFraction(where, "branchFrac", phase.branchFrac);
        checkFraction(where, "mulFrac", phase.mulFrac);
        checkFraction(where, "divFrac", phase.divFrac);
        checkFraction(where, "simdFrac", phase.simdFrac);
        const double mix = phase.loadFrac + phase.storeFrac +
            phase.branchFrac + phase.mulFrac + phase.divFrac +
            phase.simdFrac;
        if (mix > 1.0 + 1e-9)
            wct_fatal(where, ": instruction mix sums to ", mix, " > 1");

        checkFraction(where, "hotFrac", phase.hotFrac);
        checkFraction(where, "streamFrac", phase.streamFrac);
        checkFraction(where, "pointerChaseFrac", phase.pointerChaseFrac);
        checkFraction(where, "misalignFrac", phase.misalignFrac);
        checkFraction(where, "splitFrac", phase.splitFrac);
        checkFraction(where, "aliasFrac", phase.aliasFrac);
        checkFraction(where, "overlapFrac", phase.overlapFrac);
        checkFraction(where, "slowStoreAddrFrac",
                      phase.slowStoreAddrFrac);
        checkFraction(where, "slowStoreDataFrac",
                      phase.slowStoreDataFrac);
        checkFraction(where, "branchEntropy", phase.branchEntropy);
        checkFraction(where, "takenBias", phase.takenBias);
        checkFraction(where, "fpAssistFrac", phase.fpAssistFrac);

        if (phase.dataFootprint == 0)
            wct_fatal(where, ": zero data footprint");
        if (phase.hotBytes == 0 ||
            phase.hotBytes > phase.dataFootprint) {
            wct_fatal(where, ": hotBytes ", phase.hotBytes,
                      " outside (0, footprint]");
        }
        if (phase.codeFootprint < 64)
            wct_fatal(where, ": code footprint under one line");
        if (phase.hotCodeBytes < 64 ||
            phase.hotCodeBytes > phase.codeFootprint) {
            wct_fatal(where, ": hotCodeBytes ", phase.hotCodeBytes,
                      " outside [64, codeFootprint]");
        }
        checkFraction(where, "hotCodeFrac", phase.hotCodeFrac);
        if (phase.accessSize == 0 || (phase.accessSize & 0x3) != 0)
            wct_fatal(where, ": access size must be a multiple of 4");
    }
    if (total_weight <= 0.0)
        wct_fatal(profile.name, ": phase weights sum to zero");
}

} // namespace wct
