/**
 * @file
 * Behavioural stand-ins for the 29 SPEC CPU2006 benchmarks (reference
 * inputs), calibrated to the characteristics Section IV of the paper
 * reports: which benchmarks are cache-resident low-CPI compute kernels
 * (the LM1 group), which are DTLB/L2-bound pointer chasers (429.mcf,
 * 471.omnetpp), which are SIMD-dense (470.lbm, 436.cactusADM), and the
 * lone split-load outlier (482.sphinx3).
 */

#include "workload/suites.hh"

#include "workload/suite_common.hh"

namespace wct
{

using namespace suite_detail;

namespace
{

BenchmarkProfile
bench(const std::string &name, const std::string &language,
      bool is_integer, double weight)
{
    BenchmarkProfile b;
    b.name = name;
    b.language = language;
    b.integer = is_integer;
    b.instructionWeight = weight;
    return b;
}

// ---- Integer benchmarks ------------------------------------------------

BenchmarkProfile
perlbench()
{
    auto b = bench("400.perlbench", "C", true, 1.2);
    PhaseProfile interp = computePhase("interp", 0.7);
    interp.branchFrac = 0.22;
    interp.branchEntropy = 0.10;
    interp.codeFootprint = 256 * kKiB; // interpreter blows the L1I
    interp.hotCodeBytes = 24 * kKiB;
    interp.hotCodeFrac = 0.90;
    interp.dataFootprint = 3200 * kKiB;
    interp.hotBytes = 28 * kKiB;
    interp.hotFrac = 0.975;
    PhaseProfile match = computePhase("regex", 0.3);
    match.loadFrac = 0.32;
    match.streamFrac = 0.55;
    match.dataFootprint = 8 * kMiB;
    b.phases = {interp, match};
    return b;
}

BenchmarkProfile
bzip2()
{
    auto b = bench("401.bzip2", "C", true, 1.4);
    PhaseProfile sort = computePhase("blocksort", 0.6);
    sort.loadFrac = 0.30;
    sort.storeFrac = 0.14;
    sort.dataFootprint = 3584 * kKiB;
    sort.hotBytes = 48 * kKiB;
    sort.hotFrac = 0.965;
    sort.streamFrac = 0.30;
    sort.branchEntropy = 0.12;
    PhaseProfile huff = computePhase("huffman", 0.4);
    huff.branchFrac = 0.20;
    huff.branchEntropy = 0.10;
    b.phases = {sort, huff};
    return b;
}

BenchmarkProfile
gcc()
{
    auto b = bench("403.gcc", "C", true, 1.0);
    PhaseProfile front = computePhase("parse", 0.4);
    front.branchFrac = 0.21;
    front.branchEntropy = 0.10;
    front.codeFootprint = 384 * kKiB;
    front.hotCodeBytes = 20 * kKiB;
    front.hotCodeFrac = 0.92;
    front.dataFootprint = 96 * kMiB;
    front.hotBytes = 64 * kKiB;
    front.hotFrac = 0.990;
    PhaseProfile alloc = chasePhase("rtl", 0.6, 96 * kMiB, 0.25);
    alloc.codeFootprint = 256 * kKiB;
    alloc.hotCodeBytes = 16 * kKiB;
    alloc.hotCodeFrac = 0.93;
    alloc.hotFrac = 0.985;
    b.phases = {front, alloc};
    return b;
}

BenchmarkProfile
mcf()
{
    // Single-depot vehicle scheduling: network simplex over a ~GB
    // arc graph. The suite's DTLB/L2 extreme: serialised pointer
    // chases into a footprint far beyond any cache.
    auto b = bench("429.mcf", "C", true, 0.8);
    PhaseProfile simplex = chasePhase("simplex", 0.8, 320 * kMiB, 0.60);
    simplex.loadFrac = 0.36;
    simplex.hotFrac = 0.965;
    simplex.branchEntropy = 0.14;
    PhaseProfile update = chasePhase("update", 0.2, 320 * kMiB, 0.35);
    update.storeFrac = 0.14;
    update.hotFrac = 0.975;
    b.phases = {simplex, update};
    return b;
}

BenchmarkProfile
gobmk()
{
    auto b = bench("445.gobmk", "C", true, 1.0);
    PhaseProfile search = computePhase("search", 0.8);
    search.branchFrac = 0.22;
    search.branchEntropy = 0.13;
    search.codeFootprint = 128 * kKiB;
    search.hotCodeBytes = 16 * kKiB;
    search.hotCodeFrac = 0.94;
    search.dataFootprint = 2816 * kKiB;
    search.hotBytes = 32 * kKiB;
    search.hotFrac = 0.98;
    PhaseProfile pattern = computePhase("pattern", 0.2);
    pattern.loadFrac = 0.32;
    b.phases = {search, pattern};
    return b;
}

BenchmarkProfile
hmmer()
{
    // Profile-HMM dynamic programming: dense, cache-resident,
    // perfectly predictable inner loop -> the LM1 archetype.
    auto b = bench("456.hmmer", "C", true, 1.6);
    PhaseProfile viterbi = computePhase("viterbi", 1.0);
    viterbi.loadFrac = 0.30;
    viterbi.storeFrac = 0.12;
    viterbi.branchFrac = 0.08;
    viterbi.mulFrac = 0.05;
    viterbi.simdFrac = 0.09; // vectorised integer SSE inner loop
    viterbi.branchEntropy = 0.01;
    viterbi.hotBytes = 20 * kKiB;
    viterbi.hotFrac = 0.999;
    viterbi.dataFootprint = 1 * kMiB;
    b.phases = {viterbi};
    return b;
}

BenchmarkProfile
sjeng()
{
    auto b = bench("458.sjeng", "C", true, 1.1);
    PhaseProfile tree = computePhase("alphabeta", 0.85);
    tree.branchFrac = 0.21;
    tree.branchEntropy = 0.12;
    tree.dataFootprint = 160 * kMiB; // transposition table
    tree.hotBytes = 32 * kKiB;
    tree.hotFrac = 0.993;
    PhaseProfile eval = computePhase("eval", 0.15);
    b.phases = {tree, eval};
    return b;
}

BenchmarkProfile
libquantum()
{
    auto b = bench("462.libquantum", "C", true, 1.9);
    PhaseProfile gate = streamPhase("gates", 1.0, 64 * kMiB);
    gate.loadFrac = 0.28;
    gate.storeFrac = 0.16;
    gate.branchFrac = 0.12;
    gate.branchEntropy = 0.01;
    b.phases = {gate};
    return b;
}

BenchmarkProfile
h264ref()
{
    auto b = bench("464.h264ref", "C", true, 2.2);
    PhaseProfile motion = computePhase("motion", 0.6);
    motion.simdFrac = 0.12;
    motion.loadFrac = 0.30;
    motion.streamFrac = 0.45;
    motion.dataFootprint = 3 * kMiB;
    motion.hotBytes = 48 * kKiB;
    motion.hotFrac = 0.97;
    PhaseProfile dct = computePhase("dct", 0.4);
    dct.simdFrac = 0.10;
    dct.mulFrac = 0.05;
    b.phases = {motion, dct};
    return b;
}

BenchmarkProfile
omnetpp()
{
    // Discrete event simulation: heap-walking event queue plus store
    // overlap stalls -> the LM24 outlier of Table II.
    auto b = bench("471.omnetpp", "C++", true, 0.9);
    PhaseProfile queue = chasePhase("eventq", 0.85, 192 * kMiB, 0.45);
    queue.storeFrac = 0.13;
    queue.hotFrac = 0.972;
    queue.overlapFrac = 0.035;
    queue.aliasFrac = 0.02;
    queue.slowStoreAddrFrac = 0.10;
    queue.branchFrac = 0.20;
    queue.branchEntropy = 0.20;
    queue.codeFootprint = 128 * kKiB;
    queue.hotCodeBytes = 12 * kKiB;
    queue.hotCodeFrac = 0.93;
    PhaseProfile msg = computePhase("handlers", 0.15);
    msg.codeFootprint = 96 * kKiB;
    b.phases = {queue, msg};
    return b;
}

BenchmarkProfile
astar()
{
    auto b = bench("473.astar", "C++", true, 1.0);
    PhaseProfile path = chasePhase("search", 0.6, 3 * kMiB, 0.20);
    path.hotFrac = 0.95;
    path.branchEntropy = 0.20;
    PhaseProfile grid = computePhase("grid", 0.4);
    grid.streamFrac = 0.40;
    grid.dataFootprint = 3 * kMiB;
    b.phases = {path, grid};
    return b;
}

BenchmarkProfile
xalancbmk()
{
    auto b = bench("483.xalancbmk", "C++", true, 1.0);
    PhaseProfile walk = chasePhase("domwalk", 0.7, 64 * kMiB, 0.30);
    walk.codeFootprint = 512 * kKiB; // template-heavy code
    walk.hotCodeBytes = 24 * kKiB;
    walk.hotCodeFrac = 0.91;
    walk.branchFrac = 0.21;
    walk.hotFrac = 0.982;
    PhaseProfile fmt = computePhase("format", 0.3);
    fmt.codeFootprint = 256 * kKiB;
    fmt.hotCodeBytes = 16 * kKiB;
    fmt.hotCodeFrac = 0.95;
    b.phases = {walk, fmt};
    return b;
}

// ---- Floating point benchmarks ----------------------------------------

BenchmarkProfile
bwaves()
{
    auto b = bench("410.bwaves", "Fortran", false, 2.0);
    PhaseProfile solver = simdPhase("solver", 1.0, 0.38, 96 * kMiB);
    solver.mulFrac = 0.05;
    b.phases = {solver};
    return b;
}

BenchmarkProfile
gamess()
{
    auto b = bench("416.gamess", "Fortran", false, 2.4);
    PhaseProfile integrals = computePhase("integrals", 1.0);
    integrals.mulFrac = 0.06;
    integrals.divFrac = 0.008;
    integrals.simdFrac = 0.08;
    integrals.hotBytes = 28 * kKiB;
    integrals.hotFrac = 0.998;
    b.phases = {integrals};
    return b;
}

BenchmarkProfile
milc()
{
    auto b = bench("433.milc", "C", false, 1.3);
    PhaseProfile su3 = simdPhase("su3", 1.0, 0.30, 160 * kMiB);
    su3.streamFrac = 0.80;
    su3.mulFrac = 0.04;
    b.phases = {su3};
    return b;
}

BenchmarkProfile
zeusmp()
{
    auto b = bench("434.zeusmp", "Fortran", false, 1.4);
    PhaseProfile stencil = simdPhase("stencil", 0.8, 0.26, 64 * kMiB);
    stencil.hotBytes = 48 * kKiB;
    stencil.hotFrac = 0.97;
    stencil.streamFrac = 0.60;
    PhaseProfile bc = computePhase("boundary", 0.2);
    b.phases = {stencil, bc};
    return b;
}

BenchmarkProfile
gromacs()
{
    // Molecular dynamics inner loop: resident neighbour lists, some
    // SIMD, no memory pressure -> LM1 twin of 444.namd.
    auto b = bench("435.gromacs", "C/Fortran", false, 1.8);
    PhaseProfile nonbonded = computePhase("nonbonded", 1.0);
    nonbonded.mulFrac = 0.06;
    nonbonded.simdFrac = 0.12;
    nonbonded.loadFrac = 0.29;
    nonbonded.branchFrac = 0.07;
    nonbonded.branchEntropy = 0.015;
    nonbonded.hotBytes = 24 * kKiB;
    nonbonded.hotFrac = 0.999;
    nonbonded.dataFootprint = 2 * kMiB;
    b.phases = {nonbonded};
    return b;
}

BenchmarkProfile
cactusADM()
{
    // Einstein equations: extremely SIMD-dense staggered-grid update
    // with a resident tile -> the LM11 outlier (high SIMD, few L2
    // misses, CPI ~1.2).
    auto b = bench("436.cactusADM", "Fortran/C", false, 1.1);
    PhaseProfile kernel = simdPhase("adm", 1.0, 0.68, 12 * kMiB);
    kernel.loadFrac = 0.16;
    kernel.storeFrac = 0.08;
    kernel.branchFrac = 0.03;
    kernel.hotBytes = 64 * kKiB;
    kernel.hotFrac = 0.97;
    kernel.streamFrac = 0.45;
    kernel.mulFrac = 0.02;
    b.phases = {kernel};
    return b;
}

BenchmarkProfile
leslie3d()
{
    auto b = bench("437.leslie3d", "Fortran", false, 1.3);
    PhaseProfile flux = simdPhase("flux", 1.0, 0.30, 80 * kMiB);
    flux.streamFrac = 0.70;
    flux.mulFrac = 0.05;
    b.phases = {flux};
    return b;
}

BenchmarkProfile
namd()
{
    // Biomolecular simulation, the paper's poster child for LM1
    // coverage above 90% and near-identical profile to 456.hmmer.
    auto b = bench("444.namd", "C++", false, 2.0);
    PhaseProfile forces = computePhase("forces", 1.0);
    forces.loadFrac = 0.30;
    forces.storeFrac = 0.11;
    forces.branchFrac = 0.08;
    forces.mulFrac = 0.05;
    forces.simdFrac = 0.10;
    forces.branchEntropy = 0.012;
    forces.hotBytes = 22 * kKiB;
    forces.hotFrac = 0.999;
    forces.dataFootprint = 1536 * kKiB;
    b.phases = {forces};
    return b;
}

BenchmarkProfile
dealII()
{
    auto b = bench("447.dealII", "C++", false, 1.7);
    PhaseProfile assemble = computePhase("assemble", 1.0);
    assemble.loadFrac = 0.29;
    assemble.storeFrac = 0.12;
    assemble.branchFrac = 0.09;
    assemble.mulFrac = 0.06;
    assemble.simdFrac = 0.08;
    assemble.branchEntropy = 0.025;
    assemble.hotBytes = 27 * kKiB;
    assemble.hotFrac = 0.997;
    assemble.dataFootprint = 2 * kMiB;
    b.phases = {assemble};
    return b;
}

BenchmarkProfile
soplex()
{
    auto b = bench("450.soplex", "C++", false, 0.9);
    PhaseProfile pricing = computePhase("pricing", 0.7);
    pricing.loadFrac = 0.32;
    pricing.dataFootprint = 48 * kMiB;
    pricing.hotBytes = 40 * kKiB;
    pricing.hotFrac = 0.985;
    pricing.streamFrac = 0.30;
    pricing.branchEntropy = 0.12;
    PhaseProfile factor = streamPhase("factorise", 0.3, 48 * kMiB);
    b.phases = {pricing, factor};
    return b;
}

BenchmarkProfile
povray()
{
    auto b = bench("453.povray", "C++", false, 1.2);
    PhaseProfile trace = computePhase("trace", 1.0);
    trace.branchFrac = 0.17;
    trace.branchEntropy = 0.08;
    trace.mulFrac = 0.06;
    trace.divFrac = 0.004;
    trace.hotBytes = 32 * kKiB;
    trace.hotFrac = 0.985;
    trace.dataFootprint = 2560 * kKiB;
    b.phases = {trace};
    return b;
}

BenchmarkProfile
calculix()
{
    auto b = bench("454.calculix", "Fortran/C", false, 1.8);
    PhaseProfile solve = computePhase("spooles", 1.0);
    solve.loadFrac = 0.29;
    solve.storeFrac = 0.12;
    solve.branchFrac = 0.09;
    solve.mulFrac = 0.06;
    solve.simdFrac = 0.08;
    solve.branchEntropy = 0.025;
    solve.hotBytes = 26 * kKiB;
    solve.hotFrac = 0.997;
    solve.dataFootprint = 2 * kMiB;
    b.phases = {solve};
    return b;
}

BenchmarkProfile
gemsFDTD()
{
    // Finite-difference time domain: pure streaming over a huge grid;
    // many independent (overlapped) L2 misses, very unlike 429.mcf's
    // serialised chases and unlike the resident LM1 group.
    auto b = bench("459.GemsFDTD", "Fortran", false, 1.2);
    PhaseProfile update = streamPhase("fieldupdate", 1.0, 224 * kMiB);
    update.loadFrac = 0.33;
    update.storeFrac = 0.16;
    update.simdFrac = 0.18;
    update.streamFrac = 0.93;
    update.accessSize = 16;
    b.phases = {update};
    return b;
}

BenchmarkProfile
tonto()
{
    auto b = bench("465.tonto", "Fortran", false, 1.4);
    PhaseProfile scf = computePhase("scf", 1.0);
    scf.mulFrac = 0.07;
    scf.divFrac = 0.006;
    scf.simdFrac = 0.10;
    scf.hotBytes = 36 * kKiB;
    scf.hotFrac = 0.975;
    scf.dataFootprint = 3 * kMiB;
    b.phases = {scf};
    return b;
}

BenchmarkProfile
lbm()
{
    // Lattice-Boltzmann: SIMD-saturated streaming with paired
    // read-modify-write of cell neighbourhoods, giving overlapped
    // store stalls -> the LM5 outlier (high SIMD + LdBlkOlp).
    auto b = bench("470.lbm", "C", false, 1.3);
    PhaseProfile collide = simdPhase("collide", 1.0, 0.55, 384 * kMiB);
    collide.loadFrac = 0.20;
    collide.storeFrac = 0.14;
    collide.branchFrac = 0.02;
    collide.streamFrac = 0.90;
    collide.overlapFrac = 0.06;
    collide.slowStoreDataFrac = 0.20;
    b.phases = {collide};
    return b;
}

BenchmarkProfile
wrf()
{
    auto b = bench("481.wrf", "Fortran/C", false, 1.5);
    PhaseProfile physics = simdPhase("physics", 0.6, 0.24, 48 * kMiB);
    physics.hotBytes = 48 * kKiB;
    physics.hotFrac = 0.97;
    physics.streamFrac = 0.55;
    PhaseProfile dynamics = computePhase("dynamics", 0.4);
    dynamics.mulFrac = 0.05;
    dynamics.simdFrac = 0.12;
    b.phases = {physics, dynamics};
    return b;
}

BenchmarkProfile
sphinx3()
{
    // Speech recognition: Gaussian scoring walks packed feature
    // vectors at odd offsets -> the only benchmark with massive split
    // loads (LM18 of Figure 1) and a CPI ~20% above suite average.
    auto b = bench("482.sphinx3", "C", false, 1.1);
    PhaseProfile gauss = computePhase("gaussian", 0.85);
    gauss.loadFrac = 0.34;
    gauss.storeFrac = 0.06;
    gauss.splitFrac = 0.11;
    gauss.misalignFrac = 0.12;
    gauss.slowStoreAddrFrac = 0.08;
    gauss.aliasFrac = 0.03;
    gauss.mulFrac = 0.05;
    gauss.dataFootprint = 24 * kMiB;
    gauss.hotBytes = 36 * kKiB;
    gauss.hotFrac = 0.99;
    gauss.streamFrac = 0.45;
    PhaseProfile search = computePhase("search", 0.15);
    search.branchEntropy = 0.15;
    b.phases = {gauss, search};
    return b;
}

} // namespace

const SuiteProfile &
specCpu2006()
{
    static const SuiteProfile suite = [] {
        SuiteProfile s;
        s.name = "SPEC CPU2006";
        s.benchmarks = {
            perlbench(), bzip2(),      gcc(),     mcf(),
            gobmk(),     hmmer(),      sjeng(),   libquantum(),
            h264ref(),   omnetpp(),    astar(),   xalancbmk(),
            bwaves(),    gamess(),     milc(),    zeusmp(),
            gromacs(),   cactusADM(),  leslie3d(), namd(),
            dealII(),    soplex(),     povray(),  calculix(),
            gemsFDTD(),  tonto(),      lbm(),     wrf(),
            sphinx3(),
        };
        for (const auto &bench_profile : s.benchmarks)
            validateProfile(bench_profile);
        return s;
    }();
    return suite;
}

} // namespace wct
