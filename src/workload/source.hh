/**
 * @file
 * Expansion of a benchmark profile into a dynamic instruction stream.
 */

#ifndef WCT_WORKLOAD_SOURCE_HH
#define WCT_WORKLOAD_SOURCE_HH

#include <cstdint>
#include <vector>

#include "uarch/types.hh"
#include "util/rng.hh"
#include "workload/profile.hh"

namespace wct
{

/**
 * Deterministic instruction generator for one benchmark profile.
 *
 * The source alternates between the profile's phases (geometric run
 * lengths, weighted phase selection) and synthesises per-instruction
 * classes, program counters, memory addresses, and dataflow flags
 * according to the active phase. All randomness derives from the
 * seed passed at construction.
 */
class WorkloadSource : public InstSource
{
  public:
    /**
     * @param profile Benchmark description (validated on entry).
     * @param seed    Stream seed; two sources with equal profile and
     *                seed generate identical streams.
     */
    WorkloadSource(const BenchmarkProfile &profile, std::uint64_t seed);

    Inst next() override;

    /** Index of the phase generating instructions right now. */
    std::size_t currentPhase() const { return phaseIndex_; }

    /** Instructions generated so far. */
    std::uint64_t generated() const { return generated_; }

    const BenchmarkProfile &profile() const { return profile_; }

    /**
     * Data segment base (per-benchmark constant). Every data address
     * lies in [kDataBase, kDataBase + footprint) for its region, which
     * address-perturbation tests rely on.
     */
    static constexpr std::uint64_t kDataBase = 0x100000000ull;

  private:
    /** Pick the next phase and its run length. */
    void switchPhase();

    /** Produce a data address per the active phase's locality model. */
    std::uint64_t dataAddress(const PhaseProfile &phase);

    /** Produce the next program counter (hot loop or cold code). */
    std::uint64_t nextPc(const PhaseProfile &phase);

    /** Number of distinct static branch sites per phase. */
    static constexpr std::uint64_t kBranchSites = 128;

    BenchmarkProfile profile_;
    Rng rng_;
    std::vector<double> phaseWeights_;

    std::size_t phaseIndex_ = 0;
    std::uint64_t phaseRemaining_ = 0;

    std::uint64_t generated_ = 0;
    std::uint64_t hotPcCursor_ = 0;
    std::uint64_t coldPcCursor_ = 0;
    std::uint64_t coldRunRemaining_ = 0;

    /** Per-phase streaming cursors (phases stream their own arrays). */
    std::vector<std::uint64_t> streamPos_;
    std::uint64_t lastStoreAddr_ = 0;
    std::uint64_t branchCounter_ = 0;

    /** Code segment base. */
    static constexpr std::uint64_t kCodeBase = 0x400000ull;
};

} // namespace wct

#endif // WCT_WORKLOAD_SOURCE_HH
