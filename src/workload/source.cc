#include "workload/source.hh"

#include <algorithm>

#include "util/logging.hh"

namespace wct
{

WorkloadSource::WorkloadSource(const BenchmarkProfile &profile,
                               std::uint64_t seed)
    : profile_(profile), rng_(Rng(seed).fork(0x77c7))
{
    validateProfile(profile_);
    phaseWeights_.reserve(profile_.phases.size());
    for (const PhaseProfile &phase : profile_.phases)
        phaseWeights_.push_back(phase.weight);
    streamPos_.assign(profile_.phases.size(), 0);
    switchPhase();
}

void
WorkloadSource::switchPhase()
{
    phaseIndex_ = rng_.weightedChoice(phaseWeights_);
    // Geometric run length with the configured mean.
    const double p =
        1.0 / static_cast<double>(profile_.phaseRunLength);
    phaseRemaining_ = rng_.geometric(p);
}

std::uint64_t
WorkloadSource::dataAddress(const PhaseProfile &phase)
{
    const std::uint64_t align = phase.accessSize;
    std::uint64_t base;   // region the access belongs to
    std::uint64_t region; // region size in bytes
    std::uint64_t offset; // aligned offset within the region

    if (rng_.bernoulli(phase.streamFrac)) {
        // Sequential streaming through this phase's own arrays.
        std::uint64_t &pos = streamPos_[phaseIndex_];
        base = kDataBase + phaseIndex_ * (1ull << 30);
        region = phase.dataFootprint;
        offset = pos;
        pos = (pos + align) % phase.dataFootprint;
    } else if (rng_.bernoulli(phase.hotFrac)) {
        // Frequently revisited hot structures.
        base = kDataBase;
        region = phase.hotBytes;
        offset = rng_.uniformInt(phase.hotBytes / align) * align;
    } else {
        // Cold touch anywhere in the footprint.
        base = kDataBase;
        region = phase.dataFootprint;
        offset = rng_.uniformInt(phase.dataFootprint / align) * align;
    }

    // Alignment perturbations. A single-byte access can be neither
    // split nor misaligned, and `align / 2` must be kept away from
    // zero so the perturbations still move the address for narrow
    // accesses; both perturbed offsets are folded back so the access
    // never escapes [base, base + region).
    if (phase.splitFrac > 0.0 && rng_.bernoulli(phase.splitFrac)) {
        // Park the access so it crosses a 64-byte line: start it
        // `intrude` bytes before the next boundary (intrude < align,
        // so the tail lands in the following line).
        if (align >= 2 && region >= 128) {
            const std::uint64_t intrude =
                std::max<std::uint64_t>(align / 2, 1);
            offset = (offset & ~std::uint64_t(63)) + 64 - intrude;
            while (offset + align > region)
                offset -= 64; // previous line; still crosses
        }
    } else if (phase.misalignFrac > 0.0 &&
               rng_.bernoulli(phase.misalignFrac)) {
        if (align >= 2 && region >= 2 * align) {
            offset += std::max<std::uint64_t>(align / 2, 1);
            while (offset + align > region)
                offset -= align; // same misalignment, one slot back
        }
    }
    return base + offset;
}

std::uint64_t
WorkloadSource::nextPc(const PhaseProfile &phase)
{
    // Each phase occupies its own code region so phase switches shift
    // the active instruction working set.
    const std::uint64_t code_base =
        kCodeBase + phaseIndex_ * (16ull << 20);

    if (rng_.bernoulli(phase.hotCodeFrac)) {
        // Inside the resident inner loop.
        const std::uint64_t pc = code_base + hotPcCursor_;
        hotPcCursor_ = (hotPcCursor_ + 4) % phase.hotCodeBytes;
        return pc;
    }
    // Cold code: occasionally relocate, then walk sequentially.
    if (coldRunRemaining_ == 0) {
        coldPcCursor_ =
            rng_.uniformInt(phase.codeFootprint / 4) * 4;
        coldRunRemaining_ = 16 + rng_.uniformInt(48);
    }
    --coldRunRemaining_;
    const std::uint64_t pc = code_base + coldPcCursor_;
    coldPcCursor_ = (coldPcCursor_ + 4) % phase.codeFootprint;
    return pc;
}

Inst
WorkloadSource::next()
{
    if (phaseRemaining_ == 0)
        switchPhase();
    --phaseRemaining_;
    ++generated_;

    const PhaseProfile &phase = profile_.phases[phaseIndex_];
    Inst inst;
    inst.pc = nextPc(phase);

    // Class selection.
    const double u = rng_.uniform();
    double edge = phase.loadFrac;
    if (u < edge) {
        inst.cls = InstClass::Load;
    } else if (u < (edge += phase.storeFrac)) {
        inst.cls = InstClass::Store;
    } else if (u < (edge += phase.branchFrac)) {
        inst.cls = InstClass::Branch;
    } else if (u < (edge += phase.mulFrac)) {
        inst.cls = InstClass::Mul;
    } else if (u < (edge += phase.divFrac)) {
        inst.cls = InstClass::Div;
    } else if (u < (edge += phase.simdFrac)) {
        inst.cls = InstClass::Simd;
    } else {
        inst.cls = InstClass::Alu;
    }

    switch (inst.cls) {
      case InstClass::Load: {
        inst.size = phase.accessSize;
        if (lastStoreAddr_ != 0 &&
            rng_.bernoulli(phase.overlapFrac)) {
            // Re-read the latest store's slot through its previous-
            // page image: same page offset, different page. The
            // partial-address disambiguator cannot forward across the
            // alias, so the load blocks until the store retires (the
            // LOAD_BLOCK.OVERLAP_STORE condition). Aliasing downward
            // keeps the target line warm for recently streamed data,
            // isolating the block cost from cold-miss costs.
            inst.addr = lastStoreAddr_ >= 8192
                ? lastStoreAddr_ - 4096
                : lastStoreAddr_ + 4096;
        } else if (lastStoreAddr_ != 0 &&
                   rng_.bernoulli(phase.aliasFrac)) {
            // Same page offset, different page (4 KB alias).
            inst.addr = lastStoreAddr_ +
                4096 * (1 + rng_.uniformInt(7));
        } else {
            inst.addr = dataAddress(phase);
            // Pointer chases serialise behind earlier misses.
            if (rng_.bernoulli(phase.pointerChaseFrac))
                inst.flags |= kFlagDependent;
        }
        break;
      }
      case InstClass::Store: {
        inst.size = phase.accessSize;
        inst.addr = dataAddress(phase);
        if (rng_.bernoulli(phase.slowStoreAddrFrac))
            inst.flags |= kFlagSlowAddress;
        if (rng_.bernoulli(phase.slowStoreDataFrac))
            inst.flags |= kFlagSlowData;
        lastStoreAddr_ = inst.addr;
        break;
      }
      case InstClass::Branch: {
        // Branch instructions come from a pool of static branch sites
        // within the hot code; each site has a fixed direction so the
        // predictor can learn it, while a fraction of dynamic
        // branches (branchEntropy) are data-dependent and random.
        const std::uint64_t site = branchCounter_++ % kBranchSites;
        const std::uint64_t code_base =
            kCodeBase + phaseIndex_ * (16ull << 20);
        inst.pc = code_base + (site * 28) % phase.hotCodeBytes;

        bool taken;
        if (rng_.bernoulli(phase.branchEntropy)) {
            taken = rng_.bernoulli(phase.takenBias);
        } else {
            // Constant per-site direction, biased toward taken the
            // way loop back-edges are.
            taken = ((site * 2654435761ull) >> 7 & 0xFF) <
                static_cast<std::uint64_t>(224);
        }
        if (taken)
            inst.flags |= kFlagTaken;
        break;
      }
      case InstClass::Simd:
      case InstClass::Alu:
        if (phase.fpAssistFrac > 0.0 &&
            rng_.bernoulli(phase.fpAssistFrac)) {
            inst.flags |= kFlagFpAssist;
        }
        break;
      default:
        break;
    }
    return inst;
}

} // namespace wct
