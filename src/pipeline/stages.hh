/**
 * @file
 * The typed stages of the paper's dataflow, each one a content key
 * derivation plus an artifact codec over Pipeline::run():
 *
 *   collect    SuiteProfile + CollectionConfig  -> SuiteData
 *   train      SuiteData + SuiteModelConfig     -> SuiteModel
 *   profile    SuiteData + SuiteModel           -> ProfileTable
 *   similarity ProfileTable + subset            -> SimilarityMatrix
 *   transfer   SuiteModel + target dataset      -> TransferabilityReport
 *
 * Stage keys chain: a stage hashes the keys of the artifacts it
 * consumes rather than their bytes, so a plan's full artifact set is
 * computable without executing anything (`wct cache gc` uses this to
 * decide liveness) and a parameter change re-runs exactly the stages
 * downstream of it. Every key goes through KeyBuilder — the single
 * key-derivation implementation — and starts with the stage kind and
 * its payload format version, so a codec change can never resurrect
 * stale bytes.
 *
 * The train stage additionally publishes the tree's *text* under
 * ("mtree", modelTreeContentKey(text)): the serving registry resolves
 * models from the store by that content hash (see serve/registry.hh),
 * which addresses the tree by what it computes rather than by the
 * inputs that produced it.
 */

#ifndef WCT_PIPELINE_STAGES_HH
#define WCT_PIPELINE_STAGES_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/collect.hh"
#include "core/profile_table.hh"
#include "core/similarity.hh"
#include "core/suite_model.hh"
#include "core/transferability.hh"
#include "pipeline/pipeline.hh"

namespace wct::pipeline
{

// ---- Payload format versions (bump on codec layout changes; each
// one is hashed into its stage key, so old artifacts simply miss). --
constexpr std::uint32_t kCollectShardPayloadVersion = 1;
constexpr std::uint32_t kTrainPayloadVersion = 1;
constexpr std::uint32_t kProfilePayloadVersion = 1;
constexpr std::uint32_t kSimilarityPayloadVersion = 1;
constexpr std::uint32_t kTransferPayloadVersion = 1;

// ---- Canonical input encoders (exact bit patterns; shared by every
// key derivation — exposed for the key-coverage tests). ----
void appendSuiteProfile(KeyBuilder &key, const SuiteProfile &suite);
void appendBenchmarkProfile(KeyBuilder &key,
                            const BenchmarkProfile &bench);
void appendCollectionConfig(KeyBuilder &key,
                            const CollectionConfig &config);
void appendSuiteModelConfig(KeyBuilder &key,
                            const SuiteModelConfig &config);
void appendTransferabilityConfig(KeyBuilder &key,
                                 const TransferabilityConfig &config);

// ---- Stage keys. ----

/**
 * Logical key of a collected suite (covers every input the samples
 * depend on, including the SuiteData payload format version). No
 * artifact is stored under this key anymore — collection artifacts
 * are per-shard (below) — but it remains the chaining key every
 * downstream stage hashes, so shard granularity never perturbs
 * train/profile/similarity/transfer keys.
 */
std::uint64_t collectStageKey(const SuiteProfile &suite,
                              const CollectionConfig &config);

/**
 * Key of one (benchmark, shard) collection task. Deliberately
 * benchmark-scoped — the suite name and the other benchmarks are
 * excluded — so workers dedupe shards across suites and plans, and a
 * single-benchmark profile change invalidates only that benchmark's
 * shard artifacts.
 */
std::uint64_t collectShardKey(const BenchmarkProfile &bench,
                              const CollectionConfig &config,
                              std::size_t shard,
                              const ShardSpec &spec);

/**
 * Every ("collect-shard", key) artifact a suite collection reads or
 * writes, in deterministic task order. `wct cache gc` liveness and
 * the plan expansion (pipeline/plans.cc) enumerate through this —
 * the shard plan is a pure function of the config, so no collection
 * is executed.
 */
std::vector<ArtifactId>
collectShardArtifacts(const SuiteProfile &suite,
                      const CollectionConfig &config);

/** Key of a trained suite model. `builder` is deliberately excluded
 * from the model-config encoding: all builders produce byte-identical
 * trees (pinned by the builder-equivalence test). */
std::uint64_t trainStageKey(std::uint64_t collectKey,
                            const SuiteModelConfig &config);

/** Key of the leaf-profile table of a trained model's suite. */
std::uint64_t profileStageKey(std::uint64_t trainKey);

/** Key of a similarity matrix over a profile subset. */
std::uint64_t
similarityStageKey(std::uint64_t profileKey,
                   const std::vector<std::string> &subset);

/**
 * Key of a transferability assessment: model (by train key) applied
 * to a target dataset named by the (train key, selector) pair of the
 * stage that produced it — e.g. (omp train key, "test").
 */
std::uint64_t transferStageKey(std::uint64_t modelTrainKey,
                               std::uint64_t targetTrainKey,
                               std::string_view targetSelector,
                               const TransferabilityConfig &config);

// ---- Artifact codecs (exposed for the store tests and the serving
// registry; decode rejects anything encode did not produce). ----
std::string encodeSuiteData(const SuiteData &data);
std::optional<SuiteData> decodeSuiteData(std::string_view payload);

std::string encodeShardSamples(const Dataset &samples);
std::optional<Dataset> decodeShardSamples(std::string_view payload);

std::string encodeSuiteModel(const SuiteModel &model);
std::optional<SuiteModel> decodeSuiteModel(std::string_view payload);

std::string encodeProfileTable(const ProfileTable &table);
std::optional<ProfileTable>
decodeProfileTable(std::string_view payload);

std::string encodeSimilarity(const SimilarityMatrix &matrix);
std::optional<SimilarityMatrix>
decodeSimilarity(std::string_view payload);

std::string encodeTransferReport(const TransferabilityReport &report);
std::optional<TransferabilityReport>
decodeTransferReport(std::string_view payload);

// ---- The stages themselves. Each takes its inputs eagerly (a warm
// plan run therefore reports a hit for every stage) and appends one
// StageRun to the pipeline. ----

/**
 * Collect a suite at shard granularity: every (benchmark, shard)
 * task is its own ("collect-shard", collectShardKey) artifact. Hits
 * load and decode in a serial deterministic pass; misses compute and
 * publish over the work-stealing pool into pre-assigned slots; the
 * stitch is a fixed-order concatenation of the shard datasets — so
 * the suite is byte-identical for any WCT_THREADS and any warm/cold
 * mix, and a fleet of workers sharing one store dedupes at shard
 * granularity. Records one StageRun per shard.
 */
SuiteData collectStage(Pipeline &pipe, const SuiteProfile &suite,
                       const CollectionConfig &config);

/**
 * Train the suite model, cached under ("train", trainStageKey), and
 * ensure the tree text exists under ("mtree", its content key).
 */
SuiteModel trainStage(Pipeline &pipe, const SuiteData &data,
                      std::uint64_t collectKey,
                      const SuiteModelConfig &config);

/** Classify the suite into leaf profiles, cached under ("profile"). */
ProfileTable profileStage(Pipeline &pipe, const SuiteData &data,
                          const ModelTree &tree,
                          std::uint64_t trainKey);

/** Similarity matrix over `subset`, cached under ("similarity"). */
SimilarityMatrix
similarityStage(Pipeline &pipe, const ProfileTable &table,
                std::uint64_t profileKey,
                const std::vector<std::string> &subset);

/** Transferability assessment, cached under ("transfer"). */
TransferabilityReport
transferStage(Pipeline &pipe, const SuiteModel &model,
              std::uint64_t modelTrainKey, const Dataset &target,
              std::uint64_t targetTrainKey,
              std::string_view targetSelector,
              const TransferabilityConfig &config = {});

} // namespace wct::pipeline

#endif // WCT_PIPELINE_STAGES_HH
