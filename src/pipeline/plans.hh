/**
 * @file
 * Named end-to-end plans: the fixed stage graphs behind `wct run` and
 * the experiment-reproduction binaries (bench/). A plan is the unit
 * the artifact store reasons about — `wct cache gc` keeps exactly the
 * artifacts some standard plan would touch, which planArtifacts()
 * computes from chained stage keys without executing anything.
 *
 * The standard protocol (collection scale, tree hyper-parameters)
 * lives here so the CLI, the table/figure generators, and the perf
 * benchmarks all reproduce the paper from identical stage keys: the
 * paper samples 2 M-instruction intervals over full reference runs;
 * the reproduction scales the interval to 8192 instructions and the
 * per-suite sample counts to O(10^4) so a full run finishes in
 * seconds (densities are normalised per instruction, so models are
 * scale-insensitive; see DESIGN.md).
 */

#ifndef WCT_PIPELINE_PLANS_HH
#define WCT_PIPELINE_PLANS_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "pipeline/stages.hh"

namespace wct::pipeline
{

/** Standard collection protocol (see the file comment on scaling). */
CollectionConfig standardCollection();

/** Standard suite-model protocol (train on a random 10%). */
SuiteModelConfig standardModelConfig();

/**
 * The configs a plan runs with. Defaults reproduce the paper; tests
 * and `wct run --intervals/...` shrink the collection scale, which
 * changes every chained key (a scaled run never aliases a standard
 * artifact).
 */
struct PlanProtocol
{
    CollectionConfig collection = standardCollection();
    SuiteModelConfig model = standardModelConfig();
};

/** Names accepted by runPlan, in presentation order. */
std::vector<std::string> planNames();

/** True when `name` is a known plan. */
bool isPlanName(const std::string &name);

/**
 * Execute a plan's stages through `pipe`, writing the rendered
 * results (tree summary, tables, reports) to `out`. Fatal on an
 * unknown plan name — check isPlanName for user input first.
 */
void runPlan(Pipeline &pipe, const std::string &name,
             const PlanProtocol &protocol, std::ostream &out);

/**
 * Every artifact id a plan run would read or write, including the
 * ("mtree", content key) entries for models whose train artifacts are
 * already in `store` (content keys are only knowable from the trained
 * trees). Fatal on an unknown plan name.
 */
std::vector<ArtifactId> planArtifacts(const std::string &name,
                                      const PlanProtocol &protocol,
                                      const ArtifactStore &store);

} // namespace wct::pipeline

#endif // WCT_PIPELINE_PLANS_HH
