#include "pipeline/pipeline.hh"

#include <sstream>

#include "util/text_table.hh"

namespace wct::pipeline
{

bool
Pipeline::allCached() const
{
    return cachedCount() == runs_.size();
}

std::size_t
Pipeline::cachedCount() const
{
    std::size_t hits = 0;
    for (const StageRun &run : runs_)
        hits += run.cached;
    return hits;
}

std::string
Pipeline::renderReport() const
{
    TextTable table({"Stage", "Artifact", "Cache", "Time (ms)",
                     "Bytes"});
    for (const StageRun &run : runs_) {
        char ms[32];
        std::snprintf(ms, sizeof ms, "%.1f", run.ms);
        table.addRow({run.label,
                      run.id.kind + "-" + keyHex(run.id.key),
                      run.cached ? "hit" : "miss", ms,
                      std::to_string(run.payloadBytes)});
    }
    std::ostringstream out;
    out << table.render();
    out << "stages: " << runs_.size() << ", cache hits: "
        << cachedCount() << "/" << runs_.size() << "\n";
    return out.str();
}

} // namespace wct::pipeline
