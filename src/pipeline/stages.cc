#include "pipeline/stages.hh"

#include <chrono>
#include <sstream>

#include "core/suite_io.hh"
#include "mtree/serialize.hh"
#include "util/thread_pool.hh"

namespace wct::pipeline
{

namespace
{

// ---- Caps on decoded counts: a corrupt artifact must fail the
// decode, never drive a giant allocation. ----
constexpr std::uint64_t kMaxReasonableRows = 1u << 16;
constexpr std::uint64_t kMaxReasonableLeaves = 1u << 16;

void
appendCacheConfig(KeyBuilder &key, const CacheConfig &config)
{
    key.u64(config.sizeBytes)
        .u32(config.lineBytes)
        .u32(config.ways)
        .u32(static_cast<std::uint32_t>(config.policy));
}

void
appendTlbConfig(KeyBuilder &key, const TlbConfig &config)
{
    key.u32(config.pageBytes)
        .u32(config.entries)
        .u32(config.ways)
        .f64(config.walkCycles)
        .f64(config.shortWalkCycles)
        .u32(config.pdeEntries);
}

void
appendMachineConfig(KeyBuilder &key, const CoreConfig &machine)
{
    appendCacheConfig(key, machine.l1d);
    appendCacheConfig(key, machine.l1i);
    appendCacheConfig(key, machine.l2);
    appendTlbConfig(key, machine.dtlb);
    appendTlbConfig(key, machine.itlb);
    key.u32(machine.branch.tableBits)
        .u32(machine.branch.historyBits)
        .u32(machine.storeBuffer.entries)
        .u32(machine.storeBuffer.lifetime)
        .u32(machine.storeBuffer.staResolveAge)
        .u32(machine.storeBuffer.stdResolveAge)
        .f64(machine.issueWidth)
        .f64(machine.mulExtraCycles)
        .f64(machine.divExtraCycles)
        .f64(machine.simdExtraCycles)
        .f64(machine.l1dMissCycles)
        .f64(machine.l1dMissExposed)
        .f64(machine.l2MissCycles)
        .f64(machine.l1iMissCycles)
        .f64(machine.l2iMissCycles)
        .f64(machine.mispredictCycles)
        .f64(machine.ldBlkStaCycles)
        .f64(machine.ldBlkStdCycles)
        .f64(machine.ldBlkOlpCycles)
        .f64(machine.splitCycles)
        .f64(machine.misalignCycles)
        .f64(machine.fpAssistCycles)
        .f64(machine.robWindowCycles)
        .f64(machine.mlpFactor)
        .u8(machine.prefetchEnabled ? 1 : 0)
        .u32(machine.prefetchStreak)
        .u32(machine.prefetchStreams)
        .u32(machine.prefetchDepth)
        .f64(machine.prefetchBandwidthDivisor);
}

void
appendPhaseProfile(KeyBuilder &key, const PhaseProfile &phase)
{
    key.str(phase.name)
        .f64(phase.weight)
        .f64(phase.loadFrac)
        .f64(phase.storeFrac)
        .f64(phase.branchFrac)
        .f64(phase.mulFrac)
        .f64(phase.divFrac)
        .f64(phase.simdFrac)
        .u64(phase.dataFootprint)
        .u64(phase.hotBytes)
        .f64(phase.hotFrac)
        .f64(phase.streamFrac)
        .f64(phase.pointerChaseFrac)
        .u8(phase.accessSize)
        .f64(phase.misalignFrac)
        .f64(phase.splitFrac)
        .f64(phase.aliasFrac)
        .f64(phase.overlapFrac)
        .f64(phase.slowStoreAddrFrac)
        .f64(phase.slowStoreDataFrac)
        .f64(phase.branchEntropy)
        .f64(phase.takenBias)
        .u64(phase.codeFootprint)
        .u64(phase.hotCodeBytes)
        .f64(phase.hotCodeFrac)
        .f64(phase.fpAssistFrac);
}

void
appendTestResult(ByteSink &sink, const TestResult &test)
{
    sink.putDouble(test.statistic);
    sink.putDouble(test.df);
    sink.putDouble(test.pValue);
    sink.putDouble(test.stderror);
}

bool
parseTestResult(ByteParser &parser, TestResult &test)
{
    return parser.getDouble(test.statistic) &&
        parser.getDouble(test.df) && parser.getDouble(test.pValue) &&
        parser.getDouble(test.stderror);
}

void
appendInterval(ByteSink &sink, const ConfidenceInterval &ci)
{
    sink.putDouble(ci.lower);
    sink.putDouble(ci.upper);
    sink.putDouble(ci.pointEstimate);
}

bool
parseInterval(ByteParser &parser, ConfidenceInterval &ci)
{
    return parser.getDouble(ci.lower) && parser.getDouble(ci.upper) &&
        parser.getDouble(ci.pointEstimate);
}

void
appendProfileRow(ByteSink &sink, const BenchmarkProfileRow &row)
{
    sink.putString(row.name);
    sink.putU64(row.percent.size());
    for (double p : row.percent)
        sink.putDouble(p);
    sink.putDouble(row.meanCpi);
}

bool
parseProfileRow(ByteParser &parser, BenchmarkProfileRow &row)
{
    std::uint64_t leaves = 0;
    if (!parser.getString(row.name) || !parser.getU64(leaves) ||
        leaves > kMaxReasonableLeaves)
        return false;
    row.percent.resize(leaves);
    for (double &p : row.percent)
        if (!parser.getDouble(p))
            return false;
    return parser.getDouble(row.meanCpi);
}

} // namespace

void
appendSuiteProfile(KeyBuilder &key, const SuiteProfile &suite)
{
    key.str(suite.name).u64(suite.benchmarks.size());
    for (const BenchmarkProfile &bench : suite.benchmarks)
        appendBenchmarkProfile(key, bench);
}

void
appendBenchmarkProfile(KeyBuilder &key, const BenchmarkProfile &bench)
{
    key.str(bench.name)
        .str(bench.language)
        .u8(bench.integer ? 1 : 0)
        .f64(bench.instructionWeight)
        .u64(bench.phaseRunLength)
        .u64(bench.phases.size());
    for (const PhaseProfile &phase : bench.phases)
        appendPhaseProfile(key, phase);
}

void
appendCollectionConfig(KeyBuilder &key, const CollectionConfig &config)
{
    key.u64(config.intervalInstructions)
        .u64(config.baseIntervals)
        .u64(config.warmupInstructions)
        .u8(config.multiplexed ? 1 : 0);
    appendMachineConfig(key, config.machine);
    key.u64(config.seed).u64(config.shards);
}

void
appendSuiteModelConfig(KeyBuilder &key, const SuiteModelConfig &config)
{
    // config.tree.builder is deliberately not hashed: every builder
    // produces byte-identical trees (builder-equivalence test).
    key.f64(config.trainFraction)
        .str(config.target)
        .u64(config.tree.minLeafInstances)
        .f64(config.tree.minLeafFraction)
        .f64(config.tree.sdThresholdFraction)
        .u64(config.tree.maxDepth)
        .u8(config.tree.prune ? 1 : 0)
        .u8(config.tree.smooth ? 1 : 0)
        .f64(config.tree.smoothingK)
        .u8(config.tree.simplifyModels ? 1 : 0)
        .u8(config.tree.clampPredictions ? 1 : 0)
        .u8(config.tree.constantLeaves ? 1 : 0)
        .u64(config.seed);
}

void
appendTransferabilityConfig(KeyBuilder &key,
                            const TransferabilityConfig &config)
{
    key.f64(config.alpha)
        .f64(config.minCorrelation)
        .f64(config.maxMae)
        .u8(config.nonParametric ? 1 : 0)
        .u64(config.bootstrapReplicates)
        .f64(config.bootstrapConfidence)
        .u64(config.bootstrapSeed)
        .str(config.modelName)
        .str(config.targetName);
}

std::uint64_t
collectStageKey(const SuiteProfile &suite,
                const CollectionConfig &config)
{
    KeyBuilder key;
    key.str("collect").u32(kSuiteDataFormatVersion);
    appendSuiteProfile(key, suite);
    appendCollectionConfig(key, config);
    return key.key();
}

std::uint64_t
collectShardKey(const BenchmarkProfile &bench,
                const CollectionConfig &config, std::size_t shard,
                const ShardSpec &spec)
{
    KeyBuilder key;
    key.str("collect-shard")
        .u32(kCollectShardPayloadVersion)
        .u32(kDatasetFormatVersion);
    appendBenchmarkProfile(key, bench);
    appendCollectionConfig(key, config);
    key.u64(shard).u64(spec.firstInterval).u64(spec.intervals);
    return key.key();
}

std::vector<ArtifactId>
collectShardArtifacts(const SuiteProfile &suite,
                      const CollectionConfig &config)
{
    std::vector<ArtifactId> ids;
    for (const BenchmarkProfile &bench : suite.benchmarks) {
        const std::vector<ShardSpec> plan = shardPlan(bench, config);
        for (std::size_t s = 0; s < plan.size(); ++s)
            ids.push_back(
                {"collect-shard",
                 collectShardKey(bench, config, s, plan[s])});
    }
    return ids;
}

std::uint64_t
trainStageKey(std::uint64_t collectKey, const SuiteModelConfig &config)
{
    KeyBuilder key;
    key.str("train").u32(kTrainPayloadVersion).u64(collectKey);
    appendSuiteModelConfig(key, config);
    return key.key();
}

std::uint64_t
profileStageKey(std::uint64_t trainKey)
{
    KeyBuilder key;
    key.str("profile").u32(kProfilePayloadVersion).u64(trainKey);
    return key.key();
}

std::uint64_t
similarityStageKey(std::uint64_t profileKey,
                   const std::vector<std::string> &subset)
{
    KeyBuilder key;
    key.str("similarity")
        .u32(kSimilarityPayloadVersion)
        .u64(profileKey)
        .u64(subset.size());
    for (const std::string &name : subset)
        key.str(name);
    return key.key();
}

std::uint64_t
transferStageKey(std::uint64_t modelTrainKey,
                 std::uint64_t targetTrainKey,
                 std::string_view targetSelector,
                 const TransferabilityConfig &config)
{
    KeyBuilder key;
    key.str("transfer")
        .u32(kTransferPayloadVersion)
        .u64(modelTrainKey)
        .u64(targetTrainKey)
        .bytes(targetSelector);
    appendTransferabilityConfig(key, config);
    return key.key();
}

// ---- Codecs. ----

std::string
encodeSuiteData(const SuiteData &data)
{
    std::ostringstream out;
    writeSuiteData(out, data);
    return std::move(out).str();
}

std::optional<SuiteData>
decodeSuiteData(std::string_view payload)
{
    std::istringstream in{std::string(payload)};
    return readSuiteData(in);
}

std::string
encodeShardSamples(const Dataset &samples)
{
    ByteSink sink;
    appendDataset(sink, samples);
    return sink.bytes();
}

std::optional<Dataset>
decodeShardSamples(std::string_view payload)
{
    ByteParser parser(payload);
    auto samples = parseDataset(parser);
    if (!samples || !parser.atEnd())
        return std::nullopt;
    return samples;
}

std::string
encodeSuiteModel(const SuiteModel &model)
{
    std::ostringstream tree_text;
    writeModelTree(model.tree, tree_text);

    ByteSink sink;
    sink.putString(model.suiteName);
    sink.putString(std::move(tree_text).str());
    appendDataset(sink, model.train);
    appendDataset(sink, model.test);
    sink.putDouble(model.meanCpi);
    return sink.bytes();
}

std::optional<SuiteModel>
decodeSuiteModel(std::string_view payload)
{
    ByteParser parser(payload);
    SuiteModel model;
    std::string tree_text;
    if (!parser.getString(model.suiteName) ||
        !parser.getString(tree_text))
        return std::nullopt;

    std::istringstream tree_in(std::move(tree_text));
    auto tree = tryReadModelTree(tree_in);
    if (!tree)
        return std::nullopt;
    model.tree = std::move(*tree);

    auto train = parseDataset(parser);
    if (!train)
        return std::nullopt;
    model.train = std::move(*train);
    auto test = parseDataset(parser);
    if (!test)
        return std::nullopt;
    model.test = std::move(*test);

    if (!parser.getDouble(model.meanCpi) || !parser.atEnd())
        return std::nullopt;
    return model;
}

std::string
encodeProfileTable(const ProfileTable &table)
{
    ByteSink sink;
    sink.putU64(table.numModels());
    sink.putU64(table.rows().size());
    for (const BenchmarkProfileRow &row : table.rows())
        appendProfileRow(sink, row);
    appendProfileRow(sink, table.suiteRow());
    appendProfileRow(sink, table.averageRow());
    return sink.bytes();
}

std::optional<ProfileTable>
decodeProfileTable(std::string_view payload)
{
    ByteParser parser(payload);
    std::uint64_t models = 0;
    std::uint64_t count = 0;
    if (!parser.getU64(models) || models > kMaxReasonableLeaves ||
        !parser.getU64(count) || count > kMaxReasonableRows)
        return std::nullopt;

    std::vector<BenchmarkProfileRow> rows(count);
    for (BenchmarkProfileRow &row : rows)
        if (!parseProfileRow(parser, row))
            return std::nullopt;
    BenchmarkProfileRow suite;
    BenchmarkProfileRow average;
    if (!parseProfileRow(parser, suite) ||
        !parseProfileRow(parser, average) || !parser.atEnd())
        return std::nullopt;
    return ProfileTable(models, std::move(rows), std::move(suite),
                        std::move(average));
}

std::string
encodeSimilarity(const SimilarityMatrix &matrix)
{
    ByteSink sink;
    const std::size_t n = matrix.names().size();
    sink.putU64(n);
    for (const std::string &name : matrix.names())
        sink.putString(name);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            sink.putDouble(matrix.at(i, j));
    for (std::size_t i = 0; i < n; ++i)
        sink.putDouble(matrix.distanceToSuite(i));
    return sink.bytes();
}

std::optional<SimilarityMatrix>
decodeSimilarity(std::string_view payload)
{
    ByteParser parser(payload);
    std::uint64_t n = 0;
    if (!parser.getU64(n) || n < 2 || n > kMaxReasonableRows)
        return std::nullopt;

    std::vector<std::string> names(n);
    for (std::string &name : names)
        if (!parser.getString(name))
            return std::nullopt;
    std::vector<double> cells(n * n);
    for (double &cell : cells)
        if (!parser.getDouble(cell))
            return std::nullopt;
    std::vector<double> to_suite(n);
    for (double &d : to_suite)
        if (!parser.getDouble(d))
            return std::nullopt;
    if (!parser.atEnd())
        return std::nullopt;
    return SimilarityMatrix(std::move(names), std::move(cells),
                            std::move(to_suite));
}

std::string
encodeTransferReport(const TransferabilityReport &report)
{
    ByteSink sink;
    sink.putString(report.modelName);
    sink.putString(report.targetName);
    appendTestResult(sink, report.cpiTest);
    appendTestResult(sink, report.predictionTest);
    appendTestResult(sink, report.mannWhitney);
    appendTestResult(sink, report.levene);
    sink.putDouble(report.accuracy.correlation);
    sink.putDouble(report.accuracy.meanAbsoluteError);
    sink.putDouble(report.accuracy.rootMeanSquaredError);
    sink.putDouble(report.accuracy.relativeAbsoluteError);
    sink.putDouble(report.accuracy.rootRelativeSquaredError);
    appendInterval(sink, report.correlationCi);
    appendInterval(sink, report.maeCi);
    sink.putU8(report.hasBootstrap ? 1 : 0);
    sink.putU64(report.trainCount);
    sink.putU64(report.targetCount);
    sink.putDouble(report.trainMeanCpi);
    sink.putDouble(report.targetMeanCpi);
    sink.putDouble(report.predictedMeanCpi);
    sink.putDouble(report.trainSdCpi);
    sink.putDouble(report.targetSdCpi);
    sink.putDouble(report.predictedSdCpi);
    sink.putDouble(report.config.alpha);
    sink.putDouble(report.config.minCorrelation);
    sink.putDouble(report.config.maxMae);
    sink.putU8(report.config.nonParametric ? 1 : 0);
    sink.putU64(report.config.bootstrapReplicates);
    sink.putDouble(report.config.bootstrapConfidence);
    sink.putU64(report.config.bootstrapSeed);
    sink.putString(report.config.modelName);
    sink.putString(report.config.targetName);
    return sink.bytes();
}

std::optional<TransferabilityReport>
decodeTransferReport(std::string_view payload)
{
    ByteParser parser(payload);
    TransferabilityReport report;
    std::uint8_t has_bootstrap = 0;
    std::uint8_t non_parametric = 0;
    std::uint64_t train_count = 0;
    std::uint64_t target_count = 0;
    std::uint64_t replicates = 0;
    const bool ok = parser.getString(report.modelName) &&
        parser.getString(report.targetName) &&
        parseTestResult(parser, report.cpiTest) &&
        parseTestResult(parser, report.predictionTest) &&
        parseTestResult(parser, report.mannWhitney) &&
        parseTestResult(parser, report.levene) &&
        parser.getDouble(report.accuracy.correlation) &&
        parser.getDouble(report.accuracy.meanAbsoluteError) &&
        parser.getDouble(report.accuracy.rootMeanSquaredError) &&
        parser.getDouble(report.accuracy.relativeAbsoluteError) &&
        parser.getDouble(report.accuracy.rootRelativeSquaredError) &&
        parseInterval(parser, report.correlationCi) &&
        parseInterval(parser, report.maeCi) &&
        parser.getU8(has_bootstrap) && parser.getU64(train_count) &&
        parser.getU64(target_count) &&
        parser.getDouble(report.trainMeanCpi) &&
        parser.getDouble(report.targetMeanCpi) &&
        parser.getDouble(report.predictedMeanCpi) &&
        parser.getDouble(report.trainSdCpi) &&
        parser.getDouble(report.targetSdCpi) &&
        parser.getDouble(report.predictedSdCpi) &&
        parser.getDouble(report.config.alpha) &&
        parser.getDouble(report.config.minCorrelation) &&
        parser.getDouble(report.config.maxMae) &&
        parser.getU8(non_parametric) &&
        parser.getU64(replicates) &&
        parser.getDouble(report.config.bootstrapConfidence) &&
        parser.getU64(report.config.bootstrapSeed) &&
        parser.getString(report.config.modelName) &&
        parser.getString(report.config.targetName);
    if (!ok || !parser.atEnd())
        return std::nullopt;
    report.hasBootstrap = has_bootstrap != 0;
    report.trainCount = train_count;
    report.targetCount = target_count;
    report.config.nonParametric = non_parametric != 0;
    report.config.bootstrapReplicates = replicates;
    return report;
}

// ---- Stages. ----

SuiteData
collectStage(Pipeline &pipe, const SuiteProfile &suite,
             const CollectionConfig &config)
{
    struct ShardTask
    {
        std::size_t bench = 0;
        std::size_t shard = 0;
        ShardSpec spec;
        StageRun run;
    };
    const auto msSince =
        [](std::chrono::steady_clock::time_point start) {
            return std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                .count();
        };

    const std::size_t n = suite.benchmarks.size();
    std::vector<ShardTask> tasks;
    std::vector<std::vector<Dataset>> parts(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::vector<ShardSpec> plan =
            shardPlan(suite.benchmarks[i], config);
        parts[i].resize(plan.size());
        for (std::size_t s = 0; s < plan.size(); ++s) {
            ShardTask task;
            task.bench = i;
            task.shard = s;
            task.spec = plan[s];
            task.run.label = "collect-shard:" +
                             suite.benchmarks[i].name + "/" +
                             std::to_string(s);
            task.run.id = ArtifactId{
                "collect-shard",
                collectShardKey(suite.benchmarks[i], config, s,
                                plan[s])};
            tasks.push_back(std::move(task));
        }
    }

    // Serial store pass first: hits decode in deterministic order
    // (no concurrent remote fetches racing on one connection), and
    // only the true misses fan out below.
    std::vector<std::size_t> misses;
    for (std::size_t t = 0; t < tasks.size(); ++t) {
        ShardTask &task = tasks[t];
        const auto start = std::chrono::steady_clock::now();
        if (auto payload = pipe.store().load(task.run.id)) {
            if (auto samples = decodeShardSamples(*payload)) {
                task.run.cached = true;
                task.run.payloadBytes = payload->size();
                parts[task.bench][task.shard] = std::move(*samples);
            } else {
                wct_warn("artifact '", task.run.id.fileName(),
                         "' failed to decode; recomputing shard");
            }
        }
        task.run.ms = msSince(start);
        if (!task.run.cached)
            misses.push_back(t);
    }

    // Misses compute and publish over the pool into pre-assigned
    // slots. Both store backends are thread-safe writers (atomic
    // rename locally, a mutex-serialized connection remotely).
    parallelFor(misses.size(), [&](std::size_t m) {
        ShardTask &task = tasks[misses[m]];
        const auto start = std::chrono::steady_clock::now();
        Dataset samples = collectShard(suite.benchmarks[task.bench],
                                       config, task.shard, task.spec);
        const std::string payload = encodeShardSamples(samples);
        task.run.payloadBytes = payload.size();
        pipe.store().store(task.run.id, payload);
        parts[task.bench][task.shard] = std::move(samples);
        task.run.ms += msSince(start);
    });

    for (ShardTask &task : tasks)
        pipe.record(std::move(task.run));

    // Fixed-order stitch: byte-identical for any thread count and
    // any warm/cold mix.
    SuiteData out;
    out.suiteName = suite.name;
    out.benchmarks.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        BenchmarkData &bench = out.benchmarks[i];
        bench.name = suite.benchmarks[i].name;
        bench.instructionWeight =
            suite.benchmarks[i].instructionWeight;
        Dataset samples = std::move(parts[i].front());
        for (std::size_t s = 1; s < parts[i].size(); ++s)
            samples.append(parts[i][s]);
        bench.samples = std::move(samples);
    }
    return out;
}

SuiteModel
trainStage(Pipeline &pipe, const SuiteData &data,
           std::uint64_t collectKey, const SuiteModelConfig &config)
{
    const ArtifactId id{"train", trainStageKey(collectKey, config)};
    SuiteModel model = pipe.run<SuiteModel>(
        "train:" + data.suiteName, id, encodeSuiteModel,
        decodeSuiteModel, [&] { return buildSuiteModel(data, config); });

    // Publish the tree text under its content hash so the serving
    // registry can resolve the model without the training inputs.
    std::ostringstream text;
    writeModelTree(model.tree, text);
    const std::string tree_text = std::move(text).str();
    const ArtifactId tree_id{"mtree",
                             modelTreeContentKey(tree_text)};
    if (!pipe.store().contains(tree_id))
        pipe.store().store(tree_id, tree_text);
    return model;
}

ProfileTable
profileStage(Pipeline &pipe, const SuiteData &data,
             const ModelTree &tree, std::uint64_t trainKey)
{
    const ArtifactId id{"profile", profileStageKey(trainKey)};
    return pipe.run<ProfileTable>(
        "profile:" + data.suiteName, id, encodeProfileTable,
        decodeProfileTable, [&] { return ProfileTable(data, tree); });
}

SimilarityMatrix
similarityStage(Pipeline &pipe, const ProfileTable &table,
                std::uint64_t profileKey,
                const std::vector<std::string> &subset)
{
    const ArtifactId id{"similarity",
                        similarityStageKey(profileKey, subset)};
    return pipe.run<SimilarityMatrix>(
        "similarity", id, encodeSimilarity, decodeSimilarity,
        [&] { return SimilarityMatrix(table, subset); });
}

TransferabilityReport
transferStage(Pipeline &pipe, const SuiteModel &model,
              std::uint64_t modelTrainKey, const Dataset &target,
              std::uint64_t targetTrainKey,
              std::string_view targetSelector,
              const TransferabilityConfig &config)
{
    const ArtifactId id{
        "transfer", transferStageKey(modelTrainKey, targetTrainKey,
                                     targetSelector, config)};
    return pipe.run<TransferabilityReport>(
        "transfer:" + config.modelName + "->" + config.targetName, id,
        encodeTransferReport, decodeTransferReport, [&] {
            return assessTransferability(model.tree, model.train,
                                         target, config);
        });
}

} // namespace wct::pipeline
