#include "pipeline/plans.hh"

#include <ostream>
#include <sstream>

#include "mtree/serialize.hh"
#include "util/logging.hh"
#include "workload/suites.hh"

namespace wct::pipeline
{

namespace
{

/** The chained stage keys of one suite under a protocol. */
struct SuiteKeys
{
    std::uint64_t collect = 0;
    std::uint64_t train = 0;
    std::uint64_t profile = 0;
    std::uint64_t similarity = 0;
};

SuiteKeys
suiteKeys(const SuiteProfile &suite, const PlanProtocol &protocol)
{
    SuiteKeys keys;
    keys.collect = collectStageKey(suite, protocol.collection);
    keys.train = trainStageKey(keys.collect, protocol.model);
    keys.profile = profileStageKey(keys.train);
    keys.similarity = similarityStageKey(keys.profile, {});
    return keys;
}

/** Collect + train one suite; fills `keys` for downstream chaining. */
SuiteModel
buildSuite(Pipeline &pipe, const SuiteProfile &suite,
           const PlanProtocol &protocol, SuiteKeys &keys)
{
    keys = suiteKeys(suite, protocol);
    const SuiteData data =
        collectStage(pipe, suite, protocol.collection);
    return trainStage(pipe, data, keys.collect, protocol.model);
}

/** The full single-suite plan: collect, train, profile, similarity. */
void
runSuitePlan(Pipeline &pipe, const SuiteProfile &suite,
             const PlanProtocol &protocol, std::ostream &out)
{
    SuiteKeys keys = suiteKeys(suite, protocol);
    const SuiteData data =
        collectStage(pipe, suite, protocol.collection);
    const SuiteModel model =
        trainStage(pipe, data, keys.collect, protocol.model);
    const ProfileTable table =
        profileStage(pipe, data, model.tree, keys.train);
    const SimilarityMatrix sim =
        similarityStage(pipe, table, keys.profile, {});

    out << "== " << suite.name << " ==\n";
    out << "benchmarks: " << data.benchmarks.size()
        << ", samples: " << data.totalSamples()
        << ", leaf models: " << model.tree.numLeaves()
        << ", mean CPI: " << model.meanCpi << "\n\n";
    out << table.render() << "\n";
    out << sim.render() << "\n";
}

TransferabilityConfig
transferConfig(const std::string &model_name,
               const std::string &target_name)
{
    TransferabilityConfig config;
    config.modelName = model_name;
    config.targetName = target_name;
    return config;
}

/** The four cross/self assessments of Section VI over both suites. */
void
runTransferPlan(Pipeline &pipe, const PlanProtocol &protocol,
                std::ostream &out)
{
    SuiteKeys cpu_keys;
    SuiteKeys omp_keys;
    const SuiteModel cpu =
        buildSuite(pipe, specCpu2006(), protocol, cpu_keys);
    const SuiteModel omp =
        buildSuite(pipe, specOmp2001(), protocol, omp_keys);

    struct Direction
    {
        const SuiteModel *model;
        std::uint64_t modelKey;
        const SuiteModel *target;
        std::uint64_t targetKey;
    };
    const Direction directions[] = {
        {&cpu, cpu_keys.train, &cpu, cpu_keys.train},
        {&cpu, cpu_keys.train, &omp, omp_keys.train},
        {&omp, omp_keys.train, &omp, omp_keys.train},
        {&omp, omp_keys.train, &cpu, cpu_keys.train},
    };
    for (const Direction &d : directions) {
        const auto report = transferStage(
            pipe, *d.model, d.modelKey, d.target->test, d.targetKey,
            "test",
            transferConfig(d.model->suiteName,
                           d.target->suiteName + ".test"));
        out << report.render() << "\n";
    }
}

/** Transfer keys without execution (for planArtifacts). */
std::vector<ArtifactId>
transferIds(const SuiteKeys &cpu, const SuiteKeys &omp)
{
    const SuiteProfile &cpu_suite = specCpu2006();
    const SuiteProfile &omp_suite = specOmp2001();
    const auto id = [](std::uint64_t model_key,
                       std::uint64_t target_key,
                       const std::string &model_name,
                       const std::string &target_name) {
        return ArtifactId{
            "transfer",
            transferStageKey(model_key, target_key, "test",
                             transferConfig(model_name,
                                            target_name + ".test"))};
    };
    return {
        id(cpu.train, cpu.train, cpu_suite.name, cpu_suite.name),
        id(cpu.train, omp.train, cpu_suite.name, omp_suite.name),
        id(omp.train, omp.train, omp_suite.name, omp_suite.name),
        id(omp.train, cpu.train, omp_suite.name, cpu_suite.name),
    };
}

void
appendSuiteIds(std::vector<ArtifactId> &ids, const SuiteProfile &suite,
               const PlanProtocol &protocol, const SuiteKeys &keys,
               bool full)
{
    // Collection artifacts are per-shard: the shard plan is a pure
    // function of the protocol, so the expansion enumerates without
    // collecting and `wct cache gc` liveness stays exact.
    for (ArtifactId &id :
         collectShardArtifacts(suite, protocol.collection))
        ids.push_back(std::move(id));
    ids.push_back({"train", keys.train});
    if (full) {
        ids.push_back({"profile", keys.profile});
        ids.push_back({"similarity", keys.similarity});
    }
}

/**
 * The ("mtree", content key) ids of the trees whose train artifacts
 * exist in the store: the content key is a hash of the serialized
 * tree, so it is only discoverable by decoding the train artifact.
 */
void
appendModelIds(std::vector<ArtifactId> &ids, const ArtifactStore &store,
               const std::vector<std::uint64_t> &train_keys)
{
    for (std::uint64_t train_key : train_keys) {
        const auto payload = store.load({"train", train_key});
        if (!payload)
            continue;
        const auto model = decodeSuiteModel(*payload);
        if (!model)
            continue;
        std::ostringstream text;
        writeModelTree(model->tree, text);
        ids.push_back(
            {"mtree", modelTreeContentKey(std::move(text).str())});
    }
}

} // namespace

CollectionConfig
standardCollection()
{
    CollectionConfig config;
    config.intervalInstructions = 8192;
    config.baseIntervals = 700;
    config.warmupInstructions = 1'500'000;
    config.multiplexed = true;
    config.seed = 0x5eed;
    return config;
}

SuiteModelConfig
standardModelConfig()
{
    SuiteModelConfig config;
    config.trainFraction = 0.10;
    config.tree.minLeafInstances = 25;
    config.tree.minLeafFraction = 0.025;
    config.tree.sdThresholdFraction = 0.05;
    config.seed = 0xcafe;
    return config;
}

std::vector<std::string>
planNames()
{
    return {"cpu2006", "omp2001", "transfer", "full"};
}

bool
isPlanName(const std::string &name)
{
    for (const std::string &known : planNames())
        if (known == name)
            return true;
    return false;
}

void
runPlan(Pipeline &pipe, const std::string &name,
        const PlanProtocol &protocol, std::ostream &out)
{
    if (name == "cpu2006" || name == "omp2001") {
        runSuitePlan(pipe, suiteByName(name), protocol, out);
        return;
    }
    if (name == "transfer") {
        runTransferPlan(pipe, protocol, out);
        return;
    }
    if (name == "full") {
        runSuitePlan(pipe, specCpu2006(), protocol, out);
        runSuitePlan(pipe, specOmp2001(), protocol, out);
        runTransferPlan(pipe, protocol, out);
        return;
    }
    wct_fatal("unknown plan '", name, "'");
}

std::vector<ArtifactId>
planArtifacts(const std::string &name, const PlanProtocol &protocol,
              const ArtifactStore &store)
{
    const SuiteKeys cpu = suiteKeys(specCpu2006(), protocol);
    const SuiteKeys omp = suiteKeys(specOmp2001(), protocol);

    std::vector<ArtifactId> ids;
    std::vector<std::uint64_t> train_keys;
    if (name == "cpu2006" || name == "omp2001") {
        const SuiteKeys &keys = name == "cpu2006" ? cpu : omp;
        appendSuiteIds(ids, suiteByName(name), protocol, keys, true);
        train_keys = {keys.train};
    } else if (name == "transfer") {
        appendSuiteIds(ids, specCpu2006(), protocol, cpu, false);
        appendSuiteIds(ids, specOmp2001(), protocol, omp, false);
        for (ArtifactId &id : transferIds(cpu, omp))
            ids.push_back(std::move(id));
        train_keys = {cpu.train, omp.train};
    } else if (name == "full") {
        appendSuiteIds(ids, specCpu2006(), protocol, cpu, true);
        appendSuiteIds(ids, specOmp2001(), protocol, omp, true);
        for (ArtifactId &id : transferIds(cpu, omp))
            ids.push_back(std::move(id));
        train_keys = {cpu.train, omp.train};
    } else {
        wct_fatal("unknown plan '", name, "'");
    }
    appendModelIds(ids, store, train_keys);
    return ids;
}

} // namespace wct::pipeline
