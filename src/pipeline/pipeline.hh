/**
 * @file
 * The staged-execution layer: one Pipeline drives the paper's fixed
 * dataflow — collect PMU intervals, train the suite M5' tree,
 * classify samples into leaf profiles, compute similarity, assess
 * transferability — as content-addressed stages over an
 * ArtifactStore.
 *
 * Every stage declares its inputs as a content key (derived with the
 * store's KeyBuilder from canonical encodings of everything the
 * output depends on, including upstream stage keys) and its output as
 * a binary artifact payload. Pipeline::run() then gives each stage
 * the same lifecycle: look the key up in the store, decode on a hit,
 * compute + encode + store on a miss, and warn-and-recompute when the
 * artifact on disk is corrupt or mismatched. Each execution is
 * recorded as a StageRun (key, hit/miss, wall time, artifact size),
 * which `wct run` and bench/perf_pipeline render as the per-stage
 * cache report.
 *
 * Because stage keys chain (a train key hashes the collect key it
 * consumes), changing any parameter re-runs exactly the stages
 * downstream of the change — regenerating Table III after a tweak
 * re-collects nothing that is still valid.
 */

#ifndef WCT_PIPELINE_PIPELINE_HH
#define WCT_PIPELINE_PIPELINE_HH

#include <chrono>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "data/artifact_store.hh"
#include "util/logging.hh"

namespace wct::pipeline
{

/** Record of one executed stage. */
struct StageRun
{
    std::string label;  ///< human name, e.g. "collect:cpu2006"
    ArtifactId id;      ///< where the output lives in the store
    bool cached = false; ///< artifact hit (no recompute)
    double ms = 0.0;     ///< wall time incl. decode or compute+store
    std::size_t payloadBytes = 0;
};

/** One staged execution over a store; see the file comment. */
class Pipeline
{
  public:
    /** A disabled (default) store runs every stage uncached. */
    explicit Pipeline(ArtifactStore store = {})
        : store_(std::move(store))
    {
    }

    const ArtifactStore &store() const { return store_; }

    /** Stages executed so far, in order. */
    const std::vector<StageRun> &runs() const { return runs_; }

    /** True when every executed stage was served from the store. */
    bool allCached() const;

    /** Number of cache hits among the executed stages. */
    std::size_t cachedCount() const;

    /** Render the per-stage cache/hit/timing report. */
    std::string renderReport() const;

    /**
     * Append an externally-executed stage record. The shard-granular
     * collect stage drives its own load/compute/store loop (hits
     * decode serially, misses fan out over the pool) and records one
     * StageRun per shard in deterministic task order through here.
     */
    void record(StageRun run) { runs_.push_back(std::move(run)); }

    /**
     * Execute one stage. `encode` serializes a computed value into an
     * artifact payload; `decode` must reject any byte sequence it did
     * not produce (returning nullopt falls back to recompute, with a
     * warning). The value is returned either way; the StageRun is
     * appended to runs().
     */
    template <typename T>
    T
    run(const std::string &label, const ArtifactId &id,
        const std::function<std::string(const T &)> &encode,
        const std::function<std::optional<T>(std::string_view)>
            &decode,
        const std::function<T()> &compute)
    {
        StageRun record;
        record.label = label;
        record.id = id;
        const auto start = std::chrono::steady_clock::now();

        std::optional<T> value;
        if (auto payload = store_.load(id)) {
            value = decode(*payload);
            if (value) {
                record.cached = true;
                record.payloadBytes = payload->size();
            } else {
                wct_warn("artifact '", id.fileName(),
                         "' failed to decode; recomputing stage ",
                         label);
            }
        }
        if (!value) {
            value = compute();
            const std::string payload = encode(*value);
            record.payloadBytes = payload.size();
            store_.store(id, payload);
        }

        const auto stop = std::chrono::steady_clock::now();
        record.ms =
            std::chrono::duration<double, std::milli>(stop - start)
                .count();
        runs_.push_back(record);
        return std::move(*value);
    }

  private:
    ArtifactStore store_;
    std::vector<StageRun> runs_;
};

} // namespace wct::pipeline

#endif // WCT_PIPELINE_PIPELINE_HH
