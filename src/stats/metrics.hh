/**
 * @file
 * Prediction accuracy metrics for transferability assessment
 * (Section VI-B of the paper): the correlation coefficient C and mean
 * absolute error MAE, plus the standard companions (RMSE, relative
 * absolute error, root relative squared error) WEKA reports.
 */

#ifndef WCT_STATS_METRICS_HH
#define WCT_STATS_METRICS_HH

#include <span>

namespace wct
{

/** Bundle of accuracy metrics for a prediction vector. */
struct AccuracyMetrics
{
    /** Pearson correlation between predicted and actual (paper's C). */
    double correlation = 0.0;

    /** Mean absolute error, in units of the target (paper's MAE). */
    double meanAbsoluteError = 0.0;

    /** Root mean squared error. */
    double rootMeanSquaredError = 0.0;

    /** MAE relative to the mean-predictor MAE, as a fraction. */
    double relativeAbsoluteError = 0.0;

    /** RMSE relative to the mean-predictor RMSE, as a fraction. */
    double rootRelativeSquaredError = 0.0;

    /**
     * The paper's acceptance rule: C > 0.85 and MAE < 0.15 (CPI
     * units) indicate a transferable model.
     */
    bool acceptable(double min_correlation = 0.85,
                    double max_mae = 0.15) const
    {
        return correlation > min_correlation &&
            meanAbsoluteError < max_mae;
    }
};

/** Compute all metrics from paired predicted/actual vectors. */
AccuracyMetrics computeAccuracy(std::span<const double> predicted,
                                std::span<const double> actual);

/** Mean absolute error only. */
double meanAbsoluteError(std::span<const double> predicted,
                         std::span<const double> actual);

/** Root mean squared error only. */
double rootMeanSquaredError(std::span<const double> predicted,
                            std::span<const double> actual);

} // namespace wct

#endif // WCT_STATS_METRICS_HH
