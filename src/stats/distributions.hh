/**
 * @file
 * Probability distributions needed by the hypothesis tests: standard
 * normal, Student's t, and Fisher's F, all built on the regularized
 * incomplete beta function (continued-fraction evaluation).
 */

#ifndef WCT_STATS_DISTRIBUTIONS_HH
#define WCT_STATS_DISTRIBUTIONS_HH

namespace wct
{

/**
 * Regularized incomplete beta function I_x(a, b) for a, b > 0 and
 * x in [0, 1], evaluated with the Lentz continued fraction.
 */
double incompleteBeta(double a, double b, double x);

/** Standard normal cumulative distribution function. */
double normalCdf(double z);

/**
 * Standard normal quantile (inverse CDF) via the Acklam rational
 * approximation with one Halley refinement step; p in (0, 1).
 */
double normalQuantile(double p);

/** Student-t cumulative distribution function with df > 0. */
double studentTCdf(double t, double df);

/** Two-sided p-value for a t statistic. */
double studentTTwoSidedP(double t, double df);

/**
 * Student-t quantile: the critical value c with P(T <= c) = p,
 * found by bisection on the CDF (monotone, robust).
 */
double studentTQuantile(double p, double df);

/** Fisher F cumulative distribution function with d1, d2 > 0. */
double fisherFCdf(double f, double d1, double d2);

/** Upper-tail p-value for an F statistic. */
double fisherFUpperP(double f, double d1, double d2);

} // namespace wct

#endif // WCT_STATS_DISTRIBUTIONS_HH
