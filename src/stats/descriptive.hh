/**
 * @file
 * Descriptive statistics over raw double sequences.
 *
 * These are the estimators Section VI of the paper uses: sample means,
 * unbiased sample variances, and the derived standard errors feeding
 * the two-sample t statistics.
 */

#ifndef WCT_STATS_DESCRIPTIVE_HH
#define WCT_STATS_DESCRIPTIVE_HH

#include <cstddef>
#include <span>
#include <vector>

namespace wct
{

/*
 * NaN and empty-input contract (pinned by the property suite in
 * tests/prop/descriptive_prop_test.cc):
 *
 *  - Empty input is a caller bug for estimators with no meaningful
 *    value (mean, quantile, median, RunningStats::min/max): they
 *    panic. Variance-style estimators return 0 for degenerate sizes
 *    so single-sample nodes never divide by zero.
 *  - NaN observations propagate through the moment-based estimators
 *    (mean, variance, covariance) following IEEE semantics, but the
 *    order-statistic estimators (median, quantile) panic: sorting a
 *    range with NaN violates strict weak ordering and would silently
 *    return garbage otherwise.
 */

/** Arithmetic mean; panics on empty input. NaN inputs yield NaN. */
double mean(std::span<const double> xs);

/** Unbiased sample variance (divides by n - 1); zero for n < 2. */
double sampleVariance(std::span<const double> xs);

/** Square root of sampleVariance. */
double sampleStddev(std::span<const double> xs);

/** Population variance (divides by n); zero for empty input. */
double populationVariance(std::span<const double> xs);

/** Median (copies and sorts); panics on empty or NaN input. */
double median(std::span<const double> xs);

/**
 * Quantile with linear interpolation between order statistics,
 * q in [0, 1]. Panics on empty input, q outside [0, 1], or NaN
 * observations (which have no rank).
 */
double quantile(std::span<const double> xs, double q);

/** Sample covariance (divides by n - 1); panics on size mismatch. */
double sampleCovariance(std::span<const double> xs,
                        std::span<const double> ys);

/**
 * Pearson correlation coefficient; returns 0 when either side has
 * zero variance (degenerate, by convention). The result is clamped
 * to [-1, 1]: the cov/(sx*sy) form can exceed the mathematical range
 * by rounding on near-collinear data, which would otherwise leak
 * into threshold comparisons (e.g. the C > 0.85 acceptance rule).
 */
double pearsonCorrelation(std::span<const double> xs,
                          std::span<const double> ys);

/**
 * Single-pass accumulator (Welford) for streaming mean/variance,
 * used by the interval collector and by tree training.
 *
 * Differentially tested against the two-pass textbook estimators
 * over randomized inputs (tests/prop/descriptive_prop_test.cc). A
 * NaN observation permanently poisons mean and variance (IEEE
 * propagation); min/max panic on an empty accumulator.
 */
class RunningStats
{
  public:
    /** Fold one observation into the accumulator. */
    void add(double x);

    /** Merge another accumulator (parallel Welford combination). */
    void merge(const RunningStats &other);

    std::size_t count() const { return count_; }
    double mean() const { return mean_; }

    /** Unbiased sample variance; zero for count < 2. */
    double sampleVariance() const;

    /** Population variance; zero for count < 1. */
    double populationVariance() const;

    double sampleStddev() const;
    double min() const;
    double max() const;
    double sum() const { return mean_ * static_cast<double>(count_); }

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace wct

#endif // WCT_STATS_DESCRIPTIVE_HH
