/**
 * @file
 * Nonparametric bootstrap confidence intervals.
 *
 * The paper's transferability thresholds (C > 0.85, MAE < 0.15) are
 * applied to point estimates; bootstrap resampling quantifies how
 * much those estimates move under sampling noise, so borderline
 * verdicts can be flagged instead of silently flipping with the seed.
 */

#ifndef WCT_STATS_BOOTSTRAP_HH
#define WCT_STATS_BOOTSTRAP_HH

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "util/rng.hh"

namespace wct
{

/** A two-sided percentile confidence interval. */
struct ConfidenceInterval
{
    double lower = 0.0;
    double upper = 0.0;
    double pointEstimate = 0.0;

    /** Interval width. */
    double width() const { return upper - lower; }

    /** True when the whole interval lies strictly above x. */
    bool entirelyAbove(double x) const { return lower > x; }

    /** True when the whole interval lies strictly below x. */
    bool entirelyBelow(double x) const { return upper < x; }

    /** True when x lies inside the interval (verdict is unstable). */
    bool
    contains(double x) const
    {
        return x >= lower && x <= upper;
    }
};

/**
 * Percentile bootstrap for a statistic of one sample.
 *
 * @param xs         Observations.
 * @param statistic  Function of a resampled vector.
 * @param replicates Bootstrap resamples (e.g. 1000).
 * @param confidence Two-sided level in (0, 1), e.g. 0.95.
 */
ConfidenceInterval bootstrapCi(
    std::span<const double> xs,
    const std::function<double(std::span<const double>)> &statistic,
    Rng &rng, std::size_t replicates = 1000, double confidence = 0.95);

/**
 * Percentile bootstrap for a statistic of paired observations
 * (e.g. predicted/actual): pairs are resampled together.
 */
ConfidenceInterval bootstrapPairedCi(
    std::span<const double> xs, std::span<const double> ys,
    const std::function<double(std::span<const double>,
                               std::span<const double>)> &statistic,
    Rng &rng, std::size_t replicates = 1000, double confidence = 0.95);

} // namespace wct

#endif // WCT_STATS_BOOTSTRAP_HH
