#include "stats/tests.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "stats/descriptive.hh"
#include "stats/distributions.hh"
#include "util/logging.hh"

namespace wct
{

TestResult
pooledTTest(std::span<const double> xs, std::span<const double> ys)
{
    wct_assert(xs.size() >= 2 && ys.size() >= 2,
               "t-test needs at least two observations per sample");
    return pooledTTestFromMoments(mean(xs), sampleVariance(xs), xs.size(),
                                  mean(ys), sampleVariance(ys), ys.size());
}

TestResult
pooledTTestFromMoments(double mean1, double var1, std::size_t n1,
                       double mean2, double var2, std::size_t n2)
{
    wct_assert(n1 >= 2 && n2 >= 2,
               "t-test needs at least two observations per sample");
    const double fn1 = static_cast<double>(n1);
    const double fn2 = static_cast<double>(n2);

    TestResult r;
    r.df = fn1 + fn2 - 2.0;
    // Section VI uses the unpooled standard error of the difference
    // (Equation 10) with the pooled degrees of freedom; for the large
    // similar-sized samples of the paper the two coincide closely.
    r.stderror = std::sqrt(var1 / fn1 + var2 / fn2);
    if (r.stderror == 0.0) {
        r.statistic = (mean1 == mean2)
            ? 0.0 : std::numeric_limits<double>::infinity();
        r.pValue = (mean1 == mean2) ? 1.0 : 0.0;
        return r;
    }
    r.statistic = (mean1 - mean2) / r.stderror;
    r.pValue = studentTTwoSidedP(r.statistic, r.df);
    return r;
}

TestResult
welchTTest(std::span<const double> xs, std::span<const double> ys)
{
    wct_assert(xs.size() >= 2 && ys.size() >= 2,
               "t-test needs at least two observations per sample");
    const double n1 = static_cast<double>(xs.size());
    const double n2 = static_cast<double>(ys.size());
    const double v1 = sampleVariance(xs) / n1;
    const double v2 = sampleVariance(ys) / n2;

    TestResult r;
    r.stderror = std::sqrt(v1 + v2);
    if (r.stderror == 0.0) {
        const bool same = mean(xs) == mean(ys);
        r.statistic = same
            ? 0.0 : std::numeric_limits<double>::infinity();
        r.df = n1 + n2 - 2.0;
        r.pValue = same ? 1.0 : 0.0;
        return r;
    }
    // Welch-Satterthwaite degrees of freedom.
    r.df = (v1 + v2) * (v1 + v2) /
        (v1 * v1 / (n1 - 1.0) + v2 * v2 / (n2 - 1.0));
    r.statistic = (mean(xs) - mean(ys)) / r.stderror;
    r.pValue = studentTTwoSidedP(r.statistic, r.df);
    return r;
}

TestResult
mannWhitneyUTest(std::span<const double> xs, std::span<const double> ys)
{
    wct_assert(!xs.empty() && !ys.empty(),
               "Mann-Whitney needs non-empty samples");
    const std::size_t n1 = xs.size();
    const std::size_t n2 = ys.size();

    struct Tagged
    {
        double value;
        bool fromFirst;
    };
    std::vector<Tagged> all;
    all.reserve(n1 + n2);
    for (double x : xs)
        all.push_back({x, true});
    for (double y : ys)
        all.push_back({y, false});
    std::sort(all.begin(), all.end(),
              [](const Tagged &a, const Tagged &b) {
                  return a.value < b.value;
              });

    // Midranks with tie bookkeeping for the variance correction.
    double rank_sum_first = 0.0;
    double tie_correction = 0.0;
    std::size_t i = 0;
    while (i < all.size()) {
        std::size_t j = i;
        while (j + 1 < all.size() && all[j + 1].value == all[i].value)
            ++j;
        const double midrank =
            (static_cast<double>(i + 1) + static_cast<double>(j + 1)) / 2.0;
        const double ties = static_cast<double>(j - i + 1);
        if (ties > 1.0)
            tie_correction += ties * (ties * ties - 1.0);
        for (std::size_t k = i; k <= j; ++k)
            if (all[k].fromFirst)
                rank_sum_first += midrank;
        i = j + 1;
    }

    const double fn1 = static_cast<double>(n1);
    const double fn2 = static_cast<double>(n2);
    const double n = fn1 + fn2;
    const double u1 = rank_sum_first - fn1 * (fn1 + 1.0) / 2.0;
    const double mean_u = fn1 * fn2 / 2.0;
    double var_u = fn1 * fn2 / 12.0 *
        ((n + 1.0) - tie_correction / (n * (n - 1.0)));

    TestResult r;
    r.statistic = u1;
    r.df = 0.0;
    if (var_u <= 0.0) {
        // All observations tied: the samples are indistinguishable.
        r.pValue = 1.0;
        return r;
    }
    // Continuity-corrected normal approximation.
    const double z =
        (u1 - mean_u - (u1 > mean_u ? 0.5 : -0.5)) / std::sqrt(var_u);
    r.stderror = std::sqrt(var_u);
    r.pValue = 2.0 * (1.0 - normalCdf(std::fabs(z)));
    r.pValue = std::clamp(r.pValue, 0.0, 1.0);
    return r;
}

TestResult
ksTest(std::span<const double> xs, std::span<const double> ys)
{
    wct_assert(!xs.empty() && !ys.empty(),
               "KS test needs non-empty samples");
    std::vector<double> a(xs.begin(), xs.end());
    std::vector<double> b(ys.begin(), ys.end());
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());

    // Sweep the merged order tracking the ECDF gap.
    const double n1 = static_cast<double>(a.size());
    const double n2 = static_cast<double>(b.size());
    std::size_t i = 0;
    std::size_t j = 0;
    double d = 0.0;
    while (i < a.size() && j < b.size()) {
        const double x = std::min(a[i], b[j]);
        while (i < a.size() && a[i] <= x)
            ++i;
        while (j < b.size() && b[j] <= x)
            ++j;
        d = std::max(d, std::fabs(static_cast<double>(i) / n1 -
                                  static_cast<double>(j) / n2));
    }

    TestResult r;
    r.statistic = d;
    r.df = 0.0;
    if (d <= 0.0) {
        // Identical ECDFs: the alternating series below does not
        // converge at lambda = 0; the p-value is exactly 1.
        r.pValue = 1.0;
        return r;
    }
    // Asymptotic Kolmogorov distribution:
    // p = 2 sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2).
    const double en = std::sqrt(n1 * n2 / (n1 + n2));
    const double lambda = (en + 0.12 + 0.11 / en) * d;
    double p = 0.0;
    double sign = 1.0;
    for (int k = 1; k <= 100; ++k) {
        const double term =
            std::exp(-2.0 * k * k * lambda * lambda);
        p += sign * term;
        sign = -sign;
        if (term < 1e-12)
            break;
    }
    r.pValue = std::clamp(2.0 * p, 0.0, 1.0);
    return r;
}

TestResult
leveneTest(std::span<const double> xs, std::span<const double> ys)
{
    wct_assert(xs.size() >= 2 && ys.size() >= 2,
               "Levene test needs at least two observations per sample");
    const double mx = mean(xs);
    const double my = mean(ys);

    std::vector<double> zx;
    zx.reserve(xs.size());
    for (double x : xs)
        zx.push_back(std::fabs(x - mx));
    std::vector<double> zy;
    zy.reserve(ys.size());
    for (double y : ys)
        zy.push_back(std::fabs(y - my));

    const double n1 = static_cast<double>(zx.size());
    const double n2 = static_cast<double>(zy.size());
    const double n = n1 + n2;
    const double mzx = mean(zx);
    const double mzy = mean(zy);
    const double mz = (mzx * n1 + mzy * n2) / n;

    const double between =
        n1 * (mzx - mz) * (mzx - mz) + n2 * (mzy - mz) * (mzy - mz);
    double within = 0.0;
    for (double z : zx)
        within += (z - mzx) * (z - mzx);
    for (double z : zy)
        within += (z - mzy) * (z - mzy);

    TestResult r;
    r.df = n - 2.0;
    if (within == 0.0) {
        r.statistic = between == 0.0
            ? 0.0 : std::numeric_limits<double>::infinity();
        r.pValue = between == 0.0 ? 1.0 : 0.0;
        return r;
    }
    // One-way ANOVA F on the absolute deviations, k = 2 groups.
    r.statistic = (between / 1.0) / (within / (n - 2.0));
    r.pValue = fisherFUpperP(r.statistic, 1.0, n - 2.0);
    return r;
}

} // namespace wct
