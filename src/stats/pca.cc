#include "stats/pca.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.hh"

namespace wct
{

void
jacobiEigenSymmetric(const std::vector<double> &matrix, std::size_t n,
                     std::vector<double> &eigenvalues,
                     std::vector<std::vector<double>> &eigenvectors)
{
    wct_assert(matrix.size() == n * n, "matrix size mismatch");
    std::vector<double> a = matrix;

    // V starts as identity and accumulates the rotations.
    std::vector<double> v(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        v[i * n + i] = 1.0;

    constexpr int max_sweeps = 100;
    for (int sweep = 0; sweep < max_sweeps; ++sweep) {
        // Sum of squared off-diagonal elements.
        double off = 0.0;
        for (std::size_t p = 0; p < n; ++p)
            for (std::size_t q = p + 1; q < n; ++q)
                off += a[p * n + q] * a[p * n + q];
        if (off < 1e-22)
            break;

        for (std::size_t p = 0; p < n; ++p) {
            for (std::size_t q = p + 1; q < n; ++q) {
                const double apq = a[p * n + q];
                if (std::fabs(apq) < 1e-300)
                    continue;
                const double app = a[p * n + p];
                const double aqq = a[q * n + q];
                const double theta = (aqq - app) / (2.0 * apq);
                // Stable tangent of the rotation angle.
                const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                    (std::fabs(theta) +
                     std::sqrt(theta * theta + 1.0));
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double s = t * c;

                for (std::size_t k = 0; k < n; ++k) {
                    const double akp = a[k * n + p];
                    const double akq = a[k * n + q];
                    a[k * n + p] = c * akp - s * akq;
                    a[k * n + q] = s * akp + c * akq;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double apk = a[p * n + k];
                    const double aqk = a[q * n + k];
                    a[p * n + k] = c * apk - s * aqk;
                    a[q * n + k] = s * apk + c * aqk;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double vkp = v[k * n + p];
                    const double vkq = v[k * n + q];
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Extract and sort descending by eigenvalue.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t(0));
    std::sort(order.begin(), order.end(),
              [&](std::size_t x, std::size_t y) {
                  return a[x * n + x] > a[y * n + y];
              });

    eigenvalues.assign(n, 0.0);
    eigenvectors.assign(n, std::vector<double>(n, 0.0));
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t src = order[i];
        eigenvalues[i] = a[src * n + src];
        for (std::size_t k = 0; k < n; ++k)
            eigenvectors[i][k] = v[k * n + src];
    }
}

PcaResult
computePca(const Dataset &data, const std::vector<std::string> &exclude,
           bool standardize)
{
    if (data.numRows() < 2)
        wct_fatal("PCA needs at least two rows");

    PcaResult result;
    std::vector<std::size_t> cols;
    for (std::size_t c = 0; c < data.numColumns(); ++c) {
        const std::string &name = data.columnNames()[c];
        if (std::find(exclude.begin(), exclude.end(), name) ==
            exclude.end()) {
            cols.push_back(c);
            result.columns.push_back(name);
        }
    }
    const std::size_t p = cols.size();
    if (p == 0)
        wct_fatal("PCA: every column excluded");
    const double n = static_cast<double>(data.numRows());

    // Means and scales.
    result.mean.assign(p, 0.0);
    for (std::size_t r = 0; r < data.numRows(); ++r)
        for (std::size_t j = 0; j < p; ++j)
            result.mean[j] += data.at(r, cols[j]);
    for (double &m : result.mean)
        m /= n;

    result.scale.assign(p, 1.0);
    if (standardize) {
        for (std::size_t j = 0; j < p; ++j) {
            double ss = 0.0;
            for (std::size_t r = 0; r < data.numRows(); ++r) {
                const double d =
                    data.at(r, cols[j]) - result.mean[j];
                ss += d * d;
            }
            const double sd = std::sqrt(ss / (n - 1.0));
            // Constant columns stay unscaled (their PCs carry zero
            // variance anyway).
            result.scale[j] = sd > 0.0 ? sd : 1.0;
        }
    }

    // Covariance of the centred (and scaled) data.
    std::vector<double> cov(p * p, 0.0);
    std::vector<double> z(p);
    for (std::size_t r = 0; r < data.numRows(); ++r) {
        for (std::size_t j = 0; j < p; ++j)
            z[j] = (data.at(r, cols[j]) - result.mean[j]) /
                result.scale[j];
        for (std::size_t i = 0; i < p; ++i)
            for (std::size_t j = i; j < p; ++j)
                cov[i * p + j] += z[i] * z[j];
    }
    for (std::size_t i = 0; i < p; ++i)
        for (std::size_t j = i; j < p; ++j) {
            cov[i * p + j] /= (n - 1.0);
            cov[j * p + i] = cov[i * p + j];
        }

    jacobiEigenSymmetric(cov, p, result.eigenvalues,
                         result.components);
    // Numerical floor: tiny negative eigenvalues are zero variance.
    for (double &ev : result.eigenvalues)
        ev = std::max(ev, 0.0);
    return result;
}

double
PcaResult::varianceExplained(std::size_t k) const
{
    double total = 0.0;
    for (double ev : eigenvalues)
        total += ev;
    if (total <= 0.0)
        return 1.0;
    double head = 0.0;
    for (std::size_t i = 0; i < std::min(k, eigenvalues.size()); ++i)
        head += eigenvalues[i];
    return head / total;
}

std::size_t
PcaResult::componentsForVariance(double fraction) const
{
    wct_assert(fraction > 0.0 && fraction <= 1.0,
               "variance fraction out of range: ", fraction);
    for (std::size_t k = 1; k <= eigenvalues.size(); ++k)
        if (varianceExplained(k) >= fraction)
            return k;
    return eigenvalues.size();
}

std::vector<double>
PcaResult::project(std::span<const double> row, std::size_t k) const
{
    wct_assert(row.size() == dimension(),
               "projection row arity ", row.size(), " != ",
               dimension());
    wct_assert(k <= components.size(), "too many components: ", k);
    std::vector<double> out(k, 0.0);
    for (std::size_t c = 0; c < k; ++c) {
        double dot = 0.0;
        for (std::size_t j = 0; j < dimension(); ++j)
            dot += components[c][j] * (row[j] - mean[j]) / scale[j];
        out[c] = dot;
    }
    return out;
}

Dataset
PcaResult::transform(const Dataset &data, std::size_t k) const
{
    wct_assert(k >= 1 && k <= components.size(),
               "component count out of range: ", k);
    std::vector<std::size_t> cols;
    cols.reserve(dimension());
    for (const std::string &name : columns)
        cols.push_back(data.columnIndex(name));

    std::vector<std::string> names;
    names.reserve(k);
    for (std::size_t c = 1; c <= k; ++c)
        names.push_back("PC" + std::to_string(c));
    Dataset out(names);
    out.reserveRows(data.numRows());

    std::vector<double> row(dimension());
    for (std::size_t r = 0; r < data.numRows(); ++r) {
        for (std::size_t j = 0; j < dimension(); ++j)
            row[j] = data.at(r, cols[j]);
        out.addRow(project(row, k));
    }
    return out;
}

} // namespace wct
