/**
 * @file
 * Principal component analysis over dataset columns.
 *
 * The paper's related work ([12], [13], [14]) subsets benchmark
 * suites by clustering in PCA space; this module provides the PCA
 * half so the toolkit can reproduce that methodology as a baseline
 * against profile-distance subsetting. Dimensionality here is tiny
 * (~20 metrics), so the symmetric eigenproblem is solved exactly with
 * cyclic Jacobi rotations.
 */

#ifndef WCT_STATS_PCA_HH
#define WCT_STATS_PCA_HH

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "data/dataset.hh"

namespace wct
{

/** A fitted PCA basis. */
struct PcaResult
{
    /** Names of the columns the basis was fitted on, in order. */
    std::vector<std::string> columns;

    /** Per-column training means. */
    std::vector<double> mean;

    /** Per-column scale divisors (1s when not standardised). */
    std::vector<double> scale;

    /** Eigenvalues of the (standardised) covariance, descending. */
    std::vector<double> eigenvalues;

    /** Principal directions; components[k] has one weight per column. */
    std::vector<std::vector<double>> components;

    std::size_t dimension() const { return columns.size(); }

    /** Cumulative fraction of variance captured by the first k PCs. */
    double varianceExplained(std::size_t k) const;

    /** Smallest k capturing at least the given variance fraction. */
    std::size_t componentsForVariance(double fraction) const;

    /**
     * Project one observation (in fitted-column order) onto the
     * first k components.
     */
    std::vector<double> project(std::span<const double> row,
                                std::size_t k) const;

    /**
     * Transform a dataset (must contain the fitted columns) into a
     * k-column dataset of principal-component scores PC1..PCk.
     */
    Dataset transform(const Dataset &data, std::size_t k) const;
};

/**
 * Fit PCA on all columns of a dataset except those listed.
 *
 * @param standardize Divide columns by their sample sd (correlation
 *                    PCA), the usual choice for PMU metrics whose
 *                    scales differ by orders of magnitude.
 */
PcaResult computePca(const Dataset &data,
                     const std::vector<std::string> &exclude = {},
                     bool standardize = true);

/**
 * Jacobi eigensolver for symmetric matrices (row-major n x n).
 * Exposed for testing. Eigenvalues/vectors are returned descending.
 *
 * @param matrix        Symmetric input (unchanged).
 * @param eigenvalues   Output, size n.
 * @param eigenvectors  Output, eigenvectors[i] is the unit vector for
 *                      eigenvalues[i].
 */
void jacobiEigenSymmetric(const std::vector<double> &matrix,
                          std::size_t n,
                          std::vector<double> &eigenvalues,
                          std::vector<std::vector<double>> &eigenvectors);

} // namespace wct

#endif // WCT_STATS_PCA_HH
