#include "stats/cluster.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace wct
{

namespace
{

double
squaredDistance(const std::vector<double> &a,
                const std::vector<double> &b)
{
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        acc += d * d;
    }
    return acc;
}

/** One k-means run from a k-means++ seeding. */
KMeansResult
kMeansOnce(const std::vector<std::vector<double>> &points,
           std::size_t k, Rng &rng, std::size_t max_iterations)
{
    const std::size_t n = points.size();
    KMeansResult result;

    // k-means++ seeding.
    std::vector<std::vector<double>> centroids;
    centroids.push_back(points[rng.uniformInt(n)]);
    std::vector<double> d2(n);
    while (centroids.size() < k) {
        double total = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            double best = std::numeric_limits<double>::infinity();
            for (const auto &c : centroids)
                best = std::min(best, squaredDistance(points[i], c));
            d2[i] = best;
            total += best;
        }
        if (total <= 0.0) {
            // All remaining points coincide with a centroid.
            centroids.push_back(points[rng.uniformInt(n)]);
            continue;
        }
        double target = rng.uniform() * total;
        std::size_t chosen = n - 1;
        for (std::size_t i = 0; i < n; ++i) {
            target -= d2[i];
            if (target <= 0.0) {
                chosen = i;
                break;
            }
        }
        centroids.push_back(points[chosen]);
    }

    std::vector<std::size_t> assignment(n, 0);
    for (std::size_t iter = 0; iter < max_iterations; ++iter) {
        bool changed = false;
        for (std::size_t i = 0; i < n; ++i) {
            std::size_t best = 0;
            double best_d =
                squaredDistance(points[i], centroids[0]);
            for (std::size_t c = 1; c < k; ++c) {
                const double d =
                    squaredDistance(points[i], centroids[c]);
                if (d < best_d) {
                    best_d = d;
                    best = c;
                }
            }
            if (assignment[i] != best) {
                assignment[i] = best;
                changed = true;
            }
        }
        if (!changed && iter > 0)
            break;

        // Recompute centroids; empty clusters re-seed on the point
        // farthest from its centroid.
        const std::size_t dim = points[0].size();
        std::vector<std::vector<double>> sums(
            k, std::vector<double>(dim, 0.0));
        std::vector<std::size_t> counts(k, 0);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < dim; ++j)
                sums[assignment[i]][j] += points[i][j];
            ++counts[assignment[i]];
        }
        for (std::size_t c = 0; c < k; ++c) {
            if (counts[c] == 0) {
                std::size_t far = 0;
                double far_d = -1.0;
                for (std::size_t i = 0; i < n; ++i) {
                    const double d = squaredDistance(
                        points[i], centroids[assignment[i]]);
                    if (d > far_d) {
                        far_d = d;
                        far = i;
                    }
                }
                centroids[c] = points[far];
                continue;
            }
            for (std::size_t j = 0; j < dim; ++j)
                sums[c][j] /= static_cast<double>(counts[c]);
            centroids[c] = sums[c];
        }
    }

    result.assignment = std::move(assignment);
    result.centroids = std::move(centroids);
    result.inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        result.inertia += squaredDistance(
            points[i], result.centroids[result.assignment[i]]);

    // Exemplars: nearest real point to each centroid.
    result.exemplars.assign(k, 0);
    for (std::size_t c = 0; c < k; ++c) {
        double best = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < n; ++i) {
            const double d =
                squaredDistance(points[i], result.centroids[c]);
            if (d < best) {
                best = d;
                result.exemplars[c] = i;
            }
        }
    }
    return result;
}

} // namespace

KMeansResult
kMeans(const std::vector<std::vector<double>> &points, std::size_t k,
       Rng &rng, std::size_t max_iterations, std::size_t restarts)
{
    wct_assert(!points.empty(), "k-means on empty input");
    wct_assert(k >= 1 && k <= points.size(),
               "k = ", k, " out of range for ", points.size(),
               " points");
    for (const auto &pt : points)
        wct_assert(pt.size() == points[0].size(),
                   "ragged k-means input");

    KMeansResult best;
    best.inertia = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < std::max<std::size_t>(restarts, 1);
         ++r) {
        KMeansResult candidate =
            kMeansOnce(points, k, rng, max_iterations);
        if (candidate.inertia < best.inertia)
            best = std::move(candidate);
    }
    return best;
}

KMedoidsResult
kMedoids(const std::vector<double> &distances, std::size_t n,
         std::size_t k)
{
    wct_assert(distances.size() == n * n,
               "distance matrix size mismatch");
    wct_assert(k >= 1 && k <= n, "k = ", k, " out of range");

    auto dist = [&](std::size_t i, std::size_t j) {
        return distances[i * n + j];
    };

    // Cost of a medoid set: sum over points of min distance.
    auto cost_of = [&](const std::vector<std::size_t> &medoids) {
        double total = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            double best = std::numeric_limits<double>::infinity();
            for (std::size_t m : medoids)
                best = std::min(best, dist(i, m));
            total += best;
        }
        return total;
    };

    // BUILD: start from the 1-medoid optimum, then greedily add the
    // point that lowers cost the most.
    std::vector<std::size_t> medoids;
    {
        std::size_t best = 0;
        double best_cost = std::numeric_limits<double>::infinity();
        for (std::size_t m = 0; m < n; ++m) {
            const double c = cost_of({m});
            if (c < best_cost) {
                best_cost = c;
                best = m;
            }
        }
        medoids.push_back(best);
    }
    while (medoids.size() < k) {
        std::size_t best = n;
        double best_cost = std::numeric_limits<double>::infinity();
        for (std::size_t cand = 0; cand < n; ++cand) {
            if (std::find(medoids.begin(), medoids.end(), cand) !=
                medoids.end())
                continue;
            auto trial = medoids;
            trial.push_back(cand);
            const double c = cost_of(trial);
            if (c < best_cost) {
                best_cost = c;
                best = cand;
            }
        }
        medoids.push_back(best);
    }

    // SWAP refinement.
    double current = cost_of(medoids);
    bool improved = true;
    while (improved) {
        improved = false;
        for (std::size_t mi = 0; mi < medoids.size(); ++mi) {
            for (std::size_t cand = 0; cand < n; ++cand) {
                if (std::find(medoids.begin(), medoids.end(), cand) !=
                    medoids.end())
                    continue;
                auto trial = medoids;
                trial[mi] = cand;
                const double c = cost_of(trial);
                if (c + 1e-12 < current) {
                    medoids = std::move(trial);
                    current = c;
                    improved = true;
                }
            }
        }
    }

    KMedoidsResult result;
    std::sort(medoids.begin(), medoids.end());
    result.medoids = medoids;
    result.cost = current;
    result.assignment.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        double best = std::numeric_limits<double>::infinity();
        for (std::size_t m = 0; m < medoids.size(); ++m) {
            if (dist(i, medoids[m]) < best) {
                best = dist(i, medoids[m]);
                result.assignment[i] = m;
            }
        }
    }
    return result;
}

} // namespace wct
