#include "stats/descriptive.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace wct
{

double
mean(std::span<const double> xs)
{
    wct_assert(!xs.empty(), "mean of empty sequence");
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
sampleVariance(std::span<const double> xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double ss = 0.0;
    for (double x : xs) {
        const double d = x - m;
        ss += d * d;
    }
    return ss / static_cast<double>(xs.size() - 1);
}

double
sampleStddev(std::span<const double> xs)
{
    return std::sqrt(sampleVariance(xs));
}

double
populationVariance(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    const double m = mean(xs);
    double ss = 0.0;
    for (double x : xs) {
        const double d = x - m;
        ss += d * d;
    }
    return ss / static_cast<double>(xs.size());
}

double
median(std::span<const double> xs)
{
    return quantile(xs, 0.5);
}

double
quantile(std::span<const double> xs, double q)
{
    wct_assert(!xs.empty(), "quantile of empty sequence");
    wct_assert(q >= 0.0 && q <= 1.0, "quantile out of range: ", q);
    for (double x : xs)
        wct_assert(!std::isnan(x), "quantile of sequence with NaN");
    std::vector<double> sorted(xs.begin(), xs.end());
    std::sort(sorted.begin(), sorted.end());
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    if (lo + 1 >= sorted.size())
        return sorted.back();
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double
sampleCovariance(std::span<const double> xs, std::span<const double> ys)
{
    wct_assert(xs.size() == ys.size(), "covariance size mismatch: ",
               xs.size(), " vs ", ys.size());
    if (xs.size() < 2)
        return 0.0;
    const double mx = mean(xs);
    const double my = mean(ys);
    double acc = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i)
        acc += (xs[i] - mx) * (ys[i] - my);
    return acc / static_cast<double>(xs.size() - 1);
}

double
pearsonCorrelation(std::span<const double> xs, std::span<const double> ys)
{
    const double cov = sampleCovariance(xs, ys);
    const double sx = sampleStddev(xs);
    const double sy = sampleStddev(ys);
    if (sx == 0.0 || sy == 0.0)
        return 0.0;
    // Rounding on near-collinear data can push |r| past 1.
    return std::clamp(cov / (sx * sy), -1.0, 1.0);
}

void
RunningStats::add(double x)
{
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = n1 + n2;
    mean_ += delta * n2 / total;
    m2_ += other.m2_ + delta * delta * n1 * n2 / total;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
RunningStats::sampleVariance() const
{
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double
RunningStats::populationVariance() const
{
    return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
}

double
RunningStats::sampleStddev() const
{
    return std::sqrt(sampleVariance());
}

double
RunningStats::min() const
{
    wct_assert(count_ > 0, "min of empty accumulator");
    return min_;
}

double
RunningStats::max() const
{
    wct_assert(count_ > 0, "max of empty accumulator");
    return max_;
}

} // namespace wct
