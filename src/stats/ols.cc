#include "stats/ols.hh"

#include <cmath>

#include "util/logging.hh"

namespace wct
{

double
OlsFit::predict(std::span<const double> x) const
{
    wct_assert(x.size() >= coefficients.size(),
               "predictor row too narrow: ", x.size(), " < ",
               coefficients.size());
    double y = intercept;
    for (std::size_t j = 0; j < coefficients.size(); ++j)
        y += coefficients[j] * x[j];
    return y;
}

bool
choleskySolveInPlace(std::vector<double> &a, std::vector<double> &b,
                     std::size_t n)
{
    wct_assert(a.size() == n * n && b.size() == n,
               "cholesky dimensions mismatch");

    // Factor A = L L^T in the lower triangle of a.
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double sum = a[i * n + j];
            for (std::size_t k = 0; k < j; ++k)
                sum -= a[i * n + k] * a[j * n + k];
            if (i == j) {
                if (sum <= 0.0 || !std::isfinite(sum))
                    return false;
                a[i * n + i] = std::sqrt(sum);
            } else {
                a[i * n + j] = sum / a[j * n + j];
            }
        }
    }

    // Forward substitution: L z = b.
    for (std::size_t i = 0; i < n; ++i) {
        double sum = b[i];
        for (std::size_t k = 0; k < i; ++k)
            sum -= a[i * n + k] * b[k];
        b[i] = sum / a[i * n + i];
    }
    // Back substitution: L^T x = z.
    for (std::size_t ii = n; ii > 0; --ii) {
        const std::size_t i = ii - 1;
        double sum = b[i];
        for (std::size_t k = i + 1; k < n; ++k)
            sum -= a[k * n + i] * b[k];
        b[i] = sum / a[i * n + i];
    }
    return true;
}

OlsFit
fitOls(const std::vector<std::span<const double>> &rows,
       std::span<const double> y, double ridge)
{
    wct_assert(rows.size() == y.size(),
               "OLS rows/targets mismatch: ", rows.size(), " vs ",
               y.size());
    wct_assert(!rows.empty(), "OLS needs at least one observation");
    wct_assert(ridge >= 0.0, "negative ridge ", ridge);

    const std::size_t p = rows.front().size();
    const std::size_t dim = p + 1; // intercept first
    const std::size_t n = rows.size();

    // Accumulate the normal equations: G = X'X, rhs = X'y, with the
    // implicit leading 1 column for the intercept.
    std::vector<double> gram(dim * dim, 0.0);
    std::vector<double> rhs(dim, 0.0);
    for (std::size_t r = 0; r < n; ++r) {
        const auto &x = rows[r];
        wct_assert(x.size() == p, "ragged OLS input at row ", r);
        gram[0] += 1.0;
        rhs[0] += y[r];
        for (std::size_t i = 0; i < p; ++i) {
            gram[(i + 1) * dim] += x[i];
            rhs[i + 1] += x[i] * y[r];
            for (std::size_t j = 0; j <= i; ++j)
                gram[(i + 1) * dim + (j + 1)] += x[i] * x[j];
        }
    }
    // Mirror the lower triangle.
    for (std::size_t i = 0; i < dim; ++i)
        for (std::size_t j = i + 1; j < dim; ++j)
            gram[i * dim + j] = gram[j * dim + i];

    // Scale the ridge with the average predictor energy so the same
    // nominal value works across very differently scaled columns.
    double diag_scale = 0.0;
    for (std::size_t i = 1; i < dim; ++i)
        diag_scale += gram[i * dim + i];
    diag_scale = p > 0 ? diag_scale / static_cast<double>(p) : 1.0;
    if (diag_scale <= 0.0)
        diag_scale = 1.0;

    std::vector<double> solution;
    double lambda = ridge;
    constexpr int max_escalations = 12;
    for (int attempt = 0; ; ++attempt) {
        std::vector<double> a = gram;
        std::vector<double> b(rhs.begin(), rhs.end());
        for (std::size_t i = 1; i < dim; ++i)
            a[i * dim + i] += lambda * diag_scale;
        if (choleskySolveInPlace(a, b, dim)) {
            solution = std::move(b);
            break;
        }
        if (attempt >= max_escalations)
            wct_fatal("OLS normal equations unsolvable even with ridge ",
                      lambda);
        lambda = lambda == 0.0 ? 1e-10 : lambda * 10.0;
    }

    OlsFit fit;
    fit.numObservations = n;
    fit.intercept = solution[0];
    fit.coefficients.assign(solution.begin() + 1, solution.end());

    double rss = 0.0;
    double abs_err = 0.0;
    double y_mean = 0.0;
    for (std::size_t r = 0; r < n; ++r)
        y_mean += y[r];
    y_mean /= static_cast<double>(n);
    double tss = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
        const double e = fit.predict(rows[r]) - y[r];
        rss += e * e;
        abs_err += std::fabs(e);
        tss += (y[r] - y_mean) * (y[r] - y_mean);
    }
    fit.residualSumSquares = rss;
    fit.meanAbsoluteError = abs_err / static_cast<double>(n);
    fit.rSquared = tss > 0.0 ? 1.0 - rss / tss : (rss == 0.0 ? 1.0 : 0.0);
    return fit;
}

OlsFit
fitOlsColumns(const std::vector<std::vector<double>> &predictors,
              std::span<const double> y, double ridge)
{
    const std::size_t n = y.size();
    for (const auto &col : predictors)
        wct_assert(col.size() == n, "predictor column length mismatch");

    std::vector<double> packed(n * predictors.size());
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t j = 0; j < predictors.size(); ++j)
            packed[r * predictors.size() + j] = predictors[j][r];

    std::vector<std::span<const double>> rows;
    rows.reserve(n);
    for (std::size_t r = 0; r < n; ++r)
        rows.emplace_back(packed.data() + r * predictors.size(),
                          predictors.size());
    return fitOls(rows, y, ridge);
}

} // namespace wct
