/**
 * @file
 * Clustering primitives used for benchmark subsetting: k-means over
 * feature vectors (the PCA-space methodology of the paper's related
 * work [12], [13]) and k-medoids over a precomputed distance matrix
 * (natural for the L1 profile distances of Table III).
 */

#ifndef WCT_STATS_CLUSTER_HH
#define WCT_STATS_CLUSTER_HH

#include <cstddef>
#include <vector>

#include "util/rng.hh"

namespace wct
{

/** Result of a k-means run. */
struct KMeansResult
{
    /** Cluster index per input point. */
    std::vector<std::size_t> assignment;

    /** Cluster centroids. */
    std::vector<std::vector<double>> centroids;

    /** Sum of squared distances to assigned centroids. */
    double inertia = 0.0;

    /** Index of the point nearest to each centroid. */
    std::vector<std::size_t> exemplars;
};

/**
 * Lloyd's k-means with k-means++ seeding and multiple restarts
 * (best inertia wins). Deterministic given the Rng.
 */
KMeansResult kMeans(const std::vector<std::vector<double>> &points,
                    std::size_t k, Rng &rng,
                    std::size_t max_iterations = 100,
                    std::size_t restarts = 8);

/** Result of a k-medoids run. */
struct KMedoidsResult
{
    /** Indices of the medoid points. */
    std::vector<std::size_t> medoids;

    /** Medoid position (0..k-1) per input point. */
    std::vector<std::size_t> assignment;

    /** Total distance of points to their medoids. */
    double cost = 0.0;
};

/**
 * PAM-style k-medoids over a symmetric distance matrix (row-major
 * n x n): greedy BUILD seeding followed by SWAP refinement until no
 * single medoid/non-medoid swap lowers the cost.
 */
KMedoidsResult kMedoids(const std::vector<double> &distances,
                        std::size_t n, std::size_t k);

} // namespace wct

#endif // WCT_STATS_CLUSTER_HH
