#include "stats/distributions.hh"

#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace wct
{

namespace
{

/**
 * Continued-fraction core of the incomplete beta (Numerical-Recipes
 * style modified Lentz algorithm). Valid for x < (a + 1)/(a + b + 2);
 * the public wrapper applies the symmetry transform otherwise.
 */
double
betaContinuedFraction(double a, double b, double x)
{
    constexpr int max_iterations = 300;
    constexpr double epsilon = 3.0e-14;
    constexpr double tiny = 1.0e-300;

    const double qab = a + b;
    const double qap = a + 1.0;
    const double qam = a - 1.0;

    double c = 1.0;
    double d = 1.0 - qab * x / qap;
    if (std::fabs(d) < tiny)
        d = tiny;
    d = 1.0 / d;
    double h = d;

    for (int m = 1; m <= max_iterations; ++m) {
        const double m2 = 2.0 * m;
        // Even step.
        double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < tiny)
            d = tiny;
        c = 1.0 + aa / c;
        if (std::fabs(c) < tiny)
            c = tiny;
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < tiny)
            d = tiny;
        c = 1.0 + aa / c;
        if (std::fabs(c) < tiny)
            c = tiny;
        d = 1.0 / d;
        const double del = d * c;
        h *= del;
        if (std::fabs(del - 1.0) < epsilon)
            return h;
    }
    wct_warn("incomplete beta continued fraction did not converge "
             "(a=", a, ", b=", b, ", x=", x, ")");
    return h;
}

} // namespace

double
incompleteBeta(double a, double b, double x)
{
    wct_assert(a > 0.0 && b > 0.0, "incompleteBeta needs a, b > 0");
    if (x <= 0.0)
        return 0.0;
    if (x >= 1.0)
        return 1.0;

    const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
        std::lgamma(b) + a * std::log(x) + b * std::log1p(-x);
    const double front = std::exp(ln_front);

    if (x < (a + 1.0) / (a + b + 2.0))
        return front * betaContinuedFraction(a, b, x) / a;
    return 1.0 - front * betaContinuedFraction(b, a, 1.0 - x) / b;
}

double
normalCdf(double z)
{
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double
normalQuantile(double p)
{
    wct_assert(p > 0.0 && p < 1.0, "normalQuantile needs p in (0,1)");

    // Acklam's rational approximation.
    static const double a[] = {
        -3.969683028665376e+01, 2.209460984245205e+02,
        -2.759285104469687e+02, 1.383577518672690e+02,
        -3.066479806614716e+01, 2.506628277459239e+00,
    };
    static const double b[] = {
        -5.447609879822406e+01, 1.615858368580409e+02,
        -1.556989798598866e+02, 6.680131188771972e+01,
        -1.328068155288572e+01,
    };
    static const double c[] = {
        -7.784894002430293e-03, -3.223964580411365e-01,
        -2.400758277161838e+00, -2.549732539343734e+00,
        4.374664141464968e+00, 2.938163982698783e+00,
    };
    static const double d[] = {
        7.784695709041462e-03, 3.224671290700398e-01,
        2.445134137142996e+00, 3.754408661907416e+00,
    };
    constexpr double p_low = 0.02425;

    double x;
    if (p < p_low) {
        const double q = std::sqrt(-2.0 * std::log(p));
        x = (((((c[0]*q + c[1])*q + c[2])*q + c[3])*q + c[4])*q + c[5]) /
            ((((d[0]*q + d[1])*q + d[2])*q + d[3])*q + 1.0);
    } else if (p <= 1.0 - p_low) {
        const double q = p - 0.5;
        const double r = q * q;
        x = (((((a[0]*r + a[1])*r + a[2])*r + a[3])*r + a[4])*r + a[5])*q /
            (((((b[0]*r + b[1])*r + b[2])*r + b[3])*r + b[4])*r + 1.0);
    } else {
        const double q = std::sqrt(-2.0 * std::log1p(-p));
        x = -(((((c[0]*q + c[1])*q + c[2])*q + c[3])*q + c[4])*q + c[5]) /
            ((((d[0]*q + d[1])*q + d[2])*q + d[3])*q + 1.0);
    }

    // One Halley refinement step against the accurate CDF.
    const double e = normalCdf(x) - p;
    const double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
    x = x - u / (1.0 + x * u / 2.0);
    return x;
}

double
studentTCdf(double t, double df)
{
    wct_assert(df > 0.0, "studentTCdf needs df > 0");
    if (std::isinf(t))
        return t > 0 ? 1.0 : 0.0;
    const double x = df / (df + t * t);
    const double tail = 0.5 * incompleteBeta(df / 2.0, 0.5, x);
    return t >= 0.0 ? 1.0 - tail : tail;
}

double
studentTTwoSidedP(double t, double df)
{
    const double x = df / (df + t * t);
    return incompleteBeta(df / 2.0, 0.5, x);
}

double
studentTQuantile(double p, double df)
{
    wct_assert(p > 0.0 && p < 1.0, "studentTQuantile needs p in (0,1)");
    // Bracket using the normal quantile (t has heavier tails).
    double lo = -1.0;
    double hi = 1.0;
    while (studentTCdf(lo, df) > p)
        lo *= 2.0;
    while (studentTCdf(hi, df) < p)
        hi *= 2.0;
    for (int i = 0; i < 200; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (studentTCdf(mid, df) < p)
            lo = mid;
        else
            hi = mid;
        if (hi - lo < 1e-12 * std::max(1.0, std::fabs(hi)))
            break;
    }
    return 0.5 * (lo + hi);
}

double
fisherFCdf(double f, double d1, double d2)
{
    wct_assert(d1 > 0.0 && d2 > 0.0, "fisherFCdf needs d1, d2 > 0");
    if (f <= 0.0)
        return 0.0;
    const double x = d1 * f / (d1 * f + d2);
    return incompleteBeta(d1 / 2.0, d2 / 2.0, x);
}

double
fisherFUpperP(double f, double d1, double d2)
{
    return 1.0 - fisherFCdf(f, d1, d2);
}

} // namespace wct
