#include "stats/bootstrap.hh"

#include <algorithm>

#include "stats/descriptive.hh"
#include "util/logging.hh"

namespace wct
{

namespace
{

ConfidenceInterval
percentileInterval(std::vector<double> &replicas, double point,
                   double confidence)
{
    std::sort(replicas.begin(), replicas.end());
    const double alpha = (1.0 - confidence) / 2.0;
    ConfidenceInterval ci;
    ci.pointEstimate = point;
    ci.lower = quantile(replicas, alpha);
    ci.upper = quantile(replicas, 1.0 - alpha);
    return ci;
}

} // namespace

ConfidenceInterval
bootstrapCi(std::span<const double> xs,
            const std::function<double(std::span<const double>)>
                &statistic,
            Rng &rng, std::size_t replicates, double confidence)
{
    wct_assert(!xs.empty(), "bootstrap of an empty sample");
    wct_assert(replicates >= 10, "too few bootstrap replicates");
    wct_assert(confidence > 0.0 && confidence < 1.0,
               "confidence out of (0, 1): ", confidence);

    const std::size_t n = xs.size();
    std::vector<double> resample(n);
    std::vector<double> replicas;
    replicas.reserve(replicates);
    for (std::size_t b = 0; b < replicates; ++b) {
        for (std::size_t i = 0; i < n; ++i)
            resample[i] = xs[rng.uniformInt(n)];
        replicas.push_back(statistic(resample));
    }
    return percentileInterval(replicas, statistic(xs), confidence);
}

ConfidenceInterval
bootstrapPairedCi(
    std::span<const double> xs, std::span<const double> ys,
    const std::function<double(std::span<const double>,
                               std::span<const double>)> &statistic,
    Rng &rng, std::size_t replicates, double confidence)
{
    wct_assert(xs.size() == ys.size(),
               "paired bootstrap size mismatch: ", xs.size(), " vs ",
               ys.size());
    wct_assert(!xs.empty(), "bootstrap of an empty sample");
    wct_assert(replicates >= 10, "too few bootstrap replicates");
    wct_assert(confidence > 0.0 && confidence < 1.0,
               "confidence out of (0, 1): ", confidence);

    const std::size_t n = xs.size();
    std::vector<double> rx(n);
    std::vector<double> ry(n);
    std::vector<double> replicas;
    replicas.reserve(replicates);
    for (std::size_t b = 0; b < replicates; ++b) {
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t j = rng.uniformInt(n);
            rx[i] = xs[j];
            ry[i] = ys[j];
        }
        replicas.push_back(statistic(rx, ry));
    }
    return percentileInterval(replicas, statistic(xs, ys),
                              confidence);
}

} // namespace wct
