#include "stats/bootstrap.hh"

#include <algorithm>
#include <cstdint>

#include "stats/descriptive.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace wct
{

namespace
{

/**
 * Replicates evaluated concurrently per block: the index draws stay
 * on the caller's thread in replicate order (the exact rng call
 * sequence of a serial loop, so results are bit-identical at any
 * thread count), while the statistic evaluations — the expensive
 * part — fan out over pre-drawn index sets. Blocking bounds the
 * buffered indices to kBlock * n.
 */
constexpr std::size_t kReplicateBlock = 64;

template <typename Evaluate>
std::vector<double>
replicateBlocks(std::size_t n, std::size_t replicates, Rng &rng,
                Evaluate evaluate)
{
    wct_assert(n <= std::uint32_t(-1),
               "bootstrap indexes samples with 32 bits");
    std::vector<double> replicas(replicates);
    std::vector<std::vector<std::uint32_t>> indices(
        std::min(kReplicateBlock, replicates));
    std::size_t done = 0;
    while (done < replicates) {
        const std::size_t block =
            std::min(kReplicateBlock, replicates - done);
        for (std::size_t b = 0; b < block; ++b) {
            indices[b].resize(n);
            for (std::size_t i = 0; i < n; ++i)
                indices[b][i] = static_cast<std::uint32_t>(
                    rng.uniformInt(n));
        }
        parallelFor(
            block,
            [&](std::size_t b) {
                replicas[done + b] = evaluate(indices[b]);
            },
            ThreadPool::global(), /*min_chunk=*/4);
        done += block;
    }
    return replicas;
}

ConfidenceInterval
percentileInterval(std::vector<double> &replicas, double point,
                   double confidence)
{
    std::sort(replicas.begin(), replicas.end());
    const double alpha = (1.0 - confidence) / 2.0;
    ConfidenceInterval ci;
    ci.pointEstimate = point;
    ci.lower = quantile(replicas, alpha);
    ci.upper = quantile(replicas, 1.0 - alpha);
    return ci;
}

} // namespace

ConfidenceInterval
bootstrapCi(std::span<const double> xs,
            const std::function<double(std::span<const double>)>
                &statistic,
            Rng &rng, std::size_t replicates, double confidence)
{
    wct_assert(!xs.empty(), "bootstrap of an empty sample");
    wct_assert(replicates >= 10, "too few bootstrap replicates");
    wct_assert(confidence > 0.0 && confidence < 1.0,
               "confidence out of (0, 1): ", confidence);

    const std::size_t n = xs.size();
    std::vector<double> replicas = replicateBlocks(
        n, replicates, rng,
        [&](const std::vector<std::uint32_t> &idx) {
            std::vector<double> resample(n);
            for (std::size_t i = 0; i < n; ++i)
                resample[i] = xs[idx[i]];
            return statistic(resample);
        });
    return percentileInterval(replicas, statistic(xs), confidence);
}

ConfidenceInterval
bootstrapPairedCi(
    std::span<const double> xs, std::span<const double> ys,
    const std::function<double(std::span<const double>,
                               std::span<const double>)> &statistic,
    Rng &rng, std::size_t replicates, double confidence)
{
    wct_assert(xs.size() == ys.size(),
               "paired bootstrap size mismatch: ", xs.size(), " vs ",
               ys.size());
    wct_assert(!xs.empty(), "bootstrap of an empty sample");
    wct_assert(replicates >= 10, "too few bootstrap replicates");
    wct_assert(confidence > 0.0 && confidence < 1.0,
               "confidence out of (0, 1): ", confidence);

    const std::size_t n = xs.size();
    std::vector<double> replicas = replicateBlocks(
        n, replicates, rng,
        [&](const std::vector<std::uint32_t> &idx) {
            std::vector<double> rx(n);
            std::vector<double> ry(n);
            for (std::size_t i = 0; i < n; ++i) {
                rx[i] = xs[idx[i]];
                ry[i] = ys[idx[i]];
            }
            return statistic(rx, ry);
        });
    return percentileInterval(replicas, statistic(xs, ys),
                              confidence);
}

} // namespace wct
