/**
 * @file
 * Two-sample hypothesis tests used by the transferability analysis
 * (Section VI-A of the paper): pooled and Welch two-sample t-tests,
 * and the non-parametric alternatives the paper names (Mann-Whitney U
 * and Levene's variance test).
 */

#ifndef WCT_STATS_TESTS_HH
#define WCT_STATS_TESTS_HH

#include <span>

namespace wct
{

/** Outcome of a two-sample location/scale test. */
struct TestResult
{
    /** The test statistic (t, z, or F depending on the test). */
    double statistic = 0.0;

    /** Degrees of freedom (0 for z-approximated tests). */
    double df = 0.0;

    /** Two-sided p-value. */
    double pValue = 1.0;

    /** Standard error of the tested difference where defined. */
    double stderror = 0.0;

    /** True when the null hypothesis is rejected at level alpha. */
    bool rejectAt(double alpha) const { return pValue < alpha; }
};

/**
 * Two-sample t-test assuming equal variances (pooled estimator).
 * H0: the two populations share a mean.
 */
TestResult pooledTTest(std::span<const double> xs,
                       std::span<const double> ys);

/**
 * Welch's two-sample t-test (unequal variances); the paper notes the
 * pooled test is robust for its large, similarly sized samples, but
 * Welch is the safer default for library users.
 */
TestResult welchTTest(std::span<const double> xs,
                      std::span<const double> ys);

/**
 * Summary-statistics form of the pooled t-test, matching the formulae
 * of Section VI-A.1 (Equations 8-11): the caller supplies means,
 * unbiased variances, and counts.
 */
TestResult pooledTTestFromMoments(double mean1, double var1,
                                  std::size_t n1, double mean2,
                                  double var2, std::size_t n2);

/**
 * Mann-Whitney U test with normal approximation and tie correction.
 * H0: equal distributions (sensitive to location shift).
 */
TestResult mannWhitneyUTest(std::span<const double> xs,
                            std::span<const double> ys);

/**
 * Levene's test for equality of variances (two groups, centered on
 * the group means as in Levene's original formulation).
 */
TestResult leveneTest(std::span<const double> xs,
                      std::span<const double> ys);

/**
 * Two-sample Kolmogorov-Smirnov test with the asymptotic p-value.
 * H0: equal distributions (sensitive to any distributional
 * difference, not just location). The statistic is the maximum
 * vertical distance between the empirical CDFs.
 */
TestResult ksTest(std::span<const double> xs,
                  std::span<const double> ys);

} // namespace wct

#endif // WCT_STATS_TESTS_HH
