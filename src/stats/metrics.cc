#include "stats/metrics.hh"

#include <cmath>

#include "stats/descriptive.hh"
#include "util/logging.hh"

namespace wct
{

double
meanAbsoluteError(std::span<const double> predicted,
                  std::span<const double> actual)
{
    wct_assert(predicted.size() == actual.size(),
               "MAE size mismatch: ", predicted.size(), " vs ",
               actual.size());
    wct_assert(!predicted.empty(), "MAE of empty vectors");
    double acc = 0.0;
    for (std::size_t i = 0; i < predicted.size(); ++i)
        acc += std::fabs(predicted[i] - actual[i]);
    return acc / static_cast<double>(predicted.size());
}

double
rootMeanSquaredError(std::span<const double> predicted,
                     std::span<const double> actual)
{
    wct_assert(predicted.size() == actual.size(),
               "RMSE size mismatch: ", predicted.size(), " vs ",
               actual.size());
    wct_assert(!predicted.empty(), "RMSE of empty vectors");
    double acc = 0.0;
    for (std::size_t i = 0; i < predicted.size(); ++i) {
        const double e = predicted[i] - actual[i];
        acc += e * e;
    }
    return std::sqrt(acc / static_cast<double>(predicted.size()));
}

AccuracyMetrics
computeAccuracy(std::span<const double> predicted,
                std::span<const double> actual)
{
    AccuracyMetrics m;
    m.correlation = pearsonCorrelation(predicted, actual);
    m.meanAbsoluteError = meanAbsoluteError(predicted, actual);
    m.rootMeanSquaredError = rootMeanSquaredError(predicted, actual);

    // Error of the trivial predictor that always answers mean(actual).
    const double actual_mean = mean(actual);
    double base_abs = 0.0;
    double base_sq = 0.0;
    for (double a : actual) {
        base_abs += std::fabs(a - actual_mean);
        base_sq += (a - actual_mean) * (a - actual_mean);
    }
    const double n = static_cast<double>(actual.size());
    base_abs /= n;
    base_sq = std::sqrt(base_sq / n);

    m.relativeAbsoluteError =
        base_abs > 0.0 ? m.meanAbsoluteError / base_abs : 0.0;
    m.rootRelativeSquaredError =
        base_sq > 0.0 ? m.rootMeanSquaredError / base_sq : 0.0;
    return m;
}

} // namespace wct
