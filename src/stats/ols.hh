/**
 * @file
 * Ordinary least squares regression with an intercept, solved by
 * Cholesky factorization of ridge-stabilised normal equations.
 *
 * This is the workhorse under every model-tree leaf: small systems
 * (at most ~20 predictors, Table I) fitted many times, so a dense
 * normal-equation solve is both adequate and fast.
 */

#ifndef WCT_STATS_OLS_HH
#define WCT_STATS_OLS_HH

#include <cstddef>
#include <span>
#include <vector>

namespace wct
{

/** A fitted linear function y = intercept + coeffs . x. */
struct OlsFit
{
    double intercept = 0.0;
    std::vector<double> coefficients;

    /** Number of observations used in the fit. */
    std::size_t numObservations = 0;

    /** Residual sum of squares on the training data. */
    double residualSumSquares = 0.0;

    /** Mean absolute training error. */
    double meanAbsoluteError = 0.0;

    /** Coefficient of determination on the training data. */
    double rSquared = 0.0;

    /** Evaluate the fitted function on a predictor row. */
    double predict(std::span<const double> x) const;
};

/**
 * Dense symmetric positive definite solver (in-place Cholesky).
 * Exposed for testing; returns false when the matrix is not positive
 * definite even after the caller's ridge adjustment.
 *
 * @param a Row-major n x n symmetric matrix (destroyed).
 * @param b Right-hand side (replaced by the solution).
 */
bool choleskySolveInPlace(std::vector<double> &a, std::vector<double> &b,
                          std::size_t n);

/**
 * Fit y = b0 + B . x by least squares.
 *
 * @param rows      Predictor rows, all of equal width.
 * @param y         Targets, one per row.
 * @param ridge     Nonnegative Tikhonov term added to the predictor
 *                  diagonal (never to the intercept); the default
 *                  covers rank deficiency from constant columns.
 *                  The solver escalates the ridge by 10x up to a
 *                  bounded number of times if factorization fails.
 */
OlsFit fitOls(const std::vector<std::span<const double>> &rows,
              std::span<const double> y, double ridge = 1e-8);

/**
 * Convenience overload for column-major input: predictors[j] is the
 * j-th predictor column.
 */
OlsFit fitOlsColumns(const std::vector<std::vector<double>> &predictors,
                     std::span<const double> y, double ridge = 1e-8);

} // namespace wct

#endif // WCT_STATS_OLS_HH
