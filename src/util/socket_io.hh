/**
 * @file
 * Shared POSIX socket primitives: a buffered std::streambuf over a
 * file descriptor plus listen/connect helpers for Unix-domain and
 * loopback-TCP sockets.
 *
 * These started life inside the serving transport (src/serve/
 * socket.cc) and were hoisted here unchanged when the remote
 * artifact store (src/data/remote_store.cc) needed the same
 * primitives — wct_data cannot depend on wct_serve, so the lowest
 * layer owns them. Everything is deliberately blocking and
 * thread-agnostic; callers own the descriptor lifecycle (closeFd)
 * and any shutdown choreography.
 */

#ifndef WCT_UTIL_SOCKET_IO_HH
#define WCT_UTIL_SOCKET_IO_HH

#include <cstddef>
#include <cstdint>
#include <streambuf>
#include <string>

namespace wct
{

/**
 * Minimal buffered std::streambuf over a socket descriptor, so the
 * envelope readers/writers of data/binary_io.hh work on a connection
 * exactly as they do on a file. Reads block; shutdown is delivered
 * by ::shutdown on the fd, which turns the parked read into EOF.
 * Writes use MSG_NOSIGNAL so a peer that already closed surfaces as
 * an EPIPE error, not a process-wide SIGPIPE. Does not own the fd.
 */
class FdStreambuf : public std::streambuf
{
  public:
    explicit FdStreambuf(int fd);

  protected:
    int_type underflow() override;
    int_type overflow(int_type ch) override;
    int sync() override;

  private:
    int flushOut();

    int fd_;
    char inBuf_[8192];
    char outBuf_[8192];
};

/** Close a descriptor if it is valid (>= 0); no-op otherwise. */
void closeFd(int fd);

/** Put a descriptor in O_NONBLOCK mode; false on failure. */
bool setNonBlocking(int fd);

/**
 * Arm SO_RCVTIMEO/SO_SNDTIMEO on a (blocking) socket so a stalled
 * peer surfaces as an EAGAIN read/write failure after `ms`
 * milliseconds instead of parking the caller forever. 0 disarms.
 */
void setSocketTimeoutMs(int fd, std::uint64_t ms);

/**
 * Bind + listen on a Unix-domain socket path (unlinking any stale
 * socket from a previous run). Returns the listening fd, or -1 with
 * the reason in `err` when non-null.
 */
int listenUnix(const std::string &path, int backlog,
               std::string *err);

/**
 * Bind + listen on 127.0.0.1:port (0 picks an ephemeral port, which
 * is reported through `bound_port`). Returns the listening fd, or -1
 * with the reason in `err` when non-null.
 */
int listenTcp(int port, int backlog, int *bound_port,
              std::string *err);

/** Connect to a Unix-domain socket; -1 + err on failure. */
int connectUnix(const std::string &path, std::string *err);

/** Connect to 127.0.0.1:port; -1 + err on failure. */
int connectTcp(int port, std::string *err);

} // namespace wct

#endif // WCT_UTIL_SOCKET_IO_HH
