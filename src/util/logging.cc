#include "util/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace wct
{

namespace
{

/** setLogQuiet state; read by the non-fatal emitters only. */
std::atomic<bool> logQuiet{false};

} // namespace

bool
setLogQuiet(bool quiet)
{
    return logQuiet.exchange(quiet, std::memory_order_relaxed);
}

namespace detail
{

namespace
{

/**
 * Emit one complete line with a single stdio call. stdio locks the
 * stream per call, so composing first keeps messages from pool
 * workers and server threads from interleaving mid-line.
 */
void
emitLine(const char *severity, const std::string &message,
         const char *file, int line)
{
    std::string buffer;
    buffer.reserve(message.size() + 64);
    buffer += severity;
    buffer += ": ";
    buffer += message;
    if (file != nullptr) {
        buffer += " (";
        buffer += file;
        buffer += ':';
        buffer += std::to_string(line);
        buffer += ')';
    }
    buffer += '\n';
    std::fputs(buffer.c_str(), stderr);
}

} // namespace

void
fatalImpl(const char *file, int line, const std::string &message)
{
    emitLine("fatal", message, file, line);
    std::exit(1);
}

void
panicImpl(const char *file, int line, const std::string &message)
{
    emitLine("panic", message, file, line);
    std::abort();
}

void
warnImpl(const char *file, int line, const std::string &message)
{
    if (!logQuiet.load(std::memory_order_relaxed))
        emitLine("warn", message, file, line);
}

void
informImpl(const std::string &message)
{
    if (!logQuiet.load(std::memory_order_relaxed))
        emitLine("info", message, nullptr, 0);
}

} // namespace detail

} // namespace wct
