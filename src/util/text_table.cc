#include "util/text_table.hh"

#include <algorithm>

#include "util/logging.hh"

namespace wct
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    wct_assert(!headers_.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    wct_assert(cells.size() == headers_.size(),
               "row arity ", cells.size(), " != header arity ",
               headers_.size());
    Row row;
    row.cells = std::move(cells);
    row.ruleBefore = pendingRule_;
    pendingRule_ = false;
    rows_.push_back(std::move(row));
}

void
TextTable::addRule()
{
    pendingRule_ = true;
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const Row &row : rows_)
        for (std::size_t c = 0; c < row.cells.size(); ++c)
            widths[c] = std::max(widths[c], row.cells[c].size());

    auto renderLine = [&](const std::vector<std::string> &cells) {
        std::string line;
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c > 0)
                line += "  ";
            line += cells[c];
            line.append(widths[c] - cells[c].size(), ' ');
        }
        // Trim trailing padding for tidy diffs.
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line + "\n";
    };

    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w;
    total += 2 * (widths.size() - 1);
    const std::string rule(total, '-');

    std::string out = renderLine(headers_);
    out += rule + "\n";
    for (const Row &row : rows_) {
        if (row.ruleBefore)
            out += rule + "\n";
        out += renderLine(row.cells);
    }
    return out;
}

} // namespace wct
