/**
 * @file
 * Deterministic random number generation for reproducible experiments.
 *
 * The toolkit never uses std::random_device or global generators: every
 * stochastic component receives an explicit Rng so that a whole
 * experiment replays bit-identically from a single seed. The core
 * generator is xoshiro256** seeded through splitmix64, which is fast,
 * passes BigCrush, and is trivially forkable into independent streams.
 */

#ifndef WCT_UTIL_RNG_HH
#define WCT_UTIL_RNG_HH

#include <array>
#include <cstdint>
#include <vector>

namespace wct
{

/** splitmix64 step; used for seeding and stream derivation. */
std::uint64_t splitmix64(std::uint64_t &state);

/**
 * xoshiro256** 1.0 pseudo random generator with distribution helpers.
 *
 * Satisfies enough of UniformRandomBitGenerator to be used directly,
 * but the member helpers below avoid libstdc++ distribution objects,
 * whose output is not specified and could change across versions.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type(0); }

    /** Next raw 64-bit value. */
    result_type operator()();

    /**
     * Derive an independent child stream.
     *
     * @param salt Distinguishes children forked from the same parent
     *             state; callers pass stable identifiers (benchmark
     *             index, phase index, ...) so layouts never depend on
     *             call order.
     */
    Rng fork(std::uint64_t salt) const;

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, bound) with rejection for exactness. */
    std::uint64_t uniformInt(std::uint64_t bound);

    /** Bernoulli draw with probability p of returning true. */
    bool bernoulli(double p);

    /** Standard normal via Box-Muller (cached spare value). */
    double normal();

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double sd);

    /** Log-normal where the underlying normal is N(mu, sigma^2). */
    double logNormal(double mu, double sigma);

    /** Exponential with the given rate (lambda). */
    double exponential(double rate);

    /** Geometric trial count (>= 1) with success probability p. */
    std::uint64_t geometric(double p);

    /**
     * Sample an index proportionally to the given nonnegative weights.
     * Panics if the weights are empty or sum to zero.
     */
    std::size_t weightedChoice(const std::vector<double> &weights);

    /**
     * Zipf-like draw in [0, n) with exponent s, implemented by
     * inverse-CDF over precomputable harmonic weights; slow path kept
     * simple because address generators cache their own tables.
     */
    std::size_t zipf(std::size_t n, double s);

    /** Fisher-Yates shuffle of an index-addressable container. */
    template <typename Seq>
    void
    shuffle(Seq &seq)
    {
        if (seq.size() < 2)
            return;
        for (std::size_t i = seq.size() - 1; i > 0; --i) {
            std::size_t j = uniformInt(i + 1);
            std::swap(seq[i], seq[j]);
        }
    }

  private:
    std::array<std::uint64_t, 4> state_;
    double spareNormal_ = 0.0;
    bool hasSpareNormal_ = false;
};

} // namespace wct

#endif // WCT_UTIL_RNG_HH
