/**
 * @file
 * Small string helpers shared across the toolkit.
 */

#ifndef WCT_UTIL_STRING_UTILS_HH
#define WCT_UTIL_STRING_UTILS_HH

#include <string>
#include <vector>

namespace wct
{

/** Split on a single-character delimiter; keeps empty fields. */
std::vector<std::string> split(const std::string &text, char delim);

/** Strip leading and trailing ASCII whitespace. */
std::string trim(const std::string &text);

/** Join the pieces with the given separator. */
std::string join(const std::vector<std::string> &pieces,
                 const std::string &sep);

/** Lower-case an ASCII string. */
std::string toLower(const std::string &text);

/** True when text begins with the given prefix. */
bool startsWith(const std::string &text, const std::string &prefix);

/** True when text ends with the given suffix. */
bool endsWith(const std::string &text, const std::string &suffix);

/** printf-style double formatting with a fixed precision. */
std::string formatDouble(double value, int precision);

/**
 * Compact numeric formatting for report tables: fixed precision, but
 * very small magnitudes switch to scientific so thresholds such as
 * 0.00019 stay legible.
 */
std::string formatCompact(double value);

} // namespace wct

#endif // WCT_UTIL_STRING_UTILS_HH
