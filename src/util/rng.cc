#include "util/rng.hh"

#include <cmath>

#include "util/logging.hh"

namespace wct
{

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

namespace
{

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    // Expand the seed; xoshiro must not start from the all-zero state,
    // which splitmix64 expansion cannot produce for any seed.
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

Rng
Rng::fork(std::uint64_t salt) const
{
    std::uint64_t mix = state_[0] ^ rotl(state_[2], 29) ^
        (salt * 0xd1342543de82ef95ull + 0x2545f4914f6cdd1dull);
    return Rng(mix);
}

double
Rng::uniform()
{
    // 53 random bits scaled into [0, 1).
    return ((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    wct_assert(lo <= hi, "bad uniform range [", lo, ", ", hi, ")");
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t bound)
{
    wct_assert(bound > 0, "uniformInt bound must be positive");
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        std::uint64_t r = (*this)();
        if (r >= threshold)
            return r % bound;
    }
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::normal()
{
    if (hasSpareNormal_) {
        hasSpareNormal_ = false;
        return spareNormal_;
    }
    // Box-Muller transform on two fresh uniforms.
    double u1 = uniform();
    while (u1 <= 0.0)
        u1 = uniform();
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * M_PI * u2;
    spareNormal_ = radius * std::sin(angle);
    hasSpareNormal_ = true;
    return radius * std::cos(angle);
}

double
Rng::normal(double mean, double sd)
{
    wct_assert(sd >= 0.0, "negative standard deviation ", sd);
    return mean + sd * normal();
}

double
Rng::logNormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

double
Rng::exponential(double rate)
{
    wct_assert(rate > 0.0, "exponential rate must be positive");
    double u = uniform();
    while (u <= 0.0)
        u = uniform();
    return -std::log(u) / rate;
}

std::uint64_t
Rng::geometric(double p)
{
    wct_assert(p > 0.0 && p <= 1.0, "geometric p out of range: ", p);
    if (p >= 1.0)
        return 1;
    double u = uniform();
    while (u <= 0.0)
        u = uniform();
    return 1 +
        static_cast<std::uint64_t>(std::log(u) / std::log1p(-p));
}

std::size_t
Rng::weightedChoice(const std::vector<double> &weights)
{
    wct_assert(!weights.empty(), "weightedChoice on empty weights");
    double total = 0.0;
    for (double w : weights) {
        wct_assert(w >= 0.0, "negative weight ", w);
        total += w;
    }
    wct_assert(total > 0.0, "weightedChoice weights sum to zero");
    double target = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        target -= weights[i];
        if (target < 0.0)
            return i;
    }
    return weights.size() - 1;
}

std::size_t
Rng::zipf(std::size_t n, double s)
{
    wct_assert(n > 0, "zipf over empty range");
    double total = 0.0;
    for (std::size_t i = 1; i <= n; ++i)
        total += 1.0 / std::pow(static_cast<double>(i), s);
    double target = uniform() * total;
    for (std::size_t i = 1; i <= n; ++i) {
        target -= 1.0 / std::pow(static_cast<double>(i), s);
        if (target < 0.0)
            return i - 1;
    }
    return n - 1;
}

} // namespace wct
