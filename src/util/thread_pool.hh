/**
 * @file
 * Small work-stealing thread pool for the training hot paths.
 *
 * Design goals, in order: determinism of the *results* computed on
 * top of it (the pool only schedules; callers write into pre-sized
 * slots and reduce in a fixed order), safe nested fork/join (a thread
 * waiting on a TaskGroup executes queued tasks instead of blocking,
 * so recursive subtree tasks can never deadlock), and zero threads
 * when parallelism is disabled (WCT_THREADS=1 runs everything inline
 * on the calling thread — the serial path, bit for bit).
 *
 * Scheduling is the classic work-stealing shape: every worker owns a
 * deque, pushes and pops its own work LIFO (cache locality for
 * recursive subtree tasks), and steals FIFO from the front of other
 * workers' deques (oldest = biggest tasks first). External threads
 * submit round-robin. Deques are mutex-protected — task bodies here
 * are thousands of cycles, so lock-free deques would buy nothing.
 *
 * The pool size is controlled by the WCT_THREADS environment variable
 * (default: std::thread::hardware_concurrency(); 1 forces the serial
 * path). See docs/performance.md.
 */

#ifndef WCT_UTIL_THREAD_POOL_HH
#define WCT_UTIL_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wct
{

/** Fixed-size work-stealing pool; see file comment. */
class ThreadPool
{
  public:
    /**
     * @param workers Number of pool threads. 0 means no threads: every
     *                TaskGroup::run executes inline on the caller.
     */
    explicit ThreadPool(std::size_t workers);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Joins all workers; outstanding tasks are drained first. */
    ~ThreadPool();

    /** Number of pool threads (0 = inline execution). */
    std::size_t workerCount() const { return threads_.size(); }

    /**
     * Process-wide pool, created on first use with
     * `configuredThreads() - 1 ? configuredThreads() : 0` workers
     * (WCT_THREADS=1 yields a pool with no threads).
     */
    static ThreadPool &global();

    /**
     * Parallelism knob honoured by global(): the WCT_THREADS
     * environment variable when set (invalid values warn and fall
     * back), otherwise std::thread::hardware_concurrency(), never
     * less than 1.
     */
    static std::size_t configuredThreads();

    /**
     * Replace the global pool with one of `workers` threads. Test-only
     * hook (the determinism property tests pin 4 workers regardless of
     * the host); must not race with concurrent global() users.
     */
    static void resetGlobalForTest(std::size_t workers);

  private:
    friend class TaskGroup;

    /** Enqueue one task (own deque for workers, round-robin else). */
    void submit(std::function<void()> task);

    /** Pop or steal one task and run it; false when none was found. */
    bool runOneTask();

    void workerLoop(std::size_t self);

    struct WorkerQueue
    {
        std::mutex mutex;
        std::deque<std::function<void()>> tasks;
    };

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> threads_;
    std::mutex sleepMutex_;
    std::condition_variable sleepCv_;
    std::atomic<bool> stop_{false};
    std::atomic<std::size_t> nextQueue_{0};
};

/**
 * Fork/join scope over a pool. run() submits a task (or executes it
 * inline on a thread-less pool); wait() helps execute queued tasks
 * until every task of this group has finished, then rethrows the
 * first exception any of them threw. The destructor waits (and
 * terminates on a pending exception — call wait() explicitly when
 * tasks can throw).
 */
class TaskGroup
{
  public:
    explicit TaskGroup(ThreadPool &pool = ThreadPool::global())
        : pool_(pool)
    {
    }

    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;

    ~TaskGroup();

    /** Submit one task; executes inline when the pool has no threads. */
    void run(std::function<void()> task);

    /** Help until all tasks finished; rethrow their first exception. */
    void wait();

  private:
    ThreadPool &pool_;
    std::atomic<std::size_t> pending_{0};
    std::mutex exceptionMutex_;
    std::exception_ptr exception_;
};

/**
 * Deterministic parallel loop: invoke fn(i) for every i in [0, n),
 * partitioned into contiguous chunks across the pool. fn must only
 * write state owned by iteration i (e.g. slot i of a pre-sized
 * vector); with that discipline the result is identical to the serial
 * loop regardless of schedule. Runs inline when the pool has no
 * threads or n is tiny.
 */
void parallelFor(std::size_t n,
                 const std::function<void(std::size_t)> &fn,
                 ThreadPool &pool = ThreadPool::global(),
                 std::size_t min_chunk = 1);

} // namespace wct

#endif // WCT_UTIL_THREAD_POOL_HH
