/**
 * @file
 * Status and error reporting helpers in the gem5 tradition.
 *
 * fatal()  — the run cannot continue because of a user-level problem
 *            (bad configuration, malformed input file); exits with
 *            status 1.
 * panic()  — an internal invariant was violated (a library bug);
 *            aborts so that a core dump or debugger can take over.
 * warn()   — something is suspicious but the run can continue.
 * inform() — plain status output for the user.
 */

#ifndef WCT_UTIL_LOGGING_HH
#define WCT_UTIL_LOGGING_HH

#include <sstream>
#include <string>

namespace wct
{

namespace detail
{

/** Append every argument to an output string stream. */
inline void
formatInto(std::ostringstream &os)
{
    (void)os;
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    formatInto(os, rest...);
}

/** Stringify a pack of arguments by streaming each in turn. */
template <typename... Args>
std::string
formatArgs(const Args &...args)
{
    std::ostringstream os;
    formatInto(os, args...);
    return os.str();
}

/** Terminate with exit(1) after printing a user-level error. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &message);

/** Terminate with abort() after printing an internal error. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &message);

/** Print a warning to stderr. */
void warnImpl(const char *file, int line, const std::string &message);

/** Print an informational message to stderr. */
void informImpl(const std::string &message);

} // namespace detail

/**
 * Suppress warn()/inform() output (fatal/panic are never suppressed).
 * The fuzz harnesses replay millions of hostile inputs whose
 * *expected* diagnostics would otherwise dominate the run; nothing
 * else should turn this on. Returns the previous setting.
 */
bool setLogQuiet(bool quiet);

} // namespace wct

/** Report an unrecoverable user-level error and exit. */
#define wct_fatal(...) \
    ::wct::detail::fatalImpl(__FILE__, __LINE__, \
                             ::wct::detail::formatArgs(__VA_ARGS__))

/** Report a violated internal invariant and abort. */
#define wct_panic(...) \
    ::wct::detail::panicImpl(__FILE__, __LINE__, \
                             ::wct::detail::formatArgs(__VA_ARGS__))

/** Report a suspicious condition without stopping the run. */
#define wct_warn(...) \
    ::wct::detail::warnImpl(__FILE__, __LINE__, \
                            ::wct::detail::formatArgs(__VA_ARGS__))

/** Print a status message for the user. */
#define wct_inform(...) \
    ::wct::detail::informImpl(::wct::detail::formatArgs(__VA_ARGS__))

/** Panic when a library invariant does not hold. */
#define wct_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ::wct::detail::panicImpl(__FILE__, __LINE__, \
                ::wct::detail::formatArgs("assertion '" #cond "' failed: ", \
                                          ##__VA_ARGS__)); \
        } \
    } while (0)

#endif // WCT_UTIL_LOGGING_HH
