/**
 * @file
 * Toolkit version reported by `wct version`. Format versions of the
 * on-disk and on-wire artifacts live next to their codecs
 * (mtree/serialize.hh, data/binary_io.hh, serve/wire.hh); the CLI
 * aggregates all of them into one report.
 */

#ifndef WCT_UTIL_VERSION_HH
#define WCT_UTIL_VERSION_HH

namespace wct
{

/** Toolkit release: bumped when a PR changes user-visible behavior. */
constexpr char kWctVersion[] = "0.7.0";

} // namespace wct

#endif // WCT_UTIL_VERSION_HH
