#include "util/thread_pool.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>

#include "util/logging.hh"

namespace wct
{

namespace
{

/** Worker index of the current thread in its pool (npos = outsider). */
thread_local const ThreadPool *tls_pool = nullptr;
thread_local std::size_t tls_worker = 0;

std::mutex &
globalPoolMutex()
{
    static std::mutex mutex;
    return mutex;
}

std::unique_ptr<ThreadPool> &
globalPoolSlot()
{
    static std::unique_ptr<ThreadPool> pool;
    return pool;
}

} // namespace

ThreadPool::ThreadPool(std::size_t workers)
{
    queues_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        queues_.push_back(std::make_unique<WorkerQueue>());
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(sleepMutex_);
        stop_.store(true, std::memory_order_release);
    }
    sleepCv_.notify_all();
    for (std::thread &thread : threads_)
        thread.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    wct_assert(!queues_.empty(), "submit on a thread-less pool");
    std::size_t index;
    if (tls_pool == this) {
        index = tls_worker; // own deque: LIFO locality
    } else {
        index = nextQueue_.fetch_add(1, std::memory_order_relaxed) %
            queues_.size();
    }
    {
        std::lock_guard<std::mutex> lock(queues_[index]->mutex);
        queues_[index]->tasks.push_back(std::move(task));
    }
    sleepCv_.notify_one();
}

bool
ThreadPool::runOneTask()
{
    const std::size_t k = queues_.size();
    if (k == 0)
        return false;
    const bool own = tls_pool == this;
    const std::size_t start = own ? tls_worker : 0;

    std::function<void()> task;
    // Own deque back first (newest: cache-warm subtree), then steal
    // the oldest task from the other deques.
    if (own) {
        WorkerQueue &queue = *queues_[start];
        std::lock_guard<std::mutex> lock(queue.mutex);
        if (!queue.tasks.empty()) {
            task = std::move(queue.tasks.back());
            queue.tasks.pop_back();
        }
    }
    for (std::size_t probe = 0; !task && probe < k; ++probe) {
        const std::size_t victim = (start + probe) % k;
        if (own && victim == start)
            continue;
        WorkerQueue &queue = *queues_[victim];
        std::lock_guard<std::mutex> lock(queue.mutex);
        if (!queue.tasks.empty()) {
            task = std::move(queue.tasks.front());
            queue.tasks.pop_front();
        }
    }
    if (!task)
        return false;
    task();
    return true;
}

void
ThreadPool::workerLoop(std::size_t self)
{
    tls_pool = this;
    tls_worker = self;
    while (true) {
        if (runOneTask())
            continue;
        std::unique_lock<std::mutex> lock(sleepMutex_);
        if (stop_.load(std::memory_order_acquire))
            break;
        // Re-probe under the sleep lock races with submitters only in
        // the harmless direction (a spurious wakeup), because submit
        // notifies after pushing.
        sleepCv_.wait_for(lock, std::chrono::milliseconds(10));
    }
    // Drain any work that raced with shutdown.
    while (runOneTask()) {
    }
    tls_pool = nullptr;
}

ThreadPool &
ThreadPool::global()
{
    std::lock_guard<std::mutex> lock(globalPoolMutex());
    auto &slot = globalPoolSlot();
    if (!slot) {
        const std::size_t threads = configuredThreads();
        slot = std::make_unique<ThreadPool>(threads <= 1 ? 0 : threads);
    }
    return *slot;
}

std::size_t
ThreadPool::configuredThreads()
{
    const std::size_t fallback = std::max<std::size_t>(
        1, std::thread::hardware_concurrency());
    const char *env = std::getenv("WCT_THREADS");
    if (env == nullptr || *env == '\0')
        return fallback;
    char *end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end == env || *end != '\0' || parsed == 0 || parsed > 1024) {
        wct_warn("ignoring invalid WCT_THREADS='", env,
                 "' (want an integer in [1, 1024]); using ", fallback);
        return fallback;
    }
    return static_cast<std::size_t>(parsed);
}

void
ThreadPool::resetGlobalForTest(std::size_t workers)
{
    std::lock_guard<std::mutex> lock(globalPoolMutex());
    globalPoolSlot() = std::make_unique<ThreadPool>(workers);
}

TaskGroup::~TaskGroup()
{
    wait();
}

void
TaskGroup::run(std::function<void()> task)
{
    if (pool_.workerCount() == 0) {
        // Serial path: execute inline, but keep the exception
        // contract identical to the pooled path (first failure
        // surfaces at wait(), siblings still run).
        try {
            task();
        } catch (...) {
            std::lock_guard<std::mutex> lock(exceptionMutex_);
            if (!exception_)
                exception_ = std::current_exception();
        }
        return;
    }
    pending_.fetch_add(1, std::memory_order_acq_rel);
    pool_.submit([this, task = std::move(task)] {
        try {
            task();
        } catch (...) {
            std::lock_guard<std::mutex> lock(exceptionMutex_);
            if (!exception_)
                exception_ = std::current_exception();
        }
        pending_.fetch_sub(1, std::memory_order_acq_rel);
    });
}

void
TaskGroup::wait()
{
    while (pending_.load(std::memory_order_acquire) > 0) {
        // Help instead of blocking: this is what makes nested
        // fork/join (subtree tasks spawning subtree tasks) safe.
        if (!pool_.runOneTask())
            std::this_thread::yield();
    }
    std::exception_ptr pending_exception;
    {
        std::lock_guard<std::mutex> lock(exceptionMutex_);
        std::swap(pending_exception, exception_);
    }
    if (pending_exception)
        std::rethrow_exception(pending_exception);
}

void
parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn,
            ThreadPool &pool, std::size_t min_chunk)
{
    min_chunk = std::max<std::size_t>(1, min_chunk);
    const std::size_t workers = pool.workerCount();
    if (workers == 0 || n <= min_chunk) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    // ~4 chunks per executor keeps the stealing balanced without
    // drowning the deques in tiny tasks.
    const std::size_t chunks = std::min(
        n / min_chunk + (n % min_chunk != 0), 4 * (workers + 1));
    const std::size_t chunk = (n + chunks - 1) / chunks;
    TaskGroup group(pool);
    for (std::size_t begin = 0; begin < n; begin += chunk) {
        const std::size_t end = std::min(n, begin + chunk);
        group.run([&fn, begin, end] {
            for (std::size_t i = begin; i < end; ++i)
                fn(i);
        });
    }
    group.wait();
}

} // namespace wct
