#include "util/radix_sort.hh"

#include <array>
#include <cstddef>

namespace wct
{

namespace
{

constexpr unsigned kDigitBits = 11;
constexpr std::size_t kBuckets = std::size_t(1) << kDigitBits;
constexpr unsigned kPasses = (64 + kDigitBits - 1) / kDigitBits;

} // namespace

void
radixSortKeyRows(std::vector<KeyRow> &entries,
                 std::vector<KeyRow> &scratch)
{
    const std::size_t n = entries.size();
    if (n < 2)
        return;
    scratch.resize(n);

    // One read sweep fills the histograms of every pass so constant
    // digits can be detected (and their scatter passes skipped)
    // before any data moves.
    static_assert(kPasses == 6);
    std::array<std::array<std::uint32_t, kBuckets>, kPasses> counts{};
    for (const KeyRow &e : entries)
        for (unsigned p = 0; p < kPasses; ++p)
            ++counts[p][(e.key >> (p * kDigitBits)) &
                        (kBuckets - 1)];

    KeyRow *src = entries.data();
    KeyRow *dst = scratch.data();
    for (unsigned p = 0; p < kPasses; ++p) {
        auto &count = counts[p];
        const std::uint64_t first_digit =
            (src[0].key >> (p * kDigitBits)) & (kBuckets - 1);
        if (count[first_digit] == n)
            continue; // every key shares this digit
        // Exclusive prefix sum turns counts into scatter offsets.
        std::uint32_t running = 0;
        for (std::size_t b = 0; b < kBuckets; ++b) {
            const std::uint32_t c = count[b];
            count[b] = running;
            running += c;
        }
        const unsigned shift = p * kDigitBits;
        for (std::size_t i = 0; i < n; ++i)
            dst[count[(src[i].key >> shift) & (kBuckets - 1)]++] =
                src[i];
        std::swap(src, dst);
    }
    if (src != entries.data())
        entries.swap(scratch);
}

} // namespace wct
