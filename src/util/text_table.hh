/**
 * @file
 * Plain-text table renderer used by the experiment binaries to print
 * paper-style tables (Table II, Table III, ...).
 */

#ifndef WCT_UTIL_TEXT_TABLE_HH
#define WCT_UTIL_TEXT_TABLE_HH

#include <string>
#include <vector>

namespace wct
{

/**
 * A simple column-aligned table. Cells are strings; the renderer
 * computes column widths and emits an ASCII grid with a header rule.
 */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a data row; must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Insert a horizontal rule before the next appended row. */
    void addRule();

    /** Number of data rows added so far. */
    std::size_t numRows() const { return rows_.size(); }

    /** Render the table to a string, one trailing newline included. */
    std::string render() const;

  private:
    struct Row
    {
        std::vector<std::string> cells;
        bool ruleBefore = false;
    };

    std::vector<std::string> headers_;
    std::vector<Row> rows_;
    bool pendingRule_ = false;
};

} // namespace wct

#endif // WCT_UTIL_TEXT_TABLE_HH
