/**
 * @file
 * LSD radix sort for (double key, row id) pairs — the root-sort
 * kernel of the presorted tree builder.
 *
 * Comparison sorts on measurement data are branch-mispredict-bound;
 * counting-sort passes over 11-bit digits are branchless and roughly
 * 3-4x faster at the 10^3..10^5 sizes the builder sorts. Digit
 * histograms for every pass are gathered in one read sweep and passes
 * whose digit is constant across all keys are skipped outright, which
 * on real data (clustered exponents, narrow value ranges) removes
 * most of the high-order passes.
 *
 * Ordering contract (what the tree builder's bit-identical guarantee
 * rests on): the result is exactly ascending by key with ties in
 * ascending row order — the same permutation std::stable_sort
 * produces — because every counting pass is stable and the input is
 * supplied in ascending row order.
 */

#ifndef WCT_UTIL_RADIX_SORT_HH
#define WCT_UTIL_RADIX_SORT_HH

#include <bit>
#include <cstdint>
#include <vector>

namespace wct
{

/** One sortable entry: a transformed double key and its row id. */
struct KeyRow
{
    std::uint64_t key = 0;
    std::uint32_t row = 0;
};

/**
 * Map a double onto an unsigned key whose integer order matches the
 * IEEE total order of finite doubles: negatives are bit-inverted,
 * non-negatives get the sign bit set. Zeros of either sign collapse
 * to one key, so -0.0 and +0.0 form a single tie group ordered by
 * row — exactly how operator< (which deems them equal) ties them in
 * a stable comparison sort.
 */
inline std::uint64_t
orderedKeyFromDouble(double value)
{
    if (value == 0.0)
        value = 0.0; // collapse -0.0
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(value);
    return (bits >> 63) != 0 ? ~bits
                             : bits | (std::uint64_t(1) << 63);
}

/**
 * Sort `entries` ascending by key, ties by row order preserved
 * (stable). `scratch` is the ping-pong buffer; it is resized to match
 * and its final contents are unspecified.
 */
void radixSortKeyRows(std::vector<KeyRow> &entries,
                      std::vector<KeyRow> &scratch);

} // namespace wct

#endif // WCT_UTIL_RADIX_SORT_HH
