#include "util/string_utils.hh"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace wct
{

std::vector<std::string>
split(const std::string &text, char delim)
{
    std::vector<std::string> pieces;
    std::string current;
    for (char c : text) {
        if (c == delim) {
            pieces.push_back(current);
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    pieces.push_back(current);
    return pieces;
}

std::string
trim(const std::string &text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return text.substr(begin, end - begin);
}

std::string
join(const std::vector<std::string> &pieces, const std::string &sep)
{
    std::string out;
    for (std::size_t i = 0; i < pieces.size(); ++i) {
        if (i > 0)
            out += sep;
        out += pieces[i];
    }
    return out;
}

std::string
toLower(const std::string &text)
{
    std::string out = text;
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
startsWith(const std::string &text, const std::string &prefix)
{
    return text.size() >= prefix.size() &&
        text.compare(0, prefix.size(), prefix) == 0;
}

bool
endsWith(const std::string &text, const std::string &suffix)
{
    return text.size() >= suffix.size() &&
        text.compare(text.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

std::string
formatDouble(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
formatCompact(double value)
{
    const double mag = std::fabs(value);
    char buf[64];
    if (mag != 0.0 && mag < 0.001) {
        std::snprintf(buf, sizeof(buf), "%.2e", value);
    } else if (mag >= 1000.0) {
        std::snprintf(buf, sizeof(buf), "%.1f", value);
    } else {
        std::snprintf(buf, sizeof(buf), "%.4f", value);
    }
    return buf;
}

} // namespace wct
