#include "util/socket_io.hh"

#include <cerrno>
#include <cstdint>
#include <cstring>

#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

namespace wct
{

FdStreambuf::FdStreambuf(int fd) : fd_(fd)
{
    setg(inBuf_, inBuf_, inBuf_);
    setp(outBuf_, outBuf_ + sizeof outBuf_);
}

FdStreambuf::int_type
FdStreambuf::underflow()
{
    if (gptr() < egptr())
        return traits_type::to_int_type(*gptr());
    ssize_t n;
    do {
        n = ::read(fd_, inBuf_, sizeof inBuf_);
    } while (n < 0 && errno == EINTR);
    if (n <= 0)
        return traits_type::eof();
    setg(inBuf_, inBuf_, inBuf_ + n);
    return traits_type::to_int_type(*gptr());
}

FdStreambuf::int_type
FdStreambuf::overflow(int_type ch)
{
    if (flushOut() != 0)
        return traits_type::eof();
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
        *pptr() = traits_type::to_char_type(ch);
        pbump(1);
    }
    return traits_type::not_eof(ch);
}

int
FdStreambuf::sync()
{
    return flushOut();
}

int
FdStreambuf::flushOut()
{
    const char *data = pbase();
    std::size_t left = static_cast<std::size_t>(pptr() - pbase());
    while (left > 0) {
        ssize_t n;
        do {
            // MSG_NOSIGNAL: a peer that already closed must surface
            // as an EPIPE error here, not as a process-wide SIGPIPE.
            n = ::send(fd_, data, left, MSG_NOSIGNAL);
        } while (n < 0 && errno == EINTR);
        if (n <= 0)
            return -1;
        data += n;
        left -= static_cast<std::size_t>(n);
    }
    setp(outBuf_, outBuf_ + sizeof outBuf_);
    return 0;
}

void
closeFd(int fd)
{
    if (fd >= 0)
        ::close(fd);
}

bool
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 &&
           ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void
setSocketTimeoutMs(int fd, std::uint64_t ms)
{
    timeval tv = {};
    tv.tv_sec = static_cast<time_t>(ms / 1000);
    tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

int
listenUnix(const std::string &path, int backlog, std::string *err)
{
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path) {
        if (err != nullptr)
            *err = "unix socket path too long: " + path;
        return -1;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        if (err != nullptr)
            *err = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    ::unlink(path.c_str()); // stale socket from a previous run
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof addr) != 0 ||
        ::listen(fd, backlog) != 0) {
        if (err != nullptr)
            *err = "cannot listen on '" + path +
                   "': " + std::strerror(errno);
        closeFd(fd);
        return -1;
    }
    return fd;
}

int
listenTcp(int port, int backlog, int *bound_port, std::string *err)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        if (err != nullptr)
            *err = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof addr) != 0 ||
        ::listen(fd, backlog) != 0) {
        if (err != nullptr)
            *err = "cannot listen on 127.0.0.1:" +
                   std::to_string(port) + ": " +
                   std::strerror(errno);
        closeFd(fd);
        return -1;
    }
    sockaddr_in actual = {};
    socklen_t len = sizeof actual;
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&actual),
                      &len) == 0)
        *bound_port = ntohs(actual.sin_port);
    return fd;
}

int
connectUnix(const std::string &path, std::string *err)
{
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path) {
        if (err != nullptr)
            *err = "unix socket path too long: " + path;
        return -1;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0 ||
        ::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof addr) != 0) {
        if (err != nullptr)
            *err = "cannot connect to '" + path +
                   "': " + std::strerror(errno);
        closeFd(fd);
        return -1;
    }
    return fd;
}

int
connectTcp(int port, std::string *err)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (fd < 0 ||
        ::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof addr) != 0) {
        if (err != nullptr)
            *err = "cannot connect to 127.0.0.1:" +
                   std::to_string(port) + ": " +
                   std::strerror(errno);
        closeFd(fd);
        return -1;
    }
    return fd;
}

} // namespace wct
