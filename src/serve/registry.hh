/**
 * @file
 * The serving model registry: every trained tree the server can
 * answer queries with, addressable by content hash or alias.
 *
 * Loading is strictly non-fatal (tryReadModelTree): a corrupt or
 * stale model file is an error *response*, never a dead server. Each
 * successful load computes the FNV-1a hash of the serialized text —
 * the model's identity on the wire — plus a human alias (explicit or
 * the file stem). Reloading an alias atomically swaps the entry; the
 * previous tree stays alive through its shared_ptr until the last
 * in-flight batch that resolved it finishes, so hot reload never
 * races inference.
 *
 * Lookups take a shared (reader) lock and loads/evictions take the
 * exclusive side, matching the traffic shape: thousands of lookups
 * per load.
 */

#ifndef WCT_SERVE_REGISTRY_HH
#define WCT_SERVE_REGISTRY_HH

#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "mtree/model_tree.hh"

namespace wct::serve
{

/** Immutable description of one registered model. */
struct ModelInfo
{
    std::string key;   ///< fnv1a64 hex of the serialized tree
    std::string alias; ///< user-facing name (unique)
    std::string sourcePath;
    std::string target;
    std::size_t numLeaves = 0;
    std::size_t numColumns = 0;
};

/** Thread-safe registry of loaded model trees. */
class ModelRegistry
{
  public:
    /**
     * Load (or hot-reload) a serialized tree from `path` under
     * `alias` ("" derives the alias from the file stem). On success
     * fills `info` (when non-null) and returns true; on failure sets
     * `err` and leaves the registry unchanged — the previous version
     * of the alias, if any, keeps serving.
     */
    bool loadFile(const std::string &path, const std::string &alias,
                  ModelInfo *info, std::string *err);

    /**
     * Resolve a model by content hash or alias; an empty key means
     * the default model (the first one loaded). nullptr when absent.
     */
    std::shared_ptr<const ModelTree>
    find(const std::string &keyOrAlias) const;

    /** Forget a model by hash or alias; false when absent. In-flight
     * batches holding the shared_ptr are unaffected. */
    bool evict(const std::string &keyOrAlias);

    /** Info for every registered model, in load order. */
    std::vector<ModelInfo> list() const;

    /** Number of registered models. */
    std::size_t size() const;

  private:
    struct Entry
    {
        ModelInfo info;
        std::shared_ptr<const ModelTree> tree;
    };

    mutable std::shared_mutex mutex_;
    std::vector<Entry> entries_; ///< load order; aliases unique
};

} // namespace wct::serve

#endif // WCT_SERVE_REGISTRY_HH
