/**
 * @file
 * The serving model registry: every trained tree the server can
 * answer queries with, addressable by content hash or alias.
 *
 * Loading is strictly non-fatal (tryReadModelTree): a corrupt or
 * stale model file is an error *response*, never a dead server. Each
 * successful load records modelTreeContentHex of the serialized text
 * — the same content key the pipeline's artifact store files the tree
 * under, so a served model and a cached ("mtree", key) artifact with
 * equal keys are byte-identical — plus a human alias (explicit or
 * the file stem). Reloading an alias atomically swaps the entry; the
 * previous tree stays alive through its shared_ptr until the last
 * in-flight batch that resolved it finishes, so hot reload never
 * races inference.
 *
 * Lookups take a shared (reader) lock and loads/evictions take the
 * exclusive side, matching the traffic shape: thousands of lookups
 * per load.
 */

#ifndef WCT_SERVE_REGISTRY_HH
#define WCT_SERVE_REGISTRY_HH

#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "data/artifact_store.hh"
#include "mtree/model_tree.hh"

namespace wct::serve
{

/** Immutable description of one registered model. */
struct ModelInfo
{
    std::string key;   ///< modelTreeContentHex of the serialized tree
    std::string alias; ///< user-facing name (unique)
    std::string sourcePath;
    std::string target;
    std::size_t numLeaves = 0;
    std::size_t numColumns = 0;

    /** Shape of the flattened evaluation form rebuilt with this
     * load/swap (mtree/compiled_tree.hh): flat node entries and
     * descent depth. Serving always answers from this form. */
    std::size_t compiledNodes = 0;
    std::size_t compiledDepth = 0;
};

/** Thread-safe registry of loaded model trees. */
class ModelRegistry
{
  public:
    /**
     * Load (or hot-reload) a serialized tree from `path` under
     * `alias` ("" derives the alias from the file stem). On success
     * fills `info` (when non-null) and returns true; on failure sets
     * `err` and leaves the registry unchanged — the previous version
     * of the alias, if any, keeps serving.
     */
    bool loadFile(const std::string &path, const std::string &alias,
                  ModelInfo *info, std::string *err);

    /**
     * Load a tree from a pipeline artifact store by its 16-hex-digit
     * content key — the ("mtree", key) artifact the train stage
     * publishes. Same semantics as loadFile; additionally fails when
     * the key does not parse, the artifact is absent/corrupt, or the
     * stored bytes hash to a different key than requested.
     */
    bool loadFromStore(const ArtifactStore &store,
                       const std::string &keyHex,
                       const std::string &alias, ModelInfo *info,
                       std::string *err);

    /**
     * Resolve a model by content hash or alias; an empty key means
     * the default model (the first one loaded). nullptr when absent.
     */
    std::shared_ptr<const ModelTree>
    find(const std::string &keyOrAlias) const;

    /** Forget a model by hash or alias; false when absent. In-flight
     * batches holding the shared_ptr are unaffected. */
    bool evict(const std::string &keyOrAlias);

    /** Info for every registered model, in load order. */
    std::vector<ModelInfo> list() const;

    /** Number of registered models. */
    std::size_t size() const;

  private:
    struct Entry
    {
        ModelInfo info;
        std::shared_ptr<const ModelTree> tree;
    };

    /** Parse `text`, build the entry, and swap it in under `alias`;
     * the shared tail of loadFile and loadFromStore. */
    bool registerText(const std::string &text,
                      const std::string &alias,
                      const std::string &sourcePath, ModelInfo *info,
                      std::string *err);

    mutable std::shared_mutex mutex_;
    std::vector<Entry> entries_; ///< load order; aliases unique
};

} // namespace wct::serve

#endif // WCT_SERVE_REGISTRY_HH
