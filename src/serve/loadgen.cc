#include "serve/loadgen.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <mutex>
#include <sstream>
#include <thread>

#include "serve/socket.hh"

namespace wct::serve
{

namespace
{

/** SplitMix64: a stateless position-indexed generator, so request
 * i's op choice is a pure function of (seed, i) — the mix sequence
 * is identical no matter how requests land on connections. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::optional<ServeClient>
connectClient(const LoadgenConfig &config, std::string *err)
{
    if (!config.unixPath.empty())
        return ServeClient::connectUnix(config.unixPath, err);
    return ServeClient::connectTcp(config.tcpPort, err);
}

double
quantileUs(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0;
    const double rank = q * static_cast<double>(sorted.size());
    std::size_t index =
        static_cast<std::size_t>(std::ceil(rank));
    index = index == 0 ? 0 : index - 1;
    return sorted[std::min(index, sorted.size() - 1)];
}

/** Per-connection tallies, merged after the join. */
struct ThreadTally
{
    std::uint64_t completed = 0;
    std::uint64_t transportErrors = 0;
    std::uint64_t timeouts = 0;
    std::array<std::uint64_t, kNumOpcodes> sentByOp{};
    std::array<std::uint64_t, kNumStatuses> byStatus{};
    std::vector<double> latencyUs;
};

} // namespace

std::string
LoadgenReport::renderText() const
{
    std::ostringstream out;
    out << "loadgen: offered " << offered << " requests, completed "
        << completed << " in " << elapsedSec << " s ("
        << achievedRps << " req/s)\n";
    out << "  sent:";
    for (std::size_t op = 0; op < kNumOpcodes; ++op)
        if (sentByOp[op] > 0)
            out << " "
                << opcodeName(static_cast<Opcode>(op + 1)) << "="
                << sentByOp[op];
    out << "\n  status:";
    for (std::size_t s = 0; s < kNumStatuses; ++s)
        if (byStatus[s] > 0)
            out << " " << statusName(static_cast<Status>(s)) << "="
                << byStatus[s];
    out << "\n  transport errors: " << transportErrors
        << " (timeouts: " << timeouts << ")\n";
    out << "  latency: p50=" << p50Us << "us p95=" << p95Us
        << "us p99=" << p99Us << "us\n";
    return out.str();
}

std::optional<LoadgenReport>
runLoadgen(const LoadgenConfig &config, std::string *err)
{
    if (config.ratePerSec <= 0 || config.durationSec <= 0) {
        if (err != nullptr)
            *err = "loadgen needs a positive rate and duration";
        return std::nullopt;
    }
    LoadgenConfig cfg = config;
    if (cfg.loadPath.empty())
        cfg.loadWeight = 0; // nothing to load
    const std::uint64_t weight_sum =
        cfg.predictWeight + cfg.classifyWeight + cfg.loadWeight +
        cfg.statsWeight;
    if (weight_sum == 0) {
        if (err != nullptr)
            *err = "loadgen op mix has zero total weight";
        return std::nullopt;
    }
    const bool inference =
        cfg.predictWeight > 0 || cfg.classifyWeight > 0;
    if (inference &&
        (cfg.schema.empty() || cfg.rowsPerRequest == 0 ||
         cfg.pool.size() < cfg.schema.size() ||
         cfg.pool.size() % cfg.schema.size() != 0)) {
        if (err != nullptr)
            *err = "loadgen inference mix needs a schema and a row "
                   "pool (a row-count multiple of the schema arity)";
        return std::nullopt;
    }
    const std::size_t connections =
        std::max<std::size_t>(1, cfg.connections);

    // One probing connection up front: a wrong endpoint should fail
    // the run, not count as N thousand transport errors.
    {
        std::string conn_err;
        auto probe = connectClient(cfg, &conn_err);
        if (!probe) {
            if (err != nullptr)
                *err = conn_err;
            return std::nullopt;
        }
    }

    const std::uint64_t total = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::llround(cfg.ratePerSec * cfg.durationSec)));
    const std::size_t pool_rows =
        inference ? cfg.pool.size() / cfg.schema.size() : 0;

    // The op of request i: a weighted draw at sequence position i.
    const auto opAt = [&cfg, weight_sum](std::uint64_t i) {
        std::uint64_t draw =
            mix64(cfg.seed * 0x100000001b3ull + i) % weight_sum;
        if (draw < cfg.predictWeight)
            return Opcode::Predict;
        draw -= cfg.predictWeight;
        if (draw < cfg.classifyWeight)
            return Opcode::Classify;
        draw -= cfg.classifyWeight;
        if (draw < cfg.loadWeight)
            return Opcode::LoadModel;
        return Opcode::Stats;
    };

    std::vector<ThreadTally> tallies(connections);
    const auto start = std::chrono::steady_clock::now();
    const double period_sec = 1.0 / cfg.ratePerSec;

    std::vector<std::thread> threads;
    threads.reserve(connections);
    for (std::size_t c = 0; c < connections; ++c) {
        threads.emplace_back([&, c] {
            ThreadTally &tally = tallies[c];
            std::string conn_err;
            auto client = connectClient(cfg, &conn_err);
            for (std::uint64_t i = c; i < total;
                 i += connections) {
                const auto due =
                    start + std::chrono::duration_cast<
                                std::chrono::steady_clock::duration>(
                                std::chrono::duration<double>(
                                    period_sec *
                                    static_cast<double>(i)));
                std::this_thread::sleep_until(due);

                if (!client) {
                    client = connectClient(cfg, &conn_err);
                    if (!client) {
                        ++tally.transportErrors;
                        continue;
                    }
                }
                if (cfg.timeoutMs > 0)
                    client->setTimeoutMs(cfg.timeoutMs);

                Request request;
                request.op = opAt(i);
                request.id = i + 1;
                switch (request.op) {
                  case Opcode::Predict:
                  case Opcode::Classify: {
                    request.budgetMs = cfg.budgetMs;
                    request.modelKey = cfg.modelKey;
                    request.schema = cfg.schema;
                    const std::size_t ncols = cfg.schema.size();
                    request.rows.reserve(cfg.rowsPerRequest * ncols);
                    for (std::size_t r = 0; r < cfg.rowsPerRequest;
                         ++r) {
                        const std::size_t src =
                            (i + r) % pool_rows;
                        const double *row =
                            cfg.pool.data() + src * ncols;
                        request.rows.insert(request.rows.end(), row,
                                            row + ncols);
                    }
                    break;
                  }
                  case Opcode::LoadModel:
                    request.path = cfg.loadPath;
                    request.alias = cfg.loadAlias;
                    break;
                  default:
                    request.op = Opcode::Stats;
                    break;
                }
                ++tally.sentByOp[static_cast<std::size_t>(
                                     request.op) -
                                 1];

                const auto t0 = std::chrono::steady_clock::now();
                const auto response =
                    client->call(request, nullptr);
                const auto t1 = std::chrono::steady_clock::now();
                if (!response) {
                    ++tally.transportErrors;
                    if (client->lastCallTimedOut())
                        ++tally.timeouts;
                    // The server drops a connection after any
                    // malformed/transport hiccup; start fresh.
                    client.reset();
                    continue;
                }
                ++tally.completed;
                const auto status =
                    static_cast<std::size_t>(response->status);
                if (status < kNumStatuses)
                    ++tally.byStatus[status];
                tally.latencyUs.push_back(
                    std::chrono::duration<double, std::micro>(t1 -
                                                              t0)
                        .count());
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    const auto finish = std::chrono::steady_clock::now();

    LoadgenReport report;
    report.offered = total;
    std::vector<double> latencies;
    for (const ThreadTally &tally : tallies) {
        report.completed += tally.completed;
        report.transportErrors += tally.transportErrors;
        report.timeouts += tally.timeouts;
        for (std::size_t op = 0; op < kNumOpcodes; ++op)
            report.sentByOp[op] += tally.sentByOp[op];
        for (std::size_t s = 0; s < kNumStatuses; ++s)
            report.byStatus[s] += tally.byStatus[s];
        latencies.insert(latencies.end(), tally.latencyUs.begin(),
                         tally.latencyUs.end());
    }
    std::sort(latencies.begin(), latencies.end());
    report.elapsedSec =
        std::chrono::duration<double>(finish - start).count();
    report.achievedRps =
        report.elapsedSec > 0
            ? static_cast<double>(report.completed) /
                  report.elapsedSec
            : 0;
    report.p50Us = quantileUs(latencies, 0.50);
    report.p95Us = quantileUs(latencies, 0.95);
    report.p99Us = quantileUs(latencies, 0.99);
    return report;
}

} // namespace wct::serve
