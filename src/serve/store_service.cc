#include "serve/store_service.hh"

#include <algorithm>
#include <chrono>
#include <filesystem>

#include "util/logging.hh"

namespace wct::serve
{

StoreService::StoreService(ArtifactStore store,
                           StoreServiceConfig config)
    : store_(std::move(store)), config_(std::move(config))
{
    if (config_.gcIntervalSeconds > 0)
        gcThread_ = std::thread([this] { gcTimerLoop(); });
}

StoreService::~StoreService()
{
    {
        std::lock_guard lock(gcMutex_);
        gcStop_ = true;
    }
    gcCv_.notify_all();
    if (gcThread_.joinable())
        gcThread_.join();
}

std::size_t
StoreService::gcSweepNow()
{
    std::vector<ArtifactId> live;
    if (config_.gcLiveSet)
        live = config_.gcLiveSet();
    const auto removed = store_.gc(live, config_.gcGraceSeconds);
    gcSweeps_.fetch_add(1, std::memory_order_acq_rel);
    return removed.size();
}

void
StoreService::gcTimerLoop()
{
    const auto interval =
        std::chrono::seconds(config_.gcIntervalSeconds);
    std::unique_lock lock(gcMutex_);
    for (;;) {
        if (gcCv_.wait_for(lock, interval,
                           [this] { return gcStop_; }))
            return;
        lock.unlock();
        const std::size_t removed = gcSweepNow();
        if (removed > 0)
            wct_inform("store daemon: timed gc removed " +
                       std::to_string(removed) + " artifact(s)");
        lock.lock();
    }
}

std::string
StoreService::handlePayload(std::string_view payload)
{
    std::string err;
    const auto request = decodeStoreRequest(payload, &err);
    if (!request)
        return malformedResponse(err);
    return encodeStoreResponse(handleRequest(*request));
}

std::string
StoreService::malformedResponse(const std::string &reason)
{
    StoreResponse response;
    response.status = StoreStatus::MalformedFrame;
    response.error = reason;
    return encodeStoreResponse(response);
}

void
StoreService::beginShutdown()
{
    shuttingDown_.store(true, std::memory_order_release);
}

StoreResponse
StoreService::handleRequest(const StoreRequest &request)
{
    StoreResponse response;
    response.op = request.op;
    response.id = request.id;

    if (shuttingDown() && request.op != StoreOp::Ping) {
        response.status = StoreStatus::ShuttingDown;
        response.error = "store daemon is draining";
        return response;
    }

    switch (request.op) {
    case StoreOp::Ping:
        break;

    case StoreOp::Load:
        if (auto payload = store_.load(request.artifact)) {
            response.payload = std::move(*payload);
        } else {
            // A corrupt file and a missing file answer identically:
            // the client recomputes either way, and the next Store
            // overwrites the bad entry.
            response.status = StoreStatus::NotFound;
            response.error = "no artifact " +
                             request.artifact.fileName();
        }
        break;

    case StoreOp::Store:
        if (!store_.store(request.artifact, request.payload)) {
            response.status = StoreStatus::Error;
            response.error = "cannot store " +
                             request.artifact.fileName();
        }
        break;

    case StoreOp::Stat:
        if (store_.contains(request.artifact)) {
            std::error_code ec;
            const auto bytes = std::filesystem::file_size(
                store_.path(request.artifact), ec);
            response.fileBytes = ec ? 0 : bytes;
        } else {
            response.status = StoreStatus::NotFound;
            response.error = "no artifact " +
                             request.artifact.fileName();
        }
        break;

    case StoreOp::Remove:
        if (!store_.remove(request.artifact)) {
            response.status = StoreStatus::NotFound;
            response.error = "no artifact " +
                             request.artifact.fileName();
        }
        break;

    case StoreOp::List:
        response.artifacts = store_.list();
        break;

    case StoreOp::Gc:
        response.removed = store_.gc(
            request.live,
            std::max(request.graceSeconds, config_.gcGraceSeconds));
        break;

    case StoreOp::Shutdown:
        if (!config_.allowRemoteShutdown) {
            response.status = StoreStatus::Error;
            response.error = "remote shutdown is disabled";
            break;
        }
        wct_inform("store daemon: shutdown requested");
        beginShutdown();
        break;
    }
    return response;
}

} // namespace wct::serve
