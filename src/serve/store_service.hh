/**
 * @file
 * The artifact store daemon's request handler: WCTSTOR frames in,
 * operations on one local ArtifactStore out (`wct store serve`).
 *
 * This is the fleet's shared cache (docs/store.md): workers running
 * `wct run --store-url ...` read through it and publish into it, so
 * one machine's collection warms every other machine's run. The
 * daemon is a dumb byte store on purpose — artifacts are already
 * self-identifying checksummed envelopes, clients re-hash
 * content-addressed kinds on fetch, so the daemon holds no format
 * knowledge beyond the (kind, key) address.
 *
 * Failure policy matches the model server: nothing a client sends
 * can terminate the daemon. Malformed frames get a MalformedFrame
 * response, oversized claimed payloads are refused before
 * allocation (store_wire framing), hostile artifact kinds are
 * rejected at decode, and I/O failures map to Error responses.
 */

#ifndef WCT_SERVE_STORE_SERVICE_HH
#define WCT_SERVE_STORE_SERVICE_HH

#include <atomic>

#include "data/artifact_store.hh"
#include "data/store_wire.hh"
#include "serve/frame_handler.hh"

namespace wct::serve
{

/** Store daemon policy knobs. */
struct StoreServiceConfig
{
    /** Permit Shutdown frames (off for untrusted clients; the fuzz
     * harness also turns this off so a mutated shutdown cannot end
     * its fixture daemon). */
    bool allowRemoteShutdown = true;

    /** Grace floor applied to every gc sweep, on top of whatever the
     * client requested: max(client, this). */
    std::uint64_t gcGraceSeconds = 0;
};

/** One store daemon instance; see file comment. */
class StoreService : public FrameHandler
{
  public:
    explicit StoreService(ArtifactStore store,
                          StoreServiceConfig config = {});

    StoreService(const StoreService &) = delete;
    StoreService &operator=(const StoreService &) = delete;

    std::string handlePayload(std::string_view payload) override;
    std::string malformedResponse(const std::string &reason) override;

    bool
    shuttingDown() const override
    {
        return shuttingDown_.load(std::memory_order_acquire);
    }

    /** Local shutdown entry (signal handlers, tests). */
    void beginShutdown();

    /** Decoded-level entry (the tests' shortcut past the codec). */
    StoreResponse handleRequest(const StoreRequest &request);

    const ArtifactStore &store() const { return store_; }

  private:
    ArtifactStore store_;
    StoreServiceConfig config_;
    std::atomic<bool> shuttingDown_{false};
};

} // namespace wct::serve

#endif // WCT_SERVE_STORE_SERVICE_HH
