/**
 * @file
 * The artifact store daemon's request handler: WCTSTOR frames in,
 * operations on one local ArtifactStore out (`wct store serve`).
 *
 * This is the fleet's shared cache (docs/store.md): workers running
 * `wct run --store-url ...` read through it and publish into it, so
 * one machine's collection warms every other machine's run. The
 * daemon is a dumb byte store on purpose — artifacts are already
 * self-identifying checksummed envelopes, clients re-hash
 * content-addressed kinds on fetch, so the daemon holds no format
 * knowledge beyond the (kind, key) address.
 *
 * Failure policy matches the model server: nothing a client sends
 * can terminate the daemon. Malformed frames get a MalformedFrame
 * response, oversized claimed payloads are refused before
 * allocation (store_wire framing), hostile artifact kinds are
 * rejected at decode, and I/O failures map to Error responses.
 */

#ifndef WCT_SERVE_STORE_SERVICE_HH
#define WCT_SERVE_STORE_SERVICE_HH

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "data/artifact_store.hh"
#include "data/store_wire.hh"
#include "serve/frame_handler.hh"

namespace wct::serve
{

/** Store daemon policy knobs. */
struct StoreServiceConfig
{
    /** Permit Shutdown frames (off for untrusted clients; the fuzz
     * harness also turns this off so a mutated shutdown cannot end
     * its fixture daemon). */
    bool allowRemoteShutdown = true;

    /** Grace floor applied to every gc sweep, on top of whatever the
     * client requested: max(client, this). */
    std::uint64_t gcGraceSeconds = 0;

    /** Timed gc: sweep every this-many seconds (`wct store serve
     * --gc-interval`). 0 disables the timer; sweeps then happen only
     * on client Gc frames. Timed sweeps use gcGraceSeconds as their
     * grace window, so a just-published artifact survives the sweep
     * that races its upload. */
    std::uint64_t gcIntervalSeconds = 0;

    /** Live set supplied to timed sweeps (e.g. every artifact a
     * current plan references). An unset function pins nothing:
     * only the grace window protects artifacts. */
    std::function<std::vector<ArtifactId>()> gcLiveSet;
};

/** One store daemon instance; see file comment. */
class StoreService : public FrameHandler
{
  public:
    explicit StoreService(ArtifactStore store,
                          StoreServiceConfig config = {});

    /** Stops the gc timer, if one is running. */
    ~StoreService();

    StoreService(const StoreService &) = delete;
    StoreService &operator=(const StoreService &) = delete;

    std::string handlePayload(std::string_view payload) override;
    std::string malformedResponse(const std::string &reason) override;

    bool
    shuttingDown() const override
    {
        return shuttingDown_.load(std::memory_order_acquire);
    }

    /** Local shutdown entry (signal handlers, tests). */
    void beginShutdown();

    /** Decoded-level entry (the tests' shortcut past the codec). */
    StoreResponse handleRequest(const StoreRequest &request);

    const ArtifactStore &store() const { return store_; }

    /** Run one timed-style gc sweep now (gcLiveSet + grace floor);
     * returns how many artifacts it removed. The timer calls this. */
    std::size_t gcSweepNow();

    /** Number of timed/gcSweepNow sweeps completed so far. */
    std::uint64_t
    gcSweeps() const
    {
        return gcSweeps_.load(std::memory_order_acquire);
    }

  private:
    void gcTimerLoop();

    ArtifactStore store_;
    StoreServiceConfig config_;
    std::atomic<bool> shuttingDown_{false};
    std::atomic<std::uint64_t> gcSweeps_{0};

    std::mutex gcMutex_;
    std::condition_variable gcCv_;
    bool gcStop_ = false;
    std::thread gcThread_;
};

} // namespace wct::serve

#endif // WCT_SERVE_STORE_SERVICE_HH
