/**
 * @file
 * The serving front door: decode a frame, admit or refuse it, and
 * produce exactly one response frame.
 *
 * Server::handleFrame *is* the in-process loopback transport — the
 * socket layer (serve/socket.hh) and the deterministic tests drive
 * the identical code path, one frame in, one frame out. Control
 * operations (loadModel, stats, shutdown) execute inline; inference
 * operations are admitted into the bounded queue and handed to the
 * batch engine, with the calling (transport) thread blocking on the
 * job's future — concurrency comes from many transport threads, and
 * coalescing from the queue.
 *
 * Failure policy: nothing a client sends can terminate the server.
 * Malformed frames, unknown models, schema mismatches, corrupt model
 * files, and overload all map to error *responses* with distinct
 * status bytes.
 */

#ifndef WCT_SERVE_SERVER_HH
#define WCT_SERVE_SERVER_HH

#include <atomic>
#include <string>
#include <string_view>

#include "serve/engine.hh"
#include "serve/frame_handler.hh"
#include "serve/metrics.hh"
#include "serve/queue.hh"
#include "serve/registry.hh"
#include "serve/wire.hh"

namespace wct::serve
{

/** Server tuning and policy knobs. */
struct ServerConfig
{
    /** Admission queue capacity (jobs, not rows). */
    std::size_t queueDepth = 256;

    /** Most jobs coalesced into one engine batch. */
    std::size_t maxBatch = 64;

    /** Batcher (consumer) threads. */
    std::size_t batchers = 1;

    /** Engine evaluation mode (see EngineConfig::compiledEval);
     * off = interpreted per-row descent (`wct serve --interpreted`). */
    bool compiledEval = true;

    /** Permit loadModel frames (off for untrusted clients). */
    bool allowRemoteLoad = true;

    /** Permit shutdown frames. */
    bool allowRemoteShutdown = true;

    /** Deadline budget (ms) applied to requests that carry none
     * (Request::budgetMs == 0); 0 = no default deadline. */
    std::uint32_t defaultDeadlineMs = 0;

    /** Cap on any client-supplied budget (ms); 0 = uncapped. A
     * client asking for more gets silently clamped — the server owns
     * how long it is willing to hold a request. */
    std::uint32_t maxDeadlineMs = 0;

    /** Latency SLO (µs) on the sliding-window p99 of predict /
     * classify traffic; 0 disables shedding for that class. When the
     * window p99 drifts past the SLO, new requests of that class are
     * answered Status::Shed instead of queueing. */
    std::uint64_t sloPredictP99Us = 0;
    std::uint64_t sloClassifyP99Us = 0;

    /** Window samples required before the SLO is enforced, so a cold
     * server never sheds on one slow warm-up request. */
    std::uint64_t sloMinSamples = 32;

    /** Start the batch engine in the constructor. Tests turn this
     * off and call Server::startEngine() themselves to make
     * in-queue deadline expiry deterministic. */
    bool startEngine = true;
};

/** One serving instance; see file comment. */
class Server : public FrameHandler
{
  public:
    explicit Server(ServerConfig config = {});

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Drains admitted work, then stops the engine. */
    ~Server();

    /** Load or hot-reload a model file (also used at startup). */
    bool loadModel(const std::string &path, const std::string &alias,
                   ModelInfo *info, std::string *err);

    /** Load a model from a pipeline artifact store by content key
     * (`wct serve --model-key`); see ModelRegistry::loadFromStore. */
    bool loadModelFromStore(const ArtifactStore &store,
                            const std::string &keyHex,
                            const std::string &alias, ModelInfo *info,
                            std::string *err);

    /**
     * The loopback transport: one encoded request frame in, one
     * encoded response frame out. Safe to call from any number of
     * threads concurrently.
     */
    std::string handleFrame(std::string_view frame);

    /**
     * Same, for a payload whose envelope a transport already
     * stripped (the socket layer reads envelopes off the stream).
     */
    std::string handlePayload(std::string_view payload) override;

    /** Encoded MalformedFrame response (transport framing errors). */
    std::string malformedResponse(const std::string &reason) override;

    /** Decoded-level entry (the tests' shortcut past the codec). */
    Response handleRequest(Request &&request);

    /** Start the batch engine when ServerConfig::startEngine was
     * off; no-op after the engine is running. */
    void startEngine();

    /** Stop admitting inference work; already-admitted jobs finish. */
    void beginShutdown();

    /** True once a shutdown was requested. */
    bool
    shuttingDown() const override
    {
        return shuttingDown_.load(std::memory_order_acquire);
    }

    /** Block until every admitted job completed and batchers exited. */
    void drain();

    /** Current metrics, including live queue depth. */
    MetricsSnapshot stats() const;

    const ModelRegistry &registry() const { return registry_; }
    ServingMetrics &metrics() { return metrics_; }

  private:
    Response admitInference(Request &&request);

    /** SLO (µs) configured for an inference opcode; 0 = none. */
    std::uint64_t sloForOp(Opcode op) const;

    ServerConfig config_;
    ModelRegistry registry_;
    ServingMetrics metrics_;
    RequestQueue queue_;
    BatchEngine engine_;
    std::atomic<bool> engineStarted_{false};
    std::atomic<bool> shuttingDown_{false};
};

} // namespace wct::serve

#endif // WCT_SERVE_SERVER_HH
