/**
 * @file
 * Length-prefixed binary wire protocol of the serving subsystem.
 *
 * Every message — request or response — is one checksummed envelope
 * in the data/binary_io format (magic "WCTSERV\0", its own version
 * counter, FNV-1a checksum), so framing, truncation detection and
 * corruption detection are shared with the dataset cache instead of
 * reinvented. The payload starts with a one-byte opcode and a
 * caller-chosen request id that the response echoes, then an
 * opcode-specific body:
 *
 *   request  := opcode:u8 id:u64 budgetMs:u32 body
 *   response := opcode:u8 id:u64 status:u8 body
 *
 * budgetMs (wire v2) is the client's per-request deadline budget in
 * milliseconds; 0 means "no budget" and leaves any server-side
 * default in charge. The server caps it (ServerConfig::maxDeadlineMs)
 * and answers Status::DeadlineExceeded — never a stale result — when
 * the budget expires before the response is written.
 *
 *   predict/classify body (request):
 *       modelKey:str ncols:u64 colname:str... nrows:u64
 *       cell:f64 * (nrows*ncols)      # row-major, training schema
 *   predict body (response):  n:u64 (cpi:f64 leaf:u64)*n
 *   classify body (response): n:u64 (leaf:u64)*n
 *   loadModel body (request): path:str alias:str
 *   loadModel body (response): key:str target:str leaves:u64
 *   stats body (response):    metrics snapshot (serve/metrics.hh)
 *   shutdown bodies:          empty
 *
 * Leaf ids on the wire are the paper's 1-based LM numbers. Error
 * responses (status != Ok) carry a message string instead of a body.
 * Decoders never terminate the process: a malformed frame yields
 * nullopt and the server answers with a Status::MalformedFrame
 * response, keeping a bad client from taking the service down.
 */

#ifndef WCT_SERVE_WIRE_HH
#define WCT_SERVE_WIRE_HH

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "serve/metrics.hh"

namespace wct::serve
{

/** Envelope magic of serving frames (7 chars + NUL = 8 bytes). */
constexpr char kWireMagic[] = "WCTSERV";

/** Wire format version; a mismatch rejects the whole frame.
 * v2: request header grew the budgetMs:u32 deadline field and the
 * response status byte grew Shed / DeadlineExceeded. */
constexpr std::uint32_t kWireFormatVersion = 2;

/**
 * Hard cap on one frame's payload bytes, both directions. Frames are
 * read from untrusted sockets, so readFrame refuses a claimed size
 * above this before allocating anything — a hostile 20-byte header
 * cannot turn into a giant allocation. Sized to fit the largest
 * legal predict response (kMaxRowsPerRequest rows of cpi+leaf) with
 * room to spare.
 */
constexpr std::uint64_t kMaxFramePayload = 1ull << 28; // 256 MiB

/** Operation selector, first payload byte of every message. */
enum class Opcode : std::uint8_t
{
    Predict = 1,   ///< rows in, (CPI, leaf) per row out
    Classify = 2,  ///< rows in, leaf number per row out
    LoadModel = 3, ///< load/reload a serialized tree into the registry
    Stats = 4,     ///< metrics snapshot out
    Shutdown = 5,  ///< stop admitting, drain, stop the server
};

/** Response status byte. */
enum class Status : std::uint8_t
{
    Ok = 0,
    Error = 1,          ///< request was understood but failed
    Overloaded = 2,     ///< admission queue full; retry later
    ShuttingDown = 3,   ///< server is draining; no new work
    MalformedFrame = 4, ///< request frame did not decode
    Shed = 5,           ///< op class over its latency SLO; retry later
    DeadlineExceeded = 6, ///< request budget expired before the result
};

/** Human-readable opcode name (for logs and the stats dump). */
const char *opcodeName(Opcode op);

/** Human-readable status name. */
const char *statusName(Status status);

/** One decoded request message. */
struct Request
{
    Opcode op = Opcode::Predict;
    std::uint64_t id = 0;

    /** Per-request deadline budget in milliseconds; 0 = none (the
     * server may still impose its configured default). */
    std::uint32_t budgetMs = 0;

    // Predict / Classify.
    std::string modelKey; ///< registry key or alias; "" = default
    std::vector<std::string> schema; ///< column names of `rows`
    std::vector<double> rows;        ///< row-major, schema arity

    // LoadModel.
    std::string path;  ///< file to (re)load
    std::string alias; ///< registry alias; "" derives from the path

    std::size_t
    numRows() const
    {
        return schema.empty() ? 0 : rows.size() / schema.size();
    }
};

/** One decoded response message. */
struct Response
{
    Opcode op = Opcode::Predict;
    std::uint64_t id = 0;
    Status status = Status::Ok;
    std::string error; ///< set when status != Ok

    // Predict / Classify.
    std::vector<double> cpi;        ///< Predict only
    std::vector<std::uint64_t> leaf; ///< 1-based LM numbers

    // LoadModel.
    std::string modelKey;
    std::string target;
    std::uint64_t numLeaves = 0;

    // Stats.
    MetricsSnapshot stats;
};

/** Encode a request as one complete envelope frame. */
std::string encodeRequest(const Request &request);

/** Encode a response as one complete envelope frame. */
std::string encodeResponse(const Response &response);

/**
 * Decode a request payload (the envelope's contents). nullopt on a
 * malformed payload, with the reason in `err` when non-null.
 */
std::optional<Request> decodeRequest(std::string_view payload,
                                     std::string *err = nullptr);

/** Decode a response payload; nullopt on malformed. */
std::optional<Response> decodeResponse(std::string_view payload,
                                       std::string *err = nullptr);

/**
 * Read one frame (envelope) from a stream and return its payload;
 * nullopt on EOF, truncation, bad magic, version mismatch, checksum
 * failure, or a claimed payload size above kMaxFramePayload (checked
 * before any allocation).
 */
std::optional<std::string> readFrame(std::istream &in);

/** Write one already-encoded frame to a stream. */
void writeFrame(std::ostream &out, std::string_view frame);

} // namespace wct::serve

#endif // WCT_SERVE_WIRE_HH
