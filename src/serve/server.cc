#include "serve/server.hh"

#include <chrono>
#include <sstream>

namespace wct::serve
{

namespace
{

Response
errorResponse(const Request &request, Status status,
              std::string message)
{
    Response response;
    response.op = request.op;
    response.id = request.id;
    response.status = status;
    response.error = std::move(message);
    return response;
}

} // namespace

Server::Server(ServerConfig config)
    : config_(config), queue_(std::max<std::size_t>(
                           1, config.queueDepth)),
      engine_(queue_, metrics_,
              EngineConfig{config.batchers, config.maxBatch,
                           config.compiledEval})
{
    engine_.start();
}

Server::~Server()
{
    engine_.stop();
}

bool
Server::loadModel(const std::string &path, const std::string &alias,
                  ModelInfo *info, std::string *err)
{
    const bool ok = registry_.loadFile(path, alias, info, err);
    metrics_.countModelLoad(ok);
    return ok;
}

bool
Server::loadModelFromStore(const ArtifactStore &store,
                           const std::string &keyHex,
                           const std::string &alias, ModelInfo *info,
                           std::string *err)
{
    const bool ok =
        registry_.loadFromStore(store, keyHex, alias, info, err);
    metrics_.countModelLoad(ok);
    return ok;
}

std::string
Server::handleFrame(std::string_view frame)
{
    std::istringstream in{std::string(frame)};
    const auto payload = readFrame(in);
    if (!payload)
        return malformedResponse(
            "bad frame envelope (magic, version, or checksum)");
    return handlePayload(*payload);
}

std::string
Server::handlePayload(std::string_view payload)
{
    std::string decode_err;
    auto request = decodeRequest(payload, &decode_err);
    if (!request)
        return malformedResponse(decode_err);
    return encodeResponse(handleRequest(std::move(*request)));
}

std::string
Server::malformedResponse(const std::string &reason)
{
    metrics_.countMalformedFrame();
    Response response;
    response.op = Opcode::Predict; // true opcode unknown
    response.id = 0;
    response.status = Status::MalformedFrame;
    response.error = reason;
    metrics_.countResponse(
        static_cast<std::uint8_t>(response.status));
    return encodeResponse(response);
}

Response
Server::handleRequest(Request &&request)
{
    metrics_.countRequest(static_cast<std::uint8_t>(request.op));
    Response response;
    switch (request.op) {
      case Opcode::Predict:
      case Opcode::Classify:
        response = admitInference(std::move(request));
        break;
      case Opcode::LoadModel: {
        if (!config_.allowRemoteLoad) {
            response = errorResponse(request, Status::Error,
                                     "loadModel is disabled on this "
                                     "server");
            break;
        }
        ModelInfo info;
        std::string err;
        if (loadModel(request.path, request.alias, &info, &err)) {
            response.op = request.op;
            response.id = request.id;
            response.status = Status::Ok;
            response.modelKey = info.key;
            response.target = info.target;
            response.numLeaves = info.numLeaves;
        } else {
            response = errorResponse(request, Status::Error, err);
        }
        break;
      }
      case Opcode::Stats:
        response.op = request.op;
        response.id = request.id;
        response.status = Status::Ok;
        response.stats = stats();
        break;
      case Opcode::Shutdown:
        if (!config_.allowRemoteShutdown) {
            response = errorResponse(request, Status::Error,
                                     "shutdown is disabled on this "
                                     "server");
            break;
        }
        beginShutdown();
        response.op = request.op;
        response.id = request.id;
        response.status = Status::Ok;
        break;
    }
    metrics_.countResponse(
        static_cast<std::uint8_t>(response.status));
    return response;
}

Response
Server::admitInference(Request &&request)
{
    if (shuttingDown())
        return errorResponse(request, Status::ShuttingDown,
                             "server is draining");

    auto tree = registry_.find(request.modelKey);
    if (tree == nullptr)
        return errorResponse(
            request, Status::Error,
            request.modelKey.empty()
                ? "no model loaded"
                : "unknown model '" + request.modelKey + "'");
    if (request.schema != tree->schema())
        return errorResponse(
            request, Status::Error,
            "request schema does not match the schema model '" +
                (request.modelKey.empty() ? std::string("default")
                                          : request.modelKey) +
                "' was trained on");

    Job job;
    job.request = std::move(request);
    job.tree = std::move(tree);
    job.admitted = std::chrono::steady_clock::now();
    std::future<Response> future = job.result.get_future();
    const Opcode op = job.request.op;
    const std::uint64_t id = job.request.id;

    const PushResult pushed = queue_.push(std::move(job));
    if (pushed == PushResult::Overloaded) {
        metrics_.countRejectedOverload();
        Request stub;
        stub.op = op;
        stub.id = id;
        return errorResponse(stub, Status::Overloaded,
                             "admission queue is full; retry");
    }
    if (pushed == PushResult::Closed) {
        Request stub;
        stub.op = op;
        stub.id = id;
        return errorResponse(stub, Status::ShuttingDown,
                             "server is draining");
    }
    metrics_.recordQueueDepth(queue_.depth());
    return future.get();
}

void
Server::beginShutdown()
{
    shuttingDown_.store(true, std::memory_order_release);
    queue_.close();
}

void
Server::drain()
{
    engine_.stop();
}

MetricsSnapshot
Server::stats() const
{
    return metrics_.snapshot(queue_.depth());
}

} // namespace wct::serve
