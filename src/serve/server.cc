#include "serve/server.hh"

#include <chrono>
#include <sstream>

namespace wct::serve
{

namespace
{

Response
errorResponse(const Request &request, Status status,
              std::string message)
{
    Response response;
    response.op = request.op;
    response.id = request.id;
    response.status = status;
    response.error = std::move(message);
    return response;
}

} // namespace

Server::Server(ServerConfig config)
    : config_(config), queue_(std::max<std::size_t>(
                           1, config.queueDepth)),
      engine_(queue_, metrics_,
              EngineConfig{config.batchers, config.maxBatch,
                           config.compiledEval})
{
    if (config_.startEngine)
        startEngine();
}

void
Server::startEngine()
{
    if (engineStarted_.exchange(true, std::memory_order_acq_rel))
        return;
    engine_.start();
}

Server::~Server()
{
    engine_.stop();
}

bool
Server::loadModel(const std::string &path, const std::string &alias,
                  ModelInfo *info, std::string *err)
{
    const bool ok = registry_.loadFile(path, alias, info, err);
    metrics_.countModelLoad(ok);
    return ok;
}

bool
Server::loadModelFromStore(const ArtifactStore &store,
                           const std::string &keyHex,
                           const std::string &alias, ModelInfo *info,
                           std::string *err)
{
    const bool ok =
        registry_.loadFromStore(store, keyHex, alias, info, err);
    metrics_.countModelLoad(ok);
    return ok;
}

std::string
Server::handleFrame(std::string_view frame)
{
    std::istringstream in{std::string(frame)};
    const auto payload = readFrame(in);
    if (!payload)
        return malformedResponse(
            "bad frame envelope (magic, version, or checksum)");
    return handlePayload(*payload);
}

std::string
Server::handlePayload(std::string_view payload)
{
    std::string decode_err;
    auto request = decodeRequest(payload, &decode_err);
    if (!request)
        return malformedResponse(decode_err);
    return encodeResponse(handleRequest(std::move(*request)));
}

std::string
Server::malformedResponse(const std::string &reason)
{
    metrics_.countMalformedFrame();
    Response response;
    response.op = Opcode::Predict; // true opcode unknown
    response.id = 0;
    response.status = Status::MalformedFrame;
    response.error = reason;
    metrics_.countResponse(
        static_cast<std::uint8_t>(response.status));
    return encodeResponse(response);
}

Response
Server::handleRequest(Request &&request)
{
    metrics_.countRequest(static_cast<std::uint8_t>(request.op));
    Response response;
    switch (request.op) {
      case Opcode::Predict:
      case Opcode::Classify:
        response = admitInference(std::move(request));
        break;
      case Opcode::LoadModel: {
        if (!config_.allowRemoteLoad) {
            response = errorResponse(request, Status::Error,
                                     "loadModel is disabled on this "
                                     "server");
            break;
        }
        ModelInfo info;
        std::string err;
        if (loadModel(request.path, request.alias, &info, &err)) {
            response.op = request.op;
            response.id = request.id;
            response.status = Status::Ok;
            response.modelKey = info.key;
            response.target = info.target;
            response.numLeaves = info.numLeaves;
        } else {
            response = errorResponse(request, Status::Error, err);
        }
        break;
      }
      case Opcode::Stats:
        response.op = request.op;
        response.id = request.id;
        response.status = Status::Ok;
        response.stats = stats();
        break;
      case Opcode::Shutdown:
        if (!config_.allowRemoteShutdown) {
            response = errorResponse(request, Status::Error,
                                     "shutdown is disabled on this "
                                     "server");
            break;
        }
        beginShutdown();
        response.op = request.op;
        response.id = request.id;
        response.status = Status::Ok;
        break;
    }
    metrics_.countResponse(
        static_cast<std::uint8_t>(response.status));
    return response;
}

std::uint64_t
Server::sloForOp(Opcode op) const
{
    switch (op) {
      case Opcode::Predict:
        return config_.sloPredictP99Us;
      case Opcode::Classify:
        return config_.sloClassifyP99Us;
      default:
        return 0;
    }
}

Response
Server::admitInference(Request &&request)
{
    if (shuttingDown())
        return errorResponse(request, Status::ShuttingDown,
                             "server is draining");

    // Latency-aware admission: when this op class's sliding-window
    // p99 has drifted past its SLO, new requests of the class are
    // shed up front — the classes that are still inside their SLO
    // keep queueing normally, and the shed class recovers as soon as
    // its window p99 comes back under the target.
    const std::uint64_t slo = sloForOp(request.op);
    if (slo > 0) {
        std::uint64_t samples = 0;
        const double p99 = metrics_.classWindowP99Us(
            static_cast<std::uint8_t>(request.op), &samples);
        if (samples >= config_.sloMinSamples &&
            p99 > static_cast<double>(slo)) {
            metrics_.countShed(
                static_cast<std::uint8_t>(request.op));
            return errorResponse(
                request, Status::Shed,
                std::string(opcodeName(request.op)) +
                    " p99 is over its latency SLO; shedding, retry "
                    "later");
        }
    }

    auto tree = registry_.find(request.modelKey);
    if (tree == nullptr)
        return errorResponse(
            request, Status::Error,
            request.modelKey.empty()
                ? "no model loaded"
                : "unknown model '" + request.modelKey + "'");
    if (request.schema != tree->schema())
        return errorResponse(
            request, Status::Error,
            "request schema does not match the schema model '" +
                (request.modelKey.empty() ? std::string("default")
                                          : request.modelKey) +
                "' was trained on");

    Job job;
    job.request = std::move(request);
    job.tree = std::move(tree);
    job.admitted = std::chrono::steady_clock::now();

    // Budget resolution: the client's ask, clamped by the server's
    // cap, falling back to the server's default. 0 = no deadline.
    std::uint64_t budget_ms = job.request.budgetMs;
    if (config_.maxDeadlineMs > 0 && budget_ms > config_.maxDeadlineMs)
        budget_ms = config_.maxDeadlineMs;
    if (budget_ms == 0)
        budget_ms = config_.defaultDeadlineMs;
    if (budget_ms > 0)
        job.deadline =
            job.admitted + std::chrono::milliseconds(budget_ms);

    std::future<Response> future = job.result.get_future();
    const Opcode op = job.request.op;
    const std::uint64_t id = job.request.id;
    const auto deadline = job.deadline;

    const PushResult pushed = queue_.push(std::move(job));
    if (pushed == PushResult::Overloaded) {
        metrics_.countRejectedOverload();
        Request stub;
        stub.op = op;
        stub.id = id;
        return errorResponse(stub, Status::Overloaded,
                             "admission queue is full; retry");
    }
    if (pushed == PushResult::Closed) {
        Request stub;
        stub.op = op;
        stub.id = id;
        return errorResponse(stub, Status::ShuttingDown,
                             "server is draining");
    }
    metrics_.recordQueueDepth(queue_.depth());
    Response response = future.get();

    // Deadline check before the response write: a result that became
    // ready only after the budget ran out is discarded — the client
    // asked for an answer by the deadline, and an expired request
    // never returns a stale result.
    if (deadline && response.status == Status::Ok &&
        std::chrono::steady_clock::now() > *deadline) {
        metrics_.countDeadlineExpired(static_cast<std::uint8_t>(op));
        Request stub;
        stub.op = op;
        stub.id = id;
        return errorResponse(stub, Status::DeadlineExceeded,
                             "deadline expired before the response "
                             "was written");
    }
    return response;
}

void
Server::beginShutdown()
{
    shuttingDown_.store(true, std::memory_order_release);
    queue_.close();
}

void
Server::drain()
{
    engine_.stop();
}

MetricsSnapshot
Server::stats() const
{
    return metrics_.snapshot(queue_.depth());
}

} // namespace wct::serve
