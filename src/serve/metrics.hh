/**
 * @file
 * Serving observability: lock-free counters and fixed-bucket
 * histograms updated on the hot path, snapshotted on demand for the
 * `stats` wire frame and the `--stats-text` dump.
 *
 * Everything here is additive and relaxed-atomic: recording is a
 * handful of fetch_adds, and a snapshot is a point-in-time copy that
 * is internally consistent enough for monitoring (counters may be
 * mid-flight relative to each other by a few events; no reader ever
 * blocks a worker).
 *
 * Latency is tracked in microseconds over fixed exponential bucket
 * bounds, so p50/p95/p99 come from a cumulative walk of 16 integers
 * instead of a reservoir; batch sizes use power-of-two buckets. The
 * bounds are compiled in — both ends of the wire agree on them by
 * construction, and the snapshot encodes only the counts.
 */

#ifndef WCT_SERVE_METRICS_HH
#define WCT_SERVE_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace wct
{
class ByteSink;
class ByteParser;
} // namespace wct

namespace wct::serve
{

/** Number of distinct opcodes (indexed 1..kNumOpcodes on the wire). */
constexpr std::size_t kNumOpcodes = 5;

/** Number of distinct response statuses. */
constexpr std::size_t kNumStatuses = 7;

/** Inference op classes with their own latency tracking and SLO:
 * Predict and Classify, indexed opcode-1. */
constexpr std::size_t kNumInferenceOps = 2;

/** Width (seconds) of one half of the sliding SLO window. Admission
 * reads its p99 over the current + previous half, so a drifted class
 * recovers within ~2 windows once latency comes back down. */
constexpr std::uint64_t kSloWindowSeconds = 5;

/** Upper bounds (µs) of the latency buckets; overflow bucket after. */
constexpr std::array<double, 15> kLatencyBoundsUs = {
    50,     100,     200,     500,      1'000,
    2'000,  5'000,   10'000,  20'000,   50'000,
    100'000, 200'000, 500'000, 1'000'000, 5'000'000,
};

/** Upper bounds of the batch-size buckets; overflow bucket after. */
constexpr std::array<double, 9> kBatchSizeBounds = {
    1, 2, 4, 8, 16, 32, 64, 128, 256,
};

/** Point-in-time copy of one histogram's bucket counts. */
struct HistogramSnapshot
{
    /** Bucket upper bounds; counts has one extra overflow bucket. */
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;

    std::uint64_t total() const;

    /**
     * Value below which fraction `q` (0..1) of observations fall:
     * the upper bound of the bucket containing that rank (the
     * conventional conservative histogram quantile). 0 when empty;
     * the last finite bound for ranks in the overflow bucket.
     */
    double quantile(double q) const;
};

/** Point-in-time copy of every serving metric. */
struct MetricsSnapshot
{
    /** Requests admitted per opcode, indexed opcode-1. */
    std::array<std::uint64_t, kNumOpcodes> requestsByOp = {};

    /** Responses sent per status, indexed by status byte. */
    std::array<std::uint64_t, kNumStatuses> responsesByStatus = {};

    std::uint64_t batches = 0;        ///< inference batches executed
    std::uint64_t samplesPredicted = 0; ///< rows through the engine
    std::uint64_t rejectedOverload = 0; ///< admission failures
    std::uint64_t malformedFrames = 0;  ///< undecodable requests
    std::uint64_t modelLoads = 0;       ///< successful (re)loads
    std::uint64_t modelLoadFailures = 0;
    std::uint64_t queueDepth = 0;     ///< depth when snapshotted
    std::uint64_t queueDepthPeak = 0; ///< high-water mark

    /** Requests shed by SLO admission, indexed opcode-1. */
    std::array<std::uint64_t, kNumOpcodes> shedByOp = {};

    /** Requests whose deadline budget expired (in queue or before
     * the response write), indexed opcode-1. */
    std::array<std::uint64_t, kNumOpcodes> deadlineExpiredByOp = {};

    HistogramSnapshot requestLatencyUs; ///< admission -> response
    HistogramSnapshot batchSize;

    /** Cumulative completion latency per inference class (predict,
     * classify) — the long-horizon view of what the SLO window
     * watches. */
    std::array<HistogramSnapshot, kNumInferenceOps> classLatencyUs;

    /** Multi-line human-readable rendering (--stats-text). */
    std::string renderText() const;
};

/** Append a snapshot to a wire payload. */
void appendSnapshot(ByteSink &sink, const MetricsSnapshot &snapshot);

/** Parse a snapshot appended by appendSnapshot; false on malformed. */
bool parseSnapshot(ByteParser &parser, MetricsSnapshot &snapshot);

/** Fixed-bound histogram with atomic buckets. */
template <std::size_t N>
class AtomicHistogram
{
  public:
    explicit AtomicHistogram(const std::array<double, N> &bounds)
        : bounds_(bounds)
    {
    }

    void
    record(double value)
    {
        std::size_t b = 0;
        while (b < N && value > bounds_[b])
            ++b;
        counts_[b].fetch_add(1, std::memory_order_relaxed);
    }

    HistogramSnapshot
    snapshot() const
    {
        HistogramSnapshot snap;
        snap.bounds.assign(bounds_.begin(), bounds_.end());
        snap.counts.resize(N + 1);
        for (std::size_t b = 0; b <= N; ++b)
            snap.counts[b] =
                counts_[b].load(std::memory_order_relaxed);
        return snap;
    }

    /** Accumulate another snapshot's counts into `snap` (bounds must
     * match; used to merge the two SLO window halves). */
    void
    accumulateInto(HistogramSnapshot &snap) const
    {
        for (std::size_t b = 0; b <= N; ++b)
            snap.counts[b] +=
                counts_[b].load(std::memory_order_relaxed);
    }

    void
    clear()
    {
        for (auto &c : counts_)
            c.store(0, std::memory_order_relaxed);
    }

    /** Overwrite with another histogram's counts (window rotation). */
    void
    copyFrom(const AtomicHistogram &other)
    {
        for (std::size_t b = 0; b <= N; ++b)
            counts_[b].store(
                other.counts_[b].load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    }

  private:
    std::array<double, N> bounds_;
    std::array<std::atomic<std::uint64_t>, N + 1> counts_ = {};
};

/** The live (writable) metric set owned by a Server. */
class ServingMetrics
{
  public:
    ServingMetrics()
        : requestLatencyUs_(kLatencyBoundsUs),
          batchSize_(kBatchSizeBounds),
          classLatencyUs_{
              AtomicHistogram<kLatencyBoundsUs.size()>(
                  kLatencyBoundsUs),
              AtomicHistogram<kLatencyBoundsUs.size()>(
                  kLatencyBoundsUs)}
    {
        static_assert(kNumInferenceOps == 2,
                      "classLatencyUs_ init lists one histogram per "
                      "inference op");
    }

    void countRequest(std::uint8_t opcode);
    void countResponse(std::uint8_t status);
    void countBatch(std::size_t jobs, std::size_t samples);
    void countRejectedOverload();
    void countMalformedFrame();
    void countModelLoad(bool ok);
    void recordQueueDepth(std::size_t depth);
    void recordRequestLatencyUs(double us);

    /** A request of `opcode` was shed by SLO admission. */
    void countShed(std::uint8_t opcode);

    /** A request of `opcode` ran out of deadline budget. */
    void countDeadlineExpired(std::uint8_t opcode);

    /**
     * Record one completed inference latency for its op class: feeds
     * both the cumulative per-class histogram and the sliding SLO
     * window. No-op for non-inference opcodes.
     */
    void recordClassLatencyUs(std::uint8_t opcode, double us);

    /**
     * p99 (µs, conservative bucket bound) over the sliding SLO
     * window of an inference opcode, with the window's sample count
     * in `*samples`. 0 for non-inference opcodes or an empty window.
     * Rotates the window as a side effect, so stale traffic ages out
     * even when nothing is being recorded.
     */
    double classWindowP99Us(std::uint8_t opcode,
                            std::uint64_t *samples);

    MetricsSnapshot snapshot(std::size_t queue_depth_now) const;

  private:
    /** Two-half sliding window over the latency buckets: `cur` takes
     * writes, `prev` is the last full half, and the pair rotates when
     * the wall-clock epoch (steady seconds / kSloWindowSeconds)
     * advances. Reads merge both halves, so the admission p99 always
     * covers between one and two window widths of traffic. */
    struct SloWindow
    {
        AtomicHistogram<kLatencyBoundsUs.size()> cur{kLatencyBoundsUs};
        AtomicHistogram<kLatencyBoundsUs.size()> prev{
            kLatencyBoundsUs};
        std::atomic<std::int64_t> epoch{0};
        std::mutex rotate;
    };

    void maybeRotate(SloWindow &window);
    std::array<std::atomic<std::uint64_t>, kNumOpcodes> requestsByOp_ =
        {};
    std::array<std::atomic<std::uint64_t>, kNumStatuses>
        responsesByStatus_ = {};
    std::atomic<std::uint64_t> batches_{0};
    std::atomic<std::uint64_t> samplesPredicted_{0};
    std::atomic<std::uint64_t> rejectedOverload_{0};
    std::atomic<std::uint64_t> malformedFrames_{0};
    std::atomic<std::uint64_t> modelLoads_{0};
    std::atomic<std::uint64_t> modelLoadFailures_{0};
    std::atomic<std::uint64_t> queueDepthPeak_{0};
    std::array<std::atomic<std::uint64_t>, kNumOpcodes> shedByOp_ =
        {};
    std::array<std::atomic<std::uint64_t>, kNumOpcodes>
        deadlineExpiredByOp_ = {};
    AtomicHistogram<kLatencyBoundsUs.size()> requestLatencyUs_;
    AtomicHistogram<kBatchSizeBounds.size()> batchSize_;
    std::array<AtomicHistogram<kLatencyBoundsUs.size()>,
               kNumInferenceOps>
        classLatencyUs_;
    std::array<SloWindow, kNumInferenceOps> sloWindow_;
};

} // namespace wct::serve

#endif // WCT_SERVE_METRICS_HH
