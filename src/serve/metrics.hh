/**
 * @file
 * Serving observability: lock-free counters and fixed-bucket
 * histograms updated on the hot path, snapshotted on demand for the
 * `stats` wire frame and the `--stats-text` dump.
 *
 * Everything here is additive and relaxed-atomic: recording is a
 * handful of fetch_adds, and a snapshot is a point-in-time copy that
 * is internally consistent enough for monitoring (counters may be
 * mid-flight relative to each other by a few events; no reader ever
 * blocks a worker).
 *
 * Latency is tracked in microseconds over fixed exponential bucket
 * bounds, so p50/p95/p99 come from a cumulative walk of 16 integers
 * instead of a reservoir; batch sizes use power-of-two buckets. The
 * bounds are compiled in — both ends of the wire agree on them by
 * construction, and the snapshot encodes only the counts.
 */

#ifndef WCT_SERVE_METRICS_HH
#define WCT_SERVE_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace wct
{
class ByteSink;
class ByteParser;
} // namespace wct

namespace wct::serve
{

/** Number of distinct opcodes (indexed 1..kNumOpcodes on the wire). */
constexpr std::size_t kNumOpcodes = 5;

/** Number of distinct response statuses. */
constexpr std::size_t kNumStatuses = 5;

/** Upper bounds (µs) of the latency buckets; overflow bucket after. */
constexpr std::array<double, 15> kLatencyBoundsUs = {
    50,     100,     200,     500,      1'000,
    2'000,  5'000,   10'000,  20'000,   50'000,
    100'000, 200'000, 500'000, 1'000'000, 5'000'000,
};

/** Upper bounds of the batch-size buckets; overflow bucket after. */
constexpr std::array<double, 9> kBatchSizeBounds = {
    1, 2, 4, 8, 16, 32, 64, 128, 256,
};

/** Point-in-time copy of one histogram's bucket counts. */
struct HistogramSnapshot
{
    /** Bucket upper bounds; counts has one extra overflow bucket. */
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;

    std::uint64_t total() const;

    /**
     * Value below which fraction `q` (0..1) of observations fall:
     * the upper bound of the bucket containing that rank (the
     * conventional conservative histogram quantile). 0 when empty;
     * the last finite bound for ranks in the overflow bucket.
     */
    double quantile(double q) const;
};

/** Point-in-time copy of every serving metric. */
struct MetricsSnapshot
{
    /** Requests admitted per opcode, indexed opcode-1. */
    std::array<std::uint64_t, kNumOpcodes> requestsByOp = {};

    /** Responses sent per status, indexed by status byte. */
    std::array<std::uint64_t, kNumStatuses> responsesByStatus = {};

    std::uint64_t batches = 0;        ///< inference batches executed
    std::uint64_t samplesPredicted = 0; ///< rows through the engine
    std::uint64_t rejectedOverload = 0; ///< admission failures
    std::uint64_t malformedFrames = 0;  ///< undecodable requests
    std::uint64_t modelLoads = 0;       ///< successful (re)loads
    std::uint64_t modelLoadFailures = 0;
    std::uint64_t queueDepth = 0;     ///< depth when snapshotted
    std::uint64_t queueDepthPeak = 0; ///< high-water mark

    HistogramSnapshot requestLatencyUs; ///< admission -> response
    HistogramSnapshot batchSize;

    /** Multi-line human-readable rendering (--stats-text). */
    std::string renderText() const;
};

/** Append a snapshot to a wire payload. */
void appendSnapshot(ByteSink &sink, const MetricsSnapshot &snapshot);

/** Parse a snapshot appended by appendSnapshot; false on malformed. */
bool parseSnapshot(ByteParser &parser, MetricsSnapshot &snapshot);

/** Fixed-bound histogram with atomic buckets. */
template <std::size_t N>
class AtomicHistogram
{
  public:
    explicit AtomicHistogram(const std::array<double, N> &bounds)
        : bounds_(bounds)
    {
    }

    void
    record(double value)
    {
        std::size_t b = 0;
        while (b < N && value > bounds_[b])
            ++b;
        counts_[b].fetch_add(1, std::memory_order_relaxed);
    }

    HistogramSnapshot
    snapshot() const
    {
        HistogramSnapshot snap;
        snap.bounds.assign(bounds_.begin(), bounds_.end());
        snap.counts.resize(N + 1);
        for (std::size_t b = 0; b <= N; ++b)
            snap.counts[b] =
                counts_[b].load(std::memory_order_relaxed);
        return snap;
    }

  private:
    std::array<double, N> bounds_;
    std::array<std::atomic<std::uint64_t>, N + 1> counts_ = {};
};

/** The live (writable) metric set owned by a Server. */
class ServingMetrics
{
  public:
    ServingMetrics()
        : requestLatencyUs_(kLatencyBoundsUs),
          batchSize_(kBatchSizeBounds)
    {
    }

    void countRequest(std::uint8_t opcode);
    void countResponse(std::uint8_t status);
    void countBatch(std::size_t jobs, std::size_t samples);
    void countRejectedOverload();
    void countMalformedFrame();
    void countModelLoad(bool ok);
    void recordQueueDepth(std::size_t depth);
    void recordRequestLatencyUs(double us);

    MetricsSnapshot snapshot(std::size_t queue_depth_now) const;

  private:
    std::array<std::atomic<std::uint64_t>, kNumOpcodes> requestsByOp_ =
        {};
    std::array<std::atomic<std::uint64_t>, kNumStatuses>
        responsesByStatus_ = {};
    std::atomic<std::uint64_t> batches_{0};
    std::atomic<std::uint64_t> samplesPredicted_{0};
    std::atomic<std::uint64_t> rejectedOverload_{0};
    std::atomic<std::uint64_t> malformedFrames_{0};
    std::atomic<std::uint64_t> modelLoads_{0};
    std::atomic<std::uint64_t> modelLoadFailures_{0};
    std::atomic<std::uint64_t> queueDepthPeak_{0};
    AtomicHistogram<kLatencyBoundsUs.size()> requestLatencyUs_;
    AtomicHistogram<kBatchSizeBounds.size()> batchSize_;
};

} // namespace wct::serve

#endif // WCT_SERVE_METRICS_HH
