#include "serve/registry.hh"

#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>

#include "mtree/compiled_tree.hh"
#include "mtree/serialize.hh"

namespace wct::serve
{

bool
ModelRegistry::registerText(const std::string &text,
                            const std::string &alias,
                            const std::string &sourcePath,
                            ModelInfo *info, std::string *err)
{
    std::istringstream stream(text);
    std::string parse_err;
    auto tree = tryReadModelTree(stream, &parse_err);
    if (!tree) {
        if (err != nullptr)
            *err = parse_err;
        return false;
    }

    Entry entry;
    entry.info.key = modelTreeContentHex(text);
    entry.info.alias = alias.empty() ? entry.info.key : alias;
    entry.info.sourcePath = sourcePath;
    entry.info.target = tree->targetName();
    entry.info.numLeaves = tree->numLeaves();
    entry.info.numColumns = tree->schema().size();
    // tryReadModelTree already lowered the parse into its flattened
    // form (ModelTree::finalize), so a hot reload swaps tree and
    // compiled evaluator together — in-flight batches keep the old
    // pair alive through their shared_ptr.
    entry.info.compiledNodes = tree->compiled().numNodes();
    entry.info.compiledDepth = tree->compiled().depth();
    entry.tree =
        std::make_shared<const ModelTree>(std::move(*tree));

    std::unique_lock lock(mutex_);
    bool replaced = false;
    for (Entry &existing : entries_) {
        if (existing.info.alias == entry.info.alias) {
            existing = entry; // hot reload keeps the load position
            replaced = true;
            break;
        }
    }
    if (!replaced)
        entries_.push_back(entry);
    lock.unlock();

    if (info != nullptr)
        *info = entry.info;
    return true;
}

bool
ModelRegistry::loadFile(const std::string &path,
                        const std::string &alias, ModelInfo *info,
                        std::string *err)
{
    // Read the whole file once: the same bytes feed the parser and
    // the content hash, so the key always matches what was parsed.
    std::ifstream in(path);
    if (!in) {
        if (err != nullptr)
            *err = "cannot open '" + path + "' for reading";
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();

    std::string derived = alias;
    if (derived.empty())
        derived = std::filesystem::path(path).stem().string();
    return registerText(std::move(buffer).str(), derived, path, info,
                        err);
}

bool
ModelRegistry::loadFromStore(const ArtifactStore &store,
                             const std::string &keyHex,
                             const std::string &alias,
                             ModelInfo *info, std::string *err)
{
    const auto key = parseKeyHex(keyHex);
    if (!key) {
        if (err != nullptr)
            *err = "'" + keyHex + "' is not a 16-hex-digit model key";
        return false;
    }
    const ArtifactId id{"mtree", *key};
    const auto text = store.load(id);
    if (!text) {
        if (err != nullptr)
            *err = "no model artifact '" + id.fileName() + "' in '" +
                store.dir() + "'";
        return false;
    }
    // The store already checksums the envelope; this re-derivation
    // guards the (kind, key) header itself being stale.
    if (modelTreeContentHex(*text) != keyHex) {
        if (err != nullptr)
            *err = "model artifact '" + id.fileName() +
                "' does not hash to its key";
        return false;
    }
    return registerText(*text, alias, store.path(id), info, err);
}

std::shared_ptr<const ModelTree>
ModelRegistry::find(const std::string &keyOrAlias) const
{
    std::shared_lock lock(mutex_);
    if (entries_.empty())
        return nullptr;
    if (keyOrAlias.empty())
        return entries_.front().tree;
    for (const Entry &entry : entries_)
        if (entry.info.key == keyOrAlias ||
            entry.info.alias == keyOrAlias)
            return entry.tree;
    return nullptr;
}

bool
ModelRegistry::evict(const std::string &keyOrAlias)
{
    std::unique_lock lock(mutex_);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->info.key == keyOrAlias ||
            it->info.alias == keyOrAlias) {
            entries_.erase(it);
            return true;
        }
    }
    return false;
}

std::vector<ModelInfo>
ModelRegistry::list() const
{
    std::shared_lock lock(mutex_);
    std::vector<ModelInfo> out;
    out.reserve(entries_.size());
    for (const Entry &entry : entries_)
        out.push_back(entry.info);
    return out;
}

std::size_t
ModelRegistry::size() const
{
    std::shared_lock lock(mutex_);
    return entries_.size();
}

} // namespace wct::serve
