#include "serve/registry.hh"

#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>

#include "data/binary_io.hh"
#include "mtree/serialize.hh"

namespace wct::serve
{

namespace
{

/** Lower-case hex rendering of a 64-bit hash. */
std::string
hashHex(std::uint64_t hash)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[i] = digits[hash & 0xf];
        hash >>= 4;
    }
    return out;
}

} // namespace

bool
ModelRegistry::loadFile(const std::string &path,
                        const std::string &alias, ModelInfo *info,
                        std::string *err)
{
    // Read the whole file once: the same bytes feed the parser and
    // the content hash, so the key always matches what was parsed.
    std::ifstream in(path);
    if (!in) {
        if (err != nullptr)
            *err = "cannot open '" + path + "' for reading";
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();

    std::istringstream stream(text);
    std::string parse_err;
    auto tree = tryReadModelTree(stream, &parse_err);
    if (!tree) {
        if (err != nullptr)
            *err = parse_err;
        return false;
    }

    Entry entry;
    entry.info.key = hashHex(fnv1a64(text));
    entry.info.alias =
        alias.empty() ? std::filesystem::path(path).stem().string()
                      : alias;
    if (entry.info.alias.empty())
        entry.info.alias = entry.info.key;
    entry.info.sourcePath = path;
    entry.info.target = tree->targetName();
    entry.info.numLeaves = tree->numLeaves();
    entry.info.numColumns = tree->schema().size();
    entry.tree =
        std::make_shared<const ModelTree>(std::move(*tree));

    std::unique_lock lock(mutex_);
    bool replaced = false;
    for (Entry &existing : entries_) {
        if (existing.info.alias == entry.info.alias) {
            existing = entry; // hot reload keeps the load position
            replaced = true;
            break;
        }
    }
    if (!replaced)
        entries_.push_back(entry);
    lock.unlock();

    if (info != nullptr)
        *info = entry.info;
    return true;
}

std::shared_ptr<const ModelTree>
ModelRegistry::find(const std::string &keyOrAlias) const
{
    std::shared_lock lock(mutex_);
    if (entries_.empty())
        return nullptr;
    if (keyOrAlias.empty())
        return entries_.front().tree;
    for (const Entry &entry : entries_)
        if (entry.info.key == keyOrAlias ||
            entry.info.alias == keyOrAlias)
            return entry.tree;
    return nullptr;
}

bool
ModelRegistry::evict(const std::string &keyOrAlias)
{
    std::unique_lock lock(mutex_);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->info.key == keyOrAlias ||
            it->info.alias == keyOrAlias) {
            entries_.erase(it);
            return true;
        }
    }
    return false;
}

std::vector<ModelInfo>
ModelRegistry::list() const
{
    std::shared_lock lock(mutex_);
    std::vector<ModelInfo> out;
    out.reserve(entries_.size());
    for (const Entry &entry : entries_)
        out.push_back(entry.info);
    return out;
}

std::size_t
ModelRegistry::size() const
{
    std::shared_lock lock(mutex_);
    return entries_.size();
}

} // namespace wct::serve
